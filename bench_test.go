// Package repro's root benchmark harness regenerates every table and figure
// of the ScaleFold paper's evaluation as a testing.B benchmark, and measures
// the real fused-vs-reference kernels. Run:
//
//	go test -bench=. -benchmem
//
// Figure/table benchmarks report the reproduced quantity as custom metrics
// (b.ReportMetric), so `go test -bench` output doubles as the
// paper-vs-measured record; EXPERIMENTS.md snapshots one run.
package repro

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/kernels"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/perturb"
	"repro/internal/pipeline"
	"repro/internal/scalefold"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// ---------- Table 1 ----------

func BenchmarkTable1KernelBreakdown(b *testing.B) {
	var memShare float64
	var calls int
	for i := 0; i < b.N; i++ {
		rows := scalefold.Table1()
		for _, r := range rows {
			if r.Kind == "Memory-bounded" {
				memShare = r.Share
				calls = r.Calls
			}
		}
	}
	b.ReportMetric(100*memShare, "membound-share-%")
	b.ReportMetric(float64(calls), "membound-calls")
	b.ReportMetric(65.03, "paper-share-%")
	b.ReportMetric(97749, "paper-calls")
}

// ---------- Figure 3 ----------

func BenchmarkFig3BarrierAblation(b *testing.B) {
	var imbalance8 float64
	for i := 0; i < b.N; i++ {
		scalefold.ResetStepCache()
		for _, bar := range scalefold.Figure3(8) {
			if bar.Name == "Imbalance communication" {
				imbalance8 = bar.Share
			}
		}
	}
	b.ReportMetric(100*imbalance8, "dap8-imbalance-share-%")
	b.ReportMetric(54, "paper-%")
}

// ---------- Figure 4 ----------

func BenchmarkFig4PrepTimeDistribution(b *testing.B) {
	var p99 float64
	for i := 0; i < b.N; i++ {
		curve := scalefold.PrepTimeCurve(20000)
		p99 = dataset.Quantile(curve, 0.99)
	}
	b.ReportMetric(p99, "p99-seconds")
}

// ---------- Figure 5 ----------

func BenchmarkFig5PipelineTimeline(b *testing.B) {
	prep := []time.Duration{1 * time.Second, 7 * time.Second, 3 * time.Second}
	var saved time.Duration
	for i := 0; i < b.N; i++ {
		blocking := pipeline.AnalyticSim{PrepTimes: prep, Workers: 2}.Run(5 * time.Second)
		nonBlocking := pipeline.AnalyticSim{PrepTimes: prep, Workers: 2, NonBlocking: true}.Run(5 * time.Second)
		saved = blocking.TotalWait() - nonBlocking.TotalWait()
	}
	b.ReportMetric(saved.Seconds(), "idle-seconds-saved")
}

// ---------- Figure 7 ----------

func BenchmarkFig7StepTime(b *testing.B) {
	var sf8 float64
	for i := 0; i < b.N; i++ {
		scalefold.ResetStepCache()
		for _, r := range scalefold.Figure7() {
			if r.Label == "ScaleFold (H100x1024, DAP8)" {
				sf8 = r.Seconds
			}
		}
	}
	b.ReportMetric(sf8, "dap8-step-seconds")
	b.ReportMetric(0.65, "paper-seconds")
}

// ---------- Figure 8 ----------

func BenchmarkFig8OptimizationLadder(b *testing.B) {
	var final float64
	for i := 0; i < b.N; i++ {
		scalefold.ResetStepCache()
		rungs := scalefold.Ladder()
		final = rungs[len(rungs)-1].Speedup
	}
	b.ReportMetric(final, "final-speedup-x")
	b.ReportMetric(10.39, "paper-x")
}

// ---------- Figure 9 ----------

func BenchmarkFig9TTTBreakdown(b *testing.B) {
	var evalShare float64
	for i := 0; i < b.N; i++ {
		scalefold.ResetStepCache()
		bars := scalefold.Figure9()
		evalShare = bars[1].Shares["eval"] // ScaleFold w/o async eval
	}
	b.ReportMetric(100*evalShare, "noasync-eval-share-%")
	b.ReportMetric(43, "paper-%")
}

// ---------- Figure 10 ----------

func BenchmarkFig10TimeToTrain(b *testing.B) {
	var minutes float64
	for i := 0; i < b.N; i++ {
		scalefold.ResetStepCache()
		rows := scalefold.Figure10()
		minutes = rows[2].Minutes
	}
	b.ReportMetric(minutes, "scalefold-ttt-minutes")
	b.ReportMetric(8, "paper-minutes")
}

// ---------- Figure 11 ----------

func BenchmarkFig11PretrainingCurve(b *testing.B) {
	var hours float64
	for i := 0; i < b.N; i++ {
		scalefold.ResetStepCache()
		_, res := scalefold.Figure11()
		hours = res.WallTime.Hours()
	}
	b.ReportMetric(hours, "pretrain-hours")
	b.ReportMetric(10, "paper-bound-hours")
}

// ---------- Real kernels: the §3.3.1 fusion targets ----------

func benchSlice(n int) []float32 {
	rng := rand.New(rand.NewSource(1))
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

const lnRows, lnC = 4096, 128

func BenchmarkLayerNormReference(b *testing.B) {
	x := benchSlice(lnRows * lnC)
	gamma := benchSlice(lnC)
	beta := benchSlice(lnC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st kernels.Stats
		kernels.LayerNormRef(x, gamma, beta, lnRows, lnC, 1e-5, &st)
	}
}

func BenchmarkLayerNormFused(b *testing.B) {
	x := benchSlice(lnRows * lnC)
	gamma := benchSlice(lnC)
	beta := benchSlice(lnC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st kernels.Stats
		kernels.LayerNormFused(x, gamma, beta, lnRows, lnC, 1e-5, &st)
	}
}

func BenchmarkLayerNormBackwardReference(b *testing.B) {
	x := benchSlice(lnRows * lnC)
	gamma := benchSlice(lnC)
	beta := benchSlice(lnC)
	dy := benchSlice(lnRows * lnC)
	var st kernels.Stats
	_, cache := kernels.LayerNormFused(x, gamma, beta, lnRows, lnC, 1e-5, &st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.LayerNormRefBackward(dy, gamma, cache, &st)
	}
}

func BenchmarkLayerNormBackwardFused(b *testing.B) {
	x := benchSlice(lnRows * lnC)
	gamma := benchSlice(lnC)
	beta := benchSlice(lnC)
	dy := benchSlice(lnRows * lnC)
	var st kernels.Stats
	_, cache := kernels.LayerNormFused(x, gamma, beta, lnRows, lnC, 1e-5, &st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.LayerNormFusedBackward(dy, gamma, cache, 32, &st)
	}
}

var mhaP = kernels.MHAParams{B: 8, L: 64, H: 8, D: 16}

func mhaInputs() (q, k, v, g, bias []float32) {
	e := mhaP.H * mhaP.D
	return benchSlice(mhaP.B * mhaP.L * e), benchSlice(mhaP.B * mhaP.L * e),
		benchSlice(mhaP.B * mhaP.L * e), benchSlice(mhaP.B * mhaP.L * e),
		benchSlice(mhaP.H * mhaP.L * mhaP.L)
}

func BenchmarkMHAReference(b *testing.B) {
	q, k, v, g, bias := mhaInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st kernels.Stats
		kernels.MHARef(mhaP, q, k, v, g, bias, nil, &st)
	}
}

func BenchmarkMHAFused(b *testing.B) {
	q, k, v, g, bias := mhaInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st kernels.Stats
		kernels.MHAFused(mhaP, q, k, v, g, bias, nil, 32, &st)
	}
}

func BenchmarkProjectionsSeparate(b *testing.B) {
	const n, k, m = 512, 128, 128
	w := kernels.ProjectionWeights{
		WQ: benchSlice(k * m), WK: benchSlice(k * m),
		WV: benchSlice(k * m), WG: benchSlice(k * m), K: k, M: m,
	}
	x := benchSlice(n * k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st kernels.Stats
		kernels.ProjectSeparate(x, n, w, &st)
	}
}

func BenchmarkProjectionsBatched(b *testing.B) {
	const n, k, m = 512, 128, 128
	w := kernels.ProjectionWeights{
		WQ: benchSlice(k * m), WK: benchSlice(k * m),
		WV: benchSlice(k * m), WG: benchSlice(k * m), K: k, M: m,
	}
	x := benchSlice(n * k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st kernels.Stats
		kernels.ProjectBatched(x, n, w, &st)
	}
}

func adamParams(n, sz int) []kernels.ParamTensor {
	ps := make([]kernels.ParamTensor, n)
	for i := range ps {
		ps[i] = kernels.ParamTensor{
			P: benchSlice(sz), G: benchSlice(sz), M: benchSlice(sz),
			V: make([]float32, sz), SWA: benchSlice(sz),
		}
	}
	return ps
}

func BenchmarkAdamSWAReference(b *testing.B) {
	ps := adamParams(200, 512)
	cfg := kernels.DefaultAdamConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st kernels.Stats
		cfg.Step = i + 1
		kernels.AdamSWARef(ps, cfg, 1.0, &st)
	}
}

func BenchmarkAdamSWAFused(b *testing.B) {
	ps := adamParams(200, 512)
	cfg := kernels.DefaultAdamConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st kernels.Stats
		cfg.Step = i + 1
		kernels.AdamSWAFused(ps, cfg, 1.0, nil, &st)
	}
}

func BenchmarkGradNormPerTensor(b *testing.B) {
	ps := adamParams(400, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st kernels.Stats
		kernels.GradNormRef(ps, &st)
	}
}

func BenchmarkGradNormBucketed(b *testing.B) {
	ps := adamParams(400, 256)
	var st kernels.Stats
	buckets := kernels.PackBuckets(ps, 1<<20, &st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st kernels.Stats
		kernels.GradNormBucketed(buckets, &st)
	}
}

// ---------- Real model: one miniature training step ----------

func BenchmarkMiniatureTrainStep(b *testing.B) {
	cfg := model.SmallConfig()
	cfg.Crop = 12
	cfg.EvoBlocks = 1
	bench := newBenchTrainer(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.step()
	}
}

// ---------- Sweep engine throughput ----------

// sweepBenchSpec is a 24-cell grid at a small rank count: large enough to
// exercise the worker pool, small enough that one cell is a few
// milliseconds. A fresh cache per call keeps iterations honest (no
// cross-iteration memoization).
func sweepBenchSpec(workers int) scalefold.SweepSpec {
	s := scalefold.DefaultSweepSpec()
	s.Ranks = []int{32}
	s.Steps = 2
	s.Workers = workers
	s.Cache = sweep.NewCache[cluster.Result]()
	s.Metrics = &scalefold.SweepMetrics{}
	return s
}

// benchSweep runs one full sweep and returns its CSV bytes plus the cell-
// satisfaction metrics.
func benchSweep(b *testing.B, workers int) ([]byte, *scalefold.SweepMetrics) {
	s := sweepBenchSpec(workers)
	rows, err := s.Run(nil)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := scalefold.SweepTable(rows).WriteCSV(&buf); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes(), s.Metrics
}

// BenchmarkSweep24Cells measures sweep throughput per worker count — the
// perf-trajectory record CI uploads as BENCH_sweep.json. Reported metrics:
// cells/s and steps/s (simulation throughput), plus the memo hit rate of a
// second, cache-warm pass over the same grid (memo-hit-%: 100 means every
// cell was satisfied by the in-memory memo without re-simulation). Compare
// the workers=1 and workers=8 timings for the parallel speedup (bounded by
// the host's core count: on >= 8 cores the 24-cell grid completes several
// times faster with 8 workers; on a single core the pool degenerates to the
// serial path). Byte-identical output across worker counts is asserted on
// every iteration.
func BenchmarkSweep24Cells(b *testing.B) {
	want, _ := benchSweep(b, 1)
	const cells, stepsPerCell = 24, 2
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got, _ := benchSweep(b, workers)
				if !bytes.Equal(got, want) {
					b.Fatalf("workers=%d produced different CSV than workers=1", workers)
				}
			}
			perSec := float64(b.N) * float64(time.Second) / float64(b.Elapsed())
			b.ReportMetric(cells*perSec, "cells/s")
			b.ReportMetric(cells*stepsPerCell*perSec, "steps/s")
		})
	}
	b.Run("memo-warm", func(b *testing.B) {
		var hitRate float64
		for i := 0; i < b.N; i++ {
			s := sweepBenchSpec(4)
			if _, err := s.Run(nil); err != nil {
				b.Fatal(err)
			}
			s.Metrics = &scalefold.SweepMetrics{} // count the warm pass alone
			if _, err := s.Run(nil); err != nil {
				b.Fatal(err)
			}
			hits := s.Metrics.MemoHits.Load()
			total := hits + s.Metrics.Simulated.Load() + s.Metrics.StoreHits.Load()
			hitRate = 100 * float64(hits) / float64(total)
		}
		b.ReportMetric(hitRate, "memo-hit-%")
	})
}

// ---------- Analytic fast path ----------

// relDurErr is |got-want|/want for durations (0 when want is 0).
func relDurErr(got, want time.Duration) float64 {
	if want == 0 {
		return 0
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(want)
}

// BenchmarkAnalyticVsExact prices the closed-form estimator against the
// exact simulator on the default 24-cell exploration grid (cold cache, no
// store): cells/s for each mode, their ratio (speedup-x — the analytic
// acceptance floor is 100x), and the worst relative mean-step error the
// estimate showed against the exact rows of the same grid order. CI uploads
// the pair as BENCH_analytic.json.
func BenchmarkAnalyticVsExact(b *testing.B) {
	modeSpec := func(mode string) scalefold.SweepSpec {
		s := scalefold.DefaultSweepSpec()
		s.Mode = mode
		s.Cache = sweep.NewCache[cluster.Result]()
		s.Metrics = &scalefold.SweepMetrics{}
		return s
	}
	const cells = 24
	var exactRows []scalefold.SweepRow
	var exactCellsPerSec float64
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := modeSpec("")
			rows, err := s.Run(nil)
			if err != nil {
				b.Fatal(err)
			}
			exactRows = rows
		}
		exactCellsPerSec = cells * float64(b.N) * float64(time.Second) / float64(b.Elapsed())
		b.ReportMetric(exactCellsPerSec, "cells/s")
	})
	b.Run("analytic", func(b *testing.B) {
		// One untimed pass warms the estimator's process-global census memo
		// (shared with figure runs), so the timed passes price steady-state
		// estimation — the memo cache and store stay cold, as in exact.
		if _, err := modeSpec(scenario.ModeAnalytic).Run(nil); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var rows []scalefold.SweepRow
		for i := 0; i < b.N; i++ {
			s := modeSpec(scenario.ModeAnalytic)
			var err error
			if rows, err = s.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
		perSec := cells * float64(b.N) * float64(time.Second) / float64(b.Elapsed())
		b.ReportMetric(perSec, "cells/s")
		if exactCellsPerSec > 0 {
			b.ReportMetric(perSec/exactCellsPerSec, "speedup-x")
		}
		// Fidelity against the exact sub-benchmark's rows (same grid order);
		// absent when the analytic sub runs alone via -bench filtering.
		if len(exactRows) == len(rows) {
			var maxErr float64
			for i, r := range rows {
				if e := relDurErr(r.Res.MeanStep, exactRows[i].Res.MeanStep); e > maxErr {
					maxErr = e
				}
			}
			b.ReportMetric(100*maxErr, "max-meanstep-err-%")
		}
	})
}

// ---------- Observability overhead ----------

// BenchmarkSweepObs prices the observability layer on the default 24-cell
// sweep: "bare" runs with no metrics and no tracer, so every obs call in the
// engine hits the nil fast path (pinned allocation-free by
// TestObsNilFastPathAllocFree in internal/obs); "instrumented" attaches the
// cell-satisfaction counters and a span tracer recording one lifecycle span
// per cell. CI uploads the pair as BENCH_obs.json — compare the two cells/s
// numbers; the layer's contract is that instrumented stays within ~2% of
// bare on this workload.
func BenchmarkSweepObs(b *testing.B) {
	const cells = 24
	run := func(b *testing.B, instrument bool) {
		for i := 0; i < b.N; i++ {
			s := sweepBenchSpec(4)
			if instrument {
				s.Trace = obs.NewTracer()
			} else {
				s.Metrics = nil
			}
			if _, err := s.Run(nil); err != nil {
				b.Fatal(err)
			}
			if instrument {
				spans := 0
				for _, ev := range s.Trace.Events() {
					if ev.Ph == "X" {
						spans++
					}
				}
				if spans != cells {
					b.Fatalf("trace recorded %d spans, want %d", spans, cells)
				}
			}
		}
		perSec := float64(b.N) * float64(time.Second) / float64(b.Elapsed())
		b.ReportMetric(cells*perSec, "cells/s")
	}
	b.Run("bare", func(b *testing.B) { run(b, false) })
	b.Run("instrumented", func(b *testing.B) { run(b, true) })
}

// ---------- Cluster simulator throughput ----------

// BenchmarkClusterSimulateDAP8 measures one cold cluster.Simulate call at
// figure scale — the Figure 7 ScaleFold configuration at DAP-8 — bypassing
// the memo cache and the persistent store entirely, so ns/op and allocs/op
// are the simulator's own. The seed varies per iteration to keep the RNG
// paths honest; reported sim-steps/s is simulated steps per wall-clock
// second, the number CI uploads as BENCH_sim.json.
func BenchmarkClusterSimulateDAP8(b *testing.B) {
	for _, ranks := range []int{256, 1024} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			cfg := scalefold.Figure7Config("H100", ranks, 8)
			o, err := cfg.Options()
			if err != nil {
				b.Fatal(err)
			}
			// The census the Figure 7 pipeline itself lowers, so the
			// recorded trajectory matches what figure runs actually cost.
			prog := workload.Census(model.FullConfig(), cfg.Census)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.Seed = int64(i + 1)
				_ = cluster.Simulate(prog, ranks, 8, o)
			}
			perSec := float64(b.N) * float64(time.Second) / float64(b.Elapsed())
			b.ReportMetric(float64(o.Steps)*perSec, "sim-steps/s")
		})
	}
}

// BenchmarkSimulatePerturbed measures one cold perturbed cluster.Simulate
// call at figure scale — the Figure 7 ScaleFold configuration at DAP-8
// under combined noise (5% straggler ranks up to 3x, 0.2 stalls/step of 2s
// mean, 1e-3 fail prob with a 60s restart) — alongside the healthy
// BenchmarkClusterSimulateDAP8 numbers. Reported sim-steps/s prices what
// the perturbation draws cost the hot path; goodput records the simulated
// resilience outcome CI tracks in BENCH_perturb.json.
func BenchmarkSimulatePerturbed(b *testing.B) {
	spec := perturb.Spec{
		SlowdownProb: 0.05, SlowdownFactor: 3,
		StallRate: 0.2, StallMean: 2,
		FailProb: 0.001, RestartCost: 60,
	}
	for _, ranks := range []int{256, 1024} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			cfg := scalefold.Figure7Config("H100", ranks, 8)
			cfg.Perturb = &spec
			o, err := cfg.Options()
			if err != nil {
				b.Fatal(err)
			}
			prog := workload.Census(model.FullConfig(), cfg.Census)
			var goodput float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.Seed = int64(i + 1)
				goodput = cluster.Simulate(prog, ranks, 8, o).Goodput
			}
			perSec := float64(b.N) * float64(time.Second) / float64(b.Elapsed())
			b.ReportMetric(float64(o.Steps)*perSec, "sim-steps/s")
			b.ReportMetric(goodput, "goodput")
		})
	}
}

// ---------- Adaptive search ----------

// BenchmarkSearchCliff prices the adaptive search driver against the
// EXPERIMENTS.md resilience grid: bisecting the failure-rate axis at
// ranks=1024/DAP-8 (24-step cells, 60 s restart) must localize the goodput
// cliff to 0.1 decades using a fraction of the exact simulations the
// equivalent grid — one cell per tolerance step across the 4-decade span,
// plus the endpoint — would spend. Reported metrics: total probes, the
// analytic/exact split (auto mode explores with the closed-form estimator
// and escalates only near the cliff), the grid size it replaces, and the
// resulting probe savings. CI uploads the run as BENCH_search.json.
func BenchmarkSearchCliff(b *testing.B) {
	const gridCells = 41 // ceil(4 decades / 0.1 tolerance) + endpoint
	spec := func(st store.Store[cluster.Result]) scalefold.SearchSpec {
		return scalefold.SearchSpec{
			Objective:  "maximize-goodput",
			Platform:   "H100",
			Ranks:      []int{1024},
			DAPs:       []int{8},
			FailLo:     1e-6,
			FailHi:     1e-2,
			Tolerance:  0.1,
			Budget:     24,
			Steps:      24,
			Mode:       scenario.ModeAuto,
			SimWorkers: runtime.GOMAXPROCS(0),
			Store:      st,
			Cache:      sweep.NewCache[cluster.Result](),
		}
	}
	var f scalefold.Frontier
	var exact int64
	for i := 0; i < b.N; i++ {
		// Cold store and memo every iteration: the benchmark prices
		// discovery, not replay.
		s := spec(store.NewMem[cluster.Result]())
		sims0 := scalefold.Simulations()
		var err error
		if f, err = s.Run(); err != nil {
			b.Fatal(err)
		}
		exact = scalefold.Simulations() - sims0
		if f.Cliff == nil || !f.Cliff.Found {
			b.Fatalf("cliff not found: %+v", f.Cliff)
		}
	}
	b.ReportMetric(float64(f.Used), "probes")
	b.ReportMetric(float64(exact), "exact-sims")
	b.ReportMetric(float64(f.Used)-float64(exact), "analytic-probes")
	b.ReportMetric(gridCells, "grid-cells")
	b.ReportMetric(100*float64(exact)/gridCells, "exact-vs-grid-%")
}
