package repro

import (
	"math/rand"

	ag "repro/internal/autograd"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/train"
)

// benchTrainer bundles a miniature model + data for the train-step bench.
type benchTrainer struct {
	tr    *train.Trainer
	batch []*dataset.Sample
}

func newBenchTrainer(cfg model.Config) *benchTrainer {
	mdl := model.New(cfg, ag.NewTape(), 1)
	gen := dataset.NewGenerator(2)
	gen.MSADepth = cfg.MSADepth
	rng := rand.New(rand.NewSource(3))
	batch := []*dataset.Sample{gen.Sample(0).Crop(cfg.Crop, rng)}
	return &benchTrainer{tr: train.New(mdl, train.DefaultConfig()), batch: batch}
}

func (b *benchTrainer) step() { b.tr.TrainStep(b.batch) }
