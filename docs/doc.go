// Package docs embeds the user-facing documentation so the CLI help text and
// the committed markdown are one artifact: `scalefold help` prints CLI
// verbatim, and docs/cli.md is what reviewers read — they cannot drift apart.
package docs

import _ "embed"

// CLI is the full command reference (docs/cli.md), printed by
// `scalefold help`.
//
//go:embed cli.md
var CLI string
