// Package docs embeds the user-facing documentation so the CLI help text and
// the committed markdown are one artifact: `scalefold help` prints CLI
// verbatim, and docs/cli.md is what reviewers read — they cannot drift apart.
package docs

import (
	_ "embed"
	"strings"
)

// CLI is the full command reference (docs/cli.md), printed by
// `scalefold help`.
//
//go:embed cli.md
var CLI string

// Subcommands returns the subcommand names documented in cli.md, in
// documentation order, parsed from its "### name" headings. The CLI's
// unknown-command message prints this list, so the binary can never
// advertise a command set that drifts from the committed reference.
func Subcommands() []string {
	var out []string
	for _, line := range strings.Split(CLI, "\n") {
		if name, ok := strings.CutPrefix(line, "### "); ok {
			out = append(out, strings.TrimSpace(name))
		}
	}
	return out
}
