// Pipeline demo: run the real (goroutine-based) blocking and non-blocking
// loaders on the paper's Figure 5 scenario — batch "b" is slow, batch "c" is
// ready first — and show the non-blocking loader overtaking it. Durations
// are scaled 1s -> 40ms so the demo finishes quickly.
package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/pipeline"
)

type source struct {
	prep  []time.Duration
	scale float64
}

func (s *source) Len() int { return len(s.prep) }

func (s *source) Prepare(ctx context.Context, i int) (pipeline.Batch, error) {
	d := time.Duration(float64(s.prep[i]) * s.scale)
	select {
	case <-time.After(d):
	case <-ctx.Done():
		return pipeline.Batch{}, ctx.Err()
	}
	return pipeline.Batch{Index: i, PrepTime: s.prep[i]}, nil
}

func main() {
	// Figure 5: prep a=1s, b=7s (slow), c=3s; training steps take 5s.
	src := &source{
		prep:  []time.Duration{1 * time.Second, 7 * time.Second, 3 * time.Second},
		scale: 0.04, // 1 paper-second = 40 ms of demo time
	}
	step := time.Duration(5 * float64(time.Second) * src.scale)

	run := func(name string, mk func() pipeline.Loader) {
		fmt.Printf("%s:\n", name)
		l := mk()
		defer l.Stop()
		start := time.Now()
		var idle time.Duration
		trainerFree := start
		for i := 0; i < src.Len(); i++ {
			b, ok := l.Next(context.Background())
			if !ok {
				break
			}
			now := time.Now()
			wait := now.Sub(trainerFree)
			if wait < 0 {
				wait = 0
			}
			idle += wait
			fmt.Printf("  t=%5.1fs  step %d consumes batch %c (prep %v, waited %.1fs)\n",
				now.Sub(start).Seconds()/src.scale, i+1, 'a'+rune(b.Index), b.PrepTime, wait.Seconds()/src.scale)
			time.Sleep(step)
			trainerFree = time.Now()
		}
		fmt.Printf("  trainer idle total: %.1f paper-seconds\n\n", idle.Seconds()/src.scale)
	}

	run("PyTorch-default blocking pipeline (Figure 5 i)", func() pipeline.Loader {
		return pipeline.NewBlocking(src, 2)
	})
	run("ScaleFold non-blocking pipeline (Figure 5 ii)", func() pipeline.Loader {
		return pipeline.NewNonBlocking(src, 2)
	})
	fmt.Println("The non-blocking loader yields batch c before the slow batch b,")
	fmt.Println("so the trainer never idles — exactly the paper's §3.2 design.")
}
