// Quickstart: train the miniature AlphaFold model on synthetic folds and
// watch avg_lddt_ca — the paper's convergence metric — rise, then reproduce
// the headline step-time result on the simulated H100 cluster.
package main

import (
	"fmt"
	"math/rand"

	ag "repro/internal/autograd"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/scalefold"
	"repro/internal/train"
)

func main() {
	fmt.Println("== Part 1: real training of the miniature AlphaFold ==")
	cfg := model.SmallConfig()
	cfg.Crop = 12
	cfg.EvoBlocks = 2
	mdl := model.New(cfg, ag.NewTape(), 42)
	fmt.Printf("model: %d parameters across %d tensors (full AlphaFold: 97M)\n",
		mdl.Params.Count(), len(mdl.Params.All()))

	gen := dataset.NewGenerator(7)
	gen.MSADepth = cfg.MSADepth
	rng := rand.New(rand.NewSource(1))
	var batch []*dataset.Sample
	for i := 0; i < 2; i++ {
		batch = append(batch, gen.Sample(i).Crop(cfg.Crop, rng))
	}

	tr := train.New(mdl, train.DefaultConfig())
	fmt.Printf("initial avg_lddt_ca: %.3f\n", tr.Evaluate(batch))
	for step := 1; step <= 40; step++ {
		loss := tr.TrainStep(batch)
		if step%10 == 0 {
			fmt.Printf("step %3d  loss %.4f  avg_lddt_ca %.3f\n", step, loss, tr.Evaluate(batch))
		}
	}

	fmt.Println()
	fmt.Println("== Part 2: ScaleFold step time on the simulated cluster ==")
	ref := scalefold.ReferenceConfig("A100", 128)
	sf := scalefold.Figure7Config("H100", 1024, 8)
	refS, sfS := ref.StepSeconds(), sf.StepSeconds()
	fmt.Printf("OpenFold reference (A100x128): %.2f s/step (paper: 6.19 s)\n", refS)
	fmt.Printf("ScaleFold (H100x1024, DAP-8):  %.2f s/step (paper: 0.65 s)\n", sfS)
	fmt.Printf("end-to-end step speedup: %.1fx\n", refS/sfS)
}
