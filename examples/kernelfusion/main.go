// Kernel fusion demo: execute the paper's three Triton kernels — fused
// LayerNorm, fused pair-biased gated MHA, fused Adam+SWA — against their
// fragmented baselines on real data, and report wall time, kernel-launch
// counts and memory traffic. This is §3.3.1 made runnable: the fused forms
// compute bit-compatible results while moving far fewer bytes.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/kernels"
)

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func report(name string, refDur, fusedDur time.Duration, ref, fused kernels.Stats) {
	fmt.Printf("%s\n", name)
	fmt.Printf("  reference: %8v  %6d launches  %8.1f MB traffic\n",
		refDur.Round(time.Microsecond), ref.Launches, float64(ref.Bytes())/1e6)
	fmt.Printf("  fused:     %8v  %6d launches  %8.1f MB traffic\n",
		fusedDur.Round(time.Microsecond), fused.Launches, float64(fused.Bytes())/1e6)
	fmt.Printf("  speedup %.2fx, launch reduction %.0fx, traffic reduction %.2fx\n\n",
		float64(refDur)/float64(fusedDur),
		float64(ref.Launches)/float64(fused.Launches),
		float64(ref.Bytes())/float64(fused.Bytes()))
}

func main() {
	rng := rand.New(rand.NewSource(1))

	// --- LayerNorm: AlphaFold's typical small hidden dims (§3.3.1) ---
	const rows, c = 8192, 128
	x := randSlice(rng, rows*c)
	gamma := randSlice(rng, c)
	beta := randSlice(rng, c)
	var refSt, fusedSt kernels.Stats
	t0 := time.Now()
	yRef := kernels.LayerNormRef(x, gamma, beta, rows, c, 1e-5, &refSt)
	refDur := time.Since(t0)
	t0 = time.Now()
	yFused, _ := kernels.LayerNormFused(x, gamma, beta, rows, c, 1e-5, &fusedSt)
	fusedDur := time.Since(t0)
	_ = yRef
	_ = yFused
	report("LayerNorm forward (8192 rows x 128)", refDur, fusedDur, refSt, fusedSt)

	// --- Pair-biased gated MHA (Figure 6) ---
	p := kernels.MHAParams{B: 16, L: 64, H: 8, D: 16}
	E := p.H * p.D
	q := randSlice(rng, p.B*p.L*E)
	k := randSlice(rng, p.B*p.L*E)
	v := randSlice(rng, p.B*p.L*E)
	g := randSlice(rng, p.B*p.L*E)
	bias := randSlice(rng, p.H*p.L*p.L)
	refSt, fusedSt = kernels.Stats{}, kernels.Stats{}
	t0 = time.Now()
	kernels.MHARef(p, q, k, v, g, bias, nil, &refSt)
	refDur = time.Since(t0)
	t0 = time.Now()
	kernels.MHAFused(p, q, k, v, g, bias, nil, 32, &fusedSt)
	fusedDur = time.Since(t0)
	report("MHA with pair bias + sigmoid gating (16x64, 8 heads)", refDur, fusedDur, refSt, fusedSt)

	// --- Adam + SWA + gradient clipping across many small tensors ---
	sizes := make([]int, 400) // AlphaFold has ~4400; scaled for the demo
	for i := range sizes {
		sizes[i] = 64 + rng.Intn(4096)
	}
	mkParams := func() []kernels.ParamTensor {
		r := rand.New(rand.NewSource(2))
		ps := make([]kernels.ParamTensor, len(sizes))
		for i, n := range sizes {
			ps[i] = kernels.ParamTensor{
				P: randSlice(r, n), G: randSlice(r, n), M: randSlice(r, n),
				V: make([]float32, n), SWA: randSlice(r, n),
			}
		}
		return ps
	}
	cfg := kernels.DefaultAdamConfig(10)
	refSt, fusedSt = kernels.Stats{}, kernels.Stats{}
	a := mkParams()
	t0 = time.Now()
	kernels.AdamSWARef(a, cfg, 1.0, &refSt)
	refDur = time.Since(t0)
	b := mkParams()
	t0 = time.Now()
	kernels.AdamSWAFused(b, cfg, 1.0, nil, &fusedSt)
	fusedDur = time.Since(t0)
	report(fmt.Sprintf("Adam+SWA+grad-clip over %d tensors", len(sizes)), refDur, fusedDur, refSt, fusedSt)

	fmt.Println("All fused forms are verified bit-equivalent to the references")
	fmt.Println("by the kernels package test suite (go test ./internal/kernels).")
}
