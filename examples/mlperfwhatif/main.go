// MLPerf what-if study: use the time-to-train harness to explore the §3.4
// design space — how many dedicated evaluation nodes asynchronous evaluation
// needs before it stops being the bottleneck, and what the eval-dataset RAM
// cache is worth.
package main

import (
	"fmt"
	"time"

	"repro/internal/mlperf"
)

func main() {
	step := 550 * time.Millisecond // ScaleFold DAP-8 step at 2048 H100s

	fmt.Println("== Synchronous vs asynchronous evaluation ==")
	sync := mlperf.TimeToTrain(mlperf.ScaleFoldRun(step, false))
	async := mlperf.TimeToTrain(mlperf.ScaleFoldRun(step, true))
	fmt.Printf("sync eval:  %5.1f min (train %4.1f, eval %4.1f)\n",
		sync.Total().Minutes(), sync.Train.Minutes(), sync.Eval.Minutes())
	fmt.Printf("async eval: %5.1f min (train %4.1f, comm %4.1f, eval stall %4.1f)\n",
		async.Total().Minutes(), async.Train.Minutes(), async.TrainEvalComm.Minutes(), async.Eval.Minutes())

	fmt.Println()
	fmt.Println("== How many eval nodes does async evaluation need? ==")
	fmt.Printf("%-12s %12s %14s\n", "eval GPUs", "TTT (min)", "eval stall (s)")
	for _, evalRanks := range []int{4, 8, 16, 32, 64} {
		c := mlperf.ScaleFoldRun(step, true)
		c.EvalRanks = evalRanks
		c.EvalWorkers = evalRanks
		bd := mlperf.TimeToTrain(c)
		fmt.Printf("%-12d %12.1f %14.1f\n", evalRanks, bd.Total().Minutes(), bd.Eval.Seconds())
	}
	fmt.Println("(the paper settled on 32 of 2080 GPUs — the knee of this curve)")

	fmt.Println()
	fmt.Println("== What the eval-dataset RAM cache is worth (§3.4) ==")
	for _, cached := range []bool{true, false} {
		c := mlperf.ScaleFoldRun(step, true)
		c.CachedEvalData = cached
		bd := mlperf.TimeToTrain(c)
		name := "cached in CPU DRAM"
		if !cached {
			name = "loaded from disk  "
		}
		fmt.Printf("%s: TTT %5.1f min, eval stall %5.1f s per run\n",
			name, bd.Total().Minutes(), bd.Eval.Seconds())
	}
	fmt.Println("Without the cache, evaluation outruns the eval interval and the")
	fmt.Println("training side stalls at every checkpoint — exactly why §3.4 says")
	fmt.Println("\"we cached all evaluation data into the CPU DRAM\".")
}
