// DAP scaling study: sweep the Dynamic Axial Parallelism degree on the
// simulated H100 cluster, for both the unoptimized baseline (reproducing the
// §3.1 observation that naive DAP saturates) and the full ScaleFold stack
// (reproducing Figure 7's scaling), with the per-step breakdown that
// explains the difference.
package main

import (
	"fmt"

	"repro/internal/dap"
	"repro/internal/scalefold"
)

func main() {
	fmt.Println("Global batch 128; one sample per DAP group.")
	fmt.Printf("Convergence cap: global batch <= %d, so pure data parallelism stops at %d GPUs;\n",
		dap.MaxGlobalBatch, dap.MaxGlobalBatch)
	fmt.Printf("DAP-8 extends usable GPUs to %d.\n\n", dap.MaxRanksForBatch(256, 8))

	fmt.Println("-- naive DAP on the unoptimized baseline (§3.1) --")
	fmt.Printf("%-8s %10s %10s\n", "degree", "step (s)", "speedup")
	base := scalefold.ReferenceConfig("H100", 128).StepSeconds()
	fmt.Printf("%-8s %10.2f %9.2fx\n", "DAP-1", base, 1.0)
	for _, d := range []int{2, 4, 8} {
		c := scalefold.FastFoldConfig("H100", 128*d, d)
		c.Census.FusedMHA = false // pure baseline + DAP
		c.Census.FusedLN = false
		c.Census.GradCheckpoint = true
		s := c.StepSeconds()
		fmt.Printf("%-8s %10.2f %9.2fx\n", fmt.Sprintf("DAP-%d", d), s, base/s)
	}
	fmt.Println("(paper: only 1.42x / 1.57x / ~1.57x — DAP alone saturates)")

	fmt.Println()
	fmt.Println("-- ScaleFold DAP scaling (Figure 7) --")
	fmt.Printf("%-8s %10s %10s %14s %14s %12s\n", "degree", "step (s)", "speedup", "GPU compute", "CPU exposed", "comm+wait")
	var sfBase float64
	for i, d := range []int{1, 2, 4, 8} {
		c := scalefold.Figure7Config("H100", 128*d, d)
		r := c.Run()
		s := r.MedianStep.Seconds()
		if i == 0 {
			sfBase = s
		}
		fmt.Printf("%-8s %10.2f %9.2fx %14v %14v %12v\n",
			fmt.Sprintf("DAP-%d", d), s, sfBase/s,
			r.Break.GPUCompute.Round(1e6), r.Break.CPUExposed.Round(1e6),
			(r.Break.CommXfer + r.Break.CommWait).Round(1e6))
	}
	fmt.Println("(paper: 1.6x / 2.4x / 2.77x at DAP-2/4/8)")
}
