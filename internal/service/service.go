// Package service is the serving layer over the sweep engine: a long-running
// HTTP server (`scalefold serve`) that accepts sweep-spec jobs, schedules
// them FIFO on a shared bounded worker pool, streams per-cell results as
// NDJSON, and backs the scenario memo with a persistent fingerprint-keyed
// result store (package store) — so results survive restarts and are shared
// across every job, every CLI sweep and every figure runner pointed at the
// same store directory.
//
// Endpoints (all JSON):
//
//	POST   /v1/jobs             submit a JobSpec; 202 + JobStatus
//	GET    /v1/jobs             list jobs, submit order
//	GET    /v1/jobs/{id}        one job's status
//	GET    /v1/jobs/{id}/stream NDJSON RowEvents, ending with a DoneEvent
//	POST   /v1/jobs/{id}/cancel cancel a queued or running job
//	GET    /v1/jobs/{id}/trace  Chrome trace-event JSON of the job's cells
//	GET    /v1/store            persistent-store statistics
//	GET    /v1/healthz          liveness + uptime, build and queue summary
//	GET    /v1/metrics          Prometheus text exposition
package service

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/scalefold"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/sweep"
)

// Config sizes the server.
type Config struct {
	// StoreDir roots the persistent result store; "" serves from memory
	// only (results then die with the process).
	StoreDir string
	// StoreCache bounds the persistent store's decoded-value cache (entries
	// kept unmarshalled in memory; the index itself holds only disk
	// offsets). <= 0 means store.DefaultCacheEntries.
	StoreCache int
	// Workers bounds total in-flight simulations across ALL jobs — the
	// shared worker pool. <= 0 means GOMAXPROCS.
	Workers int
	// MaxActiveJobs bounds concurrently executing jobs (they share the
	// Workers pool; more active jobs trades per-job latency for fairness).
	// <= 0 means 2.
	MaxActiveJobs int
	// QueueLimit bounds queued-but-not-started jobs; submissions beyond it
	// are refused with 503. <= 0 means 64.
	QueueLimit int
	// MaxFinishedJobs bounds how many terminal jobs (and their streamed
	// event logs) are retained for listing and replay; the oldest finished
	// jobs are evicted first, at submission time, so a long-running server
	// does not grow without bound. <= 0 means 256.
	MaxFinishedJobs int
	// Fabric, when non-nil, runs the server in coordinator mode: jobs'
	// store-miss cells are dispatched to registered fleet workers over the
	// /v1/workers endpoints instead of simulated in-process. The zero
	// fabric.Config is valid (protocol defaults apply).
	Fabric *fabric.Config
	// Registry collects the server's metrics (job lifecycle, store latencies,
	// fabric queue depths) for GET /v1/metrics. nil mints a private registry,
	// so the endpoint always serves; pass one to share series with other
	// subsystems in the same process.
	Registry *obs.Registry
	// Log receives structured server diagnostics. nil discards them.
	Log *slog.Logger
}

// persistentStore is the slice of Disk/Shared the server drives beyond the
// plain Store reads and writes: directory identity for status reporting,
// torn-record accounting, and shutdown flush.
type persistentStore interface {
	store.Store[cluster.Result]
	Dir() string
	Dropped() int
	Close() error
}

// Server owns the job queue, the shared worker pool and the result store.
// Create with New, serve its Handler, and Close it on shutdown.
type Server struct {
	cfg      Config
	st       store.Store[cluster.Result]
	disk     persistentStore     // nil when memory-only
	coord    *fabric.Coordinator // nil unless coordinator mode
	legacy   int                 // pre-Version store keys counted at open
	slots    chan struct{}       // shared simulation-concurrency pool
	reg      *obs.Registry
	log      *slog.Logger
	met      svcMetrics
	started  time.Time
	revision string // VCS revision from build info, "" when unstamped

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // job IDs in submit order
	seq    int
	closed bool

	queue chan *job
	wg    sync.WaitGroup
}

// svcMetrics bundles the server's own observability series: job lifecycle
// gauges and counters. Store and fabric series live in their layers, wired to
// the same registry at New.
type svcMetrics struct {
	reg       *obs.Registry
	submitted *obs.Counter
	queued    *obs.Gauge
	running   *obs.Gauge
	// The analytic fast path: how many cells the closed-form estimator
	// served vs the exact simulator, how many auto-mode cells escalated,
	// and the estimator's latency distribution.
	analyticCells *obs.Counter
	exactCells    *obs.Counter
	escalations   *obs.Counter
	estimateHist  *obs.Histogram
	// Adaptive search: settled probes by resolution source, the latest
	// finished frontier's size, and per-probe wall-clock latency.
	searchProbes map[string]*obs.Counter
	frontierSize *obs.Gauge
	probeHist    *obs.Histogram
}

// probeSources are the scalefold.SearchSpec.OnProbe resolution sources; all
// three series are minted at New so they exposit at zero from first scrape.
var probeSources = []string{"analytic", "exact", "memo-hit"}

func newSvcMetrics(r *obs.Registry) svcMetrics {
	m := svcMetrics{
		reg:       r,
		submitted: r.Counter("scalefold_service_jobs_submitted_total", "Jobs accepted by POST /v1/jobs."),
		queued:    r.Gauge("scalefold_service_jobs_queued", "Jobs waiting for a scheduler slot."),
		running:   r.Gauge("scalefold_service_jobs_running", "Jobs currently executing."),
		analyticCells: r.Counter("scalefold_service_analytic_cells_total",
			"Cells served by the closed-form analytic estimator."),
		exactCells: r.Counter("scalefold_service_exact_cells_total",
			"Cells resolved by running the exact simulator."),
		escalations: r.Counter("scalefold_service_escalations_total",
			"Auto-mode cells whose analytic bounds forced exact simulation."),
		estimateHist: r.Histogram("scalefold_analytic_estimate_seconds",
			"Latency of one closed-form analytic estimate.", nil),
		searchProbes: map[string]*obs.Counter{},
		frontierSize: r.Gauge("scalefold_search_frontier_size",
			"Pareto-frontier size of the most recently finished search job."),
		probeHist: r.Histogram("scalefold_search_probe_seconds",
			"Wall-clock latency of one adaptive-search probe.", nil),
	}
	for _, src := range probeSources {
		m.searchProbes[src] = r.Counter("scalefold_search_probes_total",
			"Adaptive-search probes settled, by resolution source.",
			obs.Label{Key: "source", Value: src})
	}
	return m
}

// jobState is the job lifecycle hook: it keeps the queued/running gauges
// consistent across every transition (including cancel-while-queued) and
// counts terminal states. Called under the job's mutex; every operation here
// is lock-free, so no ordering constraint is violated.
func (m svcMetrics) jobState(from, to string) {
	switch from {
	case StateQueued:
		m.queued.Add(-1)
	case StateRunning:
		m.running.Add(-1)
	}
	switch to {
	case StateRunning:
		m.running.Add(1)
	case StateDone, StateCancelled, StateFailed:
		m.reg.Counter("scalefold_service_jobs_finished_total",
			"Jobs reaching a terminal state.", obs.Label{Key: "state", Value: to}).Inc()
	}
}

// New opens the store (replaying any existing segments) and starts the
// scheduler goroutines.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxActiveJobs <= 0 {
		cfg.MaxActiveJobs = 2
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 64
	}
	if cfg.MaxFinishedJobs <= 0 {
		cfg.MaxFinishedJobs = 256
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		cfg:     cfg,
		slots:   make(chan struct{}, cfg.Workers),
		jobs:    map[string]*job{},
		queue:   make(chan *job, cfg.QueueLimit),
		reg:     cfg.Registry,
		log:     cfg.Log,
		met:     newSvcMetrics(cfg.Registry),
		started: time.Now(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				s.revision = kv.Value
			}
		}
	}
	storeKind := "mem"
	// Legacy keys can only come from a pre-upgrade store on disk; the store
	// counts them incrementally while replaying its segments (no key scan,
	// no value decodes), and `scalefold store compact` sheds them.
	storeOpts := []store.Option{
		store.WithLegacyKey(func(k string) bool { return !scenario.IsCurrentKey(k) }),
	}
	if cfg.StoreCache > 0 {
		storeOpts = append(storeOpts, store.WithCache(cfg.StoreCache))
	}
	switch {
	case cfg.StoreDir != "" && cfg.Fabric != nil:
		// A coordinator shares its store directory with the worker fleet,
		// so it must join as one more Shared owner: a Get miss then tails
		// the workers' segments and finds their records, instead of the
		// coordinator re-writing every settled cell as a duplicate.
		storeKind = "shared"
		storeOpts = append(storeOpts, store.WithMetrics(store.NewMetrics(s.reg, storeKind)))
		sh, err := store.OpenShared[cluster.Result](cfg.StoreDir, "coordinator", storeOpts...)
		if err != nil {
			return nil, err
		}
		s.disk, s.st = sh, sh
	case cfg.StoreDir != "":
		// Metrics attach at open (not after) so the replay itself — sidecar
		// warm loads vs self-healed scans — shows up in the registry.
		storeKind = "disk"
		storeOpts = append(storeOpts, store.WithMetrics(store.NewMetrics(s.reg, storeKind)))
		d, err := store.OpenDisk[cluster.Result](cfg.StoreDir, storeOpts...)
		if err != nil {
			return nil, err
		}
		s.disk, s.st = d, d
	default:
		m := store.NewMem[cluster.Result]()
		m.SetMetrics(store.NewMetrics(s.reg, storeKind))
		s.st = m
	}
	if lg, ok := s.st.(interface{ Legacy() int }); ok {
		s.legacy = lg.Legacy()
	}
	if cfg.Fabric != nil {
		// Share the server's registry and logger with the coordinator unless
		// the fabric config brought its own.
		fc := *cfg.Fabric
		if fc.Registry == nil {
			fc.Registry = s.reg
		}
		if fc.Log == nil {
			fc.Log = s.log
		}
		s.coord = fabric.NewCoordinator(fc, s.st)
	}
	for i := 0; i < cfg.MaxActiveJobs; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				if j.kind == KindSearch {
					s.runSearchJob(j)
				} else {
					s.runJob(j)
				}
			}
		}()
	}
	return s, nil
}

// Store exposes the server's result store (read-mostly: stats, tests).
func (s *Server) Store() store.Store[cluster.Result] { return s.st }

// Coordinator exposes the fabric coordinator (nil unless the server was
// configured with Config.Fabric).
func (s *Server) Coordinator() *fabric.Coordinator { return s.coord }

// Close stops accepting jobs, cancels whatever is queued or running, waits
// for the schedulers to drain and closes the store. Safe to call once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, j := range s.jobs {
		j.cancel()
	}
	close(s.queue)
	s.mu.Unlock()
	// Fail the fabric's outstanding tasks before waiting: a scheduler worker
	// parked in a remote Execute must be unblocked for the drain to finish.
	if s.coord != nil {
		s.coord.Close()
	}
	s.wg.Wait()
	if s.disk != nil {
		return s.disk.Close()
	}
	return nil
}

// Submit validates and enqueues a sweep job, returning its initial status.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	spec = spec.withDefaults()
	sw := spec.sweepSpec()
	if err := sw.Validate(); err != nil {
		return JobStatus{}, &BadSpecError{Err: err}
	}
	j := &job{spec: spec, cells: sw.Cells()}
	st, err := s.enqueue(j)
	if err != nil {
		return JobStatus{}, err
	}
	s.log.Info("job submitted", "job", j.id, "cells", j.cells)
	return st, nil
}

// enqueue assigns the pre-validated job its identity and lifecycle plumbing
// and places it on the scheduler queue — the shared tail of Submit and
// SubmitSearch. Callers set kind, spec/search and cells.
func (s *Server) enqueue(j *job) (JobStatus, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, fmt.Errorf("service: server is shutting down")
	}
	s.seq++
	j.id = fmt.Sprintf("job-%06d", s.seq)
	j.state = StateQueued
	j.created = time.Now()
	j.notify = make(chan struct{})
	j.trace = obs.NewTracer()
	j.onState = s.met.jobState
	// Count the job queued before it is visible to a scheduler: start() fires
	// the queued→running transition as soon as a worker dequeues it.
	s.met.queued.Add(1)
	select {
	case s.queue <- j:
	default:
		s.seq--
		s.met.queued.Add(-1)
		s.mu.Unlock()
		return JobStatus{}, &QueueFullError{Limit: s.cfg.QueueLimit}
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.pruneLocked()
	s.mu.Unlock()
	s.met.submitted.Inc()
	return j.status(), nil
}

// pruneLocked evicts the oldest terminal jobs beyond the retention limit.
// Open streams keep their *job alive through their own reference; eviction
// only stops new lookups. Callers hold s.mu.
func (s *Server) pruneLocked() {
	finished := 0
	for _, id := range s.order {
		s.jobs[id].mu.Lock()
		done := s.jobs[id].finishedLocked()
		s.jobs[id].mu.Unlock()
		if done {
			finished++
		}
	}
	if finished <= s.cfg.MaxFinishedJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		done := j.finishedLocked()
		j.mu.Unlock()
		if done && finished > s.cfg.MaxFinishedJobs {
			delete(s.jobs, id)
			finished--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// BadSpecError marks a submission refused for an invalid sweep spec (400).
type BadSpecError struct{ Err error }

func (e *BadSpecError) Error() string { return e.Err.Error() }

// QueueFullError marks a submission refused for backpressure (503).
type QueueFullError struct{ Limit int }

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("service: job queue full (%d)", e.Limit)
}

// Job returns a job's status by ID.
func (s *Server) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// Jobs returns every job's status in submit order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Cancel cancels a queued or running job. Cancelling a finished job is a
// no-op; an unknown ID reports false.
func (s *Server) Cancel(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	j.cancel()
	return j.status(), true
}

// StoreStatus reports the persistent store's state.
func (s *Server) StoreStatus() StoreStatus {
	st := StoreStatus{Keys: s.st.Len(), LegacyKeys: s.legacy, Simulations: scalefold.Simulations()}
	if lg, ok := s.st.(interface{ Legacy() int }); ok {
		st.LegacyKeys = lg.Legacy() // live count: compaction sheds legacy keys
	}
	if s.disk != nil {
		st.Dir = s.disk.Dir()
		st.Dropped = s.disk.Dropped()
	}
	return st
}

// CompactStore rewrites the persistent store down to its live records,
// shedding overwritten duplicates and legacy-generation keys (admin
// endpoint POST /v1/store/compact). Jobs keep running: reads stay live
// throughout, writes block only for the rewrite itself. Memory-only servers
// report ok=false.
func (s *Server) CompactStore() (store.CompactStats, bool, error) {
	c, ok := s.st.(interface {
		Compact() (store.CompactStats, error)
	})
	if !ok {
		return store.CompactStats{}, false, nil
	}
	st, err := c.Compact()
	if err != nil {
		return store.CompactStats{}, true, err
	}
	s.log.Info("store compacted",
		"keys", st.Keys, "rewritten", st.Rewritten, "dropped_legacy", st.DroppedLegacy,
		"segments_before", st.SegmentsBefore, "segments_after", st.SegmentsAfter,
		"bytes_before", st.BytesBefore, "bytes_after", st.BytesAfter)
	return st, true, nil
}

// runJob executes one job on the shared pool. Cells resolve through three
// layers: the job-local memo (singleflight within the job), the server's
// persistent store (shared across jobs and restarts), and only then the
// simulator — gated by the server-wide slot semaphore so concurrent jobs
// cannot oversubscribe the machine.
func (s *Server) runJob(j *job) {
	if j.cancelled.Load() {
		j.finalize(StateCancelled, nil)
		return
	}
	j.start()
	sw := j.spec.sweepSpec()
	sw.Cache = sweep.NewCache[cluster.Result]()
	sw.Store = s.st
	sw.OnStoreErr = j.noteStoreErr
	sw.Metrics = &j.metrics
	sw.Trace = j.trace
	sw.Workers = j.spec.Workers
	sw.OnEstimate = func(d time.Duration) { s.met.estimateHist.Observe(d.Seconds()) }
	if s.coord != nil {
		// Coordinator mode: store-miss cells are dispatched to the fleet, so
		// engine "workers" are dispatch waiters, not simulations — size them
		// to the grid (capped), never to this machine's core count, or a
		// single-core coordinator would serialize the whole fleet. The slot
		// semaphore and the SimWorkers clamp guard local compute; neither
		// applies when the compute happens elsewhere.
		if sw.Workers <= 0 {
			sw.Workers = min(j.cells, 64)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		stop := func() { cancel() }
		j.stop.Store(&stop)
		defer j.stop.Store(nil)
		if j.cancelled.Load() {
			cancel() // cancelled between the queued check and hook install
		}
		sw.Runner = func(c scalefold.StepConfig) (cluster.Result, error) {
			res, rep, err := s.coord.ExecuteReport(ctx, c)
			if err != nil {
				return res, err
			}
			// The sweep layer deliberately leaves Runner-resolved cells
			// unspanned (see SweepSpec.Trace): record them here with the
			// coordinator's true attribution — the settling worker's ID (or
			// "coordinator" for its store fast path) and the worker-side
			// claim→settle execution window — so every cell appears in the
			// job trace exactly once whoever executed it.
			start, end := rep.Claimed, rep.Settled
			if start.IsZero() {
				start = end
			}
			j.trace.Span(rep.Owner, c.Name, "cell", start, end, map[string]string{
				"owner": rep.Owner, "source": rep.Source, "key": rep.Key,
			})
			return res, nil
		}
		sw.Gate = func(run func()) {
			if j.cancelled.Load() {
				return // drain: cell settles as a zero row, never persisted
			}
			run()
		}
	} else {
		if sw.Workers <= 0 || sw.Workers > s.cfg.Workers {
			sw.Workers = s.cfg.Workers
		}
		// SimWorkers shards work *inside* each gated cell, which the slot
		// semaphore cannot see — unclamped, one job could multiply the
		// server's compute concurrency past the pool. Bound the product of
		// cell parallelism and intra-cell shards by the pool size (results
		// are identical at any width, so clamping only costs latency).
		// Explicit scenarios carry their own sim_workers, so those are
		// clamped too — on a copy, leaving the job's submitted spec as
		// received.
		simLim := s.cfg.Workers / sw.Workers
		if simLim < 1 {
			simLim = 1
		}
		if sw.SimWorkers > simLim {
			sw.SimWorkers = simLim
		}
		cloned := false
		for i := range sw.Scenarios {
			if sw.Scenarios[i].SimWorkers > simLim {
				if !cloned {
					sw.Scenarios = append([]scenario.Scenario(nil), sw.Scenarios...)
					cloned = true
				}
				sw.Scenarios[i].SimWorkers = simLim
			}
		}
		sw.Gate = func(run func()) {
			if j.cancelled.Load() {
				return // drain: cell settles as a zero row, never persisted
			}
			s.slots <- struct{}{}
			defer func() { <-s.slots }()
			if j.cancelled.Load() {
				return
			}
			run()
		}
	}
	sw.OnRow = j.streamRow
	_, err := sw.Run(nil)
	// Fold the job's resolution counts into the server-lifetime series —
	// whatever terminal state the job reached, these count work that
	// actually happened.
	s.met.analyticCells.Add(j.metrics.Analytic.Load())
	s.met.exactCells.Add(j.metrics.Simulated.Load())
	s.met.escalations.Add(j.metrics.Escalated.Load())
	switch {
	case j.cancelled.Load():
		// Cancellation wins over failure: aborting remote dispatch makes the
		// runner surface a context error, but the user asked for cancel.
		j.finalize(StateCancelled, nil)
		s.log.Info("job cancelled", "job", j.id)
	case err != nil:
		j.finalize(StateFailed, err)
		s.log.Error("job failed", "job", j.id, "err", err)
	default:
		j.finalize(StateDone, nil)
		s.log.Info("job done", "job", j.id,
			"simulated", j.metrics.Simulated.Load(),
			"store_hits", j.metrics.StoreHits.Load(),
			"memo_hits", j.metrics.MemoHits.Load(),
			"remote", j.metrics.Remote.Load(),
			"analytic", j.metrics.Analytic.Load(),
			"escalations", j.metrics.Escalated.Load())
	}
}

// Health snapshots the server for GET /v1/healthz: liveness plus uptime,
// build identity, job-queue depths and (in coordinator mode) fleet size.
func (s *Server) Health() HealthStatus {
	h := HealthStatus{
		OK:        true,
		UptimeSec: time.Since(s.started).Seconds(),
		GoVersion: runtime.Version(),
		Revision:  s.revision,
		StoreKeys: s.st.Len(),
	}
	s.mu.Lock()
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			h.JobsQueued++
		case StateRunning:
			h.JobsRunning++
		default:
			h.JobsFinished++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	if s.coord != nil {
		fs := s.coord.Fleet()
		h.FleetWorkers = len(fs.Workers)
		h.PendingCells = fs.Pending + fs.Inflight
	}
	return h
}
