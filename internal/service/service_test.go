package service

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// tinyJob is a 4-cell sweep (DAP {1,2} × ablation {none, zero-launch}) at
// tiny rank counts: real simulator, fast enough to run end to end over HTTP.
func tinyJob() JobSpec {
	return JobSpec{
		Profile:   "scalefold",
		Arches:    []string{"H100"},
		Ranks:     []int{32},
		DAPs:      []int{1, 2},
		Ablations: []string{"none", "zero-launch"},
		Seeds:     1,
		Steps:     2,
		Workers:   1,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *Client, func()) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	stop := func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	}
	return srv, &Client{Base: ts.URL}, stop
}

// collectRows streams a job to completion and returns its row events keyed
// by grid index, plus the terminal event.
func collectRows(t *testing.T, c *Client, id string) (map[int]RowEvent, DoneEvent) {
	t.Helper()
	rows := map[int]RowEvent{}
	done, err := c.Stream(id, func(ev RowEvent) error {
		if _, dup := rows[ev.Index]; dup {
			t.Fatalf("row %d streamed twice", ev.Index)
		}
		rows[ev.Index] = ev
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows, done
}

// TestServeSubmitStreamRestartPersistence is the acceptance walk: start the
// server on a loopback port, submit a sweep over HTTP, stream NDJSON cells
// to completion, restart the server against the same store directory,
// resubmit the same spec, and observe every cell served from the persistent
// store — zero re-simulation — with byte-identical rows.
func TestServeSubmitStreamRestartPersistence(t *testing.T) {
	dir := t.TempDir()

	rowBytes := func(rows map[int]RowEvent, n int) []string {
		out := make([]string, n)
		for i := 0; i < n; i++ {
			ev, ok := rows[i]
			if !ok {
				t.Fatalf("row %d never streamed", i)
			}
			b, err := json.Marshal(ev)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = string(b)
		}
		return out
	}

	// First server lifetime: the job simulates and fills the store.
	_, c1, stop1 := newTestServer(t, Config{StoreDir: dir, Workers: 1})
	st, err := c1.Submit(tinyJob())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job state = %q", st.State)
	}
	if st.Cells != 4 {
		t.Fatalf("grid size %d, want 4", st.Cells)
	}
	rows1, done1 := collectRows(t, c1, st.ID)
	if done1.State != StateDone || done1.Rows != 4 || done1.Skipped != 0 {
		t.Fatalf("first done event: %+v", done1)
	}
	if done1.Simulated != 4 || done1.StoreHits != 0 {
		t.Fatalf("first run must simulate every cell: %+v", done1)
	}
	final, err := c1.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Done != 4 || final.Simulated != 4 {
		t.Fatalf("first job status: %+v", final)
	}
	ss, err := c1.StoreStatus()
	if err != nil {
		t.Fatal(err)
	}
	if ss.Keys != 4 || ss.Dir != dir {
		t.Fatalf("store status after first run: %+v", ss)
	}
	stop1()

	// Second server lifetime, same store directory: a brand-new process-
	// equivalent (fresh job-local memo caches, reloaded disk store). The
	// same spec must be served entirely from the store.
	srv2, c2, stop2 := newTestServer(t, Config{StoreDir: dir, Workers: 1})
	defer stop2()
	if n := srv2.Store().Len(); n != 4 {
		t.Fatalf("restarted store reloaded %d keys, want 4", n)
	}
	st2, err := c2.Submit(tinyJob())
	if err != nil {
		t.Fatal(err)
	}
	rows2, done2 := collectRows(t, c2, st2.ID)
	if done2.State != StateDone || done2.Rows != 4 {
		t.Fatalf("second done event: %+v", done2)
	}
	if done2.Simulated != 0 {
		t.Fatalf("restarted server re-simulated %d cells, want 0 (all from store)", done2.Simulated)
	}
	if done2.StoreHits != 4 {
		t.Fatalf("restarted server had %d store hits, want 4", done2.StoreHits)
	}

	b1, b2 := rowBytes(rows1, 4), rowBytes(rows2, 4)
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("row %d changed across restart:\n%s\nvs\n%s", i, b1[i], b2[i])
		}
	}
}

func TestStreamedRowsMatchSweepTable(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 1})
	defer stop()
	spec := tinyJob()
	spec.Ranks = []int{30} // not divisible by 4: the DAP-4 cells skip
	spec.DAPs = []int{1, 4}
	st, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	rows, done := collectRows(t, c, st.ID)
	if done.State != StateDone {
		t.Fatalf("done event: %+v", done)
	}
	if done.Skipped != 2 { // DAP-4 cells infeasible at 30 ranks
		t.Fatalf("skipped %d rows, want 2: %+v", done.Skipped, done)
	}
	for i, ev := range rows {
		if ev.Status == "skipped" {
			if ev.Skip == "" || ev.Data["median_step_s"] != "" {
				t.Fatalf("skipped row %d malformed: %+v", i, ev)
			}
			continue
		}
		if ev.Status != "ok" || ev.Data["median_step_s"] == "" || ev.Data["arch"] != "H100" {
			t.Fatalf("row %d malformed: %+v", i, ev)
		}
	}
}

func TestSubmitRejectsBadSpec(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 1})
	defer stop()
	bad := tinyJob()
	bad.Profile = "alphafold3"
	if _, err := c.Submit(bad); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("bad profile must yield HTTP 400, got %v", err)
	}
	neg := tinyJob()
	neg.Seeds = -1
	if _, err := c.Submit(neg); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("negative seeds must yield HTTP 400, got %v", err)
	}
}

func TestUnknownJobIs404(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 1})
	defer stop()
	if _, err := c.Job("job-999999"); err == nil || !strings.Contains(err.Error(), "HTTP 404") {
		t.Fatalf("unknown job must 404, got %v", err)
	}
	if _, err := c.Cancel("job-999999"); err == nil || !strings.Contains(err.Error(), "HTTP 404") {
		t.Fatalf("cancel of unknown job must 404, got %v", err)
	}
	if _, err := c.Stream("job-999999", nil); err == nil || !strings.Contains(err.Error(), "HTTP 404") {
		t.Fatalf("stream of unknown job must 404, got %v", err)
	}
}

// TestCancelQueuedJob pins FIFO scheduling and cancellation determinism:
// with one active-job slot, a second submission sits in the queue, can be
// cancelled there, and never simulates anything.
func TestCancelQueuedJob(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 1, MaxActiveJobs: 1})
	defer stop()
	first, err := c.Submit(tinyJob())
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.Submit(tinyJob())
	if err != nil {
		t.Fatal(err)
	}
	cancelled, err := c.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	// A cancelled queued job settles immediately — its status and stream
	// must not wait for a scheduler worker to dequeue it.
	if cancelled.State != StateCancelled {
		t.Fatalf("cancelled queued job reports %q, want %q now", cancelled.State, StateCancelled)
	}
	done, err := c.Stream(queued.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateCancelled || done.Simulated != 0 || done.Rows != 0 {
		t.Fatalf("cancelled-in-queue job must never simulate: %+v", done)
	}
	// The first job is unaffected and completes.
	if d, err := c.Stream(first.ID, nil); err != nil || d.State != StateDone {
		t.Fatalf("first job: %+v, %v", d, err)
	}
	list, err := c.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != first.ID || list[1].ID != queued.ID {
		t.Fatalf("job listing wrong: %+v", list)
	}
}

func TestJobsShareStoreWithinOneServer(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 1})
	defer stop()
	a, err := c.Submit(tinyJob())
	if err != nil {
		t.Fatal(err)
	}
	if d, err := c.Stream(a.ID, nil); err != nil || d.Simulated != 4 {
		t.Fatalf("first job: %+v, %v", d, err)
	}
	// Same spec again, same server: jobs have fresh memo caches, so the
	// sharing layer is the (here in-memory) store.
	b, err := c.Submit(tinyJob())
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Stream(b.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Simulated != 0 || d.StoreHits != 4 {
		t.Fatalf("second job must be served by the shared store: %+v", d)
	}
}

func TestFinishedJobRetentionBounded(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 1, MaxFinishedJobs: 1})
	defer stop()
	spec := tinyJob()
	spec.DAPs = []int{1}
	spec.Ablations = []string{"none"}
	var last JobStatus
	for i := 0; i < 3; i++ {
		st, err := c.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Stream(st.ID, nil); err != nil {
			t.Fatal(err)
		}
		last = st
	}
	list, err := c.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// Eviction happens at submission time, so after the third submit at
	// most MaxFinishedJobs finished jobs from before it survive, plus the
	// third job itself.
	if len(list) > 2 {
		t.Fatalf("retention must prune finished jobs: %d retained", len(list))
	}
	if _, err := c.Job(last.ID); err != nil {
		t.Fatalf("newest job must survive pruning: %v", err)
	}
}

func TestHealthz(t *testing.T) {
	srv, c, stop := newTestServer(t, Config{Workers: 1})
	defer stop()
	resp, err := c.http().Get(c.url("/v1/healthz"))
	if err != nil {
		t.Fatal(err)
	}
	var ok struct {
		OK bool `json:"ok"`
	}
	if err := decode(resp, &ok); err != nil || !ok.OK {
		t.Fatalf("healthz: %+v, %v", ok, err)
	}
	// Submitting after Close is refused rather than wedging the queue.
	stop()
	if _, err := srv.Submit(tinyJob()); err == nil {
		t.Fatal("submit after close must fail")
	}
}
