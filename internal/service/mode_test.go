package service

import (
	"encoding/json"
	"io"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestBadModeIs400TypedError pins the HTTP surface of mode validation: an
// unknown mode spelling — on the grid spec or inside an explicit scenario —
// is refused at submission with a 400 and a typed apiError body that lists
// the valid set, mirroring the CLI's exit-2 behavior.
func TestBadModeIs400TypedError(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 1})
	defer stop()

	badScenario := tinyScenario("none")
	badScenario.Mode = "psychic"
	for name, spec := range map[string]JobSpec{
		"grid spec mode":    {Mode: "psychic"},
		"scenario-own mode": {Scenarios: []scenario.Scenario{badScenario}},
		"spec mode applied": {Mode: "psychic", Scenarios: []scenario.Scenario{tinyScenario("none")}},
	} {
		body, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.http().Post(c.url("/v1/jobs"), "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 400 {
			t.Fatalf("%s: status %d, want 400: %s", name, resp.StatusCode, raw)
		}
		var ae apiError
		if err := json.Unmarshal(raw, &ae); err != nil || ae.Error == "" {
			t.Fatalf("%s: body is not a typed apiError: %s", name, raw)
		}
		if !strings.Contains(ae.Error, "psychic") {
			t.Errorf("%s: error %q does not name the offending mode", name, ae.Error)
		}
		for _, want := range scenario.Modes {
			if !strings.Contains(ae.Error, want) {
				t.Errorf("%s: error %q does not list valid mode %q", name, ae.Error, want)
			}
		}
	}
}

// TestAnalyticJobEndToEnd runs an analytic-mode job over HTTP and follows the
// estimate everywhere it must surface: the done event and job status carry
// the analytic cell count (and zero simulator runs), the server store holds
// only v5-generation keys, and /v1/metrics exposes the service-level mode
// counters plus the estimate-latency histogram.
func TestAnalyticJobEndToEnd(t *testing.T) {
	srv, c, stop := newTestServer(t, Config{Workers: 1})
	defer stop()

	spec := tinyJob()
	spec.Mode = scenario.ModeAnalytic
	st, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Spec.Mode != scenario.ModeAnalytic {
		t.Fatalf("accepted spec lost its mode: %+v", st.Spec)
	}
	_, done := collectRows(t, c, st.ID)
	if done.State != StateDone || done.Rows != 4 {
		t.Fatalf("done event: %+v", done)
	}
	if done.Analytic != 4 || done.Simulated != 0 || done.Escalations != 0 {
		t.Fatalf("analytic job must estimate every cell: %+v", done)
	}
	status, err := c.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.Analytic != 4 || status.Simulated != 0 {
		t.Fatalf("job status mode counters: %+v", status)
	}
	for _, k := range srv.Store().Keys() {
		if !strings.HasPrefix(k, "v5:") {
			t.Errorf("analytic cell stored under non-v5 key %s", k)
		}
	}

	resp, err := c.http().Get(c.url("/v1/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE scalefold_service_analytic_cells_total counter",
		"scalefold_service_analytic_cells_total 4",
		"scalefold_service_exact_cells_total 0",
		"scalefold_service_escalations_total 0",
		"# TYPE scalefold_analytic_estimate_seconds histogram",
		"scalefold_analytic_estimate_seconds_count 4",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}
