package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestTraceSurfacesBodyReadErrors pins the Client.Trace error path: when a
// non-200 response's body dies mid-read (Content-Length longer than what the
// server wrote, a truncated proxy, a dropped connection), the read failure
// must be surfaced — not swallowed into an empty-body "HTTP 500: " error
// that hides what actually went wrong.
func TestTraceSurfacesBodyReadErrors(t *testing.T) {
	const partial = `{"error": "the real`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Promise more bytes than we send, then hijack and close so the
		// client's io.ReadAll fails with an unexpected EOF instead of
		// seeing a clean (but silently truncated) body.
		w.Header().Set("Content-Length", strconv.Itoa(len(partial)+512))
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, partial)
		conn, _, err := http.NewResponseController(w).Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		conn.Close()
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL}
	err := c.Trace("job-000001", io.Discard)
	if err == nil {
		t.Fatal("Trace must fail on a truncated error body")
	}
	if !strings.Contains(err.Error(), "body unreadable") {
		t.Fatalf("read failure swallowed: %v", err)
	}
	if !strings.Contains(err.Error(), "HTTP 500") {
		t.Fatalf("status lost from the error: %v", err)
	}
}

// TestTraceReportsErrorEnvelope covers the healthy non-200 branch around the
// fix: a complete error body still decodes into the server's envelope.
func TestTraceReportsErrorEnvelope(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 1})
	defer stop()
	err := c.Trace("job-999999", io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown job") ||
		!strings.Contains(err.Error(), "HTTP 404") {
		t.Fatalf("want the 404 envelope surfaced, got %v", err)
	}
}
