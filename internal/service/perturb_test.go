package service

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/perturb"
	"repro/internal/scenario"
	"repro/internal/store"
)

func perturbedTiny(failProb float64) scenario.Scenario {
	sc := tinyScenario("")
	sc.Perturb = &perturb.Spec{FailProb: failProb, RestartCost: 30}
	return sc
}

// TestStoreReloadV3KeysNeverMatchV4Lookups pins the versioned-out contract
// across a store reload: a directory holding v3 records of healthy
// scenarios plus a pre-v3 legacy dump reopens with the legacy key counted
// in legacy_keys (never served), a current-schema v3 record still serving
// its healthy scenario, a pre-perturbation-schema v3 record (no Goodput)
// transparently upgraded instead of served stale, and a v4 (perturbed)
// lookup of the SAME underlying scenario simulating fresh — a v3 key must
// never satisfy a v4 lookup, however close the descriptors are.
func TestStoreReloadV3KeysNeverMatchV4Lookups(t *testing.T) {
	dir := t.TempDir()
	healthy, oldSchema, perturbed := tinyScenario(""), tinyScenario("zero-launch"), perturbedTiny(0.5)
	if !strings.HasPrefix(healthy.Fingerprint(), "v3:") || !strings.HasPrefix(perturbed.Fingerprint(), "v4:") {
		t.Fatalf("generation prefixes drifted: %s / %s", healthy.Fingerprint(), perturbed.Fingerprint())
	}

	// Era 1: a store holding one truly legacy (prefix-less, pre-v3) dump,
	// one current-schema healthy v3 record (Goodput 1: written by a
	// perturbation-aware build; the poison MeanStep is visible in any row
	// it serves), and one pre-perturbation-schema v3 record — Goodput 0,
	// as every record written before the Result gained its metrics decodes.
	pre, err := store.OpenDisk[cluster.Result](dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := pre.Put("census{...}|ranks=32|legacy-dump", cluster.Result{MeanStep: 424242}); err != nil {
		t.Fatal(err)
	}
	if err := pre.Put(healthy.Fingerprint(), cluster.Result{MeanStep: 777777, Goodput: 1}); err != nil {
		t.Fatal(err)
	}
	if err := pre.Put(oldSchema.Fingerprint(), cluster.Result{MeanStep: 555555}); err != nil {
		t.Fatal(err)
	}
	if err := pre.Close(); err != nil {
		t.Fatal(err)
	}

	// Era 2: the store reloads under a server; the perturbed job must
	// simulate — its v4 key has no record — while the healthy job is
	// served from the era-1 v3 record without simulating.
	_, client, stop := newTestServer(t, Config{Workers: 2, StoreDir: dir})
	defer stop()

	st, err := client.Submit(JobSpec{Scenarios: []scenario.Scenario{perturbed}})
	if err != nil {
		t.Fatal(err)
	}
	if _, done := collectRows(t, client, st.ID); done.Simulated != 1 || done.StoreHits != 0 {
		t.Fatalf("v4 lookup must miss every v3/legacy record: %+v", done)
	}

	st2, err := client.Submit(JobSpec{Scenarios: []scenario.Scenario{healthy}})
	if err != nil {
		t.Fatal(err)
	}
	rows, done2 := collectRows(t, client, st2.ID)
	if done2.Simulated != 0 || done2.StoreHits != 1 {
		t.Fatalf("healthy scenario must still be served by its era-1 v3 record: %+v", done2)
	}
	// …and it really is the stored record (the poison mean), not a fresh
	// simulation that happened to land on the same key.
	if got := rows[0].Data["mean_step_s"]; got != "0.000778" {
		t.Fatalf("healthy row mean %q, want the stored v3 record's 777777ns", got)
	}

	// The pre-perturbation-schema record must NOT be served (its zero
	// goodput/percentiles would poison resilience output): the first
	// lookup upgrades it — re-simulates and overwrites — after which it
	// serves normally.
	for round, want := range []struct{ sim, hit int64 }{{1, 0}, {0, 1}} {
		st3, err := client.Submit(JobSpec{Scenarios: []scenario.Scenario{oldSchema}})
		if err != nil {
			t.Fatal(err)
		}
		rows3, done3 := collectRows(t, client, st3.ID)
		if done3.Simulated != want.sim || done3.StoreHits != want.hit {
			t.Fatalf("old-schema round %d: %+v, want simulated=%d store_hits=%d",
				round, done3, want.sim, want.hit)
		}
		if got := rows3[0].Data["mean_step_s"]; got == "0.000556" {
			t.Fatalf("old-schema round %d served the stale 555555ns record", round)
		}
	}

	status, err := client.StoreStatus()
	if err != nil {
		t.Fatal(err)
	}
	// 4 keys total: legacy dump + two v3 records + fresh v4 record; only
	// the prefix-less dump is legacy.
	if status.Keys != 4 || status.LegacyKeys != 1 {
		t.Fatalf("store status %+v, want 4 keys with 1 legacy", status)
	}
}

// TestPerturbedJobSpecRunsAndKeysV4 pins the wire plumbing: a job-level
// "perturb" block applies to grid-style and explicit cells, lands v4 store
// keys, and an invalid spec is refused with HTTP 400 at submission.
func TestPerturbedJobSpecRunsAndKeysV4(t *testing.T) {
	srv, client, stop := newTestServer(t, Config{Workers: 2})
	defer stop()

	spec := JobSpec{
		Scenarios: []scenario.Scenario{tinyScenario("")},
		Perturb:   &perturb.Spec{StallRate: 0.5, StallMean: 1},
	}
	st, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, done := collectRows(t, client, st.ID); done.State != StateDone || done.Simulated != 1 {
		t.Fatalf("perturbed job ended %+v", done)
	}
	keys := srv.Store().Keys()
	if len(keys) != 1 || !strings.HasPrefix(keys[0], "v4:") {
		t.Fatalf("perturbed cell must key under v4, got %v", keys)
	}

	// A scenario carrying its own block wins over the job-level one: the
	// same submission with a per-scenario spec lands a different v4 key.
	own := JobSpec{Scenarios: []scenario.Scenario{perturbedTiny(0.25)}, Perturb: &perturb.Spec{StallRate: 0.5, StallMean: 1}}
	st2, err := client.Submit(own)
	if err != nil {
		t.Fatal(err)
	}
	if _, done := collectRows(t, client, st2.ID); done.Simulated != 1 {
		t.Fatalf("own-block job ended %+v", done)
	}
	if got := len(srv.Store().Keys()); got != 2 {
		t.Fatalf("distinct perturbations must land distinct keys, store has %d", got)
	}

	for name, bad := range map[string]JobSpec{
		"job-level out of domain":    {Perturb: &perturb.Spec{FailProb: 40}},
		"per-scenario out of domain": {Scenarios: []scenario.Scenario{perturbedTiny(7)}},
	} {
		if _, err := client.Submit(bad); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
			t.Fatalf("%s: want HTTP 400, got %v", name, err)
		}
	}
}
