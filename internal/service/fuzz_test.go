package service

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzSearchSpec drives the POST /v1/search submission pipeline over
// arbitrary JSON: strict decode, defaulting, validation — none of it may
// panic whatever the bytes say (the handler runs exactly this path on
// unauthenticated input). Specs that validate must additionally survive the
// wire round trip and still validate: a job listed by GET /v1/jobs carries
// its submitted spec, and a client must be able to resubmit it verbatim.
func FuzzSearchSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"objective":"minimize-cost-steptime","arch":"H100","ranks":[128,1024],"dap":[8],"fail_lo":1e-6,"fail_hi":1e-2,"budget":24}`))
	f.Add([]byte(`{"objective":"maximize-flops"}`))
	f.Add([]byte(`{"fail_lo":1,"fail_hi":0.5,"tolerance":-3,"cliff_goodput":7}`))
	f.Add([]byte(`{"ranks":[0,-5],"dap":[3],"mode":"guess","budget":1,"sim_workers":-2}`))
	f.Add([]byte(`{"restart_cost_s":1e308,"steps":-1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec SearchJobSpec
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if dec.Decode(&spec) != nil {
			return // refused at the handler with 400
		}
		if err := spec.searchSpec().WithDefaults().Validate(); err != nil {
			return // refused at Submit with 400
		}
		blob, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec failed to marshal: %+v: %v", spec, err)
		}
		var back SearchJobSpec
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("round trip of accepted spec rejected: %s: %v", blob, err)
		}
		if err := back.searchSpec().WithDefaults().Validate(); err != nil {
			t.Fatalf("round trip broke validity: %s: %v", blob, err)
		}
	})
}
