package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/store", s.handleStore)
	mux.HandleFunc("POST /v1/store/compact", s.handleStoreCompact)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	if s.coord != nil {
		s.coord.Mount(mux) // /v1/workers fleet protocol (coordinator mode)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job spec: " + err.Error()})
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// handleSearch accepts an adaptive-search job: same queue, same status and
// stream endpoints as sweep jobs, searched instead of enumerated. An invalid
// spec — unknown objective, mode, platform, infeasible ladder — is 400.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var spec SearchJobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad search spec: " + err.Error()})
		return
	}
	st, err := s.SubmitSearch(spec)
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// writeSubmitErr maps submission failures to their status codes: invalid
// specs to 400, queue backpressure to 503, anything else to 500.
func writeSubmitErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var bad *BadSpecError
	var full *QueueFullError
	switch {
	case errors.As(err, &bad):
		code = http.StatusBadRequest
	case errors.As(err, &full):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, apiError{Error: err.Error()})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: s.Jobs()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleStream replays the job's event log as NDJSON and follows it until
// the terminal DoneEvent, flushing after every batch so a watching client
// sees cells as they settle.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job " + r.PathValue("id")})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	offset := 0
	for {
		events, done, wait := j.follow(offset)
		for _, e := range events {
			if _, err := w.Write(e); err != nil {
				return
			}
		}
		offset += len(events)
		if len(events) > 0 {
			rc.Flush()
		}
		if done {
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StoreStatus())
}

// handleStoreCompact is the admin endpoint behind `scalefold store compact
// -server`: rewrite the persistent store down to its live records.
func (s *Server) handleStoreCompact(w http.ResponseWriter, r *http.Request) {
	st, ok, err := s.CompactStore()
	if !ok {
		writeJSON(w, http.StatusConflict, apiError{Error: "store is memory-only; nothing to compact"})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

// handleMetrics serves the registry in Prometheus text exposition format —
// service, store and (coordinator mode) fabric series in one scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// handleTrace serves the job's cell-lifecycle spans as Chrome trace-event
// JSON — loadable as-is in chrome://tracing or Perfetto, same format the
// simulator's own Timeline export uses. Valid at any point in the job's life;
// a still-running job yields the spans settled so far.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job " + r.PathValue("id")})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="`+j.id+`-trace.json"`)
	j.trace.WriteChromeTrace(w)
}
