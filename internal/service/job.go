package service

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/scalefold"
)

// job is one queued/running/finished sweep job: the spec, its lifecycle
// state, and the append-only NDJSON event log that streaming clients replay
// and follow.
type job struct {
	id string
	// kind discriminates the job's engine: "" / KindSweep runs the sweep
	// grid from spec; KindSearch runs the adaptive search from search.
	kind    string
	spec    JobSpec
	search  *SearchJobSpec
	cells   int
	created time.Time

	metrics   scalefold.SweepMetrics
	cancelled atomic.Bool

	// trace records one lifecycle span per settled cell (local, memo or
	// remote lanes), served by GET /v1/jobs/{id}/trace. Created at Submit;
	// immutable pointer, internally synchronized.
	trace *obs.Tracer
	// onState, when set, observes every lifecycle transition (the server's
	// gauge bookkeeping). Called under j.mu; must not block.
	onState func(from, to string)

	// stop, when set (by runJob, before dispatch starts), is fired on cancel
	// to abort remote waits — cells parked in fabric Execute calls — that the
	// drain gate alone cannot unblock. Guarded by mu; fired outside it.
	stop atomic.Pointer[func()]

	mu       sync.Mutex
	state    string
	started  *time.Time
	finished *time.Time
	err      string
	storeErr string
	rows     int // settled rows streamed so far (executed + skipped)
	skipped  int
	// Search-job progress: probes settled, Pareto-frontier size once done.
	probes       int
	frontierSize int
	events       [][]byte      // marshaled NDJSON lines, append-only
	notify       chan struct{} // closed and replaced on every append/state change
}

// wake signals stream followers. Callers hold j.mu.
func (j *job) wakeLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

func (j *job) start() {
	j.mu.Lock()
	// A queued job can be cancel-finalized between the scheduler's dequeue
	// and this call; never resurrect a settled job.
	if !j.finishedLocked() {
		from := j.state
		now := time.Now()
		j.state, j.started = StateRunning, &now
		if j.onState != nil {
			j.onState(from, StateRunning)
		}
		j.wakeLocked()
	}
	j.mu.Unlock()
}

// cancel marks the job cancelled. A job still sitting in the queue settles
// immediately — its status flips to cancelled and its stream ends now, not
// when a scheduler worker eventually dequeues it. A running job drains
// through the gates and is finalized by runJob; finalize is idempotent, so
// the scheduler's later pass over an already-settled queued job is a no-op.
func (j *job) cancel() {
	j.cancelled.Store(true)
	if stop := j.stop.Load(); stop != nil {
		(*stop)()
	}
	j.mu.Lock()
	if j.state == StateQueued {
		j.finalizeLocked(StateCancelled, nil)
	}
	j.mu.Unlock()
}

func (j *job) noteStoreErr(err error) {
	j.mu.Lock()
	j.storeErr = err.Error()
	j.mu.Unlock()
}

// streamRow is the SweepSpec.OnRow hook: it formats the settled row through
// the canonical result table (so a streamed row is byte-for-byte what the
// CSV/JSON emitters would print for that cell, however it was satisfied) and
// appends it to the event log.
func (j *job) streamRow(i int, row scalefold.SweepRow) {
	if j.cancelled.Load() {
		return // drained cells carry zero results; don't stream them
	}
	tab := scalefold.SweepTable([]scalefold.SweepRow{row})
	data := make(map[string]string, len(tab.Header))
	for k, h := range tab.Header {
		data[h] = tab.Rows[0][k]
	}
	ev := RowEvent{Type: "row", Index: i, Status: data["status"], Skip: row.SkipReason, Data: data}
	line, err := json.Marshal(ev)
	if err != nil {
		return // unreachable: RowEvent is marshal-safe
	}
	j.mu.Lock()
	j.rows++
	if row.SkipReason != "" {
		j.skipped++
	}
	j.events = append(j.events, append(line, '\n'))
	j.wakeLocked()
	j.mu.Unlock()
}

// finalize settles the job's terminal state and appends the DoneEvent that
// ends every stream. Idempotent: the first terminal transition wins.
func (j *job) finalize(state string, err error) {
	j.mu.Lock()
	j.finalizeLocked(state, err)
	j.mu.Unlock()
}

func (j *job) finalizeLocked(state string, err error) {
	if j.finishedLocked() {
		return
	}
	from := j.state
	now := time.Now()
	j.state, j.finished = state, &now
	if j.onState != nil {
		j.onState(from, state)
	}
	if err != nil {
		j.err = err.Error()
	}
	done := DoneEvent{
		Type: "done", State: state, Rows: j.rows, Skipped: j.skipped,
		Simulated:   j.metrics.Simulated.Load(),
		StoreHits:   j.metrics.StoreHits.Load(),
		MemoHits:    j.metrics.MemoHits.Load(),
		Remote:      j.metrics.Remote.Load(),
		Analytic:    j.metrics.Analytic.Load(),
		Escalations: j.metrics.Escalated.Load(),
		Error:       j.err,
	}
	line, _ := json.Marshal(done)
	j.events = append(j.events, append(line, '\n'))
	j.wakeLocked()
}

// finished reports whether the job reached a terminal state. Callers hold
// j.mu.
func (j *job) finishedLocked() bool {
	return j.state == StateDone || j.state == StateCancelled || j.state == StateFailed
}

// status snapshots the job for the wire.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.id, State: j.state, Kind: j.kind, Spec: j.spec, Search: j.search,
		Cells: j.cells, Done: j.rows, Skipped: j.skipped,
		Probes: j.probes, FrontierSize: j.frontierSize,
		Simulated:   j.metrics.Simulated.Load(),
		StoreHits:   j.metrics.StoreHits.Load(),
		MemoHits:    j.metrics.MemoHits.Load(),
		Remote:      j.metrics.Remote.Load(),
		Analytic:    j.metrics.Analytic.Load(),
		Escalations: j.metrics.Escalated.Load(),
		Created:     j.created, Started: j.started, Finished: j.finished,
		Error: j.err, StoreErr: j.storeErr,
	}
}

// follow returns the events from offset onwards plus the channel to wait on
// for more and whether the log is complete.
func (j *job) follow(offset int) (events [][]byte, done bool, wait <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if offset < len(j.events) {
		events = j.events[offset:]
	}
	return events, j.finishedLocked() && offset+len(events) == len(j.events), j.notify
}
