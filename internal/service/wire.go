package service

import (
	"time"

	"repro/internal/perturb"
	"repro/internal/scalefold"
	"repro/internal/scenario"
)

// JobSpec is the wire form of a sweep job, JSON-encoded for POST /v1/jobs.
// Two shapes are accepted:
//
//   - Grid axes: the same fields the `scalefold sweep` subcommand exposes as
//     flags. Empty fields take the DefaultSweepSpec values, so `{}` submits
//     the default 24-cell exploration grid.
//   - Explicit scenarios: `scenarios` carries canonical scenario.Scenario
//     JSON objects, one per cell — the same descriptor the memo and the
//     persistent store are keyed by. When present, the axis fields are
//     ignored and every scenario is validated at submission (400 on the
//     first invalid one).
type JobSpec struct {
	Profile   string   `json:"profile,omitempty"`
	Arches    []string `json:"arch,omitempty"`
	Ranks     []int    `json:"ranks,omitempty"`
	DAPs      []int    `json:"dap,omitempty"`
	Ablations []string `json:"ablate,omitempty"`
	Seeds     int      `json:"seeds,omitempty"`
	Steps     int      `json:"steps,omitempty"`
	// Workers bounds this job's engine parallelism; the server additionally
	// bounds total in-flight simulations across all jobs with its shared
	// pool, so this can only narrow, never widen, the server limit.
	Workers int `json:"workers,omitempty"`
	// SimWorkers shards each simulation's internal per-rank work across
	// goroutines (execution detail: results and store keys are identical
	// for every value — see scenario.Scenario.SimWorkers). The server
	// clamps it so cell-parallelism × intra-cell shards never exceeds its
	// worker pool — like Workers, it can only narrow the server limit.
	SimWorkers int `json:"sim_workers,omitempty"`
	// Perturb injects unhealthy-cluster noise (stragglers, transient
	// stalls, failures + checkpoint-restarts; see the perturb JSON schema
	// in docs/cli.md) into every grid cell, and into explicit scenarios
	// that don't carry their own "perturb" block. Identity-bearing:
	// perturbed cells key under the v4 fingerprint generation.
	Perturb *perturb.Spec `json:"perturb,omitempty"`
	// Mode selects how cells resolve their Result: "" or "exact" simulates
	// (the default), "analytic" serves the closed-form estimate, "auto"
	// estimates and escalates only the cells whose error bounds straddle a
	// decision boundary (see scalefold.SweepSpec.Mode). Applied to every
	// grid cell and to explicit scenarios without their own "mode" field;
	// an unknown spelling is refused with 400 at submission.
	Mode string `json:"mode,omitempty"`
	// Scenarios lists explicit cells in the canonical Scenario JSON schema
	// (see docs/cli.md); non-empty Scenarios supersede the axis fields.
	Scenarios []scenario.Scenario `json:"scenarios,omitempty"`
}

// withDefaults fills unset axes from the default sweep spec. Explicit-
// scenario jobs pass through untouched: their cells are fully specified.
func (js JobSpec) withDefaults() JobSpec {
	if len(js.Scenarios) > 0 {
		return js
	}
	d := scalefold.DefaultSweepSpec()
	if js.Profile == "" {
		js.Profile = d.Profile
	}
	if len(js.Arches) == 0 {
		js.Arches = d.Arches
	}
	if len(js.Ranks) == 0 {
		js.Ranks = d.Ranks
	}
	if len(js.DAPs) == 0 {
		js.DAPs = d.DAPs
	}
	if len(js.Ablations) == 0 {
		js.Ablations = d.Ablations
	}
	if js.Seeds == 0 {
		js.Seeds = d.Seeds
	}
	return js
}

// sweepSpec lowers the wire spec to an executable one (axes and explicit
// scenarios only — the server fills cache, store, metrics and scheduling
// hooks).
func (js JobSpec) sweepSpec() scalefold.SweepSpec {
	return scalefold.SweepSpec{
		Profile:    js.Profile,
		Arches:     js.Arches,
		Ranks:      js.Ranks,
		DAPs:       js.DAPs,
		Ablations:  js.Ablations,
		Seeds:      js.Seeds,
		Steps:      js.Steps,
		SimWorkers: js.SimWorkers,
		Perturb:    js.Perturb,
		Mode:       js.Mode,
		Scenarios:  js.Scenarios,
	}
}

// Job kinds: the engine a job runs on. The zero kind is a sweep, so
// pre-search clients and stored statuses read unchanged.
const (
	KindSweep  = ""
	KindSearch = "search"
)

// Job states, in lifecycle order.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateCancelled = "cancelled"
	StateFailed    = "failed"
)

// JobStatus is the wire form of a job's current state, returned by the
// status and listing endpoints and embedded in the submit response.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Kind is KindSearch for adaptive-search jobs, omitted for sweeps.
	Kind string  `json:"kind,omitempty"`
	Spec JobSpec `json:"spec"`
	// Search carries the submitted search spec for KindSearch jobs (Spec is
	// then the zero sweep spec).
	Search *SearchJobSpec `json:"search,omitempty"`
	// Cells is the full grid size (the probe budget, for searches), Done
	// counts settled rows so far (executed or skipped), Skipped the
	// infeasible rows among them.
	Cells   int `json:"cells"`
	Done    int `json:"done"`
	Skipped int `json:"skipped"`
	// Probes counts settled search probes; FrontierSize the Pareto points
	// of a finished search. Both omitted for sweeps.
	Probes       int `json:"probes,omitempty"`
	FrontierSize int `json:"frontier_size,omitempty"`
	// How the executed cells were satisfied (see scalefold.SweepMetrics).
	// Remote counts cells dispatched to the worker fleet; it is only nonzero
	// on a coordinator-mode server.
	Simulated int64 `json:"simulated"`
	StoreHits int64 `json:"store_hits"`
	MemoHits  int64 `json:"memo_hits"`
	Remote    int64 `json:"remote,omitempty"`
	// Analytic counts cells served by the closed-form estimator;
	// Escalations counts auto-mode cells whose error bounds forced exact
	// simulation. Both are zero (and omitted) for plain exact jobs.
	Analytic    int64 `json:"analytic,omitempty"`
	Escalations int64 `json:"escalations,omitempty"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`

	// Error is set for failed jobs; StoreErr records the last persistent-
	// store write failure (the job still completes from memory).
	Error    string `json:"error,omitempty"`
	StoreErr string `json:"store_err,omitempty"`
}

// RowEvent is one NDJSON line of GET /v1/jobs/{id}/stream: a settled sweep
// row. Index is the grid-order row index; Data maps the canonical result-
// table header (scalefold.SweepTable) to the cell's formatted values, so a
// row's bytes are a function of the scenario alone — byte-identical whether
// the cell was simulated, memoized or served from the persistent store.
type RowEvent struct {
	Type   string            `json:"type"` // "row"
	Index  int               `json:"index"`
	Status string            `json:"status"`         // "ok" or "skipped"
	Skip   string            `json:"skip,omitempty"` // reason, for skipped rows
	Data   map[string]string `json:"data"`
}

// DoneEvent is the final NDJSON line of a job stream.
type DoneEvent struct {
	Type        string `json:"type"` // "done"
	State       string `json:"state"`
	Rows        int    `json:"rows"`
	Skipped     int    `json:"skipped"`
	Simulated   int64  `json:"simulated"`
	StoreHits   int64  `json:"store_hits"`
	MemoHits    int64  `json:"memo_hits"`
	Remote      int64  `json:"remote,omitempty"`
	Analytic    int64  `json:"analytic,omitempty"`
	Escalations int64  `json:"escalations,omitempty"`
	Error       string `json:"error,omitempty"`
}

// HealthStatus is the wire form of GET /v1/healthz: liveness (always OK when
// the server answers at all) plus enough context to read a dashboard without
// three more requests — uptime, build identity, queue depths and fleet size.
type HealthStatus struct {
	OK        bool    `json:"ok"`
	UptimeSec float64 `json:"uptime_s"`
	GoVersion string  `json:"go_version"`
	// Revision is the VCS revision stamped into the binary ("" for
	// unstamped builds, e.g. `go test`).
	Revision string `json:"revision,omitempty"`
	// Job-queue depths by lifecycle stage.
	JobsQueued   int `json:"jobs_queued"`
	JobsRunning  int `json:"jobs_running"`
	JobsFinished int `json:"jobs_finished"`
	StoreKeys    int `json:"store_keys"`
	// FleetWorkers and PendingCells are coordinator-mode only: live
	// registered workers and cells queued or assigned on the fabric.
	FleetWorkers int `json:"fleet_workers,omitempty"`
	PendingCells int `json:"pending_cells,omitempty"`
}

// StoreStatus is the wire form of GET /v1/store.
type StoreStatus struct {
	Keys int `json:"keys"`
	// LegacyKeys counts stored results whose key predates the current
	// fingerprint encoding version (scenario.Version). They are kept in the
	// append-only log but never matched by lookups — the documented cost of
	// a deliberate encoding bump. A nonzero count after an upgrade is
	// expected; a nonzero count on a fresh store is a bug.
	LegacyKeys int `json:"legacy_keys,omitempty"`
	// Dir is empty for a memory-only server.
	Dir string `json:"dir,omitempty"`
	// Dropped counts unparsable log lines skipped at startup (disk only).
	Dropped int `json:"dropped,omitempty"`
	// Simulations counts actual simulator runs in this server process.
	Simulations int64 `json:"simulations"`
}
