package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/scalefold"
	"repro/internal/store"
)

// Client is the thin HTTP client behind `scalefold submit` and `scalefold
// jobs`: plain JSON over the /v1 API, no state beyond the base URL.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8823".
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient). Streams can
	// outlive any client timeout, so a custom client should keep Timeout 0
	// and bound dials/TLS instead.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// decode parses a JSON response, lifting the server's error envelope (and
// non-2xx status) into a Go error.
func decode[T any](resp *http.Response, out *T) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("service: reading response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		var ae apiError
		if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
			return fmt.Errorf("service: %s (HTTP %d)", ae.Error, resp.StatusCode)
		}
		return fmt.Errorf("service: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("service: decoding response: %w", err)
	}
	return nil
}

// Submit posts a job spec and returns the accepted job's status.
func (c *Client) Submit(spec JobSpec) (JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, fmt.Errorf("service: %w", err)
	}
	resp, err := c.http().Post(c.url("/v1/jobs"), "application/json", bytes.NewReader(body))
	if err != nil {
		return JobStatus{}, fmt.Errorf("service: %w", err)
	}
	var st JobStatus
	return st, decode(resp, &st)
}

// SubmitSearch posts an adaptive-search spec (POST /v1/search) and returns
// the accepted job's status.
func (c *Client) SubmitSearch(spec SearchJobSpec) (JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, fmt.Errorf("service: %w", err)
	}
	resp, err := c.http().Post(c.url("/v1/search"), "application/json", bytes.NewReader(body))
	if err != nil {
		return JobStatus{}, fmt.Errorf("service: %w", err)
	}
	var st JobStatus
	return st, decode(resp, &st)
}

// Jobs lists every job on the server, in submit order.
func (c *Client) Jobs() ([]JobStatus, error) {
	resp, err := c.http().Get(c.url("/v1/jobs"))
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	return out.Jobs, decode(resp, &out)
}

// Job fetches one job's status.
func (c *Client) Job(id string) (JobStatus, error) {
	resp, err := c.http().Get(c.url("/v1/jobs/" + id))
	if err != nil {
		return JobStatus{}, fmt.Errorf("service: %w", err)
	}
	var st JobStatus
	return st, decode(resp, &st)
}

// Cancel cancels a queued or running job and returns its status.
func (c *Client) Cancel(id string) (JobStatus, error) {
	resp, err := c.http().Post(c.url("/v1/jobs/"+id+"/cancel"), "application/json", nil)
	if err != nil {
		return JobStatus{}, fmt.Errorf("service: %w", err)
	}
	var st JobStatus
	return st, decode(resp, &st)
}

// StoreStatus fetches the server's store statistics.
func (c *Client) StoreStatus() (StoreStatus, error) {
	resp, err := c.http().Get(c.url("/v1/store"))
	if err != nil {
		return StoreStatus{}, fmt.Errorf("service: %w", err)
	}
	var st StoreStatus
	return st, decode(resp, &st)
}

// CompactStore asks the server to compact its persistent store
// (POST /v1/store/compact) and returns the compaction statistics.
func (c *Client) CompactStore() (store.CompactStats, error) {
	resp, err := c.http().Post(c.url("/v1/store/compact"), "application/json", nil)
	if err != nil {
		return store.CompactStats{}, fmt.Errorf("service: %w", err)
	}
	var st store.CompactStats
	return st, decode(resp, &st)
}

// Trace downloads a job's Chrome trace-event JSON (GET /v1/jobs/{id}/trace)
// and copies it to w verbatim — what `scalefold trace` writes to its output
// file.
func (c *Client) Trace(id string, w io.Writer) error {
	resp, err := c.http().Get(c.url("/v1/jobs/" + id + "/trace"))
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			// A truncated error body must not masquerade as an empty one:
			// surface the read failure alongside the status.
			return fmt.Errorf("service: HTTP %d: body unreadable: %v", resp.StatusCode, rerr)
		}
		var ae apiError
		if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
			return fmt.Errorf("service: %s (HTTP %d)", ae.Error, resp.StatusCode)
		}
		return fmt.Errorf("service: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	if _, err := io.Copy(w, resp.Body); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	return nil
}

// Stream follows a job's NDJSON stream to completion. onRow (optional)
// receives each RowEvent as it arrives; returning an error aborts the
// stream. Stream returns the terminal DoneEvent.
func (c *Client) Stream(id string, onRow func(RowEvent) error) (DoneEvent, error) {
	resp, err := c.http().Get(c.url("/v1/jobs/" + id + "/stream"))
	if err != nil {
		return DoneEvent{}, fmt.Errorf("service: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var st DoneEvent
		return st, decode(resp, &st) // lifts the error envelope
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			return DoneEvent{}, fmt.Errorf("service: bad stream line %q: %w", line, err)
		}
		switch kind.Type {
		case "row":
			if onRow == nil {
				continue
			}
			var ev RowEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				return DoneEvent{}, fmt.Errorf("service: bad row event: %w", err)
			}
			if err := onRow(ev); err != nil {
				return DoneEvent{}, err
			}
		case "done":
			var ev DoneEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				return DoneEvent{}, fmt.Errorf("service: bad done event: %w", err)
			}
			return ev, nil
		default:
			return DoneEvent{}, fmt.Errorf("service: unknown stream event type %q", kind.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return DoneEvent{}, fmt.Errorf("service: %w", err)
	}
	return DoneEvent{}, fmt.Errorf("service: stream for %s ended without a done event", id)
}

// SearchStream follows a search job's NDJSON stream to completion. onProbe
// (optional) receives each ProbeEvent as it arrives; returning an error
// aborts the stream. SearchStream returns the FrontierEvent's report (nil if
// the job ended without one — cancelled or failed) and the terminal
// DoneEvent.
func (c *Client) SearchStream(id string, onProbe func(ProbeEvent) error) (*scalefold.Frontier, DoneEvent, error) {
	resp, err := c.http().Get(c.url("/v1/jobs/" + id + "/stream"))
	if err != nil {
		return nil, DoneEvent{}, fmt.Errorf("service: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var st DoneEvent
		return nil, st, decode(resp, &st) // lifts the error envelope
	}
	var frontier *scalefold.Frontier
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			return frontier, DoneEvent{}, fmt.Errorf("service: bad stream line %q: %w", line, err)
		}
		switch kind.Type {
		case "probe":
			if onProbe == nil {
				continue
			}
			var ev ProbeEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				return frontier, DoneEvent{}, fmt.Errorf("service: bad probe event: %w", err)
			}
			if err := onProbe(ev); err != nil {
				return frontier, DoneEvent{}, err
			}
		case "frontier":
			var ev FrontierEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				return frontier, DoneEvent{}, fmt.Errorf("service: bad frontier event: %w", err)
			}
			frontier = &ev.Frontier
		case "done":
			var ev DoneEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				return frontier, DoneEvent{}, fmt.Errorf("service: bad done event: %w", err)
			}
			return frontier, ev, nil
		default:
			return frontier, DoneEvent{}, fmt.Errorf("service: unknown stream event type %q", kind.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return frontier, DoneEvent{}, fmt.Errorf("service: %w", err)
	}
	return frontier, DoneEvent{}, fmt.Errorf("service: stream for %s ended without a done event", id)
}

// RawStream follows a job's stream and prints one JSON object per line to w
// — what `scalefold submit -stream` shows. It returns the terminal
// DoneEvent.
func (c *Client) RawStream(id string, w io.Writer) (DoneEvent, error) {
	var done DoneEvent
	done, err := c.Stream(id, func(ev RowEvent) error {
		line, merr := json.Marshal(ev)
		if merr != nil {
			return merr
		}
		_, werr := fmt.Fprintf(w, "%s\n", line)
		return werr
	})
	if err != nil {
		return done, err
	}
	line, merr := json.Marshal(done)
	if merr == nil {
		fmt.Fprintf(w, "%s\n", line)
	}
	return done, nil
}
