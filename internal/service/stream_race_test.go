package service

import (
	"io"
	"sync"
	"testing"
)

// TestStreamFollowersRaceCompletionCancelAndPrune hammers the streaming path
// from every direction at once: multiple NDJSON followers attach to each job
// while jobs complete, get cancelled (queued and running alike), and are
// evicted by the finished-job retention pass that each new submission runs.
// The assertions are deliberately thin — every follower must terminate — and
// the real audit is the race detector over the follow/flush/finalize/prune
// interleavings (CI runs this under -race -short).
func TestStreamFollowersRaceCompletionCancelAndPrune(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 2, MaxActiveJobs: 1, MaxFinishedJobs: 1})
	defer stop()
	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		// Alternate sweep and search submissions so both engines finalize,
		// cancel and stream under the same contention.
		var st JobStatus
		var err error
		if round%2 == 1 {
			spec := tinySearch()
			spec.Budget = 16
			spec.Steps = round + 1 // distinct fingerprints: every job really runs
			st, err = c.SubmitSearch(spec)
		} else {
			spec := tinyJob()
			spec.DAPs = []int{1}
			spec.Ablations = []string{"none"}
			spec.Steps = round + 1
			st, err = c.Submit(spec)
		}
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 3; f++ {
			wg.Add(1)
			go func(id string, search bool) {
				defer wg.Done()
				// A follower of an evicted job gets a 404; of a cancelled
				// job, a cancelled DoneEvent. Both are legitimate ends —
				// only hangs and races are failures here.
				if search {
					c.SearchStream(id, func(ProbeEvent) error { return nil })
				} else {
					c.Stream(id, func(RowEvent) error { return nil })
				}
			}(st.ID, round%2 == 1)
		}
		if round%3 == 2 {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				c.Cancel(id)
			}(st.ID)
		}
		// Observability endpoints join the stampede: the metrics scrape
		// walks every registry series, healthz takes each job's mutex, and
		// the trace download snapshots a tracer that cells are appending to
		// — all while jobs finalize, cancel, and get pruned under them.
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for _, path := range []string{"/v1/metrics", "/v1/healthz"} {
				if resp, err := c.http().Get(c.url(path)); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
			c.Trace(id, io.Discard) // 404 after eviction is a legitimate end
		}(st.ID)
	}
	wg.Wait()
	for _, j := range c.mustJobs(t) {
		if j.State == StateRunning || j.State == StateQueued {
			// Cancels above may legitimately leave nothing running, but
			// nothing may be stuck either once all streams ended: every
			// surviving job must have reached a terminal state by now —
			// streams only end at the DoneEvent (or eviction).
			t.Fatalf("job %s still %s after every stream ended", j.ID, j.State)
		}
	}
}

// mustJobs is a test-side shim over Client.Jobs.
func (c *Client) mustJobs(t *testing.T) []JobStatus {
	t.Helper()
	jobs, err := c.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}
