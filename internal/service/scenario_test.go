package service

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/workload"
)

func tinyScenario(ablate string) scenario.Scenario {
	return scenario.Scenario{
		Platform: "H100", Ranks: 32, DAP: 2,
		Census: func() workload.Options {
			o := workload.ScaleFold(2)
			o.TorchCompile = false
			return o
		}(),
		CUDAGraph: true, NonBlocking: true,
		Ablation: ablate,
		Seed:     1, Steps: 2,
	}
}

// TestScenarioJobsRunAndMatchGridCells submits explicit Scenario JSON —
// the canonical wire format — and checks the cells execute, stream, and
// share store keys with grid-submitted equivalents (the whole point of one
// descriptor from flag to store key).
func TestScenarioJobsRunAndMatchGridCells(t *testing.T) {
	srv, client, stop := newTestServer(t, Config{Workers: 2})
	defer stop()

	spec := JobSpec{Scenarios: []scenario.Scenario{tinyScenario(""), tinyScenario("zero-launch")}}
	st, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 2 {
		t.Fatalf("explicit-scenario job sized %d cells, want 2", st.Cells)
	}
	rows, done := collectRows(t, client, st.ID)
	if done.State != StateDone || done.Rows != 2 || done.Skipped != 0 {
		t.Fatalf("job ended %+v", done)
	}
	for i, ev := range rows {
		if ev.Status != "ok" {
			t.Fatalf("row %d not ok: %+v", i, ev)
		}
	}

	// Every persisted key is a current-version scenario fingerprint, and the
	// two cells' keys are exactly the scenarios' own fingerprints.
	keys := srv.Store().Keys()
	if len(keys) != 2 {
		t.Fatalf("store holds %d keys, want 2", len(keys))
	}
	want := map[string]bool{
		tinyScenario("").Fingerprint():            true,
		tinyScenario("zero-launch").Fingerprint(): true,
	}
	for _, k := range keys {
		if !scenario.IsCurrentKey(k) {
			t.Fatalf("store key %q is not version-prefixed", k)
		}
		if !want[k] {
			t.Fatalf("store key %q is not a submitted scenario's fingerprint", k)
		}
	}

	// A second, identical job is served entirely from the store.
	st2, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, done2 := collectRows(t, client, st2.ID)
	if done2.Simulated != 0 {
		t.Fatalf("resubmitted scenarios re-simulated %d cells, want 0", done2.Simulated)
	}
}

// TestSimWorkersJobIsClampedAndByteIdentical pins the server-side contract
// of the sim_workers execution knob: an absurd width cannot multiply the
// server's compute concurrency past its pool (the clamp in runJob), and the
// rows stream byte-identical to a serial job — SimWorkers is excluded from
// the fingerprint, so both jobs resolve to the same store records.
func TestSimWorkersJobIsClampedAndByteIdentical(t *testing.T) {
	_, client, stop := newTestServer(t, Config{Workers: 2})
	defer stop()

	serial, err := client.Submit(JobSpec{Scenarios: []scenario.Scenario{tinyScenario("")}})
	if err != nil {
		t.Fatal(err)
	}
	serialRows, done := collectRows(t, client, serial.ID)
	if done.State != StateDone {
		t.Fatalf("serial job ended %+v", done)
	}

	// Both clamp routes: the spec-level knob and a scenario carrying its
	// own absurd sim_workers (which bypasses the spec field entirely).
	perScenario := tinyScenario("")
	perScenario.SimWorkers = 4096
	for name, spec := range map[string]JobSpec{
		"spec-level":   {Scenarios: []scenario.Scenario{tinyScenario("")}, SimWorkers: 4096},
		"per-scenario": {Scenarios: []scenario.Scenario{perScenario}},
	} {
		sharded, err := client.Submit(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		shardedRows, done2 := collectRows(t, client, sharded.ID)
		if done2.State != StateDone {
			t.Fatalf("%s: sharded job ended %+v", name, done2)
		}
		if done2.StoreHits != 1 {
			t.Fatalf("%s: sharded job must hit the serial job's store record, got %+v", name, done2)
		}
		if len(serialRows) != 1 || len(shardedRows) != 1 {
			t.Fatalf("%s: rows: %d vs %d, want 1 each", name, len(serialRows), len(shardedRows))
		}
		for k, v := range serialRows[0].Data {
			if shardedRows[0].Data[k] != v {
				t.Fatalf("%s: sim_workers changed row field %q: %q vs %q", name, k, v, shardedRows[0].Data[k])
			}
		}
	}
}

// TestBadScenarioIs400NotPanic pins the ablation satellite: an unknown
// ablation (or any invalid scenario) in the wire spec is a validation error
// at submission — HTTP 400 with the offending name — not a panic that a
// recovered handler would turn into a 500 or that would kill a scheduler
// goroutine later.
func TestBadScenarioIs400NotPanic(t *testing.T) {
	_, client, stop := newTestServer(t, Config{Workers: 1})
	defer stop()

	for name, spec := range map[string]JobSpec{
		"unknown ablation":    {Scenarios: []scenario.Scenario{tinyScenario("zero-lunch")}},
		"unknown platform":    {Scenarios: []scenario.Scenario{{Platform: "TPU", Ranks: 8, DAP: 1, Seed: 1}}},
		"infeasible geometry": {Scenarios: []scenario.Scenario{{Platform: "H100", Ranks: 30, DAP: 4, Seed: 1}}},
		"grid ablation typo":  {Ablations: []string{"zero-lunch"}},
	} {
		_, err := client.Submit(spec)
		if err == nil {
			t.Fatalf("%s: submission must be refused", name)
		}
		if !strings.Contains(err.Error(), "HTTP 400") {
			t.Fatalf("%s: want HTTP 400, got %v", name, err)
		}
	}
}

// TestStoreStatusCountsLegacyKeys pins the versioned-out behavior on the
// wire: a store directory written by a pre-scenario build opens with its
// old-format records counted as legacy_keys in /v1/store — never served as
// results — while new cells land under current-version keys.
func TestStoreStatusCountsLegacyKeys(t *testing.T) {
	dir := t.TempDir()
	pre, err := store.OpenDisk[cluster.Result](dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := pre.Put("census{...}|ranks=32|legacy-dump", cluster.Result{MeanStep: 12345}); err != nil {
		t.Fatal(err)
	}
	if err := pre.Close(); err != nil {
		t.Fatal(err)
	}

	_, client, stop := newTestServer(t, Config{Workers: 1, StoreDir: dir})
	defer stop()
	st, err := client.Submit(JobSpec{Scenarios: []scenario.Scenario{tinyScenario("")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, done := collectRows(t, client, st.ID); done.State != StateDone || done.Simulated != 1 {
		t.Fatalf("legacy record must not satisfy the cell: %+v", done)
	}
	status, err := client.StoreStatus()
	if err != nil {
		t.Fatal(err)
	}
	if status.Keys != 2 || status.LegacyKeys != 1 {
		t.Fatalf("store status %+v, want 2 keys with 1 legacy", status)
	}
}
