package service

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/store"
)

// A coordinator-mode server must join its store directory as a Shared owner,
// not a Disk single-writer: records a worker writes AFTER the server opened
// the directory must become visible through the server's Get (miss → tail the
// worker's segments), which a Disk store — replay-at-open only — can never do.
func TestCoordinatorModeJoinsStoreDirAsSharedOwner(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{StoreDir: dir, Fabric: &fabric.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	w, err := store.OpenShared[cluster.Result](dir, "w0")
	if err != nil {
		t.Fatal(err)
	}
	res := cluster.Result{Goodput: 1, MedianStep: time.Second}
	if err := w.Put("v3:feedface00000000", res); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	if got, ok := srv.Store().Get("v3:feedface00000000"); !ok || got != res {
		t.Fatalf("server Get after foreign write = %+v, %v; want the worker's record", got, ok)
	}
	// Visibility came from tailing, not from re-writing: the coordinator
	// owner must not have copied the record into a segment of its own.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-coordinator-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Fatalf("coordinator wrote own segments %v for a foreign record", segs)
	}

	// A plain (non-fabric) server keeps the Disk single-writer store; while
	// the coordinator holds only .lock-coordinator, Disk's directory-wide
	// lock must refuse to share the dir with a live owner-less sibling dir
	// open — sanity-check the non-fabric path still opens Disk by its
	// distinct segment naming after a write.
	plainDir := t.TempDir()
	plain, err := New(Config{StoreDir: plainDir})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if err := plain.Store().Put("v3:feedface00000001", res); err != nil {
		t.Fatal(err)
	}
	own, err := filepath.Glob(filepath.Join(plainDir, "seg-0*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(own) != 1 {
		t.Fatalf("plain server segments = %v, want one numeric Disk segment", own)
	}
}
