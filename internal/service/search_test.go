package service

import (
	"io"
	"strings"
	"testing"
)

// tinySearch is a fast adaptive-search job over small clusters: real probes,
// quick enough to run end to end over HTTP in the race-enabled suite.
func tinySearch() SearchJobSpec {
	return SearchJobSpec{
		Objective: "maximize-goodput",
		Arch:      "H100",
		Ranks:     []int{32, 64},
		DAPs:      []int{1, 2},
		FailLo:    1e-4,
		FailHi:    0.5,
		Steps:     2,
		Mode:      "auto",
		Budget:    32,
	}
}

func TestSearchJobEndToEnd(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 2})
	defer stop()
	st, err := c.SubmitSearch(tinySearch())
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindSearch || st.Search == nil || st.Cells != 32 {
		t.Fatalf("submit status: %+v", st)
	}
	probes := 0
	frontier, done, err := c.SearchStream(st.ID, func(ev ProbeEvent) error {
		if ev.Phase == "" || ev.Ranks == 0 || ev.Source == "" {
			t.Errorf("incomplete probe event: %+v", ev)
		}
		probes++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("done event: %+v", done)
	}
	if frontier == nil || frontier.Cliff == nil || len(frontier.Pareto) == 0 {
		t.Fatalf("frontier missing or incomplete: %+v", frontier)
	}
	if probes == 0 || probes != frontier.Used || done.Rows != probes {
		t.Fatalf("probe accounting: streamed=%d used=%d rows=%d", probes, frontier.Used, done.Rows)
	}
	fin, err := c.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Probes != probes || fin.FrontierSize != len(frontier.Pareto) {
		t.Fatalf("final status: %+v", fin)
	}
	// The search series are live: probe counters by source, the frontier
	// gauge, the latency histogram.
	resp, err := c.http().Get(c.url("/v1/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`scalefold_search_probes_total{source="analytic"}`,
		`scalefold_search_probes_total{source="exact"}`,
		`scalefold_search_probes_total{source="memo-hit"}`,
		"scalefold_search_frontier_size ",
		"scalefold_search_probe_seconds",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestBadSearchSpecIs400 pins the typed-error contract of POST /v1/search:
// an unknown objective (or mode, or an unparsable body) is a 400, never a
// 500 or an accepted job.
func TestBadSearchSpecIs400(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 1})
	defer stop()
	bad := tinySearch()
	bad.Objective = "maximize-flops"
	if _, err := c.SubmitSearch(bad); err == nil || !strings.Contains(err.Error(), "HTTP 400") ||
		!strings.Contains(err.Error(), "objective") {
		t.Fatalf("unknown objective must yield HTTP 400 naming the field, got %v", err)
	}
	bad = tinySearch()
	bad.Mode = "guess"
	if _, err := c.SubmitSearch(bad); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("unknown mode must yield HTTP 400, got %v", err)
	}
	resp, err := c.http().Post(c.url("/v1/search"), "application/json",
		strings.NewReader(`{"objective": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("unparsable body must yield 400, got %d", resp.StatusCode)
	}
	if jobs := c.mustJobs(t); len(jobs) != 0 {
		t.Fatalf("refused submissions must not enqueue jobs: %+v", jobs)
	}
}

// TestSearchCancelQueuedSettlesImmediately pins the first finalize race for
// search jobs: cancelling a still-queued search settles it now — status and
// stream end without waiting for a scheduler worker — and nothing simulates.
func TestSearchCancelQueuedSettlesImmediately(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 1, MaxActiveJobs: 1})
	defer stop()
	first, err := c.Submit(tinyJob())
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.SubmitSearch(tinySearch())
	if err != nil {
		t.Fatal(err)
	}
	cancelled, err := c.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cancelled.State != StateCancelled {
		t.Fatalf("cancelled queued search reports %q, want %q now", cancelled.State, StateCancelled)
	}
	frontier, done, err := c.SearchStream(queued.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateCancelled || done.Simulated != 0 || done.Rows != 0 || frontier != nil {
		t.Fatalf("cancelled-in-queue search must never probe: %+v frontier=%v", done, frontier)
	}
	if d, err := c.Stream(first.ID, nil); err != nil || d.State != StateDone {
		t.Fatalf("first job: %+v, %v", d, err)
	}
}

// TestSearchCancelMidRunWinsOverFailed pins the second finalize race: a
// cancel landing while the search runs makes the driver surface
// search.ErrStopped — an error — but the job must settle cancelled, not
// failed, and must not carry the abort as its error.
func TestSearchCancelMidRunWinsOverFailed(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 1})
	defer stop()
	// Every probe really simulates a 24-step cell: a wide cancel window —
	// the cancel issued after the first probe lands many probes before the
	// search could finish.
	spec := tinySearch()
	spec.Mode = "exact"
	spec.Ranks = []int{64, 128}
	spec.DAPs = []int{1, 2, 4}
	spec.Steps = 24
	st, err := c.SubmitSearch(spec)
	if err != nil {
		t.Fatal(err)
	}
	cancelledAt := -1
	frontier, done, err := c.SearchStream(st.ID, func(ev ProbeEvent) error {
		if cancelledAt < 0 {
			// The first probe proves the job is mid-run; the search still
			// has its whole ladder ahead, so the cancel lands inside it.
			if _, err := c.Cancel(st.ID); err != nil {
				return err
			}
			cancelledAt = ev.Seq
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cancelledAt < 0 {
		t.Fatal("stream ended before any probe; cannot exercise the mid-run cancel")
	}
	if done.State != StateFailed && done.State != StateCancelled {
		t.Fatalf("unexpected terminal state %q", done.State)
	}
	if done.State == StateFailed {
		t.Fatalf("cancel lost to failure: %+v", done)
	}
	if done.Error != "" {
		t.Fatalf("cancelled search must not surface the abort as an error: %+v", done)
	}
	if frontier != nil {
		t.Fatalf("cancelled search must not publish a frontier: %+v", frontier)
	}
	fin, err := c.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateCancelled || fin.Error != "" {
		t.Fatalf("final status after mid-run cancel: %+v", fin)
	}
}
