package service

import (
	"encoding/json"
	"io"
	"regexp"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// promLine matches one Prometheus text-exposition sample line: a metric name,
// an optional label set, and a value. Comment lines are checked separately.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$`)

// TestMetricsEndpoint runs one job to completion and scrapes /v1/metrics: the
// response must carry the Prometheus 0.0.4 content type, parse line-by-line
// as valid exposition text, and contain the service- and store-level series
// the observability layer promises.
func TestMetricsEndpoint(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 1})
	defer stop()
	st, err := c.Submit(tinyJob())
	if err != nil {
		t.Fatal(err)
	}
	done, err := c.Stream(st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("job ended %s: %+v", done.State, done)
	}
	resp, err := c.http().Get(c.url("/v1/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("invalid exposition line %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE scalefold_service_jobs_submitted_total counter",
		"scalefold_service_jobs_submitted_total 1",
		"# TYPE scalefold_service_jobs_queued gauge",
		"scalefold_service_jobs_queued 0",
		"scalefold_service_jobs_running 0",
		`scalefold_service_jobs_finished_total{state="done"} 1`,
		// The server's in-memory store was attached at construction: one
		// miss-then-append per distinct cell.
		`scalefold_store_misses_total{store="mem"} 4`,
		`scalefold_store_records{store="mem"} 4`,
		"# TYPE scalefold_store_lookup_seconds histogram",
		`scalefold_store_lookup_seconds_count{store="mem"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestTraceEndpoint proves the trace export contract: the download is valid
// Chrome trace-event JSON that unmarshals into the simulator's own
// cluster.TraceEvent shape, and the job's spans cover every cell exactly
// once with local-engine attribution (no fabric configured here).
func TestTraceEndpoint(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 1})
	defer stop()
	st, err := c.Submit(tinyJob())
	if err != nil {
		t.Fatal(err)
	}
	if done, err := c.Stream(st.ID, nil); err != nil || done.State != StateDone {
		t.Fatalf("stream: %+v, %v", done, err)
	}
	resp, err := c.http().Get(c.url("/v1/jobs/" + st.ID + "/trace"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("status %d, content type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, st.ID) {
		t.Fatalf("content disposition %q does not name the job", cd)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// Format compatibility: the export decodes into the step-level trace
	// type the simulator already emits (obs.TraceEvent only adds args).
	var compat []cluster.TraceEvent
	if err := json.Unmarshal(raw, &compat); err != nil {
		t.Fatalf("trace does not decode as []cluster.TraceEvent: %v", err)
	}
	var events []obs.TraceEvent
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		if ev.Cat != "cell" {
			t.Fatalf("unexpected span category %q: %+v", ev.Cat, ev)
		}
		if !strings.HasPrefix(ev.Args["owner"], "local-") {
			t.Fatalf("local job span owned by %q, want local-N: %+v", ev.Args["owner"], ev)
		}
		if ev.Args["source"] != "simulated" {
			t.Fatalf("fresh cache/store cell sourced from %q: %+v", ev.Args["source"], ev)
		}
		seen[ev.Args["key"]]++
	}
	if len(seen) != 4 {
		t.Fatalf("trace spans %d distinct cells, want 4: %v", len(seen), seen)
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("cell %s spanned %d times, want exactly once", key, n)
		}
	}
	// Unknown jobs get the JSON error envelope, not an empty trace.
	if resp, err := c.http().Get(c.url("/v1/jobs/nope/trace")); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Fatalf("trace of unknown job: HTTP %d, want 404", resp.StatusCode)
		}
	}
}

// TestHealthzEnriched checks the dashboard fields the enriched health
// endpoint added around the original liveness bit.
func TestHealthzEnriched(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 1})
	defer stop()
	st, err := c.Submit(tinyJob())
	if err != nil {
		t.Fatal(err)
	}
	if done, err := c.Stream(st.ID, nil); err != nil || done.State != StateDone {
		t.Fatalf("stream: %+v, %v", done, err)
	}
	resp, err := c.http().Get(c.url("/v1/healthz"))
	if err != nil {
		t.Fatal(err)
	}
	var hs HealthStatus
	if err := decode(resp, &hs); err != nil {
		t.Fatal(err)
	}
	if !hs.OK || hs.GoVersion == "" || hs.UptimeSec < 0 {
		t.Fatalf("healthz: %+v", hs)
	}
	if hs.JobsFinished != 1 || hs.JobsQueued != 0 || hs.JobsRunning != 0 {
		t.Fatalf("healthz job counts: %+v", hs)
	}
	if hs.StoreKeys != 4 {
		t.Fatalf("healthz store keys %d, want 4", hs.StoreKeys)
	}
}
