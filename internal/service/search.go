package service

import (
	"encoding/json"
	"time"

	"repro/internal/cluster"
	"repro/internal/scalefold"
	"repro/internal/search"
	"repro/internal/sweep"
)

// SearchJobSpec is the wire form of an adaptive-search job, JSON-encoded for
// POST /v1/search. Empty fields take the scalefold.DefaultSearchSpec values,
// so `{}` submits the default search: the H100 ladder to 1024 ranks, the
// resilience failure-rate span, auto-mode probes. An unknown objective (or
// mode, platform, infeasible ladder, ...) is refused with 400 at submission.
type SearchJobSpec struct {
	// Objective: "maximize-goodput" (default) or "minimize-cost-steptime".
	Objective string `json:"objective,omitempty"`
	// Arch names the platform profile, as in JobSpec ("H100", ...).
	Arch  string `json:"arch,omitempty"`
	Ranks []int  `json:"ranks,omitempty"`
	DAPs  []int  `json:"dap,omitempty"`
	// FailLo/FailHi bound the failure-rate axis bisected for the goodput
	// cliff; RestartCost is the per-failure checkpoint-restart cost.
	FailLo      float64 `json:"fail_lo,omitempty"`
	FailHi      float64 `json:"fail_hi,omitempty"`
	RestartCost float64 `json:"restart_cost_s,omitempty"`
	// CliffGoodput is the goodput threshold defining the cliff; Tolerance
	// the bisection stop width in decades.
	CliffGoodput float64 `json:"cliff_goodput,omitempty"`
	Tolerance    float64 `json:"tolerance,omitempty"`
	// Budget bounds unique probes (the job's "cells").
	Budget int `json:"budget,omitempty"`
	Steps  int `json:"steps,omitempty"`
	// Mode resolves probes as in JobSpec.Mode, but defaults to "auto" here:
	// analytic exploration, exact escalation at decision boundaries.
	Mode string `json:"mode,omitempty"`
	// SimWorkers shards inside each probe's simulation. Probes themselves
	// run sequentially (each depends on the previous answers), so unlike
	// sweep jobs there is no workers axis; the server gives each probe the
	// whole pool unless this narrows it.
	SimWorkers int `json:"sim_workers,omitempty"`
}

// searchSpec lowers the wire spec to an executable one (the server fills
// cache, store, metrics and scheduling hooks).
func (js SearchJobSpec) searchSpec() scalefold.SearchSpec {
	return scalefold.SearchSpec{
		Objective:    js.Objective,
		Platform:     js.Arch,
		Ranks:        js.Ranks,
		DAPs:         js.DAPs,
		FailLo:       js.FailLo,
		FailHi:       js.FailHi,
		RestartCost:  js.RestartCost,
		CliffGoodput: js.CliffGoodput,
		Tolerance:    js.Tolerance,
		Budget:       js.Budget,
		Steps:        js.Steps,
		Mode:         js.Mode,
		SimWorkers:   js.SimWorkers,
	}
}

// ProbeEvent is one NDJSON line of a search job's stream: a settled probe.
// Source reports how the probe resolved ("analytic", "exact", "memo-hit") —
// execution detail, deliberately absent from the Frontier itself so repeat
// runs stay byte-identical.
type ProbeEvent struct {
	Type      string  `json:"type"` // "probe"
	Seq       int     `json:"seq"`
	Phase     string  `json:"phase"`
	Ranks     int     `json:"ranks"`
	DAP       int     `json:"dap"`
	FailProb  float64 `json:"fail_prob"`
	Goodput   float64 `json:"goodput"`
	MeanStepS float64 `json:"mean_step_s"`
	Score     float64 `json:"score"`
	Source    string  `json:"source"`
}

// FrontierEvent is the penultimate NDJSON line of a successful search job's
// stream: the full search report, emitted once before the DoneEvent.
type FrontierEvent struct {
	Type     string             `json:"type"` // "frontier"
	Frontier scalefold.Frontier `json:"frontier"`
}

// SubmitSearch validates and enqueues an adaptive-search job on the same
// queue, scheduler pool and store as sweep jobs. Budget plays the role of
// Cells in the job's progress accounting.
func (s *Server) SubmitSearch(spec SearchJobSpec) (JobStatus, error) {
	sp := spec.searchSpec().WithDefaults()
	if err := sp.Validate(); err != nil {
		return JobStatus{}, &BadSpecError{Err: err}
	}
	j := &job{kind: KindSearch, search: &spec, cells: sp.Budget}
	st, err := s.enqueue(j)
	if err != nil {
		return JobStatus{}, err
	}
	s.log.Info("search submitted", "job", j.id, "objective", sp.Objective, "budget", sp.Budget)
	return st, nil
}

// runSearchJob executes one search job. Probes resolve through the job-local
// memo, the server's persistent store, then analytic estimation or exact
// simulation (gated on the shared slot pool) — identical layering to sweep
// cells, under identical fingerprints, so searches and sweeps share every
// record. The final switch mirrors runJob: cancellation wins over failure
// (a cancelled search surfaces search.ErrStopped from the driver, but the
// user asked for cancel).
func (s *Server) runSearchJob(j *job) {
	if j.cancelled.Load() {
		j.finalize(StateCancelled, nil)
		return
	}
	j.start()
	ss := j.search.searchSpec()
	ss.Cache = sweep.NewCache[cluster.Result]()
	ss.Store = s.st
	ss.OnStoreErr = j.noteStoreErr
	ss.Metrics = &j.metrics
	ss.OnEstimate = func(d time.Duration) { s.met.estimateHist.Observe(d.Seconds()) }
	ss.Stop = j.cancelled.Load
	// Probes run one at a time, so intra-probe shards are the only
	// parallelism this job has: give each probe the whole pool unless the
	// spec narrows it.
	if ss.SimWorkers <= 0 || ss.SimWorkers > s.cfg.Workers {
		ss.SimWorkers = s.cfg.Workers
	}
	ss.Gate = func(run func()) {
		if j.cancelled.Load() {
			return // drain: the probe surfaces ErrStopped, nothing persists
		}
		s.slots <- struct{}{}
		defer func() { <-s.slots }()
		if j.cancelled.Load() {
			return
		}
		run()
	}
	ss.OnProbe = func(p search.Probe, src string, d time.Duration) {
		if c := s.met.searchProbes[src]; c != nil {
			c.Inc()
		}
		s.met.probeHist.Observe(d.Seconds())
		j.streamProbe(p, src)
	}
	f, err := ss.Run()
	s.met.analyticCells.Add(j.metrics.Analytic.Load())
	s.met.exactCells.Add(j.metrics.Simulated.Load())
	s.met.escalations.Add(j.metrics.Escalated.Load())
	switch {
	case j.cancelled.Load():
		j.finalize(StateCancelled, nil)
		s.log.Info("search cancelled", "job", j.id)
	case err != nil:
		j.finalize(StateFailed, err)
		s.log.Error("search failed", "job", j.id, "err", err)
	default:
		j.noteFrontier(f)
		s.met.frontierSize.Set(int64(len(f.Pareto)))
		j.finalize(StateDone, nil)
		s.log.Info("search done", "job", j.id,
			"probes", f.Used, "frontier", len(f.Pareto),
			"simulated", j.metrics.Simulated.Load(),
			"analytic", j.metrics.Analytic.Load(),
			"memo_hits", j.metrics.MemoHits.Load())
	}
}

// streamProbe appends a settled probe to the job's event log.
func (j *job) streamProbe(p search.Probe, src string) {
	if j.cancelled.Load() {
		return
	}
	ev := ProbeEvent{
		Type: "probe", Seq: p.Seq, Phase: p.Phase,
		Ranks: p.Ranks, DAP: p.DAP, FailProb: p.FailProb,
		Goodput: p.Goodput, MeanStepS: p.MeanStepS,
		Score: p.Score, Source: src,
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return // unreachable: ProbeEvent is marshal-safe
	}
	j.mu.Lock()
	j.rows++
	j.probes++
	j.events = append(j.events, append(line, '\n'))
	j.wakeLocked()
	j.mu.Unlock()
}

// noteFrontier records the finished search's report and appends the
// FrontierEvent streaming clients consume before the DoneEvent.
func (j *job) noteFrontier(f scalefold.Frontier) {
	line, err := json.Marshal(FrontierEvent{Type: "frontier", Frontier: f})
	if err != nil {
		return
	}
	j.mu.Lock()
	j.frontierSize = len(f.Pareto)
	j.events = append(j.events, append(line, '\n'))
	j.wakeLocked()
	j.mu.Unlock()
}
