package autograd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// gradCheck compares analytic gradients with central finite differences.
// build must construct a fresh graph from the given leaf tensors and return
// the scalar loss Value; leaves are the tensors whose gradients we verify.
func gradCheck(t *testing.T, leaves []*tensor.Tensor, build func(tp *Tape, leaves []*Value) *Value) {
	t.Helper()
	tp := NewTape()
	vals := make([]*Value, len(leaves))
	for i, l := range leaves {
		vals[i] = tp.Param(l)
	}
	loss := build(tp, vals)
	if loss.X.Len() != 1 {
		t.Fatalf("loss must be scalar, got %v", loss.X.Shape())
	}
	tp.Backward(loss)

	eval := func() float64 {
		tp2 := NewTape()
		vs := make([]*Value, len(leaves))
		for i, l := range leaves {
			vs[i] = tp2.Param(l)
		}
		return float64(build(tp2, vs).X.Data[0])
	}

	const h = 1e-2
	for li, leaf := range leaves {
		g := vals[li].Grad
		if g == nil {
			t.Fatalf("leaf %d has nil grad", li)
		}
		// Check a sample of coordinates to keep the test fast.
		step := 1
		if leaf.Len() > 24 {
			step = leaf.Len() / 24
		}
		for i := 0; i < leaf.Len(); i += step {
			orig := leaf.Data[i]
			leaf.Data[i] = orig + h
			fp := eval()
			leaf.Data[i] = orig - h
			fm := eval()
			leaf.Data[i] = orig
			num := (fp - fm) / (2 * h)
			ana := float64(g.Data[i])
			diff := math.Abs(num - ana)
			scale := math.Max(1, math.Max(math.Abs(num), math.Abs(ana)))
			if diff/scale > 2e-2 {
				t.Fatalf("leaf %d elem %d: analytic %v vs numeric %v", li, i, ana, num)
			}
		}
	}
}

func randTensor(rng *rand.Rand, shape ...int) *tensor.Tensor {
	return tensor.New(shape...).RandN(rng, 0.5)
}

func TestGradAddMulScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randTensor(rng, 3, 4), randTensor(rng, 3, 4)
	gradCheck(t, []*tensor.Tensor{a, b}, func(tp *Tape, vs []*Value) *Value {
		return MeanAll(Scale(Mul(Add(vs[0], vs[1]), Sub(vs[0], vs[1])), 1.5))
	})
}

func TestGradLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, w, b := randTensor(rng, 4, 3), randTensor(rng, 3, 5), randTensor(rng, 5)
	gradCheck(t, []*tensor.Tensor{x, w, b}, func(tp *Tape, vs []*Value) *Value {
		return MeanAll(Linear(vs[0], vs[1], vs[2]))
	})
}

func TestGradLinearNoBias3D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, w := randTensor(rng, 2, 3, 4), randTensor(rng, 4, 2)
	gradCheck(t, []*tensor.Tensor{x, w}, func(tp *Tape, vs []*Value) *Value {
		y := Linear(vs[0], vs[1], nil)
		if y.X.Dim(0) != 2 || y.X.Dim(1) != 3 || y.X.Dim(2) != 2 {
			t.Fatalf("Linear should keep leading shape, got %v", y.X.Shape())
		}
		return MSE(y, tensor.New(2, 3, 2))
	})
}

func TestGradSigmoidReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randTensor(rng, 3, 3)
	// Shift away from 0 so ReLU's kink does not break finite differences.
	for i := range x.Data {
		if v := x.Data[i]; v > -0.05 && v < 0.05 {
			x.Data[i] = 0.2
		}
	}
	gradCheck(t, []*tensor.Tensor{x}, func(tp *Tape, vs []*Value) *Value {
		return MeanAll(Mul(Sigmoid(vs[0]), ReLU(vs[0])))
	})
}

func TestGradLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randTensor(rng, 4, 6)
	gamma := tensor.New(6)
	gamma.RandUniform(rng, 0.5, 1.5)
	beta := randTensor(rng, 6)
	gradCheck(t, []*tensor.Tensor{x, gamma, beta}, func(tp *Tape, vs []*Value) *Value {
		target := tensor.New(4, 6)
		target.Fill(0.3)
		return MSE(LayerNorm(vs[0], vs[1], vs[2], 1e-5), target)
	})
}

func TestLayerNormForwardNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tp := NewTape()
	x := tp.Input(tensor.New(8, 16).RandN(rng, 3))
	gamma := tensor.New(16)
	gamma.Fill(1)
	beta := tensor.New(16)
	y := LayerNorm(x, tp.Param(gamma), tp.Param(beta), 1e-5)
	for r := 0; r < 8; r++ {
		row := tensor.Row(y.X, r)
		var sum, sumSq float64
		for _, v := range row {
			sum += float64(v)
			sumSq += float64(v) * float64(v)
		}
		mean := sum / 16
		variance := sumSq/16 - mean*mean
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-2 {
			t.Fatalf("row %d: mean=%v var=%v", r, mean, variance)
		}
	}
}

func TestGradMHACore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const B, L, H, D = 2, 3, 2, 2
	q := randTensor(rng, B, L, H*D)
	k := randTensor(rng, B, L, H*D)
	v := randTensor(rng, B, L, H*D)
	bias := randTensor(rng, H, L, L)
	gradCheck(t, []*tensor.Tensor{q, k, v, bias}, func(tp *Tape, vs []*Value) *Value {
		target := tensor.New(B, L, H*D)
		target.Fill(0.1)
		return MSE(MHACore(vs[0], vs[1], vs[2], vs[3], nil, H), target)
	})
}

func TestMHACoreMaskZerosAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const B, L, H, D = 1, 4, 1, 3
	tp := NewTape()
	q := tp.Input(randTensor(rng, B, L, H*D))
	k := tp.Input(randTensor(rng, B, L, H*D))
	v := tp.Input(randTensor(rng, B, L, H*D))
	// Mask out position 3; make v distinctive there.
	mask := tensor.New(B, L)
	mask.Fill(1)
	mask.Set(0, 0, 3)
	v.X.Data[3*H*D] = 1e4
	out := MHACore(q, k, v, nil, mask, H)
	for _, val := range out.X.Data {
		if math.Abs(float64(val)) > 100 {
			t.Fatalf("masked position leaked into output: %v", val)
		}
	}
}

func TestMHACoreBiasShiftsAttention(t *testing.T) {
	// A huge positive bias toward key j should make output ≈ v[j].
	rng := rand.New(rand.NewSource(9))
	const B, L, H, D = 1, 3, 1, 2
	tp := NewTape()
	q := tp.Input(randTensor(rng, B, L, H*D))
	k := tp.Input(randTensor(rng, B, L, H*D))
	v := tp.Input(randTensor(rng, B, L, H*D))
	bias := tensor.New(H, L, L)
	for i := 0; i < L; i++ {
		bias.Set(50, 0, i, 1) // all queries attend to key 1
	}
	out := MHACore(q, k, v, tp.Input(bias), nil, H)
	for i := 0; i < L; i++ {
		for d := 0; d < D; d++ {
			got := out.X.At(0, i, d)
			want := v.X.At(0, 1, d)
			if math.Abs(float64(got-want)) > 1e-3 {
				t.Fatalf("bias did not dominate attention: got %v want %v", got, want)
			}
		}
	}
}

func TestGradTranspose01(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randTensor(rng, 3, 4, 2)
	gradCheck(t, []*tensor.Tensor{x}, func(tp *Tape, vs []*Value) *Value {
		y := Transpose01(vs[0])
		if y.X.Dim(0) != 4 || y.X.Dim(1) != 3 {
			t.Fatalf("transpose shape %v", y.X.Shape())
		}
		w := tensor.New(4, 3, 2)
		w.RandN(rand.New(rand.NewSource(99)), 1)
		return MSE(y, w)
	})
}

func TestTranspose01Involution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		tp := NewTape()
		x := tp.Input(tensor.New(a, b, c).RandN(rng, 1))
		y := Transpose01(Transpose01(x))
		return y.X.MaxDiff(x.X) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGradTriMulOutgoing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b := randTensor(rng, 3, 3, 2), randTensor(rng, 3, 3, 2)
	gradCheck(t, []*tensor.Tensor{a, b}, func(tp *Tape, vs []*Value) *Value {
		return MeanAll(TriMulOutgoing(vs[0], vs[1]))
	})
}

func TestGradTriMulIncoming(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a, b := randTensor(rng, 3, 3, 2), randTensor(rng, 3, 3, 2)
	gradCheck(t, []*tensor.Tensor{a, b}, func(tp *Tape, vs []*Value) *Value {
		target := tensor.New(3, 3, 2)
		target.Fill(0.2)
		return MSE(TriMulIncoming(vs[0], vs[1]), target)
	})
}

func TestTriMulMatchesDirectSum(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const R, C = 4, 3
	tp := NewTape()
	a := tp.Input(randTensor(rng, R, R, C))
	b := tp.Input(randTensor(rng, R, R, C))
	out := TriMulOutgoing(a, b)
	for i := 0; i < R; i++ {
		for j := 0; j < R; j++ {
			for c := 0; c < C; c++ {
				var want float32
				for k := 0; k < R; k++ {
					want += a.X.At(i, k, c) * b.X.At(j, k, c)
				}
				if math.Abs(float64(out.X.At(i, j, c)-want)) > 1e-4 {
					t.Fatalf("triMul mismatch at %d,%d,%d", i, j, c)
				}
			}
		}
	}
}

func TestGradOuterProductMean(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a, b := randTensor(rng, 3, 2, 2), randTensor(rng, 3, 2, 3)
	gradCheck(t, []*tensor.Tensor{a, b}, func(tp *Tape, vs []*Value) *Value {
		return MeanAll(OuterProductMean(vs[0], vs[1]))
	})
}

func TestOuterProductMeanMatchesDirectSum(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const S, R, Ca, Cb = 3, 2, 2, 2
	tp := NewTape()
	a := tp.Input(randTensor(rng, S, R, Ca))
	b := tp.Input(randTensor(rng, S, R, Cb))
	out := OuterProductMean(a, b)
	for i := 0; i < R; i++ {
		for j := 0; j < R; j++ {
			for p := 0; p < Ca; p++ {
				for q := 0; q < Cb; q++ {
					var want float32
					for s := 0; s < S; s++ {
						want += a.X.At(s, i, p) * b.X.At(s, j, q)
					}
					want /= S
					if math.Abs(float64(out.X.At(i, j, p*Cb+q)-want)) > 1e-4 {
						t.Fatalf("OPM mismatch at %d,%d,%d,%d", i, j, p, q)
					}
				}
			}
		}
	}
}

func TestGradMSEAndMeanAll(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := randTensor(rng, 5)
	target := randTensor(rng, 5)
	gradCheck(t, []*tensor.Tensor{x}, func(tp *Tape, vs []*Value) *Value {
		return MSE(vs[0], target)
	})
}

func TestTapeResetAndWatch(t *testing.T) {
	tp := NewTape()
	w := tp.Param(tensor.FromSlice([]float32{2}, 1))
	x := tp.Input(tensor.FromSlice([]float32{3}, 1))
	loss := Mul(w, x)
	tp.Backward(loss)
	if w.Grad.Data[0] != 3 {
		t.Fatalf("grad = %v, want 3", w.Grad.Data[0])
	}
	n := tp.Len()
	tp.Reset()
	if tp.Len() != 0 {
		t.Fatal("Reset must clear nodes")
	}
	tp.Watch(w)
	if w.Grad != nil {
		t.Fatal("Watch must clear stale grad")
	}
	x2 := tp.Input(tensor.FromSlice([]float32{5}, 1))
	tp.Backward(Mul(w, x2))
	if w.Grad.Data[0] != 5 {
		t.Fatalf("second grad = %v, want 5", w.Grad.Data[0])
	}
	if tp.Len() >= n+3 {
		t.Fatalf("tape grew unexpectedly: %d", tp.Len())
	}
}

func TestBackwardOnWrongTapePanics(t *testing.T) {
	tp1, tp2 := NewTape(), NewTape()
	v := tp1.Param(tensor.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp2.Backward(v)
}

func TestMixedTapeOperandsPanic(t *testing.T) {
	tp1, tp2 := NewTape(), NewTape()
	a := tp1.Param(tensor.New(2))
	b := tp2.Param(tensor.New(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(a, b)
}

func TestGradientAccumulationAcrossTwoUses(t *testing.T) {
	// y = w*x + w*x  =>  dy/dw = 2x.
	tp := NewTape()
	w := tp.Param(tensor.FromSlice([]float32{1.5}, 1))
	x := tp.Input(tensor.FromSlice([]float32{4}, 1))
	y := Add(Mul(w, x), Mul(w, x))
	tp.Backward(y)
	if w.Grad.Data[0] != 8 {
		t.Fatalf("accumulated grad = %v, want 8", w.Grad.Data[0])
	}
}
