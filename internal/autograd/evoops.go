package autograd

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// LayerNorm normalizes x over its last dimension and applies a learned
// affine transform: y = gamma * (x - mean)/sqrt(var + eps) + beta.
// gamma and beta are rank-1 Values of length C = x.Dim(last).
//
// The forward uses the same single-pass mean/variance computation the
// paper's fused Triton LN kernel uses (§3.3.1): E[x] and E[x²] accumulated
// together, not a two-pass mean-then-variance loop.
func LayerNorm(x, gamma, beta *Value, eps float32) *Value {
	t := sameTape(x, gamma, beta)
	c := x.X.Dim(x.X.Rank() - 1)
	rows := x.X.Len() / c
	y := tensor.New(x.X.Shape()...)
	// xhat and inverse std are cached for the backward pass.
	xhat := make([]float32, x.X.Len())
	rstd := make([]float32, rows)
	for r := 0; r < rows; r++ {
		in := x.X.Data[r*c : (r+1)*c]
		outRow := y.Data[r*c : (r+1)*c]
		var sum, sumSq float64
		for _, v := range in {
			sum += float64(v)
			sumSq += float64(v) * float64(v)
		}
		mean := sum / float64(c)
		variance := sumSq/float64(c) - mean*mean
		if variance < 0 {
			variance = 0
		}
		rs := float32(1 / math.Sqrt(variance+float64(eps)))
		rstd[r] = rs
		for i, v := range in {
			h := (v - float32(mean)) * rs
			xhat[r*c+i] = h
			outRow[i] = gamma.X.Data[i]*h + beta.X.Data[i]
		}
	}
	out := t.newResult(y, x, gamma, beta)
	out.back = func() {
		for r := 0; r < rows; r++ {
			gRow := out.Grad.Data[r*c : (r+1)*c]
			hRow := xhat[r*c : (r+1)*c]
			if gamma.requires {
				gg := gamma.ensureGrad()
				for i := 0; i < c; i++ {
					gg.Data[i] += gRow[i] * hRow[i]
				}
			}
			if beta.requires {
				bg := beta.ensureGrad()
				for i := 0; i < c; i++ {
					bg.Data[i] += gRow[i]
				}
			}
			if x.requires {
				// dxhat = g * gamma; dx = rstd*(dxhat - mean(dxhat) - xhat*mean(dxhat*xhat))
				var m1, m2 float64
				for i := 0; i < c; i++ {
					d := float64(gRow[i] * gamma.X.Data[i])
					m1 += d
					m2 += d * float64(hRow[i])
				}
				m1 /= float64(c)
				m2 /= float64(c)
				xg := x.ensureGrad().Data[r*c : (r+1)*c]
				for i := 0; i < c; i++ {
					d := float64(gRow[i] * gamma.X.Data[i])
					xg[i] += rstd[r] * float32(d-m1-float64(hRow[i])*m2)
				}
			}
		}
	}
	return out
}

// MHACore computes multi-head scaled-dot-product attention with an optional
// additive bias on the logits — the AlphaFold MHA variant of Figure 6 where
// a pair-representation bias is added before the softmax. This single node
// mirrors the paper's fused FlashAttention-style kernel boundary: the four
// projection GEMMs, the sigmoid gate and the output GEMM stay outside as
// separate ops (they are what §3.3.1 batches / fuses separately).
//
// Shapes: q, k, v are [B, L, H*D]; bias (optional) is [H, Lq, Lk] broadcast
// over B; mask (optional, constant) is [B, Lk] with 1=keep, 0=mask out.
// The result is [B, Lq, H*D].
func MHACore(q, k, v *Value, bias *Value, mask *tensor.Tensor, nHeads int) *Value {
	t := sameTape(q, k, v)
	B, Lq, E := q.X.Dim(0), q.X.Dim(1), q.X.Dim(2)
	Lk := k.X.Dim(1)
	if E%nHeads != 0 {
		panic(fmt.Sprintf("autograd: embed dim %d not divisible by %d heads", E, nHeads))
	}
	D := E / nHeads
	scale := float32(1 / math.Sqrt(float64(D)))
	if bias != nil {
		sameTape(q, bias)
		if bias.X.Dim(0) != nHeads || bias.X.Dim(1) != Lq || bias.X.Dim(2) != Lk {
			panic(fmt.Sprintf("autograd: bias shape %v, want [%d %d %d]", bias.X.Shape(), nHeads, Lq, Lk))
		}
	}

	y := tensor.New(B, Lq, E)
	// probs caches softmax outputs per (b,h): [B, H, Lq, Lk].
	probs := tensor.New(B, nHeads, Lq, Lk)

	row := make([]float32, Lk)
	for b := 0; b < B; b++ {
		for h := 0; h < nHeads; h++ {
			for i := 0; i < Lq; i++ {
				qRow := q.X.Data[(b*Lq+i)*E+h*D : (b*Lq+i)*E+(h+1)*D]
				for j := 0; j < Lk; j++ {
					kRow := k.X.Data[(b*Lk+j)*E+h*D : (b*Lk+j)*E+(h+1)*D]
					var s float32
					for d := 0; d < D; d++ {
						s += qRow[d] * kRow[d]
					}
					s *= scale
					if bias != nil {
						s += bias.X.Data[(h*Lq+i)*Lk+j]
					}
					if mask != nil && mask.Data[b*Lk+j] == 0 {
						s = -1e9
					}
					row[j] = s
				}
				softmaxInto(row)
				pOff := ((b*nHeads+h)*Lq + i) * Lk
				copy(probs.Data[pOff:pOff+Lk], row)
				oRow := y.Data[(b*Lq+i)*E+h*D : (b*Lq+i)*E+(h+1)*D]
				for j := 0; j < Lk; j++ {
					p := row[j]
					if p == 0 {
						continue
					}
					vRow := v.X.Data[(b*Lk+j)*E+h*D : (b*Lk+j)*E+(h+1)*D]
					for d := 0; d < D; d++ {
						oRow[d] += p * vRow[d]
					}
				}
			}
		}
	}

	parents := []*Value{q, k, v}
	if bias != nil {
		parents = append(parents, bias)
	}
	out := t.newResult(y, parents...)
	out.back = func() {
		dS := make([]float32, Lk)
		for b := 0; b < B; b++ {
			for h := 0; h < nHeads; h++ {
				for i := 0; i < Lq; i++ {
					gRow := out.Grad.Data[(b*Lq+i)*E+h*D : (b*Lq+i)*E+(h+1)*D]
					pRow := probs.Data[((b*nHeads+h)*Lq+i)*Lk : ((b*nHeads+h)*Lq+i+1)*Lk]
					// dP[j] = gRow · V[j]; dS = P ∘ (dP - Σ dP∘P)
					var dot float32
					for j := 0; j < Lk; j++ {
						vRow := v.X.Data[(b*Lk+j)*E+h*D : (b*Lk+j)*E+(h+1)*D]
						var dp float32
						for d := 0; d < D; d++ {
							dp += gRow[d] * vRow[d]
						}
						dS[j] = dp
						dot += dp * pRow[j]
					}
					for j := 0; j < Lk; j++ {
						dS[j] = pRow[j] * (dS[j] - dot)
					}
					if bias != nil && bias.requires {
						bg := bias.ensureGrad()
						for j := 0; j < Lk; j++ {
							bg.Data[(h*Lq+i)*Lk+j] += dS[j]
						}
					}
					if v.requires {
						vg := v.ensureGrad()
						for j := 0; j < Lk; j++ {
							p := pRow[j]
							if p == 0 {
								continue
							}
							vgRow := vg.Data[(b*Lk+j)*E+h*D : (b*Lk+j)*E+(h+1)*D]
							for d := 0; d < D; d++ {
								vgRow[d] += p * gRow[d]
							}
						}
					}
					qRow := q.X.Data[(b*Lq+i)*E+h*D : (b*Lq+i)*E+(h+1)*D]
					if q.requires {
						qgRow := q.ensureGrad().Data[(b*Lq+i)*E+h*D : (b*Lq+i)*E+(h+1)*D]
						for j := 0; j < Lk; j++ {
							ds := dS[j] * scale
							if ds == 0 {
								continue
							}
							kRow := k.X.Data[(b*Lk+j)*E+h*D : (b*Lk+j)*E+(h+1)*D]
							for d := 0; d < D; d++ {
								qgRow[d] += ds * kRow[d]
							}
						}
					}
					if k.requires {
						kg := k.ensureGrad()
						for j := 0; j < Lk; j++ {
							ds := dS[j] * scale
							if ds == 0 {
								continue
							}
							kgRow := kg.Data[(b*Lk+j)*E+h*D : (b*Lk+j)*E+(h+1)*D]
							for d := 0; d < D; d++ {
								kgRow[d] += ds * qRow[d]
							}
						}
					}
				}
			}
		}
	}
	return out
}

func softmaxInto(row []float32) {
	mx := float32(math.Inf(-1))
	for _, v := range row {
		if v > mx {
			mx = v
		}
	}
	var sum float32
	for i, v := range row {
		e := float32(math.Exp(float64(v - mx)))
		row[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range row {
		row[i] *= inv
	}
}

// TriMulOutgoing computes the "triangle multiplicative update using outgoing
// edges": out[i,j,c] = Σ_k a[i,k,c] * b[j,k,c] for a, b of shape [R,R,C].
func TriMulOutgoing(a, b *Value) *Value { return triMul(a, b, true) }

// TriMulIncoming computes the update using incoming edges:
// out[i,j,c] = Σ_k a[k,i,c] * b[k,j,c].
func TriMulIncoming(a, b *Value) *Value { return triMul(a, b, false) }

func triMul(a, b *Value, outgoing bool) *Value {
	t := sameTape(a, b)
	R, R2, C := a.X.Dim(0), a.X.Dim(1), a.X.Dim(2)
	if R != R2 || !a.X.SameShape(b.X) {
		panic(fmt.Sprintf("autograd: triMul wants square pair tensors, got %v and %v", a.X.Shape(), b.X.Shape()))
	}
	idx := func(i, k int) int {
		if outgoing {
			return (i*R + k) * C
		}
		return (k*R + i) * C
	}
	y := tensor.New(R, R, C)
	for i := 0; i < R; i++ {
		for j := 0; j < R; j++ {
			o := y.Data[(i*R+j)*C : (i*R+j+1)*C]
			for k := 0; k < R; k++ {
				av := a.X.Data[idx(i, k) : idx(i, k)+C]
				bv := b.X.Data[idx(j, k) : idx(j, k)+C]
				for c := 0; c < C; c++ {
					o[c] += av[c] * bv[c]
				}
			}
		}
	}
	out := t.newResult(y, a, b)
	out.back = func() {
		for i := 0; i < R; i++ {
			for j := 0; j < R; j++ {
				g := out.Grad.Data[(i*R+j)*C : (i*R+j+1)*C]
				for k := 0; k < R; k++ {
					if a.requires {
						ag := a.ensureGrad().Data[idx(i, k) : idx(i, k)+C]
						bv := b.X.Data[idx(j, k) : idx(j, k)+C]
						for c := 0; c < C; c++ {
							ag[c] += g[c] * bv[c]
						}
					}
					if b.requires {
						bg := b.ensureGrad().Data[idx(j, k) : idx(j, k)+C]
						av := a.X.Data[idx(i, k) : idx(i, k)+C]
						for c := 0; c < C; c++ {
							bg[c] += g[c] * av[c]
						}
					}
				}
			}
		}
	}
	return out
}

// OuterProductMean computes the Evoformer op that communicates information
// from the MSA representation into the pair representation:
// out[i,j, a*Cb+b] = (1/S) Σ_s A[s,i,a] * B[s,j,b]
// for A of shape [S,R,Ca] and B of shape [S,R,Cb].
func OuterProductMean(a, b *Value) *Value {
	t := sameTape(a, b)
	S, R, Ca := a.X.Dim(0), a.X.Dim(1), a.X.Dim(2)
	S2, R2, Cb := b.X.Dim(0), b.X.Dim(1), b.X.Dim(2)
	if S != S2 || R != R2 {
		panic(fmt.Sprintf("autograd: OuterProductMean shapes %v vs %v", a.X.Shape(), b.X.Shape()))
	}
	inv := 1 / float32(S)
	y := tensor.New(R, R, Ca*Cb)
	for s := 0; s < S; s++ {
		for i := 0; i < R; i++ {
			av := a.X.Data[(s*R+i)*Ca : (s*R+i+1)*Ca]
			for j := 0; j < R; j++ {
				bv := b.X.Data[(s*R+j)*Cb : (s*R+j+1)*Cb]
				o := y.Data[(i*R+j)*Ca*Cb : (i*R+j+1)*Ca*Cb]
				for p := 0; p < Ca; p++ {
					ap := av[p] * inv
					if ap == 0 {
						continue
					}
					for q := 0; q < Cb; q++ {
						o[p*Cb+q] += ap * bv[q]
					}
				}
			}
		}
	}
	out := t.newResult(y, a, b)
	out.back = func() {
		for s := 0; s < S; s++ {
			for i := 0; i < R; i++ {
				av := a.X.Data[(s*R+i)*Ca : (s*R+i+1)*Ca]
				var ag []float32
				if a.requires {
					ag = a.ensureGrad().Data[(s*R+i)*Ca : (s*R+i+1)*Ca]
				}
				for j := 0; j < R; j++ {
					bv := b.X.Data[(s*R+j)*Cb : (s*R+j+1)*Cb]
					g := out.Grad.Data[(i*R+j)*Ca*Cb : (i*R+j+1)*Ca*Cb]
					if ag != nil {
						for p := 0; p < Ca; p++ {
							var sum float32
							for q := 0; q < Cb; q++ {
								sum += g[p*Cb+q] * bv[q]
							}
							ag[p] += sum * inv
						}
					}
					if b.requires {
						bg := b.ensureGrad().Data[(s*R+j)*Cb : (s*R+j+1)*Cb]
						for p := 0; p < Ca; p++ {
							ap := av[p] * inv
							if ap == 0 {
								continue
							}
							for q := 0; q < Cb; q++ {
								bg[q] += g[p*Cb+q] * ap
							}
						}
					}
				}
			}
		}
	}
	return out
}
