// Package autograd implements a small reverse-mode automatic differentiation
// tape over the tensor package. It exists so the miniature AlphaFold model in
// package model can be written forward-only and still train for real — the
// paper's convergence experiments (Figure 11) need an actually trainable
// Evoformer, and OpenFold gets its gradients from PyTorch; this tape is the
// stdlib-Go substitute.
//
// The op set is deliberately the union of exactly what Evoformer needs:
// linear layers, layer normalization, softmax attention with an additive
// pair bias (the AlphaFold MHA variant from Figure 6), sigmoid gating,
// triangle multiplicative updates, outer product mean, transitions (ReLU
// MLPs) and residual arithmetic.
package autograd

import (
	"fmt"

	"repro/internal/tensor"
)

// Value is a node in the autograd graph: a tensor plus an optional gradient
// and a backward closure that propagates the gradient to its parents.
type Value struct {
	X    *tensor.Tensor
	Grad *tensor.Tensor

	tape     *Tape
	requires bool
	back     func()
}

// Tape records Values in creation order so Backward can run the closures in
// reverse topological order (creation order is a valid topological order
// because ops only consume already-created Values).
type Tape struct {
	nodes []*Value
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Len returns the number of recorded nodes (used by tests and by the
// workload census to count "operators" the way Table 1 counts kernels).
func (t *Tape) Len() int { return len(t.nodes) }

// Reset drops all recorded nodes. Parameters created with Param remain
// usable — re-binding them onto the new tape happens via Watch.
func (t *Tape) Reset() { t.nodes = t.nodes[:0] }

func (t *Tape) record(v *Value) *Value {
	t.nodes = append(t.nodes, v)
	return v
}

// Param registers x as a trainable parameter: it requires grad and has no
// parents.
func (t *Tape) Param(x *tensor.Tensor) *Value {
	return t.record(&Value{X: x, tape: t, requires: true})
}

// Input registers x as a non-trainable input.
func (t *Tape) Input(x *tensor.Tensor) *Value {
	return t.record(&Value{X: x, tape: t})
}

// Watch re-registers an existing parameter Value on the tape after a Reset,
// clearing any stale gradient.
func (t *Tape) Watch(v *Value) *Value {
	v.tape = t
	v.Grad = nil
	v.back = nil
	return t.record(v)
}

// ensureGrad allocates the gradient buffer on demand.
func (v *Value) ensureGrad() *tensor.Tensor {
	if v.Grad == nil {
		v.Grad = tensor.New(v.X.Shape()...)
	}
	return v.Grad
}

// accum adds g into v's gradient if v participates in differentiation.
func (v *Value) accum(g *tensor.Tensor) {
	if !v.requires {
		return
	}
	v.ensureGrad().Add(g)
}

// Backward seeds the gradient of root with ones and propagates through the
// tape in reverse creation order. root is typically a scalar loss.
func (t *Tape) Backward(root *Value) {
	if root.tape != t {
		panic("autograd: Backward root is not on this tape")
	}
	root.ensureGrad().Fill(1)
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.back != nil && n.Grad != nil {
			n.back()
		}
	}
}

// newResult creates a result node; it requires grad if any parent does.
func (t *Tape) newResult(x *tensor.Tensor, parents ...*Value) *Value {
	req := false
	for _, p := range parents {
		if p.requires {
			req = true
			break
		}
	}
	return t.record(&Value{X: x, tape: t, requires: req})
}

func sameTape(vs ...*Value) *Tape {
	t := vs[0].tape
	for _, v := range vs[1:] {
		if v.tape != t {
			panic("autograd: operands from different tapes")
		}
	}
	return t
}

// Add returns a + b (same shape).
func Add(a, b *Value) *Value {
	t := sameTape(a, b)
	out := t.newResult(a.X.Clone().Add(b.X), a, b)
	out.back = func() {
		a.accum(out.Grad)
		b.accum(out.Grad)
	}
	return out
}

// Sub returns a - b (same shape).
func Sub(a, b *Value) *Value {
	t := sameTape(a, b)
	out := t.newResult(a.X.Clone().Sub(b.X), a, b)
	out.back = func() {
		a.accum(out.Grad)
		if b.requires {
			b.ensureGrad().AddScaled(out.Grad, -1)
		}
	}
	return out
}

// Mul returns the elementwise product a * b (same shape).
func Mul(a, b *Value) *Value {
	t := sameTape(a, b)
	out := t.newResult(a.X.Clone().Mul(b.X), a, b)
	out.back = func() {
		if a.requires {
			a.ensureGrad().Add(out.Grad.Clone().Mul(b.X))
		}
		if b.requires {
			b.ensureGrad().Add(out.Grad.Clone().Mul(a.X))
		}
	}
	return out
}

// Scale returns a * s for a scalar constant s.
func Scale(a *Value, s float32) *Value {
	out := a.tape.newResult(a.X.Clone().Scale(s), a)
	out.back = func() {
		if a.requires {
			a.ensureGrad().AddScaled(out.Grad, s)
		}
	}
	return out
}

// Linear returns x·W + b where x is [N,K] (or any leading shape flattened to
// rows of K), W is [K,M] and b is [M] (b may be nil).
func Linear(x, w, b *Value) *Value {
	t := sameTape(x, w)
	k := w.X.Dim(0)
	m := w.X.Dim(1)
	n := x.X.Len() / k
	x2 := x.X.Reshape(n, k)
	y := tensor.MatMul(x2, w.X)
	if b != nil {
		sameTape(x, b)
		for i := 0; i < n; i++ {
			row := tensor.Row(y, i)
			for j := 0; j < m; j++ {
				row[j] += b.X.Data[j]
			}
		}
	}
	outShape := append([]int{}, x.X.Shape()...)
	outShape[len(outShape)-1] = m
	parents := []*Value{x, w}
	if b != nil {
		parents = append(parents, b)
	}
	out := t.newResult(y.Reshape(outShape...), parents...)
	out.back = func() {
		g := out.Grad.Reshape(n, m)
		if x.requires {
			x.ensureGrad().Reshape(n, k).Add(tensor.MatMulT(g, w.X))
		}
		if w.requires {
			w.ensureGrad().Add(tensor.TMatMul(x2, g))
		}
		if b != nil && b.requires {
			bg := b.ensureGrad()
			for i := 0; i < n; i++ {
				row := tensor.Row(g, i)
				for j := 0; j < m; j++ {
					bg.Data[j] += row[j]
				}
			}
		}
	}
	return out
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(a *Value) *Value {
	y := tensor.Sigmoid(a.X)
	out := a.tape.newResult(y, a)
	out.back = func() {
		if !a.requires {
			return
		}
		g := a.ensureGrad()
		for i := range g.Data {
			s := y.Data[i]
			g.Data[i] += out.Grad.Data[i] * s * (1 - s)
		}
	}
	return out
}

// ReLU applies max(0,x) elementwise.
func ReLU(a *Value) *Value {
	y := tensor.ReLU(a.X)
	out := a.tape.newResult(y, a)
	out.back = func() {
		if !a.requires {
			return
		}
		g := a.ensureGrad()
		for i := range g.Data {
			if a.X.Data[i] > 0 {
				g.Data[i] += out.Grad.Data[i]
			}
		}
	}
	return out
}

// Transpose01 swaps the first two axes of a rank-3 tensor [A,B,C] -> [B,A,C].
// The model uses it to flip between row-wise (per-sequence) and column-wise
// (per-residue) attention over the MSA representation.
func Transpose01(a *Value) *Value {
	if a.X.Rank() != 3 {
		panic(fmt.Sprintf("autograd: Transpose01 requires rank 3, got %v", a.X.Shape()))
	}
	A, B, C := a.X.Dim(0), a.X.Dim(1), a.X.Dim(2)
	y := tensor.New(B, A, C)
	transpose01(y.Data, a.X.Data, A, B, C)
	out := a.tape.newResult(y, a)
	out.back = func() {
		if !a.requires {
			return
		}
		tmp := tensor.New(A, B, C)
		transpose01(tmp.Data, out.Grad.Data, B, A, C)
		a.ensureGrad().Add(tmp)
	}
	return out
}

func transpose01(dst, src []float32, a, b, c int) {
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			copy(dst[(j*a+i)*c:(j*a+i+1)*c], src[(i*b+j)*c:(i*b+j+1)*c])
		}
	}
}

// MeanAll reduces a to a scalar mean (used for losses).
func MeanAll(a *Value) *Value {
	y := tensor.FromSlice([]float32{float32(a.X.Mean())}, 1)
	out := a.tape.newResult(y, a)
	out.back = func() {
		if !a.requires {
			return
		}
		g := a.ensureGrad()
		s := out.Grad.Data[0] / float32(a.X.Len())
		for i := range g.Data {
			g.Data[i] += s
		}
	}
	return out
}

// MSE returns the mean squared error between pred and target (a constant).
func MSE(pred *Value, target *tensor.Tensor) *Value {
	if pred.X.Len() != target.Len() {
		panic("autograd: MSE size mismatch")
	}
	var s float64
	for i := range pred.X.Data {
		d := float64(pred.X.Data[i] - target.Data[i])
		s += d * d
	}
	y := tensor.FromSlice([]float32{float32(s / float64(pred.X.Len()))}, 1)
	out := pred.tape.newResult(y, pred)
	out.back = func() {
		if !pred.requires {
			return
		}
		g := pred.ensureGrad()
		c := 2 * out.Grad.Data[0] / float32(pred.X.Len())
		for i := range g.Data {
			g.Data[i] += c * (pred.X.Data[i] - target.Data[i])
		}
	}
	return out
}
