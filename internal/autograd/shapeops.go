package autograd

import (
	"fmt"

	"repro/internal/tensor"
)

// Reshape returns a node with the same data viewed under a new shape.
// The result copies the data so gradient buffers stay independent.
func Reshape(a *Value, shape ...int) *Value {
	y := a.X.Clone().Reshape(shape...)
	out := a.tape.newResult(y, a)
	out.back = func() {
		if a.requires {
			a.ensureGrad().Add(out.Grad.Reshape(a.X.Shape()...))
		}
	}
	return out
}

// MoveLastToFront permutes a rank-3 tensor [A,B,C] -> [C,A,B]. The model
// uses it to turn per-pair head logits [R,R,H] into the [H,R,R] bias layout
// MHACore expects.
func MoveLastToFront(a *Value) *Value {
	if a.X.Rank() != 3 {
		panic(fmt.Sprintf("autograd: MoveLastToFront requires rank 3, got %v", a.X.Shape()))
	}
	A, B, C := a.X.Dim(0), a.X.Dim(1), a.X.Dim(2)
	y := tensor.New(C, A, B)
	for i := 0; i < A; i++ {
		for j := 0; j < B; j++ {
			for c := 0; c < C; c++ {
				y.Data[(c*A+i)*B+j] = a.X.Data[(i*B+j)*C+c]
			}
		}
	}
	out := a.tape.newResult(y, a)
	out.back = func() {
		if !a.requires {
			return
		}
		g := a.ensureGrad()
		for i := 0; i < A; i++ {
			for j := 0; j < B; j++ {
				for c := 0; c < C; c++ {
					g.Data[(i*B+j)*C+c] += out.Grad.Data[(c*A+i)*B+j]
				}
			}
		}
	}
	return out
}

// TakeRow0 extracts the first slice along axis 0 of a rank-3 tensor:
// [S,R,C] -> [R,C]. The structure module uses it to read the first MSA row
// (the target sequence representation).
func TakeRow0(a *Value) *Value {
	if a.X.Rank() != 3 {
		panic(fmt.Sprintf("autograd: TakeRow0 requires rank 3, got %v", a.X.Shape()))
	}
	R, C := a.X.Dim(1), a.X.Dim(2)
	y := tensor.New(R, C)
	copy(y.Data, a.X.Data[:R*C])
	out := a.tape.newResult(y, a)
	out.back = func() {
		if !a.requires {
			return
		}
		g := a.ensureGrad()
		for i := 0; i < R*C; i++ {
			g.Data[i] += out.Grad.Data[i]
		}
	}
	return out
}

// AddRowBroadcast adds b [R,C] to every slice of a [S,R,C] along axis 0.
// Used by the input embedder (target features added to each MSA row) and
// the recycling embedder.
func AddRowBroadcast(a, b *Value) *Value {
	t := sameTape(a, b)
	S, R, C := a.X.Dim(0), a.X.Dim(1), a.X.Dim(2)
	if b.X.Dim(0) != R || b.X.Dim(1) != C {
		panic(fmt.Sprintf("autograd: AddRowBroadcast %v + %v", a.X.Shape(), b.X.Shape()))
	}
	y := a.X.Clone()
	for s := 0; s < S; s++ {
		base := s * R * C
		for i := 0; i < R*C; i++ {
			y.Data[base+i] += b.X.Data[i]
		}
	}
	out := t.newResult(y, a, b)
	out.back = func() {
		if a.requires {
			a.ensureGrad().Add(out.Grad)
		}
		if b.requires {
			bg := b.ensureGrad()
			for s := 0; s < S; s++ {
				base := s * R * C
				for i := 0; i < R*C; i++ {
					bg.Data[i] += out.Grad.Data[base+i]
				}
			}
		}
	}
	return out
}

// PairOuterSum builds a pair tensor from two per-residue embeddings:
// out[i,j,c] = a[i,c] + b[j,c], for a, b of shape [R,C]. This is the
// left/right single embedding sum that initializes the pair representation.
func PairOuterSum(a, b *Value) *Value {
	t := sameTape(a, b)
	R, C := a.X.Dim(0), a.X.Dim(1)
	if b.X.Dim(0) != R || b.X.Dim(1) != C {
		panic(fmt.Sprintf("autograd: PairOuterSum %v + %v", a.X.Shape(), b.X.Shape()))
	}
	y := tensor.New(R, R, C)
	for i := 0; i < R; i++ {
		for j := 0; j < R; j++ {
			o := y.Data[(i*R+j)*C : (i*R+j+1)*C]
			av := a.X.Data[i*C : (i+1)*C]
			bv := b.X.Data[j*C : (j+1)*C]
			for c := 0; c < C; c++ {
				o[c] = av[c] + bv[c]
			}
		}
	}
	out := t.newResult(y, a, b)
	out.back = func() {
		for i := 0; i < R; i++ {
			for j := 0; j < R; j++ {
				g := out.Grad.Data[(i*R+j)*C : (i*R+j+1)*C]
				if a.requires {
					ag := a.ensureGrad().Data[i*C : (i+1)*C]
					for c := 0; c < C; c++ {
						ag[c] += g[c]
					}
				}
				if b.requires {
					bg := b.ensureGrad().Data[j*C : (j+1)*C]
					for c := 0; c < C; c++ {
						bg[c] += g[c]
					}
				}
			}
		}
	}
	return out
}
