package autograd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestPairwiseDistValues(t *testing.T) {
	tp := NewTape()
	x := tp.Input(tensor.FromSlice([]float32{0, 0, 0, 3, 4, 0}, 2, 3))
	d := PairwiseDist(x)
	if math.Abs(float64(d.X.At(0, 1))-5) > 1e-3 || math.Abs(float64(d.X.At(1, 0))-5) > 1e-3 {
		t.Fatalf("distance %v, want 5", d.X.Data)
	}
	if d.X.At(0, 0) != 0 || d.X.At(1, 1) != 0 {
		t.Fatal("diagonal must be 0")
	}
}

func TestGradPairwiseDist(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := tensor.New(5, 3).RandN(rng, 2)
	target := tensor.New(5, 5)
	target.Fill(3)
	gradCheck(t, []*tensor.Tensor{x}, func(tp *Tape, vs []*Value) *Value {
		return MSE(PairwiseDist(vs[0]), target)
	})
}

func TestPairwiseDistTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	tp := NewTape()
	x := tensor.New(6, 3).RandN(rng, 1)
	y := x.Clone()
	for i := 0; i < 6; i++ {
		y.Data[i*3] += 10
		y.Data[i*3+1] -= 4
	}
	d1 := PairwiseDist(tp.Input(x))
	d2 := PairwiseDist(tp.Input(y))
	if d1.X.MaxDiff(d2.X) > 1e-4 {
		t.Fatal("distance matrix must be translation invariant")
	}
}
