package autograd

import (
	"math"

	"repro/internal/tensor"
)

// PairwiseDist maps coordinates x of shape [R,3] to the distance matrix
// [R,R] with d[i,j] = |x_i - x_j|. The training loss compares predicted and
// true distance matrices, which is invariant to global rotation and
// translation — the same property AlphaFold's FAPE loss engineers with
// frames, obtained here in the cheapest differentiable way.
func PairwiseDist(x *Value) *Value {
	if x.X.Rank() != 2 || x.X.Dim(1) != 3 {
		panic("autograd: PairwiseDist requires [R,3] coordinates")
	}
	R := x.X.Dim(0)
	const eps = 1e-6
	y := tensor.New(R, R)
	for i := 0; i < R; i++ {
		xi := x.X.Data[i*3 : i*3+3]
		for j := i + 1; j < R; j++ {
			xj := x.X.Data[j*3 : j*3+3]
			dx := float64(xi[0] - xj[0])
			dy := float64(xi[1] - xj[1])
			dz := float64(xi[2] - xj[2])
			d := float32(math.Sqrt(dx*dx + dy*dy + dz*dz + eps))
			y.Data[i*R+j] = d
			y.Data[j*R+i] = d
		}
	}
	out := x.tape.newResult(y, x)
	out.back = func() {
		if !x.requires {
			return
		}
		g := x.ensureGrad()
		for i := 0; i < R; i++ {
			xi := x.X.Data[i*3 : i*3+3]
			gi := g.Data[i*3 : i*3+3]
			for j := 0; j < R; j++ {
				if i == j {
					continue
				}
				d := y.Data[i*R+j]
				if d == 0 {
					continue
				}
				// d[i,j] appears at (i,j) and (j,i); both feed x_i.
				up := out.Grad.Data[i*R+j] + out.Grad.Data[j*R+i]
				if up == 0 {
					continue
				}
				xj := x.X.Data[j*3 : j*3+3]
				inv := up / d
				gi[0] += inv * (xi[0] - xj[0])
				gi[1] += inv * (xi[1] - xj[1])
				gi[2] += inv * (xi[2] - xj[2])
			}
		}
	}
	return out
}
