package autograd

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestGradReshape(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x := randTensor(rng, 2, 6)
	gradCheck(t, []*tensor.Tensor{x}, func(tp *Tape, vs []*Value) *Value {
		y := Reshape(vs[0], 3, 4)
		target := tensor.New(3, 4)
		target.Fill(0.5)
		return MSE(y, target)
	})
}

func TestGradMoveLastToFront(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := randTensor(rng, 2, 3, 4)
	gradCheck(t, []*tensor.Tensor{x}, func(tp *Tape, vs []*Value) *Value {
		y := MoveLastToFront(vs[0])
		if y.X.Dim(0) != 4 || y.X.Dim(1) != 2 || y.X.Dim(2) != 3 {
			t.Fatalf("shape %v", y.X.Shape())
		}
		w := tensor.New(4, 2, 3)
		w.RandN(rand.New(rand.NewSource(5)), 1)
		return MSE(y, w)
	})
}

func TestMoveLastToFrontValues(t *testing.T) {
	tp := NewTape()
	x := tp.Input(tensor.FromSlice([]float32{
		1, 2, // [0,0,:]
		3, 4, // [0,1,:]
		5, 6, // [1,0,:]
		7, 8, // [1,1,:]
	}, 2, 2, 2))
	y := MoveLastToFront(x)
	// y[c,i,j] = x[i,j,c]
	if y.X.At(0, 1, 1) != 7 || y.X.At(1, 0, 1) != 4 {
		t.Fatalf("bad permutation: %v", y.X.Data)
	}
}

func TestGradTakeRow0(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := randTensor(rng, 3, 2, 4)
	gradCheck(t, []*tensor.Tensor{x}, func(tp *Tape, vs []*Value) *Value {
		y := TakeRow0(vs[0])
		target := tensor.New(2, 4)
		target.Fill(-0.2)
		return MSE(y, target)
	})
}

func TestTakeRow0OnlyGradsFirstSlice(t *testing.T) {
	tp := NewTape()
	x := tp.Param(tensor.New(2, 2, 2))
	y := TakeRow0(x)
	tp.Backward(MeanAll(y))
	for i := 4; i < 8; i++ {
		if x.Grad.Data[i] != 0 {
			t.Fatal("grad leaked into non-first slices")
		}
	}
	if x.Grad.Data[0] == 0 {
		t.Fatal("first slice must receive grad")
	}
}

func TestGradAddRowBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randTensor(rng, 3, 2, 3)
	b := randTensor(rng, 2, 3)
	gradCheck(t, []*tensor.Tensor{a, b}, func(tp *Tape, vs []*Value) *Value {
		return MeanAll(Mul(AddRowBroadcast(vs[0], vs[1]), AddRowBroadcast(vs[0], vs[1])))
	})
}

func TestGradPairOuterSum(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randTensor(rng, 3, 2)
	b := randTensor(rng, 3, 2)
	gradCheck(t, []*tensor.Tensor{a, b}, func(tp *Tape, vs []*Value) *Value {
		y := PairOuterSum(vs[0], vs[1])
		target := tensor.New(3, 3, 2)
		target.Fill(0.1)
		return MSE(y, target)
	})
}

func TestPairOuterSumValues(t *testing.T) {
	tp := NewTape()
	a := tp.Input(tensor.FromSlice([]float32{1, 2, 10, 20}, 2, 2))
	b := tp.Input(tensor.FromSlice([]float32{100, 200, 1000, 2000}, 2, 2))
	y := PairOuterSum(a, b)
	if y.X.At(0, 1, 0) != 1001 || y.X.At(1, 0, 1) != 220 {
		t.Fatalf("bad outer sum: %v", y.X.Data)
	}
}
