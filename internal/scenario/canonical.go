package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/workload"
)

// Version is the fingerprint encoding version of unperturbed scenarios.
// Bump it (and update the golden corpus) whenever Canonical's field set,
// order or formatting changes; see the package comment for the
// compatibility contract. The v1/v2 generations were the pre-scenario
// `fmt.Sprintf("%+v")` struct dumps, which are recognizably prefix-less and
// therefore read as legacy keys.
const Version = 3

// PerturbVersion is the encoding version of scenarios carrying a
// perturbation block. The v4 generation EXTENDS v3 rather than replacing
// it: an unperturbed scenario still encodes (and fingerprints)
// byte-identically to v3, so pre-perturbation stores keep serving healthy
// cells, while any scenario whose Perturb survives normalization encodes
// the extra ";perturb{...}" block and mints a "v4:" key. A v3 key can
// therefore never satisfy a v4 lookup (and vice versa): the prefixes — not
// just the hashes — differ.
const PerturbVersion = 4

// AnalyticVersion is the encoding version of scenarios resolved by a
// non-exact Mode ("analytic" or "auto"). Like v4 it EXTENDS the earlier
// generations rather than replacing them: exact-mode scenarios (Mode "" or
// "exact", which Normalize folds to "") still encode and fingerprint
// byte-identically to v3/v4, so every pre-existing store keeps serving,
// while a non-exact mode appends a ";mode=..." block and mints a "v5:" key.
// An analytic estimate can therefore never satisfy an exact lookup (or
// vice versa): the prefixes — not just the hashes — differ.
const AnalyticVersion = 5

// keyPrefix tags unperturbed-generation fingerprints; perturbPrefix tags
// scenarios with a live perturbation block; analyticPrefix tags scenarios
// resolved by a non-exact mode.
var (
	keyPrefix      = fmt.Sprintf("v%d:", Version)
	perturbPrefix  = fmt.Sprintf("v%d:", PerturbVersion)
	analyticPrefix = fmt.Sprintf("v%d:", AnalyticVersion)
)

// IsCurrentKey reports whether a memo/store key was minted by a current
// encoding generation (v3 for unperturbed exact scenarios, v4 for perturbed
// exact ones, v5 for analytic/auto-mode ones). Keys from older generations
// are legacy: kept in the store's append-only log, counted in store
// statistics, never matched by lookups.
func IsCurrentKey(key string) bool {
	return strings.HasPrefix(key, keyPrefix) ||
		strings.HasPrefix(key, perturbPrefix) ||
		strings.HasPrefix(key, analyticPrefix)
}

// Fingerprint returns the versioned canonical identity of the scenario:
// "v3:" ("v4:" when a perturbation block is present, "v5:" when the
// resolution mode is analytic or auto) + a 128-bit hash of Canonical(). It is the memoization key of the sweep engine and the record
// key of the persistent result store. Scenarios that normalize equal share
// a fingerprint; any semantic difference — including the numeric contents
// of the profiles the scenario references — produces a different one.
// Unresolvable scenarios are fingerprinted too (from their raw fields) so
// callers without an error path stay total, but such keys never reach a
// store: validation rejects the scenario first.
func (s Scenario) Fingerprint() string {
	if n, err := s.Normalize(); err == nil {
		s = n
	}
	prefix := keyPrefix
	if s.Perturb != nil && !s.Perturb.IsZero() {
		prefix = perturbPrefix
	}
	if s.Mode != "" && s.Mode != ModeExact {
		// Non-exact modes outrank the perturb generation: an estimate of a
		// perturbed cell is still an estimate, never an exact record.
		prefix = analyticPrefix
	}
	sum := sha256.Sum256([]byte(s.Canonical()))
	return prefix + hex.EncodeToString(sum[:16])
}

// Canonical returns the explicit field-by-field encoding of the resolved
// scenario that Fingerprint hashes. Every cluster.Simulate input appears:
// profile references are expanded to their numeric contents (so editing a
// registered profile re-keys the scenarios using it), defaults are applied,
// floats use the shortest round-trip formatting and durations integer
// nanoseconds. The format is stable by contract and pinned by the golden
// test; it is also readable on purpose — debugging a store is `grep`, not a
// hash-reversal exercise.
//
// SimWorkers is deliberately NOT encoded: it only shards the simulator's
// work across goroutines and cannot change a Result bit, so it is an
// execution detail outside the scenario's identity (the exclusion is pinned
// by TestFingerprintExcludesSimWorkers).
func (s Scenario) Canonical() string {
	if n, err := s.Normalize(); err == nil {
		s = n
	}
	var b strings.Builder
	b.WriteString("platform=")
	b.WriteString(s.Platform)
	if p, err := PlatformByName(s.Platform); err == nil {
		canonArch(&b, p.Arch)
		canonTopo(&b, p.Topo)
	}
	b.WriteString(";cpu=")
	b.WriteString(s.CPU)
	if c, err := CPUProfileByName(s.CPU); err == nil {
		canonCPU(&b, c.Model)
	}
	b.WriteString(";prep=")
	b.WriteString(s.Prep)
	if p, err := PrepProfileByName(s.Prep); err == nil {
		canonPrep(&b, p.Model)
	}
	fmt.Fprintf(&b, ";ranks=%d;dap=%d;", s.Ranks, s.DAP)
	b.WriteString(CanonicalCensus(s.Census))
	fmt.Fprintf(&b, ";graph=%s;nonblock=%s;gc_off=%s;workers=%d;prefetch=%d;ablate=%s;seed=%d;steps=%d",
		canonBool(s.CUDAGraph), canonBool(s.NonBlocking), canonBool(s.DisableGC),
		s.Workers, s.Prefetch, s.Ablation, s.Seed, s.Steps)
	// The perturbation block is appended ONLY when live (the v4
	// generation); unperturbed scenarios keep the exact v3 encoding, so
	// their fingerprints — and every pre-perturbation store key — are
	// untouched by this layer's existence.
	if s.Perturb != nil && !s.Perturb.IsZero() {
		b.WriteString(";")
		b.WriteString(s.Perturb.Canonical())
	}
	// The mode block is appended ONLY for non-exact modes (the v5
	// generation); exact scenarios keep the exact v3/v4 encoding, so their
	// fingerprints — and every pre-existing store key — are untouched by
	// the analytic layer's existence.
	if s.Mode != "" && s.Mode != ModeExact {
		b.WriteString(";mode=")
		b.WriteString(s.Mode)
	}
	return b.String()
}

// CanonicalCensus is the explicit encoding of the kernel-census options,
// shared by Canonical and the census memo in package scalefold.
func CanonicalCensus(o workload.Options) string {
	return fmt.Sprintf(
		"census{fused_mha=%s;fused_ln=%s;fused_adam_swa=%s;batched_gemm=%s;torch_compile=%s;bf16=%s;grad_ckpt=%s;recycles=%d;dap=%d;bucketed_clip=%s}",
		canonBool(o.FusedMHA), canonBool(o.FusedLN), canonBool(o.FusedAdamSWA),
		canonBool(o.BatchedGEMM), canonBool(o.TorchCompile), canonBool(o.BF16),
		canonBool(o.GradCheckpoint), o.Recycles, o.DAP, canonBool(o.BucketedClip))
}

func canonArch(b *strings.Builder, a gpu.Arch) {
	fmt.Fprintf(b, "{arch{name=%s;flops=%s;bw=%s;launch=%s;replay=%s;fixed=%s;mem_half=%s;math_half=%s}",
		a.Name, canonFloat(a.PeakFLOPS), canonFloat(a.PeakBW),
		canonDur(a.LaunchOverhead), canonDur(a.GraphReplayOverhead), canonDur(a.KernelFixed),
		canonFloat(a.MemHalfSat), canonFloat(a.MathHalfSat))
}

func canonTopo(b *strings.Builder, t comm.Topology) {
	fmt.Fprintf(b, ";topo{intra_bw=%s;inter_bw=%s;intra_lat=%s;inter_lat=%s;gpus_per_node=%d}}",
		canonFloat(t.IntraBW), canonFloat(t.InterBW),
		canonDur(t.IntraLat), canonDur(t.InterLat), t.GPUsPerNode)
}

func canonCPU(b *strings.Builder, c gpu.CPUModel) {
	fmt.Fprintf(b, "{peak_prob=%s;peak_stretch=%s;gc=%s;gc_pause=%s;gc_interval=%d;straggler_prob=%s;straggler_mean=%s}",
		canonFloat(c.PeakProb), canonFloat(c.PeakStretch), canonBool(c.GCEnabled),
		canonDur(c.GCPause), c.GCInterval, canonFloat(c.StragglerProb), canonDur(c.StragglerMean))
}

func canonPrep(b *strings.Builder, m dataset.PrepTimeModel) {
	fmt.Fprintf(b, "{base=%s;per_residue=%s;per_msa_row=%s;jitter=%s;tail_prob=%s;tail_scale=%s}",
		canonFloat(m.Base), canonFloat(m.PerResidue), canonFloat(m.PerMSARow),
		canonFloat(m.JitterSigma), canonFloat(m.HeavyTailProb), canonFloat(m.HeavyTailScale))
}

func canonBool(v bool) string {
	if v {
		return "t"
	}
	return "f"
}

func canonFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func canonDur(d time.Duration) string { return strconv.FormatInt(int64(d), 10) }
