package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/perturb"
	"repro/internal/workload"
)

// fig7ish is a representative optimized scenario (the Figure 7 H100×256
// DAP-2 cell) assembled from raw fields — package scalefold's constructors
// sit above this package.
func fig7ish() Scenario {
	return Scenario{
		Platform: "H100", Ranks: 256, DAP: 2,
		Census: workload.Options{
			FusedMHA: true, FusedLN: true, FusedAdamSWA: true,
			BatchedGEMM: true, BF16: true, BucketedClip: true,
			Recycles: 3, DAP: 2,
		},
		CUDAGraph: true, NonBlocking: true,
		Seed: 1,
	}
}

func TestNormalizeResolvesAliasesAndDefaults(t *testing.T) {
	n, err := fig7ish().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Platform != "h100-eos" {
		t.Fatalf("alias H100 must normalize to h100-eos, got %q", n.Platform)
	}
	if n.CPU != "default" || n.Prep != "openfold" || n.Ablation != "none" {
		t.Fatalf("profile defaults not applied: %+v", n)
	}
	if n.Workers != 10 || n.Prefetch != 32 || n.Steps != 6 {
		t.Fatalf("tunable defaults not applied: workers=%d prefetch=%d steps=%d", n.Workers, n.Prefetch, n.Steps)
	}
}

func TestFingerprintIgnoresSpelling(t *testing.T) {
	a := fig7ish()
	b := fig7ish()
	b.Platform = "h100-eos" // canonical name instead of alias
	b.CPU = "default"       // explicit defaults instead of zero values
	b.Prep = "openfold"
	b.Ablation = "none"
	b.Workers, b.Prefetch, b.Steps = 10, 32, 6
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("spelling variants of the same scenario must share a fingerprint:\n%s\nvs\n%s", a.Canonical(), b.Canonical())
	}
}

func TestFingerprintSeparatesScenarios(t *testing.T) {
	base := fig7ish()
	for name, mut := range map[string]func(*Scenario){
		"platform": func(s *Scenario) { s.Platform = "a100-selene" },
		"cpu":      func(s *Scenario) { s.CPU = "quiet" },
		"prep":     func(s *Scenario) { s.Prep = "precomputed" },
		"ranks":    func(s *Scenario) { s.Ranks = 512 },
		"dap":      func(s *Scenario) { s.DAP = 4; s.Census.DAP = 4 },
		"census":   func(s *Scenario) { s.Census.BF16 = false },
		"graph":    func(s *Scenario) { s.CUDAGraph = false },
		"nonblock": func(s *Scenario) { s.NonBlocking = false },
		"gc":       func(s *Scenario) { s.DisableGC = true },
		"workers":  func(s *Scenario) { s.Workers = 4 },
		"prefetch": func(s *Scenario) { s.Prefetch = 128 },
		"ablation": func(s *Scenario) { s.Ablation = "zero-comm" },
		"seed":     func(s *Scenario) { s.Seed = 99 },
		"steps":    func(s *Scenario) { s.Steps = 12 },
		"mode":     func(s *Scenario) { s.Mode = ModeAnalytic },
	} {
		m := base
		mut(&m)
		if m.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s mutation must change the fingerprint", name)
		}
	}
}

// TestFingerprintExcludesSimWorkers pins the one deliberate exclusion from
// the canonical encoding: SimWorkers shards the simulator's work across
// goroutines without changing a Result bit, so scenarios differing only
// there must share a Canonical string, a fingerprint, a memo entry and a
// store record — and the encoding (hence Version, hence every existing
// store) must not move.
func TestFingerprintExcludesSimWorkers(t *testing.T) {
	base := fig7ish()
	for _, w := range []int{1, 4, 8, 64} {
		m := base
		m.SimWorkers = w
		if m.Canonical() != base.Canonical() {
			t.Fatalf("SimWorkers=%d leaked into the canonical encoding:\n%s\nvs\n%s",
				w, m.Canonical(), base.Canonical())
		}
		if m.Fingerprint() != base.Fingerprint() {
			t.Fatalf("SimWorkers=%d must not change the fingerprint", w)
		}
	}
	// It still lowers to the simulator option and survives the wire format.
	m := base
	m.SimWorkers = 8
	o, err := m.Options()
	if err != nil {
		t.Fatal(err)
	}
	if o.SimWorkers != 8 {
		t.Fatalf("SimWorkers must lower to cluster.Options, got %d", o.SimWorkers)
	}
	neg := base
	neg.SimWorkers = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative SimWorkers must be rejected")
	}
}

func TestFingerprintIsVersioned(t *testing.T) {
	fp := fig7ish().Fingerprint()
	if !strings.HasPrefix(fp, "v3:") {
		t.Fatalf("fingerprint %q must carry the v3: version prefix", fp)
	}
	if !IsCurrentKey(fp) {
		t.Fatalf("IsCurrentKey must accept a fresh fingerprint %q", fp)
	}
	for _, legacy := range []string{
		"census{{false false ...}}|ranks=256|dap=2|arch={H100 ...}", // v1/v2 %+v dumps
		"v2:deadbeef",
		"",
	} {
		if IsCurrentKey(legacy) {
			t.Errorf("IsCurrentKey must reject legacy key %q", legacy)
		}
	}
}

func TestValidateRejectsBadScenarios(t *testing.T) {
	for name, mut := range map[string]func(*Scenario){
		"unknown platform":  func(s *Scenario) { s.Platform = "TPU" },
		"unknown cpu":       func(s *Scenario) { s.CPU = "overclocked" },
		"unknown prep":      func(s *Scenario) { s.Prep = "instant" },
		"unknown ablation":  func(s *Scenario) { s.Ablation = "zero-lunch" },
		"unknown mode":      func(s *Scenario) { s.Mode = "psychic" },
		"zero ranks":        func(s *Scenario) { s.Ranks = 0 },
		"zero dap":          func(s *Scenario) { s.DAP = 0 },
		"indivisible":       func(s *Scenario) { s.Ranks = 30; s.DAP = 4 },
		"census dap clash":  func(s *Scenario) { s.Census.DAP = 8 },
		"negative steps":    func(s *Scenario) { s.Steps = -1 },
		"negative recycles": func(s *Scenario) { s.Census.Recycles = -1 },
	} {
		s := fig7ish()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate must reject %+v", name, s)
		}
	}
	if err := fig7ish().Validate(); err != nil {
		t.Fatalf("the representative scenario must validate: %v", err)
	}
}

func TestOptionsLowersAblationWithoutPanic(t *testing.T) {
	for _, ab := range Ablations {
		s := fig7ish()
		s.Ablation = ab
		if _, err := s.Options(); err != nil {
			t.Fatalf("ablation %q must lower: %v", ab, err)
		}
	}
	s := fig7ish()
	s.Ablation = "zero-lunch"
	if _, err := s.Options(); err == nil {
		t.Fatal("unknown ablation must surface as an error, not a panic")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := fig7ish()
	s.Ablation = "zero-serial"
	s.Prep = "precomputed"
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("JSON round trip changed the scenario:\n%+v\nvs\n%+v", back, s)
	}
	if back.Fingerprint() != s.Fingerprint() {
		t.Fatal("JSON round trip changed the fingerprint")
	}
}

func TestParseJSONRejectsUnknownFields(t *testing.T) {
	if _, err := ParseJSON([]byte(`{"platform":"H100","ranks":8,"dap":1,"sed":3}`)); err == nil {
		t.Fatal("typo'd field must be rejected, not silently dropped")
	}
	if _, err := ParseJSONList([]byte(`[{"platform":"H100","ranks":8,"dap":1,"census":{"bf17":true}}]`)); err == nil {
		t.Fatal("typo'd census field must be rejected")
	}
}

func TestParseJSONRejectsTrailingData(t *testing.T) {
	// Concatenated documents must error, not silently drop the tail.
	two := `[{"platform":"H100","ranks":8,"dap":1,"seed":1}]
[{"platform":"A100","ranks":8,"dap":1,"seed":2}]`
	if _, err := ParseJSONList([]byte(two)); err == nil {
		t.Fatal("trailing JSON document must be rejected")
	}
	if _, err := ParseJSON([]byte(`{"platform":"H100","ranks":8,"dap":1,"seed":1} {}`)); err == nil {
		t.Fatal("trailing object must be rejected")
	}
}

func TestOmittedCensusDAPFollowsGeometry(t *testing.T) {
	// census.dap = 0 means "follow the geometry": the normalized form,
	// fingerprint and store key match the explicitly-sharded spelling, and
	// the lowered census shards the kernels at the plan's degree.
	implicit := fig7ish()
	implicit.Census.DAP = 0
	if err := implicit.Validate(); err != nil {
		t.Fatalf("unset census DAP must validate: %v", err)
	}
	n, err := implicit.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Census.DAP != 2 {
		t.Fatalf("census DAP must follow geometry DAP-2, got %d", n.Census.DAP)
	}
	if implicit.Fingerprint() != fig7ish().Fingerprint() {
		t.Fatal("implicit and explicit census DAP must be one scenario")
	}
}

func TestOptionsMatchesClusterDefaults(t *testing.T) {
	// The scenario layer's defaults must lower to exactly what
	// cluster.DefaultOptions produced pre-refactor — the byte-identity of
	// every figure depends on it.
	s := Scenario{Platform: "H100", Ranks: 128, DAP: 1, Census: workload.Baseline(), Seed: 1}
	o, err := s.Options()
	if err != nil {
		t.Fatal(err)
	}
	if o.Workers != 10 || o.Prefetch != 32 || o.Steps != 6 {
		t.Fatalf("defaults drifted: %+v", o)
	}
	if o.Arch.Name != "H100" || o.Topo.GPUsPerNode != 8 || !o.CPU.GCEnabled {
		t.Fatalf("profile resolution drifted: %+v", o)
	}
	s.DisableGC = true
	o, err = s.Options()
	if err != nil {
		t.Fatal(err)
	}
	if o.CPU.GCEnabled {
		t.Fatal("DisableGC must flip the CPU model's GC switch")
	}
}

// TestPerturbFingerprintGenerations pins the conditional-versioning
// contract of the perturbation layer: an absent or no-op Perturb block
// leaves the scenario on its exact v3 encoding and key (so every
// pre-perturbation store keeps serving healthy cells), while a live block
// appends its canonical encoding and mints a v4 key that can never collide
// with — or be satisfied by — any v3 record.
func TestPerturbFingerprintGenerations(t *testing.T) {
	base := fig7ish()
	if fp := base.Fingerprint(); !strings.HasPrefix(fp, "v3:") {
		t.Fatalf("unperturbed fingerprint %q must stay on the v3 generation", fp)
	}

	// A spec that normalizes to nothing IS the healthy cluster.
	noop := base
	noop.Perturb = &perturb.Spec{SlowdownProb: 0.9, SlowdownFactor: 1, RestartCost: 600}
	if noop.Fingerprint() != base.Fingerprint() {
		t.Fatalf("no-op perturb moved the key: %s vs %s", noop.Fingerprint(), base.Fingerprint())
	}
	if noop.Canonical() != base.Canonical() {
		t.Fatalf("no-op perturb leaked into the canonical encoding:\n%s\nvs\n%s",
			noop.Canonical(), base.Canonical())
	}
	n, err := noop.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Perturb != nil {
		t.Fatalf("normalize kept a no-op perturb block: %+v", n.Perturb)
	}

	// A live spec moves to v4 and encodes the block.
	live := base
	live.Perturb = &perturb.Spec{FailProb: 0.001, RestartCost: 60}
	fp := live.Fingerprint()
	if !strings.HasPrefix(fp, "v4:") {
		t.Fatalf("perturbed fingerprint %q must be v4-prefixed", fp)
	}
	if !IsCurrentKey(fp) || !IsCurrentKey(base.Fingerprint()) {
		t.Fatal("both generations must be current keys")
	}
	if !strings.Contains(live.Canonical(), ";perturb{") {
		t.Fatalf("perturbed canonical misses the block:\n%s", live.Canonical())
	}
	if fp == base.Fingerprint() {
		t.Fatal("perturbed and healthy scenarios must never share a key")
	}

	// Different perturbations are different scenarios.
	harder := base
	harder.Perturb = &perturb.Spec{FailProb: 0.01, RestartCost: 60}
	if harder.Fingerprint() == fp {
		t.Fatal("distinct failure rates collapsed to one key")
	}

	// And the block survives the wire format.
	blob, err := json.Marshal(live)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != fp {
		t.Fatalf("wire round trip moved the v4 key: %s vs %s", back.Fingerprint(), fp)
	}

	// Lowering carries the spec into the simulator options.
	o, err := live.Options()
	if err != nil {
		t.Fatal(err)
	}
	if !o.Perturb.Enabled() || o.Perturb.FailProb != 0.001 {
		t.Fatalf("perturb did not lower into cluster.Options: %+v", o.Perturb)
	}
}

// TestModeFingerprintGenerations pins the conditional-versioning contract of
// the resolution mode: "" and "exact" are one scenario on the exact v3 (or,
// perturbed, v4) encoding and key — so every pre-existing store keeps
// serving — while "analytic" and "auto" append a ";mode=..." block and mint
// v5 keys that can never collide with, or be satisfied by, any exact record.
func TestModeFingerprintGenerations(t *testing.T) {
	base := fig7ish()

	// Explicit "exact" is the zero value: same key, same encoding, and
	// Normalize folds the spelling away.
	exact := base
	exact.Mode = ModeExact
	if exact.Fingerprint() != base.Fingerprint() {
		t.Fatalf("mode=exact moved the key: %s vs %s", exact.Fingerprint(), base.Fingerprint())
	}
	if exact.Canonical() != base.Canonical() {
		t.Fatalf("mode=exact leaked into the canonical encoding:\n%s\nvs\n%s",
			exact.Canonical(), base.Canonical())
	}
	n, err := exact.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Mode != "" {
		t.Fatalf("normalize kept the explicit exact spelling: %q", n.Mode)
	}

	// Analytic and auto mint distinct v5 keys and encode the block.
	seen := map[string]bool{base.Fingerprint(): true}
	for _, mode := range []string{ModeAnalytic, ModeAuto} {
		m := base
		m.Mode = mode
		fp := m.Fingerprint()
		if !strings.HasPrefix(fp, "v5:") {
			t.Fatalf("mode=%s fingerprint %q must be v5-prefixed", mode, fp)
		}
		if !IsCurrentKey(fp) {
			t.Fatalf("mode=%s key %q must be current", mode, fp)
		}
		if !strings.Contains(m.Canonical(), ";mode="+mode) {
			t.Fatalf("mode=%s canonical misses the block:\n%s", mode, m.Canonical())
		}
		if seen[fp] {
			t.Fatalf("mode=%s collided with another generation's key", mode)
		}
		seen[fp] = true

		// The mode survives the wire format.
		blob, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseJSON(blob)
		if err != nil {
			t.Fatal(err)
		}
		if back.Fingerprint() != fp {
			t.Fatalf("wire round trip moved the v5 key: %s vs %s", back.Fingerprint(), fp)
		}
	}

	// A perturbed analytic scenario is v5, not v4 — an estimate of an
	// unhealthy cell is still an estimate.
	pa := base
	pa.Mode = ModeAnalytic
	pa.Perturb = &perturb.Spec{FailProb: 0.001, RestartCost: 60}
	if fp := pa.Fingerprint(); !strings.HasPrefix(fp, "v5:") {
		t.Fatalf("perturbed analytic fingerprint %q must be v5-prefixed", fp)
	}
	if !strings.Contains(pa.Canonical(), ";perturb{") || !strings.Contains(pa.Canonical(), ";mode=analytic") {
		t.Fatalf("perturbed analytic canonical misses a block:\n%s", pa.Canonical())
	}

	// Unknown modes are rejected at both gates.
	bad := base
	bad.Mode = "psychic"
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown mode must be rejected by Validate")
	}
	if _, err := bad.Normalize(); err == nil {
		t.Fatal("unknown mode must be rejected by Normalize")
	}
}
