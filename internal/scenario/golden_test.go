package scenario

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/perturb"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the fingerprint golden file")

// goldenCorpus is the representative scenario matrix whose canonical
// encodings are pinned in testdata/fingerprints.golden: every platform, CPU
// and prep profile, every ablation, and the configurations the figures rely
// on. If this test fails you changed the meaning of existing store keys —
// either revert, or bump Version (re-keying every store, documented in the
// package comment) and regenerate with `go test ./internal/scenario -run
// Golden -update`.
func goldenCorpus() []struct {
	Name string
	S    Scenario
} {
	ref := func(platform string, ranks int) Scenario {
		return Scenario{Platform: platform, Ranks: ranks, DAP: 1, Census: workload.Baseline(), Seed: 1}
	}
	corpus := []struct {
		Name string
		S    Scenario
	}{
		{"reference-a100x128", ref("A100", 128)},
		{"reference-h100x128", ref("H100", 128)},
		{"figure7-h100x256-dap2", fig7ish()},
		{"selene-a100x256", ref("a100-selene", 256)},
		{"quiet-cpu", func() Scenario { s := ref("H100", 64); s.CPU = "quiet"; return s }()},
		{"precomputed-prep", func() Scenario { s := ref("H100", 64); s.Prep = "precomputed"; return s }()},
		{"gc-off-graphed", func() Scenario {
			s := fig7ish()
			s.DisableGC, s.Census.TorchCompile = true, true
			return s
		}()},
		{"deep-prefetch-seed3", func() Scenario { s := ref("A100", 256); s.Prefetch = 128; s.Seed = 3; return s }()},
	}
	for _, ab := range Ablations {
		s := fig7ish()
		s.Ablation = ab
		corpus = append(corpus, struct {
			Name string
			S    Scenario
		}{"ablate-" + ab, s})
	}
	// The v4 generation: scenarios with a live perturbation block. Their
	// lines pin both the ";perturb{...}" canonical suffix and the "v4:"
	// key prefix; the "perturb-noop-is-v3" line pins the other half of the
	// contract — a spec that normalizes to zero leaves the scenario on its
	// exact v3 encoding and key.
	withPerturb := func(name string, p perturb.Spec) struct {
		Name string
		S    Scenario
	} {
		s := fig7ish()
		s.Perturb = &p
		return struct {
			Name string
			S    Scenario
		}{name, s}
	}
	corpus = append(corpus,
		withPerturb("perturb-failures", perturb.Spec{FailProb: 0.001, RestartCost: 60}),
		withPerturb("perturb-stalls", perturb.Spec{StallRate: 0.5, StallMean: 2}),
		withPerturb("perturb-stragglers", perturb.Spec{SlowdownProb: 0.05, SlowdownFactor: 3}),
		withPerturb("perturb-full", perturb.Spec{
			SlowdownProb: 0.02, SlowdownFactor: 2.5,
			StallRate: 0.1, StallMean: 5,
			FailProb: 0.0001, RestartCost: 120,
		}),
		withPerturb("perturb-noop-is-v3", perturb.Spec{SlowdownProb: 0.5, SlowdownFactor: 1}),
	)
	// The v5 generation: scenarios resolved by a non-exact mode. Their
	// lines pin both the ";mode=..." canonical suffix and the "v5:" key
	// prefix; "mode-exact-is-v3" pins the other half of the contract — an
	// explicit "exact" spelling folds to the zero value and keeps the
	// scenario on its v3 (or, perturbed, v4) encoding and key.
	withMode := func(name, mode string, p *perturb.Spec) struct {
		Name string
		S    Scenario
	} {
		s := fig7ish()
		s.Mode, s.Perturb = mode, p
		return struct {
			Name string
			S    Scenario
		}{name, s}
	}
	corpus = append(corpus,
		withMode("mode-analytic", ModeAnalytic, nil),
		withMode("mode-auto", ModeAuto, nil),
		withMode("mode-analytic-perturbed", ModeAnalytic, &perturb.Spec{FailProb: 0.001, RestartCost: 60}),
		withMode("mode-exact-is-v3", ModeExact, nil),
	)
	return corpus
}

// TestGoldenFingerprints pins the canonical encoding and fingerprint of the
// corpus so accidental key drift — a reordered field, a reformatted float, a
// silently edited hardware profile — fails CI instead of cold-starting (or
// worse, mis-hitting) every persistent store.
func TestGoldenFingerprints(t *testing.T) {
	path := filepath.Join("testdata", "fingerprints.golden")
	var got strings.Builder
	got.WriteString("# scenario fingerprint golden corpus — encoding version v3\n")
	got.WriteString("# regenerate deliberately: go test ./internal/scenario -run Golden -update\n")
	got.WriteString("# v4 extends v3: unperturbed lines are byte-identical to the v3-era corpus,\n")
	got.WriteString("# perturbed scenarios append a perturb{...} block and mint v4: keys.\n")
	got.WriteString("# v5 extends both: exact-mode lines are byte-identical to the v4-era corpus,\n")
	got.WriteString("# analytic/auto-mode scenarios append a mode= block and mint v5: keys.\n")
	for _, tc := range goldenCorpus() {
		fmt.Fprintf(&got, "%s\t%s\t%s\n", tc.Name, tc.S.Fingerprint(), tc.S.Canonical())
	}
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update): %v", err)
	}
	if got.String() != string(want) {
		t.Fatalf("canonical scenario encoding drifted from %s.\n"+
			"This re-keys every persistent store. If the change is deliberate, bump scenario.Version\n"+
			"and regenerate with -update; otherwise revert the encoding change.\n--- want ---\n%s\n--- got ---\n%s",
			path, want, got.String())
	}
}
