package scenario

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/perturb"
	"repro/internal/workload"
)

// pinnedSchema is the exact field set (name and type, in declaration order)
// of every struct that feeds the canonical fingerprint encoding. Adding,
// removing, renaming or reordering a field in any of them without updating
// Canonical AND bumping Version would silently change — or worse, silently
// NOT change — the identity of stored results; this test turns that into a
// loud CI failure with instructions.
var pinnedSchema = map[string][]string{
	"scenario.Scenario": {
		"Platform string", "CPU string", "Prep string",
		"Ranks int", "DAP int",
		"Census workload.Options",
		"CUDAGraph bool", "NonBlocking bool", "DisableGC bool",
		"Workers int", "Prefetch int",
		"Ablation string",
		"Seed int64", "Steps int",
		// SimWorkers is the one deliberately-excluded field: a goroutine
		// count cannot change a Result bit (TestSimulateParallelDeterminism
		// in package cluster), so it stays outside Canonical — no Version
		// bump. TestFingerprintExcludesSimWorkers pins the exclusion.
		"SimWorkers int",
		// Perturb is encoded ONLY when live: nil (or a spec normalizing to
		// zero) keeps the exact v3 encoding and key, a live spec appends
		// its canonical block and moves the key to the v4 generation —
		// that conditional versioning IS the contract, pinned by
		// TestPerturbFingerprintGenerations and the golden corpus.
		"Perturb *perturb.Spec",
		// Mode is encoded ONLY when non-exact: "" or "exact" (which
		// Normalize folds to "") keeps the exact v3/v4 encoding and key,
		// while "analytic"/"auto" append a ";mode=..." block and move the
		// key to the v5 generation — pinned by
		// TestModeFingerprintGenerations and the golden corpus.
		"Mode string",
	},
	"workload.Options": {
		"FusedMHA bool", "FusedLN bool", "FusedAdamSWA bool",
		"BatchedGEMM bool", "TorchCompile bool", "BF16 bool",
		"GradCheckpoint bool", "Recycles int", "DAP int", "BucketedClip bool",
	},
	"gpu.Arch": {
		"Name string", "PeakFLOPS float64", "PeakBW float64",
		"LaunchOverhead time.Duration", "GraphReplayOverhead time.Duration",
		"KernelFixed time.Duration", "MemHalfSat float64", "MathHalfSat float64",
	},
	"comm.Topology": {
		"IntraBW float64", "InterBW float64",
		"IntraLat time.Duration", "InterLat time.Duration", "GPUsPerNode int",
	},
	"gpu.CPUModel": {
		"PeakProb float64", "PeakStretch float64",
		"GCEnabled bool", "GCPause time.Duration", "GCInterval int",
		"StragglerProb float64", "StragglerMean time.Duration",
	},
	"dataset.PrepTimeModel": {
		"Base float64", "PerResidue float64", "PerMSARow float64",
		"JitterSigma float64", "HeavyTailProb float64", "HeavyTailScale float64",
	},
	"perturb.Spec": {
		"SlowdownProb float64", "SlowdownFactor float64",
		"StallRate float64", "StallMean float64",
		"FailProb float64", "RestartCost float64",
	},
}

func fieldsOf(v any) []string {
	t := reflect.TypeOf(v)
	out := make([]string, t.NumField())
	for i := range out {
		f := t.Field(i)
		out[i] = fmt.Sprintf("%s %s", f.Name, f.Type)
	}
	return out
}

func TestFingerprintSchemaPinned(t *testing.T) {
	for name, v := range map[string]any{
		"scenario.Scenario":     Scenario{},
		"workload.Options":      workload.Options{},
		"gpu.Arch":              gpu.Arch{},
		"comm.Topology":         comm.Topology{},
		"gpu.CPUModel":          gpu.CPUModel{},
		"dataset.PrepTimeModel": dataset.PrepTimeModel{},
		"perturb.Spec":          perturb.Spec{},
	} {
		got := fieldsOf(v)
		want := pinnedSchema[name]
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s field set changed:\n  pinned: %s\n  actual: %s\n"+
				"Every field here reaches the canonical fingerprint. To change it:\n"+
				"  1. encode (or deliberately exclude) the field in Canonical,\n"+
				"  2. bump scenario.Version (cold-starts every persistent store),\n"+
				"  3. update this pin and regenerate the golden file with -update.",
				name, strings.Join(want, "; "), strings.Join(got, "; "))
		}
	}
}
