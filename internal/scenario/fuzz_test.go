package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzScenarioRoundTrip drives the wire-format contract over arbitrary
// bytes: ParseJSON never panics (invalid input is always a typed error),
// and for every accepted, valid scenario the decode → Validate →
// Normalize → re-encode → re-decode loop is a fixed point of the canonical
// encoding and the versioned fingerprint — the properties the memo cache
// and the persistent store keys stand on. The seed corpus under
// testdata/fuzz/FuzzScenarioRoundTrip keeps representative scenarios
// (grid-style, perturbed v4, alias spellings, rejected shapes) in every
// plain `go test` run.
func FuzzScenarioRoundTrip(f *testing.F) {
	f.Add([]byte(`{"platform":"H100","ranks":256,"dap":2,"census":{"dap":2},"seed":1}`))
	f.Add([]byte(`{"platform":"a100-selene","ranks":64,"dap":4,"census":{"bf16":true,"dap":4},"cuda_graph":true,"seed":7,"perturb":{"fail_prob":0.001,"restart_cost_s":60}}`))
	f.Add([]byte(`{"platform":"A100","ranks":128,"dap":1,"census":{"grad_checkpoint":true,"recycles":3},"seed":1,"perturb":{"stall_rate":0.5,"stall_mean_s":2,"slowdown_prob":0.05,"slowdown_factor":3}}`))
	f.Add([]byte(`{"platform":"TPU","ranks":8,"dap":1,"seed":1}`))
	f.Add([]byte(`{"platform":"H100","ranks":30,"dap":4,"seed":1}`))
	f.Add([]byte(`{"platform":"H100","ranks":16,"dap":1,"seed":1,"perturb":{"slowdown_prob":0.9,"slowdown_factor":1}}`))
	f.Add([]byte(`{"platform":"H100","ranks":256,"dap":2,"census":{"dap":2},"seed":1,"mode":"analytic"}`))
	f.Add([]byte(`{"platform":"H100","ranks":256,"dap":2,"census":{"dap":2},"seed":1,"mode":"auto","perturb":{"fail_prob":0.001,"restart_cost_s":60}}`))
	f.Add([]byte(`{"platform":"H100","ranks":256,"dap":2,"census":{"dap":2},"seed":1,"mode":"exact"}`))
	f.Add([]byte(`{"platform":"H100","ranks":256,"dap":2,"census":{"dap":2},"seed":1,"mode":"psychic"}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseJSON(data)
		if err != nil {
			return // rejected input: must not panic, nothing more to hold
		}
		if err := s.Validate(); err != nil {
			return
		}
		n, err := s.Normalize()
		if err != nil {
			t.Fatalf("validated scenario failed to normalize: %v", err)
		}
		if _, err := n.Options(); err != nil {
			t.Fatalf("validated scenario failed to lower: %v", err)
		}
		// Normalize is idempotent on the canonical encoding…
		if n.Canonical() != s.Canonical() {
			t.Fatalf("Canonical not normalize-invariant:\n%s\nvs\n%s", n.Canonical(), s.Canonical())
		}
		// …and the JSON round trip of the normalized scenario is a fixed
		// point of encoding, fingerprint and validity.
		blob, err := json.Marshal(n)
		if err != nil {
			t.Fatalf("marshal of valid scenario failed: %v", err)
		}
		back, err := ParseJSON(blob)
		if err != nil {
			t.Fatalf("round trip of valid scenario rejected: %s: %v", blob, err)
		}
		if verr := back.Validate(); verr != nil {
			t.Fatalf("round trip broke validity: %s: %v", blob, verr)
		}
		if back.Canonical() != s.Canonical() {
			t.Fatalf("round trip moved the canonical encoding:\n%s\nvs\n%s", back.Canonical(), s.Canonical())
		}
		if back.Fingerprint() != s.Fingerprint() {
			t.Fatalf("round trip moved the fingerprint: %s vs %s", back.Fingerprint(), s.Fingerprint())
		}
		// The version prefix is a pure function of the normalized mode and
		// perturb block: non-exact mode ⇒ v5, else live perturb spec ⇒ v4,
		// else ⇒ v3.
		wantPrefix := "v3:"
		switch {
		case n.Mode != "":
			wantPrefix = "v5:"
		case n.Perturb != nil:
			wantPrefix = "v4:"
		}
		if fp := s.Fingerprint(); len(fp) < 3 || fp[:3] != wantPrefix {
			t.Fatalf("fingerprint %s disagrees with mode %q / perturb block %v (want prefix %s)",
				fp, n.Mode, n.Perturb, wantPrefix)
		}
		if !IsCurrentKey(s.Fingerprint()) {
			t.Fatalf("fingerprint %s not recognized as current", s.Fingerprint())
		}
	})
}
