// Package scenario is the canonical scenario layer: one typed, validated,
// JSON-round-trippable descriptor of "what to simulate" shared by every
// layer of the system. CLI flags parse into a Scenario, the sweep grid
// lowers its points to Scenarios, the HTTP service accepts Scenario JSON on
// the wire (`POST /v1/jobs`), and the memo cache and the persistent result
// store are keyed by the Scenario's versioned canonical fingerprint — so
// "the same scenario" means exactly one thing from flag to store key.
//
// Hardware is referenced by name through a registry of profiles (platforms
// such as "h100-eos", CPU-noise and prep-time models), so new substrates are
// a Register call, not a new flag or struct field.
//
// # Fingerprint compatibility contract
//
// Fingerprint returns a version prefix + a hash of Canonical(), an explicit
// field-by-field encoding of the fully resolved scenario (profile names
// resolved to their numeric contents, defaults applied). Two generations
// are current at once: unperturbed scenarios keep the exact "v3:" encoding
// (so pre-perturbation stores keep serving healthy cells), while scenarios
// with a live Perturb block append its canonical encoding and mint "v4:"
// keys — a v3 key can never satisfy a v4 lookup, the prefixes differ. The
// contract:
//
//   - Two Scenarios with equal Fingerprints simulate identically: every
//     input of cluster.Simulate is either encoded or a pure derivation of
//     encoded fields.
//   - Adding, removing, renaming or reordering any field that reaches the
//     encoding REQUIRES bumping Version: old stores then read as legacy (kept
//     on disk, surfaced in store stats, never silently matched) instead of
//     returning stale results for a key that now means something else.
//   - Editing a registered profile's numbers is a semantic change to every
//     fingerprint that resolves it; the golden-file test pins the encodings
//     so both kinds of drift fail CI instead of silently orphaning stores.
//
// The golden corpus lives in testdata/fingerprints.golden; regenerate with
// `go test ./internal/scenario -run Golden -update` after a deliberate bump.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/perturb"
	"repro/internal/workload"
)

// Scenario is the canonical descriptor of one simulation: cluster geometry,
// named hardware profiles, the kernel-census optimization set, data-pipeline
// semantics, an optional barrier ablation, and the seed/steps that make it
// reproducible. The zero value of every optional field means "simulator
// default" (see Normalize); the JSON form is the service wire format.
type Scenario struct {
	// Platform names the GPU architecture + cluster topology pair in the
	// profile registry ("h100-eos", "a100-selene", or the aliases "H100",
	// "A100"). Required.
	Platform string `json:"platform"`
	// CPU names the host-noise profile ("" = "default").
	CPU string `json:"cpu,omitempty"`
	// Prep names the batch-preparation-time profile ("" = "openfold").
	Prep string `json:"prep,omitempty"`

	// Ranks is the GPU count; DAP the Dynamic Axial Parallelism degree.
	// Ranks must be a positive multiple of DAP.
	Ranks int `json:"ranks"`
	DAP   int `json:"dap"`

	// Census selects which ScaleFold optimizations transform the kernel
	// census (fused kernels, batched GEMM, bf16, DAP width, ...).
	Census workload.Options `json:"census"`

	// Step semantics: CUDA-graph capture, §3.2 non-blocking loader, Python
	// GC disabled, dataloader worker count and prefetch depth (0 = default).
	CUDAGraph   bool `json:"cuda_graph,omitempty"`
	NonBlocking bool `json:"non_blocking,omitempty"`
	DisableGC   bool `json:"disable_gc,omitempty"`
	Workers     int  `json:"workers,omitempty"`
	Prefetch    int  `json:"prefetch,omitempty"`

	// Ablation idealizes one Figure 3 scalability barrier ("" = "none");
	// see Ablations for the recognized names.
	Ablation string `json:"ablation,omitempty"`

	// Seed drives every stochastic component; Steps is the number of
	// simulated steps to average over (0 = default).
	Seed  int64 `json:"seed"`
	Steps int   `json:"steps,omitempty"`

	// SimWorkers bounds the goroutines one simulation shards its per-rank
	// work across (<= 1: serial). Pure execution detail: the simulator
	// returns bit-identical Results for every value, so this field is
	// deliberately EXCLUDED from Canonical and the fingerprint — two
	// scenarios differing only here are the same scenario, the same memo
	// entry and the same store record.
	SimWorkers int `json:"sim_workers,omitempty"`

	// Perturb injects unhealthy-cluster noise — persistent per-rank
	// stragglers, Poisson transient stalls, rank failures with a
	// checkpoint-restart cost (see package perturb). nil (or a spec that
	// normalizes to zero — Normalize folds the latter to nil) means a
	// healthy cluster and keeps the scenario on the unperturbed "v3:"
	// fingerprint generation; a non-trivial spec is identity-bearing and
	// moves the fingerprint to the "v4:" generation.
	Perturb *perturb.Spec `json:"perturb,omitempty"`

	// Mode selects how the scenario's Result is produced: "" or "exact"
	// runs cluster.Simulate (the default; Normalize folds "exact" to ""),
	// "analytic" serves the closed-form estimate from package analytic, and
	// "auto" lets the sweep layer pick — analytic unless the estimate's
	// error bound straddles a decision boundary, in which case the cell
	// escalates to exact. Exact scenarios keep their v3/v4 encoding and
	// keys byte-identical; a non-exact mode is identity-bearing (an
	// estimate must never satisfy an exact lookup) and moves the
	// fingerprint to the "v5:" generation.
	Mode string `json:"mode,omitempty"`
}

// Recognized Scenario.Mode values. The zero value ("") is exact.
const (
	ModeExact    = "exact"
	ModeAnalytic = "analytic"
	ModeAuto     = "auto"
)

// Modes lists the recognized Scenario.Mode spellings (the zero value ""
// is also accepted and means exact).
var Modes = []string{ModeExact, ModeAnalytic, ModeAuto}

// ValidMode reports whether name is a recognized resolution mode.
func ValidMode(name string) bool {
	switch name {
	case "", ModeExact, ModeAnalytic, ModeAuto:
		return true
	}
	return false
}

// Ablations lists the recognized Scenario.Ablation values: "none" plus one
// name per Figure 3 barrier-idealization switch.
var Ablations = []string{
	"none",            // measured configuration, nothing idealized
	"zero-launch",     // CPU launch overhead eliminated
	"perfect-balance", // ranks synchronized before every collective
	"zero-serial",     // serial modules parallelized away
	"flat-efficiency", // kernels keep full efficiency at any size
	"zero-comm",       // DAP collective payloads are free
}

// ValidAblation reports whether name is a recognized ablation.
func ValidAblation(name string) bool {
	if name == "" {
		return true
	}
	for _, a := range Ablations {
		if a == name {
			return true
		}
	}
	return false
}

// Simulator defaults applied by Normalize (the values cluster.DefaultOptions
// uses); encoding them canonically makes Scenario{Workers: 0} and
// Scenario{Workers: 10} the same scenario, as they simulate identically.
const (
	defaultWorkers  = 10
	defaultPrefetch = 32
	defaultSteps    = 6
)

// Normalize resolves the scenario to its canonical form: platform aliases
// become canonical names, empty profile references and tunables take their
// defaults, and "" ablation becomes "none". Two Scenarios that normalize
// equal are the same scenario (same fingerprint, same Results). Returns an
// error for references the registry cannot resolve.
func (s Scenario) Normalize() (Scenario, error) {
	p, err := PlatformByName(s.Platform)
	if err != nil {
		return Scenario{}, err
	}
	s.Platform = p.Name
	cpu, err := CPUProfileByName(s.CPU)
	if err != nil {
		return Scenario{}, err
	}
	s.CPU = cpu.Name
	prep, err := PrepProfileByName(s.Prep)
	if err != nil {
		return Scenario{}, err
	}
	s.Prep = prep.Name
	if s.Ablation == "" {
		s.Ablation = "none"
	}
	if s.Census.DAP == 0 {
		// An unset census DAP follows the geometry: the census must shard
		// the kernels the way the plan distributes them.
		s.Census.DAP = s.DAP
	}
	if s.Workers < 1 {
		s.Workers = defaultWorkers
	}
	if s.Prefetch < 1 {
		s.Prefetch = defaultPrefetch
	}
	if s.Steps < 1 {
		s.Steps = defaultSteps
	}
	if s.Perturb != nil {
		// Fold no-op perturbation components to zero; a spec that
		// normalizes to nothing IS the healthy cluster, so the scenario
		// drops it and keeps its unperturbed v3 identity.
		p := s.Perturb.Normalize()
		if p.IsZero() {
			s.Perturb = nil
		} else {
			s.Perturb = &p
		}
	}
	if s.Mode == ModeExact {
		// "exact" IS the zero value: folding it keeps the explicit spelling
		// on the same v3/v4 encoding and key as an unset mode, the same
		// trick that keeps a no-op perturb on v3.
		s.Mode = ""
	}
	if !ValidMode(s.Mode) {
		return Scenario{}, fmt.Errorf("scenario: unknown mode %q (want one of %v)", s.Mode, Modes)
	}
	return s, nil
}

// Validate rejects scenarios that cannot be simulated: unknown profile or
// ablation names, non-positive geometry, rank counts that cannot host the
// DAP degree, and a census DAP that contradicts the geometry. The CLI turns
// the error into exit status 2 and the HTTP service into a 400 — nothing
// downstream of a validated Scenario panics on its content.
func (s Scenario) Validate() error {
	if _, err := PlatformByName(s.Platform); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if _, err := CPUProfileByName(s.CPU); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if _, err := PrepProfileByName(s.Prep); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if !ValidAblation(s.Ablation) {
		return fmt.Errorf("scenario: unknown ablation %q (want one of %v)", s.Ablation, Ablations)
	}
	if s.Ranks < 1 || s.DAP < 1 {
		return fmt.Errorf("scenario: geometry must be positive, got ranks=%d dap=%d", s.Ranks, s.DAP)
	}
	if s.Ranks%s.DAP != 0 {
		return fmt.Errorf("scenario: %d ranks cannot host DAP-%d", s.Ranks, s.DAP)
	}
	if s.Census.DAP != 0 && s.Census.DAP != s.DAP {
		return fmt.Errorf("scenario: census DAP %d contradicts geometry DAP %d", s.Census.DAP, s.DAP)
	}
	if s.Workers < 0 || s.Prefetch < 0 || s.Steps < 0 || s.SimWorkers < 0 {
		return fmt.Errorf("scenario: workers/prefetch/steps/sim_workers must be >= 0")
	}
	if s.Census.Recycles < 0 {
		return fmt.Errorf("scenario: census recycles must be >= 0")
	}
	if !ValidMode(s.Mode) {
		return fmt.Errorf("scenario: unknown mode %q (want one of %v)", s.Mode, Modes)
	}
	if s.Perturb != nil {
		if err := s.Perturb.Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	return nil
}

// Options lowers the scenario to the simulator's input: profile references
// resolve to their numeric models, defaults apply, and the ablation switch
// flips its cluster.Options flag. The error reports what Validate would —
// callers that validated already may treat it as impossible.
func (s Scenario) Options() (cluster.Options, error) {
	if err := s.Validate(); err != nil {
		return cluster.Options{}, err
	}
	n, err := s.Normalize()
	if err != nil {
		return cluster.Options{}, err
	}
	p, _ := PlatformByName(n.Platform)
	cpu, _ := CPUProfileByName(n.CPU)
	prep, _ := PrepProfileByName(n.Prep)
	o := cluster.Options{
		Arch:                p.Arch,
		Topo:                p.Topo,
		CPU:                 cpu.Model,
		CUDAGraph:           n.CUDAGraph,
		NonBlockingPipeline: n.NonBlocking,
		Workers:             n.Workers,
		Prefetch:            n.Prefetch,
		PrepModel:           prep.Model,
		Seed:                n.Seed,
		Steps:               n.Steps,
		SimWorkers:          n.SimWorkers,
	}
	if n.Perturb != nil {
		o.Perturb = *n.Perturb
	}
	if n.DisableGC {
		o.CPU.GCEnabled = false
	}
	switch n.Ablation {
	case "none":
	case "zero-launch":
		o.ZeroLaunchOverhead = true
	case "perfect-balance":
		o.PerfectBalance = true
	case "zero-serial":
		o.ZeroSerial = true
	case "flat-efficiency":
		o.FlatEfficiency = true
	case "zero-comm":
		o.ZeroCommVolume = true
	}
	return o, nil
}

// ParseJSON decodes one Scenario from strict JSON: unknown fields and
// trailing data are errors, so a typo'd field name cannot silently select a
// default scenario and concatenated documents cannot silently drop cells.
func ParseJSON(data []byte) (Scenario, error) {
	var s Scenario
	if err := strictDecode(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	return s, nil
}

// ParseJSONList decodes a JSON array of Scenarios (the `-scenarios` file
// format and the wire form of an explicit-scenario job), with the same
// strictness as ParseJSON.
func ParseJSONList(data []byte) ([]Scenario, error) {
	var list []Scenario
	if err := strictDecode(data, &list); err != nil {
		return nil, fmt.Errorf("scenarios: %w", err)
	}
	return list, nil
}

func strictDecode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after the first JSON document")
	}
	return nil
}
