package scenario

import (
	"fmt"
	"sort"

	"repro/internal/comm"
	"repro/internal/dataset"
	"repro/internal/gpu"
)

// Platform is a named hardware substrate: a GPU architecture bound to the
// cluster topology it runs on. Scenarios reference platforms by name, so a
// new machine is one Register call — no new CLI flags, no new wire fields.
type Platform struct {
	Name string
	Arch gpu.Arch
	Topo comm.Topology
}

// CPUProfile is a named host-noise model (background peaks, GC pauses).
type CPUProfile struct {
	Name  string
	Model gpu.CPUModel
}

// PrepProfile is a named batch-preparation-time model (the Figure 4 tail).
type PrepProfile struct {
	Name  string
	Model dataset.PrepTimeModel
}

// The registries are written only by Register* calls (package init time) and
// read thereafter; aliases map convenience names onto canonical entries.
var (
	platforms       = map[string]Platform{}
	platformAliases = map[string]string{}
	cpuProfiles     = map[string]CPUProfile{}
	prepProfiles    = map[string]PrepProfile{}
)

// RegisterPlatform adds a platform under its canonical name, plus any
// aliases. Duplicate names are a programming error and panic at init.
func RegisterPlatform(p Platform, aliases ...string) {
	if _, dup := platforms[p.Name]; dup {
		panic("scenario: duplicate platform " + p.Name)
	}
	platforms[p.Name] = p
	for _, a := range aliases {
		if _, dup := platformAliases[a]; dup {
			panic("scenario: duplicate platform alias " + a)
		}
		platformAliases[a] = p.Name
	}
}

// RegisterCPUProfile adds a named CPU-noise model.
func RegisterCPUProfile(p CPUProfile) {
	if _, dup := cpuProfiles[p.Name]; dup {
		panic("scenario: duplicate CPU profile " + p.Name)
	}
	cpuProfiles[p.Name] = p
}

// RegisterPrepProfile adds a named preparation-time model.
func RegisterPrepProfile(p PrepProfile) {
	if _, dup := prepProfiles[p.Name]; dup {
		panic("scenario: duplicate prep profile " + p.Name)
	}
	prepProfiles[p.Name] = p
}

// PlatformByName resolves a canonical platform name or alias.
func PlatformByName(name string) (Platform, error) {
	if canon, ok := platformAliases[name]; ok {
		name = canon
	}
	p, ok := platforms[name]
	if !ok {
		return Platform{}, fmt.Errorf("unknown platform %q (want one of %v)", name, PlatformNames())
	}
	return p, nil
}

// CPUProfileByName resolves a CPU profile; "" selects "default".
func CPUProfileByName(name string) (CPUProfile, error) {
	if name == "" {
		name = DefaultCPUProfile
	}
	p, ok := cpuProfiles[name]
	if !ok {
		return CPUProfile{}, fmt.Errorf("unknown CPU profile %q (want one of %v)", name, sortedKeys(cpuProfiles))
	}
	return p, nil
}

// PrepProfileByName resolves a prep-time profile; "" selects "openfold".
func PrepProfileByName(name string) (PrepProfile, error) {
	if name == "" {
		name = DefaultPrepProfile
	}
	p, ok := prepProfiles[name]
	if !ok {
		return PrepProfile{}, fmt.Errorf("unknown prep profile %q (want one of %v)", name, sortedKeys(prepProfiles))
	}
	return p, nil
}

// PlatformNames returns every registered platform name and alias, sorted —
// the vocabulary of the `-arch` axis and the `platform` JSON field.
func PlatformNames() []string {
	names := make([]string, 0, len(platforms)+len(platformAliases))
	for n := range platforms {
		names = append(names, n)
	}
	for a := range platformAliases {
		names = append(names, a)
	}
	sort.Strings(names)
	return names
}

// CPUProfileNames returns every registered CPU profile name, sorted.
func CPUProfileNames() []string { return sortedKeys(cpuProfiles) }

// PrepProfileNames returns every registered prep profile name, sorted.
func PrepProfileNames() []string { return sortedKeys(prepProfiles) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Default profile names applied by Normalize when a Scenario leaves the
// reference empty.
const (
	DefaultCPUProfile  = "default"
	DefaultPrepProfile = "openfold"
)

// The built-in registry. "H100"/"A100" are aliases kept for the original
// figure-runner vocabulary; both resolve to Eos-topology platforms because
// the paper's measurements (and the seed reproduction) simulate every
// architecture on the Eos-like fabric. "a100-selene" is the same GPU on the
// A100-generation Selene fabric — a scenario axis the paper never plotted.
func init() {
	RegisterPlatform(Platform{Name: "h100-eos", Arch: gpu.H100(), Topo: comm.Eos()}, "H100")
	RegisterPlatform(Platform{Name: "a100-eos", Arch: gpu.A100(), Topo: comm.Eos()}, "A100")
	RegisterPlatform(Platform{Name: "a100-selene", Arch: gpu.A100(), Topo: comm.Selene()})

	RegisterCPUProfile(CPUProfile{Name: DefaultCPUProfile, Model: gpu.DefaultCPUModel()})
	RegisterCPUProfile(CPUProfile{Name: "quiet", Model: gpu.Quiet()})

	RegisterPrepProfile(PrepProfile{Name: DefaultPrepProfile, Model: dataset.DefaultPrepTimeModel()})
	// Preprocessed-dataset what-if: alignments parsed offline, so the heavy
	// tail collapses and only the crop/copy cost remains.
	RegisterPrepProfile(PrepProfile{Name: "precomputed", Model: dataset.PrepTimeModel{
		Base:           0.02,
		PerResidue:     0.0002,
		PerMSARow:      0.00006,
		JitterSigma:    0.2,
		HeavyTailProb:  0.01,
		HeavyTailScale: 3,
	}})
}
