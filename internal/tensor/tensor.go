// Package tensor provides a small dense float32 tensor library used as the
// numeric substrate for the ScaleFold reproduction. Tensors are row-major
// with explicit shapes; the package favours predictable memory behaviour
// (flat backing slices, no hidden copies) so that kernel implementations in
// package kernels can reason about memory traffic the way the paper's Triton
// kernels reason about DRAM traffic.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Data  []float32
	shape []int
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Data: make([]float32, n), shape: s}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly, not copied; len(data) must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Data: data, shape: s}
}

// Shape returns the tensor's shape. The returned slice must not be modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t with a new shape covering the same data.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.Data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Data: t.Data, shape: s}
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.Offset(idx...)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.Offset(idx...)] = v
}

// Offset converts a multi-index into a flat offset.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// RandN fills t with normal(0, std) values from rng.
func (t *Tensor) RandN(rng *rand.Rand, std float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
	return t
}

// RandUniform fills t with uniform values in [lo, hi).
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
	return t
}

// Add computes t += u elementwise.
func (t *Tensor) Add(u *Tensor) *Tensor {
	mustMatch("Add", t, u)
	for i := range t.Data {
		t.Data[i] += u.Data[i]
	}
	return t
}

// Sub computes t -= u elementwise.
func (t *Tensor) Sub(u *Tensor) *Tensor {
	mustMatch("Sub", t, u)
	for i := range t.Data {
		t.Data[i] -= u.Data[i]
	}
	return t
}

// Mul computes t *= u elementwise (Hadamard product).
func (t *Tensor) Mul(u *Tensor) *Tensor {
	mustMatch("Mul", t, u)
	for i := range t.Data {
		t.Data[i] *= u.Data[i]
	}
	return t
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// AddScaled computes t += s*u elementwise.
func (t *Tensor) AddScaled(u *Tensor, s float32) *Tensor {
	mustMatch("AddScaled", t, u)
	for i := range t.Data {
		t.Data[i] += s * u.Data[i]
	}
	return t
}

// Sum returns the sum of all elements in float64 precision.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// MaxAbs returns the largest absolute element value.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// Norm returns the L2 norm of all elements in float64 precision.
func (t *Tensor) Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Equal reports whether t and u agree elementwise within tol.
func (t *Tensor) Equal(u *Tensor, tol float64) bool {
	if !t.SameShape(u) {
		return false
	}
	for i := range t.Data {
		if math.Abs(float64(t.Data[i])-float64(u.Data[i])) > tol {
			return false
		}
	}
	return true
}

// MaxDiff returns the maximum elementwise absolute difference between t and u.
func (t *Tensor) MaxDiff(u *Tensor) float64 {
	mustMatch("MaxDiff", t, u)
	var m float64
	for i := range t.Data {
		d := math.Abs(float64(t.Data[i]) - float64(u.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}

func mustMatch(op string, t, u *Tensor) {
	if len(t.Data) != len(u.Data) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, u.shape))
	}
}
