package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 {
		t.Fatalf("Len = %d, want 24", a.Len())
	}
	if a.Rank() != 3 || a.Dim(0) != 2 || a.Dim(1) != 3 || a.Dim(2) != 4 {
		t.Fatalf("bad shape %v", a.Shape())
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched length")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetOffset(t *testing.T) {
	a := New(2, 3)
	a.Set(7, 1, 2)
	if a.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v, want 7", a.At(1, 2))
	}
	if a.Offset(1, 2) != 5 {
		t.Fatalf("Offset(1,2) = %d, want 5", a.Offset(1, 2))
	}
}

func TestOffsetOutOfRangePanics(t *testing.T) {
	a := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	a.At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	a := New(2, 6)
	b := a.Reshape(3, 4)
	b.Data[0] = 42
	if a.Data[0] != 42 {
		t.Fatal("Reshape must alias the same data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	a.Reshape(5, 5)
}

func TestCloneIndependence(t *testing.T) {
	a := New(4)
	a.Fill(1)
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	a.Add(b)
	want := []float32{5, 7, 9}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("Add: got %v", a.Data)
		}
	}
	a.Sub(b)
	a.Mul(b)
	want = []float32{4, 10, 18}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("Mul: got %v", a.Data)
		}
	}
	a.Scale(0.5)
	if a.Data[2] != 9 {
		t.Fatalf("Scale: got %v", a.Data)
	}
	a.AddScaled(b, 2)
	if a.Data[0] != 10 {
		t.Fatalf("AddScaled: got %v", a.Data)
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{-3, 4, 0, 1}, 4)
	if a.Sum() != 2 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.Mean() != 0.5 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
	if math.Abs(a.Norm()-math.Sqrt(26)) > 1e-12 {
		t.Fatalf("Norm = %v", a.Norm())
	}
}

func TestMatMulAgainstHand(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul got %v want %v", c.Data, want)
		}
	}
}

func TestMatMulVariantsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(5, 7).RandN(rng, 1)
	b := New(7, 3).RandN(rng, 1)
	c := MatMul(a, b)
	// A·B == A·(Bᵀ)ᵀ via MatMulT.
	ct := MatMulT(a, Transpose2D(b))
	if c.MaxDiff(ct) > 1e-5 {
		t.Fatalf("MatMulT disagrees with MatMul by %v", c.MaxDiff(ct))
	}
	// A·B == (Aᵀ)ᵀ·B via TMatMul.
	c2 := TMatMul(Transpose2D(a), b)
	if c.MaxDiff(c2) > 1e-5 {
		t.Fatalf("TMatMul disagrees with MatMul by %v", c.MaxDiff(c2))
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose2D(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("shape %v", at.Shape())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("bad transpose %v", at.Data)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(6, 9).RandN(rng, 3)
	s := Softmax(a)
	for r := 0; r < 6; r++ {
		var sum float64
		for _, v := range Row(s, r) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax value out of range: %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
}

func TestSoftmaxStableForLargeLogits(t *testing.T) {
	a := FromSlice([]float32{1e4, 1e4 + 1, 1e4 - 2}, 1, 3)
	s := Softmax(a)
	var sum float64
	for _, v := range s.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax overflow: %v", s.Data)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("sum %v", sum)
	}
}

func TestSigmoidBounds(t *testing.T) {
	a := FromSlice([]float32{-100, 0, 100}, 3)
	s := Sigmoid(a)
	if s.Data[0] > 1e-6 || math.Abs(float64(s.Data[1])-0.5) > 1e-6 || s.Data[2] < 1-1e-6 {
		t.Fatalf("sigmoid %v", s.Data)
	}
}

func TestReLU(t *testing.T) {
	a := FromSlice([]float32{-1, 0, 2}, 3)
	r := ReLU(a)
	if r.Data[0] != 0 || r.Data[1] != 0 || r.Data[2] != 2 {
		t.Fatalf("relu %v", r.Data)
	}
}

func TestStack(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{3, 4}, 2)
	s := Stack([]*Tensor{a, b})
	if s.Dim(0) != 2 || s.Dim(1) != 2 || s.At(1, 0) != 3 {
		t.Fatalf("stack %v %v", s.Shape(), s.Data)
	}
}

func TestEqualAndMaxDiff(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1, 2.0001}, 2)
	if !a.Equal(b, 1e-3) {
		t.Fatal("Equal within tol should hold")
	}
	if a.Equal(b, 1e-6) {
		t.Fatal("Equal outside tol should fail")
	}
	if d := a.MaxDiff(b); d < 9e-5 || d > 2e-4 {
		t.Fatalf("MaxDiff %v", d)
	}
}

// Property: matmul distributes over addition, (A+B)·C = A·C + B·C.
func TestMatMulDistributiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := New(m, k).RandN(rng, 1)
		b := New(m, k).RandN(rng, 1)
		c := New(k, n).RandN(rng, 1)
		left := MatMul(a.Clone().Add(b), c)
		right := MatMul(a, c).Add(MatMul(b, c))
		return left.MaxDiff(right) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax is shift-invariant: softmax(x) == softmax(x + c).
func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	f := func(seed int64, shift float32) bool {
		if shift != shift || shift > 1e3 || shift < -1e3 {
			shift = 1.5
		}
		rng := rand.New(rand.NewSource(seed))
		a := New(3, 8).RandN(rng, 2)
		b := a.Clone()
		for i := range b.Data {
			b.Data[i] += shift
		}
		return Softmax(a).MaxDiff(Softmax(b)) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBF16RoundTripExactForSmallIntegers(t *testing.T) {
	for _, v := range []float32{0, 1, -1, 2, 0.5, -0.25, 128, 256} {
		if RoundBF16(v) != v {
			t.Fatalf("bf16 should represent %v exactly, got %v", v, RoundBF16(v))
		}
	}
}

func TestBF16RoundToNearestEven(t *testing.T) {
	// 1 + 2^-8 is exactly between bf16(1.0) and the next bf16 value
	// (mantissa step 2^-7 at exponent 0); ties round to even (1.0).
	v := float32(1) + float32(math.Pow(2, -8))
	if got := RoundBF16(v); got != 1 {
		t.Fatalf("tie should round to even 1.0, got %v", got)
	}
	// Slightly above the tie rounds up.
	v = float32(1) + float32(math.Pow(2, -8))*1.5
	want := float32(1) + float32(math.Pow(2, -7))
	if got := RoundBF16(v); got != want {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestBF16SpecialValues(t *testing.T) {
	if !math.IsInf(float64(RoundBF16(float32(math.Inf(1)))), 1) {
		t.Fatal("+inf must survive")
	}
	if !math.IsNaN(float64(RoundBF16(float32(math.NaN())))) {
		t.Fatal("NaN must survive")
	}
	// Large finite values round to the nearest bf16, not to inf, unless they
	// exceed the bf16 max (~3.39e38).
	if math.IsInf(float64(RoundBF16(3e38)), 0) {
		t.Fatal("3e38 is representable in bf16")
	}
}

func TestBF16RelativeErrorBound(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || math.Abs(float64(v)) > 1e37 || math.Abs(float64(v)) < 1e-30 {
			v = 3.14159
		}
		r := RoundBF16(v)
		rel := math.Abs(float64(r-v)) / math.Abs(float64(v))
		return rel <= 1.0/256.0 // half ulp at 8-bit mantissa precision (7 explicit bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeBF16InPlace(t *testing.T) {
	a := FromSlice([]float32{1.00001, 2.5, -3.14159}, 3)
	QuantizeBF16(a)
	for _, v := range a.Data {
		if RoundBF16(v) != v {
			t.Fatalf("value %v is not a bf16 fixed point", v)
		}
	}
}

func TestByteAccounting(t *testing.T) {
	if BF16Bytes(10) != 20 || F32Bytes(10) != 40 {
		t.Fatal("byte accounting wrong")
	}
}
