package tensor

import "math"

// BF16 is an emulated bfloat16 value stored as its 16-bit pattern (the high
// half of an IEEE-754 float32). The paper's §3.4 switches the whole training
// to bfloat16; this file provides faithful round-to-nearest-even conversion
// so the kernels package can measure the numeric effect of the low-precision
// path and the simulator can halve memory traffic consistently.
type BF16 uint16

// ToBF16 converts a float32 to bfloat16 with round-to-nearest-even,
// matching hardware (and PyTorch) semantics. NaNs are preserved as quiet
// NaNs; infinities round to infinities.
func ToBF16(f float32) BF16 {
	bits := math.Float32bits(f)
	if bits&0x7f800000 == 0x7f800000 && bits&0x007fffff != 0 {
		// NaN: keep the sign, force a quiet NaN mantissa bit so truncation
		// cannot produce an infinity.
		return BF16(uint16(bits>>16) | 0x0040)
	}
	// Round to nearest even on the truncated 16 bits.
	rounding := uint32(0x7fff + ((bits >> 16) & 1))
	return BF16((bits + rounding) >> 16)
}

// Float32 expands a bfloat16 back to float32 (exact).
func (b BF16) Float32() float32 {
	return math.Float32frombits(uint32(b) << 16)
}

// RoundBF16 rounds a float32 through bfloat16 and back, i.e. the value a
// bfloat16 compute path would observe.
func RoundBF16(f float32) float32 { return ToBF16(f).Float32() }

// QuantizeBF16 rounds every element of t through bfloat16 in place and
// returns t. This is how the training loop emulates a bf16 forward pass:
// the master copy stays float32 (as in mixed-precision training) while
// activations are degraded to bf16 resolution.
func QuantizeBF16(t *Tensor) *Tensor {
	for i, v := range t.Data {
		t.Data[i] = RoundBF16(v)
	}
	return t
}

// BF16Bytes returns the number of bytes n float32 values occupy after the
// bf16 conversion (used by the simulator's traffic accounting).
func BF16Bytes(n int) int { return 2 * n }

// F32Bytes returns the number of bytes n float32 values occupy.
func F32Bytes(n int) int { return 4 * n }
