package tensor

import (
	"fmt"
	"math"
)

// MatMul computes C = A·B for 2-D tensors A[m,k] and B[k,n].
// The inner loops are ordered i-k-j so the innermost loop streams both B and
// C rows, which matters for the kernel benchmarks built on top of this.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v × %v", a.Shape(), b.Shape()))
	}
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.Shape(), b.Shape()))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes c = a·b, writing into a preallocated output.
func MatMulInto(c, a, b *Tensor) {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	for i := 0; i < m; i++ {
		ci := c.Data[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		ai := a.Data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				ci[j] += av * bp[j]
			}
		}
	}
}

// MatMulT computes C = A·Bᵀ for A[m,k], B[n,k].
func MatMulT(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n, k2 := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dimension mismatch %v × %v", a.Shape(), b.Shape()))
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		ci := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			var s float32
			for p := 0; p < k; p++ {
				s += ai[p] * bj[p]
			}
			ci[j] = s
		}
	}
	return c
}

// TMatMul computes C = Aᵀ·B for A[k,m], B[k,n].
func TMatMul(a, b *Tensor) *Tensor {
	k, m := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: TMatMul inner dimension mismatch %v × %v", a.Shape(), b.Shape()))
	}
	c := New(m, n)
	for p := 0; p < k; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := ap[i]
			if av == 0 {
				continue
			}
			ci := c.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				ci[j] += av * bp[j]
			}
		}
	}
	return c
}

// Transpose2D returns Aᵀ for a rank-2 tensor.
func Transpose2D(a *Tensor) *Tensor {
	m, n := a.Dim(0), a.Dim(1)
	c := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			c.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return c
}

// Softmax computes a row-wise softmax over the last dimension, returning a
// new tensor. Rows are treated as contiguous slices of length lastDim.
func Softmax(a *Tensor) *Tensor {
	out := a.Clone()
	SoftmaxInPlace(out)
	return out
}

// SoftmaxInPlace applies a numerically stable row-wise softmax over the last
// dimension of a.
func SoftmaxInPlace(a *Tensor) {
	last := a.Dim(a.Rank() - 1)
	rows := a.Len() / last
	for r := 0; r < rows; r++ {
		row := a.Data[r*last : (r+1)*last]
		softmaxRow(row)
	}
}

func softmaxRow(row []float32) {
	mx := float32(math.Inf(-1))
	for _, v := range row {
		if v > mx {
			mx = v
		}
	}
	var sum float32
	for i, v := range row {
		e := float32(math.Exp(float64(v - mx)))
		row[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range row {
		row[i] *= inv
	}
}

// Sigmoid applies the logistic function elementwise, returning a new tensor.
func Sigmoid(a *Tensor) *Tensor {
	out := New(a.Shape()...)
	for i, v := range a.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return out
}

// ReLU applies max(0, x) elementwise, returning a new tensor.
func ReLU(a *Tensor) *Tensor {
	out := New(a.Shape()...)
	for i, v := range a.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// Row returns the i-th row view of a rank-2 tensor (no copy).
func Row(a *Tensor, i int) []float32 {
	n := a.Dim(a.Rank() - 1)
	return a.Data[i*n : (i+1)*n]
}

// Stack concatenates tensors of identical shape along a new leading axis.
func Stack(ts []*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Stack of zero tensors")
	}
	shape := append([]int{len(ts)}, ts[0].Shape()...)
	out := New(shape...)
	n := ts[0].Len()
	for i, t := range ts {
		if !t.SameShape(ts[0]) {
			panic(fmt.Sprintf("tensor: Stack shape mismatch %v vs %v", t.Shape(), ts[0].Shape()))
		}
		copy(out.Data[i*n:(i+1)*n], t.Data)
	}
	return out
}
