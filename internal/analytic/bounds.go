package analytic

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cluster"
)

// Bound is a closed interval [Lo, Hi] in the field's own unit (seconds for
// durations, dimensionless for goodput/stall share, count for restarts).
// The estimator's contract is containment: the exact simulator's value for
// the same scenario lands inside the bound. A zero-width bound states the
// component is deterministic and the estimate exact.
type Bound struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// bound orders and returns the interval (callers may compute endpoints in
// either order), clamping the low end at zero when asked — every bounded
// quantity here is non-negative.
func bound(lo, hi float64) Bound {
	if hi < lo {
		lo, hi = hi, lo
	}
	if lo < 0 {
		lo = 0
	}
	return Bound{Lo: lo, Hi: hi}
}

// Contains reports whether v lies inside the interval.
func (b Bound) Contains(v float64) bool { return v >= b.Lo && v <= b.Hi }

// Width returns the absolute interval width Hi-Lo.
func (b Bound) Width() float64 { return b.Hi - b.Lo }

// RelHalfWidth returns the relative-error radius the bound states: half the
// width over the interval midpoint. A deterministic (zero-width) bound has
// relative error 0; a bound whose midpoint is ~0 reports 0 too — there is
// nothing to be relatively wrong about.
func (b Bound) RelHalfWidth() float64 {
	mid := (b.Lo + b.Hi) / 2
	if mid <= 1e-12 {
		return 0
	}
	return b.Width() / 2 / mid
}

// Bounds attaches an error interval to every estimated Result field. The
// deterministic breakdown components (GPU compute, serial share, exposed
// CPU, collective transfer, clip exposure, graph capture) are exact by
// construction and carry no interval.
type Bounds struct {
	MeanStep   Bound `json:"mean_step"`
	MedianStep Bound `json:"median_step"`
	P99Step    Bound `json:"p99_step"`
	DataWait   Bound `json:"data_wait"`
	CommWait   Bound `json:"comm_wait"`
	Goodput    Bound `json:"goodput"`
	Restarts   Bound `json:"restarts"`
	StallShare Bound `json:"stall_share"`
}

// Check verifies the containment contract against an exact Result for the
// same scenario, returning an error naming the first field whose exact
// value escapes its stated bound (nil when every field is contained).
func (b Bounds) Check(r cluster.Result) error {
	for _, c := range []struct {
		name string
		bd   Bound
		v    float64
	}{
		{"mean_step", b.MeanStep, sec(r.MeanStep)},
		{"median_step", b.MedianStep, sec(r.MedianStep)},
		{"p99_step", b.P99Step, sec(r.P99Step)},
		{"data_wait", b.DataWait, sec(r.Break.DataWait)},
		{"comm_wait", b.CommWait, sec(r.Break.CommWait)},
		{"goodput", b.Goodput, r.Goodput},
		{"restarts", b.Restarts, float64(r.Restarts)},
		{"stall_share", b.StallShare, r.StallShare},
	} {
		if !c.bd.Contains(c.v) {
			return fmt.Errorf("analytic: exact %s %.6g outside stated bound [%.6g, %.6g]",
				c.name, c.v, c.bd.Lo, c.bd.Hi)
		}
	}
	return nil
}

func sec(d time.Duration) float64 { return float64(d) / float64(time.Second) }

func dur(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// maxGauss returns E[max of n iid standard normals] via the Blom
// plotting-position approximation Φ⁻¹((n-0.375)/(n+0.25)) — within ~1% of
// the true order-statistic mean for all n, and exactly 0 for n=1.
func maxGauss(n int) float64 {
	if n <= 1 {
		return 0
	}
	p := (float64(n) - 0.375) / (float64(n) + 0.25)
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// binomQuantile returns the smallest k with P(Binomial(n,p) <= k) >= q,
// by iterating the pmf recurrence — exact for the small n (simulated steps)
// this package sees.
func binomQuantile(n int, p, q float64) int {
	if p <= 0 || n <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	pmf := math.Pow(1-p, float64(n))
	cdf := pmf
	k := 0
	for cdf < q && k < n {
		pmf *= float64(n-k) / float64(k+1) * p / (1 - p)
		k++
		cdf += pmf
	}
	return k
}
