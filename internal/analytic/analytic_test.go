package analytic

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/perturb"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// scaleFoldScenario mirrors scalefold.Figure7Config without importing the
// package (scalefold imports analytic; the test must not close the cycle).
func scaleFoldScenario(platform string, ranks, dapN int) scenario.Scenario {
	return scenario.Scenario{
		Platform: platform, Ranks: ranks, DAP: dapN,
		Census: workload.Options{
			FusedMHA: true, FusedLN: true, FusedAdamSWA: true,
			BatchedGEMM: true, BF16: true, BucketedClip: true,
			GradCheckpoint: dapN <= 1,
			Recycles:       3,
			DAP:            dapN,
		},
		CUDAGraph:   dapN > 1,
		NonBlocking: true,
		Seed:        1,
	}
}

func baselineScenario(platform string, ranks int) scenario.Scenario {
	return scenario.Scenario{
		Platform: platform, Ranks: ranks, DAP: 1,
		Census: workload.Baseline(),
		Seed:   1,
	}
}

// exact runs the ground-truth simulator for the scenario, the way the
// scalefold layer would.
func exact(t *testing.T, s scenario.Scenario) cluster.Result {
	t.Helper()
	o, err := s.Options()
	if err != nil {
		t.Fatalf("Options: %v", err)
	}
	n, err := s.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	return cluster.Simulate(censusFor(n.Census), n.Ranks, n.DAP, o)
}

// fidelityScenarios is the containment corpus for this package's own tests:
// representative healthy cells across profiles and ablations plus the
// perturbation regimes. The full default-grid property test lives in package
// scalefold next to the sweep layer that consumes the bounds.
func fidelityScenarios() map[string]scenario.Scenario {
	out := map[string]scenario.Scenario{
		"scalefold-h100x256-dap2": scaleFoldScenario("H100", 256, 2),
		"scalefold-h100x128-dap1": scaleFoldScenario("H100", 128, 1),
		"scalefold-h100x512-dap4": scaleFoldScenario("H100", 512, 4),
		"baseline-a100x128":       baselineScenario("A100", 128),
		"baseline-a100x32":        baselineScenario("A100", 32),
	}
	for _, ab := range scenario.Ablations {
		s := scaleFoldScenario("H100", 256, 2)
		s.Ablation = ab
		out["ablate-"+ab] = s
	}
	perturbs := map[string]perturb.Spec{
		"fail-mid":   {FailProb: 1e-3, RestartCost: 60},
		"fail-heavy": {FailProb: 1e-2, RestartCost: 120},
		"stalls":     {StallRate: 0.05, StallMean: 2},
		"slowdown":   {SlowdownProb: 0.02, SlowdownFactor: 1.5},
		"combo":      {SlowdownProb: 0.01, SlowdownFactor: 2, StallRate: 0.02, StallMean: 1, FailProb: 5e-4, RestartCost: 90},
	}
	for name, p := range perturbs {
		s := scaleFoldScenario("H100", 256, 2)
		cp := p
		s.Perturb = &cp
		out["perturb-"+name] = s
	}
	return out
}

// TestEstimateContainsExact is the containment contract at package level:
// for every corpus scenario the exact simulator's Result lands inside the
// estimate's own stated Bounds.
func TestEstimateContainsExact(t *testing.T) {
	for name, s := range fidelityScenarios() {
		s := s
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, bounds, err := Estimate(s)
			if err != nil {
				t.Fatalf("Estimate: %v", err)
			}
			ex := exact(t, s)
			if err := bounds.Check(ex); err != nil {
				t.Errorf("%v\n  estimate mean=%v median=%v goodput=%.4f restarts=%d\n  exact    mean=%v median=%v goodput=%.4f restarts=%d",
					err, res.MeanStep, res.MedianStep, res.Goodput, res.Restarts,
					ex.MeanStep, ex.MedianStep, ex.Goodput, ex.Restarts)
			}
		})
	}
}

// TestEstimateDeterministicSkeletonExact pins the components the estimator
// promises to reproduce bit for bit: the census-derived breakdown fields and
// the graph-capture cost match the simulator exactly.
func TestEstimateDeterministicSkeletonExact(t *testing.T) {
	for _, s := range []scenario.Scenario{
		scaleFoldScenario("H100", 256, 2),
		baselineScenario("A100", 128),
	} {
		res, _, err := Estimate(s)
		if err != nil {
			t.Fatalf("Estimate: %v", err)
		}
		ex := exact(t, s)
		if res.Break.GPUCompute != ex.Break.GPUCompute {
			t.Errorf("GPUCompute: estimate %v, exact %v", res.Break.GPUCompute, ex.Break.GPUCompute)
		}
		if res.Break.SerialPart != ex.Break.SerialPart {
			t.Errorf("SerialPart: estimate %v, exact %v", res.Break.SerialPart, ex.Break.SerialPart)
		}
		if res.GraphCapture != ex.GraphCapture {
			t.Errorf("GraphCapture: estimate %v, exact %v", res.GraphCapture, ex.GraphCapture)
		}
		if res.Plan != ex.Plan {
			t.Errorf("Plan: estimate %+v, exact %+v", res.Plan, ex.Plan)
		}
	}
}

// TestEstimateDeterministic pins that Estimate is a pure function: repeated
// calls return identical results and bounds (auto-mode escalation sets would
// otherwise drift between runs).
func TestEstimateDeterministic(t *testing.T) {
	s := scaleFoldScenario("H100", 256, 2)
	s.Perturb = &perturb.Spec{FailProb: 1e-3, RestartCost: 60, StallRate: 0.01, StallMean: 1}
	r1, b1, err := Estimate(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r2, b2, err := Estimate(s)
		if err != nil {
			t.Fatal(err)
		}
		if r1 != r2 {
			t.Fatalf("Estimate result drifted between calls:\n%+v\n%+v", r1, r2)
		}
		if b1 != b2 {
			t.Fatalf("Estimate bounds drifted between calls:\n%+v\n%+v", b1, b2)
		}
	}
}

// TestEstimateHealthyIsExactOnResilience pins the deterministic resilience
// fields of a healthy cluster: goodput exactly 1 and zero restarts, with
// zero-width bounds saying so.
func TestEstimateHealthyIsExactOnResilience(t *testing.T) {
	res, bounds, err := Estimate(scaleFoldScenario("H100", 256, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Goodput != 1 {
		t.Errorf("healthy goodput must be exactly 1, got %v", res.Goodput)
	}
	if res.Restarts != 0 {
		t.Errorf("healthy restarts must be 0, got %d", res.Restarts)
	}
	if bounds.Goodput != (Bound{Lo: 1, Hi: 1}) {
		t.Errorf("healthy goodput bound must be [1,1], got %+v", bounds.Goodput)
	}
	if bounds.Restarts.Width() != 0 {
		t.Errorf("healthy restarts bound must be zero-width, got %+v", bounds.Restarts)
	}
	if bounds.StallShare.Width() != 0 {
		t.Errorf("healthy stall-share bound must be zero-width, got %+v", bounds.StallShare)
	}
}

func TestEstimateRejectsInvalidScenario(t *testing.T) {
	bad := scaleFoldScenario("H100", 256, 2)
	bad.Ranks = 255 // not divisible by DAP
	if _, _, err := Estimate(bad); err == nil {
		t.Fatal("Estimate accepted an invalid scenario")
	}
	unknown := scaleFoldScenario("H100", 256, 2)
	unknown.Platform = "TPU-9000"
	if _, _, err := Estimate(unknown); err == nil {
		t.Fatal("Estimate accepted an unknown platform")
	}
}

// TestEstimateModeInvariant pins that Mode does not change the physics: the
// same scenario estimates identically whatever mode tag it carries.
func TestEstimateModeInvariant(t *testing.T) {
	base := scaleFoldScenario("H100", 256, 2)
	r0, b0, err := Estimate(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{scenario.ModeExact, scenario.ModeAnalytic, scenario.ModeAuto} {
		s := base
		s.Mode = mode
		r, b, err := Estimate(s)
		if err != nil {
			t.Fatal(err)
		}
		if r != r0 || b != b0 {
			t.Fatalf("mode %q changed the estimate", mode)
		}
	}
}

// TestAblationsOrderEstimates sanity-checks the estimator's physics: every
// idealization estimates a mean step no worse than the measured config.
func TestAblationsOrderEstimates(t *testing.T) {
	base := scaleFoldScenario("H100", 256, 2)
	r0, _, err := Estimate(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, ab := range scenario.Ablations[1:] {
		s := base
		s.Ablation = ab
		r, _, err := Estimate(s)
		if err != nil {
			t.Fatalf("%s: %v", ab, err)
		}
		if r.MeanStep > r0.MeanStep {
			t.Errorf("ablation %q estimated slower than the measured config: %v > %v", ab, r.MeanStep, r0.MeanStep)
		}
	}
}

func TestShouldEscalate(t *testing.T) {
	// Healthy cells carry zero-width goodput bounds: never escalate.
	_, healthy, err := Estimate(scaleFoldScenario("H100", 256, 2))
	if err != nil {
		t.Fatal(err)
	}
	if ShouldEscalate(healthy) {
		t.Errorf("healthy bounds must not escalate: %+v", healthy)
	}
	// A fail probability in the cliff region makes the restart count — and
	// with it goodput — genuinely bimodal over 6 steps: escalate.
	s := scaleFoldScenario("H100", 256, 2)
	s.Perturb = &perturb.Spec{FailProb: 2e-4, RestartCost: 120}
	_, cliff, err := Estimate(s)
	if err != nil {
		t.Fatal(err)
	}
	if !ShouldEscalate(cliff) {
		t.Errorf("cliff-region bounds must escalate: goodput bound %+v", cliff.Goodput)
	}
	// Policy fields are honored.
	if (Policy{GoodputWidth: 2, MeanStepRel: 2}).ShouldEscalate(cliff) {
		t.Error("permissive policy must not escalate")
	}
}

func TestMaxGauss(t *testing.T) {
	if got := maxGauss(1); got != 0 {
		t.Errorf("maxGauss(1) = %v, want 0", got)
	}
	// E[max of 2 std normals] = 1/sqrt(pi) ~ 0.5642.
	if got, want := maxGauss(2), 1/math.Sqrt(math.Pi); math.Abs(got-want) > 0.05*want {
		t.Errorf("maxGauss(2) = %v, want ~%v", got, want)
	}
	prev := 0.0
	for _, n := range []int{2, 4, 16, 256, 4096} {
		g := maxGauss(n)
		if g <= prev {
			t.Errorf("maxGauss must increase with n: maxGauss(%d)=%v <= %v", n, g, prev)
		}
		prev = g
	}
	// Known reference point: E[max of 100] ~ 2.5.
	if g := maxGauss(100); g < 2.3 || g > 2.7 {
		t.Errorf("maxGauss(100) = %v, want ~2.5", g)
	}
}

func TestBinomQuantile(t *testing.T) {
	if got := binomQuantile(10, 0, 0.99); got != 0 {
		t.Errorf("p=0 quantile = %d, want 0", got)
	}
	if got := binomQuantile(10, 1, 0.5); got != 10 {
		t.Errorf("p=1 quantile = %d, want 10", got)
	}
	// Median of Binomial(10, 0.5) is 5.
	if got := binomQuantile(10, 0.5, 0.5); got != 5 {
		t.Errorf("median of Bin(10,0.5) = %d, want 5", got)
	}
	// Quantiles are monotone in q and bracket the mean.
	lo := binomQuantile(100, 0.3, 0.005)
	hi := binomQuantile(100, 0.3, 0.995)
	if lo > 30 || hi < 30 {
		t.Errorf("quantiles [%d, %d] must bracket the mean 30", lo, hi)
	}
	if lo >= hi {
		t.Errorf("lo %d must be < hi %d", lo, hi)
	}
}

func TestBoundHelpers(t *testing.T) {
	b := bound(3, 1) // reversed endpoints
	if b != (Bound{Lo: 1, Hi: 3}) {
		t.Errorf("bound must order endpoints: %+v", b)
	}
	if got := bound(-1, 2); got.Lo != 0 {
		t.Errorf("bound must clamp at zero: %+v", got)
	}
	if !b.Contains(2) || b.Contains(4) {
		t.Error("Contains wrong")
	}
	if b.Width() != 2 {
		t.Errorf("Width = %v", b.Width())
	}
	if got := b.RelHalfWidth(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("RelHalfWidth = %v, want 0.5", got)
	}
	if got := (Bound{}).RelHalfWidth(); got != 0 {
		t.Errorf("zero bound RelHalfWidth = %v", got)
	}
	// Check names the first violating field.
	var bs Bounds
	bs.Goodput = Bound{Lo: 1, Hi: 1}
	err := bs.Check(cluster.Result{Goodput: 0.5})
	if err == nil {
		t.Fatal("Check must reject an escaped value")
	}
}
