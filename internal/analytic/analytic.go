// Package analytic is the closed-form twin of the exact step simulator: it
// composes what the codebase already derives piecewise — the deterministic
// kernel/comm/pipeline breakdown, max-of-n order statistics over the
// per-rank jitter exposure, and the 1-(1-p)^ranks restart model — into a
// cluster.Result estimate in microseconds instead of milliseconds, with an
// explicit error Bound attached to every stochastic field.
//
// The deterministic skeleton (roofline kernel times, collective schedule,
// graph capture, GC pauses, the gradient-clip overlap) mirrors
// cluster.Simulate exactly, so those components are not estimates at all.
// The stochastic components — execution jitter at sync barriers, CPU-peak
// and straggler delays, data-pipeline waits, and the perturbation layer's
// slowdowns/stalls/failures — are modeled by expectation and order
// statistics: a barrier-synced step ends when its slowest rank does, so
// each noise source contributes roughly E[max over ranks], not the mean.
//
// The contract is containment, not precision: the exact simulator's value
// for the same scenario lands inside each stated Bound (pinned by the
// fidelity property test in package scalefold), and the bound's width is
// the estimator's honest statement of how much the answer could move. Auto
// mode uses exactly that statement: a cell escalates to exact simulation
// only when its bound straddles a decision boundary (ShouldEscalate).
package analytic

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/dap"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// censusCache memoizes lowered kernel censuses exactly like package
// scalefold does — censuses are immutable derivations of the model config,
// shared across every scenario that spells the same options.
var censusCache = sweep.NewCache[*workload.Program]()

func censusFor(cen workload.Options) *workload.Program {
	prog, _ := censusCache.Do(scenario.CanonicalCensus(cen), func() *workload.Program {
		return workload.Census(model.FullConfig(), cen)
	})
	return prog
}

// sampleRanks is how many pseudo-ranks the data-wait estimate replays
// through the pipeline model. The replay is the estimator's only
// non-closed-form component and its cost ceiling; four ranks of one warm
// epoch each keep it in the tens of microseconds while sampling the
// per-rank prep-time streams the simulator would use verbatim — for
// scenarios with ranks <= sampleRanks the waits are exact.
const sampleRanks = 4

// prepCache memoizes the sampled per-rank prep-time draws. The draws are a
// pure function of (seed, prep model, pseudo-rank, epoch length) — every
// cell of a grid sweep shares them — and producing one draw re-seeds a
// keyed math/rand source (~10µs to refill its lagged-Fibonacci state),
// which profiling shows is ~90% of a cold Estimate. One entry is a few
// hundred bytes; callers treat the cached slice as read-only.
var prepCache = sweep.NewCache[[]time.Duration]()

// sampledPrepTimes returns pseudo-rank r's prep-time stream for one warm
// epoch, bit-identical to the draws the exact simulator's generator would
// produce for the same seed and indices.
func sampledPrepTimes(seed int64, m dataset.PrepTimeModel, r, epoch int) []time.Duration {
	key := fmt.Sprintf("%d|%d|%d|%v", seed, r, epoch, m)
	prep, _ := prepCache.Do(key, func() []time.Duration {
		gs := dataset.NewGenerator(seed + 101).Sampler()
		pt := m.Timer()
		prep := make([]time.Duration, epoch)
		for k := range prep {
			idx := r*epoch + k
			seqLen, msaSize := gs.Geometry(idx)
			prep[k] = pt.DurationAt(idx, seqLen, msaSize, seed+int64(r))
		}
		return prep
	})
	return prep
}

// Estimate produces a closed-form cluster.Result for the scenario plus the
// error Bounds attached to every stochastic field. The scenario's Mode is
// ignored here — an estimate describes the same physical scenario whatever
// key generation it is stored under; mode handling (store keys, escalation)
// belongs to the sweep layer. Invalid scenarios return the same typed error
// Validate would.
func Estimate(s scenario.Scenario) (cluster.Result, Bounds, error) {
	o, err := s.Options()
	if err != nil {
		return cluster.Result{}, Bounds{}, err
	}
	n, err := s.Normalize()
	if err != nil {
		return cluster.Result{}, Bounds{}, err
	}
	ranks := n.Ranks
	plan, err := dap.NewPlan(ranks, n.DAP)
	if err != nil {
		return cluster.Result{}, Bounds{}, err
	}
	prog := censusFor(n.Census)

	// --- Deterministic skeleton, mirroring cluster.Simulate's census pass,
	// collective schedule, graph capture and GC model bit for bit.
	exposeCPU := !o.CUDAGraph && !o.ZeroLaunchOverhead
	var gpuCompute, serialPart, cpuExposedBase time.Duration
	var launches int
	for _, g := range prog.Groups {
		if o.ZeroSerial && g.Serial {
			continue
		}
		perCall := o.Arch.KernelDuration(g.PerCallFlops(), g.PerCallBytes(), o.FlatEfficiency)
		d := time.Duration(g.Calls) * perCall
		gpuCompute += d
		if g.Serial {
			serialPart += d
		}
		launches += g.Calls
		if exposeCPU {
			if gap := o.Arch.LaunchOverhead - perCall; gap > 0 {
				cpuExposedBase += time.Duration(g.Calls) * gap
			}
		}
	}
	var syncEvents int
	var xferPerStep time.Duration
	for _, sp := range prog.Syncs {
		syncEvents += sp.Count
		bytes := sp.Bytes
		if o.ZeroCommVolume {
			bytes = 0
		}
		xferPerStep += time.Duration(sp.Count) * o.Topo.Cost(sp.Op, plan.Degree, bytes)
	}
	var graphCapture time.Duration
	if o.CUDAGraph {
		graphs := gpu.NewGraphCache(0)
		for key := 0; key < 4; key++ {
			graphCapture += graphs.Launch(o.Arch, key, launches, o.CPU, 0)
		}
	}
	intervals := syncEvents + 1
	var cpuExposedStep time.Duration
	if o.CUDAGraph {
		cpuExposedStep = o.Arch.GraphReplayOverhead + gcCost(o.CPU, launches)
	} else if !o.ZeroLaunchOverhead {
		cpuExposedStep = cpuExposedBase + gcCost(o.CPU, launches)
	}
	march := plan.Degree > 1 && syncEvents > 0
	nGroups, gsize := ranks, 1
	var evCost time.Duration
	if march {
		nGroups, gsize = plan.DPWays, plan.Degree
		evCost = xferPerStep / time.Duration(syncEvents)
		if !o.CUDAGraph {
			evCost += 2 * o.Arch.LaunchOverhead
		}
	}
	perRankChunk := gpuCompute / time.Duration(intervals)
	var xferAcc time.Duration
	if march {
		xferAcc = time.Duration(syncEvents) * evCost
	}
	arCost := o.Topo.AllReduce(plan.DPWays, prog.GradBytes/float64(plan.Degree))
	clipTime := time.Duration(prog.ClipKernels) * o.Arch.LaunchOverhead
	visible, _ := comm.OverlapGradClip(arCost, clipTime)
	clipExposed := visible - arCost

	// --- Data-pipeline waits: replay the simulator's own per-rank pipeline
	// for a handful of sampled ranks (exact streams, exact warmup) instead
	// of all of them. The sampled mean estimates the breakdown's DataWait;
	// the sampled per-step maxima estimate the barrier's wait term.
	warmup := 16
	if o.Prefetch > warmup {
		warmup = o.Prefetch
	}
	stepEstimate := gpuCompute + cpuExposedBase + xferPerStep
	epoch := warmup + o.Steps + 16
	rSample := sampleRanks
	if ranks < rSample {
		rSample = ranks
	}
	stepMaxWait := make([]time.Duration, o.Steps)
	stepMeanWait := make([]float64, o.Steps)
	var waitSum time.Duration
	for r := 0; r < rSample; r++ {
		prep := sampledPrepTimes(o.Seed, o.PrepModel, r, epoch)
		tl := pipeline.AnalyticSim{PrepTimes: prep, Workers: o.Workers, Prefetch: o.Prefetch, NonBlocking: o.NonBlockingPipeline}.Run(stepEstimate)
		for st := 0; st < o.Steps; st++ {
			w := tl.Wait[warmup+st]
			waitSum += w
			stepMeanWait[st] += sec(w) / float64(rSample)
			if w > stepMaxWait[st] {
				stepMaxWait[st] = w
			}
		}
	}
	meanWait := sec(waitSum) / float64(rSample*o.Steps)
	var waitBarrier float64
	for _, w := range stepMaxWait {
		waitBarrier += sec(w)
	}
	waitBarrier /= float64(o.Steps)
	waitExact := ranks <= rSample // every rank was replayed: waits are exact
	if o.PerfectBalance {
		meanWait, waitBarrier, waitExact = 0, 0, true
	}

	// --- Stochastic extras at the step barrier: a step ends when its
	// slowest rank does, so each noise source contributes an expected
	// max-over-ranks, built from the same per-chunk parameters the
	// simulator's advance() draws from.
	peaksPerStep := o.CPU.PeakProb * 2
	kernelsPerChunk := float64(launches) / float64(intervals)
	if kernelsPerChunk < 1 {
		kernelsPerChunk = 1
	}
	perKernelCV := 0.35
	if o.CUDAGraph {
		perKernelCV = 0.12
	}
	chunkCV := perKernelCV / math.Sqrt(kernelsPerChunk)
	stragglerProb := o.CPU.StragglerProb
	if o.CUDAGraph {
		stragglerProb /= 15
	}
	cpuChunk := sec(cpuExposedStep) / float64(intervals)

	var jIntra, jCross, jStrag, jPeak, sigmaStep float64
	if !o.PerfectBalance {
		var sigmaChunk float64
		if march {
			sigmaChunk = chunkCV * sec(perRankChunk)
			// Within a group every sync barrier waits for the slowest of
			// gsize ranks; across groups the final all-reduce waits for the
			// slowest group-sum (sd ~ sigma*sqrt(intervals): the intervals'
			// maxima are near-independent).
			jIntra = float64(intervals) * sigmaChunk * maxGauss(gsize)
			jCross = sigmaChunk * math.Sqrt(float64(intervals)) * maxGauss(nGroups)
		} else {
			sigmaChunk = chunkCV * sec(gpuCompute)
			jCross = sigmaChunk * maxGauss(ranks)
		}
		sigmaStep = sigmaChunk * math.Sqrt(float64(intervals))
		// Stragglers: rare exponential delays, stragglerProb per advance;
		// the barrier sees roughly the largest of the k expected arrivals
		// (E[max of k Exp(m)] = m*H_k ~ m*ln(1+k), smooth through k < 1).
		if stragglerProb > 0 {
			k := float64(ranks) * float64(intervals) * stragglerProb
			jStrag = sec(o.CPU.StragglerMean) * math.Log1p(k)
		}
		// CPU peaks stretch the exposed-CPU share of a chunk by up to
		// PeakStretch; the barrier sees ~the largest of the k expected
		// uniform stretches (E[max of k U(0,1)] = k/(k+1)).
		if cpuChunk > 0 && peaksPerStep > 0 {
			k := float64(ranks) * peaksPerStep
			jPeak = o.CPU.PeakStretch * cpuChunk * k / (k + 1)
		}
	}

	// --- Perturbation closed forms (all zero on a healthy cluster).
	p := o.Perturb.Normalize()
	compute := sec(gpuCompute) + sec(cpuExposedStep)
	var slowPt, slowHi, stallPt, stallHi float64
	if p.SlowdownProb > 0 && p.SlowdownFactor > 1 {
		// Persistent stragglers: each rank is slowed w.p. SlowdownProb by a
		// factor drawn once from U[1, F]; the barrier tracks the slowest.
		// With k expected slowed ranks the max of their uniform draws sits
		// at ~k/(k+1) of the way to F.
		k := float64(ranks) * p.SlowdownProb
		slowPt = (p.SlowdownFactor - 1) * compute * k / (k + 1)
		slowHi = (p.SlowdownFactor - 1) * compute
	}
	if p.StallRate > 0 && p.StallMean > 0 {
		// Transient stalls: Poisson(StallRate) arrivals per rank-step, each
		// Exp(StallMean); the barrier sees ~the largest across ranks.
		k := float64(ranks) * p.StallRate
		stallPt = p.StallMean * math.Log1p(k)
		stallHi = p.StallMean * (2*math.Log1p(k) + 3)
	}

	// --- Healthy step wall: deterministic base + barrier extras.
	base := waitBarrier + sec(gpuCompute) + sec(cpuExposedStep) + sec(xferAcc) + sec(visible)
	jPoint := jIntra + jCross + jStrag + jPeak
	stepEnd := base + jPoint + slowPt + stallPt
	// The bound allowances: jitter estimates doubled plus a 3-sigma step
	// spread, a floor of 2% of the base for the approximations' slack, and
	// headroom for data waits the unsampled ranks might add.
	slack := 0.02*base + 3*sigmaStep
	waitSpill := 0.0
	if !waitExact {
		waitSpill = 2*waitBarrier + 0.02*base
	}
	stepEndLo := base - slack
	stepEndHi := base + 2*(jIntra+jCross) + 3*jStrag + 2*jPeak + slowHi + stallHi + slack + waitSpill
	if stepEndLo < 0 {
		stepEndLo = 0
	}

	// --- Failures: each step fails iff any rank draws one, q = 1-(1-p)^n;
	// restarts over the run are Binomial(steps, q), bounded by its 0.5% and
	// 99.5% quantiles. A failed step pays the attempt, a restart, and the
	// replay: wall = 2*stepEnd + restartCost.
	steps := o.Steps
	q := 0.0
	if p.FailProb > 0 {
		q = 1 - math.Pow(1-p.FailProb, float64(ranks))
	}
	rc := sec(p.RestartCostDur())
	restartsPt := int(math.Round(float64(steps) * q))
	restartsLo := binomQuantile(steps, q, 0.005)
	restartsHi := binomQuantile(steps, q, 0.995)

	meanOf := func(stepSec float64, restarts float64) float64 {
		return stepSec + restarts/float64(steps)*(stepSec+rc)
	}
	meanPt := meanOf(stepEnd, float64(steps)*q)
	meanLo := meanOf(stepEndLo, float64(restartsLo))
	meanHi := meanOf(stepEndHi, float64(restartsHi))

	goodputOf := func(stepSec float64, restarts float64) float64 {
		total := float64(steps)*stepSec + restarts*(stepSec+rc)
		if total <= 0 {
			return 1
		}
		return float64(steps) * stepSec / total
	}
	goodputPt := goodputOf(stepEnd, float64(steps)*q)
	if q == 0 {
		goodputPt = 1 // healthy runs are exactly 1, not 1-epsilon
	}
	goodputLo := goodputOf(stepEndLo, float64(restartsHi))
	goodputHi := goodputOf(stepEndHi, float64(restartsLo))

	// Median over steps: the sorted middle step is a failed one only once
	// failures claim the top half of the order.
	failNeeded := steps - steps/2
	failWall := func(stepSec float64) float64 { return 2*stepSec + rc }
	medianPt := stepEnd
	if restartsPt >= failNeeded {
		medianPt = failWall(stepEnd)
	}
	medianLo := stepEndLo
	if restartsLo >= failNeeded {
		medianLo = failWall(stepEndLo)
	}
	medianHi := stepEndHi
	if restartsHi >= failNeeded {
		medianHi = failWall(stepEndHi)
	}

	// P99 over <100 steps is the max step: a failed wall as soon as one
	// restart is plausible, and in any case the largest healthy draw — the
	// per-step noise allowances scaled up by the steps-wide max.
	tailScale := math.Log1p(float64(steps))
	p99HealthyHi := base + 2*(jIntra+jCross) + (2+tailScale)*(jStrag+stallHi) + 2*jPeak + slowHi + slack + waitSpill + sigmaStep*maxGauss(steps)
	p99Pt := stepEnd
	if float64(steps)*q >= 0.5 {
		p99Pt = failWall(stepEnd)
	}
	p99Lo := stepEndLo
	if restartsLo >= 1 {
		p99Lo = failWall(stepEndLo)
	}
	p99Hi := p99HealthyHi
	if restartsHi >= 1 {
		p99Hi = failWall(p99HealthyHi)
	}

	// Stall share: injected stall time over ranks*wall — expectation per
	// rank-step is StallRate*StallMean, diluted by restarts' extra wall.
	var stallSharePt, stallShareLo, stallShareHi float64
	if p.StallRate > 0 && p.StallMean > 0 {
		perRank := p.StallRate * p.StallMean
		stallSharePt = perRank / meanPt
		stallShareLo = perRank / (3 * meanHi)
		stallShareHi = 3 * perRank / meanLo
	}

	// Comm wait: the per-event barrier gaps plus the all-reduce straggler
	// wait — same order statistics as the step extras, minus the part every
	// rank shares.
	commWaitPt := float64(syncEvents)*chunkCV*sec(perRankChunk)*maxGauss(gsize) +
		jCross + jStrag + jPeak + stallPt + slowPt + (waitBarrier - meanWait)
	if o.PerfectBalance {
		commWaitPt = 0
	}
	commWaitLo := commWaitPt / 4
	commWaitHi := 3*commWaitPt + 0.02*base + stallHi
	dataWaitHi := 2*meanWait + 0.01*base
	if waitExact {
		dataWaitHi = meanWait
	}

	// --- Assemble the Result and its bounds.
	bk := cluster.Breakdown{
		GPUCompute:  gpuCompute,
		SerialPart:  serialPart,
		CPUExposed:  cpuExposedStep,
		DataWait:    dur(meanWait),
		CommXfer:    xferAcc + arCost,
		CommWait:    dur(commWaitPt),
		ClipExposed: clipExposed,
	}
	// Median-over-steps variants from the sampled replay (data) and the
	// point estimate (comm) — informational, like the simulator's.
	medianOf := func(v []float64) float64 {
		s := append([]float64(nil), v...)
		for i := 1; i < len(s); i++ { // insertion sort: steps is small
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return s[len(s)/2]
	}
	bk.DataWaitMedian = dur(medianOf(stepMeanWait))
	bk.CommWaitMedian = dur(commWaitPt)

	res := cluster.Result{
		MeanStep:     dur(meanPt),
		MedianStep:   dur(medianPt),
		P99Step:      dur(p99Pt),
		Break:        bk,
		Plan:         plan,
		GraphCapture: graphCapture,
		Restarts:     restartsPt,
		StallShare:   stallSharePt,
		Goodput:      goodputPt,
	}
	bounds := Bounds{
		MeanStep:   bound(meanLo, meanHi),
		MedianStep: bound(medianLo, medianHi),
		P99Step:    bound(p99Lo, p99Hi),
		DataWait:   bound(0, dataWaitHi),
		CommWait:   bound(commWaitLo, commWaitHi),
		Goodput:    bound(goodputLo, goodputHi),
		Restarts:   bound(float64(restartsLo), float64(restartsHi)),
		StallShare: bound(stallShareLo, stallShareHi),
	}
	if q == 0 {
		bounds.Goodput = Bound{Lo: 1, Hi: 1}
		bounds.Restarts = Bound{}
	}
	if p.StallRate == 0 || p.StallMean == 0 {
		bounds.StallShare = Bound{}
	}
	return res, bounds, nil
}

// gcCost mirrors the simulator's per-step Python-GC stall model.
func gcCost(c gpu.CPUModel, launches int) time.Duration {
	if !c.GCEnabled || c.GCInterval <= 0 {
		return 0
	}
	return time.Duration(launches/c.GCInterval) * c.GCPause
}

// Policy is the auto-mode escalation rule: a cell leaves the analytic fast
// path only when its bounds are too wide to act on — the goodput interval
// straddles more than GoodputWidth (the resilience cliff region, where the
// restart count is genuinely bimodal), or the mean-step relative error
// radius exceeds MeanStepRel.
type Policy struct {
	GoodputWidth float64
	MeanStepRel  float64
}

// DefaultPolicy is the escalation rule the sweep layer applies in auto
// mode. The thresholds are deliberately permissive: healthy cells and
// deep-past-the-cliff cells stay analytic, the transition region — where a
// ±1 restart moves goodput by tens of points — escalates.
var DefaultPolicy = Policy{GoodputWidth: 0.2, MeanStepRel: 0.35}

// ShouldEscalate reports whether a cell with these bounds needs the exact
// simulator under the policy.
func (p Policy) ShouldEscalate(b Bounds) bool {
	return b.Goodput.Width() > p.GoodputWidth || b.MeanStep.RelHalfWidth() > p.MeanStepRel
}

// ShouldEscalate applies DefaultPolicy.
func ShouldEscalate(b Bounds) bool { return DefaultPolicy.ShouldEscalate(b) }
