// Package pipeline implements the data pipelines compared in Figure 5:
//
//   - BlockingLoader reproduces the default PyTorch DataLoader contract:
//     batches are delivered strictly in sampler order, so one slow batch
//     stalls the trainer even when later batches are already prepared.
//   - NonBlockingLoader is the paper's design (§3.2): worker goroutines
//     deposit finished batches into a priority queue keyed by batch index,
//     and Next yields whichever prepared batch has the lowest index *right
//     now* — a slow batch is simply overtaken and delivered later.
//
// Both loaders are real concurrent code (goroutines, channels, a heap) and
// are exercised by unit tests and the examples/pipeline demo. The cluster
// simulator uses the analytic twin in analytic.go, which replays the same
// semantics on virtual time so thousand-rank simulations don't need
// wall-clock sleeps.
package pipeline

import (
	"container/heap"
	"context"
	"sync"
	"time"
)

// Batch is a prepared training batch. Payload is opaque to the pipeline.
type Batch struct {
	Index    int           // position in the sampler order
	PrepTime time.Duration // how long preparation took
	Payload  interface{}
}

// Source produces work items: the sampler order and each item's preparation
// cost. Prepare is called from worker goroutines and must be safe for
// concurrent use.
type Source interface {
	// Len returns the number of batches in the epoch.
	Len() int
	// Prepare builds batch i, blocking for its preparation time.
	Prepare(ctx context.Context, i int) (Batch, error)
}

// Loader yields prepared batches.
type Loader interface {
	// Next blocks until a batch is available. It returns false when the
	// epoch is exhausted or the context is cancelled.
	Next(ctx context.Context) (Batch, bool)
	// Stop cancels workers and releases resources.
	Stop()
}

// ---------- Blocking (PyTorch-default) loader ----------

// BlockingLoader delivers batches in strict sampler order. Workers prefetch
// `prefetch` batches ahead, but delivery of batch i+1 cannot happen before
// batch i is consumed — the Figure 5(i) behaviour.
type BlockingLoader struct {
	src     Source
	workers int

	mu      sync.Mutex
	cond    *sync.Cond
	ready   map[int]Batch
	nextIdx int
	issued  int
	stop    context.CancelFunc
	done    bool
	wg      sync.WaitGroup
}

// NewBlocking starts a blocking loader with the given worker count.
func NewBlocking(src Source, workers int) *BlockingLoader {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	l := &BlockingLoader{src: src, workers: workers, ready: map[int]Batch{}, stop: cancel}
	l.cond = sync.NewCond(&l.mu)
	for w := 0; w < workers; w++ {
		l.wg.Add(1)
		go l.worker(ctx)
	}
	return l
}

func (l *BlockingLoader) worker(ctx context.Context) {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		// In-order prefetch window: a worker may run at most `workers`
		// batches ahead of the consumer, exactly like DataLoader's
		// prefetch_factor bound.
		for !l.done && (l.issued >= l.src.Len() || l.issued >= l.nextIdx+2*l.workers) {
			l.cond.Wait()
		}
		if l.done || l.issued >= l.src.Len() {
			l.mu.Unlock()
			return
		}
		idx := l.issued
		l.issued++
		l.mu.Unlock()

		b, err := l.src.Prepare(ctx, idx)
		l.mu.Lock()
		if err == nil {
			l.ready[idx] = b
		} else {
			l.done = true
		}
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// Next returns the batch with index exactly nextIdx, waiting for it even if
// later batches are already prepared (the blocking semantics under test).
func (l *BlockingLoader) Next(ctx context.Context) (Batch, bool) {
	stopOnCancel := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		l.done = true
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer stopOnCancel()

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nextIdx >= l.src.Len() {
		return Batch{}, false
	}
	for {
		if b, ok := l.ready[l.nextIdx]; ok {
			delete(l.ready, l.nextIdx)
			l.nextIdx++
			l.cond.Broadcast()
			return b, true
		}
		if l.done {
			return Batch{}, false
		}
		l.cond.Wait()
	}
}

// Stop cancels the loader.
func (l *BlockingLoader) Stop() {
	l.mu.Lock()
	l.done = true
	l.cond.Broadcast()
	l.mu.Unlock()
	l.stop()
	l.wg.Wait()
}

// ---------- Non-blocking (ScaleFold) loader ----------

// NonBlockingLoader yields whichever prepared batch has the lowest index at
// the moment Next is called — the priority queue keyed by batch index of
// §3.2. A slow batch never blocks delivery of a ready one.
type NonBlockingLoader struct {
	src     Source
	workers int

	mu       sync.Mutex
	cond     *sync.Cond
	pq       batchHeap
	issued   int
	inflight int
	yielded  int
	stop     context.CancelFunc
	done     bool
	wg       sync.WaitGroup
}

// NewNonBlocking starts a non-blocking loader.
func NewNonBlocking(src Source, workers int) *NonBlockingLoader {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	l := &NonBlockingLoader{src: src, workers: workers, stop: cancel}
	l.cond = sync.NewCond(&l.mu)
	for w := 0; w < workers; w++ {
		l.wg.Add(1)
		go l.worker(ctx)
	}
	return l
}

func (l *NonBlockingLoader) worker(ctx context.Context) {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		for !l.done && (l.issued >= l.src.Len() || len(l.pq)+l.inflight >= 2*l.workers) {
			l.cond.Wait()
		}
		if l.done || l.issued >= l.src.Len() {
			l.mu.Unlock()
			return
		}
		idx := l.issued
		l.issued++
		l.inflight++
		l.mu.Unlock()

		b, err := l.src.Prepare(ctx, idx)
		l.mu.Lock()
		l.inflight--
		if err == nil {
			heap.Push(&l.pq, b)
		} else {
			l.done = true
		}
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// Next pops the lowest-index *ready* batch, blocking only when nothing at
// all is prepared.
func (l *NonBlockingLoader) Next(ctx context.Context) (Batch, bool) {
	stopOnCancel := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		l.done = true
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer stopOnCancel()

	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.yielded >= l.src.Len() {
			return Batch{}, false
		}
		if len(l.pq) > 0 {
			b := heap.Pop(&l.pq).(Batch)
			l.yielded++
			l.cond.Broadcast()
			return b, true
		}
		if l.done {
			return Batch{}, false
		}
		l.cond.Wait()
	}
}

// Stop cancels the loader.
func (l *NonBlockingLoader) Stop() {
	l.mu.Lock()
	l.done = true
	l.cond.Broadcast()
	l.mu.Unlock()
	l.stop()
	l.wg.Wait()
}

// batchHeap is a min-heap on batch index: the "priority queue, with the
// batches' indices as the associated priorities" of §3.2.
type batchHeap []Batch

func (h batchHeap) Len() int           { return len(h) }
func (h batchHeap) Less(i, j int) bool { return h[i].Index < h[j].Index }
func (h batchHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *batchHeap) Push(x any)        { *h = append(*h, x.(Batch)) }
func (h *batchHeap) Pop() any {
	old := *h
	n := len(old)
	b := old[n-1]
	*h = old[:n-1]
	return b
}
