package pipeline

import (
	"context"
	"testing"
	"time"
)

// fakeSource prepares batches by sleeping a scaled-down prep time.
type fakeSource struct {
	prep  []time.Duration
	scale float64 // wall-clock scale factor for tests
}

func (f *fakeSource) Len() int { return len(f.prep) }

func (f *fakeSource) Prepare(ctx context.Context, i int) (Batch, error) {
	d := time.Duration(float64(f.prep[i]) * f.scale)
	select {
	case <-time.After(d):
	case <-ctx.Done():
		return Batch{}, ctx.Err()
	}
	return Batch{Index: i, PrepTime: f.prep[i], Payload: i}, nil
}

func collect(t *testing.T, l Loader, n int) []int {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var order []int
	for i := 0; i < n; i++ {
		b, ok := l.Next(ctx)
		if !ok {
			t.Fatalf("loader ended early after %d batches", i)
		}
		order = append(order, b.Index)
	}
	return order
}

func TestBlockingLoaderDeliversInOrder(t *testing.T) {
	// Prep times deliberately inverted: later batches finish first.
	src := &fakeSource{prep: []time.Duration{
		50 * time.Millisecond, 5 * time.Millisecond, 1 * time.Millisecond, 20 * time.Millisecond,
	}, scale: 1}
	l := NewBlocking(src, 4)
	defer l.Stop()
	order := collect(t, l, 4)
	for i, idx := range order {
		if idx != i {
			t.Fatalf("blocking loader yielded out of order: %v", order)
		}
	}
}

func TestNonBlockingLoaderOvertakesSlowBatch(t *testing.T) {
	// Figure 5 scenario: batch "b" (index 1) is slow; batch "c" (index 2)
	// must be yielded before it.
	src := &fakeSource{prep: []time.Duration{
		1 * time.Millisecond,   // a
		300 * time.Millisecond, // b: slow
		5 * time.Millisecond,   // c
		5 * time.Millisecond,
	}, scale: 1}
	l := NewNonBlocking(src, 2)
	defer l.Stop()
	order := collect(t, l, 4)
	posB, posC := -1, -1
	for i, idx := range order {
		if idx == 1 {
			posB = i
		}
		if idx == 2 {
			posC = i
		}
	}
	if posC > posB {
		t.Fatalf("ready batch c was not yielded before slow batch b: %v", order)
	}
	// All batches still delivered exactly once.
	seen := map[int]bool{}
	for _, idx := range order {
		if seen[idx] {
			t.Fatalf("duplicate batch %d in %v", idx, order)
		}
		seen[idx] = true
	}
}

func TestNonBlockingPrefersLowestReadyIndex(t *testing.T) {
	// Several batches become ready while the consumer is slow; they must
	// come out index-ascending (priority queue semantics).
	src := &fakeSource{prep: []time.Duration{
		5 * time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond,
	}, scale: 1}
	l := NewNonBlocking(src, 4)
	defer l.Stop()
	time.Sleep(80 * time.Millisecond) // let all workers finish
	order := collect(t, l, 4)
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("ready batches must drain index-ascending: %v", order)
		}
	}
}

func TestLoaderNextAfterExhaustionReturnsFalse(t *testing.T) {
	src := &fakeSource{prep: []time.Duration{time.Millisecond}, scale: 1}
	for _, mk := range []func() Loader{
		func() Loader { return NewBlocking(src, 1) },
		func() Loader { return NewNonBlocking(src, 1) },
	} {
		l := mk()
		collect(t, l, 1)
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		if _, ok := l.Next(ctx); ok {
			t.Fatal("exhausted loader must return false")
		}
		cancel()
		l.Stop()
	}
}

func TestLoaderContextCancellation(t *testing.T) {
	src := &fakeSource{prep: []time.Duration{10 * time.Second}, scale: 1}
	l := NewNonBlocking(src, 1)
	defer l.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, ok := l.Next(ctx); ok {
		t.Fatal("cancelled Next must return false")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Next did not honor cancellation promptly")
	}
}

// ---------- analytic twin ----------

func secs(ss ...float64) []time.Duration {
	out := make([]time.Duration, len(ss))
	for i, s := range ss {
		out[i] = time.Duration(s * float64(time.Second))
	}
	return out
}

func TestAnalyticFigure5Scenario(t *testing.T) {
	// The paper's exact example: two dataloader workers, prep times
	// a=1s, b=7s (slow), c=3s, steps of 5s.
	// Blocking: after step1 finishes at t=6, batch b is not ready until
	// t=7 — the trainer idles 1s. Non-blocking: c (ready at t=4 on worker
	// 1) is yielded at t=6, no idle; b is consumed at t=11.
	prep := secs(1, 7, 3)
	step := 5 * time.Second

	blocking := AnalyticSim{PrepTimes: prep, Workers: 2, NonBlocking: false}.Run(step)
	nonBlocking := AnalyticSim{PrepTimes: prep, Workers: 2, NonBlocking: true}.Run(step)

	if blocking.TotalWait() <= nonBlocking.TotalWait() {
		t.Fatalf("non-blocking must wait less: blocking %v vs non-blocking %v",
			blocking.TotalWait(), nonBlocking.TotalWait())
	}
	// Non-blocking yields c (index 2) before b (index 1).
	order := nonBlocking.YieldOrder
	posB, posC := -1, -1
	for i, idx := range order {
		if idx == 1 {
			posB = i
		}
		if idx == 2 {
			posC = i
		}
	}
	if posC > posB {
		t.Fatalf("analytic non-blocking order wrong: %v", order)
	}
	// Blocking preserves order.
	for i, idx := range blocking.YieldOrder {
		if idx != i {
			t.Fatalf("analytic blocking must be in order: %v", blocking.YieldOrder)
		}
	}
}

func TestAnalyticNonBlockingNeverWorse(t *testing.T) {
	// Property: for any prep-time vector, the non-blocking pipeline's total
	// wait is <= the blocking pipeline's.
	cases := [][]float64{
		{1, 1, 1, 1},
		{10, 1, 1, 1},
		{1, 10, 1, 10, 1},
		{0.1, 50, 0.1, 0.1, 0.1, 0.1},
		{3, 3, 100, 3, 3, 3, 3, 3},
	}
	for _, c := range cases {
		prep := secs(c...)
		for _, workers := range []int{1, 2, 4} {
			b := AnalyticSim{PrepTimes: prep, Workers: workers}.Run(2 * time.Second)
			nb := AnalyticSim{PrepTimes: prep, Workers: workers, NonBlocking: true}.Run(2 * time.Second)
			if nb.TotalWait() > b.TotalWait() {
				t.Fatalf("non-blocking waited more for %v workers=%d: %v > %v",
					c, workers, nb.TotalWait(), b.TotalWait())
			}
		}
	}
}

func TestAnalyticDeliversEveryBatchOnce(t *testing.T) {
	prep := secs(5, 1, 9, 2, 2, 7, 1)
	tl := AnalyticSim{PrepTimes: prep, Workers: 3, NonBlocking: true}.Run(time.Second)
	if len(tl.YieldOrder) != len(prep) {
		t.Fatalf("delivered %d of %d", len(tl.YieldOrder), len(prep))
	}
	seen := map[int]bool{}
	for _, idx := range tl.YieldOrder {
		if seen[idx] {
			t.Fatalf("batch %d delivered twice", idx)
		}
		seen[idx] = true
	}
}

func TestMoreWorkersReduceBlockingWait(t *testing.T) {
	prep := secs(4, 4, 4, 4, 4, 4, 4, 4)
	w1 := AnalyticSim{PrepTimes: prep, Workers: 1}.Run(time.Second).TotalWait()
	w4 := AnalyticSim{PrepTimes: prep, Workers: 4}.Run(time.Second).TotalWait()
	if w4 >= w1 {
		t.Fatalf("more workers should reduce wait: 1w=%v 4w=%v", w1, w4)
	}
}

func TestMeanWait(t *testing.T) {
	prep := secs(1, 1, 1, 1)
	mw := MeanWait(prep, 2, true, time.Second)
	if mw < 0 {
		t.Fatalf("mean wait %v", mw)
	}
}

// TestMeanWaitPrefetch pins the prefetch-aware variant: the legacy
// signature is exactly the prefetch<=0 default (2×workers), an explicit
// prefetch equal to that default agrees with it, and a tight prefetch=1
// bound on bursty prep times waits at least as long — the queue slot must
// free before the next slow batch may start, which MeanWait's dropped
// Prefetch field used to make unexpressible.
func TestMeanWaitPrefetch(t *testing.T) {
	prep := secs(8, 1, 1, 1, 8, 1, 1, 1)
	const workers = 2
	legacy := MeanWait(prep, workers, false, time.Second)
	if got := MeanWaitPrefetch(prep, workers, 0, false, time.Second); got != legacy {
		t.Fatalf("prefetch=0 must match the legacy default: %v vs %v", got, legacy)
	}
	if got := MeanWaitPrefetch(prep, workers, 2*workers, false, time.Second); got != legacy {
		t.Fatalf("explicit default prefetch must match the legacy default: %v vs %v", got, legacy)
	}
	tight := MeanWaitPrefetch(prep, workers, 1, false, time.Second)
	if tight < legacy {
		t.Fatalf("prefetch=1 must not wait less than the default bound: %v vs %v", tight, legacy)
	}
	deep := MeanWaitPrefetch(prep, workers, len(prep), false, time.Second)
	if deep > legacy {
		t.Fatalf("deeper prefetch must not wait more than the default bound: %v vs %v", deep, legacy)
	}
	if tight == deep {
		t.Fatalf("prefetch bound had no effect on bursty prep times (both %v)", tight)
	}
}
