package pipeline

import (
	"time"
)

// AnalyticSim replays the loader semantics on virtual time so the cluster
// simulator can evaluate thousand-rank data waits without wall-clock sleeps.
// Given per-batch preparation times, a worker count and the trainer's step
// time, it returns for each training step how long the trainer waited for
// its batch.
//
// Like the real loaders, workers run at most Prefetch batches ahead of the
// consumer (PyTorch's prefetch_factor bound): a slow batch therefore has at
// most Prefetch steps of slack before it blocks the blocking loader.
type AnalyticSim struct {
	PrepTimes []time.Duration
	Workers   int
	// Prefetch bounds how far issuance may run ahead of consumption;
	// 0 means 2×Workers (the loaders' default).
	Prefetch int
	// NonBlocking selects the §3.2 ready-first semantics; otherwise strict
	// sampler order (PyTorch default).
	NonBlocking bool
}

// Timeline holds the simulated delivery schedule.
type Timeline struct {
	// DeliverAt[k] is when the k-th consumed batch was handed to the trainer.
	DeliverAt []time.Duration
	// Wait[k] is how long the trainer idled before receiving batch k.
	Wait []time.Duration
	// YieldOrder[k] is the sampler index of the k-th delivered batch
	// (identity for the blocking loader, possibly permuted otherwise).
	YieldOrder []int
}

// TotalWait sums the trainer's idle time.
func (t *Timeline) TotalWait() time.Duration {
	var s time.Duration
	for _, w := range t.Wait {
		s += w
	}
	return s
}

// Run simulates an epoch where the trainer consumes one batch per step and
// each step takes stepTime of compute after its batch arrives.
func (a AnalyticSim) Run(stepTime time.Duration) *Timeline {
	n := len(a.PrepTimes)
	w := a.Workers
	if w < 1 {
		w = 1
	}
	pf := a.Prefetch
	if pf <= 0 {
		pf = 2 * w
	}
	tl := &Timeline{
		DeliverAt:  make([]time.Duration, 0, n),
		Wait:       make([]time.Duration, 0, n),
		YieldOrder: make([]int, 0, n),
	}

	workerFree := make([]time.Duration, w)
	readyAt := make([]time.Duration, n)
	issued := 0
	consumed := 0
	consumedSet := make([]bool, n)
	consumeTime := make([]time.Duration, n)
	var trainFree time.Duration

	issue := func() {
		for issued < n && issued < consumed+pf {
			// Credit: batch `issued` may start once batch issued-pf has been
			// consumed (its queue slot freed).
			var credit time.Duration
			if issued >= pf {
				credit = consumeTime[issued-pf]
			}
			wi := 0
			for j := 1; j < w; j++ {
				if workerFree[j] < workerFree[wi] {
					wi = j
				}
			}
			start := workerFree[wi]
			if credit > start {
				start = credit
			}
			readyAt[issued] = start + a.PrepTimes[issued]
			workerFree[wi] = readyAt[issued]
			issued++
		}
	}

	for consumed < n {
		issue()
		var pick = -1
		var deliver time.Duration
		if a.NonBlocking {
			// Lowest-index batch ready by trainFree; else earliest-ready.
			for i := 0; i < issued; i++ {
				if !consumedSet[i] && readyAt[i] <= trainFree {
					pick = i
					break
				}
			}
			if pick == -1 {
				var earliest time.Duration
				for i := 0; i < issued; i++ {
					if consumedSet[i] {
						continue
					}
					if pick == -1 || readyAt[i] < earliest {
						pick = i
						earliest = readyAt[i]
					}
				}
				deliver = earliest
				// Among batches ready at `deliver`, take the lowest index.
				for i := 0; i < issued; i++ {
					if !consumedSet[i] && readyAt[i] <= deliver && i < pick {
						pick = i
					}
				}
			} else {
				deliver = trainFree
			}
		} else {
			// Strict order: the next index, whenever it is ready.
			pick = consumed // next in order among non-consumed == consumed
			for consumedSet[pick] {
				pick++
			}
			deliver = readyAt[pick]
			if trainFree > deliver {
				deliver = trainFree
			}
		}
		consumedSet[pick] = true
		tl.DeliverAt = append(tl.DeliverAt, deliver)
		tl.Wait = append(tl.Wait, deliver-trainFree)
		tl.YieldOrder = append(tl.YieldOrder, pick)
		consumeTime[consumed] = deliver
		consumed++
		trainFree = deliver + stepTime
	}
	return tl
}

// MeanWait is a convenience: the average per-step data wait for the given
// prep times under either loader at the default prefetch bound (2×Workers),
// used by the cluster simulator to inject data-pipeline imbalance per rank.
// Callers modeling a non-default prefetch_factor want MeanWaitPrefetch.
func MeanWait(prep []time.Duration, workers int, nonBlocking bool, stepTime time.Duration) time.Duration {
	return MeanWaitPrefetch(prep, workers, 0, nonBlocking, stepTime)
}

// MeanWaitPrefetch is MeanWait with an explicit prefetch bound: how far
// issuance may run ahead of consumption before a slow batch blocks the
// queue. prefetch <= 0 selects the loaders' default of 2×workers, matching
// AnalyticSim.
func MeanWaitPrefetch(prep []time.Duration, workers, prefetch int, nonBlocking bool, stepTime time.Duration) time.Duration {
	tl := AnalyticSim{PrepTimes: prep, Workers: workers, Prefetch: prefetch, NonBlocking: nonBlocking}.Run(stepTime)
	if len(tl.Wait) == 0 {
		return 0
	}
	return tl.TotalWait() / time.Duration(len(tl.Wait))
}
