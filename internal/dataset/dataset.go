// Package dataset generates the synthetic stand-in for the OpenFold
// training dataset. The real dataset (PDB structures plus precomputed
// multiple sequence alignments) is not available offline, so we synthesize
// proteins whose 3D structure is a deterministic function of their sequence:
// the backbone is a 3D chain whose torsion angles are derived from local
// sequence windows. That makes structure prediction *learnable* — the model
// can in principle recover the sequence→angle map — which is all the
// training-side experiments need (DESIGN.md substitution table).
//
// The package also models the property of the real dataset that drives the
// paper's §3.2: batch preparation time varies across three orders of
// magnitude with sequence length and MSA size (Figure 4).
package dataset

import (
	"math"
	"math/rand"
)

// NumResidueTypes is the amino-acid alphabet size (20 + unknown).
const NumResidueTypes = 21

// Sample is one synthetic protein with its MSA and ground-truth structure.
type Sample struct {
	Index   int          // position in the epoch's sampler order
	Seq     []int        // residue types, length R
	MSA     [][]int      // S sequences × R residues (first row == Seq)
	Coords  [][3]float32 // ground-truth Cα coordinates, length R
	SeqLen  int          // original (pre-crop) sequence length
	MSASize int          // original MSA depth (drives prep time)
}

// Generator produces deterministic samples from a seed.
type Generator struct {
	seed int64

	// MinLen/MaxLen bound the pre-crop sequence length distribution.
	MinLen, MaxLen int
	// MSADepth is the number of MSA rows kept after sampling.
	MSADepth int
	// MutationRate is the per-position probability that an MSA row differs
	// from the target sequence.
	MutationRate float64
}

// NewGenerator returns a generator with OpenFold-like defaults scaled down.
func NewGenerator(seed int64) *Generator {
	return &Generator{seed: seed, MinLen: 64, MaxLen: 768, MSADepth: 8, MutationRate: 0.15}
}

// rngFor returns a fresh RNG positioned at the start of sample idx's draw
// sequence. Sample and Geometry both start here, which is what keeps their
// shared prefix bit-identical.
func (g *Generator) rngFor(idx int) *rand.Rand {
	return rand.New(rand.NewSource(g.seed*1_000_003 + int64(idx)))
}

// drawLen and drawMSASize are the geometry draws of the sample sequence,
// shared by Sample and the geometry fast path so the two can never
// desynchronize — there is exactly one definition of each draw.
func (g *Generator) drawLen(rng *rand.Rand) int {
	length := g.MinLen
	if g.MaxLen > g.MinLen {
		// Sequence lengths are right-skewed like real PDB chains.
		u := rng.Float64()
		length = g.MinLen + int(float64(g.MaxLen-g.MinLen)*u*u)
	}
	return length
}

func drawMSASize(rng *rand.Rand) int {
	return 16 + int(math.Abs(rng.NormFloat64())*2000)
}

// geometry replays the geometry prefix of the sample draw sequence on rng —
// the length draw, the length residue draws, the MSA-size draw — and returns
// the pre-crop geometry. The residue values are drawn and discarded: the
// MSA-size draw must observe the exact RNG state Sample's would, so the
// prefix is consumed, just never materialized.
func (g *Generator) geometry(rng *rand.Rand) (seqLen, msaSize int) {
	seqLen = g.drawLen(rng)
	for i := 0; i < seqLen; i++ {
		rng.Intn(NumResidueTypes - 1)
	}
	return seqLen, drawMSASize(rng)
}

// Geometry returns the pre-crop geometry of the idx-th sample — SeqLen and
// MSASize, the only fields batch-preparation cost depends on — without
// folding the protein or allocating the sequence, coordinates or MSA. It is
// guaranteed to equal Sample(idx).SeqLen / .MSASize: both replay the same
// RNG draw prefix (see geometry). The step simulator and the Figure 4 curve
// run on this path; Sample is for callers that train on the data.
func (g *Generator) Geometry(idx int) (seqLen, msaSize int) {
	return g.geometry(g.rngFor(idx))
}

// GeomSampler evaluates Geometry with a reusable RNG, eliminating the
// per-call generator allocation on hot loops (the cluster simulator asks for
// tens of thousands of geometries per run). Not safe for concurrent use;
// give each goroutine its own.
type GeomSampler struct {
	g   *Generator
	rng *rand.Rand
}

// Sampler returns a reusable geometry sampler over g.
func (g *Generator) Sampler() *GeomSampler {
	return &GeomSampler{g: g, rng: rand.New(rand.NewSource(0))}
}

// Geometry is Generator.Geometry without the per-call RNG allocation:
// reseeding positions the reused RNG exactly where a fresh one would start.
func (s *GeomSampler) Geometry(idx int) (seqLen, msaSize int) {
	s.rng.Seed(s.g.seed*1_000_003 + int64(idx))
	return s.g.geometry(s.rng)
}

// Sample generates the idx-th sample of the dataset, deterministically.
func (g *Generator) Sample(idx int) *Sample {
	rng := g.rngFor(idx)
	length := g.drawLen(rng)
	seq := make([]int, length)
	for i := range seq {
		seq[i] = rng.Intn(NumResidueTypes - 1)
	}
	msaSize := drawMSASize(rng)

	s := &Sample{
		Index:   idx,
		Seq:     seq,
		Coords:  FoldSequence(seq),
		SeqLen:  length,
		MSASize: msaSize,
	}
	s.MSA = make([][]int, g.MSADepth)
	s.MSA[0] = seq
	for r := 1; r < g.MSADepth; r++ {
		row := make([]int, length)
		copy(row, seq)
		for i := range row {
			if rng.Float64() < g.MutationRate {
				row[i] = rng.Intn(NumResidueTypes - 1)
			}
		}
		s.MSA[r] = row
	}
	return s
}

// FoldSequence maps a sequence to Cα coordinates deterministically: each
// residue advances the chain by a unit step whose direction turns according
// to torsion angles derived from a window of three residues. Identical
// sequences always fold identically, and similar sequences fold similarly,
// so the map is learnable from (sequence, structure) pairs.
func FoldSequence(seq []int) [][3]float32 {
	coords := make([][3]float32, len(seq))
	// Current direction as spherical angles.
	theta, phi := 0.6, 0.0
	x, y, z := 0.0, 0.0, 0.0
	for i := range seq {
		a := seq[i]
		b, c := a, a
		if i > 0 {
			b = seq[i-1]
		}
		if i+1 < len(seq) {
			c = seq[i+1]
		}
		// Torsion updates from the local window; constants chosen to produce
		// helix-like curls broken by turns, spanning a compact fold.
		theta += 0.35 * math.Sin(float64(a)*0.83+float64(b)*0.29)
		phi += 0.45 * math.Cos(float64(c)*0.57+float64(a)*0.11)
		const step = 3.8 // Å between consecutive Cα atoms
		x += step * math.Sin(theta) * math.Cos(phi)
		y += step * math.Sin(theta) * math.Sin(phi)
		z += step * math.Cos(theta)
		coords[i] = [3]float32{float32(x), float32(y), float32(z)}
	}
	return coords
}

// Crop returns a copy of s cropped (or padded by repetition) to exactly
// crop residues, starting at a deterministic offset. AlphaFold crops all
// training samples to a fixed length so local batches share one shape.
func (s *Sample) Crop(crop int, rng *rand.Rand) *Sample {
	out := &Sample{Index: s.Index, SeqLen: s.SeqLen, MSASize: s.MSASize}
	start := 0
	if len(s.Seq) > crop {
		start = rng.Intn(len(s.Seq) - crop)
	}
	idx := func(i int) int {
		j := start + i
		if j >= len(s.Seq) {
			j = len(s.Seq) - 1 // pad by repeating the terminal residue
		}
		return j
	}
	out.Seq = make([]int, crop)
	out.Coords = make([][3]float32, crop)
	for i := 0; i < crop; i++ {
		out.Seq[i] = s.Seq[idx(i)]
		out.Coords[i] = s.Coords[idx(i)]
	}
	out.MSA = make([][]int, len(s.MSA))
	for r := range s.MSA {
		row := make([]int, crop)
		for i := 0; i < crop; i++ {
			row[i] = s.MSA[r][idx(i)]
		}
		out.MSA[r] = row
	}
	return out
}
