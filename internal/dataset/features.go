package dataset

import (
	"math"
	"math/rand"

	"repro/internal/model"
	"repro/internal/tensor"
)

// Featurize converts a cropped sample into the model's input tensors under
// the given geometry. The MSA feature is a one-hot residue encoding plus a
// "differs from target" flag and a normalized column position; the target
// feature is the one-hot sequence; the template feature encodes a coarse
// distance matrix of a noisy copy of the true structure (standing in for
// real template hits); relpos is the clipped relative-position one-hot.
func Featurize(s *Sample, cfg model.Config, rng *rand.Rand) *model.Features {
	r := cfg.Crop
	if len(s.Seq) != r {
		panic("dataset: Featurize requires a sample cropped to cfg.Crop")
	}

	msa := tensor.New(cfg.MSADepth, r, cfg.MSAFeat)
	for row := 0; row < cfg.MSADepth; row++ {
		src := s.MSA[row%len(s.MSA)]
		for i := 0; i < r; i++ {
			base := (row*r + i) * cfg.MSAFeat
			aa := src[i]
			if aa < cfg.MSAFeat-2 {
				msa.Data[base+aa] = 1
			}
			if src[i] != s.Seq[i] {
				msa.Data[base+cfg.MSAFeat-2] = 1
			}
			msa.Data[base+cfg.MSAFeat-1] = float32(i) / float32(r)
		}
	}

	extra := tensor.New(cfg.ExtraMSA, r, cfg.MSAFeat)
	for row := 0; row < cfg.ExtraMSA; row++ {
		src := s.MSA[(row+1)%len(s.MSA)]
		for i := 0; i < r; i++ {
			base := (row*r + i) * cfg.MSAFeat
			aa := src[i]
			if aa < cfg.MSAFeat-2 {
				extra.Data[base+aa] = 1
			}
		}
	}

	target := tensor.New(r, cfg.TargetFeat)
	for i := 0; i < r; i++ {
		aa := s.Seq[i]
		if aa < cfg.TargetFeat {
			target.Data[i*cfg.TargetFeat+aa] = 1
		}
	}

	// Template: binned distances of a perturbed copy of the truth. Real
	// AlphaFold templates are homologous structures; noise keeps the model
	// from reading the answer directly off the template.
	tmpl := tensor.New(r, r, cfg.TemplFeat)
	noisy := make([][3]float32, r)
	for i := range noisy {
		for d := 0; d < 3; d++ {
			noisy[i][d] = s.Coords[i][d] + float32(rng.NormFloat64()*3.0)
		}
	}
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			d := dist(noisy[i], noisy[j])
			bin := int(d / 4.0)
			if bin >= cfg.TemplFeat {
				bin = cfg.TemplFeat - 1
			}
			tmpl.Data[(i*r+j)*cfg.TemplFeat+bin] = 1
		}
	}

	relpos := tensor.New(r, r, cfg.RelPosBins)
	half := cfg.RelPosBins / 2
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			d := j - i
			if d < -half {
				d = -half
			}
			if d > half {
				d = half
			}
			relpos.Data[(i*r+j)*cfg.RelPosBins+(d+half)] = 1
		}
	}

	return &model.Features{MSA: msa, ExtraMSA: extra, Target: target, Template: tmpl, RelPos: relpos}
}

// TrueDistances returns the pairwise Cα distance matrix of the sample's
// ground-truth structure as an [R,R] tensor. The trainer's loss compares
// predicted and true distance matrices (rotation/translation invariant).
func TrueDistances(s *Sample) *tensor.Tensor {
	r := len(s.Coords)
	out := tensor.New(r, r)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			out.Data[i*r+j] = dist(s.Coords[i], s.Coords[j])
		}
	}
	return out
}

func dist(a, b [3]float32) float32 {
	dx := float64(a[0] - b[0])
	dy := float64(a[1] - b[1])
	dz := float64(a[2] - b[2])
	return float32(math.Sqrt(dx*dx + dy*dy + dz*dz))
}
