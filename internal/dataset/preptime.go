package dataset

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// PrepTimeModel reproduces the Figure 4 distribution of batch preparation
// times: across ~20k batches of the OpenFold dataset, preparation takes
// between ~0.1 s and ~100 s — three orders of magnitude — depending on the
// sample's initial sequence length and MSA size, with roughly the slowest
// 10% of batches responsible for pipeline blocking (§3.1).
//
// The model is a deterministic function of the sample's pre-crop geometry
// plus a log-normal jitter: prep time grows linearly in sequence length and
// MSA size (alignment parsing and cropping cost), matching the paper's
// description that "depending on the data sample's initial sequence length
// and multi-sequence alignment size, the batch preparation time varies
// significantly".
type PrepTimeModel struct {
	// Base is the minimum preparation cost in seconds.
	Base float64
	// PerResidue and PerMSARow are the marginal costs in seconds.
	PerResidue float64
	PerMSARow  float64
	// JitterSigma is the σ of the multiplicative log-normal jitter.
	JitterSigma float64
	// HeavyTailProb is the probability a batch lands in the slow regime
	// (huge alignments); HeavyTailScale multiplies its cost.
	HeavyTailProb  float64
	HeavyTailScale float64
}

// DefaultPrepTimeModel is calibrated so that over the OpenFold-like sample
// distribution the sorted prep-time curve spans ~0.1–100 s with a median
// under 1 s and ≳10% of batches above 3 s, matching Figure 4's log-scale
// shape.
func DefaultPrepTimeModel() PrepTimeModel {
	return PrepTimeModel{
		Base:           0.08,
		PerResidue:     0.0012,
		PerMSARow:      0.00045,
		JitterSigma:    0.45,
		HeavyTailProb:  0.10,
		HeavyTailScale: 6,
	}
}

// Duration returns the preparation time for a sample, deterministically
// derived from the sample index and the model's seed. It reads nothing but
// the sample's index and pre-crop geometry; DurationAt is the same function
// without the materialized sample.
func (m PrepTimeModel) Duration(s *Sample, seed int64) time.Duration {
	return m.DurationAt(s.Index, s.SeqLen, s.MSASize, seed)
}

// DurationAt returns the preparation time of sample idx given its pre-crop
// geometry (Generator.Geometry's output), bit-identical to Duration on the
// materialized sample. The simulator hot path pairs it with Geometry so no
// protein is ever folded just to be timed.
func (m PrepTimeModel) DurationAt(idx, seqLen, msaSize int, seed int64) time.Duration {
	return m.durationAt(rand.New(rand.NewSource(seed*7_919+int64(idx))), seqLen, msaSize)
}

func (m PrepTimeModel) durationAt(rng *rand.Rand, seqLen, msaSize int) time.Duration {
	t := m.Base + m.PerResidue*float64(seqLen) + m.PerMSARow*float64(msaSize)
	t *= math.Exp(rng.NormFloat64() * m.JitterSigma)
	if rng.Float64() < m.HeavyTailProb {
		t *= m.HeavyTailScale * (0.8 + 0.7*rng.Float64())
		// A super-tail within the slow regime: gigantic alignments
		// (Figure 4's ~100 s extreme, roughly the slowest 0.5%).
		if rng.Float64() < 0.05 {
			t *= 3
		}
	}
	if t < 0.05 {
		t = 0.05
	}
	if t > 110 {
		t = 110
	}
	return time.Duration(t * float64(time.Second))
}

// PrepTimer evaluates a PrepTimeModel with a reusable RNG — DurationAt
// without the per-call generator allocation. Not safe for concurrent use;
// give each goroutine its own.
type PrepTimer struct {
	m   PrepTimeModel
	rng *rand.Rand
}

// Timer returns a reusable evaluator over m.
func (m PrepTimeModel) Timer() *PrepTimer {
	return &PrepTimer{m: m, rng: rand.New(rand.NewSource(0))}
}

// DurationAt matches PrepTimeModel.DurationAt bit for bit: reseeding
// positions the reused RNG exactly where a fresh one would start.
func (t *PrepTimer) DurationAt(idx, seqLen, msaSize int, seed int64) time.Duration {
	t.rng.Seed(seed*7_919 + int64(idx))
	return t.m.durationAt(t.rng, seqLen, msaSize)
}

// SortedPrepTimes returns the preparation times of the first n samples in
// ascending order, in seconds — the Figure 4 curve. It runs on the
// geometry-only fast path: no sample is materialized, no protein folded.
func SortedPrepTimes(gen *Generator, m PrepTimeModel, n int, seed int64) []float64 {
	out := make([]float64, n)
	gs := gen.Sampler()
	pt := m.Timer()
	for i := 0; i < n; i++ {
		seqLen, msaSize := gs.Geometry(i)
		out[i] = pt.DurationAt(i, seqLen, msaSize, seed).Seconds()
	}
	sort.Float64s(out)
	return out
}

// Quantile returns the q-quantile of an ascending-sorted slice. q is
// clamped to [0,1] (NaN included), so out-of-range requests return the
// minimum or maximum instead of indexing out of bounds.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if !(q > 0) { // catches q <= 0 and NaN
		q = 0
	} else if q > 1 {
		q = 1
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
