package dataset

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// PrepTimeModel reproduces the Figure 4 distribution of batch preparation
// times: across ~20k batches of the OpenFold dataset, preparation takes
// between ~0.1 s and ~100 s — three orders of magnitude — depending on the
// sample's initial sequence length and MSA size, with roughly the slowest
// 10% of batches responsible for pipeline blocking (§3.1).
//
// The model is a deterministic function of the sample's pre-crop geometry
// plus a log-normal jitter: prep time grows linearly in sequence length and
// MSA size (alignment parsing and cropping cost), matching the paper's
// description that "depending on the data sample's initial sequence length
// and multi-sequence alignment size, the batch preparation time varies
// significantly".
type PrepTimeModel struct {
	// Base is the minimum preparation cost in seconds.
	Base float64
	// PerResidue and PerMSARow are the marginal costs in seconds.
	PerResidue float64
	PerMSARow  float64
	// JitterSigma is the σ of the multiplicative log-normal jitter.
	JitterSigma float64
	// HeavyTailProb is the probability a batch lands in the slow regime
	// (huge alignments); HeavyTailScale multiplies its cost.
	HeavyTailProb  float64
	HeavyTailScale float64
}

// DefaultPrepTimeModel is calibrated so that over the OpenFold-like sample
// distribution the sorted prep-time curve spans ~0.1–100 s with a median
// under 1 s and ≳10% of batches above 3 s, matching Figure 4's log-scale
// shape.
func DefaultPrepTimeModel() PrepTimeModel {
	return PrepTimeModel{
		Base:           0.08,
		PerResidue:     0.0012,
		PerMSARow:      0.00045,
		JitterSigma:    0.45,
		HeavyTailProb:  0.10,
		HeavyTailScale: 6,
	}
}

// Duration returns the preparation time for a sample, deterministically
// derived from the sample index and the model's seed.
func (m PrepTimeModel) Duration(s *Sample, seed int64) time.Duration {
	rng := rand.New(rand.NewSource(seed*7_919 + int64(s.Index)))
	t := m.Base + m.PerResidue*float64(s.SeqLen) + m.PerMSARow*float64(s.MSASize)
	t *= math.Exp(rng.NormFloat64() * m.JitterSigma)
	if rng.Float64() < m.HeavyTailProb {
		t *= m.HeavyTailScale * (0.8 + 0.7*rng.Float64())
		// A super-tail within the slow regime: gigantic alignments
		// (Figure 4's ~100 s extreme, roughly the slowest 0.5%).
		if rng.Float64() < 0.05 {
			t *= 3
		}
	}
	if t < 0.05 {
		t = 0.05
	}
	if t > 110 {
		t = 110
	}
	return time.Duration(t * float64(time.Second))
}

// SortedPrepTimes generates n samples and returns their preparation times in
// ascending order, in seconds — the Figure 4 curve.
func SortedPrepTimes(gen *Generator, m PrepTimeModel, n int, seed int64) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		s := gen.Sample(i)
		out[i] = m.Duration(s, seed).Seconds()
	}
	sort.Float64s(out)
	return out
}

// Quantile returns the q-quantile (0..1) of an ascending-sorted slice.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
