package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestSampleDeterminism(t *testing.T) {
	g := NewGenerator(1)
	a := g.Sample(5)
	b := g.Sample(5)
	if len(a.Seq) != len(b.Seq) {
		t.Fatal("length differs")
	}
	for i := range a.Seq {
		if a.Seq[i] != b.Seq[i] {
			t.Fatal("sequence differs across calls")
		}
	}
	c := NewGenerator(2).Sample(5)
	same := len(a.Seq) == len(c.Seq)
	if same {
		identical := true
		for i := range a.Seq {
			if a.Seq[i] != c.Seq[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical samples")
		}
	}
}

func TestSampleGeometry(t *testing.T) {
	g := NewGenerator(3)
	for i := 0; i < 20; i++ {
		s := g.Sample(i)
		if len(s.Seq) < g.MinLen || len(s.Seq) > g.MaxLen {
			t.Fatalf("sample %d length %d out of [%d,%d]", i, len(s.Seq), g.MinLen, g.MaxLen)
		}
		if len(s.MSA) != g.MSADepth {
			t.Fatalf("MSA depth %d", len(s.MSA))
		}
		if len(s.Coords) != len(s.Seq) {
			t.Fatal("coords length mismatch")
		}
		for j := range s.MSA[0] {
			if s.MSA[0][j] != s.Seq[j] {
				t.Fatal("first MSA row must equal the target sequence")
			}
		}
	}
}

func TestFoldSequenceDeterministicAndChainLike(t *testing.T) {
	seq := []int{3, 7, 1, 9, 0, 12, 5, 5, 18, 2}
	a := FoldSequence(seq)
	b := FoldSequence(seq)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("folding is not deterministic")
		}
	}
	// Consecutive Cα atoms must be ~3.8 Å apart (chain constraint).
	for i := 1; i < len(a); i++ {
		d := float64(dist(a[i], a[i-1]))
		if math.Abs(d-3.8) > 1e-3 {
			t.Fatalf("bond %d length %v, want 3.8", i, d)
		}
	}
}

func TestFoldSimilarSequencesFoldSimilarly(t *testing.T) {
	seq := make([]int, 50)
	for i := range seq {
		seq[i] = (i * 7) % 20
	}
	mut := append([]int(nil), seq...)
	mut[49] = (mut[49] + 1) % 20 // mutate the final residue only
	a, b := FoldSequence(seq), FoldSequence(mut)
	// Prefix coordinates before the mutation window must agree.
	for i := 0; i < 45; i++ {
		if dist(a[i], b[i]) > 1e-3 {
			t.Fatalf("prefix diverged at %d", i)
		}
	}
}

func TestCropExactLength(t *testing.T) {
	g := NewGenerator(4)
	s := g.Sample(0)
	rng := rand.New(rand.NewSource(1))
	for _, crop := range []int{8, 16, len(s.Seq), len(s.Seq) + 10} {
		c := s.Crop(crop, rng)
		if len(c.Seq) != crop || len(c.Coords) != crop {
			t.Fatalf("crop to %d gave %d", crop, len(c.Seq))
		}
		for _, row := range c.MSA {
			if len(row) != crop {
				t.Fatal("MSA row not cropped")
			}
		}
		if c.SeqLen != s.SeqLen || c.MSASize != s.MSASize {
			t.Fatal("crop must preserve original geometry metadata")
		}
	}
}

func TestCropWindowIsContiguousProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := NewGenerator(seed)
		s := g.Sample(0)
		rng := rand.New(rand.NewSource(seed))
		crop := 10
		c := s.Crop(crop, rng)
		// The cropped sequence must appear as a contiguous window of s.Seq.
		for start := 0; start+crop <= len(s.Seq); start++ {
			match := true
			for i := 0; i < crop; i++ {
				if s.Seq[start+i] != c.Seq[i] {
					match = false
					break
				}
			}
			if match {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFeaturizeShapes(t *testing.T) {
	cfg := model.SmallConfig()
	g := NewGenerator(5)
	g.MSADepth = cfg.MSADepth
	rng := rand.New(rand.NewSource(2))
	s := g.Sample(0).Crop(cfg.Crop, rng)
	f := Featurize(s, cfg, rng)
	checks := [][2]interface{}{
		{f.MSA.Shape(), []int{cfg.MSADepth, cfg.Crop, cfg.MSAFeat}},
		{f.ExtraMSA.Shape(), []int{cfg.ExtraMSA, cfg.Crop, cfg.MSAFeat}},
		{f.Target.Shape(), []int{cfg.Crop, cfg.TargetFeat}},
		{f.Template.Shape(), []int{cfg.Crop, cfg.Crop, cfg.TemplFeat}},
		{f.RelPos.Shape(), []int{cfg.Crop, cfg.Crop, cfg.RelPosBins}},
	}
	for i, c := range checks {
		got := c[0].([]int)
		want := c[1].([]int)
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("feature %d shape %v want %v", i, got, want)
			}
		}
	}
}

func TestFeaturizeOneHotRows(t *testing.T) {
	cfg := model.SmallConfig()
	g := NewGenerator(6)
	g.MSADepth = cfg.MSADepth
	rng := rand.New(rand.NewSource(3))
	s := g.Sample(1).Crop(cfg.Crop, rng)
	f := Featurize(s, cfg, rng)
	// Target rows are one-hot.
	for i := 0; i < cfg.Crop; i++ {
		var sum float32
		for j := 0; j < cfg.TargetFeat; j++ {
			sum += f.Target.At(i, j)
		}
		if sum != 1 {
			t.Fatalf("target row %d sums to %v", i, sum)
		}
	}
	// RelPos rows are one-hot.
	for i := 0; i < cfg.Crop; i++ {
		for j := 0; j < cfg.Crop; j++ {
			var sum float32
			for b := 0; b < cfg.RelPosBins; b++ {
				sum += f.RelPos.At(i, j, b)
			}
			if sum != 1 {
				t.Fatalf("relpos (%d,%d) sums to %v", i, j, sum)
			}
		}
	}
}

func TestTrueDistancesSymmetricZeroDiagonal(t *testing.T) {
	g := NewGenerator(7)
	rng := rand.New(rand.NewSource(4))
	s := g.Sample(2).Crop(12, rng)
	d := TrueDistances(s)
	for i := 0; i < 12; i++ {
		if d.At(i, i) != 0 {
			t.Fatal("diagonal must be zero")
		}
		for j := 0; j < 12; j++ {
			if math.Abs(float64(d.At(i, j)-d.At(j, i))) > 1e-5 {
				t.Fatal("distance matrix must be symmetric")
			}
		}
	}
}

func TestPrepTimeDistributionMatchesFigure4(t *testing.T) {
	g := NewGenerator(8)
	m := DefaultPrepTimeModel()
	times := SortedPrepTimes(g, m, 2000, 9)
	minT, maxT := times[0], times[len(times)-1]
	med := Quantile(times, 0.5)
	p90 := Quantile(times, 0.9)
	// Figure 4: range 0.1..100 s (log scale), heavy right tail.
	if minT < 0.04 || minT > 1 {
		t.Fatalf("min prep time %v outside Figure-4 range", minT)
	}
	if maxT < 10 || maxT > 130 {
		t.Fatalf("max prep time %v outside Figure-4 range", maxT)
	}
	if med > 3 {
		t.Fatalf("median %v too slow", med)
	}
	if p90 < med*2 {
		t.Fatalf("distribution lacks the heavy tail: median %v p90 %v", med, p90)
	}
	// Spans at least two orders of magnitude.
	if maxT/minT < 100 {
		t.Fatalf("range %v-%v spans less than 2 decades", minT, maxT)
	}
}

func TestPrepTimeDeterministic(t *testing.T) {
	g := NewGenerator(10)
	m := DefaultPrepTimeModel()
	s := g.Sample(3)
	if m.Duration(s, 1) != m.Duration(s, 1) {
		t.Fatal("prep time must be deterministic")
	}
	if m.Duration(s, 1) == m.Duration(s, 2) {
		t.Fatal("different seeds should vary prep time")
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	// Out-of-range q clamps to the extremes instead of indexing out of
	// bounds (q=1.5 used to panic; q=-0.1 read a negative index).
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{-0.1, 1}, {0, 1}, {0.5, 3}, {1, 5}, {1.5, 5},
	} {
		if got := Quantile(s, tc.q); got != tc.want {
			t.Errorf("Quantile(s, %g) = %g; want %g", tc.q, got, tc.want)
		}
	}
	if got := Quantile(s, math.NaN()); got != 1 {
		t.Errorf("Quantile(s, NaN) = %g; want the minimum", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}
