package dataset

import (
	"testing"
)

// TestGeometryMatchesSample is the contract of the fast path: for every
// index, Geometry must report exactly the SeqLen/MSASize a materialized
// Sample carries — it replays the same RNG draw prefix, so any divergence
// means the prefix drifted and the simulator is costing a different dataset
// than the trainer sees.
func TestGeometryMatchesSample(t *testing.T) {
	n := 10_000
	if testing.Short() {
		n = 500 // keep the equivalence guard alive in the -race -short job
	}
	for _, seed := range []int64{1, 7, 102} {
		g := NewGenerator(seed)
		gs := g.Sampler()
		for idx := 0; idx < n; idx++ {
			s := g.Sample(idx)
			seqLen, msaSize := g.Geometry(idx)
			if seqLen != s.SeqLen || msaSize != s.MSASize {
				t.Fatalf("seed %d idx %d: Geometry (%d,%d) != Sample (%d,%d)",
					seed, idx, seqLen, msaSize, s.SeqLen, s.MSASize)
			}
			rl, rm := gs.Geometry(idx)
			if rl != seqLen || rm != msaSize {
				t.Fatalf("seed %d idx %d: GeomSampler (%d,%d) != Geometry (%d,%d)",
					seed, idx, rl, rm, seqLen, msaSize)
			}
		}
	}
}

// TestDurationAtMatchesDuration pins the prep-time side of the fast path:
// DurationAt on the geometry must be bit-identical to Duration on the
// materialized sample, with and without the reusable-RNG evaluator.
func TestDurationAtMatchesDuration(t *testing.T) {
	g := NewGenerator(11)
	m := DefaultPrepTimeModel()
	pt := m.Timer()
	for _, seed := range []int64{1, 7, 9} {
		for idx := 0; idx < 500; idx++ {
			s := g.Sample(idx)
			want := m.Duration(s, seed)
			if got := m.DurationAt(idx, s.SeqLen, s.MSASize, seed); got != want {
				t.Fatalf("seed %d idx %d: DurationAt %v != Duration %v", seed, idx, got, want)
			}
			if got := pt.DurationAt(idx, s.SeqLen, s.MSASize, seed); got != want {
				t.Fatalf("seed %d idx %d: PrepTimer %v != Duration %v", seed, idx, got, want)
			}
		}
	}
}

// TestGeomSamplerReseedExact guards the reuse trick itself: a reused RNG
// that visits indices out of order must still agree with fresh-RNG calls —
// Seed fully resets the generator state.
func TestGeomSamplerReseedExact(t *testing.T) {
	g := NewGenerator(42)
	gs := g.Sampler()
	order := []int{5, 0, 99, 5, 17, 0}
	for _, idx := range order {
		al, am := gs.Geometry(idx)
		bl, bm := g.Geometry(idx)
		if al != bl || am != bm {
			t.Fatalf("idx %d: reused RNG (%d,%d) != fresh RNG (%d,%d)", idx, al, am, bl, bm)
		}
	}
}

// BenchmarkGeometryVsSample documents why the fast path exists: the
// geometry-only draw skips the fold and the MSA rows.
func BenchmarkGeometryVsSample(b *testing.B) {
	g := NewGenerator(1)
	b.Run("Sample", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.Sample(i % 4096)
		}
	})
	b.Run("Geometry", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = g.Geometry(i % 4096)
		}
	})
	b.Run("GeomSampler", func(b *testing.B) {
		gs := g.Sampler()
		pt := DefaultPrepTimeModel().Timer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx := i % 4096
			seqLen, msaSize := gs.Geometry(idx)
			_ = pt.DurationAt(idx, seqLen, msaSize, 7)
		}
	})
}
