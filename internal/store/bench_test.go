package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
)

// BenchmarkStoreMillion characterizes the Disk store at the scale the lazy
// index exists for: one million records. Sub-benchmarks cover Put and Get
// throughput (sequential and concurrent, the latter against an in-bench
// replica of the pre-sharding single-lock design), reopen latency warm
// (sidecars) and cold (full replay), and resident index memory against the
// decoded-values-in-a-map baseline. CI runs this with -benchtime 1x and
// publishes the JSON stream as BENCH_store.json.
//
// Scale with the env knob: SCALEFOLD_BENCH_RECORDS=100000 for a quick local
// run (default 1e6).
func BenchmarkStoreMillion(b *testing.B) {
	n := benchRecords()
	b.Run("put", func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			dir := b.TempDir()
			d, err := OpenDisk[cluster.Result](dir)
			if err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			for i := 0; i < n; i++ {
				if err := d.Put(benchKey(i), benchResult(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)/time.Since(start).Seconds(), "puts/s")
			if err := d.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})

	dir := benchSeedDir(b, n)

	b.Run("get", func(b *testing.B) {
		d := benchOpen(b, dir)
		defer d.Close()
		rng := rand.New(rand.NewSource(1))
		start := time.Now()
		ops := 0
		for it := 0; it < b.N; it++ {
			for i := 0; i < n/10; i++ {
				k := benchKey(rng.Intn(n))
				if _, ok := d.Get(k); !ok {
					b.Fatalf("miss on %s", k)
				}
				ops++
			}
		}
		b.ReportMetric(float64(ops)/time.Since(start).Seconds(), "gets/s")
	})

	// Concurrent mixed workload (15/16 Get over a cache-resident hot set,
	// 1/16 Put) on the sharded index vs the identical store collapsed to a
	// single lock (WithShards(1)) — the pre-sharding design's global-mutex
	// bottleneck. Every Get serializes on the one mutex there, while the
	// 64-shard store spreads them; the ratio tracks core count, so a
	// single-CPU runner reports ~1× and the ≥4× separation shows on
	// multi-core CI hardware.
	const mixedOps = 1 << 17
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"mixed-parallel", DefaultShards},
		{"mixed-parallel-single-lock", 1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			d, err := OpenDisk[cluster.Result](dir, WithShards(cfg.shards))
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			ops := benchMixed(b, n, mixedOps, d.Get, d.Put)
			b.ReportMetric(ops, "ops/s")
		})
	}

	b.Run("reopen-warm", func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			start := time.Now()
			d := benchOpen(b, dir)
			b.ReportMetric(time.Since(start).Seconds()*1000, "ms/open")
			if d.Replayed() != 0 {
				b.Fatalf("warm reopen parsed %d records", d.Replayed())
			}
			if d.Len() != n {
				b.Fatalf("len = %d, want %d", d.Len(), n)
			}
			d.Close()
		}
	})

	b.Run("reopen-cold", func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			cold := benchCloneWithoutSidecars(b, dir)
			start := time.Now()
			d, err := OpenDisk[cluster.Result](cold)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(time.Since(start).Seconds()*1000, "ms/open")
			if d.Len() != n {
				b.Fatalf("len = %d, want %d", d.Len(), n)
			}
			d.Close()
		}
	})

	// Resident index memory per record, against the decoded-map baseline
	// (what the pre-lazy store held: every cluster.Result live in a
	// map[string]Result).
	b.Run("index-bytes", func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			lazy := residentBytes(b, func() func() {
				d := benchOpen(b, dir)
				return func() { d.Close() }
			})
			baseline := residentBytes(b, func() func() {
				m := make(map[string]cluster.Result, n)
				for i := 0; i < n; i++ {
					m[benchKey(i)] = benchResult(i)
				}
				return func() { runtime.KeepAlive(m) }
			})
			b.ReportMetric(float64(lazy)/float64(n), "index-B/rec")
			b.ReportMetric(float64(baseline)/float64(n), "baseline-B/rec")
			b.ReportMetric(float64(baseline)/float64(lazy), "mem-ratio")
		}
	})
}

func benchRecords() int {
	if s := os.Getenv("SCALEFOLD_BENCH_RECORDS"); s != "" {
		var n int
		if _, err := fmt.Sscanf(s, "%d", &n); err == nil && n > 0 {
			return n
		}
	}
	return 1_000_000
}

func benchKey(i int) string { return fmt.Sprintf("v3:%032x", i) }

// benchResult fills a cluster.Result with plausible nonzero values so its
// JSON lines are realistically sized.
func benchResult(i int) cluster.Result {
	d := time.Duration(i%1000+1) * time.Millisecond
	var r cluster.Result
	r.MeanStep = 170*time.Millisecond + d
	r.MedianStep = 160*time.Millisecond + d
	r.P99Step = 500*time.Millisecond + d
	r.GraphCapture = 30 * time.Second
	r.Break.GPUCompute = 120 * time.Millisecond
	r.Break.CPUExposed = 10 * time.Millisecond
	r.Break.DataWait = d / 7
	r.Break.CommXfer = 20 * time.Millisecond
	r.Break.CommWait = d / 11
	return r
}

var benchSeeds sync.Map // n → *benchSeedState

type benchSeedState struct {
	once sync.Once
	dir  string
	err  error
}

// benchSeedDir builds (once per process per size) a store directory holding
// n records, shared by the read-side sub-benchmarks.
func benchSeedDir(b *testing.B, n int) string {
	v, _ := benchSeeds.LoadOrStore(n, &benchSeedState{})
	st := v.(*benchSeedState)
	st.once.Do(func() {
		dir, err := os.MkdirTemp("", "scalefold-bench-store-")
		if err != nil {
			st.err = err
			return
		}
		d, err := OpenDisk[cluster.Result](dir)
		if err != nil {
			st.err = err
			return
		}
		for i := 0; i < n; i++ {
			if err := d.Put(benchKey(i), benchResult(i)); err != nil {
				st.err = err
				return
			}
		}
		if err := d.Close(); err != nil {
			st.err = err
			return
		}
		st.dir = dir
	})
	if st.err != nil {
		b.Fatal(st.err)
	}
	return st.dir
}

func benchOpen(b *testing.B, dir string) *Disk[cluster.Result] {
	b.Helper()
	d, err := OpenDisk[cluster.Result](dir)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// benchCloneWithoutSidecars hard-links the seed segments into a fresh dir,
// leaving the sidecars behind — a cold open against the same data.
func benchCloneWithoutSidecars(b *testing.B, dir string) string {
	b.Helper()
	cold := b.TempDir()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range segs {
		if err := os.Link(s, filepath.Join(cold, filepath.Base(s))); err != nil {
			b.Fatal(err)
		}
	}
	return cold
}

// benchMixed drives the mixed Get/Put workload with 2×GOMAXPROCS goroutines
// and reports aggregate ops/s. Gets draw from a hot set small enough to stay
// resident in the decode cache — a sweep recomputing figures over a settled
// store — so the measurement isolates index locking, not JSON decode.
func benchMixed(b *testing.B, n, total int,
	get func(string) (cluster.Result, bool), put func(string, cluster.Result) error,
) float64 {
	b.Helper()
	hot := DefaultCacheEntries / 2
	if hot > n {
		hot = n
	}
	workers := 2 * runtime.GOMAXPROCS(0)
	perWorker := total / workers
	var best float64
	for it := 0; it < b.N; it++ {
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < perWorker; i++ {
					if i%16 == 15 {
						if err := put(benchKey(rng.Intn(n)), benchResult(i)); err != nil {
							b.Error(err)
							return
						}
					} else if k := benchKey(rng.Intn(hot)); true {
						if _, ok := get(k); !ok {
							b.Errorf("miss on %s", k)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		if ops := float64(perWorker*workers) / time.Since(start).Seconds(); ops > best {
			best = ops
		}
	}
	return best
}

// residentBytes measures the heap growth attributable to build(), holding
// its product live across the measurement.
func residentBytes(b *testing.B, build func() func()) int64 {
	b.Helper()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	release := build()
	runtime.GC()
	runtime.ReadMemStats(&after)
	grown := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	release()
	return grown
}
