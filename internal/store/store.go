// Package store persists scenario results across process lifetimes. The
// sweep engine's in-memory memo (sweep.Cache) dies with the process; a Store
// is the durable layer underneath it, keyed by the same canonical scenario
// fingerprint (cluster.Options.Fingerprint plus the kernel-census options),
// so a result simulated by one `scalefold sweep`, one figure runner or one
// sweep-service job is served for free to every later one.
//
// Two implementations ship: Mem, a trivial map for tests and store-less
// serving, and Disk, an append-only JSON-lines segment log reloaded at
// startup. Both are safe for concurrent use.
package store

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Store is the persistence interface the scalefold memo sits on. Get and Put
// must be safe for concurrent use. Put overwrites: the last value written
// for a key wins. Unlike sweep.Cache there is no singleflight here — in-
// flight deduplication stays the memo's job; the store only settles results.
type Store[R any] interface {
	// Get returns the stored value for key, if any.
	Get(key string) (R, bool)
	// Put stores the value under key, replacing any previous value.
	Put(key string, v R) error
	// Keys returns every stored key, sorted.
	Keys() []string
	// Len returns the number of stored keys.
	Len() int
}

// Mem is an in-memory Store: process-lifetime persistence only. Useful for
// tests and for running the sweep service without a disk directory.
type Mem[R any] struct {
	mu  sync.RWMutex
	m   map[string]R
	met atomic.Pointer[Metrics]
}

// NewMem returns an empty in-memory store.
func NewMem[R any]() *Mem[R] { return &Mem[R]{m: map[string]R{}} }

// SetMetrics attaches (or, with nil, detaches) observability series. Safe to
// call at any time, including while the store is in use.
func (s *Mem[R]) SetMetrics(m *Metrics) {
	s.met.Store(m)
	m.records(s.Len())
}

// Get returns the stored value for key, if any.
func (s *Mem[R]) Get(key string) (R, bool) {
	mt := s.met.Load()
	t0 := mt.start()
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	mt.lookup(t0, ok)
	return v, ok
}

// Put stores the value under key. It never fails.
func (s *Mem[R]) Put(key string, v R) error {
	mt := s.met.Load()
	t0 := mt.start()
	s.mu.Lock()
	s.m[key] = v
	n := len(s.m)
	s.mu.Unlock()
	mt.appended(t0, n)
	return nil
}

// Keys returns every stored key, sorted.
func (s *Mem[R]) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of stored keys.
func (s *Mem[R]) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}
