package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
)

// DefaultSegmentBytes is the segment-rotation threshold of a Disk store.
const DefaultSegmentBytes = 4 << 20

// record is one log line: a key and its JSON-encoded value.
type record struct {
	Key string          `json:"k"`
	Val json.RawMessage `json:"v"`
}

// Disk is a disk-persistent Store built for millions of records: an
// append-only log of JSON-lines segment files (seg-00000001.jsonl, ...)
// under a fingerprint-sharded lazy index. The index maps key →
// (segment, offset, length) — a few tens of bytes per record instead of a
// decoded value — and Get decodes on demand through a small bounded LRU of
// hot entries. Each sealed segment carries a sidecar seg-N.idx (written at
// rotation and Close), so a warm reopen loads offsets instead of re-parsing
// JSON; segments without a valid sidecar replay concurrently, and a
// replayed sealed segment gets its sidecar rewritten so the next open is
// warm. Within and across segments the last write for a key wins; a crash
// can at worst lose the final, partially written line — detected and
// dropped at replay (see Dropped).
//
// The on-disk record format is unchanged from the first Disk generation:
// existing store directories keep serving with no key changes, and
// directories written by this version replay fine without their sidecars.
//
// Values round-trip through encoding/json, so R must marshal losslessly
// (cluster.Result does: integer counts, nanosecond time.Durations, and
// float64 shares/ratios, which Go's JSON encoder emits with shortest
// round-trip precision). All methods are safe for concurrent use.
type Disk[R any] struct {
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	// Set it before the first Put; it is read under the store lock.
	SegmentBytes int64

	dir  string
	lock *os.File // flock-held .lock file: one process owns the directory
	cfg  config
	met  atomic.Pointer[Metrics]

	idx *index[R]
	tab *segTable

	// Writer state: the active segment and the entry log that becomes its
	// sidecar at seal time. Reads never take wmu — they go through the
	// sharded index and per-segment read handles.
	wmu     sync.Mutex
	seg     *os.File // active segment; nil until the first Put
	segID   int32    // its id in the segment table
	segPath string
	segSize int64
	segSeq  int  // sequence number of the last segment (existing or active)
	torn    bool // last write failed: rotate before appending again
	closed  bool
	pending []sideEntry      // active segment's records, for its sidecar
	live    map[int32]string // id → path of this store's current segments

	dropped  atomic.Int64
	replayed atomic.Int64
}

// SetMetrics attaches (or, with nil, detaches) observability series. Safe to
// call at any time, including while the store is in use.
func (d *Disk[R]) SetMetrics(m *Metrics) {
	d.met.Store(m)
	m.records(d.Len())
}

// OpenDisk opens (creating if needed) a disk store rooted at dir and builds
// its index: sidecar-indexed segments load without touching record bytes,
// the rest replay concurrently (line parse errors — the torn tail of a
// crashed process — are skipped and counted, never fatal). A missing
// directory is created.
//
// The directory is single-writer: OpenDisk takes an exclusive flock on
// dir/.lock (released by Close, or automatically when the process dies), so
// a second process pointing at the same directory fails fast instead of
// interleaving segment writes and serving a stale index. To share a live
// store across processes, submit jobs to the server that holds it, or use
// OpenShared's per-owner leases.
func OpenDisk[R any](dir string, opts ...Option) (*Disk[R], error) {
	cfg := buildConfig(opts)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: %s is held by another process (the store is single-writer): %w", dir, err)
	}
	d := &Disk[R]{
		SegmentBytes: DefaultSegmentBytes,
		dir:          dir,
		lock:         lock,
		cfg:          cfg,
		tab:          &segTable{},
		live:         map[int32]string{},
	}
	d.met.Store(cfg.metrics)
	d.idx = newIndex[R](cfg.shards, cfg.cacheEntries, cfg.legacy, &d.met)
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(segs) // zero-padded names sort in write order
	// Register ids in name order so the index's (segment, offset) versioning
	// matches write order, then replay concurrently — last-write-wins is
	// resolved per key by that versioning, not by replay scheduling.
	ids := make([]int32, len(segs))
	for i, path := range segs {
		ids[i] = d.tab.add(path)
		d.live[ids[i]] = path
	}
	if err := replayAll(d.idx, d.tab, segs, ids, replayOpts{
		selfHeal: true, tornIsDropped: true,
		dropped: &d.dropped, replayed: &d.replayed, met: &d.met,
	}); err != nil {
		lock.Close()
		return nil, err
	}
	// Resume numbering after the newest existing plain segment. New writes
	// always start a fresh segment: the old tail may end in a torn line.
	// Owner-named segments (a Shared fleet's leases, replayed above like any
	// other) live in their own namespaces and don't advance ours.
	for _, path := range segs {
		if n, ok := segSeqOf(filepath.Base(path), "seg-"); ok && n > d.segSeq {
			d.segSeq = n
		}
	}
	return d, nil
}

// replayOpts parameterizes segment replay between Disk (heal sidecars,
// count torn tails as dropped) and Shared (own segments heal, foreign
// tails stay pending).
type replayOpts struct {
	selfHeal      bool // rewrite missing/stale sidecars after replay
	tornIsDropped bool // a trailing newline-less line counts as dropped
	dropped       *atomic.Int64
	replayed      *atomic.Int64
	met           *atomic.Pointer[Metrics]
}

// replayAll loads segments into the index, a bounded worker per segment.
func replayAll[R any](ix *index[R], tab *segTable, paths []string, ids []int32, o replayOpts) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(paths) {
		workers = len(paths)
	}
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	for i := range paths {
		wg.Add(1)
		sem <- struct{}{}
		go func(path string, id int32) {
			defer func() { <-sem; wg.Done() }()
			if err := replayOne(ix, path, id, o); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(paths[i], ids[i])
	}
	wg.Wait()
	return firstErr
}

// replayOne indexes one segment: sidecar entries for the covered prefix,
// a scan for whatever the sidecar does not cover, and (optionally) a
// rewritten sidecar so the next open takes the fast path.
func replayOne[R any](ix *index[R], path string, id int32, o replayOpts) error {
	st, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size := st.Size()
	if size > maxSegmentOff {
		return fmt.Errorf("store: %s: %w", path, errSegmentTooLarge)
	}
	entries, dropped, covered, warm := loadSidecar(path, size)
	if warm {
		o.met.Load().sidecarLoad()
	} else {
		entries, dropped, covered = nil, 0, 0
	}
	torn := false
	if covered < size {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := f.Seek(covered, 0); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		res, err := scanSegment(f, covered)
		f.Close()
		if err != nil {
			return fmt.Errorf("store: reading %s: %w", path, err)
		}
		entries = append(entries, res.entries...)
		dropped += res.dropped
		covered += res.consumed
		torn = res.torn
		o.replayed.Add(int64(res.parsed))
		// The scan did work a sidecar would have avoided: seal what we
		// learned so the next open of this (now static) segment is warm.
		if o.selfHeal && res.parsed > 0 {
			if writeSidecar(path, covered, dropped, entries) == nil {
				o.met.Load().sidecarRebuild()
			}
		}
	}
	for _, e := range entries {
		ix.setIfNewer(e.Key, ref{off: e.Off, llen: e.Len, seg: id}, nil)
	}
	o.dropped.Add(int64(dropped))
	if torn && o.tornIsDropped {
		o.dropped.Add(1)
	}
	return nil
}

// Get returns the stored value for key, if any: an index hit serves from
// the decode cache or reads exactly one record's bytes off disk. A ref
// invalidated by a concurrent compaction retries once through the index.
func (d *Disk[R]) Get(key string) (R, bool) {
	mt := d.met.Load()
	t0 := mt.start()
	v, ok := getLazy(d.idx, d.tab, key, &d.met)
	mt.lookup(t0, ok)
	return v, ok
}

// getLazy is the shared Disk/Shared read path: index → LRU → one pread.
func getLazy[R any](ix *index[R], tab *segTable, key string, met *atomic.Pointer[Metrics]) (R, bool) {
	var zero R
	for attempt := 0; attempt < 2; attempt++ {
		v, rf, cached, ok := ix.cachedOrRef(key)
		if !ok {
			return zero, false
		}
		if cached {
			return v, true
		}
		got, err := fetchRecord[R](tab, rf, key)
		if err == nil {
			ix.admit(key, rf, got)
			return got, true
		}
		if errors.Is(err, errStaleRef) {
			continue // compaction moved the record; re-resolve
		}
		met.Load().decodeError()
		return zero, false
	}
	return zero, false
}

// Put appends the record to the active segment and updates the index. The
// write is a single syscall (no userspace buffering), so a settled Put is on
// the page cache even if the process dies; Sync forces it to the platter.
func (d *Disk[R]) Put(key string, v R) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	line, err := encodeRecord(key, v)
	if err != nil {
		return err
	}
	mt := d.met.Load()
	t0 := mt.start()
	d.wmu.Lock()
	if d.closed {
		d.wmu.Unlock()
		return fmt.Errorf("store: closed")
	}
	if d.seg == nil || d.segSize >= d.SegmentBytes || d.torn ||
		d.segSize+int64(len(line)) > maxSegmentOff {
		if err := d.rotateLocked(); err != nil {
			d.wmu.Unlock()
			return err
		}
	}
	if _, err := d.seg.Write(line); err != nil {
		// A short write may have left a torn, newline-less tail; another
		// append would glue onto it and corrupt BOTH records on reload.
		// Rotate before the next write — reload then drops only the torn
		// line, whose Put already reported failure.
		d.torn = true
		d.wmu.Unlock()
		return fmt.Errorf("store: %w", err)
	}
	rf := ref{off: uint32(d.segSize), llen: uint32(len(line) - 1), seg: d.segID}
	d.pending = append(d.pending, sideEntry{Off: rf.off, Len: rf.llen, Key: key})
	d.segSize += int64(len(line))
	// Index before releasing wmu: Compact snapshots the index under wmu and
	// deletes the superseded segment files, so a Put that has written its
	// bytes must be visible to that snapshot or the acknowledged write is
	// lost with its segment. setIfNewer only takes a per-shard lock (which
	// never waits on wmu), so this cannot deadlock.
	d.idx.setIfNewer(key, rf, &v)
	d.wmu.Unlock()
	mt.appended(t0, int(d.idx.count.Load()))
	return nil
}

// encodeRecord renders one log line (including the trailing newline).
func encodeRecord[R any](key string, v R) ([]byte, error) {
	val, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	line, err := json.Marshal(record{Key: key, Val: val})
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return append(line, '\n'), nil
}

// rotateLocked seals the active segment (sidecar + close) and opens the
// next one. Callers hold wmu.
func (d *Disk[R]) rotateLocked() error {
	if err := d.sealLocked(); err != nil {
		return err
	}
	d.torn = false
	d.segSeq++
	path := filepath.Join(d.dir, fmt.Sprintf("seg-%08d.jsonl", d.segSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	d.seg, d.segPath, d.segSize, d.pending = f, path, 0, nil
	d.segID = d.tab.add(path)
	d.live[d.segID] = path
	d.met.Load().rotated()
	return nil
}

// sealLocked closes the active segment, writing its sidecar first so the
// next open never replays it. Sidecar failures are swallowed: the sidecar
// is a cache, and replay rebuilds it. Callers hold wmu.
func (d *Disk[R]) sealLocked() error {
	if d.seg == nil {
		return nil
	}
	if writeSidecar(d.segPath, d.segSize, 0, d.pending) == nil {
		d.met.Load().sidecarRebuild()
	}
	if err := d.seg.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	d.seg, d.pending = nil, nil
	return nil
}

// Keys returns every stored key, sorted. O(n log n) — prefer Len for
// stats-style callers.
func (d *Disk[R]) Keys() []string { return d.idx.keys() }

// Len returns the number of stored keys. Allocation-free: a single atomic
// load off the sharded index.
func (d *Disk[R]) Len() int { return int(d.idx.count.Load()) }

// Legacy returns how many stored keys the configured WithLegacyKey
// predicate classifies as legacy (pre-current-fingerprint generations).
// Counted incrementally during replay and Put — never by rescanning keys —
// and reduced by Compact, which drops legacy records. Zero when the store
// was opened without a predicate.
func (d *Disk[R]) Legacy() int { return int(d.idx.legacy.Load()) }

// Dropped returns how many unparsable log lines the open-time replay skipped
// — normally zero; nonzero after a crash tore the final line, or if a
// segment was corrupted out-of-band.
func (d *Disk[R]) Dropped() int { return int(d.dropped.Load()) }

// Replayed returns how many record lines were JSON-parsed while opening the
// store. A warm open — every segment carrying a valid sidecar — reports 0:
// the index was built from offsets alone.
func (d *Disk[R]) Replayed() int { return int(d.replayed.Load()) }

// Dir returns the directory backing the store.
func (d *Disk[R]) Dir() string { return d.dir }

// Sync forces the active segment to stable storage.
func (d *Disk[R]) Sync() error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.seg == nil {
		return nil
	}
	if err := d.seg.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close seals the active segment (sidecar included, so the next open is
// warm), closes every read handle and releases the directory lock. The
// index stays readable; Put fails after Close.
func (d *Disk[R]) Close() error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var err error
	if d.seg != nil {
		err = d.seg.Sync()
		if serr := d.sealLocked(); err == nil {
			err = serr
		}
	}
	d.tab.closeAll()
	if d.lock != nil {
		if cerr := d.lock.Close(); err == nil {
			err = cerr
		}
		d.lock = nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
