package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
)

// DefaultSegmentBytes is the segment-rotation threshold of a Disk store.
const DefaultSegmentBytes = 4 << 20

// record is one log line: a key and its JSON-encoded value.
type record struct {
	Key string          `json:"k"`
	Val json.RawMessage `json:"v"`
}

// Disk is a disk-persistent Store: an append-only log of JSON-lines segment
// files (seg-00000001.jsonl, seg-00000002.jsonl, ...) plus an in-memory index
// rebuilt by replaying every segment at open time. Writes append one line per
// Put and rotate to a fresh segment past SegmentBytes; reads are index
// lookups and never touch the disk. Within and across segments the last
// write for a key wins, so overwrites need no in-place mutation and a
// crash can at worst lose the final, partially written line — which reload
// detects and drops (see Dropped).
//
// Values round-trip through encoding/json, so R must marshal losslessly
// (cluster.Result does: integer counts, nanosecond time.Durations, and
// float64 shares/ratios, which Go's JSON encoder emits with shortest
// round-trip precision). All methods are safe for concurrent use.
type Disk[R any] struct {
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	// Set it before the first Put; it is read under the store lock.
	SegmentBytes int64

	mu      sync.RWMutex
	dir     string
	lock    *os.File // flock-held .lock file: one process owns the directory
	idx     map[string]R
	seg     *os.File // active segment; nil until the first Put
	segSize int64
	segSeq  int  // sequence number of the last segment (existing or active)
	torn    bool // last write failed: rotate before appending again
	dropped int
	closed  bool
	met     atomic.Pointer[Metrics]
}

// SetMetrics attaches (or, with nil, detaches) observability series. Safe to
// call at any time, including while the store is in use.
func (d *Disk[R]) SetMetrics(m *Metrics) {
	d.met.Store(m)
	m.records(d.Len())
}

// OpenDisk opens (creating if needed) a disk store rooted at dir and replays
// its segments into the in-memory index. Lines that fail to parse — the torn
// tail of a crashed process — are skipped and counted, never fatal; a
// missing directory is created.
//
// The directory is single-writer: OpenDisk takes an exclusive flock on
// dir/.lock (released by Close, or automatically when the process dies), so
// a second process pointing at the same directory fails fast instead of
// interleaving segment writes and serving a stale index. To share a live
// store across processes, submit jobs to the server that holds it.
func OpenDisk[R any](dir string) (*Disk[R], error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: %s is held by another process (the store is single-writer): %w", dir, err)
	}
	d := &Disk[R]{SegmentBytes: DefaultSegmentBytes, dir: dir, lock: lock, idx: map[string]R{}}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(segs) // zero-padded names sort in write order
	for _, path := range segs {
		if err := d.replay(path); err != nil {
			lock.Close()
			return nil, err
		}
	}
	// Resume numbering after the newest existing plain segment. New writes
	// always start a fresh segment: the old tail may end in a torn line.
	// Owner-named segments (a Shared fleet's leases, replayed above like any
	// other) live in their own namespaces and don't advance ours.
	for _, path := range segs {
		if n, ok := segSeqOf(filepath.Base(path), "seg-"); ok && n > d.segSeq {
			d.segSeq = n
		}
	}
	return d, nil
}

// replay loads one segment file into the index.
func (d *Disk[R]) replay(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec record
		var v R
		if json.Unmarshal(line, &rec) != nil || rec.Key == "" || json.Unmarshal(rec.Val, &v) != nil {
			d.dropped++
			continue
		}
		d.idx[rec.Key] = v
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: reading %s: %w", path, err)
	}
	return nil
}

// Get returns the stored value for key, if any.
func (d *Disk[R]) Get(key string) (R, bool) {
	mt := d.met.Load()
	t0 := mt.start()
	d.mu.RLock()
	v, ok := d.idx[key]
	d.mu.RUnlock()
	mt.lookup(t0, ok)
	return v, ok
}

// Put appends the record to the active segment and updates the index. The
// write is a single syscall (no userspace buffering), so a settled Put is on
// the page cache even if the process dies; Sync forces it to the platter.
func (d *Disk[R]) Put(key string, v R) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	val, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	line, err := json.Marshal(record{Key: key, Val: val})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')
	mt := d.met.Load()
	t0 := mt.start()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("store: closed")
	}
	if d.seg == nil || d.segSize >= d.SegmentBytes || d.torn {
		if err := d.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := d.seg.Write(line); err != nil {
		// A short write may have left a torn, newline-less tail; another
		// append would glue onto it and corrupt BOTH records on reload.
		// Rotate before the next write — reload then drops only the torn
		// line, whose Put already reported failure.
		d.torn = true
		return fmt.Errorf("store: %w", err)
	}
	d.segSize += int64(len(line))
	d.idx[key] = v
	mt.appended(t0, len(d.idx))
	return nil
}

// rotateLocked closes the active segment and opens the next one.
func (d *Disk[R]) rotateLocked() error {
	if d.seg != nil {
		if err := d.seg.Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		d.seg = nil
	}
	d.torn = false
	d.segSeq++
	path := filepath.Join(d.dir, fmt.Sprintf("seg-%08d.jsonl", d.segSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	d.seg, d.segSize = f, 0
	d.met.Load().rotated()
	return nil
}

// Keys returns every stored key, sorted.
func (d *Disk[R]) Keys() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	keys := make([]string, 0, len(d.idx))
	for k := range d.idx {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of stored keys.
func (d *Disk[R]) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.idx)
}

// Dropped returns how many unparsable log lines the open-time replay skipped
// — normally zero; nonzero after a crash tore the final line, or if a
// segment was corrupted out-of-band.
func (d *Disk[R]) Dropped() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.dropped
}

// Dir returns the directory backing the store.
func (d *Disk[R]) Dir() string { return d.dir }

// Sync forces the active segment to stable storage.
func (d *Disk[R]) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seg == nil {
		return nil
	}
	if err := d.seg.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close syncs and closes the active segment and releases the directory
// lock. The index stays readable; Put fails after Close.
func (d *Disk[R]) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var err error
	if d.seg != nil {
		err = d.seg.Sync()
		if cerr := d.seg.Close(); err == nil {
			err = cerr
		}
		d.seg = nil
	}
	if d.lock != nil {
		if cerr := d.lock.Close(); err == nil {
			err = cerr
		}
		d.lock = nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
