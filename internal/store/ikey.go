package store

import "encoding/hex"

// ikey is a compact inline form of a store key, sized so the index costs a
// few tens of bytes per record instead of a decoded value. Two encodings
// cover every key the repo mints, and a per-shard overflow map catches the
// rest:
//
//   - ikeyHex: versioned fingerprint keys — "v<N>:" + 32 lowercase hex
//     digits (scenario.Fingerprint's v3/v4/v5 generations). The 16 hash
//     bytes are stored raw and the version in a byte, so a 35-character
//     key costs 17 bytes inline.
//   - ikeyRaw: any other key of at most ikeyInline bytes, stored verbatim.
//
// Longer keys report !ok from makeIkey and live in the shard's overflow
// map[string]ref — correct for arbitrary keys, just not compact.
type ikey struct {
	kind byte // ikeyEmpty, ikeyRaw or ikeyHex
	n    byte // ikeyRaw: key length; ikeyHex: fingerprint version
	b    [ikeyInline]byte
}

const (
	ikeyEmpty = iota // zero value: a free index slot
	ikeyRaw
	ikeyHex

	// ikeyInline is the inline key capacity: exactly the 16 raw hash bytes
	// of a fingerprint key, keeping the index slot (ikey + packed ref) at
	// 32 bytes. Short ad-hoc keys fit too; anything longer overflows to the
	// shard map.
	ikeyInline = 16

	fingerprintHexLen = 32 // hex digits in a versioned fingerprint key
)

// makeIkey encodes key inline. ok is false when the key needs the overflow
// map instead.
func makeIkey(key string) (ikey, bool) {
	if v, sum, isFP := splitFingerprint(key); isFP {
		k := ikey{kind: ikeyHex, n: v}
		copy(k.b[:], sum)
		return k, true
	}
	if len(key) <= ikeyInline && len(key) > 0 {
		k := ikey{kind: ikeyRaw, n: byte(len(key))}
		copy(k.b[:], key)
		return k, true
	}
	return ikey{}, false
}

// splitFingerprint parses "v<N>:<32 hex>" into (version, 16 raw bytes).
// Anything else — including uppercase hex, versions above 255, or a
// non-canonical leading-zero version ("v05:") — reports false and takes the
// raw/overflow path. The canonicality requirement matters for correctness,
// not just compactness: the inline encoding keeps only the numeric version,
// and ikey.String() reconstructs the canonical spelling, so admitting
// "v05:X" would make it alias "v5:X" in slot probes and strand entries on
// rehash.
func splitFingerprint(key string) (byte, []byte, bool) {
	if len(key) < 3+fingerprintHexLen || key[0] != 'v' {
		return 0, nil, false
	}
	v := 0
	i := 1
	for ; i < len(key) && key[i] != ':'; i++ {
		c := key[i]
		if c < '0' || c > '9' || i > 3 {
			return 0, nil, false
		}
		v = v*10 + int(c-'0')
	}
	if i == 1 || v > 255 || i >= len(key) || len(key)-i-1 != fingerprintHexLen {
		return 0, nil, false
	}
	if key[1] == '0' && i > 2 { // leading zero: "v05" is not canonical "v5"
		return 0, nil, false
	}
	hexPart := key[i+1:]
	for j := 0; j < len(hexPart); j++ {
		c := hexPart[j]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return 0, nil, false
		}
	}
	sum, err := hex.DecodeString(hexPart)
	if err != nil {
		return 0, nil, false
	}
	return byte(v), sum, true
}

// String reconstructs the original key.
func (k ikey) String() string {
	switch k.kind {
	case ikeyRaw:
		return string(k.b[:k.n])
	case ikeyHex:
		buf := make([]byte, 0, 4+fingerprintHexLen)
		buf = append(buf, 'v')
		if k.n >= 100 {
			buf = append(buf, '0'+k.n/100)
		}
		if k.n >= 10 {
			buf = append(buf, '0'+(k.n/10)%10)
		}
		buf = append(buf, '0'+k.n%10, ':')
		var hx [fingerprintHexLen]byte
		hex.Encode(hx[:], k.b[:fingerprintHexLen/2])
		return string(append(buf, hx[:]...))
	}
	return ""
}

// hashKey positions a key in the index: the top bits pick the shard, the
// full value the slot. Inline FNV-1a (rather than hash/fnv) keeps the hot
// Get/Len path allocation-free, and the murmur-style finalizer fixes FNV's
// weak avalanche into the top bits — without it, keys differing only in
// their last characters (counter-style test keys) collapse onto a few
// shards and thrash those shards' caches.
func hashKey(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
