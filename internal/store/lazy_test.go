package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fpKey mints a current-format fingerprint key deterministically.
func fpKey(i int) string {
	return fmt.Sprintf("v3:%032x", i)
}

func isLegacyTest(k string) bool { return strings.HasPrefix(k, "v1:") }

// --- ikey / index internals -------------------------------------------------

func TestIkeyRoundTrip(t *testing.T) {
	cases := []string{
		"v3:0123456789abcdef0123456789abcdef",             // fingerprint
		"v0:0123456789abcdef0123456789abcdef",             // version 0 is canonical
		"v255:" + strings.Repeat("ab", 16),                // max version
		"k", "short-key", strings.Repeat("x", ikeyInline), // raw inline
	}
	for _, key := range cases {
		ik, ok := makeIkey(key)
		if !ok {
			t.Fatalf("makeIkey(%q) rejected an inline-able key", key)
		}
		if got := ik.String(); got != key {
			t.Fatalf("round trip %q -> %q", key, got)
		}
	}
	for _, key := range []string{
		strings.Repeat("x", ikeyInline+1),     // too long
		"v3:0123456789ABCDEF0123456789ABCDEF", // uppercase hex is not a fingerprint, and 35 > inline
		// Leading-zero versions are distinct keys that would reconstruct to
		// the canonical spelling — inlining them would alias "v5:X"/"v0:X".
		"v05:0123456789abcdef0123456789abcdef",
		"v00:0123456789abcdef0123456789abcdef",
		"",
	} {
		if _, ok := makeIkey(key); ok {
			t.Fatalf("makeIkey(%q) should overflow", key)
		}
	}
	// Near-fingerprint shapes must not be mis-parsed as one.
	for _, key := range []string{
		"w3:0123456789abcdef0123456789abcdef",
		"v:0123456789abcdef0123456789abcdef",
		"v3:0123456789abcdef0123456789abcde", // 31 hex digits: short, raw-inline is fine
	} {
		ik, ok := makeIkey(key)
		if ok && ik.kind == ikeyHex {
			t.Fatalf("%q parsed as fingerprint", key)
		}
		if ok && ik.String() != key {
			t.Fatalf("round trip %q -> %q", key, ik.String())
		}
	}
}

// TestNonCanonicalVersionKeysStayDistinct pins that "v05:X" and "v5:X" are
// different keys end to end: the non-canonical spelling must not alias the
// canonical one through the inline-ikey encoding.
func TestNonCanonicalVersionKeysStayDistinct(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	hex := "0123456789abcdef0123456789abcdef"
	if err := d.Put("v5:"+hex, payload{Ranks: 5}); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("v05:"+hex, payload{Ranks: 105}); err != nil {
		t.Fatal(err)
	}
	if got, ok := d.Get("v5:" + hex); !ok || got.Ranks != 5 {
		t.Fatalf("v5: got %+v ok=%v", got, ok)
	}
	if got, ok := d.Get("v05:" + hex); !ok || got.Ranks != 105 {
		t.Fatalf("v05: got %+v ok=%v", got, ok)
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d, want 2 distinct keys", d.Len())
	}
}

func TestIndexOverflowKeys(t *testing.T) {
	long := strings.Repeat("long-key-", 10)
	dir := t.TempDir()
	d, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	want := payload{Ranks: 7}
	if err := d.Put(long, want); err != nil {
		t.Fatal(err)
	}
	if got, ok := d.Get(long); !ok || got != want {
		t.Fatalf("overflow key: got %+v ok=%v", got, ok)
	}
	if keys := d.Keys(); len(keys) != 1 || keys[0] != long {
		t.Fatalf("keys = %v", keys)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRU[int](2)
	c.add("a", 1)
	c.add("b", 2)
	c.get("a") // a is now most recent
	c.add("c", 3)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || v != 1 {
		t.Fatal("a should survive")
	}
	if v, ok := c.get("c"); !ok || v != 3 {
		t.Fatal("c should be present")
	}
}

// --- warm opens and sidecar faults -----------------------------------------

// TestDiskWarmReopenParsesNoJSON pins the sidecar fast path: a cleanly closed
// store reopens without parsing a single record line.
func TestDiskWarmReopenParsesNoJSON(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := d.Put(fpKey(i), payload{Ranks: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Replayed(); got != 0 {
		t.Fatalf("warm reopen parsed %d lines, want 0", got)
	}
	if d2.Len() != 50 {
		t.Fatalf("len = %d", d2.Len())
	}
	for i := 0; i < 50; i++ {
		if got, ok := d2.Get(fpKey(i)); !ok || got.Ranks != i {
			t.Fatalf("key %d: got %+v ok=%v", i, got, ok)
		}
	}
}

// TestDiskColdReopenSelfHealsSidecar pins that a replay writes the sidecar it
// was missing, making the open after next warm.
func TestDiskColdReopenSelfHealsSidecar(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Put(fpKey(i), payload{Ranks: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	for _, idx := range sidecarsIn(t, dir) {
		if err := os.Remove(idx); err != nil {
			t.Fatal(err)
		}
	}
	d2, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Replayed() != 10 {
		t.Fatalf("cold reopen parsed %d lines, want 10", d2.Replayed())
	}
	d2.Close()
	d3, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if d3.Replayed() != 0 {
		t.Fatalf("self-healed reopen parsed %d lines, want 0", d3.Replayed())
	}
}

func sidecarsIn(t *testing.T, dir string) []string {
	t.Helper()
	idx, err := filepath.Glob(filepath.Join(dir, "seg-*.idx"))
	if err != nil || len(idx) == 0 {
		t.Fatalf("no sidecars in %s (err=%v)", dir, err)
	}
	return idx
}

// sidecarFaultTest seeds a store, corrupts its sidecars with mangle, reopens,
// and requires every record to still be served correctly (fault → full
// replay, never wrong data).
func sidecarFaultTest(t *testing.T, mangle func(t *testing.T, idxPath string)) {
	t.Helper()
	dir := t.TempDir()
	d, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := d.Put(fpKey(i), payload{Ranks: i, Mean: 1e6}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	for _, idx := range sidecarsIn(t, dir) {
		mangle(t, idx)
	}
	d2, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != n {
		t.Fatalf("len = %d, want %d", d2.Len(), n)
	}
	for i := 0; i < n; i++ {
		got, ok := d2.Get(fpKey(i))
		if !ok {
			t.Fatalf("key %d missing after sidecar fault", i)
		}
		if got.Ranks != i {
			t.Fatalf("key %d served WRONG value %+v", i, got)
		}
	}
}

func TestSidecarTornTruncated(t *testing.T) {
	sidecarFaultTest(t, func(t *testing.T, idx string) {
		raw, err := os.ReadFile(idx)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(idx, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSidecarBitFlip(t *testing.T) {
	sidecarFaultTest(t, func(t *testing.T, idx string) {
		raw, err := os.ReadFile(idx)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)*3/4] ^= 0x40 // flip a bit deep in the entry body
		if err := os.WriteFile(idx, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSidecarStaleAfterSegmentShrank(t *testing.T) {
	// A sidecar describing more bytes than the segment holds (the segment
	// was truncated out-of-band) must be rejected, not serve dangling refs.
	// The truncated-away records are gone — the pin is that every surviving
	// key serves its correct value and none serves garbage.
	dir := t.TempDir()
	d, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := d.Put(fpKey(i), payload{Ranks: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	for _, idx := range sidecarsIn(t, dir) {
		seg := strings.TrimSuffix(idx, ".idx") + ".jsonl"
		st, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, st.Size()/2); err != nil {
			t.Fatal(err)
		}
	}
	d2, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() >= n || d2.Len() == 0 {
		t.Fatalf("len = %d, want a proper subset of %d", d2.Len(), n)
	}
	found := 0
	for i := 0; i < n; i++ {
		if got, ok := d2.Get(fpKey(i)); ok {
			found++
			if got.Ranks != i {
				t.Fatalf("key %d served WRONG value %+v from stale sidecar", i, got)
			}
		}
	}
	if found != d2.Len() {
		t.Fatalf("index claims %d keys but served %d", d2.Len(), found)
	}
}

// TestSidecarForgedOffsetsNeverServeWrongRecord pins the last line of
// defense: a sidecar that passes every structural check but lies about which
// key lives where must not make Get return another record's value.
func TestSidecarForgedOffsetsNeverServeWrongRecord(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(fpKey(1), payload{Ranks: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(fpKey(2), payload{Ranks: 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	idx := sidecarsIn(t, dir)[0]
	raw, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	// Swap the two keys in the entry body and re-sign the checksum, forging
	// a structurally valid sidecar with crossed offsets.
	nl := bytes.IndexByte(raw, '\n')
	body := string(raw[nl+1:])
	body = strings.ReplaceAll(body, fpKey(1), "§TMP§")
	body = strings.ReplaceAll(body, fpKey(2), fpKey(1))
	body = strings.ReplaceAll(body, "§TMP§", fpKey(2))
	seg := strings.TrimSuffix(idx, ".idx") + ".jsonl"
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeForgedSidecar(idx, st.Size(), body); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got, ok := d2.Get(fpKey(1)); ok && got.Ranks != 1 {
		t.Fatalf("forged sidecar served WRONG value %+v for key 1", got)
	}
	if got, ok := d2.Get(fpKey(2)); ok && got.Ranks != 2 {
		t.Fatalf("forged sidecar served WRONG value %+v for key 2", got)
	}
}

func writeForgedSidecar(path string, segSize int64, body string) error {
	hdr := fmt.Sprintf(`{"v":1,"size":%d,"records":%d,"dropped":0,"sum":"%016x"}`,
		segSize, strings.Count(body, "\n"), fnvSum([]byte(body)))
	return os.WriteFile(path, []byte(hdr+"\n"+body), 0o644)
}

// --- arbitrary-length lines -------------------------------------------------

// TestDiskReplaysHugeLines pins the removal of the old 16MB scanner cap:
// record lines far longer than the replay buffer replay fine.
func TestDiskReplaysHugeLines(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk[bigPayload](dir)
	if err != nil {
		t.Fatal(err)
	}
	size := 1 << 20 // well past scanSegment's 256KB buffer
	if !testing.Short() {
		size = 17 << 20 // past the old bufio.Scanner cap
	}
	big := bigPayload{Blob: strings.Repeat("x", size)}
	if err := d.Put(fpKey(1), big); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(fpKey(2), payloadSmall()); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Remove sidecars to force the scan path through the huge line.
	for _, idx := range sidecarsIn(t, dir) {
		os.Remove(idx)
	}
	d2, err := OpenDisk[bigPayload](dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Dropped() != 0 {
		t.Fatalf("dropped %d lines replaying a long record", d2.Dropped())
	}
	if got, ok := d2.Get(fpKey(1)); !ok || len(got.Blob) != size {
		t.Fatalf("huge record lost: ok=%v len=%d", ok, len(got.Blob))
	}
	if got, ok := d2.Get(fpKey(2)); !ok || got.Blob != "small" {
		t.Fatalf("record after huge line lost: ok=%v %+v", ok, got)
	}
}

type bigPayload struct {
	Blob string
}

func payloadSmall() bigPayload { return bigPayload{Blob: "small"} }

// --- legacy accounting ------------------------------------------------------

func TestDiskLegacyCounting(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk[payload](dir, WithLegacyKey(isLegacyTest))
	if err != nil {
		t.Fatal(err)
	}
	legacyKey := "v1:" + strings.Repeat("ab", 16)
	if err := d.Put(legacyKey, payload{Ranks: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(fpKey(1), payload{Ranks: 2}); err != nil {
		t.Fatal(err)
	}
	if d.Legacy() != 1 {
		t.Fatalf("legacy = %d, want 1", d.Legacy())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Both replay paths — warm (sidecar) and cold — must count the same.
	for pass, cold := range []bool{false, true} {
		if cold {
			for _, idx := range sidecarsIn(t, dir) {
				os.Remove(idx)
			}
		}
		d2, err := OpenDisk[payload](dir, WithLegacyKey(isLegacyTest))
		if err != nil {
			t.Fatal(err)
		}
		if d2.Legacy() != 1 {
			t.Fatalf("pass %d: legacy = %d after reopen, want 1", pass, d2.Legacy())
		}
		d2.Close()
	}
}

// --- compaction -------------------------------------------------------------

func TestDiskCompactShedsOverwritesAndLegacy(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk[payload](dir, WithLegacyKey(isLegacyTest))
	if err != nil {
		t.Fatal(err)
	}
	d.SegmentBytes = 256 // force several segments
	legacyKey := "v1:" + strings.Repeat("cd", 16)
	if err := d.Put(legacyKey, payload{Ranks: 99}); err != nil {
		t.Fatal(err)
	}
	const n = 20
	for round := 0; round < 3; round++ { // overwrite every key 3 times
		for i := 0; i < n; i++ {
			if err := d.Put(fpKey(i), payload{Ranks: i, Mean: int64AsDuration(round)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := segmentCount(t, dir)
	st, err := d.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rewritten != n {
		t.Fatalf("rewritten = %d, want %d", st.Rewritten, n)
	}
	if st.DroppedLegacy != 1 {
		t.Fatalf("dropped_legacy = %d, want 1", st.DroppedLegacy)
	}
	if st.BytesAfter >= st.BytesBefore {
		t.Fatalf("compaction did not shrink: %d -> %d bytes", st.BytesBefore, st.BytesAfter)
	}
	if after := segmentCount(t, dir); after >= before {
		t.Fatalf("segments %d -> %d", before, after)
	}
	if d.Legacy() != 0 {
		t.Fatalf("legacy = %d after compact, want 0", d.Legacy())
	}
	// Live reads keep working post-compact, and the legacy key is gone.
	if _, ok := d.Get(legacyKey); ok {
		t.Fatal("legacy key survived compaction")
	}
	for i := 0; i < n; i++ {
		got, ok := d.Get(fpKey(i))
		if !ok || got.Mean != int64AsDuration(2) {
			t.Fatalf("key %d after compact: got %+v ok=%v", i, got, ok)
		}
	}
	// Puts and reopen keep working after compaction.
	if err := d.Put(fpKey(n), payload{Ranks: n}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk[payload](dir, WithLegacyKey(isLegacyTest))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != n+1 || d2.Legacy() != 0 {
		t.Fatalf("after reopen: len=%d legacy=%d", d2.Len(), d2.Legacy())
	}
	for i := 0; i <= n; i++ {
		if _, ok := d2.Get(fpKey(i)); !ok {
			t.Fatalf("key %d missing after compact+reopen", i)
		}
	}
}

func int64AsDuration(round int) time.Duration { return time.Duration(round) * 1000 }

func segmentCount(t *testing.T, dir string) int {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return len(segs)
}

func TestSharedCompactLeavesForeignSegmentsAlone(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenShared[payload](dir, "a")
	if err != nil {
		t.Fatal(err)
	}
	a.SegmentBytes = 128
	for i := 0; i < 10; i++ { // a's records, overwritten once
		for r := 0; r < 2; r++ {
			if err := a.Put(fpKey(i), payload{Ranks: i + r*100}); err != nil {
				t.Fatal(err)
			}
		}
	}
	b, err := OpenShared[payload](dir, "b")
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		if err := b.Put(fpKey(i), payload{Ranks: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Refresh(); err != nil {
		t.Fatal(err)
	}
	foreignBefore, _ := filepath.Glob(filepath.Join(dir, "seg-b-*.jsonl"))
	st, err := a.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rewritten != 10 {
		t.Fatalf("rewritten = %d, want 10 (a's records only)", st.Rewritten)
	}
	foreignAfter, _ := filepath.Glob(filepath.Join(dir, "seg-b-*.jsonl"))
	if len(foreignAfter) != len(foreignBefore) {
		t.Fatalf("compaction touched foreign segments: %d -> %d", len(foreignBefore), len(foreignAfter))
	}
	// a still serves both its own (rewritten) and b's (untouched) records.
	for i := 0; i < 15; i++ {
		got, ok := a.Get(fpKey(i))
		if !ok {
			t.Fatalf("key %d missing after shared compact", i)
		}
		want := i
		if i < 10 {
			want = i + 100
		}
		if got.Ranks != want {
			t.Fatalf("key %d: got %d want %d", i, got.Ranks, want)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// --- stress -----------------------------------------------------------------

// TestStoreStressConcurrent hammers one Disk store with concurrent Put, Get
// and Compact, then reopens and verifies every key. Run under -race in CI.
func TestStoreStressConcurrent(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk[payload](dir, WithCache(64), WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	d.SegmentBytes = 4 << 10
	const keys = 200
	iters := 30
	if testing.Short() {
		iters = 10
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				for i := w; i < keys; i += 4 {
					if err := d.Put(fpKey(i), payload{Ranks: i}); err != nil {
						t.Error(err)
						return
					}
					if got, ok := d.Get(fpKey(i)); !ok || got.Ranks != i {
						t.Errorf("key %d: got %+v ok=%v", i, got, ok)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; it < 5; it++ {
			if _, err := d.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != keys {
		t.Fatalf("len = %d after stress+reopen, want %d", d2.Len(), keys)
	}
	for i := 0; i < keys; i++ {
		if got, ok := d2.Get(fpKey(i)); !ok || got.Ranks != i {
			t.Fatalf("key %d after stress+reopen: got %+v ok=%v", i, got, ok)
		}
	}
}

// TestCompactNeverLosesAcknowledgedPut pins the Put/Compact publication
// order: a Put that has returned success must be visible to a concurrent
// Compact's index snapshot, or compaction deletes the only segment holding
// it. Unique keys (never re-Put) make a lost write impossible to mask.
func TestCompactNeverLosesAcknowledgedPut(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk[payload](dir, WithCache(32), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	d.SegmentBytes = 2 << 10
	const writers, perWriter = 4, 150
	var wg sync.WaitGroup
	stop := make(chan struct{})
	compactorDone := make(chan struct{})
	go func() {
		defer close(compactorDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := d.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := d.Put(fpKey(w*perWriter+i), payload{Ranks: w*perWriter + i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-compactorDone
	if t.Failed() {
		return
	}
	for i := 0; i < writers*perWriter; i++ {
		if got, ok := d.Get(fpKey(i)); !ok || got.Ranks != i {
			t.Fatalf("acknowledged key %d lost to compaction: got %+v ok=%v", i, got, ok)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for i := 0; i < writers*perWriter; i++ {
		if got, ok := d2.Get(fpKey(i)); !ok || got.Ranks != i {
			t.Fatalf("acknowledged key %d missing after reopen: got %+v ok=%v", i, got, ok)
		}
	}
}

// --- format compatibility ---------------------------------------------------

// TestDiskOpensFirstGenerationLayout pins byte-format compatibility with
// store directories written before sidecars existed: bare seg-N.jsonl files,
// no .idx, replayed in full and served identically.
func TestDiskOpensFirstGenerationLayout(t *testing.T) {
	dir := t.TempDir()
	lines := []string{
		`{"k":"` + fpKey(1) + `","v":{"Median":5,"Mean":7,"Ranks":16}}`,
		`{"k":"` + fpKey(2) + `","v":{"Median":1,"Mean":2,"Ranks":8}}`,
		`{"k":"` + fpKey(1) + `","v":{"Median":9,"Mean":9,"Ranks":32}}`, // overwrite
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-00000001.jsonl"),
		[]byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Len() != 2 || d.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", d.Len(), d.Dropped())
	}
	if got, ok := d.Get(fpKey(1)); !ok || got.Ranks != 32 {
		t.Fatalf("last write should win: %+v ok=%v", got, ok)
	}
	if got, ok := d.Get(fpKey(2)); !ok || got.Ranks != 8 {
		t.Fatalf("key 2: %+v ok=%v", got, ok)
	}
}
