package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// maxSegmentOff is the largest byte offset a ref can address. Rotation
// thresholds are a few MB, so this is a correctness guard against operator
// error (a hand-built 4GB segment), not a capacity limit.
const maxSegmentOff = 1<<32 - 1

// errSegmentTooLarge reports a segment whose offsets exceed the ref space.
var errSegmentTooLarge = errors.New("store: segment exceeds 4GiB; split it or compact with a smaller SegmentBytes")

// segFile is one segment in the table: its path and a lazily opened
// read-only handle used by Get-time fetches. The handle is independent of
// the writer's append handle, so reads never seek the write position.
type segFile struct {
	path string
	mu   sync.Mutex
	f    *os.File
}

// readAt fills buf from the segment at off, opening the read handle on
// first use.
func (s *segFile) readAt(buf []byte, off int64) error {
	s.mu.Lock()
	if s.f == nil {
		f, err := os.Open(s.path)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		s.f = f
	}
	f := s.f
	s.mu.Unlock()
	_, err := f.ReadAt(buf, off)
	return err
}

func (s *segFile) close() {
	s.mu.Lock()
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	s.mu.Unlock()
}

// segTable maps ref.seg ids to segment files. Ids are append-only — a
// compacted-away segment keeps its id with a nil entry, so a concurrent
// reader holding a stale ref fails cleanly and retries through the index
// rather than reading the wrong file.
type segTable struct {
	mu   sync.RWMutex
	segs []*segFile
}

// add registers a segment and returns its id.
func (t *segTable) add(path string) int32 {
	t.mu.Lock()
	t.segs = append(t.segs, &segFile{path: path})
	id := int32(len(t.segs) - 1)
	t.mu.Unlock()
	return id
}

func (t *segTable) get(id int32) *segFile {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || int(id) >= len(t.segs) {
		return nil
	}
	return t.segs[id]
}

// drop forgets a compacted-away segment and closes its read handle.
func (t *segTable) drop(id int32) {
	t.mu.Lock()
	var s *segFile
	if id >= 0 && int(id) < len(t.segs) {
		s, t.segs[id] = t.segs[id], nil
	}
	t.mu.Unlock()
	if s != nil {
		s.close()
	}
}

func (t *segTable) closeAll() {
	t.mu.Lock()
	segs := t.segs
	t.segs = nil
	t.mu.Unlock()
	for _, s := range segs {
		if s != nil {
			s.close()
		}
	}
}

// fetchRecord reads and decodes the record a ref points at, verifying the
// stored key matches the requested one (insurance against a sidecar or
// index bug ever serving another record's bytes). The error distinguishes
// "segment gone" (retry through the index — compaction moved the record)
// from a decode failure.
func fetchRecord[R any](tab *segTable, rf ref, key string) (R, error) {
	var v R
	sf := tab.get(rf.seg)
	if sf == nil {
		return v, errStaleRef
	}
	buf := make([]byte, rf.llen)
	if err := sf.readAt(buf, int64(rf.off)); err != nil {
		return v, errStaleRef
	}
	var rec record
	if err := json.Unmarshal(buf, &rec); err != nil {
		return v, fmt.Errorf("store: record at %s+%d: %w", sf.path, rf.off, err)
	}
	if rec.Key != key {
		return v, fmt.Errorf("store: record at %s+%d holds key %q, want %q", sf.path, rf.off, rec.Key, key)
	}
	if err := json.Unmarshal(rec.Val, &v); err != nil {
		return v, fmt.Errorf("store: record at %s+%d: %w", sf.path, rf.off, err)
	}
	return v, nil
}

// errStaleRef marks a fetch that raced compaction: the caller re-resolves
// the key through the index and retries once.
var errStaleRef = errors.New("store: stale segment ref")

// scanResult is what scanning a segment (or a segment tail) yields.
type scanResult struct {
	entries  []sideEntry // valid records, in file order
	dropped  int         // complete lines that failed to parse
	parsed   int         // lines JSON-parsed (the replay cost a sidecar avoids)
	consumed int64       // bytes up to and including the last complete line
	torn     bool        // trailing bytes with no newline
}

// scanSegment replays segment bytes from base, collecting one sideEntry per
// valid record line. Lines of any length are handled — the reader grows per
// line instead of imposing a fixed cap (the old bufio.Scanner silently
// stopped at 16MB, truncating the rest of the segment). Only the record
// envelope is parsed; values stay raw bytes on disk until a Get wants them.
func scanSegment(r io.Reader, base int64) (scanResult, error) {
	res := scanResult{}
	br := bufio.NewReaderSize(r, 256<<10)
	off := base
	var long []byte // scratch for lines longer than the reader buffer
	for {
		line, err := br.ReadSlice('\n')
		if errors.Is(err, bufio.ErrBufferFull) {
			long = append(long[:0], line...)
			for errors.Is(err, bufio.ErrBufferFull) {
				line, err = br.ReadSlice('\n')
				long = append(long, line...)
			}
			line = long
		}
		if len(line) > 0 && err == nil || len(line) > 0 && errors.Is(err, io.EOF) {
			complete := line[len(line)-1] == '\n'
			if !complete {
				res.torn = true
				return res, nil
			}
			llen := int64(len(line)) - 1
			if off > maxSegmentOff || llen > maxSegmentOff {
				return res, errSegmentTooLarge
			}
			body := line[:llen]
			if len(body) > 0 {
				res.parsed++
				var rec record
				if json.Unmarshal(body, &rec) != nil || rec.Key == "" {
					res.dropped++
				} else {
					res.entries = append(res.entries, sideEntry{
						Off: uint32(off), Len: uint32(llen), Key: rec.Key,
					})
				}
			}
			off += llen + 1
			res.consumed = off - base
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return res, nil
			}
			return res, fmt.Errorf("store: %w", err)
		}
	}
}
