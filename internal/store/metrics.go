package store

import (
	"time"

	"repro/internal/obs"
)

// Metrics collects a store's observability series: lookup/append latency
// histograms, hit/miss counters, and index-size/segment gauges. Attach one
// with SetMetrics on Mem, Disk or Shared; a nil *Metrics keeps the store
// completely uninstrumented (no clock reads, no atomic writes).
//
// Build one by hand for tests, or with NewMetrics to register the standard
// scalefold_store_* series in an obs.Registry.
type Metrics struct {
	Lookup   *obs.Histogram // Get latency, seconds (lock wait included)
	Append   *obs.Histogram // Put latency, seconds (encode + write included)
	Hits     *obs.Counter   // lookups that found a value
	Misses   *obs.Counter   // lookups that did not
	Records  *obs.Gauge     // keys in the in-memory index
	Segments *obs.Gauge     // segment files opened by this writer (0 for Mem)

	// Lazy-store series (nil on Mem; NewMetrics fills them all).
	Contended      *obs.Counter // index-shard lock acquisitions that had to wait
	CacheHits      *obs.Counter // Gets served from the decoded-value LRU
	CacheMisses    *obs.Counter // Gets that had to read and decode from disk
	SidecarLoads   *obs.Counter // segments opened warm from a valid sidecar
	SidecarWrites  *obs.Counter // sidecars written (seal, self-heal, compaction)
	Compactions    *obs.Counter // completed Compact calls
	DecodeFailures *obs.Counter // Get-time record reads that failed to decode
}

// NewMetrics registers the standard store series in r, labeled store=name,
// and returns them bundled for SetMetrics. Returns nil (uninstrumented) on a
// nil Registry.
func NewMetrics(r *obs.Registry, name string) *Metrics {
	if r == nil {
		return nil
	}
	lbl := obs.Label{Key: "store", Value: name}
	return &Metrics{
		Lookup:   r.Histogram("scalefold_store_lookup_seconds", "Store Get latency in seconds.", nil, lbl),
		Append:   r.Histogram("scalefold_store_append_seconds", "Store Put latency in seconds.", nil, lbl),
		Hits:     r.Counter("scalefold_store_hits_total", "Store lookups that found a value.", lbl),
		Misses:   r.Counter("scalefold_store_misses_total", "Store lookups that missed.", lbl),
		Records:  r.Gauge("scalefold_store_records", "Keys in the store index.", lbl),
		Segments: r.Gauge("scalefold_store_segments", "Segment files opened by this writer.", lbl),

		Contended:      r.Counter("scalefold_store_shard_contention_total", "Index-shard lock acquisitions that had to wait.", lbl),
		CacheHits:      r.Counter("scalefold_store_cache_hits_total", "Gets served from the decoded-value cache.", lbl),
		CacheMisses:    r.Counter("scalefold_store_cache_misses_total", "Gets that read and decoded record bytes from disk.", lbl),
		SidecarLoads:   r.Counter("scalefold_store_sidecar_loads_total", "Segments opened warm from a valid sidecar index.", lbl),
		SidecarWrites:  r.Counter("scalefold_store_sidecar_writes_total", "Sidecar indexes written (seal, self-heal, compaction).", lbl),
		Compactions:    r.Counter("scalefold_store_compactions_total", "Completed store compactions.", lbl),
		DecodeFailures: r.Counter("scalefold_store_decode_failures_total", "Get-time record reads that failed to decode.", lbl),
	}
}

// start returns the operation start time, or the zero time when
// uninstrumented — the nil check that keeps time.Now() off bare runs.
func (m *Metrics) start() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// lookup settles one Get: latency since t0 plus the hit/miss outcome.
func (m *Metrics) lookup(t0 time.Time, hit bool) {
	if m == nil {
		return
	}
	m.Lookup.ObserveSince(t0)
	if hit {
		m.Hits.Inc()
	} else {
		m.Misses.Inc()
	}
}

// appended settles one Put: latency since t0 and the new index size.
func (m *Metrics) appended(t0 time.Time, records int) {
	if m == nil {
		return
	}
	m.Append.ObserveSince(t0)
	m.Records.Set(int64(records))
}

// records refreshes the index-size gauge (used by refresh paths that grow
// the index without a Put).
func (m *Metrics) records(n int) {
	if m == nil {
		return
	}
	m.Records.Set(int64(n))
}

// rotated counts one new segment file.
func (m *Metrics) rotated() {
	if m == nil {
		return
	}
	m.Segments.Add(1)
}

// contended counts one shard-lock acquisition that found the lock held.
func (m *Metrics) contended() {
	if m == nil || m.Contended == nil {
		return
	}
	m.Contended.Inc()
}

// cacheHit counts one Get served from the decoded-value LRU.
func (m *Metrics) cacheHit() {
	if m == nil || m.CacheHits == nil {
		return
	}
	m.CacheHits.Inc()
}

// cacheMiss counts one Get that had to read record bytes from disk.
func (m *Metrics) cacheMiss() {
	if m == nil || m.CacheMisses == nil {
		return
	}
	m.CacheMisses.Inc()
}

// sidecarLoad counts one segment opened warm from its sidecar.
func (m *Metrics) sidecarLoad() {
	if m == nil || m.SidecarLoads == nil {
		return
	}
	m.SidecarLoads.Inc()
}

// sidecarRebuild counts one sidecar written.
func (m *Metrics) sidecarRebuild() {
	if m == nil || m.SidecarWrites == nil {
		return
	}
	m.SidecarWrites.Inc()
}

// compacted counts one completed compaction.
func (m *Metrics) compacted() {
	if m == nil || m.Compactions == nil {
		return
	}
	m.Compactions.Inc()
}

// decodeError counts one Get whose on-disk record failed to decode.
func (m *Metrics) decodeError() {
	if m == nil || m.DecodeFailures == nil {
		return
	}
	m.DecodeFailures.Inc()
}
