package store

import (
	"time"

	"repro/internal/obs"
)

// Metrics collects a store's observability series: lookup/append latency
// histograms, hit/miss counters, and index-size/segment gauges. Attach one
// with SetMetrics on Mem, Disk or Shared; a nil *Metrics keeps the store
// completely uninstrumented (no clock reads, no atomic writes).
//
// Build one by hand for tests, or with NewMetrics to register the standard
// scalefold_store_* series in an obs.Registry.
type Metrics struct {
	Lookup   *obs.Histogram // Get latency, seconds (lock wait included)
	Append   *obs.Histogram // Put latency, seconds (encode + write included)
	Hits     *obs.Counter   // lookups that found a value
	Misses   *obs.Counter   // lookups that did not
	Records  *obs.Gauge     // keys in the in-memory index
	Segments *obs.Gauge     // segment files opened by this writer (0 for Mem)
}

// NewMetrics registers the standard store series in r, labeled store=name,
// and returns them bundled for SetMetrics. Returns nil (uninstrumented) on a
// nil Registry.
func NewMetrics(r *obs.Registry, name string) *Metrics {
	if r == nil {
		return nil
	}
	lbl := obs.Label{Key: "store", Value: name}
	return &Metrics{
		Lookup:   r.Histogram("scalefold_store_lookup_seconds", "Store Get latency in seconds.", nil, lbl),
		Append:   r.Histogram("scalefold_store_append_seconds", "Store Put latency in seconds.", nil, lbl),
		Hits:     r.Counter("scalefold_store_hits_total", "Store lookups that found a value.", lbl),
		Misses:   r.Counter("scalefold_store_misses_total", "Store lookups that missed.", lbl),
		Records:  r.Gauge("scalefold_store_records", "Keys in the store index.", lbl),
		Segments: r.Gauge("scalefold_store_segments", "Segment files opened by this writer.", lbl),
	}
}

// start returns the operation start time, or the zero time when
// uninstrumented — the nil check that keeps time.Now() off bare runs.
func (m *Metrics) start() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// lookup settles one Get: latency since t0 plus the hit/miss outcome.
func (m *Metrics) lookup(t0 time.Time, hit bool) {
	if m == nil {
		return
	}
	m.Lookup.ObserveSince(t0)
	if hit {
		m.Hits.Inc()
	} else {
		m.Misses.Inc()
	}
}

// appended settles one Put: latency since t0 and the new index size.
func (m *Metrics) appended(t0 time.Time, records int) {
	if m == nil {
		return
	}
	m.Append.ObserveSince(t0)
	m.Records.Set(int64(records))
}

// records refreshes the index-size gauge (used by refresh paths that grow
// the index without a Put).
func (m *Metrics) records(n int) {
	if m == nil {
		return
	}
	m.Records.Set(int64(n))
}

// rotated counts one new segment file.
func (m *Metrics) rotated() {
	if m == nil {
		return
	}
	m.Segments.Add(1)
}
