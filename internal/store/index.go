package store

import (
	"sort"
	"sync"
	"sync/atomic"
)

// ref locates one record's bytes on disk: the segment (an id into the
// store's segment table, assigned in replay/rotation order so (seg, off)
// orders writes), the byte offset of the record line within that segment,
// and the line length excluding the trailing newline. 12 bytes; segments
// are rotated long before the uint32 offset space runs out.
type ref struct {
	off  uint32
	llen uint32
	seg  int32
}

// newer reports whether r was written after (or at the same position as) old
// — the last-write-wins rule that makes concurrent replay order-independent.
func (r ref) newer(old ref) bool {
	return r.seg > old.seg || (r.seg == old.seg && r.off >= old.off)
}

// islot is one open-addressing slot: a compact inline key plus its ref.
// 32 bytes, the "O(records × ~32B)" the lazy index promises.
type islot struct {
	key ikey
	ref ref
}

// indexShard is 1/Nth of the key space: an open-addressing table (linear
// probing, grown 1.5× at 85% load — the non-power-of-two sizing keeps the
// average table ~70% full instead of oscillating around 50%) for
// inline-encodable keys, an overflow map for the rest, and a small LRU of
// decoded values fronting the disk.
type indexShard[R any] struct {
	mu       sync.Mutex
	slots    []islot // grown 1.5×, probed modulo len (NOT a power of two); nil until first insert
	used     int
	overflow map[string]ref // nil until a key exceeds the inline form
	lru      *lruCache[R]
}

const indexShardMinSlots = 16

// index is the sharded lazy index shared by Disk and Shared: key → ref, with
// allocation-free Len, per-shard locking, and a bounded decode cache.
type index[R any] struct {
	shards   []indexShard[R]
	shift    uint // hash >> shift picks the shard
	count    atomic.Int64
	legacy   atomic.Int64
	isLegacy func(string) bool // nil = no legacy accounting
	met      *atomic.Pointer[Metrics]
}

// newIndex builds an index with the given shard count (rounded up to a power
// of two) and a total decoded-value cache capacity spread across shards.
func newIndex[R any](shards, cacheEntries int, isLegacy func(string) bool, met *atomic.Pointer[Metrics]) *index[R] {
	n := 1
	for n < shards {
		n <<= 1
	}
	ix := &index[R]{shards: make([]indexShard[R], n), shift: 64, isLegacy: isLegacy, met: met}
	for b := n; b > 1; b >>= 1 {
		ix.shift--
	}
	perShard := cacheEntries / n
	if cacheEntries > 0 && perShard == 0 {
		perShard = 1
	}
	if perShard > 0 {
		for i := range ix.shards {
			ix.shards[i].lru = newLRU[R](perShard)
		}
	}
	return ix
}

func (ix *index[R]) shard(h uint64) *indexShard[R] {
	return &ix.shards[h>>ix.shift]
}

// lock takes the shard lock, counting the acquisitions that had to wait —
// the shard-contention series that shows when a deployment needs more
// shards (or is thrashing one hot key).
func (ix *index[R]) lock(sh *indexShard[R]) {
	if sh.mu.TryLock() {
		return
	}
	ix.met.Load().contended()
	sh.mu.Lock()
}

// lookup returns the ref stored for key, if any.
func (ix *index[R]) lookup(key string) (ref, bool) {
	h := hashKey(key)
	sh := ix.shard(h)
	ix.lock(sh)
	r, ok := sh.find(key, h)
	sh.mu.Unlock()
	return r, ok
}

// cachedOrRef is the Get fast path in one lock acquisition: a decoded value
// from the LRU (hit), or the ref to fetch from disk (miss), or neither.
func (ix *index[R]) cachedOrRef(key string) (v R, r ref, cached, ok bool) {
	h := hashKey(key)
	sh := ix.shard(h)
	ix.lock(sh)
	r, ok = sh.find(key, h)
	if ok && sh.lru != nil {
		if cv, hit := sh.lru.get(key); hit {
			v, cached = cv, true
		}
	}
	sh.mu.Unlock()
	mt := ix.met.Load()
	if ok {
		if cached {
			mt.cacheHit()
		} else {
			mt.cacheMiss()
		}
	}
	return v, r, cached, ok
}

// admit caches a freshly decoded value, keyed under the ref it was decoded
// from — a stale ref (the key was overwritten or compacted meanwhile) is
// not admitted, so the cache can never pin a superseded value.
func (ix *index[R]) admit(key string, r ref, v R) {
	h := hashKey(key)
	sh := ix.shard(h)
	ix.lock(sh)
	if sh.lru != nil {
		if cur, ok := sh.find(key, h); ok && cur == r {
			sh.lru.add(key, v)
		}
	}
	sh.mu.Unlock()
}

// setIfNewer indexes key → r unless an entry from a later (segment, offset)
// is already present. Concurrent segment replays and racing Puts both funnel
// through this, so application order never changes the outcome. The decoded
// value (when the caller has one, i.e. on Put) refreshes the LRU.
func (ix *index[R]) setIfNewer(key string, r ref, v *R) {
	h := hashKey(key)
	sh := ix.shard(h)
	ix.lock(sh)
	inserted, updated := sh.set(key, h, r)
	if updated && sh.lru != nil {
		if v != nil {
			sh.lru.add(key, *v)
		} else {
			sh.lru.drop(key)
		}
	}
	sh.mu.Unlock()
	if inserted {
		ix.count.Add(1)
		if ix.isLegacy != nil && ix.isLegacy(key) {
			ix.legacy.Add(1)
		}
	}
}

// find probes for key. Callers hold the shard lock.
func (sh *indexShard[R]) find(key string, h uint64) (ref, bool) {
	ik, inline := makeIkey(key)
	if !inline {
		r, ok := sh.overflow[key]
		return r, ok
	}
	if sh.slots == nil {
		return ref{}, false
	}
	n := uint64(len(sh.slots))
	for i := h % n; ; i = (i + 1) % n {
		s := &sh.slots[i]
		if s.key.kind == ikeyEmpty {
			return ref{}, false
		}
		if s.key == ik {
			return s.ref, true
		}
	}
}

// set inserts or updates key → r under last-write-wins. Reports whether a
// new key was inserted and whether the stored ref changed.
func (sh *indexShard[R]) set(key string, h uint64, r ref) (inserted, updated bool) {
	ik, inline := makeIkey(key)
	if !inline {
		old, ok := sh.overflow[key]
		if ok && !r.newer(old) {
			return false, false
		}
		if sh.overflow == nil {
			sh.overflow = map[string]ref{}
		}
		sh.overflow[key] = r
		return !ok, true
	}
	if sh.slots == nil {
		sh.slots = make([]islot, indexShardMinSlots)
	}
	n := uint64(len(sh.slots))
	for i := h % n; ; i = (i + 1) % n {
		s := &sh.slots[i]
		if s.key.kind == ikeyEmpty {
			if (sh.used+1)*20 >= len(sh.slots)*17 { // 85% load cap
				sh.grow()
				return sh.set(key, h, r)
			}
			s.key, s.ref = ik, r
			sh.used++
			return true, true
		}
		if s.key == ik {
			if !r.newer(s.ref) {
				return false, false
			}
			s.ref = r
			return false, true
		}
	}
}

// grow resizes the slot table 1.5× and reinserts every entry. Callers hold
// the shard lock.
func (sh *indexShard[R]) grow() {
	old := sh.slots
	sh.slots = make([]islot, len(old)+len(old)/2)
	n := uint64(len(sh.slots))
	for _, s := range old {
		if s.key.kind == ikeyEmpty {
			continue
		}
		for i := hashKey(s.key.String()) % n; ; i = (i + 1) % n {
			if sh.slots[i].key.kind == ikeyEmpty {
				sh.slots[i] = s
				break
			}
		}
	}
}

// each visits every (key, ref) pair, one shard at a time (the index may
// mutate between shards but not within one). Return false to stop.
func (ix *index[R]) each(fn func(key string, r ref) bool) {
	for i := range ix.shards {
		sh := &ix.shards[i]
		ix.lock(sh)
		cont := true
		for j := range sh.slots {
			if sh.slots[j].key.kind == ikeyEmpty {
				continue
			}
			if !fn(sh.slots[j].key.String(), sh.slots[j].ref) {
				cont = false
				break
			}
		}
		if cont {
			for k, r := range sh.overflow {
				if !fn(k, r) {
					cont = false
					break
				}
			}
		}
		sh.mu.Unlock()
		if !cont {
			return
		}
	}
}

// rebuild atomically replaces the whole index contents with the given
// snapshot — the compaction commit: every surviving key points at its new
// segment, dropped keys vanish, counters are recomputed. Callers must
// guarantee no concurrent setIfNewer (Puts are blocked under the writer
// lock during compaction; lookups stay live shard by shard).
func (ix *index[R]) rebuild(entries map[string]ref) {
	var count, legacy int64
	byShard := make([][]struct {
		key string
		r   ref
	}, len(ix.shards))
	for k, r := range entries {
		s := hashKey(k) >> ix.shift
		byShard[s] = append(byShard[s], struct {
			key string
			r   ref
		}{k, r})
		count++
		if ix.isLegacy != nil && ix.isLegacy(k) {
			legacy++
		}
	}
	for i := range ix.shards {
		sh := &ix.shards[i]
		ix.lock(sh)
		sh.slots, sh.used, sh.overflow = nil, 0, nil
		if sh.lru != nil {
			sh.lru.reset()
		}
		for _, e := range byShard[i] {
			sh.set(e.key, hashKey(e.key), e.r)
		}
		sh.mu.Unlock()
	}
	ix.count.Store(count)
	ix.legacy.Store(legacy)
}

// keys returns every indexed key, sorted.
func (ix *index[R]) keys() []string {
	out := make([]string, 0, ix.count.Load())
	ix.each(func(k string, _ ref) bool {
		out = append(out, k)
		return true
	})
	sort.Strings(out)
	return out
}

// lruCache is a tiny bounded most-recently-used cache of decoded values.
// It lives under its shard's lock, so it needs no locking of its own.
type lruCache[R any] struct {
	cap  int
	m    map[string]*lruNode[R]
	head *lruNode[R] // most recent
	tail *lruNode[R] // least recent
}

type lruNode[R any] struct {
	key        string
	val        R
	prev, next *lruNode[R]
}

func newLRU[R any](capacity int) *lruCache[R] {
	return &lruCache[R]{cap: capacity, m: make(map[string]*lruNode[R], capacity)}
}

func (c *lruCache[R]) get(key string) (R, bool) {
	n, ok := c.m[key]
	if !ok {
		var zero R
		return zero, false
	}
	c.moveFront(n)
	return n.val, true
}

func (c *lruCache[R]) add(key string, v R) {
	if n, ok := c.m[key]; ok {
		n.val = v
		c.moveFront(n)
		return
	}
	if len(c.m) >= c.cap {
		evict := c.tail
		c.unlink(evict)
		delete(c.m, evict.key)
	}
	n := &lruNode[R]{key: key, val: v}
	c.m[key] = n
	c.pushFront(n)
}

func (c *lruCache[R]) drop(key string) {
	if n, ok := c.m[key]; ok {
		c.unlink(n)
		delete(c.m, key)
	}
}

func (c *lruCache[R]) reset() {
	c.m = make(map[string]*lruNode[R], c.cap)
	c.head, c.tail = nil, nil
}

func (c *lruCache[R]) pushFront(n *lruNode[R]) {
	n.prev, n.next = nil, c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lruCache[R]) unlink(n *lruNode[R]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *lruCache[R]) moveFront(n *lruNode[R]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
