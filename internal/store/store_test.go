package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// payload mimics the shape of cluster.Result: durations and ints, which must
// round-trip through JSON byte-exactly.
type payload struct {
	Median time.Duration
	Mean   time.Duration
	Ranks  int
}

func pay(i int) payload {
	return payload{Median: time.Duration(i) * 1234567, Mean: time.Duration(i) * 7654321, Ranks: i}
}

func TestMemStore(t *testing.T) {
	s := NewMem[payload]()
	if _, ok := s.Get("a"); ok {
		t.Fatal("empty store must miss")
	}
	if err := s.Put("b", pay(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", pay(1)); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("a"); !ok || v != pay(1) {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if err := s.Put("a", pay(9)); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("a"); v != pay(9) {
		t.Fatal("Put must overwrite")
	}
	if !reflect.DeepEqual(s.Keys(), []string{"a", "b"}) || s.Len() != 2 {
		t.Fatalf("Keys = %v, Len = %d", s.Keys(), s.Len())
	}
}

func TestDiskRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := d.Put(fmt.Sprintf("key-%02d", i), pay(i)); err != nil {
			t.Fatal(err)
		}
	}
	d.Put("key-05", pay(500)) // overwrite: last write must win after reload
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("late", pay(0)); err == nil {
		t.Fatal("Put after Close must fail")
	}

	r, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 20 || r.Dropped() != 0 {
		t.Fatalf("reloaded Len = %d (dropped %d), want 20/0", r.Len(), r.Dropped())
	}
	for i := 0; i < 20; i++ {
		want := pay(i)
		if i == 5 {
			want = pay(500)
		}
		if v, ok := r.Get(fmt.Sprintf("key-%02d", i)); !ok || v != want {
			t.Fatalf("key-%02d = %v, %v (want %v)", i, v, ok, want)
		}
	}
	keys := r.Keys()
	if len(keys) != 20 || keys[0] != "key-00" || keys[19] != "key-19" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestDiskSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	d.SegmentBytes = 256 // force rotation every few records
	for i := 0; i < 50; i++ {
		if err := d.Put(fmt.Sprintf("key-%02d", i), pay(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %v", segs)
	}
	r, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 50 {
		t.Fatalf("reloaded %d keys across %d segments, want 50", r.Len(), len(segs))
	}
	// New writes land in a fresh segment numbered after the newest one.
	if err := r.Put("fresh", pay(1)); err != nil {
		t.Fatal(err)
	}
	r.Close()
	after, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(after) != len(segs)+1 {
		t.Fatalf("reopen+Put must start a new segment: %d -> %d files", len(segs), len(after))
	}
}

func TestDiskToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	d.Put("good", pay(1))
	d.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	// Simulate a crash mid-append: a partial JSON line at the log tail.
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"k":"torn","v":{"Med`)
	f.Close()

	r, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.Dropped() != 1 {
		t.Fatalf("Len = %d, Dropped = %d; want 1 key, 1 dropped line", r.Len(), r.Dropped())
	}
	if v, ok := r.Get("good"); !ok || v != pay(1) {
		t.Fatal("intact records must survive a torn tail")
	}
}

// A failed append may tear the segment tail; the next Put must rotate to a
// fresh segment rather than glue its line onto the partial one (which would
// corrupt both records on reload).
func TestDiskRotatesAfterFailedWrite(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("before", pay(1)); err != nil {
		t.Fatal(err)
	}
	// Force a write failure: swap the active segment for a read-only handle
	// (white-box stand-in for a short write on a full disk).
	good := d.seg
	ro, err := os.Open(good.Name())
	if err != nil {
		t.Fatal(err)
	}
	d.seg = ro
	if err := d.Put("lost", pay(2)); err == nil {
		t.Fatal("write to read-only segment must fail")
	}
	good.Close() // rotation closes ro itself

	if err := d.Put("after", pay(3)); err != nil {
		t.Fatalf("Put after a failed write must rotate and succeed: %v", err)
	}
	d.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) != 2 {
		t.Fatalf("expected rotation to a second segment, got %v", segs)
	}
	r, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Get("before"); !ok || v != pay(1) {
		t.Fatal("pre-failure record lost")
	}
	if v, ok := r.Get("after"); !ok || v != pay(3) {
		t.Fatal("post-failure record lost")
	}
	if _, ok := r.Get("lost"); ok {
		t.Fatal("failed Put must not resurrect on reload")
	}
}

// The store directory is single-writer: a second open must fail fast
// instead of interleaving segment writes with the holder.
func TestDiskDirectoryIsSingleWriter(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk[payload](dir); err == nil {
		t.Fatal("second OpenDisk on a held directory must fail")
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatalf("open after Close must succeed: %v", err)
	}
	d2.Close()
}

func TestDiskRejectsEmptyKey(t *testing.T) {
	d, err := OpenDisk[payload](t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Put("", pay(0)); err == nil {
		t.Fatal("empty key must be rejected")
	}
}

func TestDiskConcurrentPutGet(t *testing.T) {
	d, err := OpenDisk[payload](t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("key-%d-%d", w, i)
				if err := d.Put(key, pay(i)); err != nil {
					t.Error(err)
					return
				}
				if v, ok := d.Get(key); !ok || v != pay(i) {
					t.Errorf("read own write %s: %v, %v", key, v, ok)
					return
				}
				d.Get(fmt.Sprintf("key-%d-%d", (w+1)%8, i)) // racing cross-reads
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != 8*50 {
		t.Fatalf("Len = %d, want %d", d.Len(), 8*50)
	}
}
