package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
)

// CompactStats reports what a Compact call did, JSON-ready for the CLI and
// the coordinator admin endpoint.
type CompactStats struct {
	Keys           int   `json:"keys"`            // live keys indexed after compaction
	Rewritten      int   `json:"rewritten"`       // records copied into fresh segments
	DroppedLegacy  int   `json:"dropped_legacy"`  // legacy-generation records shed
	SegmentsBefore int   `json:"segments_before"` // this writer's segments going in
	SegmentsAfter  int   `json:"segments_after"`  // fresh segments written
	BytesBefore    int64 `json:"bytes_before"`    // their sizes going in
	BytesAfter     int64 `json:"bytes_after"`     // fresh segment bytes
}

// Compact rewrites the store down to its live records: for every key, the
// newest record line is copied byte-identically into fresh segments (with
// sidecars), overwritten duplicates and legacy-generation records (per
// WithLegacyKey) are shed, the index is rebuilt over the new refs, and the
// old segment files are deleted. Runs under the writer lock — concurrent
// Puts block for the duration, concurrent Gets stay live (a Get racing the
// switch-over retries through the rebuilt index).
//
// Crash-safe at every step: fresh segments are written and fsynced under
// higher sequence numbers before any old file is deleted, and replay's
// last-write-wins ordering means a directory holding both generations
// reopens to the same mapping.
func (d *Disk[R]) Compact() (CompactStats, error) {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.closed {
		return CompactStats{}, fmt.Errorf("store: closed")
	}
	if err := d.sealLocked(); err != nil {
		return CompactStats{}, err
	}
	st, seq, live, err := runCompact(d.idx, d.tab, d.live,
		func(n int) string { return filepath.Join(d.dir, fmt.Sprintf("seg-%08d.jsonl", n)) },
		d.segSeq, d.SegmentBytes, d.cfg.legacy, &d.met)
	if err != nil {
		return st, err
	}
	d.segSeq, d.live, d.torn = seq, live, false
	return st, nil
}

// Compact rewrites this owner's segments down to their live records —
// records whose newest version lives in another owner's segment are left
// exactly where they are, and foreign segment files are never touched. Safe
// to run on one member of a live fleet: other owners keep reading the old
// segments they have open and pick up the compacted ones on their next
// refresh (byte-identical records, so either view agrees).
func (s *Shared[R]) Compact() (CompactStats, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	// Freeze foreign tailing too: the index rebuild must not lose entries a
	// concurrent Refresh would add between snapshot and commit. Get misses
	// block on the refresh lock for the duration; indexed Gets stay live.
	s.rmu.Lock()
	defer s.rmu.Unlock()
	if s.closed {
		return CompactStats{}, fmt.Errorf("store: closed")
	}
	if err := s.sealLocked(); err != nil {
		return CompactStats{}, err
	}
	st, seq, live, err := runCompact(s.idx, s.tab, s.ownLive,
		func(n int) string { return filepath.Join(s.dir, fmt.Sprintf("%s%08d.jsonl", s.prefix, n)) },
		s.segSeq, s.SegmentBytes, s.cfg.legacy, &s.met)
	if err != nil {
		return st, err
	}
	s.segSeq, s.ownLive, s.torn = seq, live, false
	return st, nil
}

// runCompact is the engine shared by Disk.Compact and Shared.Compact: live
// is the set of segments this writer owns (and may rewrite + delete); index
// entries pointing elsewhere are preserved untouched. Callers hold their
// writer lock, so no setIfNewer races the rebuild.
func runCompact[R any](
	ix *index[R], tab *segTable, live map[int32]string,
	nameAt func(seq int) string, startSeq int, limit int64,
	legacy func(string) bool, met *atomic.Pointer[Metrics],
) (CompactStats, int, map[int32]string, error) {
	var st CompactStats
	st.SegmentsBefore = len(live)
	for _, p := range live {
		if fi, err := os.Stat(p); err == nil {
			st.BytesBefore += fi.Size()
		}
	}
	// Snapshot: keys to rewrite (newest version in one of our segments,
	// not legacy) in original write order, plus keys to carry unchanged.
	type entry struct {
		key string
		r   ref
	}
	var rewrite []entry
	kept := map[string]ref{}
	ix.each(func(k string, r ref) bool {
		if _, mine := live[r.seg]; !mine {
			kept[k] = r
			return true
		}
		if legacy != nil && legacy(k) {
			st.DroppedLegacy++
			return true
		}
		rewrite = append(rewrite, entry{k, r})
		return true
	})
	sort.Slice(rewrite, func(i, j int) bool {
		if rewrite[i].r.seg != rewrite[j].r.seg {
			return rewrite[i].r.seg < rewrite[j].r.seg
		}
		return rewrite[i].r.off < rewrite[j].r.off
	})
	w := &compactWriter{nameAt: nameAt, seq: startSeq, limit: limit, tab: tab, met: met, live: map[int32]string{}}
	for _, e := range rewrite {
		line, err := rawLine(tab, e.r)
		if err != nil {
			return st, 0, nil, err
		}
		nr, err := w.append(e.key, line)
		if err != nil {
			return st, 0, nil, err
		}
		kept[e.key] = nr
	}
	if err := w.finish(); err != nil {
		return st, 0, nil, err
	}
	st.Keys = len(kept)
	st.Rewritten = len(rewrite)
	st.SegmentsAfter = len(w.live)
	st.BytesAfter = w.bytes
	// Commit: the index switches to the new refs, then the old files go. A
	// Get that resolved an old ref just before the switch either still reads
	// the old bytes (identical record) or gets a stale-ref error and
	// re-resolves.
	ix.rebuild(kept)
	for id, p := range live {
		tab.drop(id)
		os.Remove(p)
		os.Remove(sidecarPath(p))
	}
	met.Load().compacted()
	met.Load().records(len(kept))
	return st, w.seq, w.live, nil
}

// rawLine reads one record's exact on-disk bytes, newline restored.
func rawLine(tab *segTable, rf ref) ([]byte, error) {
	sf := tab.get(rf.seg)
	if sf == nil {
		return nil, errStaleRef
	}
	buf := make([]byte, int(rf.llen)+1)
	if err := sf.readAt(buf[:rf.llen], int64(rf.off)); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	buf[rf.llen] = '\n'
	return buf, nil
}

// compactWriter streams records into fresh segments, sealing each (sidecar
// + fsync) as it fills — the same on-disk product as a normal writer's
// rotation, minus the dead bytes.
type compactWriter struct {
	nameAt func(seq int) string
	seq    int
	limit  int64
	tab    *segTable
	met    *atomic.Pointer[Metrics]

	f       *os.File
	id      int32
	path    string
	size    int64
	bytes   int64
	pending []sideEntry
	live    map[int32]string
}

func (w *compactWriter) append(key string, line []byte) (ref, error) {
	if w.f == nil || w.size >= w.limit || w.size+int64(len(line)) > maxSegmentOff {
		if err := w.roll(); err != nil {
			return ref{}, err
		}
	}
	if _, err := w.f.Write(line); err != nil {
		return ref{}, fmt.Errorf("store: %w", err)
	}
	r := ref{off: uint32(w.size), llen: uint32(len(line) - 1), seg: w.id}
	w.pending = append(w.pending, sideEntry{Off: r.off, Len: r.llen, Key: key})
	w.size += int64(len(line))
	w.bytes += int64(len(line))
	return r, nil
}

func (w *compactWriter) roll() error {
	if err := w.seal(); err != nil {
		return err
	}
	w.seq++
	path := w.nameAt(w.seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w.f, w.path, w.size, w.pending = f, path, 0, nil
	w.id = w.tab.add(path)
	w.live[w.id] = path
	w.met.Load().rotated()
	return nil
}

// seal fsyncs and closes the open segment, sidecar first. Unlike a normal
// writer's seal, the fsync is mandatory: old segments are deleted on the
// strength of these bytes being durable.
func (w *compactWriter) seal() error {
	if w.f == nil {
		return nil
	}
	if writeSidecar(w.path, w.size, 0, w.pending) == nil {
		w.met.Load().sidecarRebuild()
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w.f, w.pending = nil, nil
	return nil
}

func (w *compactWriter) finish() error { return w.seal() }
