package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSharedCrossOwnerVisibility(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenShared[payload](dir, "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenShared[payload](dir, "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Put("k1", pay(1)); err != nil {
		t.Fatal(err)
	}
	// b has never seen k1; the Get-miss path must refresh and find it.
	if v, ok := b.Get("k1"); !ok || v != pay(1) {
		t.Fatalf("b.Get(k1) = %v, %v; want cross-owner hit", v, ok)
	}
	if err := b.Put("k2", pay(2)); err != nil {
		t.Fatal(err)
	}
	if v, ok := a.Get("k2"); !ok || v != pay(2) {
		t.Fatalf("a.Get(k2) = %v, %v; want cross-owner hit", v, ok)
	}
	// Incremental: a second refresh applies nothing new.
	if n, err := a.Refresh(); err != nil || n != 0 {
		t.Fatalf("Refresh after full catch-up applied %d records, err %v", n, err)
	}
	if a.Len() != 2 || b.Len() != 2 {
		t.Fatalf("Len: a=%d b=%d, want 2/2", a.Len(), b.Len())
	}
}

// TestSharedRefreshDashPrefixOwners pins the own-vs-foreign partition rule
// on Refresh: owner "w1" must keep tailing owner "w1-2"'s segments even
// though their names start with w1's "seg-w1-" prefix. A loose prefix check
// would classify them as w1's own and never tail bytes appended after open.
func TestSharedRefreshDashPrefixOwners(t *testing.T) {
	dir := t.TempDir()
	short, err := OpenShared[payload](dir, "w1")
	if err != nil {
		t.Fatal(err)
	}
	defer short.Close()
	long, err := OpenShared[payload](dir, "w1-2")
	if err != nil {
		t.Fatal(err)
	}
	defer long.Close()

	// Appended after short opened, so only Refresh can surface it.
	if err := long.Put("k-long", pay(42)); err != nil {
		t.Fatal(err)
	}
	if v, ok := short.Get("k-long"); !ok || v != pay(42) {
		t.Fatalf("w1 must tail w1-2's segments on refresh: got %v, %v", v, ok)
	}
	// And the other direction: "w1"'s segments are plainly foreign to "w1-2".
	if err := short.Put("k-short", pay(7)); err != nil {
		t.Fatal(err)
	}
	if v, ok := long.Get("k-short"); !ok || v != pay(7) {
		t.Fatalf("w1-2 must tail w1's segments: got %v, %v", v, ok)
	}
}

func TestSharedOwnerLeaseExclusive(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenShared[payload](dir, "w1")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := OpenShared[payload](dir, "w1"); err == nil {
		t.Fatal("second open of the same owner lease must fail")
	}
	if _, err := OpenShared[payload](dir, "w1/../evil"); err == nil {
		t.Fatal("path-unsafe owner must be rejected")
	}
	if _, err := OpenShared[payload](dir, ""); err == nil {
		t.Fatal("empty owner must be rejected")
	}
}

func TestSharedIgnoresTornForeignTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenShared[payload](dir, "w1")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Simulate another owner mid-write: one complete record, then a torn line.
	foreign := filepath.Join(dir, "seg-w2-00000001.jsonl")
	complete := `{"k":"done","v":{"Median":1,"Mean":2,"Ranks":3}}` + "\n"
	if err := os.WriteFile(foreign, []byte(complete+`{"k":"torn","v":{"Med`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Get("done"); !ok {
		t.Fatal("complete foreign line must be visible")
	}
	if _, ok := w.Get("torn"); ok {
		t.Fatal("torn tail must stay invisible until completed")
	}
	if w.Dropped() != 0 {
		t.Fatalf("torn tail must not count as dropped, got %d", w.Dropped())
	}
	// The writer finishes the line: the next refresh picks it up where the
	// offset left off.
	f, err := os.OpenFile(foreign, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`ian":5,"Mean":6,"Ranks":7}}` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if v, ok := w.Get("torn"); !ok || v != (payload{Median: 5, Mean: 6, Ranks: 7}) {
		t.Fatalf("completed tail must resolve, got %v, %v", v, ok)
	}
}

func TestSharedReopenReplaysOwnAndForeign(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenShared[payload](dir, "a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := a.Put(fmt.Sprintf("a-%d", i), pay(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := OpenShared[payload](dir, "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("b-0", pay(9)); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	a2, err := OpenShared[payload](dir, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	want := []string{"a-0", "a-1", "a-2", "a-3", "a-4", "b-0"}
	if !reflect.DeepEqual(a2.Keys(), want) {
		t.Fatalf("reopened keys = %v, want %v", a2.Keys(), want)
	}
	// New writes must not collide with the previous run's segments.
	if err := a2.Put("a-5", pay(5)); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-a-*.jsonl"))
	if len(segs) != 2 {
		t.Fatalf("own segments after reopen = %v, want 2", segs)
	}
}

func TestSharedInteropWithDisk(t *testing.T) {
	dir := t.TempDir()
	// A plain Disk store seeds the directory...
	d, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("seed", pay(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// ...a fleet writes through Shared leases...
	w, err := OpenShared[payload](dir, "w1")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := w.Get("seed"); !ok || v != pay(1) {
		t.Fatalf("shared must read Disk segments, got %v, %v", v, ok)
	}
	if err := w.Put("fleet", pay(2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// ...and a later Disk open replays both, resuming its own numbering
	// without colliding with the owner-named segments.
	d2, err := OpenDisk[payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if v, ok := d2.Get("fleet"); !ok || v != pay(2) {
		t.Fatalf("Disk must replay owner segments, got %v, %v", v, ok)
	}
	if err := d2.Put("after", pay(3)); err != nil {
		t.Fatal(err)
	}
	if d2.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", d2.Dropped())
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	names := map[string]bool{}
	for _, s := range segs {
		if names[filepath.Base(s)] {
			t.Fatalf("duplicate segment name in %v", segs)
		}
		names[filepath.Base(s)] = true
	}
	if !names["seg-00000002.jsonl"] {
		t.Fatalf("Disk reopen must resume plain numbering, got %v", segs)
	}
}

func TestSharedRotationAndSync(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenShared[payload](dir, "w0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Dir() != dir || s.Owner() != "w0" {
		t.Fatalf("Dir/Owner = %q/%q, want %q/%q", s.Dir(), s.Owner(), dir, "w0")
	}

	// Force a rotation on every append: each Put after the first must open
	// a fresh owner-named segment, and every record must survive a reopen.
	s.SegmentBytes = 1
	const n = 5
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), pay(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-w0-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < n {
		t.Fatalf("rotation produced %d segments, want >= %d", len(segs), n)
	}

	r, err := OpenShared[payload](dir, "reader")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != n {
		t.Fatalf("reader replayed %d records across rotated segments, want %d", r.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := r.Get(fmt.Sprintf("k%d", i)); !ok || v != pay(i) {
			t.Fatalf("Get(k%d) = %v, %v after rotation", i, v, ok)
		}
	}
}
