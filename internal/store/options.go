package store

// Defaults for the lazy disk stores. Shards bound writer/reader contention
// (64 shards × per-shard mutexes is plenty for GOMAXPROCS-scale fan-in);
// the cache bounds decode work for hot keys while keeping resident memory
// O(records × ~32B) + O(cache × value).
const (
	DefaultShards       = 64
	DefaultCacheEntries = 4096
)

// config collects the knobs OpenDisk and OpenShared accept.
type config struct {
	shards       int
	cacheEntries int
	legacy       func(string) bool
	metrics      *Metrics
}

// An Option tunes OpenDisk/OpenShared.
type Option func(*config)

// WithShards sets the index shard count (rounded up to a power of two,
// minimum 1). More shards cut lock contention under concurrent load at a
// few hundred bytes apiece.
func WithShards(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.shards = n
		}
	}
}

// WithCache bounds the decoded-value cache to n entries across the whole
// store (split evenly over shards). Zero disables caching: every Get hit
// reads and decodes its record from the page cache.
func WithCache(n int) Option {
	return func(c *config) {
		if n >= 0 {
			c.cacheEntries = n
		}
	}
}

// WithMetrics attaches observability series before replay begins, so the
// open itself (sidecar loads, self-heal rebuilds) is counted. SetMetrics
// attaches the same series after the fact for stores opened uninstrumented.
func WithMetrics(m *Metrics) Option {
	return func(c *config) { c.metrics = m }
}

// WithLegacyKey installs a predicate marking keys from older fingerprint
// generations. The store counts matching keys incrementally during replay
// and Put (reported by Legacy()), and Compact drops their records. The
// predicate must be pure and safe for concurrent use.
func WithLegacyKey(fn func(key string) bool) Option {
	return func(c *config) { c.legacy = fn }
}

func buildConfig(opts []Option) config {
	c := config{shards: DefaultShards, cacheEntries: DefaultCacheEntries}
	for _, o := range opts {
		o(&c)
	}
	return c
}
