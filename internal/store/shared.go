package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

// Shared is the multi-writer sibling of Disk: several processes (fabric
// workers, a coordinator) share one result directory, each appending only to
// its own lease — segments named seg-<owner>-NNNNNNNN.jsonl, guarded by an
// exclusive flock on .lock-<owner> — while reading everyone's. No write path
// is ever contended across processes, so the single-writer invariant Disk
// enforces per directory holds per owner instead.
//
// Foreign segments are tailed incrementally: Refresh (and every Get miss)
// replays only the bytes other owners appended since the last look, and only
// complete lines — a torn tail another process is mid-writing is left for the
// next pass, never dropped. Because values are deterministic functions of
// their fingerprint key, concurrent writers racing on the same key are
// byte-equivalent and last-write-wins is safe.
type Shared[R any] struct {
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	// Set it before the first Put; it is read under the store lock.
	SegmentBytes int64

	mu      sync.Mutex
	dir     string
	owner   string
	prefix  string   // "seg-<owner>-": this store's segment namespace
	lock    *os.File // flock-held .lock-<owner> file
	idx     map[string]R
	offsets map[string]int64 // foreign segment → bytes consumed
	seg     *os.File         // active own segment; nil until the first Put
	segSize int64
	segSeq  int
	torn    bool
	dropped int
	closed  bool
	met     atomic.Pointer[Metrics]
}

// SetMetrics attaches (or, with nil, detaches) observability series. Safe to
// call at any time, including while the store is in use.
func (s *Shared[R]) SetMetrics(m *Metrics) {
	s.met.Store(m)
	m.records(s.Len())
}

// OpenShared opens (creating if needed) a shared store rooted at dir, writing
// as owner. The owner names this writer's lease: it must be unique among live
// processes sharing the directory (hostname-pid style) and path-safe
// (letters, digits, '.', '_', '-'). Opening replays every segment in the
// directory — this owner's previous runs and every other owner's — into the
// index; fresh writes always start a new segment.
//
// A directory may be used by Disk and Shared stores at different times (both
// speak the same JSON-lines record format and Disk replays owner-named
// segments), but not concurrently: Disk's lock claims the whole directory,
// Shared's only its owner lease.
func OpenShared[R any](dir, owner string) (*Shared[R], error) {
	if err := validOwner(owner); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, ".lock-"+owner), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: owner %q already writes to %s (owners must be unique per live process): %w", owner, dir, err)
	}
	s := &Shared[R]{
		SegmentBytes: DefaultSegmentBytes,
		dir:          dir,
		owner:        owner,
		prefix:       "seg-" + owner + "-",
		lock:         lock,
		idx:          map[string]R{},
		offsets:      map[string]int64{},
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(segs)
	for _, path := range segs {
		base := filepath.Base(path)
		if n, ok := segSeqOf(base, s.prefix); ok {
			// Our own lease from a previous run: static now (we always open a
			// fresh segment), so replay fully and resume numbering after it.
			if err := s.replayOwn(path); err != nil {
				lock.Close()
				return nil, err
			}
			if n > s.segSeq {
				s.segSeq = n
			}
			continue
		}
		// Foreign (another owner's, or a plain Disk segment): tail it.
		if _, err := s.tailLocked(path); err != nil {
			lock.Close()
			return nil, err
		}
	}
	return s, nil
}

func validOwner(owner string) error {
	if owner == "" {
		return fmt.Errorf("store: empty owner")
	}
	for _, r := range owner {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("store: owner %q: only letters, digits, '.', '_' and '-' are allowed", owner)
		}
	}
	return nil
}

// segSeqOf parses prefix + zero-padded digits + ".jsonl", reporting the
// sequence number. Anything else — another owner's lease, foreign droppings —
// reports false.
func segSeqOf(base, prefix string) (int, bool) {
	num, ok := strings.CutPrefix(base, prefix)
	if !ok {
		return 0, false
	}
	num, ok = strings.CutSuffix(num, ".jsonl")
	if !ok || num == "" {
		return 0, false
	}
	for _, r := range num {
		if r < '0' || r > '9' {
			return 0, false
		}
	}
	n, err := strconv.Atoi(num)
	if err != nil {
		return 0, false
	}
	return n, true
}

// replayOwn loads one of this owner's closed segments (trusted complete:
// nobody else writes our lease, and we are not mid-write at open time).
func (s *Shared[R]) replayOwn(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		s.apply(sc.Bytes())
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: reading %s: %w", path, err)
	}
	return nil
}

// apply indexes one log line, counting unparsable ones.
func (s *Shared[R]) apply(line []byte) {
	if len(bytes.TrimSpace(line)) == 0 {
		return
	}
	var rec record
	var v R
	if json.Unmarshal(line, &rec) != nil || rec.Key == "" || json.Unmarshal(rec.Val, &v) != nil {
		s.dropped++
		return
	}
	s.idx[rec.Key] = v
}

// tailLocked reads a foreign segment from its consumed offset, applying only
// complete (newline-terminated) lines; a partial tail stays unconsumed for
// the next pass. Reports how many records were applied. Callers hold s.mu.
func (s *Shared[R]) tailLocked(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil // raced a cleanup; forget it
		}
		return 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	off := s.offsets[path]
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	buf, err := io.ReadAll(f)
	if err != nil {
		return 0, fmt.Errorf("store: reading %s: %w", path, err)
	}
	last := bytes.LastIndexByte(buf, '\n')
	if last < 0 {
		return 0, nil // no complete line appended yet
	}
	n := 0
	for _, line := range bytes.Split(buf[:last], []byte{'\n'}) {
		s.apply(line)
		n++
	}
	s.offsets[path] = off + int64(last) + 1
	return n, nil
}

// Refresh scans the directory for bytes other owners appended since the last
// look and indexes them. It reports how many records were applied. Get calls
// it automatically on a miss; call it directly to pre-warm before a batch.
func (s *Shared[R]) Refresh() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refreshLocked()
}

func (s *Shared[R]) refreshLocked() (int, error) {
	segs, err := filepath.Glob(filepath.Join(s.dir, "seg-*.jsonl"))
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	sort.Strings(segs)
	total := 0
	for _, path := range segs {
		if strings.HasPrefix(filepath.Base(path), s.prefix) {
			continue // our lease: indexed at write time
		}
		n, err := s.tailLocked(path)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Get returns the stored value for key. A miss triggers one incremental
// Refresh — the "any worker's finished cell is every worker's memo hit"
// path — before giving up.
func (s *Shared[R]) Get(key string) (R, bool) {
	mt := s.met.Load()
	t0 := mt.start()
	s.mu.Lock()
	v, ok := s.idx[key]
	if !ok {
		s.refreshLocked() // best-effort: a read error just means a miss
		v, ok = s.idx[key]
	}
	n := len(s.idx)
	s.mu.Unlock()
	mt.lookup(t0, ok)
	mt.records(n)
	return v, ok
}

// Put appends the record to this owner's active segment and indexes it. Like
// Disk.Put, the write is a single syscall, so foreign readers only ever see
// whole-line granularity plus at most one torn tail — which they skip until
// it completes.
func (s *Shared[R]) Put(key string, v R) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	val, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	line, err := json.Marshal(record{Key: key, Val: val})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')
	mt := s.met.Load()
	t0 := mt.start()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.seg == nil || s.segSize >= s.SegmentBytes || s.torn {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := s.seg.Write(line); err != nil {
		s.torn = true
		return fmt.Errorf("store: %w", err)
	}
	s.segSize += int64(len(line))
	s.idx[key] = v
	mt.appended(t0, len(s.idx))
	return nil
}

func (s *Shared[R]) rotateLocked() error {
	if s.seg != nil {
		if err := s.seg.Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.seg = nil
	}
	s.torn = false
	s.segSeq++
	path := filepath.Join(s.dir, fmt.Sprintf("%s%08d.jsonl", s.prefix, s.segSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.seg, s.segSize = f, 0
	s.met.Load().rotated()
	return nil
}

// Keys returns every indexed key, sorted. Call Refresh first for a view that
// includes other owners' latest writes.
func (s *Shared[R]) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.idx))
	for k := range s.idx {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of indexed keys (see Keys about staleness).
func (s *Shared[R]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// Dropped returns how many unparsable log lines were skipped so far.
func (s *Shared[R]) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Dir returns the directory backing the store; Owner this writer's lease.
func (s *Shared[R]) Dir() string   { return s.dir }
func (s *Shared[R]) Owner() string { return s.owner }

// Sync forces the active segment to stable storage.
func (s *Shared[R]) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	if err := s.seg.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close syncs and closes the active segment and releases the owner lease.
// The index stays readable; Put fails after Close.
func (s *Shared[R]) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.seg != nil {
		err = s.seg.Sync()
		if cerr := s.seg.Close(); err == nil {
			err = cerr
		}
		s.seg = nil
	}
	if s.lock != nil {
		if cerr := s.lock.Close(); err == nil {
			err = cerr
		}
		s.lock = nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
