package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

// Shared is the multi-writer sibling of Disk: several processes (fabric
// workers, a coordinator) share one result directory, each appending only to
// its own lease — segments named seg-<owner>-NNNNNNNN.jsonl, guarded by an
// exclusive flock on .lock-<owner> — while reading everyone's. No write path
// is ever contended across processes, so the single-writer invariant Disk
// enforces per directory holds per owner instead.
//
// Shared shares Disk's million-record machinery: the fingerprint-sharded
// lazy index (key → segment/offset/length, values decoded on demand through
// a bounded LRU), sidecar-indexed warm opens, and Compact — which rewrites
// only this owner's segments and leaves every other owner's untouched.
//
// Foreign segments are tailed incrementally: Refresh (and every Get miss)
// indexes only the bytes other owners appended since the last look, and only
// complete lines — a torn tail another process is mid-writing is left for the
// next pass, never dropped. A foreign segment's sidecar (written when its
// owner sealed it) warm-starts the tail at the covered prefix. Because values
// are deterministic functions of their fingerprint key, concurrent writers
// racing on the same key are byte-equivalent and last-write-wins is safe.
type Shared[R any] struct {
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	// Set it before the first Put; it is read under the store lock.
	SegmentBytes int64

	dir    string
	owner  string
	prefix string   // "seg-<owner>-": this store's segment namespace
	lock   *os.File // flock-held .lock-<owner> file
	cfg    config
	met    atomic.Pointer[Metrics]

	idx *index[R]
	tab *segTable

	// Writer state for this owner's lease (mirrors Disk).
	wmu     sync.Mutex
	seg     *os.File // active own segment; nil until the first Put
	segID   int32
	segPath string
	segSize int64
	segSeq  int
	torn    bool
	closed  bool
	pending []sideEntry
	ownLive map[int32]string // id → path of this owner's segments

	// Reader state for everyone else's segments.
	rmu     sync.Mutex
	foreign map[string]*foreignSeg // path → tail progress

	dropped  atomic.Int64
	replayed atomic.Int64
}

// foreignSeg tracks how far into another owner's segment we have indexed.
type foreignSeg struct {
	id       int32
	consumed int64 // bytes indexed (complete lines only)
}

// SetMetrics attaches (or, with nil, detaches) observability series. Safe to
// call at any time, including while the store is in use.
func (s *Shared[R]) SetMetrics(m *Metrics) {
	s.met.Store(m)
	m.records(s.Len())
}

// OpenShared opens (creating if needed) a shared store rooted at dir, writing
// as owner. The owner names this writer's lease: it must be unique among live
// processes sharing the directory (hostname-pid style) and path-safe
// (letters, digits, '.', '_', '-'). Opening indexes every segment in the
// directory — this owner's previous runs replay concurrently (sidecar-warm
// when possible, self-healing when not), other owners' tails start from their
// sidecars' covered prefix; fresh writes always start a new segment.
//
// A directory may be used by Disk and Shared stores at different times (both
// speak the same JSON-lines record format and Disk replays owner-named
// segments), but not concurrently: Disk's lock claims the whole directory,
// Shared's only its owner lease.
func OpenShared[R any](dir, owner string, opts ...Option) (*Shared[R], error) {
	if err := validOwner(owner); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, ".lock-"+owner), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: owner %q already writes to %s (owners must be unique per live process): %w", owner, dir, err)
	}
	s := &Shared[R]{
		SegmentBytes: DefaultSegmentBytes,
		dir:          dir,
		owner:        owner,
		prefix:       "seg-" + owner + "-",
		lock:         lock,
		cfg:          buildConfig(opts),
		tab:          &segTable{},
		ownLive:      map[int32]string{},
		foreign:      map[string]*foreignSeg{},
	}
	s.met.Store(s.cfg.metrics)
	s.idx = newIndex[R](s.cfg.shards, s.cfg.cacheEntries, s.cfg.legacy, &s.met)
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(segs)
	var ownPaths []string
	var ownIDs []int32
	var foreignPaths []string
	for _, path := range segs {
		if n, ok := segSeqOf(filepath.Base(path), s.prefix); ok {
			// Our own lease from a previous run: static now (we always open a
			// fresh segment), so replay fully and resume numbering after it.
			id := s.tab.add(path)
			s.ownLive[id] = path
			ownPaths = append(ownPaths, path)
			ownIDs = append(ownIDs, id)
			if n > s.segSeq {
				s.segSeq = n
			}
			continue
		}
		foreignPaths = append(foreignPaths, path)
	}
	if err := replayAll(s.idx, s.tab, ownPaths, ownIDs, replayOpts{
		selfHeal: true, tornIsDropped: true,
		dropped: &s.dropped, replayed: &s.replayed, met: &s.met,
	}); err != nil {
		lock.Close()
		return nil, err
	}
	// Foreign (another owner's, or a plain Disk segment): tail it.
	s.rmu.Lock()
	for _, path := range foreignPaths {
		if _, err := s.tailLocked(path); err != nil {
			s.rmu.Unlock()
			lock.Close()
			return nil, err
		}
	}
	s.rmu.Unlock()
	return s, nil
}

func validOwner(owner string) error {
	if owner == "" {
		return fmt.Errorf("store: empty owner")
	}
	for _, r := range owner {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("store: owner %q: only letters, digits, '.', '_' and '-' are allowed", owner)
		}
	}
	return nil
}

// segSeqOf parses prefix + zero-padded digits + ".jsonl", reporting the
// sequence number. Anything else — another owner's lease, foreign droppings —
// reports false.
func segSeqOf(base, prefix string) (int, bool) {
	num, ok := strings.CutPrefix(base, prefix)
	if !ok {
		return 0, false
	}
	num, ok = strings.CutSuffix(num, ".jsonl")
	if !ok || num == "" {
		return 0, false
	}
	for _, r := range num {
		if r < '0' || r > '9' {
			return 0, false
		}
	}
	n, err := strconv.Atoi(num)
	if err != nil {
		return 0, false
	}
	return n, true
}

// tailLocked indexes a foreign segment from its consumed offset, taking the
// segment owner's sidecar as a warm start on first contact and then scanning
// only complete (newline-terminated) lines; a partial tail stays unconsumed
// for the next pass. Reports how many records were indexed. Callers hold
// s.rmu.
func (s *Shared[R]) tailLocked(path string) (int, error) {
	fs := s.foreign[path]
	applied := 0
	if fs == nil {
		fs = &foreignSeg{id: s.tab.add(path)}
		s.foreign[path] = fs
		if st, err := os.Stat(path); err == nil && st.Size() <= maxSegmentOff {
			if entries, dropped, covered, ok := loadSidecar(path, st.Size()); ok {
				for _, e := range entries {
					s.idx.setIfNewer(e.Key, ref{off: e.Off, llen: e.Len, seg: fs.id}, nil)
				}
				s.dropped.Add(int64(dropped))
				fs.consumed = covered
				applied = len(entries)
				s.met.Load().sidecarLoad()
			}
		}
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return applied, nil // raced a cleanup; forget it
		}
		return applied, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(fs.consumed, 0); err != nil {
		return applied, fmt.Errorf("store: %w", err)
	}
	res, err := scanSegment(f, fs.consumed)
	if err != nil {
		return applied, fmt.Errorf("store: reading %s: %w", path, err)
	}
	for _, e := range res.entries {
		s.idx.setIfNewer(e.Key, ref{off: e.Off, llen: e.Len, seg: fs.id}, nil)
	}
	s.dropped.Add(int64(res.dropped))
	s.replayed.Add(int64(res.parsed))
	fs.consumed += res.consumed
	return applied + len(res.entries), nil
}

// Refresh scans the directory for bytes other owners appended since the last
// look and indexes them. It reports how many records were applied. Get calls
// it automatically on a miss; call it directly to pre-warm before a batch.
func (s *Shared[R]) Refresh() (int, error) {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	return s.refreshLocked()
}

func (s *Shared[R]) refreshLocked() (int, error) {
	segs, err := filepath.Glob(filepath.Join(s.dir, "seg-*.jsonl"))
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	sort.Strings(segs)
	total := 0
	for _, path := range segs {
		// Skip only segments that parse as our own lease — the same rule
		// OpenShared partitions by. A bare prefix check would also skip a
		// dash-prefixed sibling's segments (owner "w1" vs "w1-2"), leaving
		// that owner's records permanently untailed.
		if _, ok := segSeqOf(filepath.Base(path), s.prefix); ok {
			continue // our lease: indexed at write time
		}
		n, err := s.tailLocked(path)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Get returns the stored value for key. A miss triggers one incremental
// Refresh — the "any worker's finished cell is every worker's memo hit"
// path — before giving up.
func (s *Shared[R]) Get(key string) (R, bool) {
	mt := s.met.Load()
	t0 := mt.start()
	v, ok := getLazy(s.idx, s.tab, key, &s.met)
	if !ok {
		s.Refresh() // best-effort: a read error just means a miss
		v, ok = getLazy(s.idx, s.tab, key, &s.met)
	}
	mt.lookup(t0, ok)
	mt.records(int(s.idx.count.Load()))
	return v, ok
}

// Put appends the record to this owner's active segment and indexes it. Like
// Disk.Put, the write is a single syscall, so foreign readers only ever see
// whole-line granularity plus at most one torn tail — which they skip until
// it completes.
func (s *Shared[R]) Put(key string, v R) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	line, err := encodeRecord(key, v)
	if err != nil {
		return err
	}
	mt := s.met.Load()
	t0 := mt.start()
	s.wmu.Lock()
	if s.closed {
		s.wmu.Unlock()
		return fmt.Errorf("store: closed")
	}
	if s.seg == nil || s.segSize >= s.SegmentBytes || s.torn ||
		s.segSize+int64(len(line)) > maxSegmentOff {
		if err := s.rotateLocked(); err != nil {
			s.wmu.Unlock()
			return err
		}
	}
	if _, err := s.seg.Write(line); err != nil {
		s.torn = true
		s.wmu.Unlock()
		return fmt.Errorf("store: %w", err)
	}
	rf := ref{off: uint32(s.segSize), llen: uint32(len(line) - 1), seg: s.segID}
	s.pending = append(s.pending, sideEntry{Off: rf.off, Len: rf.llen, Key: key})
	s.segSize += int64(len(line))
	// Index before releasing wmu — Compact snapshots under wmu and deletes
	// old segments; see Disk.Put.
	s.idx.setIfNewer(key, rf, &v)
	s.wmu.Unlock()
	mt.appended(t0, int(s.idx.count.Load()))
	return nil
}

// rotateLocked seals the active segment (sidecar + close, so other owners
// and future opens get the warm path) and opens the next one. Callers hold
// s.wmu.
func (s *Shared[R]) rotateLocked() error {
	if err := s.sealLocked(); err != nil {
		return err
	}
	s.torn = false
	s.segSeq++
	path := filepath.Join(s.dir, fmt.Sprintf("%s%08d.jsonl", s.prefix, s.segSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.seg, s.segPath, s.segSize, s.pending = f, path, 0, nil
	s.segID = s.tab.add(path)
	s.ownLive[s.segID] = path
	s.met.Load().rotated()
	return nil
}

// sealLocked closes the active segment after writing its sidecar (best
// effort — the sidecar is a cache). Callers hold s.wmu.
func (s *Shared[R]) sealLocked() error {
	if s.seg == nil {
		return nil
	}
	if writeSidecar(s.segPath, s.segSize, 0, s.pending) == nil {
		s.met.Load().sidecarRebuild()
	}
	if err := s.seg.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.seg, s.pending = nil, nil
	return nil
}

// Keys returns every indexed key, sorted. Call Refresh first for a view that
// includes other owners' latest writes.
func (s *Shared[R]) Keys() []string { return s.idx.keys() }

// Len returns the number of indexed keys (see Keys about staleness).
// Allocation-free: a single atomic load.
func (s *Shared[R]) Len() int { return int(s.idx.count.Load()) }

// Legacy returns how many indexed keys the configured WithLegacyKey
// predicate classifies as legacy. Zero without a predicate.
func (s *Shared[R]) Legacy() int { return int(s.idx.legacy.Load()) }

// Dropped returns how many unparsable log lines were skipped so far.
func (s *Shared[R]) Dropped() int { return int(s.dropped.Load()) }

// Replayed returns how many record lines were JSON-parsed while opening or
// refreshing the store (sidecar-covered bytes cost zero parses).
func (s *Shared[R]) Replayed() int { return int(s.replayed.Load()) }

// Dir returns the directory backing the store; Owner this writer's lease.
func (s *Shared[R]) Dir() string   { return s.dir }
func (s *Shared[R]) Owner() string { return s.owner }

// Sync forces the active segment to stable storage.
func (s *Shared[R]) Sync() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.seg == nil {
		return nil
	}
	if err := s.seg.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close seals the active segment (sidecar included), closes every read
// handle and releases the owner lease. The index stays readable; Put fails
// after Close.
func (s *Shared[R]) Close() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.seg != nil {
		err = s.seg.Sync()
		if serr := s.sealLocked(); err == nil {
			err = serr
		}
	}
	s.tab.closeAll()
	if s.lock != nil {
		if cerr := s.lock.Close(); err == nil {
			err = cerr
		}
		s.lock = nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
