package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// A sidecar (seg-N.idx next to seg-N.jsonl) is the warm-open fast path: the
// segment's record index — (offset, length, key) per valid line — written
// once when the segment is sealed, so reopening a store reads offsets
// instead of re-parsing data. Sidecars are pure cache: they are written
// atomically (temp file + rename), carry a checksum over their entry bytes,
// and any mismatch — torn write, bit flip, a segment that shrank — falls
// back to a full replay of the segment. A sidecar whose recorded size is
// *smaller* than the segment is a valid prefix (the segment grew after
// sealing, e.g. a crashed writer's torn tail or another Shared owner still
// appending): its entries are used and only the remainder is scanned.
//
// Format, all line-oriented:
//
//	{"v":1,"size":<bytes covered>,"records":<n>,"dropped":<n>,"sum":"<fnv64a hex of entry bytes>"}
//	<off> <len> <quoted key>
//	...
const sidecarVersion = 1

// sideEntry is one record's index line.
type sideEntry struct {
	Off uint32
	Len uint32
	Key string
}

type sidecarHeader struct {
	V       int    `json:"v"`
	Size    int64  `json:"size"`
	Records int    `json:"records"`
	Dropped int    `json:"dropped"`
	Sum     string `json:"sum"`
}

// sidecarPath maps seg-X.jsonl to seg-X.idx.
func sidecarPath(segPath string) string {
	return strings.TrimSuffix(segPath, ".jsonl") + ".idx"
}

// writeSidecar seals a segment's index to disk atomically. Best-effort by
// contract: the caller treats an error as "no sidecar" (the next open
// replays and rewrites it).
func writeSidecar(segPath string, size int64, dropped int, entries []sideEntry) error {
	var body bytes.Buffer
	for _, e := range entries {
		body.WriteString(strconv.FormatUint(uint64(e.Off), 10))
		body.WriteByte(' ')
		body.WriteString(strconv.FormatUint(uint64(e.Len), 10))
		body.WriteByte(' ')
		body.WriteString(strconv.Quote(e.Key))
		body.WriteByte('\n')
	}
	hdr, err := json.Marshal(sidecarHeader{
		V: sidecarVersion, Size: size, Records: len(entries), Dropped: dropped,
		Sum: fmt.Sprintf("%016x", fnvSum(body.Bytes())),
	})
	if err != nil {
		return err
	}
	path := sidecarPath(segPath)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err = f.Write(append(hdr, '\n')); err == nil {
		_, err = f.Write(body.Bytes())
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// loadSidecar reads and verifies a segment's sidecar against the segment's
// current size. ok is false — full replay territory — when the sidecar is
// missing, torn, checksum-damaged, structurally invalid, or claims to cover
// more bytes than the segment holds (a stale index must never serve
// offsets into data that is gone).
func loadSidecar(segPath string, segSize int64) (entries []sideEntry, dropped int, covered int64, ok bool) {
	raw, err := os.ReadFile(sidecarPath(segPath))
	if err != nil {
		return nil, 0, 0, false
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, 0, 0, false
	}
	var hdr sidecarHeader
	if json.Unmarshal(raw[:nl], &hdr) != nil || hdr.V != sidecarVersion ||
		hdr.Size < 0 || hdr.Size > segSize || hdr.Records < 0 || hdr.Dropped < 0 {
		return nil, 0, 0, false
	}
	body := raw[nl+1:]
	if fmt.Sprintf("%016x", fnvSum(body)) != hdr.Sum {
		return nil, 0, 0, false
	}
	entries = make([]sideEntry, 0, hdr.Records)
	prevEnd := int64(0)
	for len(body) > 0 {
		line := body
		if i := bytes.IndexByte(body, '\n'); i >= 0 {
			line, body = body[:i], body[i+1:]
		} else {
			body = nil
		}
		e, perr := parseSideEntry(string(line))
		if perr != nil {
			return nil, 0, 0, false
		}
		// Entries must march forward and stay inside the covered bytes
		// (line plus trailing newline); anything else means the sidecar
		// does not describe this segment.
		if int64(e.Off) < prevEnd || int64(e.Off)+int64(e.Len)+1 > hdr.Size {
			return nil, 0, 0, false
		}
		prevEnd = int64(e.Off) + int64(e.Len) + 1 // +1 for the newline
		entries = append(entries, e)
	}
	if len(entries) != hdr.Records {
		return nil, 0, 0, false
	}
	return entries, hdr.Dropped, hdr.Size, true
}

func parseSideEntry(line string) (sideEntry, error) {
	rest := line
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return sideEntry{}, fmt.Errorf("store: sidecar entry %q", line)
	}
	off, err := strconv.ParseUint(rest[:sp], 10, 32)
	if err != nil {
		return sideEntry{}, err
	}
	rest = rest[sp+1:]
	sp = strings.IndexByte(rest, ' ')
	if sp < 0 {
		return sideEntry{}, fmt.Errorf("store: sidecar entry %q", line)
	}
	ln, err := strconv.ParseUint(rest[:sp], 10, 32)
	if err != nil {
		return sideEntry{}, err
	}
	key, err := strconv.Unquote(rest[sp+1:])
	if err != nil || key == "" {
		return sideEntry{}, fmt.Errorf("store: sidecar entry %q", line)
	}
	return sideEntry{Off: uint32(off), Len: uint32(ln), Key: key}, nil
}

// fnvSum is FNV-1a over a byte slice (sidecar checksums).
func fnvSum(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
