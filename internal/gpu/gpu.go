// Package gpu models GPU execution for the cluster simulator: a roofline
// kernel cost model with size-dependent efficiency (small DAP-split kernels
// cannot saturate the memory system — the paper's "poor kernel scalability"),
// a CPU launch model with background-peak and garbage-collection noise, and
// CUDA Graph capture with the recycling-keyed graph cache of §3.2.
package gpu

import (
	"math"
	"math/rand"
	"time"
)

// Arch holds the performance envelope of a GPU architecture. Numbers are
// public datasheet values; what matters to the experiments is their ratio
// (the paper's H100/A100 reference speedup of 1.66× falls out of the
// bandwidth ratio because the workload is memory-bound).
type Arch struct {
	Name string
	// PeakFLOPS is the effective math throughput in FLOP/s for the training
	// datatype mix (TF32/bf16 tensor-core GEMMs).
	PeakFLOPS float64
	// PeakBW is the DRAM bandwidth in bytes/s.
	PeakBW float64
	// LaunchOverhead is the CPU cost of launching one kernel.
	LaunchOverhead time.Duration
	// GraphReplayOverhead is the CPU cost of replaying a captured graph.
	GraphReplayOverhead time.Duration
	// KernelFixed is the fixed on-GPU overhead per kernel (scheduling,
	// tail effects), paid even by tiny kernels.
	KernelFixed time.Duration
	// MemHalfSat is the per-kernel byte volume at which a memory-bound
	// kernel reaches 50% of peak bandwidth; MathHalfSat likewise for FLOPs.
	// These drive the efficiency cliff DAP pushes kernels off of.
	MemHalfSat  float64
	MathHalfSat float64
}

// A100 returns the NVIDIA A100-SXM4-80GB envelope.
func A100() Arch {
	return Arch{
		Name:                "A100",
		PeakFLOPS:           75e12, // effective TF32 tensor-core rate at AlphaFold GEMM sizes
		PeakBW:              2.0e12,
		LaunchOverhead:      6 * time.Microsecond,
		GraphReplayOverhead: 40 * time.Microsecond,
		KernelFixed:         1500 * time.Nanosecond,
		MemHalfSat:          2.5e6,
		MathHalfSat:         2.0e9,
	}
}

// H100 returns the NVIDIA H100-SXM5 envelope.
func H100() Arch {
	return Arch{
		Name:                "H100",
		PeakFLOPS:           190e12, // effective TF32 tensor-core rate at AlphaFold GEMM sizes
		PeakBW:              3.35e12,
		LaunchOverhead:      6 * time.Microsecond,
		GraphReplayOverhead: 40 * time.Microsecond,
		KernelFixed:         1200 * time.Nanosecond,
		MemHalfSat:          4.5e6,
		MathHalfSat:         3.0e9,
	}
}

// effMem is the fraction of peak bandwidth a kernel moving `bytes` achieves.
// Saturating curve: tiny kernels are latency-bound, big kernels stream.
func (a Arch) effMem(bytes float64) float64 {
	return bytes / (bytes + a.MemHalfSat)
}

// effMath is the fraction of peak FLOPs a kernel with `flops` work achieves.
func (a Arch) effMath(flops float64) float64 {
	return flops / (flops + a.MathHalfSat)
}

// KernelDuration costs one kernel by the roofline: the slower of its math
// time and its memory time at size-derated efficiency, plus fixed overhead.
// flatEff disables the efficiency derating (used by the Figure 3 ablation
// that idealizes kernel scalability).
func (a Arch) KernelDuration(flops, bytes float64, flatEff bool) time.Duration {
	em, ef := a.effMem(bytes), a.effMath(flops)
	if flatEff {
		em, ef = 0.85, 0.85
	}
	var mathT, memT float64
	if flops > 0 {
		mathT = flops / (a.PeakFLOPS * math.Max(ef, 1e-3))
	}
	if bytes > 0 {
		memT = bytes / (a.PeakBW * math.Max(em, 1e-3))
	}
	t := math.Max(mathT, memT)
	return time.Duration(t*float64(time.Second)) + a.KernelFixed
}

// CPUModel generates the host-side noise of §3.1/§3.2: background processes
// sporadically pinning CPU cores (stretching kernel-launch times), and
// Python garbage-collection pauses.
type CPUModel struct {
	// PeakProb is the per-launch-window probability that a background CPU
	// peak is in progress; PeakStretch multiplies launch overhead during one.
	PeakProb    float64
	PeakStretch float64
	// GCEnabled injects a pause of GCPause every GCInterval launches.
	GCEnabled  bool
	GCPause    time.Duration
	GCInterval int
	// StragglerProb is the per-rank per-collective probability that a
	// background CPU peak delays the rank right before a sync point;
	// StragglerMean is the mean of the (exponential) delay. CUDA graphs cut
	// the probability by 5x because the GPU no longer waits on the host.
	StragglerProb float64
	StragglerMean time.Duration
}

// DefaultCPUModel matches the paper's observations: some cores are always at
// 100% utilization, slowing the training processes scheduled onto them, and
// Python GC periodically stalls the launch thread.
func DefaultCPUModel() CPUModel {
	return CPUModel{
		PeakProb:      0.08,
		PeakStretch:   2.5,
		GCEnabled:     true,
		GCPause:       3 * time.Millisecond,
		GCInterval:    4000,
		StragglerProb: 0.001,
		StragglerMean: 25 * time.Millisecond,
	}
}

// Quiet returns a CPU model with no noise sources (ablation use).
func Quiet() CPUModel { return CPUModel{} }

// LaunchCost returns the CPU time to issue `launches` kernels, including
// noise. rng drives the background-peak draws.
func (c CPUModel) LaunchCost(a Arch, launches int, rng *rand.Rand) time.Duration {
	if launches <= 0 {
		return 0
	}
	base := time.Duration(launches) * a.LaunchOverhead
	total := base
	// Background peaks: evaluated per 1000-launch window to keep the
	// simulation cheap while preserving burstiness.
	windows := launches/1000 + 1
	for w := 0; w < windows; w++ {
		if rng.Float64() < c.PeakProb {
			span := base / time.Duration(windows)
			total += time.Duration(float64(span) * (c.PeakStretch - 1) * rng.Float64())
		}
	}
	if c.GCEnabled && c.GCInterval > 0 {
		pauses := launches / c.GCInterval
		for p := 0; p < pauses; p++ {
			total += time.Duration(float64(c.GCPause) * (0.5 + rng.Float64()))
		}
	}
	return total
}
