package gpu

import (
	"math/rand"
	"testing"
	"time"
)

func TestKernelDurationRoofline(t *testing.T) {
	a := H100()
	// A purely memory-bound kernel's duration grows with bytes.
	small := a.KernelDuration(0, 1e6, false)
	big := a.KernelDuration(0, 1e9, false)
	if big <= small {
		t.Fatal("more bytes must take longer")
	}
	// A math-dominated kernel is insensitive to removing its few bytes.
	mathOnly := a.KernelDuration(1e12, 0, false)
	mixed := a.KernelDuration(1e12, 1e3, false)
	if mixed < mathOnly {
		t.Fatal("roofline must take the max")
	}
}

func TestEfficiencyCliff(t *testing.T) {
	a := H100()
	// Per-byte cost must be worse for small kernels (poor kernel
	// scalability): halving the size should not halve the duration.
	full := a.KernelDuration(0, 64e6, false) - a.KernelFixed
	half := a.KernelDuration(0, 8e6, false) - a.KernelFixed
	if float64(half) <= float64(full)/8*1.05 {
		t.Fatalf("small kernel should be disproportionately slow: full=%v half=%v", full, half)
	}
	// With flat efficiency the scaling is proportional.
	fullFlat := a.KernelDuration(0, 64e6, true) - a.KernelFixed
	halfFlat := a.KernelDuration(0, 8e6, true) - a.KernelFixed
	ratio := float64(fullFlat) / float64(halfFlat)
	if ratio < 7.9 || ratio > 8.1 {
		t.Fatalf("flat efficiency must scale linearly, ratio %v", ratio)
	}
}

func TestH100FasterThanA100(t *testing.T) {
	h, a := H100(), A100()
	if h.KernelDuration(1e10, 1e8, false) >= a.KernelDuration(1e10, 1e8, false) {
		t.Fatal("H100 must be faster than A100 on the same kernel")
	}
}

func TestLaunchCostScalesAndIsNoisy(t *testing.T) {
	c := DefaultCPUModel()
	a := H100()
	rng := rand.New(rand.NewSource(1))
	small := c.LaunchCost(a, 1000, rng)
	big := c.LaunchCost(a, 100000, rng)
	if big <= small {
		t.Fatal("more launches must cost more")
	}
	if small < 1000*a.LaunchOverhead {
		t.Fatal("cost below the deterministic floor")
	}
	if c.LaunchCost(a, 0, rng) != 0 {
		t.Fatal("zero launches must be free")
	}
}

func TestQuietModelIsDeterministic(t *testing.T) {
	c := Quiet()
	a := A100()
	r1 := rand.New(rand.NewSource(1))
	r2 := rand.New(rand.NewSource(99))
	if c.LaunchCost(a, 5000, r1) != c.LaunchCost(a, 5000, r2) {
		t.Fatal("quiet model must not depend on rng")
	}
}

func TestGraphCacheCapturesOncePerKey(t *testing.T) {
	g := NewGraphCache(100 * time.Millisecond)
	a := H100()
	c := Quiet()
	first := g.Launch(a, 1, 50000, c, 0)
	second := g.Launch(a, 1, 50000, c, 0)
	if first <= second {
		t.Fatal("first launch must pay the capture cost")
	}
	if second != a.GraphReplayOverhead {
		t.Fatalf("replay cost %v, want %v", second, a.GraphReplayOverhead)
	}
	// A new recycling scenario re-captures.
	other := g.Launch(a, 2, 50000, c, 0)
	if other <= second {
		t.Fatal("new key must capture again")
	}
	if g.Size() != 2 {
		t.Fatalf("cache size %d", g.Size())
	}
}

func TestGraphCacheDefaultCaptureCost(t *testing.T) {
	g := NewGraphCache(0)
	a := H100()
	first := g.Launch(a, 0, 10000, Quiet(), 0)
	want := 10000*a.LaunchOverhead + a.GraphReplayOverhead
	if first != want {
		t.Fatalf("default capture %v, want %v", first, want)
	}
}
