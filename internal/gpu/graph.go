package gpu

import "time"

// GraphCache implements the CUDA Graph cache of §3.2: AlphaFold's recycling
// makes the traced kernel sequence depend on the per-sample recycling count,
// so a single captured graph would be invalidated constantly. The cache
// keeps one captured graph per recycling scenario; the first execution of a
// scenario pays the capture cost, later executions pay only the replay
// overhead.
type GraphCache struct {
	captured map[int]bool
	// CaptureCost is the one-time cost of tracing the step into a graph
	// (roughly one eager step of extra CPU work).
	CaptureCost time.Duration
}

// NewGraphCache returns an empty cache with the given capture cost.
func NewGraphCache(captureCost time.Duration) *GraphCache {
	return &GraphCache{captured: map[int]bool{}, CaptureCost: captureCost}
}

// Launch returns the CPU cost of executing a step with `launches` kernels
// under the graph for recycling scenario `key`: the capture cost on first
// sight of the key plus one replay, or just one replay thereafter. The
// per-kernel CPU launch overhead — and with it the sensitivity to CPU
// peaks — disappears entirely.
func (g *GraphCache) Launch(a Arch, key int, launches int, c CPUModel, eagerRNGCost time.Duration) time.Duration {
	cost := a.GraphReplayOverhead
	if !g.captured[key] {
		g.captured[key] = true
		cap := g.CaptureCost
		if cap == 0 {
			// Default: capture costs one eager pass of launch work.
			cap = time.Duration(launches) * a.LaunchOverhead
		}
		cost += cap + eagerRNGCost
	}
	return cost
}

// Size returns the number of captured graphs.
func (g *GraphCache) Size() int { return len(g.captured) }
