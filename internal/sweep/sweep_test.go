package sweep

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

func testGrid() Grid {
	return Grid{Axes: []Axis{
		{Name: "arch", Values: []string{"A100", "H100"}},
		{Name: "dap", Values: []string{"1", "2", "4", "8"}},
		{Name: "seed", Values: []string{"1", "2", "3"}},
	}}
}

func TestExpandExhaustiveAndDuplicateFree(t *testing.T) {
	g := testGrid()
	points, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != g.Size() || g.Size() != 2*4*3 {
		t.Fatalf("expanded %d points, want %d", len(points), g.Size())
	}
	seen := map[string]bool{}
	for _, p := range points {
		fp := p.Fingerprint()
		if seen[fp] {
			t.Fatalf("duplicate point %q", fp)
		}
		seen[fp] = true
	}
	// Exhaustive: every combination is present.
	for _, a := range g.Axes[0].Values {
		for _, d := range g.Axes[1].Values {
			for _, s := range g.Axes[2].Values {
				fp := fmt.Sprintf("arch=%s,dap=%s,seed=%s", a, d, s)
				if !seen[fp] {
					t.Fatalf("missing point %q", fp)
				}
			}
		}
	}
	// Row-major order: last axis varies fastest.
	if points[0].Fingerprint() != "arch=A100,dap=1,seed=1" ||
		points[1].Fingerprint() != "arch=A100,dap=1,seed=2" ||
		points[3].Fingerprint() != "arch=A100,dap=2,seed=1" {
		t.Fatalf("unexpected expansion order: %q, %q, %q",
			points[0].Fingerprint(), points[1].Fingerprint(), points[3].Fingerprint())
	}
}

func TestGridValidate(t *testing.T) {
	bad := []Grid{
		{Axes: []Axis{{Name: "", Values: []string{"x"}}}},
		{Axes: []Axis{{Name: "a", Values: nil}}},
		{Axes: []Axis{{Name: "a", Values: []string{"x", "x"}}}},
		{Axes: []Axis{{Name: "a", Values: []string{"x"}}, {Name: "a", Values: []string{"y"}}}},
	}
	for i, g := range bad {
		if _, err := g.Expand(); err == nil {
			t.Fatalf("grid %d must fail validation", i)
		}
	}
}

func TestPointGet(t *testing.T) {
	p := Point{Coords: []Coord{{"arch", "H100"}, {"dap", "8"}}}
	if p.Get("dap") != "8" || p.Get("arch") != "H100" || p.Get("missing") != "" {
		t.Fatalf("Get misbehaves: %+v", p)
	}
}

func TestSeedForDeterministicAndDecorrelated(t *testing.T) {
	a := SeedFor(1, "arch=H100,dap=8")
	b := SeedFor(1, "arch=H100,dap=8")
	c := SeedFor(1, "arch=H100,dap=4")
	d := SeedFor(2, "arch=H100,dap=8")
	if a != b {
		t.Fatal("same scenario must derive the same seed")
	}
	if a == c || a == d {
		t.Fatal("different scenarios/bases must derive different seeds")
	}
	if a < 0 {
		t.Fatal("seeds must be non-negative")
	}
}

// sweepTable runs the test grid through an engine and formats the canonical
// result table, mimicking what a real sweep runner emits.
func sweepTable(workers int, cache *Cache[string], calls *atomic.Int64) Table {
	points, _ := testGrid().Expand()
	cells := make([]Cell[Point], len(points))
	for i, p := range points {
		cells[i] = Cell[Point]{Key: p.Fingerprint(), Label: p.Fingerprint(), Config: p}
	}
	eng := Engine[Point, string]{Workers: workers, Cache: cache}
	results := eng.Run(cells, func(p Point) string {
		calls.Add(1)
		// A deterministic "simulation": value derived from the scenario seed.
		return fmt.Sprintf("%d", SeedFor(7, p.Fingerprint())%100000)
	})
	tab := Table{Header: []string{"arch", "dap", "seed", "value"}}
	for i, p := range points {
		tab.Append(p.Get("arch"), p.Get("dap"), p.Get("seed"), results[i])
	}
	return tab
}

func csvBytes(t *testing.T, tab Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParallelExecutionDeterministic(t *testing.T) {
	var calls atomic.Int64
	serial := csvBytes(t, sweepTable(1, nil, &calls))
	parallel := csvBytes(t, sweepTable(8, nil, &calls))
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("workers=1 and workers=8 must emit byte-identical CSV:\n%s\nvs\n%s", serial, parallel)
	}
}

func TestMemoizationIdenticalToColdRun(t *testing.T) {
	var coldCalls atomic.Int64
	cold := csvBytes(t, sweepTable(4, nil, &coldCalls))

	cache := NewCache[string]()
	var warmCalls atomic.Int64
	first := csvBytes(t, sweepTable(4, cache, &warmCalls))
	afterFirst := warmCalls.Load()
	second := csvBytes(t, sweepTable(4, cache, &warmCalls))

	if !bytes.Equal(cold, first) || !bytes.Equal(first, second) {
		t.Fatal("memoized runs must emit byte-identical results to a cold run")
	}
	if afterFirst != int64(testGrid().Size()) {
		t.Fatalf("cold pass ran %d cells, want %d", afterFirst, testGrid().Size())
	}
	if warmCalls.Load() != afterFirst {
		t.Fatalf("warm pass recomputed cells: %d runs after warm, want %d", warmCalls.Load(), afterFirst)
	}
	if cache.Len() != testGrid().Size() {
		t.Fatalf("cache holds %d entries, want %d", cache.Len(), testGrid().Size())
	}
}

func TestCacheDeduplicatesRepeatedCells(t *testing.T) {
	cache := NewCache[int]()
	var calls atomic.Int64
	cells := []Cell[int]{
		{Key: "shared", Config: 1},
		{Key: "shared", Config: 1},
		{Key: "unique", Config: 2},
		{Key: "shared", Config: 1},
	}
	eng := Engine[int, int]{Workers: 4, Cache: cache}
	res := eng.Run(cells, func(v int) int {
		calls.Add(1)
		return v * 10
	})
	if calls.Load() != 2 {
		t.Fatalf("repeated cells must run once: %d runs, want 2", calls.Load())
	}
	if res[0] != 10 || res[1] != 10 || res[2] != 20 || res[3] != 10 {
		t.Fatalf("wrong results: %v", res)
	}
}

func TestProgressStreamsEveryCell(t *testing.T) {
	points, _ := testGrid().Expand()
	cells := make([]Cell[Point], len(points))
	for i, p := range points {
		cells[i] = Cell[Point]{Key: p.Fingerprint(), Config: p}
	}
	var events int
	var lastDone int
	eng := Engine[Point, int]{
		Workers: 3,
		OnProgress: func(ev Progress) {
			events++
			if ev.Done != lastDone+1 || ev.Total != len(cells) {
				panic(fmt.Sprintf("progress out of order: %+v after done=%d", ev, lastDone))
			}
			lastDone = ev.Done
		},
	}
	eng.Run(cells, func(Point) int { return 0 })
	if events != len(cells) {
		t.Fatalf("%d progress events, want %d", events, len(cells))
	}
}

func TestEmitters(t *testing.T) {
	tab := Table{Header: []string{"a", "b"}}
	tab.Append("1", "x,y")
	tab.Append("2", `q"z`)
	var csvBuf, jsonBuf bytes.Buffer
	if err := tab.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := tab.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	wantCSV := "a,b\n1,\"x,y\"\n2,\"q\"\"z\"\n"
	if csvBuf.String() != wantCSV {
		t.Fatalf("csv = %q, want %q", csvBuf.String(), wantCSV)
	}
	if !strings.Contains(jsonBuf.String(), `"b": "x,y"`) || !strings.HasPrefix(jsonBuf.String(), "[\n") {
		t.Fatalf("json = %q", jsonBuf.String())
	}
	// Mismatched row length is an error, not silent corruption.
	bad := Table{Header: []string{"a"}, Rows: [][]string{{"1", "2"}}}
	if bad.WriteCSV(&bytes.Buffer{}) == nil || bad.WriteJSON(&bytes.Buffer{}) == nil {
		t.Fatal("mismatched row must error")
	}
}

func TestCacheKeysAndSnapshotSortedSettledOnly(t *testing.T) {
	cache := NewCache[int]()
	for i, k := range []string{"zulu", "alpha", "mike"} {
		cache.Do(k, func() int { return i * 10 })
	}
	// An in-flight entry must appear in neither Keys nor Snapshot: its value
	// cannot be read yet. Park a computation on a channel to pin it.
	started := make(chan struct{})
	release := make(chan struct{})
	go cache.Do("inflight", func() int { close(started); <-release; return 99 })
	<-started

	wantKeys := []string{"alpha", "mike", "zulu"}
	if got := cache.Keys(); !reflect.DeepEqual(got, wantKeys) {
		t.Fatalf("Keys = %v, want %v (sorted, settled only)", got, wantKeys)
	}
	snap := cache.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot has %d entries, want 3", len(snap))
	}
	want := map[string]int{"zulu": 0, "alpha": 10, "mike": 20}
	for i, e := range snap {
		if e.Key != wantKeys[i] || e.Value != want[e.Key] {
			t.Fatalf("Snapshot[%d] = %+v, want key %q value %d", i, e, wantKeys[i], want[wantKeys[i]])
		}
	}
	if cache.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (in-flight entries count)", cache.Len())
	}

	close(release)
	// The computing goroutine settles the entry; wait for it via Do (which
	// blocks on the in-flight singleflight).
	if v, hit := cache.Do("inflight", func() int { return -1 }); v != 99 || !hit {
		t.Fatalf("Do(inflight) = %d, %t", v, hit)
	}
	if got := cache.Keys(); len(got) != 4 || got[1] != "inflight" {
		t.Fatalf("settled entry must join Keys: %v", got)
	}
}

func TestEngineOnResultStreamsEveryCell(t *testing.T) {
	cache := NewCache[int]()
	cells := []Cell[int]{
		{Key: "a", Config: 1},
		{Key: "shared", Config: 2},
		{Key: "shared", Config: 2},
		{Key: "b", Config: 3},
	}
	got := map[int]int{}
	var cachedCount int
	eng := Engine[int, int]{
		Workers: 4,
		Cache:   cache,
		OnResult: func(i int, r int, cached bool) {
			if _, dup := got[i]; dup {
				t.Errorf("cell %d reported twice", i)
			}
			got[i] = r
			if cached {
				cachedCount++
			}
		},
	}
	res := eng.Run(cells, func(v int) int { return v * 10 })
	if len(got) != len(cells) {
		t.Fatalf("OnResult fired for %d cells, want %d", len(got), len(cells))
	}
	for i, r := range res {
		if got[i] != r {
			t.Fatalf("OnResult cell %d = %d, Run returned %d", i, got[i], r)
		}
	}
	if cachedCount != 1 {
		t.Fatalf("%d cached OnResult events, want 1 (the repeated key)", cachedCount)
	}
}

// Satellite regression cover: a row whose width disagrees with the header
// must fail both emitters with a precise diagnostic — wherever in the table
// it sits — and never emit a malformed document silently.
func TestTableRowLengthMismatchErrors(t *testing.T) {
	tab := Table{Header: []string{"a", "b"}}
	tab.Append("1", "2")
	tab.Append("3") // too short, after a valid row
	tab.Append("4", "5")
	wantMsg := "row has 1 fields, header has 2"
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err == nil || !strings.Contains(err.Error(), wantMsg) {
		t.Fatalf("WriteCSV error = %v, want %q", tab.WriteCSV(&bytes.Buffer{}), wantMsg)
	}
	buf.Reset()
	if err := tab.WriteJSON(&buf); err == nil || !strings.Contains(err.Error(), wantMsg) {
		t.Fatalf("WriteJSON error = %v, want %q", tab.WriteJSON(&bytes.Buffer{}), wantMsg)
	}
	long := Table{Header: []string{"a"}, Rows: [][]string{{"1", "2", "3"}}}
	wantLong := "row has 3 fields, header has 1"
	if err := long.WriteCSV(&bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), wantLong) {
		t.Fatalf("WriteCSV long-row error = %v", err)
	}
	if err := long.WriteJSON(&bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), wantLong) {
		t.Fatalf("WriteJSON long-row error = %v", err)
	}
}

func TestParseList(t *testing.T) {
	got := ParseList(" 128, 256 ,,512 ")
	if len(got) != 3 || got[0] != "128" || got[1] != "256" || got[2] != "512" {
		t.Fatalf("ParseList = %v", got)
	}
	if ParseList("") != nil {
		t.Fatal("empty list must be nil")
	}
}
