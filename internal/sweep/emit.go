package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// Table is an ordered, string-typed result set ready for emission. Sweep
// runners format one row per cell, in cell order, so the emitted bytes are
// identical across worker counts and across warm/cold caches.
type Table struct {
	Header []string
	Rows   [][]string
}

// Append adds one row; it must have len(Header) fields.
func (t *Table) Append(row ...string) {
	t.Rows = append(t.Rows, row)
}

// WriteCSV emits the table as RFC-4180 CSV with a header row.
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if len(r) != len(t.Header) {
			return fmt.Errorf("sweep: row has %d fields, header has %d", len(r), len(t.Header))
		}
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the table as a JSON array of objects whose keys follow the
// header order (hand-encoded: encoding/json would sort map keys).
func (t Table) WriteJSON(w io.Writer) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, r := range t.Rows {
		if len(r) != len(t.Header) {
			return fmt.Errorf("sweep: row has %d fields, header has %d", len(r), len(t.Header))
		}
		if _, err := io.WriteString(w, "  {"); err != nil {
			return err
		}
		for j, h := range t.Header {
			key, err := json.Marshal(h)
			if err != nil {
				return err
			}
			val, err := json.Marshal(r[j])
			if err != nil {
				return err
			}
			sep := ""
			if j > 0 {
				sep = ", "
			}
			if _, err := fmt.Fprintf(w, "%s%s: %s", sep, key, val); err != nil {
				return err
			}
		}
		tail := "},\n"
		if i == len(t.Rows)-1 {
			tail = "}\n"
		}
		if _, err := io.WriteString(w, tail); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
