// Package sweep is a declarative, parallel scenario-sweep engine for the
// cluster simulator. A sweep is described as a Grid of named Axes (GPU arch ×
// rank count × DAP width × ablation switch × seed, or any other dimensions),
// expanded into concrete Points by cartesian product. Points map to typed
// scenario configurations (Cells) and run across a bounded worker pool of
// goroutines with deterministic per-scenario seed derivation, memoization
// keyed by a canonical scenario fingerprint (repeated cells — e.g. the
// reference configuration shared by Figures 7, 8 and 9 — run once), streaming
// progress callbacks, and CSV/JSON result emitters.
//
// The experiment runners in package scalefold are thin grid declarations over
// this engine, and the `scalefold sweep` subcommand exposes the axes as CLI
// flags so scenarios the paper never plotted can be explored.
package sweep

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Axis is one named dimension of a scenario grid, with its ordered values.
type Axis struct {
	Name   string
	Values []string
}

// Coord is one concrete axis assignment of a Point.
type Coord struct {
	Axis, Value string
}

// Point is one concrete scenario: one value per grid axis, in axis order.
type Point struct {
	Coords []Coord
}

// Get returns the value of the named axis ("" if the axis is absent).
func (p Point) Get(axis string) string {
	for _, c := range p.Coords {
		if c.Axis == axis {
			return c.Value
		}
	}
	return ""
}

// Fingerprint returns the canonical "axis=value,axis=value" serialization of
// the point, in axis order. Two points are the same scenario iff their
// fingerprints are equal.
func (p Point) Fingerprint() string {
	parts := make([]string, len(p.Coords))
	for i, c := range p.Coords {
		parts[i] = c.Axis + "=" + c.Value
	}
	return strings.Join(parts, ",")
}

// Grid is an ordered set of axes describing a full-factorial sweep.
type Grid struct {
	Axes []Axis
}

// Size returns the number of points the grid expands to.
func (g Grid) Size() int {
	n := 1
	for _, a := range g.Axes {
		n *= len(a.Values)
	}
	return n
}

// Validate rejects grids that cannot expand to a duplicate-free point set:
// unnamed or empty axes, duplicate axis names, duplicate values on one axis.
func (g Grid) Validate() error {
	names := map[string]bool{}
	for _, a := range g.Axes {
		if a.Name == "" {
			return fmt.Errorf("sweep: axis with empty name")
		}
		if names[a.Name] {
			return fmt.Errorf("sweep: duplicate axis %q", a.Name)
		}
		names[a.Name] = true
		if len(a.Values) == 0 {
			return fmt.Errorf("sweep: axis %q has no values", a.Name)
		}
		seen := map[string]bool{}
		for _, v := range a.Values {
			if seen[v] {
				return fmt.Errorf("sweep: axis %q repeats value %q", a.Name, v)
			}
			seen[v] = true
		}
	}
	return nil
}

// Expand returns the cartesian product of the axes in row-major order (the
// last axis varies fastest), exactly Size() points, duplicate-free.
func (g Grid) Expand() ([]Point, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	points := make([]Point, 0, g.Size())
	idx := make([]int, len(g.Axes))
	for {
		coords := make([]Coord, len(g.Axes))
		for i, a := range g.Axes {
			coords[i] = Coord{Axis: a.Name, Value: a.Values[idx[i]]}
		}
		points = append(points, Point{Coords: coords})
		// Odometer increment, last axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(g.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return points, nil
		}
	}
}

// SeedFor derives a deterministic per-scenario RNG seed from a base seed and
// a scenario fingerprint (FNV-1a of the fingerprint mixed with the base).
// Distinct scenarios get decorrelated streams; the same scenario gets the
// same seed on every run and under every worker count.
func SeedFor(base int64, fingerprint string) int64 {
	h := fnv.New64a()
	h.Write([]byte(fingerprint))
	s := int64(h.Sum64()^uint64(base)*0x9E3779B97F4A7C15) % (1 << 62)
	if s < 0 {
		s = -s
	}
	return s
}

// ParseList splits a comma-separated axis flag ("128,256,512") into trimmed
// values, dropping empties — the canonical way CLI flags become Axis values.
func ParseList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// SortPoints orders points by fingerprint — a stable canonical order for
// emitting results of hand-assembled (non-grid) point sets.
func SortPoints(ps []Point) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Fingerprint() < ps[j].Fingerprint() })
}
