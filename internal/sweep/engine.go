package sweep

import (
	"runtime"
	"sync"
	"time"
)

// Cell is one executable scenario: a typed configuration plus its canonical
// fingerprint (the memoization key) and a human-readable label for progress
// display.
type Cell[C any] struct {
	Key    string // canonical scenario fingerprint; "" disables memoization
	Label  string
	Config C
}

// Progress is one streaming progress event, emitted as cells complete.
// Events are serialized (never concurrent) but arrive in completion order,
// which under parallel execution is not cell order.
type Progress struct {
	Done, Total int
	Key         string
	Label       string
	Cached      bool // satisfied from the memoization cache
	// Elapsed is the wall time this cell took in this call: the compute
	// time when it ran, near zero for a settled cache hit, or the time
	// spent blocked on another worker's in-flight computation of the same
	// key (singleflight).
	Elapsed time.Duration
}

// Engine executes cells across a bounded worker pool. The zero value runs
// with GOMAXPROCS workers, no memoization and no progress reporting.
type Engine[C, R any] struct {
	// Workers bounds the goroutine pool; <= 0 means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, memoizes results by Cell.Key across Run calls
	// (and across engines sharing the cache).
	Cache *Cache[R]
	// OnProgress, when non-nil, streams one event per completed cell.
	OnProgress func(Progress)
	// OnResult, when non-nil, receives each cell's index and result as the
	// cell completes. Calls arrive in completion order (not cell order) but
	// are serialized with each other and with OnProgress; for a given cell,
	// OnResult fires immediately before its OnProgress event. cached matches
	// Progress.Cached.
	OnResult func(i int, r R, cached bool)
}

// Run executes every cell and returns the results in cell order — the order
// is a function of the input alone, never of scheduling, so emitted output
// is byte-identical for any worker count. Results of cells sharing a Key are
// computed once when a Cache is set.
func (e Engine[C, R]) Run(cells []Cell[C], run func(C) R) []R {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	results := make([]R, len(cells))
	var progressMu sync.Mutex
	done := 0
	report := func(i int, cached bool, elapsed time.Duration) {
		if e.OnProgress == nil && e.OnResult == nil {
			return
		}
		progressMu.Lock()
		done++
		if e.OnResult != nil {
			e.OnResult(i, results[i], cached)
		}
		if e.OnProgress != nil {
			e.OnProgress(Progress{
				Done: done, Total: len(cells),
				Key: cells[i].Key, Label: cells[i].Label,
				Cached: cached, Elapsed: elapsed,
			})
		}
		progressMu.Unlock()
	}
	exec := func(i int) {
		start := time.Now()
		var cached bool
		if e.Cache != nil && cells[i].Key != "" {
			results[i], cached = e.Cache.Do(cells[i].Key, func() R { return run(cells[i].Config) })
		} else {
			results[i] = run(cells[i].Config)
		}
		report(i, cached, time.Since(start))
	}
	if workers <= 1 {
		for i := range cells {
			exec(i)
		}
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				exec(i)
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}
