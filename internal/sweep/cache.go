package sweep

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Cache memoizes scenario results by canonical fingerprint. It is safe for
// concurrent use and deduplicates in-flight work: when two workers reach the
// same key at once, one computes and the other blocks on the result
// (singleflight semantics), so a repeated cell never runs twice.
type Cache[R any] struct {
	mu sync.Mutex
	m  map[string]*cacheEntry[R]
}

type cacheEntry[R any] struct {
	once sync.Once
	val  R
	// done flips to true once val is written; readers that observe it may
	// read val without racing the computing goroutine.
	done atomic.Bool
}

// NewCache returns an empty result cache.
func NewCache[R any]() *Cache[R] {
	return &Cache[R]{m: map[string]*cacheEntry[R]{}}
}

// Do returns the cached result for key, computing it with f on first use.
// The second return reports whether the result came from the cache (true)
// rather than from running f in this call.
func (c *Cache[R]) Do(key string, f func() R) (R, bool) {
	c.mu.Lock()
	e, hit := c.m[key]
	if !hit {
		e = &cacheEntry[R]{}
		c.m[key] = e
	}
	c.mu.Unlock()
	ran := false
	e.once.Do(func() {
		e.val = f()
		e.done.Store(true)
		ran = true
	})
	return e.val, !ran
}

// Len returns the number of memoized scenarios, including entries whose
// computation is still in flight.
func (c *Cache[R]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Keys returns the fingerprints of every settled entry, sorted. Entries
// whose computation is still in flight are excluded — their value cannot be
// read yet — so the result is a consistent, deterministic inventory of what
// the cache actually holds.
func (c *Cache[R]) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.m))
	for k, e := range c.m {
		if e.done.Load() {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Entry is one settled cache entry, as returned by Snapshot.
type Entry[R any] struct {
	Key   string
	Value R
}

// Snapshot returns every settled entry in sorted key order — the hook a
// persistent store uses to drain the in-memory memo. Like Keys, in-flight
// entries are excluded.
func (c *Cache[R]) Snapshot() []Entry[R] {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry[R], 0, len(c.m))
	for k, e := range c.m {
		if e.done.Load() {
			out = append(out, Entry[R]{Key: k, Value: e.val})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
