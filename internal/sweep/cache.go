package sweep

import "sync"

// Cache memoizes scenario results by canonical fingerprint. It is safe for
// concurrent use and deduplicates in-flight work: when two workers reach the
// same key at once, one computes and the other blocks on the result
// (singleflight semantics), so a repeated cell never runs twice.
type Cache[R any] struct {
	mu sync.Mutex
	m  map[string]*cacheEntry[R]
}

type cacheEntry[R any] struct {
	once sync.Once
	val  R
}

// NewCache returns an empty result cache.
func NewCache[R any]() *Cache[R] {
	return &Cache[R]{m: map[string]*cacheEntry[R]{}}
}

// Do returns the cached result for key, computing it with f on first use.
// The second return reports whether the result came from the cache (true)
// rather than from running f in this call.
func (c *Cache[R]) Do(key string, f func() R) (R, bool) {
	c.mu.Lock()
	e, hit := c.m[key]
	if !hit {
		e = &cacheEntry[R]{}
		c.m[key] = e
	}
	c.mu.Unlock()
	ran := false
	e.once.Do(func() {
		e.val = f()
		ran = true
	})
	return e.val, !ran
}

// Len returns the number of memoized scenarios.
func (c *Cache[R]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
