package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // negative adds ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for i := 0; i < 100; i++ {
		h.Observe(0.05) // all in the (0.01, 0.1] bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if math.Abs(h.Sum()-5.0) > 1e-9 {
		t.Fatalf("sum = %g, want 5.0", h.Sum())
	}
	// All mass in one bucket: quantiles interpolate inside (0.01, 0.1].
	for _, q := range []float64{0.5, 0.99} {
		v := h.Quantile(q)
		if v <= 0.01 || v > 0.1 {
			t.Fatalf("q%g = %g, want within (0.01, 0.1]", q, v)
		}
	}
	// Overflow observations saturate at the last bound.
	h2 := NewHistogram([]float64{0.01, 0.1, 1})
	h2.Observe(100)
	if got := h2.Quantile(0.5); got != 1 {
		t.Fatalf("overflow quantile = %g, want 1 (last bound)", got)
	}
	// Empty histogram reports zero.
	if got := NewHistogram(nil).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Fatal("same (name, labels) must return the same counter instance")
	}
	w1 := r.Gauge("inflight", "", Label{"worker", "w-1"})
	w2 := r.Gauge("inflight", "", Label{"worker", "w-2"})
	if w1 == w2 {
		t.Fatal("distinct labels must mint distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a name as a different type must panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("scalefold_jobs_total", "Jobs by terminal state.", Label{"state", "done"}).Add(3)
	r.Counter("scalefold_jobs_total", "Jobs by terminal state.", Label{"state", "failed"}).Add(1)
	r.Gauge("scalefold_queue_depth", "Queued jobs.").Set(2)
	h := r.Histogram("scalefold_claim_seconds", "Claim RPC latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := strings.Join([]string{
		"# HELP scalefold_claim_seconds Claim RPC latency.",
		"# TYPE scalefold_claim_seconds histogram",
		`scalefold_claim_seconds_bucket{le="0.01"} 1`,
		`scalefold_claim_seconds_bucket{le="0.1"} 2`,
		`scalefold_claim_seconds_bucket{le="+Inf"} 3`,
		"scalefold_claim_seconds_sum 5.055",
		"scalefold_claim_seconds_count 3",
		"# HELP scalefold_jobs_total Jobs by terminal state.",
		"# TYPE scalefold_jobs_total counter",
		`scalefold_jobs_total{state="done"} 3`,
		`scalefold_jobs_total{state="failed"} 1`,
		"# HELP scalefold_queue_depth Queued jobs.",
		"# TYPE scalefold_queue_depth gauge",
		"scalefold_queue_depth 2",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", Label{"path", `a"b\c` + "\n"}).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `c_total{path="a\"b\\c\n"} 1`) {
		t.Fatalf("label not escaped: %s", buf.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("hits_total", "").Inc()
				r.Gauge("depth", "").Add(1)
				r.Histogram("lat_seconds", "", nil).Observe(0.01)
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", "").Value(); got != 1600 {
		t.Fatalf("hits = %d, want 1600", got)
	}
}

func TestTracerSpansAndLanes(t *testing.T) {
	tr := NewTracer()
	t0 := time.Now()
	tr.Span("w-1", "cell-a", "cell", t0, t0.Add(5*time.Millisecond),
		map[string]string{"owner": "w-1", "source": "simulated"})
	tr.Span("w-2", "cell-b", "cell", t0, t0.Add(3*time.Millisecond), nil)
	tr.Span("w-1", "cell-c", "cell", t0.Add(5*time.Millisecond), t0.Add(6*time.Millisecond), nil)

	events := tr.Events()
	var meta, spans []TraceEvent
	for _, e := range events {
		switch e.Ph {
		case "M":
			meta = append(meta, e)
		case "X":
			spans = append(spans, e)
		}
	}
	if len(meta) != 2 {
		t.Fatalf("lanes = %d metadata events, want 2 (one per distinct lane)", len(meta))
	}
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[0].TID != spans[2].TID {
		t.Fatal("same lane must map to the same tid")
	}
	if spans[0].TID == spans[1].TID {
		t.Fatal("distinct lanes must map to distinct tids")
	}
	if spans[0].Args["source"] != "simulated" {
		t.Fatalf("args lost: %+v", spans[0].Args)
	}
	// The wire format round-trips.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var back []TraceEvent
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if len(back) != len(events) {
		t.Fatalf("round-trip lost events: %d != %d", len(back), len(events))
	}
}

func TestTracerClamping(t *testing.T) {
	tr := NewTracer()
	past := time.Now().Add(-time.Hour)
	tr.Span("lane", "early", "cell", past, past.Add(time.Minute), nil)
	for _, e := range tr.Events() {
		if e.Ph == "X" && e.TS < 0 {
			t.Fatalf("span before trace origin must clamp to 0, got ts=%g", e.TS)
		}
	}
}

// TestObsNilFastPathAllocFree pins the uninstrumented fast path: every
// recording call on nil receivers must be a zero-allocation no-op, so code
// instrumented against an absent Registry/Tracer costs only nil checks.
// Same style as cluster's TestSimulateStepLoopAllocFree — a regression here
// means instrumentation overhead leaked into every sweep that never asked
// for metrics.
func TestObsNilFastPathAllocFree(t *testing.T) {
	var (
		r  *Registry
		c  *Counter
		g  *Gauge
		h  *Histogram
		tr *Tracer
		t0 = time.Now()
	)
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(-1)
		h.Observe(0.5)
		h.ObserveSince(t0)
		tr.Span("lane", "name", "cat", t0, t0, nil)
		_ = r.Counter("x", "")
		_ = r.Gauge("x", "")
		_ = r.Histogram("x", "", nil)
	})
	if allocs != 0 {
		t.Fatalf("nil-receiver obs calls allocated %.1f times per run, want 0", allocs)
	}
}
