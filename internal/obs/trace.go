package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TraceEvent is one span in a recorded timeline, in the Chrome trace-event
// format ("ph":"X" complete events, plus "ph":"M" metadata for lane names).
// It is field-for-field the format cluster.TraceEvent already emits for a
// simulated step, extended with the optional Args map the format defines —
// so a job's fabric-level trace and a cell's step-level timeline open in the
// same chrome://tracing or Perfetto UI.
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`            // microseconds since trace start
	Dur  float64           `json:"dur,omitempty"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Tracer records lifecycle spans against named lanes (one Perfetto thread
// row per lane — a fabric worker, a local engine slot, the queue). Spans
// carry wall-clock times; the tracer renders them as microsecond offsets
// from its creation instant. Safe for concurrent use; a nil Tracer ignores
// every call, so per-cell instrumentation costs one nil check when tracing
// is off.
type Tracer struct {
	mu     sync.Mutex
	t0     time.Time
	lanes  map[string]int
	events []TraceEvent
}

// NewTracer returns a tracer whose time origin is now.
func NewTracer() *Tracer {
	return &Tracer{t0: time.Now(), lanes: map[string]int{}}
}

// laneLocked maps a lane name to its stable tid, emitting the Perfetto
// thread_name metadata event on first use.
func (t *Tracer) laneLocked(name string) int {
	if tid, ok := t.lanes[name]; ok {
		return tid
	}
	tid := len(t.lanes)
	t.lanes[name] = tid
	t.events = append(t.events, TraceEvent{
		Name: "thread_name", Ph: "M", PID: 1, TID: tid,
		Args: map[string]string{"name": name},
	})
	return tid
}

// Span records one complete span on the named lane. Times before the
// tracer's origin clamp to it; an end before start records a zero-duration
// span. No-op on a nil Tracer.
func (t *Tracer) Span(lane, name, cat string, start, end time.Time, args map[string]string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if start.Before(t.t0) {
		start = t.t0
	}
	if end.Before(start) {
		end = start
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS:  float64(start.Sub(t.t0)) / float64(time.Microsecond),
		Dur: float64(end.Sub(start)) / float64(time.Microsecond),
		PID: 1, TID: t.laneLocked(lane),
		Args: args,
	})
}

// Events returns a snapshot copy of the recorded events, in record order.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// Len returns the number of recorded events (lane metadata included).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteChromeTrace serializes the snapshot as a Chrome trace JSON array —
// the same shape cluster.Timeline.WriteChromeTrace emits. A nil Tracer
// writes an empty array.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	if events == nil {
		events = []TraceEvent{}
	}
	return json.NewEncoder(w).Encode(events)
}
