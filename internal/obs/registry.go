package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name/value dimension of a metric series ("worker"="w-000001").
type Label struct {
	Key, Value string
}

// Registry is a named collection of metric families, each holding one series
// per distinct label set. Getter calls are get-or-create: the first call for
// a (name, labels) pair mints the series, later calls return the same
// instance — so callers hold onto the cheap atomic handle and never touch
// the registry lock on the hot path. A nil Registry returns nil metrics from
// every getter, and nil metrics ignore writes: instrumentation against an
// absent registry is free.
//
// WritePrometheus renders every family in the text exposition format
// (sorted by family name, then label signature), which GET /v1/metrics
// serves.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help, typ string // typ: "counter", "gauge" or "histogram"
	series          map[string]any
}

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelKey renders labels as a canonical `k="v",k2="v2"` signature, sorted
// by key — the series identity inside a family, and the exposition form.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// get returns the series for (name, labels), creating family and series on
// first use with mk. A name reused with a different metric type is a
// programming error and panics.
func (r *Registry) get(name, help, typ string, labels []Label, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: map[string]any{}}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = mk()
		f.series[key] = s
	}
	return s
}

// Counter returns the counter series for (name, labels), registering it on
// first use. Returns nil on a nil Registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, help, "counter", labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge series for (name, labels), registering it on
// first use. Returns nil on a nil Registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, help, "gauge", labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram series for (name, labels), registering it
// on first use (nil bounds select DefBuckets; the bounds of the first
// registration win). Returns nil on a nil Registry.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, help, "histogram", labels, func() any { return NewHistogram(bounds) }).(*Histogram)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with its # HELP and
// # TYPE lines, series sorted by label signature. Safe to call while
// metrics are being written — counters and gauges are read atomically
// (histogram bucket sums may be mid-update by at most the in-flight
// observations, which the format tolerates).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	// Snapshot the series maps under the lock; the metric values themselves
	// are atomic and rendered outside it.
	type snap struct {
		fam  *family
		keys []string
	}
	snaps := make([]snap, len(names))
	for i, n := range names {
		f := r.families[n]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		snaps[i] = snap{fam: f, keys: keys}
	}
	r.mu.Unlock()

	for _, s := range snaps {
		f := s.fam
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, key := range s.keys {
			if err := writeSeries(w, f.name, key, f.series[key]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name, key string, series any) error {
	wrap := func(extra string) string {
		switch {
		case key == "" && extra == "":
			return ""
		case key == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + key + "}"
		default:
			return "{" + key + "," + extra + "}"
		}
	}
	switch m := series.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, wrap(""), m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, wrap(""), m.Value())
		return err
	case *Histogram:
		cum := int64(0)
		for i := range m.counts {
			cum += m.counts[i].Load()
			le := "+Inf"
			if i < len(m.bounds) {
				le = formatFloat(m.bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, wrap(`le="`+le+`"`), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, wrap(""), formatFloat(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, wrap(""), m.Count())
		return err
	}
	return fmt.Errorf("obs: unknown series type %T", series)
}
