// Package obs is the observability core of the serving stack: a
// dependency-free metrics layer (atomic counters, gauges and fixed-bucket
// latency histograms, grouped in a named Registry with Prometheus text
// exposition) plus a span recorder that captures lifecycle timelines as
// Chrome trace-event JSON — the exact format cluster.Timeline already emits,
// so a job's fabric-level trace and a cell's step-level timeline open in the
// same Perfetto UI.
//
// Every type is nil-tolerant: methods on nil receivers are allocation-free
// no-ops, so instrumented code paths need no conditionals — an uninstrumented
// run (nil Registry, nil Tracer) pays only a nil check. The sweep engine, the
// fabric coordinator, the result store and the HTTP service all report here;
// future layers (analytic fast path, adaptive search) register their
// hit/escalation rates in the same Registry.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil Counter ignores writes.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on nil, negative n ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; a nil Gauge ignores writes.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value (no-op on nil).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta, which may be negative (no-op on nil).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets is the default latency histogram layout, in seconds: 500µs to
// one minute, roughly ×2.5 per step — wide enough for in-memory lookups and
// multi-second simulations to land in distinct buckets.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket distribution of float64 observations
// (typically seconds). Buckets are cumulative-upper-bound style, like
// Prometheus: counts[i] counts observations <= bounds[i], with one overflow
// bucket past the last bound. Create with NewHistogram or via
// Registry.Histogram; a nil Histogram ignores observations.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given ascending upper bounds
// (nil bounds select DefBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value (no-op on nil; NaN ignored).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds since t0 (no-op on nil).
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket holding the target rank — the p50/p99 summaries the
// run-summary lines print. Observations past the last bound report the last
// bound (the estimate saturates). Returns 0 on nil or when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n < target {
			cum += n
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		return lo + (h.bounds[i]-lo)*(target-cum)/n
	}
	return h.bounds[len(h.bounds)-1]
}
