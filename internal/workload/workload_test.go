package workload

import (
	"math"
	"testing"

	"repro/internal/model"
)

func baseline() *Program { return Census(model.FullConfig(), Baseline()) }

func TestTable1CallCounts(t *testing.T) {
	p := baseline()
	tot := p.Totals()
	checks := []struct {
		cat  Category
		want int
	}{
		{CatMath, 18147},
		{CatMem, 97749},
		{CatMemOp, 34991},
	}
	for _, c := range checks {
		got := tot[c.cat].Calls
		if math.Abs(float64(got-c.want))/float64(c.want) > 0.15 {
			t.Fatalf("%v calls %d, want within 15%% of %d", c.cat, got, c.want)
		}
	}
	if total := p.TotalCalls(); math.Abs(float64(total-150887))/150887 > 0.15 {
		t.Fatalf("total calls %d, want ~150887", total)
	}
}

func TestMemoryBoundDominates(t *testing.T) {
	tot := baseline().Totals()
	if tot[CatMem].Calls <= tot[CatMath].Calls*3 {
		t.Fatal("memory-bound launches must far exceed math-bound (Table 1)")
	}
	if tot[CatMem].Bytes <= tot[CatMath].Bytes {
		t.Fatal("memory-bound kernels must dominate traffic")
	}
}

func TestFusionReducesCallsAndBytes(t *testing.T) {
	base := baseline().Totals()
	fused := Census(model.FullConfig(), ScaleFold(1)).Totals()
	baseCalls := base[CatMath].Calls + base[CatMem].Calls + base[CatMemOp].Calls
	fusedCalls := fused[CatMath].Calls + fused[CatMem].Calls + fused[CatMemOp].Calls
	if fusedCalls >= baseCalls {
		t.Fatalf("fusion must reduce launches: %d vs %d", fusedCalls, baseCalls)
	}
	baseBytes := base[CatMath].Bytes + base[CatMem].Bytes + base[CatMemOp].Bytes
	fusedBytes := fused[CatMath].Bytes + fused[CatMem].Bytes + fused[CatMemOp].Bytes
	if fusedBytes >= baseBytes {
		t.Fatalf("fusion must reduce traffic: %g vs %g", fusedBytes, baseBytes)
	}
}

func TestDAPDividesWorkNotCalls(t *testing.T) {
	o1 := Baseline()
	o8 := Baseline()
	o8.DAP = 8
	p1 := Census(model.FullConfig(), o1)
	p8 := Census(model.FullConfig(), o8)
	t1, t8 := p1.Totals(), p8.Totals()
	if t8[CatMem].Calls != t1[CatMem].Calls {
		t.Fatal("DAP must not change the launch count per rank")
	}
	// Non-serial bytes divide; serial bytes don't, so the ratio is < 8.
	ratio := t1[CatMem].Bytes / t8[CatMem].Bytes
	if ratio < 4 || ratio > 8 {
		t.Fatalf("DAP-8 byte ratio %v, want in (4, 8]", ratio)
	}
}

func TestDAPInsertsCollectives(t *testing.T) {
	o := Baseline()
	o.DAP = 4
	p := Census(model.FullConfig(), o)
	if len(p.Syncs) == 0 {
		t.Fatal("DAP must insert sync points")
	}
	var events int
	for _, s := range p.Syncs {
		events += s.Count
		if s.Bytes <= 0 {
			t.Fatal("sync payload must be positive")
		}
	}
	if events < 100 {
		t.Fatalf("expected hundreds of sync events per step, got %d", events)
	}
	if len(baseline().Syncs) != 0 {
		t.Fatal("DAP-1 must have no sync points")
	}
}

func TestGradCheckpointAddsAPass(t *testing.T) {
	with := Baseline()
	without := Baseline()
	without.GradCheckpoint = false
	bw := Census(model.FullConfig(), with).Totals()
	bo := Census(model.FullConfig(), without).Totals()
	if bw[CatMem].Calls <= bo[CatMem].Calls {
		t.Fatal("checkpointing must add recompute kernels")
	}
	// passes 7 vs 6.
	ratio := float64(bw[CatMem].Calls) / float64(bo[CatMem].Calls)
	if ratio < 1.1 || ratio > 1.25 {
		t.Fatalf("checkpoint ratio %v, want ~7/6", ratio)
	}
}

func TestBF16ReducesTrafficAndMathTime(t *testing.T) {
	fp32 := Baseline()
	bf16 := Baseline()
	bf16.BF16 = true
	p32 := Census(model.FullConfig(), fp32).Totals()
	p16 := Census(model.FullConfig(), bf16).Totals()
	ratio := p32[CatMem].Bytes / p16[CatMem].Bytes
	if ratio < 1.3 || ratio > 2.0 {
		t.Fatalf("bf16 byte ratio %v, want in [1.3, 2.0] (paper: 1.24x step speedup)", ratio)
	}
	if p16[CatMath].Flops >= p32[CatMath].Flops {
		t.Fatal("bf16 must discount tensor-core math time")
	}
}

func TestFusedAdamRemovesPerTensorLaunches(t *testing.T) {
	base := Baseline()
	fused := Baseline()
	fused.FusedAdamSWA = true
	pb := Census(model.FullConfig(), base)
	pf := Census(model.FullConfig(), fused)
	if pb.OptKernels < ParamTensors {
		t.Fatalf("unfused optimizer must launch per tensor: %d", pb.OptKernels)
	}
	if pf.OptKernels > 1000 {
		t.Fatalf("fused optimizer must launch O(1): %d", pf.OptKernels)
	}
	if pf.ClipKernels >= pb.ClipKernels {
		t.Fatal("fused path must also shrink clip launches")
	}
}

func TestBucketedClipKernels(t *testing.T) {
	o := Baseline()
	o.BucketedClip = true
	p := Census(model.FullConfig(), o)
	if p.ClipKernels > 100 {
		t.Fatalf("bucketed clip should need tens of launches, got %d", p.ClipKernels)
	}
	if baseline().ClipKernels < 2*ParamTensors {
		t.Fatal("naive clip launches twice per tensor")
	}
}

func TestBatchedGEMMQuartersProjectionLaunches(t *testing.T) {
	base := baseline().Totals()
	o := Baseline()
	o.BatchedGEMM = true
	batched := Census(model.FullConfig(), o).Totals()
	saved := base[CatMath].Calls - batched[CatMath].Calls
	if saved <= 0 {
		t.Fatal("batching must remove GEMM launches")
	}
}

func TestTorchCompileShrinksFusableGroups(t *testing.T) {
	o := Baseline()
	o.TorchCompile = true
	base := baseline().Totals()
	compiled := Census(model.FullConfig(), o).Totals()
	if compiled[CatMem].Calls >= base[CatMem].Calls {
		t.Fatal("compile must fuse elementwise launches")
	}
}

func TestAutoFuse(t *testing.T) {
	p := baseline()
	fused := AutoFuse(p)
	if fused.TotalCalls() >= p.TotalCalls() {
		t.Fatal("AutoFuse must reduce launches")
	}
	// Non-fusable groups untouched.
	for i, g := range p.Groups {
		if !g.Fusable {
			if fused.Groups[i].Calls != g.Calls || fused.Groups[i].Bytes != g.Bytes {
				t.Fatal("AutoFuse must not touch non-fusable groups")
			}
		}
	}
}

func TestPerCallHelpers(t *testing.T) {
	g := Group{Calls: 4, Flops: 8, Bytes: 16}
	if g.PerCallFlops() != 2 || g.PerCallBytes() != 4 {
		t.Fatal("per-call math")
	}
	z := Group{}
	if z.PerCallFlops() != 0 || z.PerCallBytes() != 0 {
		t.Fatal("zero-call group")
	}
}

func TestSerialShare(t *testing.T) {
	s := baseline().SerialShareBytes()
	if s <= 0 || s >= 0.5 {
		t.Fatalf("serial byte share %v, want small but nonzero", s)
	}
}

func TestCensusScalesWithGeometry(t *testing.T) {
	small := Census(model.SmallConfig(), Baseline())
	full := baseline()
	if small.TotalCalls() >= full.TotalCalls() {
		t.Fatal("smaller geometry must emit fewer kernels")
	}
	st, ft := small.Totals(), full.Totals()
	if st[CatMem].Bytes >= ft[CatMem].Bytes {
		t.Fatal("smaller geometry must move fewer bytes")
	}
}
