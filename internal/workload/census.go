package workload

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/model"
)

// builder accumulates the census. All emitters take per-pass quantities and
// multiply by mult (stack depth × forward-equivalent passes).
type builder struct {
	groups []Group
	opt    Options
	bpe    float64
}

func (b *builder) emit(g Group) { b.groups = append(b.groups, g) }

// ParamTensors is the number of trainable tensors ("over four thousand
// gradient tensors", §3.3.1).
const ParamTensors = 4400

// ParamCount is the AlphaFold parameter count (97M).
const ParamCount = 97e6

// Census builds the full step Program for the given model geometry and
// optimization options. Geometry should be model.FullConfig() for the
// paper-scale experiments; smaller geometries scale everything down
// consistently.
func Census(cfg model.Config, o Options) *Program {
	b := &builder{opt: o, bpe: o.bytesPerElem()}
	passes := o.passes()

	S := cfg.MSADepth
	R := cfg.Crop
	CM := float64(cfg.CM)
	CZ := float64(cfg.CZ)
	H := cfg.Heads

	// --- Input embedding + data handling (serial: DAP cannot split it) ---
	embedElems := float64(S*R)*CM + float64(R*R)*CZ
	b.emit(Group{Name: "embed/gemm", Cat: CatMath, Calls: 10 * passes, Serial: true,
		Flops: 2 * embedElems * 64 * float64(passes), Bytes: 2 * embedElems * b.bpe * float64(passes)})
	b.emit(Group{Name: "embed/elemwise", Cat: CatMem, Calls: 60 * passes, Serial: true, Fusable: true,
		Bytes: 4 * embedElems * b.bpe * float64(passes)})
	b.emit(Group{Name: "embed/copies", Cat: CatMemOp, Calls: 40 * passes, Serial: true,
		Bytes: 2 * embedElems * b.bpe * float64(passes)})

	// --- Template pair stack (pair-only blocks) ---
	for blk := 0; blk < cfg.TemplateBlocks; blk++ {
		b.pairBlock(fmt.Sprintf("template.%d", blk), R, CZ, float64(cfg.CTri), H, passes)
	}

	// --- Extra MSA stack (wide-S, narrow-channel blocks) ---
	for blk := 0; blk < cfg.ExtraBlocks; blk++ {
		b.evoBlock(fmt.Sprintf("extra.%d", blk), cfg.ExtraMSA, R, float64(cfg.CME), CZ, float64(cfg.CTri), float64(cfg.COPM), H, passes)
	}

	// --- Evoformer stack ---
	for blk := 0; blk < cfg.EvoBlocks; blk++ {
		b.evoBlock(fmt.Sprintf("evo.%d", blk), S, R, CM, CZ, float64(cfg.CTri), float64(cfg.COPM), H, passes)
	}

	// --- Structure module (serial: no DAP axis) ---
	sElems := float64(R) * float64(cfg.CS)
	for l := 0; l < cfg.StructLayers; l++ {
		name := fmt.Sprintf("struct.%d", l)
		b.emit(Group{Name: name + "/gemm", Cat: CatMath, Calls: 6 * passes, Serial: true,
			Flops: 12 * sElems * float64(cfg.CS) * float64(passes), Bytes: 3 * sElems * b.bpe * float64(passes)})
		miscCalls, miscBytes := 20, 8.0
		if o.TorchCompile {
			// torch.compile "significantly accelerated serial modules such
			// as the Structure Module" (§3.3.2).
			miscCalls, miscBytes = 6, 3.5
		}
		b.emit(Group{Name: name + "/elemwise", Cat: CatMem, Calls: miscCalls * passes, Serial: true, Fusable: true,
			Bytes: miscBytes * sElems * b.bpe * float64(passes)})
		b.emit(Group{Name: name + "/copies", Cat: CatMemOp, Calls: 6 * passes, Serial: true,
			Bytes: 2 * sElems * b.bpe * float64(passes)})
	}

	// --- Optimizer: gradient clipping + Adam + SWA (per-step, serial) ---
	p := &Program{Groups: b.groups}
	p.GradBytes = ParamCount * o.gradBytesPerParam()
	optBytes := ParamCount * 4 // fp32 master state per pass over params
	if o.FusedAdamSWA {
		// Fused kernel: bucket norms + one fused update walking all tensors.
		p.ClipKernels = 12
		b.emit(Group{Name: "opt/fused_adam_swa", Cat: CatMem, Calls: 14, Serial: true,
			Bytes: 5 * float64(optBytes)})
		b.emit(Group{Name: "opt/copies", Cat: CatMemOp, Calls: 400, Serial: true,
			Bytes: 0.2 * float64(optBytes)})
	} else {
		if o.BucketedClip {
			p.ClipKernels = 24
		} else {
			p.ClipKernels = 2*ParamTensors + 2
		}
		// Norm+scale, m, v, update, swa: six-ish launches per tensor.
		b.emit(Group{Name: "opt/adam", Cat: CatMem, Calls: 4 * ParamTensors, Serial: true,
			Bytes: 6 * float64(optBytes)})
		b.emit(Group{Name: "opt/swa", Cat: CatMem, Calls: 2 * ParamTensors, Serial: true,
			Bytes: 2 * float64(optBytes)})
		b.emit(Group{Name: "opt/clip", Cat: CatMem, Calls: p.ClipKernels, Serial: true,
			Bytes: 2 * float64(optBytes)})
		b.emit(Group{Name: "opt/copies", Cat: CatMemOp, Calls: int(1.5 * ParamTensors), Serial: true,
			Bytes: 0.5 * float64(optBytes)})
	}
	p.OptKernels = 0
	for _, g := range b.groups {
		if len(g.Name) >= 4 && g.Name[:4] == "opt/" {
			p.OptKernels += g.Calls
		}
	}
	p.Groups = b.groups

	// --- Precision: bf16 doubles the tensor-core math rate; the census
	// models it as a FLOP discount on math groups (the gpu package's peak is
	// the TF32 rate).
	if o.BF16 {
		for i := range b.groups {
			if b.groups[i].Cat == CatMath {
				b.groups[i].Flops *= 0.6
			}
		}
		p.Groups = b.groups
	}

	// --- DAP split: non-serial work divides across the DAP group ---
	if o.DAP > 1 {
		for i := range p.Groups {
			if !p.Groups[i].Serial {
				p.Groups[i].Flops /= float64(o.DAP)
				p.Groups[i].Bytes /= float64(o.DAP)
			}
		}
	}

	// --- DAP collectives ---
	if o.DAP > 1 {
		msaBytes := float64(S*R) * CM * b.bpe
		pairBytes := float64(R*R) * CZ * b.bpe
		blocks := cfg.EvoBlocks + cfg.ExtraBlocks + cfg.TemplateBlocks
		// Two all-to-alls per block per pass (row↔column axis flips), plus
		// one all-gather per block per pass for the outer-product-mean.
		p.Syncs = append(p.Syncs,
			SyncPoint{Op: comm.OpAllToAll, Bytes: (msaBytes + pairBytes) / 2 / float64(o.DAP), Count: 4 * blocks * passes},
			SyncPoint{Op: comm.OpAllGather, Bytes: msaBytes / float64(o.DAP), Count: 2 * blocks * passes},
		)
	}
	return p
}

func (o Options) gradBytesPerParam() float64 {
	if o.BF16 {
		return 2
	}
	return 4
}

// evoBlock emits one Evoformer block: 4 attention modules, 2 triangle
// multiplications, 2 transitions, 1 outer product mean (Figure 2).
func (b *builder) evoBlock(name string, s, r int, cm, cz, ct, copm float64, h, passes int) {
	// MSA-track attention: row-wise (with pair bias) and column-wise.
	b.attention(name+".rowattn", s, r, cm, cz, h, true, passes)
	b.attention(name+".colattn", r, s, cm, cz, h, false, passes)
	b.transition(name+".msatrans", float64(s*r), cm, passes)
	b.opm(name+".opm", s, r, cm, copm, cz, passes)
	b.pairCore(name, r, cz, ct, h, passes)
	b.transition(name+".pairtrans", float64(r*r), cz, passes)
}

// pairBlock emits a template-stack block (pair track only).
func (b *builder) pairBlock(name string, r int, cz, ct float64, h, passes int) {
	b.pairCore(name, r, cz, ct, h, passes)
	b.transition(name+".trans", float64(r*r), cz, passes)
}

// pairCore emits the two triangle multiplications and two triangle
// attentions shared by Evoformer and template blocks.
func (b *builder) pairCore(name string, r int, cz, ct float64, h, passes int) {
	b.triMul(name+".triout", r, cz, ct, passes)
	b.triMul(name+".triin", r, cz, ct, passes)
	b.attention(name+".tristart", r, r, cz, cz, h, true, passes)
	b.attention(name+".triend", r, r, cz, cz, h, true, passes)
}

// attention emits the AlphaFold MHA variant: nb batched attention problems
// of length l at width e, with optional pair bias projected from a [l,l]
// pair activation of width pairC.
func (b *builder) attention(name string, nb, l int, e, pairC float64, h int, pairBias bool, passes int) {
	o := b.opt
	pf := float64(passes)
	elems := float64(nb*l) * e
	logits := float64(nb * h * l * l)

	// LayerNorm on the input track.
	b.layerNorm(name+"/ln", elems, pf)

	if pairBias {
		b.emit(Group{Name: name + "/biasproj", Cat: CatMath, Calls: passes,
			Flops: 2 * float64(l*l) * pairC * float64(h) * pf,
			Bytes: (float64(l*l)*pairC + float64(l*l*h)) * b.bpe * pf})
	}

	// Four projection GEMMs (Q, K, V, gate).
	projCalls := 4
	projBytes := (8*elems + 4*e*e) * b.bpe
	if o.BatchedGEMM {
		projCalls = 1
		projBytes = (5*elems + 4*e*e) * b.bpe
	}
	b.emit(Group{Name: name + "/proj", Cat: CatMath, Calls: projCalls * passes,
		Flops: 8 * elems * e * pf, Bytes: projBytes * pf})

	if o.FusedMHA {
		// Flash-style fused kernel: the logits never hit DRAM, but the
		// backward pass re-reads Q/K/V and recomputes the probabilities, so
		// the fused kernel still moves several activation passes plus the
		// pair-bias tile traffic.
		b.emit(Group{Name: name + "/fusedmha", Cat: CatMath, Calls: passes,
			Flops: 5 * float64(nb*l*l) * e * pf,
			Bytes: (20*elems + 0.7*logits + float64(l*l*h)) * b.bpe * pf})
		// Residual fragment outside the fused kernel.
		b.emit(Group{Name: name + "/mha_misc", Cat: CatMem, Calls: 4 * passes, Fusable: true,
			Bytes: 2 * elems * b.bpe * pf})
	} else {
		b.emit(Group{Name: name + "/qk", Cat: CatMath, Calls: passes,
			Flops: 2 * float64(nb*l*l) * e * pf, Bytes: (2*elems + logits) * b.bpe * pf})
		// bias add, mask, max, exp, sum, div: six passes over the logits;
		// torch.compile fuses the chain down to two fused passes (§3.3.2).
		smCalls, smPasses := 6, 6.0
		if o.TorchCompile {
			smCalls, smPasses = 2, 2.4
		}
		b.emit(Group{Name: name + "/softmax", Cat: CatMem, Calls: smCalls * passes,
			Bytes: smPasses * logits * b.bpe * pf})
		b.emit(Group{Name: name + "/pv", Cat: CatMath, Calls: passes,
			Flops: 2 * float64(nb*l*l) * e * pf, Bytes: (logits + 2*elems) * b.bpe * pf})
		b.emit(Group{Name: name + "/gate", Cat: CatMem, Calls: 2 * passes,
			Bytes: 3 * elems * b.bpe * pf})
	}

	b.emit(Group{Name: name + "/out", Cat: CatMath, Calls: passes,
		Flops: 2 * elems * e * pf, Bytes: (2*elems + e*e) * b.bpe * pf})

	// Fragmented elementwise glue: permutes-as-compute, dropout masks,
	// residual adds. torch.compile fuses most of it.
	miscCalls, miscBytes := 16, 3.0
	if o.TorchCompile {
		miscCalls, miscBytes = 6, 2.6
	}
	b.emit(Group{Name: name + "/elemwise", Cat: CatMem, Calls: miscCalls * passes, Fusable: true,
		Bytes: miscBytes * elems * b.bpe * pf})
	b.emit(Group{Name: name + "/copies", Cat: CatMemOp, Calls: 10 * passes,
		Bytes: 3 * elems * b.bpe * pf})
}

// layerNorm emits an LN population over `elems` activations.
func (b *builder) layerNorm(name string, elems, pf float64) {
	if b.opt.FusedLN {
		b.emit(Group{Name: name, Cat: CatMem, Calls: int(pf),
			Bytes: 3.6 * elems * b.bpe * pf})
	} else {
		b.emit(Group{Name: name, Cat: CatMem, Calls: int(4 * pf),
			Bytes: 4.5 * elems * b.bpe * pf})
	}
}

// triMul emits one triangle multiplicative update.
func (b *builder) triMul(name string, r int, cz, ct float64, passes int) {
	pf := float64(passes)
	pairElems := float64(r*r) * cz
	b.layerNorm(name+"/ln", pairElems, pf)
	// Projections a, b, gates, output: 5 GEMMs + the einsum.
	b.emit(Group{Name: name + "/proj", Cat: CatMath, Calls: 5 * passes,
		Flops: (8*pairElems*ct + 2*pairElems*cz) * pf,
		Bytes: (6*pairElems + 4*float64(r*r)*ct) * b.bpe * pf})
	b.emit(Group{Name: name + "/einsum", Cat: CatMath, Calls: passes,
		Flops: 2 * float64(r*r*r) * ct * pf,
		Bytes: 3 * float64(r*r) * ct * b.bpe * pf})
	miscCalls, miscBytes := 14, 3.0
	if b.opt.TorchCompile {
		miscCalls, miscBytes = 5, 1.5
	}
	b.emit(Group{Name: name + "/elemwise", Cat: CatMem, Calls: miscCalls * passes, Fusable: true,
		Bytes: miscBytes * pairElems * b.bpe * pf})
	b.emit(Group{Name: name + "/copies", Cat: CatMemOp, Calls: 8 * passes,
		Bytes: 2 * pairElems * b.bpe * pf})
}

// transition emits the two-GEMM MLP transition.
func (b *builder) transition(name string, rows, c float64, passes int) {
	pf := float64(passes)
	elems := rows * c
	factor := 4.0
	b.layerNorm(name+"/ln", elems, pf)
	b.emit(Group{Name: name + "/gemm", Cat: CatMath, Calls: 2 * passes,
		Flops: 4 * elems * c * factor * pf,
		Bytes: (2*elems + 2*elems*factor) * b.bpe * pf})
	miscCalls, miscBytes := 4, 2.0
	if b.opt.TorchCompile {
		miscCalls, miscBytes = 2, 1.0
	}
	b.emit(Group{Name: name + "/elemwise", Cat: CatMem, Calls: miscCalls * passes, Fusable: true,
		Bytes: miscBytes * elems * factor / 2 * b.bpe * pf})
	b.emit(Group{Name: name + "/copies", Cat: CatMemOp, Calls: 4 * passes,
		Bytes: elems * b.bpe * pf})
}

// opm emits the outer product mean.
func (b *builder) opm(name string, s, r int, cm, copm, cz float64, passes int) {
	pf := float64(passes)
	msaElems := float64(s*r) * cm
	b.layerNorm(name+"/ln", msaElems, pf)
	b.emit(Group{Name: name + "/proj", Cat: CatMath, Calls: 2 * passes,
		Flops: 4 * msaElems * copm * pf, Bytes: 2 * msaElems * b.bpe * pf})
	b.emit(Group{Name: name + "/einsum", Cat: CatMath, Calls: passes,
		Flops: 2 * float64(s) * float64(r*r) * copm * copm * pf,
		Bytes: (2*float64(s*r)*copm + float64(r*r)*copm*copm) * b.bpe * pf})
	b.emit(Group{Name: name + "/out", Cat: CatMath, Calls: passes,
		Flops: 2 * float64(r*r) * copm * copm * cz * pf,
		Bytes: (float64(r*r)*copm*copm + float64(r*r)*cz) * b.bpe * pf})
	miscCalls := 8
	if b.opt.TorchCompile {
		miscCalls = 3
	}
	b.emit(Group{Name: name + "/elemwise", Cat: CatMem, Calls: miscCalls * passes, Fusable: true,
		Bytes: 2 * msaElems * b.bpe * pf})
	b.emit(Group{Name: name + "/copies", Cat: CatMemOp, Calls: 6 * passes,
		Bytes: msaElems * b.bpe * pf})
}
