// Package workload generates the per-step kernel census of the AlphaFold
// training step: for every module of the model (at full AlphaFold geometry)
// it emits kernel groups with launch counts, FLOP and byte volumes, derived
// from the tensor shapes. The census is the single source of truth shared by
// the Table 1 reproduction, the Figure 3 barrier ablation and the Figure 7/8
// step-time experiments: applying a ScaleFold optimization (fused kernels,
// batched GEMMs, torch.compile, bf16, DAP, disabling gradient checkpointing)
// transforms the census, and the gpu/cluster packages turn it into time.
package workload

import (
	"repro/internal/comm"
)

// Category classifies a kernel the way Table 1 does.
type Category int

// Table 1 kernel categories.
const (
	CatMath  Category = iota // matrix-matrix multiplications
	CatMem                   // memory-bound elementwise/reduction kernels
	CatMemOp                 // memory copies and sets
)

func (c Category) String() string {
	switch c {
	case CatMath:
		return "math-bounded"
	case CatMem:
		return "memory-bounded"
	case CatMemOp:
		return "memory-operation"
	}
	return "?"
}

// Group is a population of similar kernel launches.
type Group struct {
	Name    string
	Cat     Category
	Calls   int     // kernel launches in this group per step
	Flops   float64 // total FLOPs across the group
	Bytes   float64 // total DRAM bytes across the group
	Serial  bool    // not parallelizable by DAP (structure module, optimizer)
	Fusable bool    // an elementwise fragment torch.compile can fuse
}

// PerCallFlops returns the FLOPs of one launch in the group.
func (g Group) PerCallFlops() float64 {
	if g.Calls == 0 {
		return 0
	}
	return g.Flops / float64(g.Calls)
}

// PerCallBytes returns the bytes of one launch in the group.
func (g Group) PerCallBytes() float64 {
	if g.Calls == 0 {
		return 0
	}
	return g.Bytes / float64(g.Calls)
}

// SyncPoint is a DAP collective inserted between compute segments.
type SyncPoint struct {
	Op    comm.Op
	Bytes float64 // per-event payload per rank
	Count int     // number of such events per step
}

// Program is the whole step: compute groups plus DAP sync points and the
// final data-parallel gradient all-reduce.
type Program struct {
	Groups      []Group
	Syncs       []SyncPoint
	GradBytes   float64 // gradient volume for the DP all-reduce
	ClipKernels int     // launches used by gradient clipping
	OptKernels  int     // informational: optimizer launches (subset of Groups)
}

// Options selects which ScaleFold optimizations transform the census. The
// JSON form is the `census` object of the scenario wire format (package
// scenario); adding a field here must be reflected in the scenario canonical
// encoding, which the scenario schema test enforces.
type Options struct {
	FusedMHA     bool `json:"fused_mha,omitempty"`
	FusedLN      bool `json:"fused_ln,omitempty"`
	FusedAdamSWA bool `json:"fused_adam_swa,omitempty"`
	BatchedGEMM  bool `json:"batched_gemm,omitempty"`
	TorchCompile bool `json:"torch_compile,omitempty"`
	BF16         bool `json:"bf16,omitempty"`
	// GradCheckpoint recomputes the forward during backward (baseline: on).
	GradCheckpoint bool `json:"grad_checkpoint,omitempty"`
	// Recycles is the number of no-grad recycling iterations before the
	// final with-grad iteration (baseline: 3).
	Recycles int `json:"recycles,omitempty"`
	// DAP is the dynamic-axial-parallelism degree (1 = off).
	DAP int `json:"dap,omitempty"`
	// BucketedClip reuses DDP flat buffers for the gradient norm (§3.3.1).
	BucketedClip bool `json:"bucketed_clip,omitempty"`
}

// Baseline returns the unoptimized OpenFold reference configuration.
func Baseline() Options {
	return Options{GradCheckpoint: true, Recycles: 3, DAP: 1}
}

// ScaleFold returns the fully optimized configuration at the given DAP
// degree (checkpointing disabled per §4.1 once DAP frees memory).
func ScaleFold(dap int) Options {
	return Options{
		FusedMHA: true, FusedLN: true, FusedAdamSWA: true,
		BatchedGEMM: true, TorchCompile: true, BF16: true,
		GradCheckpoint: dap <= 1, Recycles: 3, DAP: dap,
		BucketedClip: true,
	}
}

// passes returns the number of forward-equivalent passes the trunk makes per
// step: `Recycles` no-grad forwards, one with-grad forward, the checkpoint
// recomputation, and the backward (≈2 forward-equivalents of kernels).
func (o Options) passes() int {
	p := o.Recycles + 1 + 2
	if o.GradCheckpoint {
		p++
	}
	return p
}

const f32 = 4.0

// bytesPerElem returns the activation element size under the precision mode.
func (o Options) bytesPerElem() float64 {
	if o.BF16 {
		// Not everything drops to 2 bytes: softmax statistics, layer norms
		// and the optimizer master weights stay fp32, so the effective
		// traffic reduction the paper measured is 1.24× rather than 2×.
		return 2.6
	}
	return f32
}
