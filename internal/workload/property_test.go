package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// Property tests over the census invariants that the experiments rely on.

func TestPropertyDAPNeverIncreasesPerRankWork(t *testing.T) {
	f := func(seed int64) bool {
		d := 1 << (uint(seed%4) + 1) // 2,4,8,16
		o1 := Baseline()
		oN := Baseline()
		oN.DAP = d
		p1 := Census(model.SmallConfig(), o1)
		pN := Census(model.SmallConfig(), oN)
		t1, tN := p1.Totals(), pN.Totals()
		for _, c := range []Category{CatMath, CatMem, CatMemOp} {
			if tN[c].Bytes > t1[c].Bytes || tN[c].Flops > t1[c].Flops {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEveryOptimizationReducesWork(t *testing.T) {
	// Each single optimization, applied alone, must not increase the
	// baseline's total launches or traffic.
	muts := []func(*Options){
		func(o *Options) { o.FusedMHA = true },
		func(o *Options) { o.FusedLN = true },
		func(o *Options) { o.FusedAdamSWA = true },
		func(o *Options) { o.BatchedGEMM = true },
		func(o *Options) { o.TorchCompile = true },
		func(o *Options) { o.BF16 = true },
		func(o *Options) { o.GradCheckpoint = false },
		func(o *Options) { o.BucketedClip = true },
	}
	base := Census(model.FullConfig(), Baseline())
	baseT := base.Totals()
	baseBytes := baseT[CatMath].Bytes + baseT[CatMem].Bytes + baseT[CatMemOp].Bytes
	for i, mut := range muts {
		o := Baseline()
		mut(&o)
		p := Census(model.FullConfig(), o)
		tt := p.Totals()
		bytes := tt[CatMath].Bytes + tt[CatMem].Bytes + tt[CatMemOp].Bytes
		if p.TotalCalls() > base.TotalCalls() {
			t.Fatalf("optimization %d increased launches: %d > %d", i, p.TotalCalls(), base.TotalCalls())
		}
		if bytes > baseBytes*1.001 {
			t.Fatalf("optimization %d increased traffic: %g > %g", i, bytes, baseBytes)
		}
	}
}

func TestPropertyGroupsHaveConsistentAccounting(t *testing.T) {
	for _, o := range []Options{Baseline(), ScaleFold(1), ScaleFold(8)} {
		p := Census(model.FullConfig(), o)
		for _, g := range p.Groups {
			if g.Calls <= 0 {
				t.Fatalf("group %q has %d calls", g.Name, g.Calls)
			}
			if g.Bytes < 0 || g.Flops < 0 {
				t.Fatalf("group %q has negative work", g.Name)
			}
			if g.Cat == CatMath && g.Flops == 0 {
				t.Fatalf("math group %q has zero FLOPs", g.Name)
			}
			if g.Cat != CatMath && g.Flops != 0 {
				t.Fatalf("non-math group %q has FLOPs", g.Name)
			}
		}
	}
}

func TestPropertyPassesMonotoneInRecycles(t *testing.T) {
	f := func(r uint8) bool {
		rec := int(r % 6)
		a := Baseline()
		a.Recycles = rec
		b := Baseline()
		b.Recycles = rec + 1
		return Census(model.SmallConfig(), b).TotalCalls() > Census(model.SmallConfig(), a).TotalCalls()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
