package workload

// CategoryTotals aggregates a kernel category.
type CategoryTotals struct {
	Calls int
	Flops float64
	Bytes float64
}

// Totals aggregates the program's groups per Table 1 category.
func (p *Program) Totals() map[Category]CategoryTotals {
	out := map[Category]CategoryTotals{}
	for _, g := range p.Groups {
		t := out[g.Cat]
		t.Calls += g.Calls
		t.Flops += g.Flops
		t.Bytes += g.Bytes
		out[g.Cat] = t
	}
	return out
}

// TotalCalls is the total kernel launch count per step.
func (p *Program) TotalCalls() int {
	n := 0
	for _, g := range p.Groups {
		n += g.Calls
	}
	return n
}

// SerialShareBytes returns the fraction of bytes in serial (non-DAP) groups.
func (p *Program) SerialShareBytes() float64 {
	var serial, total float64
	for _, g := range p.Groups {
		total += g.Bytes
		if g.Serial {
			serial += g.Bytes
		}
	}
	if total == 0 {
		return 0
	}
	return serial / total
}

// AutoFuse applies torch.compile-style automatic fusion to a program that
// was built without the TorchCompile option: every Fusable group has its
// launches merged ~3:1 and its traffic halved (fused elementwise chains
// read inputs once). This mirrors §3.3.2; the preferred path is building the
// census with Options.TorchCompile=true, which applies per-module scopes —
// AutoFuse exists to fuse an *existing* program, e.g. for scope-control
// experiments.
func AutoFuse(p *Program) *Program {
	out := &Program{Syncs: p.Syncs, GradBytes: p.GradBytes, ClipKernels: p.ClipKernels, OptKernels: p.OptKernels}
	for _, g := range p.Groups {
		if g.Fusable {
			g.Calls = (g.Calls + 2) / 3
			g.Bytes /= 2
		}
		out.Groups = append(out.Groups, g)
	}
	return out
}
