package search

import "math"

// knee measures the ranks-scaling curve at failProb (each rung at its
// largest feasible DAP width) and marks its saturation point: the rung
// with the maximum perpendicular distance from the chord between the
// curve's endpoints, computed in (log2 ranks, normalized throughput)
// space — the standard max-distance-to-chord knee detector. A curve that
// is still scaling linearly (or has fewer than three rungs) has no knee.
func (d *driver) knee(failProb float64) (*Knee, error) {
	d.phase = "knee"
	k := &Knee{FailProb: failProb}
	for _, ranks := range d.o.Ranks {
		dap := dapFor(ranks, d.o.DAPs)
		s, err := d.probe(Point{Ranks: ranks, DAP: dap, FailProb: failProb})
		if err != nil {
			return k, err
		}
		thr := 0.0
		if s.MeanStepS > 0 {
			thr = float64(ranks) * s.Goodput / s.MeanStepS
		}
		k.Curve = append(k.Curve, KneeSample{Ranks: ranks, DAP: dap, Throughput: thr})
	}
	if i := kneeIndex(k.Curve); i >= 0 {
		k.Found = true
		k.Ranks = k.Curve[i].Ranks
	}
	return k, nil
}

// kneeIndex returns the index of the knee sample, or -1 when the curve has
// no interior saturation point.
func kneeIndex(curve []KneeSample) int {
	n := len(curve)
	if n < 3 {
		return -1
	}
	// Normalize both axes to [0,1] so the distance is scale-free.
	x := make([]float64, n)
	y := make([]float64, n)
	for i, c := range curve {
		x[i] = math.Log2(float64(c.Ranks))
		y[i] = c.Throughput
	}
	x0, x1 := x[0], x[n-1]
	yMin, yMax := y[0], y[0]
	for _, v := range y {
		yMin = math.Min(yMin, v)
		yMax = math.Max(yMax, v)
	}
	if x1 <= x0 || yMax <= yMin {
		return -1
	}
	bi, bd := -1, 0.0
	for i := 1; i < n-1; i++ {
		nx := (x[i] - x0) / (x1 - x0)
		ny := (y[i] - yMin) / (yMax - yMin)
		cy := (y[0]-yMin)/(yMax-yMin)*(1-nx) + (y[n-1]-yMin)/(yMax-yMin)*nx
		// Above-chord distance only: a knee is diminishing returns (the
		// curve bulging over its chord), not a mid-ladder dip under it.
		if dist := ny - cy; dist > bd {
			bi, bd = i, dist
		}
	}
	// Require a meaningful bulge: a near-straight curve is still scaling
	// and has no saturation point to report.
	const minBulge = 0.05
	if bd < minBulge {
		return -1
	}
	return bi
}
