package search

import "math"

// cliff localizes the goodput cliff on the failure-rate axis at the
// ladder's largest configuration: geometric bisection of [FailLo, FailHi]
// down to Tolerance decades around the CliffGoodput crossing. Probes the
// two endpoints first; when they do not straddle the threshold there is no
// cliff inside the range and the phase reports Found=false after two
// probes — adaptive search's whole point is spending nothing where the
// answer is flat.
func (d *driver) cliff() (*Cliff, error) {
	d.phase = "cliff"
	ranks := d.o.Ranks[len(d.o.Ranks)-1]
	dap := dapFor(ranks, d.o.DAPs)
	c := &Cliff{Ranks: ranks, DAP: dap, Threshold: d.o.CliffGoodput}

	lo, hi := d.o.FailLo, d.o.FailHi
	sLo, err := d.probe(Point{Ranks: ranks, DAP: dap, FailProb: lo})
	if err != nil {
		return nil, err
	}
	sHi, err := d.probe(Point{Ranks: ranks, DAP: dap, FailProb: hi})
	if err != nil {
		finishCliff(c, lo, hi, sLo.Goodput, 0)
		return c, err
	}
	if sLo.Goodput <= d.o.CliffGoodput || sHi.Goodput > d.o.CliffGoodput {
		// No crossing inside the range: already over the cliff at FailLo,
		// or still above threshold at FailHi.
		finishCliff(c, lo, hi, sLo.Goodput, sHi.Goodput)
		return c, nil
	}
	gLo, gHi := sLo.Goodput, sHi.Goodput
	for math.Log10(hi/lo) > d.o.Tolerance {
		mid := math.Sqrt(lo * hi)
		if mid <= lo || mid >= hi {
			break // float precision exhausted; the bracket cannot narrow
		}
		s, err := d.probe(Point{Ranks: ranks, DAP: dap, FailProb: mid})
		if err != nil {
			c.Found = true
			finishCliff(c, lo, hi, gLo, gHi)
			return c, err
		}
		if s.Goodput > d.o.CliffGoodput {
			lo, gLo = mid, s.Goodput
		} else {
			hi, gHi = mid, s.Goodput
		}
	}
	c.Found = true
	finishCliff(c, lo, hi, gLo, gHi)
	return c, nil
}

func finishCliff(c *Cliff, lo, hi, gLo, gHi float64) {
	c.Lo, c.Hi = lo, hi
	c.GoodputLo, c.GoodputHi = gLo, gHi
	c.Mid = math.Sqrt(lo * hi)
}
