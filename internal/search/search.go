// Package search is a budgeted adaptive search driver over a scenario
// space: instead of enumerating a full grid, it spends a probe budget where
// the answer actually changes — bisection to localize the goodput cliff on
// the failure-rate axis, knee/saturation detection on the ranks-scaling
// curve, and Pareto-frontier refinement over (ranks, DAP, perturb rate) —
// and emits a Frontier report instead of a table.
//
// The package is deliberately ignorant of how a probe is satisfied: callers
// supply a ProbeFunc, and the scalefold layer routes it through the usual
// fingerprint → memo → store → analytic/exact resolution, so every probe is
// memoized and deterministic. The driver itself is sequential and
// deterministic too: the same Options produce the same probe sequence, the
// same Frontier, byte for byte — resolution sources (analytic, exact,
// memo-hit) are reported only through the OnProbe hook, never in the
// Frontier, so a fully-memoized repeat run serializes identically.
package search

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrStopped is returned by Run when Options.Stop reported true before the
// search finished; the caller (e.g. a cancelled service job) discards the
// partial frontier.
var ErrStopped = errors.New("search: stopped")

// Objective names what the search optimizes for.
type Objective string

const (
	// MaxGoodput favors the configuration with the highest goodput
	// (useful step time over wall-clock time).
	MaxGoodput Objective = "maximize-goodput"
	// MinCostStepTime favors the cheapest work: it minimizes
	// cost × step-time = ranks × mean step seconds (GPU-seconds per
	// optimizer step, restart and stall overheads included).
	MinCostStepTime Objective = "minimize-cost-steptime"
)

// Objectives lists the canonical spellings, in documentation order.
var Objectives = []Objective{MaxGoodput, MinCostStepTime}

// BadObjectiveError marks an unknown objective spelling; the service maps it
// (via the spec validation chain) to a typed 400, like an unknown mode.
type BadObjectiveError struct{ Got string }

func (e *BadObjectiveError) Error() string {
	return fmt.Sprintf("search: unknown objective %q (want one of %v)", e.Got, Objectives)
}

// ParseObjective resolves an objective spelling. The empty string selects
// MaxGoodput, mirroring how an empty mode selects the default resolution.
func ParseObjective(s string) (Objective, error) {
	switch Objective(s) {
	case "":
		return MaxGoodput, nil
	case MaxGoodput, MinCostStepTime:
		return Objective(s), nil
	}
	return "", &BadObjectiveError{Got: s}
}

// Score ranks a sample under the objective; higher is better for every
// objective (minimization objectives negate).
func (o Objective) Score(p Point, s Sample) float64 {
	switch o {
	case MinCostStepTime:
		return -float64(p.Ranks) * s.MeanStepS
	default: // MaxGoodput
		return s.Goodput
	}
}

// Point is one location in the search space: the free axes the driver
// samples adaptively.
type Point struct {
	Ranks    int     `json:"ranks"`
	DAP      int     `json:"dap"`
	FailProb float64 `json:"fail_prob"`
}

// Sample is a probe's measurement at a Point.
type Sample struct {
	Goodput   float64 `json:"goodput"`
	MeanStepS float64 `json:"mean_step_s"`
	P99StepS  float64 `json:"p99_step_s"`
}

// ProbeFunc measures one point. The source return names how the probe was
// satisfied ("analytic", "exact", "memo-hit"); it feeds metrics and the
// OnProbe hook only — never the Frontier, which must stay byte-identical
// between a cold run and a fully-memoized repeat.
type ProbeFunc func(Point) (Sample, string, error)

// Probe is one spent budget unit: a point, its sample, and the phase that
// requested it. Deliberately source-free (see ProbeFunc).
type Probe struct {
	Seq   int    `json:"seq"`
	Phase string `json:"phase"` // "cliff", "knee", "pareto" or "refine"
	Point
	Sample
	Score float64 `json:"score"`
}

// Cliff is the localized goodput cliff on the failure-rate axis: the
// geometric bracket [Lo, Hi] within which goodput crosses the threshold.
type Cliff struct {
	Ranks int `json:"ranks"`
	DAP   int `json:"dap"`
	// Found reports whether the endpoints straddle the threshold at all;
	// when false the bracket is just the searched range.
	Found bool `json:"found"`
	// Lo is the highest probed failure rate still above the goodput
	// threshold, Hi the lowest probed rate below it.
	Lo        float64 `json:"fail_lo"`
	Hi        float64 `json:"fail_hi"`
	GoodputLo float64 `json:"goodput_lo"`
	GoodputHi float64 `json:"goodput_hi"`
	// Mid is the bracket's geometric midpoint — the single number to quote
	// as "the cliff".
	Mid float64 `json:"fail_mid"`
	// Threshold is the goodput level whose crossing defines the cliff.
	Threshold float64 `json:"threshold"`
}

// KneeSample is one rung of the ranks-scaling curve.
type KneeSample struct {
	Ranks int `json:"ranks"`
	DAP   int `json:"dap"`
	// Throughput is useful work per second: ranks × goodput / mean step
	// seconds — the quantity whose saturation the knee marks.
	Throughput float64 `json:"throughput"`
}

// Knee is the saturation point of the ranks-scaling curve: the rung with
// the maximum perpendicular distance from the chord between the curve's
// endpoints (in log2-ranks × normalized-throughput space).
type Knee struct {
	Found bool `json:"found"`
	Ranks int  `json:"ranks,omitempty"`
	// FailProb is the failure rate the whole curve was measured at.
	FailProb float64      `json:"fail_prob"`
	Curve    []KneeSample `json:"curve"`
}

// ParetoPoint is one non-dominated configuration of the frontier over
// (cost, goodput): no other probed point is both cheaper and higher-goodput.
type ParetoPoint struct {
	Point
	Goodput   float64 `json:"goodput"`
	MeanStepS float64 `json:"mean_step_s"`
	// CostStepTime is ranks × mean step seconds: GPU-seconds per step.
	CostStepTime float64 `json:"cost_step_time"`
	Score        float64 `json:"score"`
}

// Frontier is the search's report: what was found, and every probe that
// paid for it. Serializing it with encoding/json is the canonical byte
// format the determinism contract is stated over.
type Frontier struct {
	Objective Objective `json:"objective"`
	Budget    int       `json:"budget"`
	Used      int       `json:"probes_used"`
	Exhausted bool      `json:"budget_exhausted,omitempty"`
	Cliff     *Cliff    `json:"cliff,omitempty"`
	Knee      *Knee     `json:"knee,omitempty"`
	// Pareto is the frontier over (cost ↓, goodput ↑), cheapest first.
	Pareto []ParetoPoint `json:"pareto"`
	// Best is the highest-scoring probed point under the objective.
	Best *ParetoPoint `json:"best,omitempty"`
	// Probes is the full spend log, in probe order.
	Probes []Probe `json:"probes"`
}

// Options declares a search.
type Options struct {
	Objective Objective
	// Ranks is the ascending ranks ladder; DAPs the DAP widths considered
	// (a width applies to a rung only when it divides it).
	Ranks []int
	DAPs  []int
	// FailLo/FailHi bound the failure-rate axis searched for the cliff;
	// both must be positive (the bisection is geometric).
	FailLo, FailHi float64
	// CliffGoodput is the goodput threshold whose crossing defines the
	// cliff (0 < t < 1).
	CliffGoodput float64
	// Tolerance is the bisection stop width in decades of failure rate.
	Tolerance float64
	// Budget bounds unique probes; re-probing a point is free.
	Budget int
	// Probe measures a point; required by Run.
	Probe ProbeFunc
	// OnProbe, when non-nil, observes each unique probe as it settles,
	// with its resolution source.
	OnProbe func(Probe, string)
	// Stop, when non-nil, is polled before every probe; reporting true
	// aborts the search with ErrStopped.
	Stop func() bool
}

// Validate rejects option-level mistakes without probing anything.
func (o Options) Validate() error {
	if _, err := ParseObjective(string(o.Objective)); err != nil {
		return err
	}
	if len(o.Ranks) == 0 {
		return fmt.Errorf("search: ranks ladder is empty")
	}
	for i, r := range o.Ranks {
		if r < 1 {
			return fmt.Errorf("search: ranks[%d] = %d; want >= 1", i, r)
		}
		if i > 0 && r <= o.Ranks[i-1] {
			return fmt.Errorf("search: ranks ladder must be strictly ascending (got %d after %d)", r, o.Ranks[i-1])
		}
	}
	if len(o.DAPs) == 0 {
		return fmt.Errorf("search: dap list is empty")
	}
	for i, d := range o.DAPs {
		if d < 1 {
			return fmt.Errorf("search: dap[%d] = %d; want >= 1", i, d)
		}
		if i > 0 && d <= o.DAPs[i-1] {
			return fmt.Errorf("search: dap list must be strictly ascending (got %d after %d)", d, o.DAPs[i-1])
		}
	}
	for _, r := range o.Ranks {
		if dapFor(r, o.DAPs) == 0 {
			return fmt.Errorf("search: no DAP width in %v divides ranks=%d", o.DAPs, r)
		}
	}
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	if bad(o.FailLo) || bad(o.FailHi) || o.FailLo <= 0 || o.FailHi > 1 || o.FailLo >= o.FailHi {
		return fmt.Errorf("search: failure-rate range [%g, %g] invalid; want 0 < lo < hi <= 1", o.FailLo, o.FailHi)
	}
	if bad(o.CliffGoodput) || o.CliffGoodput <= 0 || o.CliffGoodput >= 1 {
		return fmt.Errorf("search: cliff goodput threshold %g invalid; want 0 < t < 1", o.CliffGoodput)
	}
	if bad(o.Tolerance) || o.Tolerance <= 0 {
		return fmt.Errorf("search: tolerance %g invalid; want > 0 decades", o.Tolerance)
	}
	if o.Budget < 2 {
		return fmt.Errorf("search: budget %d too small; want >= 2 probes", o.Budget)
	}
	return nil
}

// dapFor returns the largest width in daps dividing ranks (0 when none).
func dapFor(ranks int, daps []int) int {
	best := 0
	for _, d := range daps {
		if d >= 1 && ranks%d == 0 && d > best {
			best = d
		}
	}
	return best
}

// errBudget is the internal soft-stop: the phase keeps what it has and the
// Frontier reports Exhausted.
var errBudget = errors.New("search: probe budget exhausted")

// driver carries the run state: the probe memo (re-probing a point is free
// and returns the logged sample), the spend log and the budget.
type driver struct {
	o      Options
	seen   map[Point]Sample
	probes []Probe
	used   int
	phase  string
}

// probe measures pt (or returns its memoized sample), logging and charging
// the budget only for first-time points.
func (d *driver) probe(pt Point) (Sample, error) {
	if s, ok := d.seen[pt]; ok {
		return s, nil
	}
	if d.o.Stop != nil && d.o.Stop() {
		return Sample{}, ErrStopped
	}
	if d.used >= d.o.Budget {
		return Sample{}, errBudget
	}
	s, src, err := d.o.Probe(pt)
	if err != nil {
		return Sample{}, fmt.Errorf("search: probe ranks=%d dap=%d fail=%g: %w", pt.Ranks, pt.DAP, pt.FailProb, err)
	}
	d.used++
	d.seen[pt] = s
	p := Probe{Seq: len(d.probes), Phase: d.phase, Point: pt, Sample: s, Score: d.o.Objective.Score(pt, s)}
	d.probes = append(d.probes, p)
	if d.o.OnProbe != nil {
		d.o.OnProbe(p, src)
	}
	return s, nil
}

// Run executes the three phases — cliff bisection, knee detection, Pareto
// refinement — and assembles the Frontier. Budget exhaustion is a soft stop
// (partial results, Exhausted set); Stop and probe errors abort.
func Run(o Options) (Frontier, error) {
	if o.Probe == nil {
		return Frontier{}, fmt.Errorf("search: Options.Probe is required")
	}
	obj, err := ParseObjective(string(o.Objective))
	if err != nil {
		return Frontier{}, err
	}
	o.Objective = obj
	if err := o.Validate(); err != nil {
		return Frontier{}, err
	}
	d := &driver{o: o, seen: make(map[Point]Sample)}
	f := Frontier{Objective: o.Objective, Budget: o.Budget}

	cliff, err := d.cliff()
	if err != nil && !errors.Is(err, errBudget) {
		return Frontier{}, err
	}
	f.Cliff = cliff

	// Knee and Pareto phases run at the cliff's healthy edge when one was
	// found — the highest failure rate the flagship configuration still
	// tolerates — and additionally at the healthy baseline.
	kneeFail := 0.0
	if cliff != nil && cliff.Found {
		kneeFail = cliff.Lo
	}
	if err == nil {
		var knee *Knee
		knee, err = d.knee(kneeFail)
		if err != nil && !errors.Is(err, errBudget) {
			return Frontier{}, err
		}
		f.Knee = knee
	}
	if err == nil {
		err = d.pareto(kneeFail)
		if err != nil && !errors.Is(err, errBudget) {
			return Frontier{}, err
		}
	}
	f.Exhausted = errors.Is(err, errBudget)

	f.Used = d.used
	f.Probes = d.probes
	f.Pareto = paretoFront(d.probes)
	f.Best = best(d.probes)
	return f, nil
}

// best returns the highest-scoring probe (earliest wins ties — probe order
// is deterministic, so so is the winner).
func best(probes []Probe) *ParetoPoint {
	bi := -1
	for i, p := range probes {
		if bi < 0 || p.Score > probes[bi].Score {
			bi = i
		}
	}
	if bi < 0 {
		return nil
	}
	p := probes[bi]
	return &ParetoPoint{
		Point: p.Point, Goodput: p.Goodput, MeanStepS: p.MeanStepS,
		CostStepTime: float64(p.Ranks) * p.MeanStepS, Score: p.Score,
	}
}

// paretoFront filters the probe log down to the non-dominated set over
// (cost minimized, goodput maximized), cheapest first.
func paretoFront(probes []Probe) []ParetoPoint {
	// Dedup by point (first probe wins; samples for one point are identical
	// by the determinism contract anyway).
	var pts []ParetoPoint
	seen := make(map[Point]bool, len(probes))
	for _, p := range probes {
		if seen[p.Point] {
			continue
		}
		seen[p.Point] = true
		pts = append(pts, ParetoPoint{
			Point: p.Point, Goodput: p.Goodput, MeanStepS: p.MeanStepS,
			CostStepTime: float64(p.Ranks) * p.MeanStepS, Score: p.Score,
		})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].CostStepTime != pts[j].CostStepTime {
			return pts[i].CostStepTime < pts[j].CostStepTime
		}
		if pts[i].Goodput != pts[j].Goodput {
			return pts[i].Goodput > pts[j].Goodput
		}
		return lessPoint(pts[i].Point, pts[j].Point)
	})
	var front []ParetoPoint
	bestGoodput := math.Inf(-1)
	for _, p := range pts {
		if p.Goodput > bestGoodput {
			front = append(front, p)
			bestGoodput = p.Goodput
		}
	}
	if front == nil {
		front = []ParetoPoint{} // serialize as [], not null
	}
	return front
}

func lessPoint(a, b Point) bool {
	if a.Ranks != b.Ranks {
		return a.Ranks < b.Ranks
	}
	if a.DAP != b.DAP {
		return a.DAP < b.DAP
	}
	return a.FailProb < b.FailProb
}
