package search

import "math"

// pareto seeds the (ranks × DAP × failure-rate) candidate set — every
// feasible ladder combination at the healthy baseline and, when a cliff was
// localized, at its tolerated edge — then runs one refinement round: for
// each widely-spaced adjacent pair on the resulting frontier, probe the
// geometric-mean ranks between them (snapped to the pair's DAP width), so
// the frontier gains resolution exactly where it is coarsest. Every probe
// is budget-charged and memoized, so rungs the cliff and knee phases
// already paid for are free here.
func (d *driver) pareto(cliffFail float64) error {
	d.phase = "pareto"
	fails := []float64{0}
	if cliffFail > 0 {
		fails = append(fails, cliffFail)
	}
	for _, ranks := range d.o.Ranks {
		for _, dap := range d.o.DAPs {
			if ranks%dap != 0 {
				continue
			}
			for _, fp := range fails {
				if _, err := d.probe(Point{Ranks: ranks, DAP: dap, FailProb: fp}); err != nil {
					return err
				}
			}
		}
	}

	d.phase = "refine"
	front := paretoFront(d.probes)
	for i := 1; i < len(front); i++ {
		a, b := front[i-1], front[i]
		lo, hi := a.Ranks, b.Ranks
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi < 2*lo {
			continue // already dense on the ranks axis
		}
		// Probe between the pair at the cheaper point's width and failure
		// rate; snap the geometric mean down to a feasible multiple.
		dap := a.DAP
		mid := int(math.Sqrt(float64(lo) * float64(hi)))
		mid -= mid % dap
		if mid <= lo || mid >= hi {
			continue
		}
		if _, err := d.probe(Point{Ranks: mid, DAP: dap, FailProb: a.FailProb}); err != nil {
			return err
		}
	}
	return nil
}
