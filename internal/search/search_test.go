package search

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
)

// syntheticProbe models a cluster with a goodput cliff at failure rate
// `cliff` and throughput that saturates past `kneeRanks`: deterministic,
// instant, and shaped like the real simulator's resilience surface.
func syntheticProbe(cliff float64, kneeRanks int) ProbeFunc {
	return func(p Point) (Sample, string, error) {
		goodput := 1.0
		if p.FailProb > 0 {
			// Smooth logistic cliff in log-failure-rate space.
			goodput = 1 / (1 + math.Pow(p.FailProb/cliff, 2))
		}
		// Step time grows with ranks past the knee (communication bound),
		// mildly improves with DAP.
		step := 1.0 / (1 + 0.1*float64(p.DAP))
		if p.Ranks > kneeRanks {
			step *= 1 + 2*float64(p.Ranks-kneeRanks)/float64(kneeRanks)
		}
		return Sample{Goodput: goodput, MeanStepS: step / goodput, P99StepS: step * 1.2}, "exact", nil
	}
}

func testOptions(probe ProbeFunc) Options {
	return Options{
		Objective:    MaxGoodput,
		Ranks:        []int{128, 256, 512, 1024},
		DAPs:         []int{1, 2, 4, 8},
		FailLo:       1e-6,
		FailHi:       1e-2,
		CliffGoodput: 0.5,
		Tolerance:    0.1,
		Budget:       64,
		Probe:        probe,
	}
}

func TestCliffBisectionLocalizes(t *testing.T) {
	const cliff = 1e-4 // logistic midpoint: goodput(cliff) = 0.5
	o := testOptions(syntheticProbe(cliff, 512))
	f, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	c := f.Cliff
	if c == nil || !c.Found {
		t.Fatalf("cliff not found: %+v", c)
	}
	if c.Lo > cliff || c.Hi < cliff/2 {
		// The logistic crossing sits a hair below `cliff`; the bracket
		// must contain it.
		t.Fatalf("bracket [%g, %g] misses the cliff near %g", c.Lo, c.Hi, cliff)
	}
	if w := math.Log10(c.Hi / c.Lo); w > o.Tolerance*1.0001 {
		t.Fatalf("bracket width %.3f decades exceeds tolerance %g", w, o.Tolerance)
	}
	if c.Ranks != 1024 || c.DAP != 8 {
		t.Fatalf("cliff probed at ranks=%d dap=%d; want the ladder's flagship 1024/8", c.Ranks, c.DAP)
	}
	// Bisection beats enumeration: endpoints + ~log2(span/tol) mids, far
	// under the 41-cell grid an exact 0.1-decade scan would burn.
	cliffProbes := 0
	for _, p := range f.Probes {
		if p.Phase == "cliff" {
			cliffProbes++
		}
	}
	if cliffProbes > 12 {
		t.Fatalf("cliff phase spent %d probes; bisection should need ~8", cliffProbes)
	}
}

func TestCliffAbsentOutsideRange(t *testing.T) {
	// Cliff at 10% failure rate — far above FailHi: endpoints cannot
	// straddle, so the phase must stop after two probes.
	o := testOptions(syntheticProbe(0.1, 512))
	f, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if f.Cliff == nil || f.Cliff.Found {
		t.Fatalf("cliff should not be found inside [%g, %g]: %+v", o.FailLo, o.FailHi, f.Cliff)
	}
	cliffProbes := 0
	for _, p := range f.Probes {
		if p.Phase == "cliff" {
			cliffProbes++
		}
	}
	if cliffProbes != 2 {
		t.Fatalf("flat cliff phase spent %d probes; want exactly the 2 endpoints", cliffProbes)
	}
}

func TestKneeDetection(t *testing.T) {
	f, err := Run(testOptions(syntheticProbe(1e-4, 256)))
	if err != nil {
		t.Fatal(err)
	}
	k := f.Knee
	if k == nil || !k.Found {
		t.Fatalf("knee not found: %+v", k)
	}
	if k.Ranks != 256 {
		t.Fatalf("knee at ranks=%d; want 256 (the synthetic saturation point)", k.Ranks)
	}
	if len(k.Curve) != 4 {
		t.Fatalf("curve has %d rungs; want the full 4-rung ladder", len(k.Curve))
	}
}

func TestKneeAbsentOnLinearCurve(t *testing.T) {
	// Saturation far past the ladder: throughput scales linearly, no knee.
	f, err := Run(testOptions(syntheticProbe(1e-4, 1<<20)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Knee == nil || f.Knee.Found {
		t.Fatalf("linear curve must have no knee: %+v", f.Knee)
	}
}

func TestParetoFrontierNonDominated(t *testing.T) {
	f, err := Run(testOptions(syntheticProbe(1e-4, 256)))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Pareto) == 0 {
		t.Fatal("empty Pareto frontier")
	}
	for i := 1; i < len(f.Pareto); i++ {
		a, b := f.Pareto[i-1], f.Pareto[i]
		if b.CostStepTime <= a.CostStepTime || b.Goodput <= a.Goodput {
			t.Fatalf("frontier not strictly improving at %d: (%g,%g) -> (%g,%g)",
				i, a.CostStepTime, a.Goodput, b.CostStepTime, b.Goodput)
		}
	}
	// Every non-frontier probe must be dominated by some frontier point.
	for _, p := range f.Probes {
		dominated := false
		for _, fp := range f.Pareto {
			if fp.CostStepTime <= float64(p.Ranks)*p.MeanStepS && fp.Goodput >= p.Goodput {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("probe %+v is non-dominated but missing from the frontier", p.Point)
		}
	}
	if f.Best == nil {
		t.Fatal("no best point")
	}
}

func TestObjectiveScoring(t *testing.T) {
	p := Point{Ranks: 512, DAP: 4, FailProb: 0}
	s := Sample{Goodput: 0.8, MeanStepS: 2}
	if got := MaxGoodput.Score(p, s); got != 0.8 {
		t.Fatalf("maximize-goodput score = %g; want 0.8", got)
	}
	if got := MinCostStepTime.Score(p, s); got != -1024 {
		t.Fatalf("minimize-cost-steptime score = %g; want -1024 (negated 512 ranks x 2 s)", got)
	}
	for _, bad := range []string{"maximize-flops", "goodput", "min-cost"} {
		var oe *BadObjectiveError
		if _, err := ParseObjective(bad); !errors.As(err, &oe) {
			t.Fatalf("ParseObjective(%q) = %v; want BadObjectiveError", bad, err)
		}
	}
	if obj, err := ParseObjective(""); err != nil || obj != MaxGoodput {
		t.Fatalf("empty objective = (%v, %v); want the maximize-goodput default", obj, err)
	}
}

func TestDeterministicFrontierBytes(t *testing.T) {
	run := func() []byte {
		f, err := Run(testOptions(syntheticProbe(1e-4, 256)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("frontier bytes differ between identical runs:\n%s\n%s", a, b)
	}
	if strings.Contains(string(a), `"source"`) {
		t.Fatalf("frontier leaks resolution sources (breaks repeat-run byte identity):\n%s", a)
	}
}

func TestBudgetSoftStop(t *testing.T) {
	o := testOptions(syntheticProbe(1e-4, 256))
	o.Budget = 5
	f, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Exhausted {
		t.Fatal("budget 5 must exhaust before the ladder phases finish")
	}
	if f.Used != 5 || len(f.Probes) != 5 {
		t.Fatalf("used %d probes, logged %d; want exactly the budget 5", f.Used, len(f.Probes))
	}
	if len(f.Pareto) == 0 {
		t.Fatal("exhausted run must still report the frontier over its partial probe set")
	}
}

func TestRepeatedPointsAreFree(t *testing.T) {
	calls := 0
	inner := syntheticProbe(1e-4, 256)
	probe := func(p Point) (Sample, string, error) {
		calls++
		return inner(p)
	}
	f, err := Run(testOptions(probe))
	if err != nil {
		t.Fatal(err)
	}
	if calls != f.Used {
		t.Fatalf("%d probe calls for %d budget units: duplicate points must not re-probe", calls, f.Used)
	}
	seen := map[Point]bool{}
	for _, p := range f.Probes {
		if seen[p.Point] {
			t.Fatalf("point %+v logged twice", p.Point)
		}
		seen[p.Point] = true
	}
}

func TestStopAborts(t *testing.T) {
	n := 0
	o := testOptions(syntheticProbe(1e-4, 256))
	o.Stop = func() bool { n++; return n > 3 }
	if _, err := Run(o); !errors.Is(err, ErrStopped) {
		t.Fatalf("Run = %v; want ErrStopped", err)
	}
}

func TestValidateRejects(t *testing.T) {
	base := testOptions(nil)
	cases := []struct {
		name string
		mut  func(*Options)
		want string
	}{
		{"bad objective", func(o *Options) { o.Objective = "maximize-flops" }, "objective"},
		{"empty ranks", func(o *Options) { o.Ranks = nil }, "ranks"},
		{"descending ranks", func(o *Options) { o.Ranks = []int{256, 128} }, "ascending"},
		{"no feasible dap", func(o *Options) { o.Ranks = []int{100}; o.DAPs = []int{8} }, "divides"},
		{"zero fail lo", func(o *Options) { o.FailLo = 0 }, "failure-rate"},
		{"inverted fail range", func(o *Options) { o.FailLo = 1e-2; o.FailHi = 1e-6 }, "failure-rate"},
		{"nan fail", func(o *Options) { o.FailHi = math.NaN() }, "failure-rate"},
		{"threshold 1", func(o *Options) { o.CliffGoodput = 1 }, "threshold"},
		{"zero tolerance", func(o *Options) { o.Tolerance = 0 }, "tolerance"},
		{"budget 1", func(o *Options) { o.Budget = 1 }, "budget"},
	}
	for _, tc := range cases {
		o := base
		tc.mut(&o)
		err := o.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v; want error mentioning %q", tc.name, err, tc.want)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base options must validate: %v", err)
	}
}
