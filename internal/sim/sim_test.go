package sim

import (
	"math/rand"
	"testing"
	"time"
)

func TestQueueOrdersByTime(t *testing.T) {
	q := NewQueue()
	var order []int
	q.Schedule(3*time.Second, func() { order = append(order, 3) })
	q.Schedule(1*time.Second, func() { order = append(order, 1) })
	q.Schedule(2*time.Second, func() { order = append(order, 2) })
	q.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	if q.Now() != 3*time.Second {
		t.Fatalf("clock %v", q.Now())
	}
}

func TestQueueTiesAreFIFO(t *testing.T) {
	q := NewQueue()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		q.Schedule(time.Second, func() { order = append(order, i) })
	}
	q.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	q := NewQueue()
	var fired bool
	q.After(time.Second, func() {
		q.After(time.Second, func() { fired = true })
	})
	q.Run()
	if !fired || q.Now() != 2*time.Second {
		t.Fatalf("fired=%v now=%v", fired, q.Now())
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	q := NewQueue()
	q.Schedule(2*time.Second, func() {
		q.Schedule(time.Second, func() {}) // in the past
	})
	q.Run()
	if q.Now() != 2*time.Second {
		t.Fatalf("now %v", q.Now())
	}
}

func TestRunUntil(t *testing.T) {
	q := NewQueue()
	count := 0
	for i := 1; i <= 5; i++ {
		q.Schedule(time.Duration(i)*time.Second, func() { count++ })
	}
	q.RunUntil(3 * time.Second)
	if count != 3 {
		t.Fatalf("ran %d events, want 3", count)
	}
	if q.Pending() != 2 {
		t.Fatalf("pending %d", q.Pending())
	}
	if q.Now() != 3*time.Second {
		t.Fatalf("now %v", q.Now())
	}
}

func TestLogNormalPositiveAndSeeded(t *testing.T) {
	r1 := rand.New(rand.NewSource(1))
	r2 := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a := LogNormal(r1, 0, 0.5)
		b := LogNormal(r2, 0, 0.5)
		if a <= 0 {
			t.Fatalf("lognormal must be positive: %v", a)
		}
		if a != b {
			t.Fatal("same seed must give same draws")
		}
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	if Sec(Seconds(2.5)) != 2.5 {
		t.Fatal("seconds round trip")
	}
	if MaxTime(time.Second, 2*time.Second) != 2*time.Second {
		t.Fatal("MaxTime")
	}
}
