// Package sim provides the small discrete-event toolkit the cluster and
// pipeline simulators are built on: a virtual clock, an event queue, and
// seeded random-variate helpers (log-normal service times, Bernoulli
// background events). Everything is deterministic given a seed.
package sim

import (
	"container/heap"
	"math"
	"math/rand"
	"time"
)

// Time is simulated time measured from the start of the run.
type Time = time.Duration

// Event is a scheduled callback.
type Event struct {
	At Time
	Fn func()

	index int
	seq   int
}

// Queue is a time-ordered event queue (ties broken by insertion order, so
// runs are deterministic).
type Queue struct {
	h   eventHeap
	seq int
	now Time
}

// NewQueue returns an empty queue at time zero.
func NewQueue() *Queue { return &Queue{} }

// Now returns the current simulated time.
func (q *Queue) Now() Time { return q.now }

// Schedule enqueues fn to run at absolute time at. Scheduling in the past
// clamps to "now".
func (q *Queue) Schedule(at Time, fn func()) {
	if at < q.now {
		at = q.now
	}
	e := &Event{At: at, Fn: fn, seq: q.seq}
	q.seq++
	heap.Push(&q.h, e)
}

// After enqueues fn to run after delay d.
func (q *Queue) After(d Time, fn func()) { q.Schedule(q.now+d, fn) }

// Step runs the earliest event; it reports false when the queue is empty.
func (q *Queue) Step() bool {
	if q.h.Len() == 0 {
		return false
	}
	e := heap.Pop(&q.h).(*Event)
	q.now = e.At
	e.Fn()
	return true
}

// Run drains the queue (events may schedule more events).
func (q *Queue) Run() {
	for q.Step() {
	}
}

// RunUntil processes events with At <= deadline and then stops, leaving the
// clock at the deadline (or later if an event moved it there).
func (q *Queue) RunUntil(deadline Time) {
	for q.h.Len() > 0 && q.h[0].At <= deadline {
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}

// Pending returns the number of queued events.
func (q *Queue) Pending() int { return q.h.Len() }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// LogNormal draws exp(N(mu, sigma)) seconds as a duration.
func LogNormal(rng *rand.Rand, mu, sigma float64) Time {
	return Seconds(math.Exp(rng.NormFloat64()*sigma + mu))
}

// Seconds converts float seconds to a duration.
func Seconds(s float64) Time { return Time(s * float64(time.Second)) }

// Sec converts a duration to float seconds.
func Sec(d Time) float64 { return d.Seconds() }

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
