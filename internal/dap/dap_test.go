package dap

import "testing"

func TestNewPlanValid(t *testing.T) {
	p, err := NewPlan(1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.DPWays != 128 {
		t.Fatalf("DPWays %d", p.DPWays)
	}
}

func TestNewPlanRejectsBadDegrees(t *testing.T) {
	if _, err := NewPlan(128, 0); err == nil {
		t.Fatal("degree 0 must fail")
	}
	if _, err := NewPlan(4, 8); err == nil {
		t.Fatal("fewer ranks than degree must fail")
	}
	if _, err := NewPlan(100, 8); err == nil {
		t.Fatal("non-divisible must fail")
	}
}

func TestValidateBatchLimit(t *testing.T) {
	p, _ := NewPlan(256, 1)
	if err := p.Validate(1); err != nil {
		t.Fatalf("256-way DP at batch 1 is exactly the limit: %v", err)
	}
	p2, _ := NewPlan(512, 1)
	if err := p2.Validate(1); err == nil {
		t.Fatal("512-way DP must violate the 256 global-batch cap")
	}
	// DAP rescues the same 512 GPUs.
	p3, _ := NewPlan(512, 2)
	if err := p3.Validate(1); err != nil {
		t.Fatalf("DAP-2 on 512 GPUs must pass: %v", err)
	}
}

func TestGroupAssignmentContiguous(t *testing.T) {
	p, _ := NewPlan(32, 8)
	if p.GroupOf(0) != 0 || p.GroupOf(7) != 0 || p.GroupOf(8) != 1 || p.GroupOf(31) != 3 {
		t.Fatal("groups must be contiguous blocks of Degree ranks")
	}
	g := p.GroupRanks(1)
	if len(g) != 8 || g[0] != 8 || g[7] != 15 {
		t.Fatalf("group ranks %v", g)
	}
}

func TestMaxRanksForBatch(t *testing.T) {
	// The paper's headline: DAP-8 scales a 256 batch to 2048 training GPUs.
	if got := MaxRanksForBatch(256, 8); got != 2048 {
		t.Fatalf("MaxRanksForBatch = %d, want 2048", got)
	}
	// Batch above the cap is clamped.
	if got := MaxRanksForBatch(1000, 1); got != 256 {
		t.Fatalf("clamp failed: %d", got)
	}
	// FastFold's claim: DAP raises 128 to 512 with DAP-4.
	if got := MaxRanksForBatch(128, 4); got != 512 {
		t.Fatalf("FastFold scaling: %d", got)
	}
}
