// Package dap implements the Dynamic Axial Parallelism plan (FastFold's
// model-parallel strategy, §2.3, which ScaleFold adopts): under data
// parallelism, groups of N GPUs cooperate on one training sample by
// splitting intermediate activations along a non-reductive axis. DAP exists
// because AlphaFold's global batch size cannot exceed 256 without losing
// convergence, which caps pure data parallelism at 256 GPUs.
package dap

import (
	"errors"
	"fmt"
)

// MaxGlobalBatch is the convergence-imposed cap on the data-parallel degree
// ("the training batch size of AlphaFold cannot exceed 256", §2.2).
const MaxGlobalBatch = 256

// Plan maps ranks to DAP groups and data-parallel replicas.
type Plan struct {
	TotalRanks int // GPUs participating in training
	Degree     int // DAP-N: GPUs cooperating on one sample
	DPWays     int // data-parallel replicas = TotalRanks / Degree
}

// NewPlan validates and builds a plan.
func NewPlan(totalRanks, degree int) (Plan, error) {
	if degree < 1 {
		return Plan{}, errors.New("dap: degree must be >= 1")
	}
	if totalRanks < degree {
		return Plan{}, fmt.Errorf("dap: %d ranks cannot host DAP-%d", totalRanks, degree)
	}
	if totalRanks%degree != 0 {
		return Plan{}, fmt.Errorf("dap: %d ranks not divisible by DAP-%d", totalRanks, degree)
	}
	return Plan{TotalRanks: totalRanks, Degree: degree, DPWays: totalRanks / degree}, nil
}

// Validate checks the plan against the convergence constraint for the given
// per-replica (local) batch size.
func (p Plan) Validate(localBatch int) error {
	if gb := p.DPWays * localBatch; gb > MaxGlobalBatch {
		return fmt.Errorf("dap: global batch %d exceeds the %d convergence limit — increase DAP degree", gb, MaxGlobalBatch)
	}
	return nil
}

// GroupOf returns the DAP group index of a rank; ranks are grouped
// contiguously so a DAP group stays inside one NVLink node when Degree <= 8.
func (p Plan) GroupOf(rank int) int { return rank / p.Degree }

// GroupRanks returns the member ranks of a DAP group.
func (p Plan) GroupRanks(group int) []int {
	out := make([]int, p.Degree)
	for i := range out {
		out[i] = group*p.Degree + i
	}
	return out
}

// MaxRanksForBatch returns the largest usable GPU count for a global batch,
// which is how DAP "increases parallelism from 128 to 512 GPUs" and beyond:
// batch × degree.
func MaxRanksForBatch(globalBatch, degree int) int {
	if globalBatch > MaxGlobalBatch {
		globalBatch = MaxGlobalBatch
	}
	return globalBatch * degree
}
