package perturb

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNormalizeFoldsNoOpComponents(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   Spec
		zero bool
	}{
		{"zero", Spec{}, true},
		{"slowdown-factor-1", Spec{SlowdownProb: 0.9, SlowdownFactor: 1}, true},
		{"slowdown-no-prob", Spec{SlowdownFactor: 8}, true},
		{"stall-no-mean", Spec{StallRate: 5}, true},
		{"stall-no-rate", Spec{StallMean: 10}, true},
		{"restart-no-fail", Spec{RestartCost: 600}, true},
		{"live-failures", Spec{FailProb: 0.01}, false},
		{"live-stalls", Spec{StallRate: 1, StallMean: 1}, false},
	} {
		n := tc.in.Normalize()
		if n.IsZero() != tc.zero {
			t.Errorf("%s: IsZero = %v, want %v (normalized %+v)", tc.name, n.IsZero(), tc.zero, n)
		}
		if n.Normalize() != n {
			t.Errorf("%s: Normalize not idempotent: %+v vs %+v", tc.name, n.Normalize(), n)
		}
		if tc.in.Enabled() == tc.in.IsZero() {
			t.Errorf("%s: Enabled must be the negation of IsZero", tc.name)
		}
	}
}

func TestValidateRejectsOutOfDomain(t *testing.T) {
	for name, s := range map[string]Spec{
		"negative prob":    {SlowdownProb: -0.1},
		"prob above 1":     {FailProb: 1.5},
		"huge stall rate":  {StallRate: MaxStallRate + 1},
		"huge restart":     {RestartCost: MaxRestartCost + 1},
		"huge factor":      {SlowdownFactor: MaxSlowdownFactor + 1},
		"huge stall mean":  {StallMean: MaxStallMean + 1},
		"negative restart": {RestartCost: -1},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
	ok := Spec{SlowdownProb: 0.1, SlowdownFactor: 4, StallRate: 1, StallMean: 5, FailProb: 0.001, RestartCost: 60}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestParseJSONStrictAndTyped(t *testing.T) {
	s, err := ParseJSON([]byte(`{"fail_prob":0.01,"restart_cost_s":60}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.FailProb != 0.01 || s.RestartCost != 60 {
		t.Fatalf("decoded %+v", s)
	}
	for name, in := range map[string]string{
		"unknown field": `{"fail_prob":0.01,"restrat_cost_s":60}`,
		"trailing doc":  `{"fail_prob":0.01}{"fail_prob":0.02}`,
		"out of domain": `{"fail_prob":7}`,
		"not json":      `fail_prob=0.01`,
	} {
		if _, err := ParseJSON([]byte(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		} else if !strings.Contains(err.Error(), "perturb") {
			t.Errorf("%s: error not typed with package context: %v", name, err)
		}
	}
}

func TestCanonicalNormalizesAndIsStable(t *testing.T) {
	live := Spec{StallRate: 0.5, StallMean: 2}
	if got, want := live.Canonical(),
		"perturb{slowdown_prob=0;slowdown_factor=0;stall_rate=0.5;stall_mean=2;fail_prob=0;restart_cost=0}"; got != want {
		t.Fatalf("canonical drifted:\n got %s\nwant %s", got, want)
	}
	// No-op components vanish from the encoding.
	noisy := live
	noisy.SlowdownProb, noisy.SlowdownFactor = 0.9, 1
	if noisy.Canonical() != live.Canonical() {
		t.Fatalf("no-op slowdown leaked into the canonical encoding")
	}
}

// TestStreamDeterministicAndDisjoint pins the determinism contract the
// simulator builds on: same (spec, seed, rank) reproduces the draw
// sequence; different ranks draw decorrelated sequences.
func TestStreamDeterministicAndDisjoint(t *testing.T) {
	spec := Spec{SlowdownProb: 0.5, SlowdownFactor: 3, StallRate: 1, StallMean: 2, FailProb: 0.1}
	a, b := spec.Stream(42, 7), spec.Stream(42, 7)
	other := spec.Stream(42, 8)
	same, diff := true, false
	if a.Factor() != b.Factor() {
		t.Fatalf("factor not reproducible: %v vs %v", a.Factor(), b.Factor())
	}
	for i := 0; i < 32; i++ {
		s1, f1 := a.Step()
		s2, f2 := b.Step()
		s3, _ := other.Step()
		if s1 != s2 || f1 != f2 {
			same = false
		}
		if s1 != s3 {
			diff = true
		}
		if s1 < 0 {
			t.Fatalf("negative stall %v", s1)
		}
	}
	if !same {
		t.Fatal("identical streams diverged")
	}
	if !diff {
		t.Fatal("distinct ranks drew identical stall sequences")
	}
}

func TestJSONRoundTripIsFixedPoint(t *testing.T) {
	n := Spec{SlowdownProb: 0.25, SlowdownFactor: 2.5, FailProb: 1e-4, RestartCost: 90}.Normalize()
	blob, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back != n {
		t.Fatalf("round trip moved the spec:\n got %+v\nwant %+v", back, n)
	}
}

func TestStringSummarizes(t *testing.T) {
	if got := (Spec{}).String(); got != "perturb{off}" {
		t.Fatalf("zero spec prints %q", got)
	}
	s := Spec{FailProb: 0.01, RestartCost: 60}.String()
	if !strings.Contains(s, "fail 0.01") {
		t.Fatalf("summary %q misses the failure component", s)
	}
}
