// Package perturb is the typed, seeded perturbation model of the cluster
// simulator: it describes the unhealthy-cluster effects every real
// 1024-rank training run lives with — persistent per-rank stragglers
// (slowdown factor draws), transient stalls (Poisson arrivals of
// exponentially-sized pauses: network hiccups, filesystem stalls, background
// daemons), and rank failures paid for with a checkpoint-restart cost.
//
// A Spec is pure data: JSON-round-trippable (the scenario wire format
// embeds it under "perturb"), explicitly canonicalized (the v4 scenario
// fingerprint hashes Canonical()), and lowered into per-rank RNG streams
// (Stream) that the simulator's step march consumes. Each rank owns a
// private stream seeded from (simulation seed, rank), so the injected
// noise is bit-identical however the simulator shards ranks across
// goroutines — the same contract cluster.Simulate already keeps for its
// execution-jitter streams.
//
// The zero Spec means "healthy cluster": Normalize folds every no-op
// component (a zero rate, a slowdown factor ≤ 1) back to zero, and a Spec
// that normalizes to zero is treated everywhere — validation, fingerprint,
// simulation — exactly like an absent one.
package perturb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Spec declares a perturbation model. All fields are optional; the zero
// value injects nothing. Rates and probabilities are per rank per step;
// durations are seconds (the JSON field names carry the unit).
type Spec struct {
	// SlowdownProb is the probability that a rank is a persistent
	// straggler: slow host, throttled GPU, noisy neighbor. Each straggler
	// draws a slowdown factor uniformly from [1, SlowdownFactor] once at
	// startup and keeps it for the whole run.
	SlowdownProb float64 `json:"slowdown_prob,omitempty"`
	// SlowdownFactor is the worst-case compute multiplier a straggler rank
	// can draw. Values ≤ 1 make the component a no-op (Normalize zeroes it).
	SlowdownFactor float64 `json:"slowdown_factor,omitempty"`

	// StallRate is the Poisson arrival rate of transient stalls, in events
	// per rank per step. Each stall pauses the rank for an exponentially
	// distributed duration with mean StallMean seconds before the step's
	// compute begins.
	StallRate float64 `json:"stall_rate,omitempty"`
	// StallMean is the mean transient-stall duration in seconds.
	StallMean float64 `json:"stall_mean_s,omitempty"`

	// FailProb is the per-rank per-step probability of a fatal failure.
	// Any failure loses the step's work: the job replays the step and
	// additionally pays RestartCost wall-clock seconds for the
	// checkpoint-restart (detection, scheduler round trip, checkpoint
	// load, pipeline rewarm).
	FailProb float64 `json:"fail_prob,omitempty"`
	// RestartCost is the wall-clock cost of one checkpoint-restart in
	// seconds, on top of the replayed step.
	RestartCost float64 `json:"restart_cost_s,omitempty"`
}

// Domain bounds enforced by Validate. They reject nonsense before it can
// stall the simulator (a 10^300 stall rate would make every step draw
// forever) and keep the fuzzed input space meaningful: more than
// MaxStallRate stalls per step, an hour-plus mean stall, or a day-plus
// restart is outside any cluster this model describes.
const (
	MaxSlowdownFactor = 1000  // 1000× slower is already a dead rank
	MaxStallRate      = 100   // stall events per rank per step
	MaxStallMean      = 3600  // seconds: one hour mean stall
	MaxRestartCost    = 86400 // seconds: one day per restart
)

// Validate rejects specs outside the model's domain: negative or
// non-finite fields, probabilities above 1, and rates/durations beyond the
// documented bounds. It never panics; every rejection is a typed error
// naming the offending field. No-op component combinations (for example a
// positive StallRate with a zero StallMean) are not errors — Normalize
// folds them to zero.
func (s Spec) Validate() error {
	check := func(name string, v, max float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("perturb: %s must be finite, got %v", name, v)
		}
		if v < 0 {
			return fmt.Errorf("perturb: %s must be >= 0, got %v", name, v)
		}
		if v > max {
			return fmt.Errorf("perturb: %s must be <= %v, got %v", name, max, v)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    float64
		max  float64
	}{
		{"slowdown_prob", s.SlowdownProb, 1},
		{"slowdown_factor", s.SlowdownFactor, MaxSlowdownFactor},
		{"stall_rate", s.StallRate, MaxStallRate},
		{"stall_mean_s", s.StallMean, MaxStallMean},
		{"fail_prob", s.FailProb, 1},
		{"restart_cost_s", s.RestartCost, MaxRestartCost},
	} {
		if err := check(c.name, c.v, c.max); err != nil {
			return err
		}
	}
	return nil
}

// Normalize folds no-op components to zero, so two specs that inject
// identical noise are one spec — same canonical encoding, same scenario
// fingerprint, same store record. Idempotent.
func (s Spec) Normalize() Spec {
	if s.SlowdownProb <= 0 || s.SlowdownFactor <= 1 {
		s.SlowdownProb, s.SlowdownFactor = 0, 0
	}
	if s.StallRate <= 0 || s.StallMean <= 0 {
		s.StallRate, s.StallMean = 0, 0
	}
	if s.FailProb <= 0 {
		s.FailProb, s.RestartCost = 0, 0
	}
	return s
}

// IsZero reports whether the normalized spec injects nothing. A Spec whose
// Normalize is zero is everywhere equivalent to an absent one: the
// scenario layer drops it and keeps the unperturbed v3 fingerprint.
func (s Spec) IsZero() bool { return s.Normalize() == Spec{} }

// Enabled reports whether the spec injects anything. It is the gate the
// simulator checks before paying any perturbation cost — a disabled spec
// leaves the unperturbed hot path (and its RNG streams) untouched.
func (s Spec) Enabled() bool { return !s.IsZero() }

// RestartCostDur returns the checkpoint-restart cost as a duration.
func (s Spec) RestartCostDur() time.Duration {
	return time.Duration(s.RestartCost * float64(time.Second))
}

// Canonical returns the explicit field-by-field encoding hashed into the
// v4 scenario fingerprint: shortest round-trip float formatting, fixed
// field order, normalized first. The format is stable by contract — it is
// pinned by the scenario golden corpus.
func (s Spec) Canonical() string {
	s = s.Normalize()
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return fmt.Sprintf(
		"perturb{slowdown_prob=%s;slowdown_factor=%s;stall_rate=%s;stall_mean=%s;fail_prob=%s;restart_cost=%s}",
		f(s.SlowdownProb), f(s.SlowdownFactor), f(s.StallRate), f(s.StallMean), f(s.FailProb), f(s.RestartCost))
}

// ParseJSON decodes one Spec from strict JSON: unknown fields and trailing
// data are errors (a typo'd field name cannot silently select a healthy
// cluster). The decoded spec is validated.
func ParseJSON(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("perturb: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("perturb: trailing data after the spec")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Stream is one rank's private perturbation RNG stream: the persistent
// slowdown factor drawn at creation plus the per-step transient draws.
// Streams are independent across ranks by construction (disjoint seeds),
// which is what lets the simulator shard ranks across any number of
// goroutines and still produce bit-identical Results. Not safe for
// concurrent use; each rank's march owns its stream exclusively.
type Stream struct {
	spec   Spec
	rng    *rand.Rand
	factor float64
}

// Stream returns rank r's perturbation stream for a simulation seeded with
// seed. The seed derivation is part of the determinism contract: the same
// (spec, seed, rank) always yields the same draw sequence, and it is
// disjoint from the simulator's execution-jitter streams (seed*31 + rank)
// so enabling perturbation never disturbs the unperturbed noise.
func (s Spec) Stream(seed int64, r int) *Stream {
	s = s.Normalize()
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(r)*7_919 + 257))
	factor := 1.0
	if s.SlowdownProb > 0 && rng.Float64() < s.SlowdownProb {
		factor = 1 + rng.Float64()*(s.SlowdownFactor-1)
	}
	return &Stream{spec: s, rng: rng, factor: factor}
}

// Factor returns the rank's persistent compute slowdown factor (1 for a
// healthy rank), fixed for the stream's lifetime.
func (st *Stream) Factor() float64 { return st.factor }

// Step draws one step's transient perturbations, in step order: the total
// injected stall time and whether the rank suffers a fatal failure this
// step. Call exactly once per simulated step.
func (st *Stream) Step() (stall time.Duration, failed bool) {
	if st.spec.StallRate > 0 {
		for n := poisson(st.rng, st.spec.StallRate); n > 0; n-- {
			stall += time.Duration(st.rng.ExpFloat64() * st.spec.StallMean * float64(time.Second))
		}
	}
	if st.spec.FailProb > 0 {
		failed = st.rng.Float64() < st.spec.FailProb
	}
	return stall, failed
}

// poisson draws from Poisson(lambda) by Knuth's product method — exact,
// allocation-free, and O(lambda) per draw, which the MaxStallRate bound
// keeps cheap.
func poisson(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// String summarizes the normalized spec for logs and error messages.
func (s Spec) String() string {
	s = s.Normalize()
	if s == (Spec{}) {
		return "perturb{off}"
	}
	var parts []string
	if s.SlowdownProb > 0 {
		parts = append(parts, fmt.Sprintf("slowdown %g@%gx", s.SlowdownProb, s.SlowdownFactor))
	}
	if s.StallRate > 0 {
		parts = append(parts, fmt.Sprintf("stalls %g/step@%gs", s.StallRate, s.StallMean))
	}
	if s.FailProb > 0 {
		parts = append(parts, fmt.Sprintf("fail %g@%gs", s.FailProb, s.RestartCost))
	}
	return "perturb{" + strings.Join(parts, " ") + "}"
}
