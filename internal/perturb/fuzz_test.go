package perturb

import (
	"encoding/json"
	"testing"
)

// FuzzPerturbSpec drives the Spec invariants over the whole float64 input
// space: Validate never panics and partitions the space into typed errors
// vs accepted specs; on accepted specs Normalize is idempotent, preserves
// validity, agrees with IsZero/Enabled, the canonical encoding is a pure
// function of the normalized value, and the JSON round trip of a
// normalized spec is a fixed point. The seed corpus under
// testdata/fuzz/FuzzPerturbSpec keeps the interesting boundary cases (no-op
// components, domain maxima) in every plain `go test` run.
func FuzzPerturbSpec(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(0.05, 3.0, 0.5, 2.0, 0.001, 60.0)
	f.Add(1.0, 1.0, 100.0, 3600.0, 1.0, 86400.0)
	f.Add(0.9, 0.5, 5.0, 0.0, 0.0, 600.0) // all components no-op
	f.Add(-1.0, 2.0, 0.0, 0.0, 2.0, -3.0) // out of domain
	f.Fuzz(func(t *testing.T, sp, sf, sr, sm, fp, rc float64) {
		s := Spec{
			SlowdownProb: sp, SlowdownFactor: sf,
			StallRate: sr, StallMean: sm,
			FailProb: fp, RestartCost: rc,
		}
		err := s.Validate()
		n := s.Normalize()
		if n.Normalize() != n {
			t.Fatalf("Normalize not idempotent: %+v -> %+v", n, n.Normalize())
		}
		if n.IsZero() == n.Enabled() {
			t.Fatalf("IsZero and Enabled agree on %+v", n)
		}
		if err != nil {
			return // rejected input: the invariants below assume validity
		}
		if verr := n.Validate(); verr != nil {
			t.Fatalf("Normalize broke validity: %+v -> %+v: %v", s, n, verr)
		}
		if n.Canonical() != s.Canonical() {
			t.Fatalf("Canonical not normalize-invariant:\n%s\nvs\n%s", n.Canonical(), s.Canonical())
		}
		blob, merr := json.Marshal(n)
		if merr != nil {
			t.Fatalf("marshal of valid spec failed: %v", merr)
		}
		back, perr := ParseJSON(blob)
		if perr != nil {
			t.Fatalf("round trip of valid spec rejected: %s: %v", blob, perr)
		}
		if back.Normalize() != n {
			t.Fatalf("JSON round trip moved the spec: %+v -> %s -> %+v", n, blob, back)
		}
		if !n.Enabled() {
			return
		}
		// Stream totality and determinism on live specs: draws never
		// panic, never go negative, and reproduce per (seed, rank).
		a, b := n.Stream(3, 1), n.Stream(3, 1)
		if a.Factor() != b.Factor() || a.Factor() < 1 {
			t.Fatalf("factor broken: %v vs %v", a.Factor(), b.Factor())
		}
		for i := 0; i < 4; i++ {
			s1, f1 := a.Step()
			s2, f2 := b.Step()
			if s1 != s2 || f1 != f2 {
				t.Fatalf("stream not deterministic at step %d", i)
			}
			if s1 < 0 {
				t.Fatalf("negative stall %v", s1)
			}
		}
	})
}
