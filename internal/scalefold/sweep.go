package scalefold

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analytic"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/perturb"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/sweep"
)

// SweepSpec declares a scenario sweep over the simulator: either a
// full-factorial grid of platform × rank count × DAP width × ablation switch
// × seed replica, lowered to canonical Scenarios, or an explicit Scenario
// list (the service's scenario-JSON jobs). Both run as StepConfig cells on
// the sweep engine. The `scalefold sweep` subcommand is a flag-parsing shim
// over this type.
type SweepSpec struct {
	// Profile picks the base configuration each grid cell starts from:
	// "scalefold" (Figure 7 optimized config, default), "baseline"
	// (unoptimized OpenFold reference) or "fastfold".
	Profile string
	// Arches are platform names from the scenario registry ("H100",
	// "h100-eos", "a100-selene", ...). Grid cells derive their seeds from
	// the axis values as spelled (pre-scenario-layer compatible), so one
	// grid should spell each platform one way; explicit Scenarios are the
	// spelling-independent route.
	Arches []string
	Ranks  []int
	DAPs   []int
	// Ablations are StepConfig.Ablation values ("none" plus the Figure 3
	// barrier switches); see the Ablations variable.
	Ablations []string
	// Seeds is the number of seed replicas per scenario (axis "seed" with
	// values 1..Seeds). Each cell derives its RNG seed deterministically
	// from the replica index and the scenario fingerprint.
	Seeds int
	// Scenarios, when non-empty, replaces the grid axes above: each entry
	// is one explicit cell, validated by scenario.Validate at spec
	// validation time (an infeasible explicit scenario is an error, not a
	// skipped row — the submitter named it deliberately). Identity fields
	// (Steps included) come entirely from each scenario, so its fingerprint
	// is a function of the descriptor alone; only the execution knobs below
	// (Workers, Cache, Store, ...) still apply.
	Scenarios []scenario.Scenario
	// Steps overrides the per-simulation step count (0 = simulator default).
	Steps int
	// Workers bounds the worker pool (<= 0: GOMAXPROCS).
	Workers int
	// SimWorkers shards each simulation's internal per-rank work across
	// goroutines (<= 1: serial; see cluster.Options.SimWorkers). Execution
	// detail only — results and fingerprints are identical for every value.
	// Applied to every grid cell, and to explicit Scenarios that don't set
	// their own. Prefer Workers (cell parallelism) for many-cell sweeps;
	// SimWorkers pays off when a few huge-rank cells dominate.
	SimWorkers int
	// Perturb, when non-nil and non-trivial, injects unhealthy-cluster
	// noise (stragglers, transient stalls, failures + restarts; see
	// package perturb) into every grid cell, and into explicit Scenarios
	// that don't carry their own block. Unlike SimWorkers this IS
	// identity-bearing: perturbed cells fingerprint under the v4 key
	// generation and never share store records with healthy ones.
	Perturb *perturb.Spec
	// Mode selects how cells resolve their Result: "" or "exact" runs the
	// simulator (the default), "analytic" serves package analytic's
	// closed-form estimate, "auto" picks per cell — analytic unless the
	// estimate's error bounds straddle a decision boundary
	// (analytic.ShouldEscalate), in which case the cell escalates to
	// exact. Applied to every grid cell and to explicit Scenarios that
	// don't carry their own mode. Auto resolves at lowering time (the
	// estimator costs microseconds), so the resolved cells carry plain
	// analytic or exact fingerprints: an auto sweep shares memo entries
	// and store records with explicitly-moded sweeps, and its escalation
	// set is a deterministic function of the scenarios alone. Identity-
	// bearing for analytic cells (v5 keys — an estimate must never satisfy
	// an exact lookup); exact cells keep their v3/v4 keys byte-identical.
	Mode string
	// Cache memoizes results across Run calls. nil selects the process-wide
	// cache shared with the figure runners; benchmarks and determinism
	// tests pass a fresh one to force cold execution.
	Cache *sweep.Cache[cluster.Result]
	// Store, when non-nil, persistently backs the memo for this sweep:
	// cells are looked up in the store before simulating and written
	// through after. nil falls back to the process-wide store attached via
	// AttachStore (which may itself be nil: memory-only).
	Store store.Store[cluster.Result]
	// OnStoreErr, when non-nil, receives store write-through errors (the
	// sweep continues; a failing store degrades to memory-only operation).
	OnStoreErr func(error)
	// Metrics, when non-nil, counts how each executed cell was satisfied.
	Metrics *SweepMetrics
	// OnRow, when non-nil, streams rows as they settle: every skipped row
	// first (in grid order, before execution starts), then each executed
	// row as its cell completes (completion order; calls are serialized).
	// The sweep service's NDJSON endpoint hangs off this hook.
	OnRow func(i int, row SweepRow)
	// Gate, when non-nil, wraps the execution of each cold cell. The sweep
	// service uses it to bound total simulation concurrency across
	// concurrent jobs with one server-wide semaphore — and to drain
	// cancelled jobs quickly by skipping the run (the cell then reports a
	// zero Result, which is never persisted).
	Gate func(run func())
	// Runner, when non-nil, replaces local simulation for cells the store
	// cannot satisfy: the fabric coordinator dispatches each such cell to a
	// registered worker and returns its result (byte-identical to a local
	// run — results round-trip losslessly). The memo cache and the store
	// fast path still apply in front of it. A Runner error (worker fleet
	// lost the cell beyond the retry budget, or dispatch was cancelled)
	// fails the whole sweep: Run returns the first one after the engine
	// drains, with the affected rows carrying zero Results.
	Runner func(c StepConfig) (cluster.Result, error)
	// OnEstimate, when non-nil, observes the latency of every analytic
	// estimate this sweep computes (store hits excluded). The sweep service
	// feeds its estimate-latency histogram with it.
	OnEstimate func(time.Duration)
	// Trace, when non-nil, records one cat="cell" lifecycle span per settled
	// cell: locally resolved cells (store hit or simulation) land on a
	// "local-N" engine-slot lane, memo-settled cells on the "memo" lane.
	// Cells the Runner resolves are NOT spanned here — the Runner's owner
	// (the fabric layer) records them with true worker attribution, so every
	// cell appears exactly once whoever executed it.
	Trace *obs.Tracer
}

// SweepMetrics counts how the cells of a Run were satisfied. All fields are
// safe to read concurrently while the sweep runs.
type SweepMetrics struct {
	Simulated atomic.Int64 // ran the exact simulator
	StoreHits atomic.Int64 // served from the persistent store
	MemoHits  atomic.Int64 // settled by the in-memory memo (incl. singleflight waits)
	Remote    atomic.Int64 // dispatched to a fabric worker (SweepSpec.Runner)
	Analytic  atomic.Int64 // served by the closed-form estimator (package analytic)
	Escalated atomic.Int64 // auto-mode cells whose bounds forced exact simulation
}

// DefaultSweepSpec is the out-of-the-box exploration grid: the optimized
// ScaleFold profile on H100×256 across every DAP width and every barrier
// ablation — 24 cells the paper never plotted side by side.
func DefaultSweepSpec() SweepSpec {
	return SweepSpec{
		Profile:   "scalefold",
		Arches:    []string{"H100"},
		Ranks:     []int{256},
		DAPs:      []int{1, 2, 4, 8},
		Ablations: append([]string(nil), Ablations...),
		Seeds:     1,
	}
}

// Grid returns the declared axes. Expansion is exhaustive — infeasible
// cells (ranks not divisible by DAP) are skipped at lowering time with a
// note in the row set, not silently dropped from the grid.
func (s SweepSpec) Grid() sweep.Grid {
	ints := func(vs []int) []string {
		out := make([]string, len(vs))
		for i, v := range vs {
			out[i] = strconv.Itoa(v)
		}
		return out
	}
	nSeeds := s.Seeds
	if nSeeds < 0 {
		nSeeds = 0 // expansion then fails with `axis "seed" has no values`
	}
	seeds := make([]string, nSeeds)
	for i := range seeds {
		seeds[i] = strconv.Itoa(i + 1)
	}
	return sweep.Grid{Axes: []sweep.Axis{
		{Name: "arch", Values: s.Arches},
		{Name: "ranks", Values: ints(s.Ranks)},
		{Name: "dap", Values: ints(s.DAPs)},
		{Name: "ablate", Values: s.Ablations},
		{Name: "seed", Values: seeds},
	}}
}

// configFor lowers one grid point to a runnable StepConfig. The reported
// error marks infeasible cells (rank/DAP mismatch).
func (s SweepSpec) configFor(p sweep.Point) (StepConfig, error) {
	platform := p.Get("arch")
	if _, err := scenario.PlatformByName(platform); err != nil {
		return StepConfig{}, err
	}
	ranks, _ := strconv.Atoi(p.Get("ranks"))
	dap, _ := strconv.Atoi(p.Get("dap"))
	seedIdx, _ := strconv.Atoi(p.Get("seed"))
	ablate := p.Get("ablate")
	if !scenario.ValidAblation(ablate) {
		return StepConfig{}, fmt.Errorf("unknown ablation %q (want one of %v)", ablate, Ablations)
	}
	if ranks < 1 || dap < 1 || ranks%dap != 0 {
		return StepConfig{}, fmt.Errorf("infeasible cell: %d ranks cannot host DAP-%d", ranks, dap)
	}
	var c StepConfig
	switch s.Profile {
	case "", "scalefold":
		c = Figure7Config(platform, ranks, dap)
	case "baseline":
		c = ReferenceConfig(platform, ranks)
		c.DAP = dap
		c.Census.DAP = dap
	case "fastfold":
		c = FastFoldConfig(platform, ranks, dap)
	default:
		return StepConfig{}, fmt.Errorf("unknown profile %q (want scalefold, baseline or fastfold)", s.Profile)
	}
	c.Name = p.Fingerprint()
	c.Ablation = ablate
	c.Steps = s.Steps
	c.SimWorkers = s.SimWorkers
	if s.Perturb != nil {
		cp := *s.Perturb
		c.Perturb = &cp
	}
	c.Seed = sweep.SeedFor(int64(seedIdx), p.Fingerprint())
	if err := c.Validate(); err != nil {
		return StepConfig{}, err
	}
	return c, nil
}

// resolveMode stamps the spec-level mode on a lowered scenario (a scenario's
// own non-empty mode wins, mirroring how its perturb block outranks the
// spec's) and resolves auto mode to its concrete per-cell resolution, counting
// escalations on m. Auto resolves here, at lowering time, so the cells the
// engine sees are plain analytic or exact cells — same fingerprints, memo
// entries and store records as an explicitly-moded sweep would produce.
func (s SweepSpec) resolveMode(n scenario.Scenario, m *SweepMetrics) scenario.Scenario {
	if n.Mode == "" && s.Mode != "" && s.Mode != scenario.ModeExact {
		n.Mode = s.Mode
	}
	if n.Mode == scenario.ModeAuto {
		mode, escalated := resolveAuto(n)
		n.Mode = mode
		if escalated && m != nil {
			m.Escalated.Add(1)
		}
	}
	return n
}

// resolveAuto picks an auto-mode scenario's concrete resolution: analytic
// when the estimate's bounds are actionable under analytic.DefaultPolicy,
// exact when they straddle a decision boundary (or the estimator failed —
// the simulator is the safe fallback). Deterministic: the estimator is a
// pure function of the scenario, so the same sweep escalates the same cells
// on every run, every machine and every worker count.
func resolveAuto(n scenario.Scenario) (mode string, escalated bool) {
	_, b, err := analytic.Estimate(n)
	if err != nil || analytic.ShouldEscalate(b) {
		return "", true
	}
	return scenario.ModeAnalytic, false
}

// ResolveAuto resolves an auto-mode configuration to the concrete cell the
// sweep would run: Mode "analytic" when the estimate's bounds are actionable,
// "" (exact) when they force escalation, reported by the second result.
// Non-auto configurations return unchanged.
func (c StepConfig) ResolveAuto() (StepConfig, bool) {
	if c.Mode != scenario.ModeAuto {
		return c, false
	}
	mode, escalated := resolveAuto(c.Scenario)
	c.Mode = mode
	return c, escalated
}

// scenarioPoint synthesizes the canonical axis coordinates of an explicit
// scenario, so explicit-scenario rows land in the same result table (and
// NDJSON row format) as grid rows.
func scenarioPoint(sc scenario.Scenario) sweep.Point {
	return sweep.Point{Coords: []sweep.Coord{
		{Axis: "arch", Value: sc.Platform},
		{Axis: "ranks", Value: strconv.Itoa(sc.Ranks)},
		{Axis: "dap", Value: strconv.Itoa(sc.DAP)},
		{Axis: "ablate", Value: sc.Ablation},
		{Axis: "seed", Value: strconv.FormatInt(sc.Seed, 10)},
	}}
}

// SweepRow is one executed (or skipped) sweep cell.
type SweepRow struct {
	Point  sweep.Point
	Config StepConfig
	Res    cluster.Result
	// SkipReason is non-empty for infeasible cells, which carry no result.
	SkipReason string
}

// validate rejects spec-wide mistakes — an unknown profile, platform or
// ablation fails every cell identically, so it is an error, not a grid of
// skips. Per-cell infeasibility (ranks not divisible by DAP) stays a skip on
// the grid path; an explicit scenario is validated in full, infeasibility
// included, because its submitter named it deliberately.
func (s SweepSpec) validate() error {
	if s.SimWorkers < 0 {
		// An execution knob, but a negative value would fail every cell
		// identically at scenario validation — reject the spec up front.
		return fmt.Errorf("sweep: sim-workers must be >= 0, got %d", s.SimWorkers)
	}
	if s.Perturb != nil {
		// A bad perturbation spec fails every cell identically too.
		if err := s.Perturb.Validate(); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	if !scenario.ValidMode(s.Mode) {
		// So is an unknown mode.
		return fmt.Errorf("sweep: unknown mode %q (want one of %v)", s.Mode, scenario.Modes)
	}
	if len(s.Scenarios) > 0 {
		for i, sc := range s.Scenarios {
			if err := sc.Validate(); err != nil {
				return fmt.Errorf("sweep: scenarios[%d]: %w", i, err)
			}
		}
		return nil
	}
	switch s.Profile {
	case "", "scalefold", "baseline", "fastfold":
	default:
		return fmt.Errorf("sweep: unknown profile %q (want scalefold, baseline or fastfold)", s.Profile)
	}
	for _, a := range s.Arches {
		if _, err := scenario.PlatformByName(a); err != nil {
			return fmt.Errorf("sweep: %v", err)
		}
	}
	for _, ab := range s.Ablations {
		if ab == "" || !scenario.ValidAblation(ab) {
			return fmt.Errorf("sweep: unknown ablation %q (want one of %v)", ab, Ablations)
		}
	}
	return nil
}

// Validate rejects spec-wide mistakes without running anything: an unknown
// profile, platform or ablation, an invalid explicit scenario, or a grid
// that cannot expand. The sweep service validates jobs at submission time
// with it.
func (s SweepSpec) Validate() error {
	if err := s.validate(); err != nil {
		return err
	}
	if len(s.Scenarios) > 0 {
		return nil
	}
	return s.Grid().Validate()
}

// Cells returns how many rows the spec expands to: the explicit scenario
// count, or the full grid size.
func (s SweepSpec) Cells() int {
	if len(s.Scenarios) > 0 {
		return len(s.Scenarios)
	}
	return s.Grid().Size()
}

// Run lowers the spec to cells — one per explicit scenario, or one per grid
// point — executes the feasible ones on the engine and returns one row per
// cell, in declaration order. onProgress (optional) streams completion
// events.
func (s SweepSpec) Run(onProgress func(sweep.Progress)) ([]SweepRow, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	var rows []SweepRow
	var cells []sweep.Cell[StepConfig]
	var cellRow []int // cells[i] fills rows[cellRow[i]]
	if len(s.Scenarios) > 0 {
		rows = make([]SweepRow, len(s.Scenarios))
		for i, sc := range s.Scenarios {
			n, err := sc.Normalize() // validated above; canonical names for display
			if err != nil {
				return nil, fmt.Errorf("sweep: scenarios[%d]: %w", i, err)
			}
			if n.SimWorkers == 0 {
				// Spec-level execution knob; a scenario's own setting wins.
				n.SimWorkers = s.SimWorkers
			}
			if n.Perturb == nil && s.Perturb != nil {
				// Spec-level perturbation; a scenario's own block wins.
				// Re-normalize so a no-op spec still collapses to nil (and
				// the cell keeps its v3 identity).
				cp := *s.Perturb
				n.Perturb = &cp
				if n, err = n.Normalize(); err != nil {
					return nil, fmt.Errorf("sweep: scenarios[%d]: %w", i, err)
				}
			}
			n = s.resolveMode(n, s.Metrics)
			p := scenarioPoint(n)
			c := StepConfig{Name: p.Fingerprint(), Scenario: n}
			rows[i].Point = p
			rows[i].Config = c
			cells = append(cells, sweep.Cell[StepConfig]{Key: c.Fingerprint(), Label: p.Fingerprint(), Config: c})
			cellRow = append(cellRow, i)
		}
	} else {
		points, err := s.Grid().Expand()
		if err != nil {
			return nil, err
		}
		rows = make([]SweepRow, len(points))
		for i, p := range points {
			rows[i].Point = p
			c, err := s.configFor(p)
			if err != nil {
				rows[i].SkipReason = err.Error()
				continue
			}
			c.Scenario = s.resolveMode(c.Scenario, s.Metrics)
			rows[i].Config = c
			cells = append(cells, sweep.Cell[StepConfig]{Key: c.Fingerprint(), Label: p.Fingerprint(), Config: c})
			cellRow = append(cellRow, i)
		}
	}
	if s.OnRow != nil {
		for i := range rows {
			if rows[i].SkipReason != "" {
				s.OnRow(i, rows[i])
			}
		}
	}
	st, onErr := s.Store, s.OnStoreErr
	if st == nil {
		var attachedErr func(error)
		st, attachedErr = processStore()
		if onErr == nil {
			onErr = attachedErr
		}
	}
	var runnerMu sync.Mutex
	var runnerErr error
	// bodySrc resolves one cold cell and reports how: "store-hit",
	// "simulated", "remote" (Runner-resolved; spanned by the Runner's owner)
	// or "error" (Runner failure; no span).
	bodySrc := func(c StepConfig) (cluster.Result, string) {
		return c.simulateViaSrcObs(st, onErr, s.Metrics, s.OnEstimate)
	}
	if s.Runner != nil {
		bodySrc = func(c StepConfig) (cluster.Result, string) {
			if c.Mode == scenario.ModeAnalytic {
				// Analytic cells never travel: the estimate costs microseconds
				// — less than the dispatch round-trip — so they resolve on the
				// coordinator (store fast path included) and the fleet only
				// sees cells that need real simulation.
				return c.estimateViaSrc(st, onErr, s.Metrics, s.OnEstimate)
			}
			if st != nil {
				if r, ok := st.Get(c.Fingerprint()); ok && r.Goodput > 0 {
					if s.Metrics != nil {
						s.Metrics.StoreHits.Add(1)
					}
					return r, "store-hit"
				}
			}
			r, err := s.Runner(c)
			if err != nil {
				runnerMu.Lock()
				if runnerErr == nil {
					runnerErr = err
				}
				runnerMu.Unlock()
				return cluster.Result{}, "error"
			}
			if s.Metrics != nil {
				s.Metrics.Remote.Add(1)
			}
			return r, "remote"
		}
	}
	body := func(c StepConfig) cluster.Result {
		r, _ := bodySrc(c)
		return r
	}
	if s.Trace != nil {
		// One trace lane per engine worker slot, recycled through a
		// free-list so concurrent cells never share a lane. The lane name
		// doubles as the owner attribution for locally resolved cells.
		nlanes := s.Workers
		if nlanes <= 0 {
			nlanes = runtime.GOMAXPROCS(0)
		}
		lanes := make(chan int, nlanes)
		for i := 0; i < nlanes; i++ {
			lanes <- i
		}
		body = func(c StepConfig) cluster.Result {
			lane := <-lanes
			t0 := time.Now()
			r, src := bodySrc(c)
			end := time.Now()
			lanes <- lane
			if src == "store-hit" || src == "simulated" || src == "analytic" {
				owner := "local-" + strconv.Itoa(lane)
				s.Trace.Span(owner, c.Name, "cell", t0, end, map[string]string{
					"owner": owner, "source": src, "key": c.Fingerprint(),
				})
			}
			return r
		}
	}
	run := func(c StepConfig) cluster.Result {
		if s.Gate == nil {
			return body(c)
		}
		var r cluster.Result
		s.Gate(func() { r = body(c) })
		return r
	}
	cache := s.Cache
	if cache == nil {
		cache = stepCache
	}
	var onResult func(int, cluster.Result, bool)
	if s.OnRow != nil || s.Metrics != nil || s.Trace != nil {
		onResult = func(ci int, r cluster.Result, cached bool) {
			if cached {
				if s.Metrics != nil {
					s.Metrics.MemoHits.Add(1)
				}
				// Memo-settled cells never touched bodySrc: record their
				// zero-duration span here so trace coverage stays exactly
				// one span per cell.
				now := time.Now()
				s.Trace.Span("memo", cells[ci].Label, "cell", now, now, map[string]string{
					"owner": "memo", "source": "memo", "key": cells[ci].Key,
				})
			}
			if s.OnRow != nil {
				ri := cellRow[ci]
				rows[ri].Res = r
				s.OnRow(ri, rows[ri])
			}
		}
	}
	eng := sweep.Engine[StepConfig, cluster.Result]{
		Workers:    s.Workers,
		Cache:      cache,
		OnProgress: onProgress,
		OnResult:   onResult,
	}
	results := eng.Run(cells, run)
	for i, r := range results {
		rows[cellRow[i]].Res = r
	}
	if runnerErr != nil {
		return rows, runnerErr
	}
	return rows, nil
}

// SweepTable formats executed rows as the canonical result table: the axis
// coordinates followed by step times and the full breakdown, all in seconds
// with fixed precision, so output is byte-identical across worker counts.
// Skipped cells emit their coordinates with a "skipped" status.
func SweepTable(rows []SweepRow) sweep.Table {
	tab := sweep.Table{Header: []string{
		"arch", "ranks", "dap", "ablate", "seed", "status",
		"median_step_s", "mean_step_s", "gpu_compute_s", "cpu_exposed_s",
		"data_wait_s", "comm_xfer_s", "comm_wait_s",
	}}
	sec := func(d interface{ Seconds() float64 }) string {
		return strconv.FormatFloat(d.Seconds(), 'f', 6, 64)
	}
	for _, r := range rows {
		p := r.Point
		if r.SkipReason != "" {
			tab.Append(p.Get("arch"), p.Get("ranks"), p.Get("dap"), p.Get("ablate"), p.Get("seed"),
				"skipped", "", "", "", "", "", "", "")
			continue
		}
		tab.Append(p.Get("arch"), p.Get("ranks"), p.Get("dap"), p.Get("ablate"), p.Get("seed"),
			"ok", sec(r.Res.MedianStep), sec(r.Res.MeanStep),
			sec(r.Res.Break.GPUCompute), sec(r.Res.Break.CPUExposed),
			sec(r.Res.Break.DataWait), sec(r.Res.Break.CommXfer), sec(r.Res.Break.CommWait))
	}
	return tab
}
