package scalefold

import (
	"encoding/json"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/search"
	"repro/internal/store"
	"repro/internal/sweep"
)

// tinySearchSpec is a fast search over small clusters for determinism and
// wiring tests: every probe simulates in milliseconds.
func tinySearchSpec(st store.Store[cluster.Result]) SearchSpec {
	return SearchSpec{
		Objective: "maximize-goodput",
		Platform:  "H100",
		Ranks:     []int{32, 64, 128},
		DAPs:      []int{1, 2, 4},
		FailLo:    1e-4,
		FailHi:    0.5,
		Steps:     2,
		Mode:      "auto",
		Budget:    64,
		Store:     st,
		Cache:     sweep.NewCache[cluster.Result](),
	}
}

// TestSearchDeterminismAndMemoization is the core contract: the same spec
// run twice against one store yields a byte-identical Frontier, and the
// second run performs zero new simulations — every probe is a memo hit.
func TestSearchDeterminismAndMemoization(t *testing.T) {
	st := store.NewMem[cluster.Result]()

	run := func() ([]byte, map[string]int, int64) {
		spec := tinySearchSpec(st)
		spec.Cache = sweep.NewCache[cluster.Result]() // cold memo: only the store persists
		sources := map[string]int{}
		spec.OnProbe = func(p search.Probe, src string, d time.Duration) { sources[src]++ }
		sims0 := Simulations()
		f, err := spec.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		return b, sources, Simulations() - sims0
	}

	b1, src1, _ := run()
	b2, src2, sims2 := run()
	if string(b1) != string(b2) {
		t.Fatalf("frontier bytes differ between runs against one store:\nfirst:  %s\nsecond: %s", b1, b2)
	}
	if sims2 != 0 {
		t.Fatalf("second run simulated %d times; the store must satisfy every probe", sims2)
	}
	if n := src2["memo-hit"]; n == 0 || len(src2) != 1 {
		t.Fatalf("second run sources = %v; want memo-hit only", src2)
	}
	if src1["memo-hit"] == src1["memo-hit"]+src1["exact"]+src1["analytic"] {
		t.Fatalf("first run sources = %v; want at least one cold probe", src1)
	}

	var f Frontier
	if err := json.Unmarshal(b1, &f); err != nil {
		t.Fatal(err)
	}
	if f.Cliff == nil || len(f.Pareto) == 0 || f.Best == nil {
		t.Fatalf("frontier incomplete: %s", b1)
	}
	if f.Used != len(f.Probes) || f.Used > f.Budget {
		t.Fatalf("budget accounting off: used=%d probes=%d budget=%d", f.Used, len(f.Probes), f.Budget)
	}
}

func TestSearchSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*SearchSpec)
		want string
	}{
		{"bad objective", func(s *SearchSpec) { s.Objective = "maximize-flops" }, "objective"},
		{"bad mode", func(s *SearchSpec) { s.Mode = "guess" }, "mode"},
		{"bad platform", func(s *SearchSpec) { s.Platform = "TPUv9" }, "platform"},
		{"no feasible dap", func(s *SearchSpec) { s.Ranks = []int{100}; s.DAPs = []int{8} }, "divides"},
		{"inverted fail range", func(s *SearchSpec) { s.FailLo = 0.5; s.FailHi = 1e-4 }, "failure-rate"},
		{"nan tolerance", func(s *SearchSpec) { s.Tolerance = math.NaN() }, "tolerance"},
		{"negative sim workers", func(s *SearchSpec) { s.SimWorkers = -1 }, "sim-workers"},
		{"restart cost over cap", func(s *SearchSpec) { s.RestartCost = 1e9 }, "restart_cost_s"},
	}
	for _, tc := range cases {
		s := DefaultSearchSpec()
		tc.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v; want error mentioning %q", tc.name, err, tc.want)
		}
	}
	if err := (SearchSpec{}).Validate(); err != nil {
		t.Fatalf("zero spec must validate through defaults: %v", err)
	}
}

// TestSearchProbeKeysMatchSweepCells pins the store-key contract: a probe's
// fingerprint equals the fingerprint an equivalent resilience sweep cell
// carries, so searches and sweeps share memo entries and store records.
func TestSearchProbeKeysMatchSweepCells(t *testing.T) {
	spec := DefaultSearchSpec()
	spec.Mode = "exact"
	cfg, err := spec.configFor(search.Point{Ranks: 1024, DAP: 8, FailProb: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	rs := ResilienceSpec{
		Platform: "H100", Ranks: []int{1024}, DAP: 8,
		FailProbs: []float64{1e-4}, RestartCost: 60, Steps: 24,
	}
	scs, err := rs.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	n, err := scs[0].Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want := StepConfig{Scenario: n}.Fingerprint()
	if got := cfg.Fingerprint(); got != want {
		t.Fatalf("probe key %q != equivalent resilience cell key %q", got, want)
	}
}

// TestSearchLocalizesResilienceCliff is the acceptance check for the
// EXPERIMENTS.md goodput cliff: at ranks=1024/DAP-8 with 24-step cells and a
// 60 s restart, the exact grid records goodput 1.000 at p=1e-5 and 0.128 at
// p=1e-4 — the cliff lies between them. The searcher must localize it to
// within the bisection tolerance while escalating at most 25% of the
// simulator probes the equivalent exact grid (one cell per tolerance step
// across the searched span) would spend, and a repeat run must be
// byte-identical with every probe a memo hit.
func TestSearchLocalizesResilienceCliff(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-rank 24-step probes are seconds each; skipped under -short")
	}
	st := store.NewMem[cluster.Result]()
	spec := func() SearchSpec {
		return SearchSpec{
			Objective:  "maximize-goodput",
			Platform:   "H100",
			Ranks:      []int{1024},
			DAPs:       []int{8},
			FailLo:     1e-6,
			FailHi:     1e-2,
			Tolerance:  0.1,
			Budget:     24,
			Steps:      24,
			Mode:       "auto",
			SimWorkers: runtime.GOMAXPROCS(0),
			Store:      st,
			Cache:      sweep.NewCache[cluster.Result](),
		}
	}

	sims0 := Simulations()
	f, err := spec().Run()
	if err != nil {
		t.Fatal(err)
	}
	exactProbes := Simulations() - sims0

	c := f.Cliff
	if c == nil || !c.Found {
		t.Fatalf("cliff not found: %+v", c)
	}
	// EXPERIMENTS.md: goodput 1.000 at 1e-5, 0.128 at 1e-4 — the crossing
	// sits strictly inside [1e-5, 1e-4], and bisection of [1e-6, 1e-2]
	// lands its very first midpoints on those grid cells, so the final
	// bracket must lie within them.
	if c.Lo < 1e-5/1.001 || c.Hi > 1e-4*1.001 {
		t.Fatalf("bracket [%g, %g] outside the grid's [1e-5, 1e-4] crossing", c.Lo, c.Hi)
	}
	if w := math.Log10(c.Hi / c.Lo); w > 0.1*1.0001 {
		t.Fatalf("bracket width %.3f decades exceeds the 0.1 tolerance", w)
	}
	// The equivalent exact grid at the same resolution: one cell per
	// tolerance step across the 4-decade span, plus the endpoint.
	gridCells := int(math.Ceil(4/0.1)) + 1
	if max := int64(gridCells / 4); exactProbes > max {
		t.Fatalf("search escalated %d exact simulations; want <= 25%% of the %d-cell grid (%d)",
			exactProbes, gridCells, max)
	}
	t.Logf("cliff [%g, %g] via %d probes (%d exact) vs %d grid cells",
		c.Lo, c.Hi, f.Used, exactProbes, gridCells)

	// Repeat run against the warm store: byte-identical frontier, zero new
	// simulations, every probe a memo hit.
	b1, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	sources := map[string]int{}
	sp2 := spec()
	sp2.OnProbe = func(p search.Probe, src string, d time.Duration) { sources[src]++ }
	sims1 := Simulations()
	f2, err := sp2.Run()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(f2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("repeat frontier differs:\nfirst:  %s\nsecond: %s", b1, b2)
	}
	if d := Simulations() - sims1; d != 0 {
		t.Fatalf("repeat run simulated %d times; want 0", d)
	}
	if sources["memo-hit"] != f2.Used || len(sources) != 1 {
		t.Fatalf("repeat run sources = %v; want %d memo hits only", sources, f2.Used)
	}
}
