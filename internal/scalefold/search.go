package scalefold

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/perturb"
	"repro/internal/scenario"
	"repro/internal/search"
	"repro/internal/store"
	"repro/internal/sweep"
)

// Frontier is the adaptive search's report (see package search); re-exported
// so service and CLI callers need only this package.
type Frontier = search.Frontier

// SearchSpec declares an adaptive search over the scenario space: instead of
// enumerating a (ranks × DAP × failure-rate) grid, the search driver
// (package search) bisects the failure axis around the goodput cliff,
// detects the knee of the ranks-scaling curve, and refines the Pareto
// frontier over (cost, goodput) — spending a bounded probe budget where the
// answer changes. The `scalefold optimize` subcommand and POST /v1/search
// are shims over this type.
//
// Every probe lowers to the optimized Figure 7 configuration at the probed
// point (plus the cell's failure perturbation) and resolves through the
// standard chain — memo cache, persistent store, then analytic estimate or
// exact simulation per Mode — under exactly the fingerprints an equivalent
// sweep would use. Probes are therefore memoized and deterministic: the same
// spec against the same store yields a byte-identical Frontier with zero new
// simulations.
type SearchSpec struct {
	// Objective picks what to optimize: "maximize-goodput" (default) or
	// "minimize-cost-steptime" (ranks × mean step seconds). An unknown
	// spelling is a validation error (400 at POST /v1/search).
	Objective string
	// Platform names the hardware profile ("H100", "a100-selene", ...).
	Platform string
	// Ranks is the ascending ranks ladder; DAPs the widths considered (a
	// width applies to a rung only when it divides it; at least one width
	// must divide every rung).
	Ranks []int
	DAPs  []int
	// FailLo/FailHi bound the failure-rate axis (per-rank per-step fatal
	// failure probability) searched for the goodput cliff.
	FailLo, FailHi float64
	// RestartCost is the checkpoint-restart cost in seconds every injected
	// failure pays (perturb.Spec.RestartCost).
	RestartCost float64
	// CliffGoodput is the goodput threshold whose crossing defines the
	// cliff; Tolerance the bisection stop width in decades.
	CliffGoodput float64
	Tolerance    float64
	// Budget bounds unique probes; memoized re-probes are free.
	Budget int
	// Steps is the per-simulation step count (0 keeps the simulator
	// default; the resilience experiments use 24).
	Steps int
	// Mode selects probe resolution, as in SweepSpec.Mode — except the
	// default here is "auto": analytic estimates for cheap exploration,
	// escalating to exact simulation only the probes whose error bounds
	// straddle a decision boundary. Pass "exact" to force the simulator.
	Mode string
	// Execution knobs, as in SweepSpec. Probes run sequentially (each
	// depends on the previous answers), so there is no Workers axis;
	// SimWorkers shards inside each simulation.
	SimWorkers int
	Store      store.Store[cluster.Result]
	OnStoreErr func(error)
	Cache      *sweep.Cache[cluster.Result]
	Metrics    *SweepMetrics
	// OnProbe, when non-nil, observes every settled probe with its
	// resolution source ("analytic", "exact", "memo-hit") and wall-clock
	// latency — the service's probe stream and metrics hang off it.
	OnProbe func(p search.Probe, source string, d time.Duration)
	// OnEstimate observes analytic-estimate latencies, as in SweepSpec.
	OnEstimate func(time.Duration)
	// Gate, when non-nil, wraps each cold probe's execution (the service's
	// shared slot semaphore + cancel drain).
	Gate func(run func())
	// Stop, when non-nil, is polled before every probe; true aborts the
	// search with search.ErrStopped.
	Stop func() bool
}

// DefaultSearchSpec is the out-of-the-box search: the optimized profile on
// the H100 ladder up to the paper's 1024-rank flagship, the resilience
// experiments' failure-rate span and 24-step resolution, auto-mode probes.
func DefaultSearchSpec() SearchSpec {
	return SearchSpec{
		Objective:    string(search.MaxGoodput),
		Platform:     "H100",
		Ranks:        []int{128, 256, 512, 1024},
		DAPs:         []int{1, 2, 4, 8},
		FailLo:       1e-6,
		FailHi:       1e-2,
		RestartCost:  60,
		CliffGoodput: 0.5,
		Tolerance:    0.1,
		Budget:       64,
		Steps:        24,
		Mode:         scenario.ModeAuto,
	}
}

// WithDefaults fills unset fields from DefaultSearchSpec (the service's
// `{}`-submits-the-default contract, like JobSpec). Note Mode: the empty
// string means "auto" here, not "exact" — exploration is the point; spell
// out "exact" to force the simulator.
func (s SearchSpec) WithDefaults() SearchSpec {
	d := DefaultSearchSpec()
	if s.Objective == "" {
		s.Objective = d.Objective
	}
	if s.Platform == "" {
		s.Platform = d.Platform
	}
	if len(s.Ranks) == 0 {
		s.Ranks = d.Ranks
	}
	if len(s.DAPs) == 0 {
		s.DAPs = d.DAPs
	}
	if s.FailLo == 0 {
		s.FailLo = d.FailLo
	}
	if s.FailHi == 0 {
		s.FailHi = d.FailHi
	}
	if s.RestartCost == 0 {
		s.RestartCost = d.RestartCost
	}
	if s.CliffGoodput == 0 {
		s.CliffGoodput = d.CliffGoodput
	}
	if s.Tolerance == 0 {
		s.Tolerance = d.Tolerance
	}
	if s.Budget == 0 {
		s.Budget = d.Budget
	}
	if s.Steps == 0 {
		s.Steps = d.Steps
	}
	if s.Mode == "" {
		s.Mode = d.Mode
	}
	return s
}

// options lowers the spec to driver options (probe and hooks unset).
func (s SearchSpec) options() search.Options {
	obj, _ := search.ParseObjective(s.Objective)
	return search.Options{
		Objective:    obj,
		Ranks:        s.Ranks,
		DAPs:         s.DAPs,
		FailLo:       s.FailLo,
		FailHi:       s.FailHi,
		CliffGoodput: s.CliffGoodput,
		Tolerance:    s.Tolerance,
		Budget:       s.Budget,
	}
}

// Validate rejects spec-wide mistakes without probing anything: an unknown
// objective, platform or mode, an infeasible ladder, a bad failure-rate
// range or perturbation. The service validates POST /v1/search submissions
// with it (defaults applied first), mapping failures to 400.
func (s SearchSpec) Validate() error {
	s = s.WithDefaults()
	if _, err := search.ParseObjective(s.Objective); err != nil {
		return err
	}
	if err := s.options().Validate(); err != nil {
		return err
	}
	if s.SimWorkers < 0 {
		return fmt.Errorf("search: sim-workers must be >= 0, got %d", s.SimWorkers)
	}
	if !scenario.ValidMode(s.Mode) {
		return fmt.Errorf("search: unknown mode %q (want one of %v)", s.Mode, scenario.Modes)
	}
	if _, err := scenario.PlatformByName(s.Platform); err != nil {
		return fmt.Errorf("search: %v", err)
	}
	// The perturbation every failure-axis probe carries must be valid at
	// its most extreme (FailHi); this catches restart-cost and probability
	// bounds in one place.
	p := perturb.Spec{FailProb: s.FailHi, RestartCost: s.RestartCost}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("search: %w", err)
	}
	// And the flagship scenario itself must lower: probes are Figure 7
	// configurations, so an ill-sized ladder fails here, not mid-search.
	ranks := s.Ranks[len(s.Ranks)-1]
	for _, dap := range s.DAPs {
		if ranks%dap != 0 {
			continue
		}
		cfg := Figure7Config(s.Platform, ranks, dap)
		cfg.Steps = s.Steps
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("search: ranks=%d dap=%d: %w", ranks, dap, err)
		}
	}
	return nil
}

// configFor lowers one probe point to a runnable StepConfig: the optimized
// Figure 7 configuration at the point, the spec's step count and failure
// perturbation, normalized and mode-resolved exactly as the sweep layer
// would — so probe fingerprints, memo entries and store records are shared
// with equivalent sweep and resilience cells.
func (s SearchSpec) configFor(pt search.Point) (StepConfig, error) {
	cfg := Figure7Config(s.Platform, pt.Ranks, pt.DAP)
	sc := cfg.Scenario
	sc.Steps = s.Steps
	sc.SimWorkers = s.SimWorkers
	if pt.FailProb > 0 {
		sc.Perturb = &perturb.Spec{FailProb: pt.FailProb, RestartCost: s.RestartCost}
	}
	n, err := sc.Normalize()
	if err != nil {
		return StepConfig{}, err
	}
	n = (SweepSpec{Mode: s.Mode}).resolveMode(n, s.Metrics)
	return StepConfig{
		Name:     fmt.Sprintf("search ranks=%d dap=%d fail=%g", pt.Ranks, pt.DAP, pt.FailProb),
		Scenario: n,
	}, nil
}

// Run executes the search and returns its Frontier. Probes resolve through
// the standard chain — the in-memory memo (Cache; nil selects the
// process-wide cache), the persistent store (Store; nil falls back to the
// process-wide attachment), then analytic estimate or exact simulation per
// the resolved mode — so repeated runs against a warm store probe without
// simulating, and the Frontier bytes are identical either way.
func (s SearchSpec) Run() (Frontier, error) {
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return Frontier{}, err
	}
	st, onErr := s.Store, s.OnStoreErr
	if st == nil {
		var attachedErr func(error)
		st, attachedErr = processStore()
		if onErr == nil {
			onErr = attachedErr
		}
	}
	cache := s.Cache
	if cache == nil {
		cache = stepCache
	}
	// The driver is sequential, so a plain variable carries each probe's
	// wall-clock latency from Probe to the OnProbe observer.
	var lastDur time.Duration
	o := s.options()
	o.Stop = s.Stop
	o.Probe = func(pt search.Point) (search.Sample, string, error) {
		cfg, err := s.configFor(pt)
		if err != nil {
			return search.Sample{}, "", err
		}
		t0 := time.Now()
		var src string
		r, cached := cache.Do(cfg.Fingerprint(), func() cluster.Result {
			var res cluster.Result
			body := func() { res, src = cfg.simulateViaSrcObs(st, onErr, s.Metrics, s.OnEstimate) }
			if s.Gate != nil {
				s.Gate(body)
			} else {
				body()
			}
			return res
		})
		lastDur = time.Since(t0)
		switch {
		case cached:
			src = "memo-hit"
			if s.Metrics != nil {
				s.Metrics.MemoHits.Add(1)
			}
		case src == "simulated":
			src = "exact"
		case src == "store-hit":
			src = "memo-hit"
		}
		if s.Stop != nil && s.Stop() && r.Goodput == 0 {
			// The gate drained this probe without running it (cancel won
			// the race after the budget check): surface the stop rather
			// than logging a zero sample.
			return search.Sample{}, src, search.ErrStopped
		}
		return search.Sample{
			Goodput:   r.Goodput,
			MeanStepS: r.MeanStep.Seconds(),
			P99StepS:  r.P99Step.Seconds(),
		}, src, nil
	}
	if s.OnProbe != nil {
		o.OnProbe = func(p search.Probe, src string) { s.OnProbe(p, src, lastDur) }
	}
	return search.Run(o)
}
