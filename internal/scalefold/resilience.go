package scalefold

import (
	"fmt"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/perturb"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/sweep"
)

// ResilienceSpec declares the goodput-vs-failure-rate sweep behind the
// `scalefold resilience` subcommand: the optimized Figure 7 configuration
// at each rank count, perturbed with every failure probability on the
// axis, all sharing one restart cost. It answers the scaling question the
// paper's healthy-cluster measurements cannot: how fast does goodput decay
// as the fleet grows and per-rank failures accumulate into whole-job
// restarts?
type ResilienceSpec struct {
	// Platform names the hardware profile ("H100", "a100-selene", ...).
	Platform string
	// Ranks are the cluster sizes to compare; DAP is the (single) DAP
	// width every cell runs at.
	Ranks []int
	DAP   int
	// FailProbs is the failure-rate axis: per-rank per-step fatal-failure
	// probabilities. 0 is the healthy baseline row.
	FailProbs []float64
	// RestartCost is the checkpoint-restart cost in seconds every failure
	// pays (perturb.Spec.RestartCost).
	RestartCost float64
	// Base, when non-nil, supplies the straggler/stall components layered
	// under the failure axis (its FailProb/RestartCost are overridden per
	// cell).
	Base *perturb.Spec
	// Steps overrides the per-simulation step count (0 = default). More
	// steps sharpen the failure-rate resolution: a cell only restarts if
	// some rank fails within the simulated window.
	Steps int
	// Mode selects how cells resolve, as in SweepSpec.Mode: "" or "exact"
	// simulates, "analytic" serves closed-form estimates, "auto" estimates
	// and escalates exactly the cells whose goodput bounds straddle the
	// resilience cliff — the transition region this sweep exists to map.
	Mode string
	// Execution knobs, as in SweepSpec.
	Workers    int
	SimWorkers int
	Store      store.Store[cluster.Result]
	Cache      *sweep.Cache[cluster.Result]
	// Metrics, when non-nil, counts how each executed cell was satisfied —
	// the same counters a sweep-service job exports, so the CLI's run
	// summary prints the numbers servers would.
	Metrics *SweepMetrics
}

// DefaultResilienceSpec is the out-of-the-box resilience sweep: the paper's
// two flagship fleet sizes at DAP-8 across five failure rates spanning
// "healthy" to "a rank dies most steps", with a one-minute restart.
func DefaultResilienceSpec() ResilienceSpec {
	return ResilienceSpec{
		Platform:    "H100",
		Ranks:       []int{256, 1024},
		DAP:         8,
		FailProbs:   []float64{0, 1e-5, 1e-4, 1e-3, 1e-2},
		RestartCost: 60,
	}
}

// ResilienceRow is one executed cell of the sweep.
type ResilienceRow struct {
	Ranks    int
	FailProb float64
	Config   StepConfig
	Res      cluster.Result
}

// Scenarios lowers the spec to its explicit scenario list, in row order
// (ranks-major, failure rate minor). Every scenario is the optimized
// Figure 7 configuration plus the cell's perturbation; the FailProb = 0
// cells normalize back to healthy v3 scenarios unless Base adds noise.
func (s ResilienceSpec) Scenarios() ([]scenario.Scenario, error) {
	if len(s.Ranks) == 0 || len(s.FailProbs) == 0 {
		return nil, fmt.Errorf("resilience: ranks and fail-rate axes must be non-empty")
	}
	var out []scenario.Scenario
	for _, ranks := range s.Ranks {
		for _, fp := range s.FailProbs {
			p := perturb.Spec{}
			if s.Base != nil {
				p = *s.Base
			}
			p.FailProb = fp
			p.RestartCost = s.RestartCost
			cfg := Figure7Config(s.Platform, ranks, s.DAP)
			sc := cfg.Scenario
			sc.Steps = s.Steps
			if !p.IsZero() {
				sc.Perturb = &p
			}
			if err := sc.Validate(); err != nil {
				return nil, fmt.Errorf("resilience: ranks=%d fail_prob=%g: %w", ranks, fp, err)
			}
			out = append(out, sc)
		}
	}
	return out, nil
}

// Run executes the sweep on the engine (explicit-scenario path: every cell
// is fully specified, memoized and store-backed like any other scenario)
// and returns one row per (ranks, fail_prob) cell in declaration order.
func (s ResilienceSpec) Run(onProgress func(sweep.Progress)) ([]ResilienceRow, error) {
	scs, err := s.Scenarios()
	if err != nil {
		return nil, err
	}
	sw := SweepSpec{
		Scenarios:  scs,
		Workers:    s.Workers,
		SimWorkers: s.SimWorkers,
		Mode:       s.Mode,
		Store:      s.Store,
		Cache:      s.Cache,
		Metrics:    s.Metrics,
	}
	sweepRows, err := sw.Run(onProgress)
	if err != nil {
		return nil, err
	}
	rows := make([]ResilienceRow, len(sweepRows))
	i := 0
	for _, ranks := range s.Ranks {
		for _, fp := range s.FailProbs {
			rows[i] = ResilienceRow{Ranks: ranks, FailProb: fp, Config: sweepRows[i].Config, Res: sweepRows[i].Res}
			i++
		}
	}
	return rows, nil
}

// ResilienceTable formats the rows as the canonical goodput-vs-failure-rate
// table: fixed-precision seconds and shares, so output is byte-identical
// across worker counts and store states.
func ResilienceTable(spec ResilienceSpec, rows []ResilienceRow) sweep.Table {
	tab := sweep.Table{Header: []string{
		"arch", "ranks", "dap", "fail_prob", "restart_cost_s",
		"goodput", "restarts", "stall_share",
		"p50_step_s", "p99_step_s", "mean_step_s",
	}}
	sec := func(d interface{ Seconds() float64 }) string {
		return strconv.FormatFloat(d.Seconds(), 'f', 6, 64)
	}
	frac := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	for _, r := range rows {
		restart := 0.0
		if p := r.Config.Perturb; p != nil {
			restart = p.RestartCost
		}
		tab.Append(
			spec.Platform, strconv.Itoa(r.Ranks), strconv.Itoa(spec.DAP),
			strconv.FormatFloat(r.FailProb, 'g', -1, 64),
			strconv.FormatFloat(restart, 'g', -1, 64),
			frac(r.Res.Goodput), strconv.Itoa(r.Res.Restarts), frac(r.Res.StallShare),
			sec(r.Res.MedianStep), sec(r.Res.P99Step), sec(r.Res.MeanStep),
		)
	}
	return tab
}
