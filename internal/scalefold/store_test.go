package scalefold

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/sweep"
)

// tinySpec is a 4-cell sweep (DAP {1,2} × ablation {none, zero-launch}) at
// small rank counts: fast enough to run cold several times per test, real
// enough to exercise the simulator end to end.
func tinySpec(cache *sweep.Cache[cluster.Result]) SweepSpec {
	s := testSpec(2, cache)
	s.DAPs = []int{1, 2}
	s.Ablations = []string{"none", "zero-launch"}
	return s
}

func TestStoreBackedMemoEmitsIdenticalBytes(t *testing.T) {
	cold := sweepCSV(t, tinySpec(nil))

	// Same sweep against a persistent store, fresh in-memory cache each run
	// (as after a restart): first run simulates and fills the store, second
	// run serves every cell from the store — both must emit the bytes of
	// the cold run, for CSV and JSON alike.
	st := store.NewMem[cluster.Result]()
	first := tinySpec(nil)
	first.Store = st
	first.Metrics = &SweepMetrics{}
	firstCSV := sweepCSV(t, first)
	if n := first.Metrics.StoreHits.Load(); n != 0 {
		t.Fatalf("first run hit the empty store %d times", n)
	}
	if n := first.Metrics.Simulated.Load(); n != 4 {
		t.Fatalf("first run simulated %d cells, want 4", n)
	}
	if st.Len() != 4 {
		t.Fatalf("store holds %d results, want 4", st.Len())
	}

	second := tinySpec(nil)
	second.Store = st
	second.Metrics = &SweepMetrics{}
	secondCSV := sweepCSV(t, second)
	if n := second.Metrics.Simulated.Load(); n != 0 {
		t.Fatalf("store-warm run re-simulated %d cells, want 0", n)
	}
	if n := second.Metrics.StoreHits.Load(); n != 4 {
		t.Fatalf("store-warm run had %d store hits, want 4", n)
	}
	if !bytes.Equal(cold, firstCSV) || !bytes.Equal(cold, secondCSV) {
		t.Fatalf("store-backed memo must emit byte-identical CSV:\ncold:\n%s\nfirst:\n%s\nsecond:\n%s", cold, firstCSV, secondCSV)
	}

	jsonOf := func(s SweepSpec) []byte {
		rows, err := s.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SweepTable(rows).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	coldJSON := jsonOf(tinySpec(nil))
	warm := tinySpec(nil)
	warm.Store = st
	if !bytes.Equal(coldJSON, jsonOf(warm)) {
		t.Fatal("store-backed memo must emit byte-identical JSON")
	}
}

func TestStoreSurvivesDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d1, err := store.OpenDisk[cluster.Result](dir)
	if err != nil {
		t.Fatal(err)
	}
	first := tinySpec(nil)
	first.Store = d1
	firstCSV := sweepCSV(t, first)
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reload the store from disk; the sweep must be served fully
	// from it — cluster.Result must round-trip through the JSON log
	// byte-exactly, down to every emitted duration digit.
	d2, err := store.OpenDisk[cluster.Result](dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	second := tinySpec(nil)
	second.Store = d2
	second.Metrics = &SweepMetrics{}
	secondCSV := sweepCSV(t, second)
	if n := second.Metrics.Simulated.Load(); n != 0 {
		t.Fatalf("reloaded store must serve every cell, simulated %d", n)
	}
	if !bytes.Equal(firstCSV, secondCSV) {
		t.Fatalf("disk round trip changed emitted bytes:\n%s\nvs\n%s", firstCSV, secondCSV)
	}
}

func TestAttachStoreDrainsMemo(t *testing.T) {
	// Results memoized before attachment must be drained into the store via
	// Cache.Snapshot; results computed after go through write-through.
	ResetStepCache()
	defer func() {
		if err := AttachStore(nil, nil); err != nil {
			t.Fatal(err)
		}
		ResetStepCache()
	}()

	pre := tinySpec(nil).Grid()
	points, err := pre.Expand()
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec(nil)
	cfg, err := spec.configFor(points[0])
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Run() // lands in the process-wide memo only

	st := store.NewMem[cluster.Result]()
	if err := AttachStore(st, nil); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Get(cfg.Fingerprint()); !ok || got != want {
		t.Fatalf("attach must drain the memo: %v, %v", got, ok)
	}

	// Post-attach runs write through: a config not yet simulated appears.
	cfg2, err := spec.configFor(points[1])
	if err != nil {
		t.Fatal(err)
	}
	res2 := cfg2.Run()
	if got, ok := st.Get(cfg2.Fingerprint()); !ok || got != res2 {
		t.Fatal("post-attach Run must write through to the store")
	}

	// And a fresh memo (simulating a restart) is served from the store: the
	// simulation counter must not move.
	ResetStepCache()
	before := Simulations()
	if got := cfg.Run(); got != want {
		t.Fatal("store-served Run changed the result")
	}
	if Simulations() != before {
		t.Fatal("Run after memo reset must be served from the store, not re-simulated")
	}
}

func TestSweepMetricsCountMemoHits(t *testing.T) {
	cache := sweep.NewCache[cluster.Result]()
	s := tinySpec(cache)
	s.Metrics = &SweepMetrics{}
	if _, err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	s2 := tinySpec(cache)
	s2.Metrics = &SweepMetrics{}
	if _, err := s2.Run(nil); err != nil {
		t.Fatal(err)
	}
	if n := s2.Metrics.MemoHits.Load(); n != 4 {
		t.Fatalf("cache-warm run had %d memo hits, want 4", n)
	}
	if n := s2.Metrics.Simulated.Load(); n != 0 {
		t.Fatalf("cache-warm run simulated %d cells, want 0", n)
	}
}

func TestSweepOnRowStreamsEveryRow(t *testing.T) {
	s := testSpec(2, nil)
	s.Ranks = []int{30} // DAP 4 and 8 infeasible -> skipped rows stream too
	s.Ablations = []string{"none"}
	seen := map[int]SweepRow{}
	var order []int
	s.OnRow = func(i int, row SweepRow) {
		if _, dup := seen[i]; dup {
			t.Errorf("row %d streamed twice", i)
		}
		seen[i] = row
		order = append(order, i)
	}
	rows, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(rows) {
		t.Fatalf("streamed %d rows, want %d", len(seen), len(rows))
	}
	skips := 0
	for i, row := range rows {
		got := seen[i]
		if got.SkipReason != row.SkipReason || got.Res != row.Res {
			t.Fatalf("streamed row %d differs from returned row", i)
		}
		if row.SkipReason != "" {
			skips++
		}
	}
	// Skipped rows stream first, before any executed cell.
	for k := 0; k < skips; k++ {
		if seen[order[k]].SkipReason == "" {
			t.Fatalf("row order %v: first %d events must be the skips", order, skips)
		}
	}
}

func TestSweepGateWrapsColdCellsOnly(t *testing.T) {
	cache := sweep.NewCache[cluster.Result]()
	warm := tinySpec(cache)
	if _, err := warm.Run(nil); err != nil {
		t.Fatal(err)
	}
	s := tinySpec(cache)
	gated := 0
	s.Gate = func(run func()) { gated++; run() }
	if _, err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	if gated != 0 {
		t.Fatalf("gate ran %d times on a memo-warm sweep, want 0", gated)
	}
	cold := tinySpec(nil)
	gated = 0
	cold.Gate = func(run func()) { gated++; run() }
	if _, err := cold.Run(nil); err != nil {
		t.Fatal(err)
	}
	if gated != 4 {
		t.Fatalf("gate ran %d times on a cold sweep, want 4", gated)
	}
}

func TestLegacyKeysAreVersionedOutNotSilentlyMatched(t *testing.T) {
	// A store written by a pre-scenario build holds `%+v`-dump keys. The
	// documented behavior after the encoding bump: those records stay in the
	// log (append-only, surfaced as legacy in store stats) but are never
	// matched — every cell re-simulates under its v3 key rather than
	// guessing which old dump it corresponds to.
	dir := t.TempDir()
	d1, err := store.OpenDisk[cluster.Result](dir)
	if err != nil {
		t.Fatal(err)
	}
	legacyKey := "census{{false false false false false false true 3 1 false}}|ranks=32|dap=1|arch={A100 7.5e+13 ...}|seed=1"
	poison := cluster.Result{MeanStep: 12345} // would corrupt output if served
	if err := d1.Put(legacyKey, poison); err != nil {
		t.Fatal(err)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := store.OpenDisk[cluster.Result](dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	spec := tinySpec(nil)
	spec.Store = d2
	spec.Metrics = &SweepMetrics{}
	got := sweepCSV(t, spec)
	if n := spec.Metrics.StoreHits.Load(); n != 0 {
		t.Fatalf("legacy keys must never satisfy a lookup, got %d store hits", n)
	}
	if n := spec.Metrics.Simulated.Load(); n != 4 {
		t.Fatalf("every cell must re-simulate past a legacy-only store, simulated %d", n)
	}
	if !bytes.Equal(got, sweepCSV(t, tinySpec(nil))) {
		t.Fatal("legacy store changed emitted bytes")
	}

	// The legacy record survives (append-only log, counted by version
	// predicate) and every new record carries the current version prefix.
	legacy, current := 0, 0
	for _, k := range d2.Keys() {
		if scenario.IsCurrentKey(k) {
			current++
		} else {
			legacy++
		}
	}
	if legacy != 1 || current != 4 {
		t.Fatalf("store must hold 1 legacy + 4 current keys, got %d + %d", legacy, current)
	}
}
