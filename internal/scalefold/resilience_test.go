package scalefold

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/perturb"
	"repro/internal/sweep"
)

func tinyResilienceSpec() ResilienceSpec {
	return ResilienceSpec{
		Platform:    "H100",
		Ranks:       []int{16, 32},
		DAP:         2,
		FailProbs:   []float64{0, 0.5},
		RestartCost: 30,
		Steps:       2,
		Cache:       sweep.NewCache[cluster.Result](),
	}
}

// TestResilienceScenariosKeyByGeneration pins the sweep's identity
// contract: the healthy (fail_prob 0) cells stay v3 scenarios, the failing
// cells mint v4 keys, and the base perturbation template layers under the
// failure axis without leaking its own fail prob.
func TestResilienceScenariosKeyByGeneration(t *testing.T) {
	spec := tinyResilienceSpec()
	spec.Base = &perturb.Spec{StallRate: 0.5, StallMean: 1, FailProb: 0.9, RestartCost: 1}
	scs, err := spec.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 4 {
		t.Fatalf("expanded %d cells, want 4", len(scs))
	}
	for i, sc := range scs {
		fp := sc.Fingerprint()
		if sc.Perturb == nil {
			t.Fatalf("cell %d lost its base perturbation", i)
		}
		if !strings.HasPrefix(fp, "v4:") {
			t.Fatalf("cell %d with base noise must key v4, got %s", i, fp)
		}
		wantFail := spec.FailProbs[i%len(spec.FailProbs)]
		if sc.Perturb.FailProb != wantFail || sc.Perturb.RestartCost != spec.RestartCost {
			t.Fatalf("cell %d: failure axis did not override the base template: %+v", i, sc.Perturb)
		}
	}

	// Without a base template the fail_prob=0 rows are healthy v3 cells.
	scs, err = tinyResilienceSpec().Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range scs {
		fp := sc.Fingerprint()
		healthy := spec.FailProbs[i%len(spec.FailProbs)] == 0
		if healthy && (!strings.HasPrefix(fp, "v3:") || sc.Perturb != nil) {
			t.Fatalf("healthy cell %d must stay v3/unperturbed, got %s %+v", i, fp, sc.Perturb)
		}
		if !healthy && !strings.HasPrefix(fp, "v4:") {
			t.Fatalf("failing cell %d must key v4, got %s", i, fp)
		}
	}
}

// TestResilienceTableDeterministicAndDegrading pins the subcommand's
// output: byte-identical across worker counts (memoized or cold), healthy
// rows at goodput exactly 1 with zero restarts, and failing rows strictly
// below them.
func TestResilienceTableDeterministicAndDegrading(t *testing.T) {
	render := func(workers int) (string, []ResilienceRow) {
		spec := tinyResilienceSpec()
		spec.Workers = workers
		rows, err := spec.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ResilienceTable(spec, rows).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), rows
	}
	serial, rows := render(1)
	parallel, _ := render(4)
	if serial != parallel {
		t.Fatalf("resilience table not byte-identical across workers:\n%s\nvs\n%s", serial, parallel)
	}
	for _, r := range rows {
		if r.FailProb == 0 {
			if r.Res.Goodput != 1 || r.Res.Restarts != 0 {
				t.Fatalf("healthy row degraded: %+v", r.Res)
			}
			continue
		}
		if r.Res.Goodput >= 1 || r.Res.Restarts == 0 {
			t.Fatalf("fail_prob=%v row did not degrade: goodput=%v restarts=%d",
				r.FailProb, r.Res.Goodput, r.Res.Restarts)
		}
		if r.Res.MeanStep <= r.Res.MedianStep/2 {
			t.Fatalf("restart cost vanished from the mean: %+v", r.Res)
		}
	}
	if !strings.HasPrefix(serial, "arch,ranks,dap,fail_prob,restart_cost_s,goodput,restarts") {
		t.Fatalf("table header drifted:\n%s", serial)
	}
}
