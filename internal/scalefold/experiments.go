package scalefold

import (
	"time"

	"repro/internal/curve"
	"repro/internal/mlperf"
	"repro/internal/workload"
)

// Fig9Bar is one stacked bar of Figure 9.
type Fig9Bar struct {
	Label  string
	Break  mlperf.Breakdown
	Shares map[string]float64
	// PaperShares are the fractions read off the paper's Figure 9.
	PaperShares map[string]float64
}

// refMLPerfStep returns the reference step time at the MLPerf scale
// (256 H100, global batch 256 — one sample per rank, no DAP).
func refMLPerfStep() time.Duration {
	return ReferenceConfig("H100", 256).Run().MeanStep
}

// scaleFoldMLPerfStep returns the fully-optimized step time at 2048 H100
// with DAP-8 (the ladder's final configuration).
func scaleFoldMLPerfStep() time.Duration {
	c := Figure7Config("H100", 2048, 8)
	c.Census.TorchCompile = true
	c.DisableGC = true
	return c.Run().MeanStep
}

// Figure9 reproduces the time-to-train breakdown bars.
func Figure9() []Fig9Bar {
	ref := mlperf.TimeToTrain(mlperf.ReferenceRun(refMLPerfStep()))
	sf := scaleFoldMLPerfStep()
	noAsync := mlperf.TimeToTrain(mlperf.ScaleFoldRun(sf, false))
	async := mlperf.TimeToTrain(mlperf.ScaleFoldRun(sf, true))
	return []Fig9Bar{
		{
			Label: "Ref", Break: ref, Shares: ref.Shares(),
			PaperShares: map[string]float64{"train": 0.78, "eval": 0.22},
		},
		{
			Label: "ScaleFold (w/o async eval)", Break: noAsync, Shares: noAsync.Shares(),
			PaperShares: map[string]float64{"train": 0.53, "eval": 0.43, "init": 0.01, "compilation": 0.03},
		},
		{
			Label: "ScaleFold (with async eval)", Break: async, Shares: async.Shares(),
			PaperShares: map[string]float64{"train": 0.74, "train_eval_comm": 0.14, "init": 0.09, "compilation": 0.03},
		},
	}
}

// Figure10 reproduces the time-to-train bars (minutes).
func Figure10() []mlperf.Fig10Row {
	ref := mlperf.TimeToTrain(mlperf.ReferenceRun(refMLPerfStep()))
	sf := scaleFoldMLPerfStep()
	noAsync := mlperf.TimeToTrain(mlperf.ScaleFoldRun(sf, false))
	async := mlperf.TimeToTrain(mlperf.ScaleFoldRun(sf, true))
	return []mlperf.Fig10Row{
		{Label: "Reference (H100x256)", Paper: 48 * time.Minute, Minutes: ref.Total().Minutes(), Break: ref},
		{Label: "ScaleFold (H100x2048, DAP8, NoAsyncEval)", Paper: 11 * time.Minute, Minutes: noAsync.Total().Minutes(), Break: noAsync},
		{Label: "ScaleFold (H100x2080, DAP8)", Paper: 8 * time.Minute, Minutes: async.Total().Minutes(), Break: async},
	}
}

// Figure11 reproduces the pretraining schedule: the avg_lddt_ca curve and
// the end-to-end wall time. Phase 1 runs global batch 128 on 1024 training
// GPUs; phase 2 runs global batch 256 on 2048 training GPUs with the Triton
// MHA kernel disabled (§4.2).
func Figure11() (curve.Schedule, curve.Result) {
	p1 := Figure7Config("H100", 1024, 8)
	p1.Census.TorchCompile = true
	p1.DisableGC = true
	step128 := p1.Run().MedianStep

	p2 := Figure7Config("H100", 2048, 8)
	p2.Census.TorchCompile = true
	p2.DisableGC = true
	p2.Census.FusedMHA = false // "disable Triton mha kernel" for GBS 256
	step256 := p2.Run().MedianStep

	sched := curve.PaperSchedule(step128, step256)
	return sched, sched.Pretrain()
}

// KernelCensus exposes the baseline census for the Table 1 CLI output.
func KernelCensus() *workload.Program {
	return workload.Census(fullModelConfig(), workload.Baseline())
}
