package scalefold

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dataset"
)

// skipIfShort skips figure-scale simulations under -short: the race-checked
// CI job runs `go test -race -short ./...` for concurrency coverage (sweep
// engine, store, service) and would otherwise spend minutes re-deriving
// figure shapes the non-race job already checks.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("figure-scale simulation; skipped in -short mode")
	}
}

// Reproduction tolerance: the simulated substrate is not the authors'
// testbed, so we check shape — orderings, rough factors, crossovers — with
// generous bounds, and record exact values in EXPERIMENTS.md.
func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		return
	}
	if math.Abs(got-want)/want > relTol {
		t.Fatalf("%s: got %.3f, paper %.3f (tolerance %.0f%%)", name, got, want, 100*relTol)
	}
}

func TestFigure7Shape(t *testing.T) {
	skipIfShort(t)
	rows := Figure7()
	byLabel := map[string]float64{}
	for _, r := range rows {
		byLabel[r.Label] = r.Seconds
		if r.Seconds <= 0 {
			t.Fatalf("%s: non-positive step time", r.Label)
		}
	}
	// Who wins: ScaleFold < FastFold < OpenFold on A100.
	if !(byLabel["ScaleFold (A100x256, DAP2)"] < byLabel["FastFold (A100x256, DAP2)"]) {
		t.Fatal("ScaleFold must beat FastFold at DAP-2 on A100")
	}
	if !(byLabel["FastFold (A100x256, DAP2)"] < byLabel["OpenFold (A100x128, NoDAP)"]) {
		t.Fatal("FastFold must beat OpenFold")
	}
	// DAP ladder monotone on H100.
	if !(byLabel["ScaleFold (H100x256, DAP2)"] < byLabel["ScaleFold (H100x128, NoDAP)"]) ||
		!(byLabel["ScaleFold (H100x512, DAP4)"] < byLabel["ScaleFold (H100x256, DAP2)"]) ||
		!(byLabel["ScaleFold (H100x1024, DAP8)"] <= byLabel["ScaleFold (H100x512, DAP4)"]) {
		t.Fatalf("H100 DAP ladder must be monotone: %+v", byLabel)
	}
	// H100 beats A100 at the same DAP.
	if !(byLabel["ScaleFold (H100x256, DAP2)"] < byLabel["ScaleFold (A100x256, DAP2)"]) {
		t.Fatal("H100 must beat A100")
	}
	// Rough magnitudes vs the paper.
	for _, r := range rows {
		within(t, r.Label, r.Seconds, r.Paper, 0.45)
	}
}

func TestFigure7DAPSpeedupsNearPaper(t *testing.T) {
	skipIfShort(t)
	rows := Figure7()
	byLabel := map[string]float64{}
	for _, r := range rows {
		byLabel[r.Label] = r.Seconds
	}
	d1 := byLabel["ScaleFold (H100x128, NoDAP)"]
	// Paper: 1.6x / 2.4x / 2.77x for DAP-2/4/8 over DAP-1.
	within(t, "DAP-2 speedup", d1/byLabel["ScaleFold (H100x256, DAP2)"], 1.6, 0.35)
	within(t, "DAP-4 speedup", d1/byLabel["ScaleFold (H100x512, DAP4)"], 2.4, 0.35)
	within(t, "DAP-8 speedup", d1/byLabel["ScaleFold (H100x1024, DAP8)"], 2.77, 0.35)
}

func TestLadderMonotoneAndFinalSpeedup(t *testing.T) {
	skipIfShort(t)
	rungs := Ladder()
	if len(rungs) != 12 {
		t.Fatalf("12 rungs expected, got %d", len(rungs))
	}
	final := rungs[len(rungs)-1]
	// Paper: ~6.2x step-time speedup on H100 vs the A100 reference ladder
	// end point of 10.39x (which includes the A100→H100 hop).
	within(t, "final ladder speedup", final.Speedup, 10.39, 0.25)
	// Each rung must not be slower than its predecessor by more than the
	// documented DAP-8-without-graph dip.
	for i := 1; i < len(rungs); i++ {
		if rungs[i].Label == "+DAP-8, no grad ckpt" {
			continue // the paper itself reports this config is graph-starved
		}
		if rungs[i].Speedup < rungs[i-1].Speedup*0.95 {
			t.Fatalf("rung %q regressed: %.2fx after %.2fx", rungs[i].Label, rungs[i].Speedup, rungs[i-1].Speedup)
		}
	}
}

func TestLadderKeyRungs(t *testing.T) {
	skipIfShort(t)
	rungs := Ladder()
	get := func(label string) Rung {
		for _, r := range rungs {
			if r.Label == label {
				return r
			}
		}
		t.Fatalf("missing rung %q", label)
		return Rung{}
	}
	h100 := get("H100")
	within(t, "H100 hop", h100.Speedup, 1.66, 0.2)
	bf16 := get("+BF16")
	prev := get("+Non-blocking dataloader")
	within(t, "bf16 rung factor", bf16.Speedup/prev.Speedup, 1.24, 0.15)
	graph := get("+CUDA Graph")
	dap := get("+DAP-8, no grad ckpt")
	if graph.Speedup <= dap.Speedup {
		t.Fatal("CUDA graph must rescue the DAP-8 configuration")
	}
}

func TestFigure3SharesShape(t *testing.T) {
	skipIfShort(t)
	shares := map[int]map[string]float64{}
	for _, d := range []int{2, 4, 8} {
		m := map[string]float64{}
		var sum float64
		for _, b := range Figure3(d) {
			m[b.Name] = b.Share
			sum += b.Share
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("DAP-%d shares sum to %v", d, sum)
		}
		shares[d] = m
	}
	// Imbalance share grows with DAP degree (paper: 6% -> 43% -> 54%).
	if !(shares[2]["Imbalance communication"] < shares[8]["Imbalance communication"]) {
		t.Fatalf("imbalance share must grow with DAP: %+v", shares)
	}
	// CPU overhead share shrinks (paper: 65% -> 30% -> 18%).
	if !(shares[8]["CPU overhead"] < shares[2]["CPU overhead"]) {
		t.Fatalf("CPU overhead share must shrink with DAP: %+v", shares)
	}
	// At DAP-8, imbalance is the dominant barrier.
	max := ""
	best := -1.0
	for k, v := range shares[8] {
		if v > best {
			best, max = v, k
		}
	}
	if max != "Imbalance communication" {
		t.Fatalf("at DAP-8 imbalance must dominate, got %q (%v)", max, shares[8])
	}
}

func TestBaselineDAPSaturates(t *testing.T) {
	skipIfShort(t)
	s := BaselineDAPSpeedups()
	// Paper §3.1: 1.42x, 1.57x, and no gain at DAP-8 over DAP-4.
	if s[2] < 1.1 || s[2] > 2.1 {
		t.Fatalf("baseline DAP-2 speedup %v, paper 1.42x", s[2])
	}
	if s[4] < s[2]*0.9 {
		t.Fatalf("baseline DAP-4 (%v) should not regress vs DAP-2 (%v)", s[4], s[2])
	}
	// Saturation: DAP-8 gives little or nothing over DAP-4.
	if s[8] > s[4]*1.35 {
		t.Fatalf("baseline DAP-8 (%v) must saturate near DAP-4 (%v)", s[8], s[4])
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	m := map[string]Table1Row{}
	var sum float64
	for _, r := range rows {
		m[r.Kind] = r
		sum += r.Share
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("shares sum to %v", sum)
	}
	// Memory-bounded dominates runtime (paper 65%).
	if m["Memory-bounded"].Share < 0.5 || m["Memory-bounded"].Share > 0.8 {
		t.Fatalf("memory-bounded share %v, paper 65%%", m["Memory-bounded"].Share)
	}
	// Math-bounded around a quarter (paper 24%).
	if m["Math-bounded"].Share < 0.1 || m["Math-bounded"].Share > 0.4 {
		t.Fatalf("math share %v, paper 24%%", m["Math-bounded"].Share)
	}
	// CPU overhead is the smallest-but-significant runtime slice (9.1%).
	if m["CPU Overhead"].Share < 0.02 || m["CPU Overhead"].Share > 0.2 {
		t.Fatalf("cpu share %v, paper 9.1%%", m["CPU Overhead"].Share)
	}
	// Call counts near the paper.
	within(t, "math calls", float64(m["Math-bounded"].Calls), 18147, 0.15)
	within(t, "mem calls", float64(m["Memory-bounded"].Calls), 97749, 0.15)
	within(t, "memop calls", float64(m["Memory-operation"].Calls), 34991, 0.15)
}

func TestFigure9Shape(t *testing.T) {
	skipIfShort(t)
	bars := Figure9()
	if len(bars) != 3 {
		t.Fatalf("3 bars expected")
	}
	ref, noAsync, async := bars[0], bars[1], bars[2]
	// Eval share grows from Ref to optimized-without-async (22% -> 43%).
	if noAsync.Shares["eval"] <= ref.Shares["eval"] {
		t.Fatalf("eval share must grow when steps shrink: %v -> %v", ref.Shares["eval"], noAsync.Shares["eval"])
	}
	// Async eval nearly eliminates the eval share but pays comm.
	if async.Shares["eval"] > 0.1 {
		t.Fatalf("async eval share %v should be near zero", async.Shares["eval"])
	}
	if async.Shares["train_eval_comm"] <= 0 {
		t.Fatal("async eval must show train/eval communication")
	}
}

func TestFigure10Shape(t *testing.T) {
	skipIfShort(t)
	rows := Figure10()
	if !(rows[2].Minutes < rows[1].Minutes && rows[1].Minutes < rows[0].Minutes) {
		t.Fatalf("TTT ordering wrong: %+v", rows)
	}
	// Paper: ~6x total speedup for the async config vs reference.
	speedup := rows[0].Minutes / rows[2].Minutes
	if speedup < 4 || speedup > 10 {
		t.Fatalf("TTT speedup %v, paper ~6x", speedup)
	}
	within(t, "reference TTT", rows[0].Minutes, 48, 0.25)
	within(t, "ScaleFold TTT", rows[2].Minutes, 8, 0.45)
}

func TestFigure11Shape(t *testing.T) {
	skipIfShort(t)
	sched, res := Figure11()
	if !res.MetInitial {
		t.Fatal("0.8 must be crossed before step 5000")
	}
	if res.StepsTotal < 50000 || res.StepsTotal > 60000 {
		t.Fatalf("steps to 0.9 = %d, paper 50000-60000", res.StepsTotal)
	}
	if res.WallTime.Hours() >= 10 {
		t.Fatalf("pretraining %v, paper < 10 h", res.WallTime)
	}
	if sched.StepTimeGBS256 <= sched.StepTimeGBS128 {
		t.Fatal("GBS-256 phase (Triton MHA disabled) must be slower per step")
	}
}

func TestPrepTimeCurve(t *testing.T) {
	c := PrepTimeCurve(2000)
	if len(c) != 2000 {
		t.Fatal("length")
	}
	for i := 1; i < len(c); i++ {
		if c[i] < c[i-1] {
			t.Fatal("curve must be sorted")
		}
	}
	if c[len(c)-1]/c[0] < 100 {
		t.Fatal("curve must span >= 2 decades (Figure 4)")
	}
	// The Quantile out-of-range clamp must not move any in-range quantile:
	// the Figure 4 summary (dataset.Quantile over the curve) stays
	// byte-identical to direct indexing, the pre-fix in-range behavior.
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1} {
		want := fmt.Sprintf("%.6f", c[int(q*float64(len(c)-1))])
		got := fmt.Sprintf("%.6f", dataset.Quantile(c, q))
		if got != want {
			t.Fatalf("q=%g: dataset.Quantile prints %s, direct index prints %s", q, got, want)
		}
	}
}

func TestStepConfigDeterministic(t *testing.T) {
	a := Figure7Config("H100", 128, 1).StepSeconds()
	b := Figure7Config("H100", 128, 1).StepSeconds()
	if a != b {
		t.Fatal("config runs must be reproducible")
	}
}
