// Package scalefold is the public facade of the reproduction: it encodes the
// paper's experiment configurations — which optimizations are active in each
// Figure 7 row, each Figure 8 ladder rung, and each Figure 3 ablation column
// — and runs them on the workload census + cluster simulator. Downstream
// users compose StepConfig values; the cmd/scalefold CLI and bench_test.go
// call the experiment runners here.
//
// Every experiment runner is a thin grid declaration over the sweep engine
// (package sweep): configurations are expanded, fingerprinted, executed on a
// bounded worker pool and memoized process-wide, so a cell shared by several
// figures — e.g. the A100 reference step — simulates exactly once.
package scalefold

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analytic"
	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// StepConfig is one training configuration to cost: a canonical
// scenario.Scenario plus a display name. Identity — validation, lowering to
// cluster.Options, the versioned fingerprint that keys the memo and the
// persistent store — lives entirely on the embedded Scenario; this wrapper
// only adds the figure-label conveniences the experiment runners want.
type StepConfig struct {
	Name string
	scenario.Scenario
}

// Ablations lists the recognized ablation values ("none" plus the Figure 3
// barrier switches); it aliases the scenario layer's canonical list.
var Ablations = scenario.Ablations

func fullModelConfig() model.Config { return model.FullConfig() }

// clusterOptions lowers the step configuration to simulator options. The
// scenario is validated by every user-input path (CLI flags, sweep grids,
// job submission) before it gets here, so a failure is a programming error.
func (c StepConfig) clusterOptions() cluster.Options {
	o, err := c.Options()
	if err != nil {
		panic("scalefold: unvalidated scenario reached the simulator: " + err.Error())
	}
	return o
}

// stepCache memoizes simulation results process-wide by scenario
// fingerprint: the reference cell shared by Figures 7, 8, 9 and 10 runs
// once, and repeated sweep cells are free. It is the volatile L1 of the
// memo; AttachStore adds a persistent L2 underneath it.
var stepCache = sweep.NewCache[cluster.Result]()

// The process-wide persistent layer under stepCache (nil = memory only).
var (
	storeMu      sync.RWMutex
	procStore    store.Store[cluster.Result]
	procStoreErr func(error)
)

// simCount counts actual simulator executions (cold cells): the quantity
// memoization and the persistent store exist to minimize. Simulations
// reports it; the sweep service exposes it as a metric.
var simCount atomic.Int64

// Simulations returns how many times the cluster simulator has actually run
// in this process — cache and store hits excluded.
func Simulations() int64 { return simCount.Load() }

// AttachStore puts the process-wide memo on a persistent store: every
// simulation triggered by StepConfig.Run, the figure runners or SweepSpec.Run
// (unless the spec carries its own Store) first consults s and writes its
// result through afterwards. The current in-memory memo is drained into s —
// via sweep.Cache.Snapshot — so results computed before attachment persist
// too; the first drain error is returned (the attachment stands regardless).
// onErr, when non-nil, receives later write-through errors; lookups and
// simulation proceed when the store misbehaves, so a full disk degrades to
// memory-only operation rather than failing sweeps. Pass nil to detach.
func AttachStore(s store.Store[cluster.Result], onErr func(error)) error {
	storeMu.Lock()
	procStore, procStoreErr = s, onErr
	storeMu.Unlock()
	if s == nil {
		return nil
	}
	var firstErr error
	for _, e := range stepCache.Snapshot() {
		if err := s.Put(e.Key, e.Value); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// processStore returns the currently attached store, if any.
func processStore() (store.Store[cluster.Result], func(error)) {
	storeMu.RLock()
	defer storeMu.RUnlock()
	return procStore, procStoreErr
}

// censusCache memoizes kernel censuses by their options. A census is a pure
// deterministic derivation of the (fixed) model config, read-only once
// built, so sharing one *workload.Program across simulations is safe and
// saves the census rebuild on every cell that varies only seed or ablation.
var censusCache = sweep.NewCache[*workload.Program]()

func censusFor(cen workload.Options) *workload.Program {
	prog, _ := censusCache.Do(scenario.CanonicalCensus(cen), func() *workload.Program {
		return workload.Census(fullModelConfig(), cen)
	})
	return prog
}

// ResetStepCache drops every memoized simulation result. Benchmarks call it
// between iterations so repeated figure runs measure the simulator, not a
// cache lookup, and so seed-varying loops don't grow the cache without
// bound. Censuses stay cached — they are immutable derivations of the model
// config, not per-scenario work. Not safe concurrently with running sweeps.
func ResetStepCache() { stepCache = sweep.NewCache[cluster.Result]() }

// simulate runs the configuration cold, bypassing the memoization cache and
// the persistent store.
func (c StepConfig) simulate() cluster.Result {
	simCount.Add(1)
	return cluster.Simulate(censusFor(c.Census), c.Ranks, c.DAP, c.clusterOptions())
}

// simulateVia resolves the configuration against a persistent store:
// store hit, else simulate and write through. m, when non-nil, counts how
// the cell was satisfied. This is the compute function under every memo
// lookup — the in-memory cache stays the singleflight layer on top.
//
// A stored record with Goodput 0 predates the perturbation layer's Result
// metrics (every simulated Result has Goodput > 0 — it is exactly 1 on a
// healthy run): its key is still valid (the v3 encoding didn't move), but
// serving it would print zero goodput/percentiles where a fresh simulation
// reports real ones. Such records are transparently upgraded — re-simulated
// (bit-identical legacy fields, by the determinism contract) and
// overwritten with the full metrics.
func (c StepConfig) simulateVia(st store.Store[cluster.Result], onErr func(error), m *SweepMetrics) cluster.Result {
	r, _ := c.simulateViaSrc(st, onErr, m)
	return r
}

// simulateViaSrc is simulateVia plus the resolution source — "store-hit" when
// the persistent store satisfied the cell, "simulated" when the simulator ran,
// "analytic" when the closed-form estimator served it — which the sweep
// layer's cell-lifecycle tracing records as span metadata.
func (c StepConfig) simulateViaSrc(st store.Store[cluster.Result], onErr func(error), m *SweepMetrics) (cluster.Result, string) {
	return c.simulateViaSrcObs(st, onErr, m, nil)
}

// simulateViaSrcObs is simulateViaSrc plus the estimate-latency observer the
// sweep service's histogram hangs off. Non-exact modes route here: analytic
// cells go to the estimator, and an auto cell that reached this layer
// unresolved (direct StepConfig.Run users — SweepSpec.Run resolves at
// lowering) is resolved the same deterministic way first.
func (c StepConfig) simulateViaSrcObs(st store.Store[cluster.Result], onErr func(error), m *SweepMetrics, onEstimate func(time.Duration)) (cluster.Result, string) {
	if c.Mode == scenario.ModeAuto {
		var escalated bool
		if c, escalated = c.ResolveAuto(); escalated && m != nil {
			m.Escalated.Add(1)
		}
	}
	if c.Mode == scenario.ModeAnalytic {
		return c.estimateViaSrc(st, onErr, m, onEstimate)
	}
	if st == nil {
		if m != nil {
			m.Simulated.Add(1)
		}
		return c.simulate(), "simulated"
	}
	key := c.Fingerprint()
	if r, ok := st.Get(key); ok && r.Goodput > 0 {
		if m != nil {
			m.StoreHits.Add(1)
		}
		return r, "store-hit"
	}
	r := c.simulate()
	if m != nil {
		m.Simulated.Add(1)
	}
	if err := st.Put(key, r); err != nil && onErr != nil {
		onErr(err)
	}
	return r, "simulated"
}

// estimateViaSrc resolves an analytic-mode cell: store hit under its v5 key,
// else the closed-form estimate (package analytic), written through like any
// simulated result — so estimates persist, memoize and stream exactly like
// exact cells, just under their own key generation. The estimator never bumps
// the Simulations counter: that counts exact simulator runs, the quantity the
// fast path exists to avoid.
func (c StepConfig) estimateViaSrc(st store.Store[cluster.Result], onErr func(error), m *SweepMetrics, onEstimate func(time.Duration)) (cluster.Result, string) {
	key := c.Fingerprint()
	if st != nil {
		if r, ok := st.Get(key); ok && r.Goodput > 0 {
			if m != nil {
				m.StoreHits.Add(1)
			}
			return r, "store-hit"
		}
	}
	t0 := time.Now()
	r, _, err := analytic.Estimate(c.Scenario)
	if err != nil {
		panic("scalefold: unvalidated scenario reached the estimator: " + err.Error())
	}
	if onEstimate != nil {
		onEstimate(time.Since(t0))
	}
	if m != nil {
		m.Analytic.Add(1)
	}
	if st != nil {
		if err := st.Put(key, r); err != nil && onErr != nil {
			onErr(err)
		}
	}
	return r, "analytic"
}

// RunVia resolves the configuration against an explicit store — store hit,
// else simulate and write through — without touching the process-wide memo
// cache. Fabric workers execute claimed cells with it: the shared result
// store IS their memo, so a cell finished by any worker is a hit for every
// worker, and the Simulations counter reflects actual simulator runs only.
func (c StepConfig) RunVia(st store.Store[cluster.Result], onErr func(error), m *SweepMetrics) cluster.Result {
	return c.simulateVia(st, onErr, m)
}

// Run simulates the configuration and returns the cluster result, memoized
// by Fingerprint and backed by the attached persistent store, if any.
func (c StepConfig) Run() cluster.Result {
	res, _ := stepCache.Do(c.Fingerprint(), func() cluster.Result {
		st, onErr := processStore()
		return c.simulateVia(st, onErr, nil)
	})
	return res
}

// StepSeconds simulates and returns the median step time in seconds — the
// quantity a step-time microbenchmark reports (rare data stalls excluded).
func (c StepConfig) StepSeconds() float64 { return c.Run().MedianStep.Seconds() }

// runConfigs executes step configurations through the sweep engine on
// `workers` goroutines (<= 0: GOMAXPROCS), sharing the process-wide
// memoization cache. Results come back in input order, so downstream output
// is byte-identical for every worker count.
func runConfigs(workers int, cfgs []StepConfig) []cluster.Result {
	cells := make([]sweep.Cell[StepConfig], len(cfgs))
	for i, c := range cfgs {
		cells[i] = sweep.Cell[StepConfig]{Key: c.Fingerprint(), Label: c.Name, Config: c}
	}
	eng := sweep.Engine[StepConfig, cluster.Result]{Workers: workers, Cache: stepCache}
	return eng.Run(cells, func(c StepConfig) cluster.Result {
		st, onErr := processStore()
		return c.simulateVia(st, onErr, nil)
	})
}

// platformLabel returns the GPU architecture name of a platform for figure
// labels ("H100" for "h100-eos"), falling back to the raw reference.
func platformLabel(platform string) string {
	if p, err := scenario.PlatformByName(platform); err == nil {
		return p.Arch.Name
	}
	return platform
}

// ReferenceConfig is the unoptimized OpenFold baseline on `ranks` GPUs of
// the named platform ("A100", "h100-eos", ... — see the scenario registry).
func ReferenceConfig(platform string, ranks int) StepConfig {
	return StepConfig{
		Name: "OpenFold reference (" + platformLabel(platform) + ")",
		Scenario: scenario.Scenario{
			Platform: platform, Ranks: ranks, DAP: 1,
			Census: workload.Baseline(),
			Seed:   1,
		},
	}
}

// Figure7Config returns the ScaleFold configuration of a Figure 7 bar: the
// fused-kernel + batched-GEMM + bf16 + non-blocking-dataloader training at
// DAP-n. Per the Figure 8 ordering, torch.compile and GC-disable came later
// than the Figure 7 step-time measurements, and CUDA Graph pays off only for
// DAP >= 2 ("CudaGraph is not beneficial for DAP-1", §4.1), so those are
// excluded/conditional here.
func Figure7Config(platform string, ranks, dapN int) StepConfig {
	cen := workload.Options{
		FusedMHA: true, FusedLN: true, FusedAdamSWA: true,
		BatchedGEMM: true, BF16: true, BucketedClip: true,
		GradCheckpoint: dapN <= 1, // DAP frees memory; ckpt off for DAP>=2
		Recycles:       3,
		DAP:            dapN,
	}
	return StepConfig{
		Name: "ScaleFold (" + platformLabel(platform) + ")",
		Scenario: scenario.Scenario{
			Platform: platform, Ranks: ranks, DAP: dapN,
			Census:      cen,
			CUDAGraph:   dapN > 1,
			NonBlocking: true,
			Seed:        1,
		},
	}
}

// FastFoldConfig approximates FastFold: baseline kernels plus DAP (its DAP
// contribution) with checkpointing still on and the stock dataloader.
func FastFoldConfig(platform string, ranks, dapN int) StepConfig {
	cen := workload.Baseline()
	cen.DAP = dapN
	cen.FusedMHA = true // FastFold ships its own fused attention kernels
	cen.FusedLN = true
	cen.GradCheckpoint = dapN <= 1
	return StepConfig{
		Name: "FastFold (" + platformLabel(platform) + ")",
		Scenario: scenario.Scenario{
			Platform: platform, Ranks: ranks, DAP: dapN,
			Census: cen,
			Seed:   1,
		},
	}
}

// Fig7Row is one bar of Figure 7.
type Fig7Row struct {
	Label   string
	Paper   float64 // step seconds reported in the paper
	Config  StepConfig
	Seconds float64 // measured by the simulator (filled by Figure7)
}

// figure7Rows declares the Figure 7 comparison grid: one cell per
// (system, arch, ranks, DAP) bar of the paper's plot.
func figure7Rows() []Fig7Row {
	return []Fig7Row{
		{Label: "OpenFold (A100x128, NoDAP)", Paper: 6.19, Config: ReferenceConfig("A100", 128)},
		{Label: "FastFold (A100x256, DAP2)", Paper: 2.49, Config: FastFoldConfig("A100", 256, 2)},
		{Label: "ScaleFold (A100x256, DAP2)", Paper: 1.88, Config: Figure7Config("A100", 256, 2)},
		{Label: "ScaleFold (H100x128, NoDAP)", Paper: 1.80, Config: Figure7Config("H100", 128, 1)},
		{Label: "ScaleFold (H100x256, DAP2)", Paper: 1.12, Config: Figure7Config("H100", 256, 2)},
		{Label: "ScaleFold (H100x512, DAP4)", Paper: 0.75, Config: Figure7Config("H100", 512, 4)},
		{Label: "ScaleFold (H100x1024, DAP8)", Paper: 0.65, Config: Figure7Config("H100", 1024, 8)},
		{Label: "ScaleFold (A100x1024, DAP8)", Paper: 1.21, Config: Figure7Config("A100", 1024, 8)},
	}
}

// Figure7 reproduces the step-time comparison of Figure 7, running the
// declared cells through the parallel sweep engine.
func Figure7() []Fig7Row {
	rows := figure7Rows()
	cfgs := make([]StepConfig, len(rows))
	for i, r := range rows {
		cfgs[i] = r.Config
	}
	res := runConfigs(0, cfgs)
	for i := range rows {
		rows[i].Seconds = res[i].MedianStep.Seconds()
	}
	return rows
}

// Rung is one bar of the Figure 8 optimization ladder.
type Rung struct {
	Label   string
	Paper   float64 // cumulative speedup the paper reports
	Config  StepConfig
	Seconds float64
	Speedup float64 // measured cumulative speedup vs rung 0
}

// ladderRungs declares Figure 8's ladder: each entry applies its delta on
// top of every previous rung, starting from the H100 reference (rung 0, the
// only A100 cell, has no delta — it IS the baseline the speedups divide by).
var ladderRungs = []struct {
	Label string
	Paper float64
	Apply func(*StepConfig)
}{
	{"Reference (A100)", 1.00, nil},
	{"H100", 1.66, func(c *StepConfig) {}},
	{"+Batched GEMM", 1.71, func(c *StepConfig) { c.Census.BatchedGEMM = true }},
	{"+Non-blocking dataloader", 1.78, func(c *StepConfig) { c.NonBlocking = true }},
	{"+BF16", 2.22, func(c *StepConfig) { c.Census.BF16 = true }},
	{"+Triton MHA", 2.49, func(c *StepConfig) { c.Census.FusedMHA = true }},
	{"+Triton LayerNorm", 2.92, func(c *StepConfig) { c.Census.FusedLN = true }},
	{"+Fused Adam+SWA", 3.29, func(c *StepConfig) {
		c.Census.FusedAdamSWA, c.Census.BucketedClip = true, true
	}},
	{"+DAP-8, no grad ckpt", 5.90, func(c *StepConfig) {
		c.Census.DAP, c.DAP, c.Ranks = 8, 8, 1024
		c.Census.GradCheckpoint = false
	}},
	{"+CUDA Graph", 7.84, func(c *StepConfig) { c.CUDAGraph = true }},
	{"+Disable GC", 8.91, func(c *StepConfig) { c.DisableGC = true }},
	{"+torch.compile", 10.39, func(c *StepConfig) { c.Census.TorchCompile = true }},
}

// Ladder reproduces Figure 8: optimizations applied cumulatively in the
// paper's order, measured as speedup over the A100 reference. The rung
// configurations come from the ladderRungs declaration; all rungs simulate
// concurrently on the sweep engine.
func Ladder() []Rung {
	rungs := make([]Rung, len(ladderRungs))
	cfgs := make([]StepConfig, len(ladderRungs))
	cum := ReferenceConfig("H100", 128)
	for i, r := range ladderRungs {
		c := ReferenceConfig("A100", 128)
		if r.Apply != nil {
			r.Apply(&cum)
			c = cum
			c.Name = r.Label
		}
		rungs[i] = Rung{Label: r.Label, Paper: r.Paper, Config: c}
		cfgs[i] = c
	}
	res := runConfigs(0, cfgs)
	base := res[0].MedianStep.Seconds()
	for i := range rungs {
		rungs[i].Seconds = res[i].MedianStep.Seconds()
		rungs[i].Speedup = base / rungs[i].Seconds
	}
	return rungs
}

// Barrier is one Figure 3 stacked-bar component.
type Barrier struct {
	Name  string
	Share float64 // fraction of the actual-vs-optimal gap (column sums to 1)
	Gap   time.Duration
}

// figure3Config returns the §3.1 measurement configuration at DAP-n: DAP
// applied to the otherwise-unoptimized training — blocking loader, no CUDA
// graph, checkpointing freed by DAP's memory savings. The paper's profiled
// measurement runs read far ahead in the dataset, hence the deep prefetch;
// the steady-state stall behaviour belongs to the TTT experiments.
func figure3Config(dapN int) StepConfig {
	cen := workload.Baseline()
	cen.DAP = dapN
	cen.GradCheckpoint = false // §3.1 measures DAP runs with ckpt freed
	return StepConfig{
		Name: fmt.Sprintf("Figure 3 (DAP-%d)", dapN),
		Scenario: scenario.Scenario{
			Platform: "A100", Ranks: 128 * dapN, DAP: dapN,
			Census:   cen,
			Seed:     3,
			Prefetch: 128,
		},
	}
}

// figure3Bars decomposes a simulated DAP-n measurement into the five
// barrier components: the gap between the measured step and the per-factor
// idealized step, computed deterministically from the simulator's accounting
// (the paper subtracts per-factor idealized times; our simulator exposes the
// same quantities directly).
func figure3Bars(dapN int, res cluster.Result) []Barrier {
	c := figure3Config(dapN)
	prog := censusFor(c.Census)

	// Poor kernel scalability: the extra time DAP-shrunk kernels take
	// beyond perfect 1/n scaling of their DAP-1 durations, caused by
	// falling down the bandwidth-efficiency curve.
	cen1 := c.Census
	cen1.DAP = 1
	prog1 := censusFor(cen1)
	platform, err := scenario.PlatformByName(c.Platform)
	if err != nil {
		panic("scalefold: unvalidated scenario reached the simulator: " + err.Error())
	}
	arch := platform.Arch
	var kernelGap time.Duration
	for i, g := range prog.Groups {
		if g.Serial {
			continue
		}
		g1 := prog1.Groups[i]
		actual := time.Duration(g.Calls) * arch.KernelDuration(g.PerCallFlops(), g.PerCallBytes(), false)
		ideal := time.Duration(g1.Calls) * arch.KernelDuration(g1.PerCallFlops(), g1.PerCallBytes(), false) / time.Duration(dapN)
		if actual > ideal {
			kernelGap += actual - ideal
		}
	}

	serialGap := res.Break.SerialPart - res.Break.SerialPart/time.Duration(dapN)

	out := []Barrier{
		{Name: "CPU overhead", Gap: res.Break.CPUExposed},
		{Name: "Imbalance communication", Gap: res.Break.CommWaitMedian + res.Break.DataWaitMedian},
		{Name: "Serial modules", Gap: serialGap},
		{Name: "Poor kernel scalability", Gap: kernelGap},
		{Name: "Communication workload", Gap: res.Break.CommXfer},
	}
	var totalGap time.Duration
	for _, b := range out {
		totalGap += b.Gap
	}
	if totalGap > 0 {
		for i := range out {
			out[i].Share = float64(out[i].Gap) / float64(totalGap)
		}
	}
	return out
}

// Figure3DAPs are the DAP degrees the paper's barrier ablation plots.
var Figure3DAPs = []int{2, 4, 8}

// Figure3 reproduces one barrier-breakdown column.
func Figure3(dapN int) []Barrier {
	return figure3Bars(dapN, figure3Config(dapN).Run())
}

// Figure3All runs the whole barrier ablation as one grid sweep over the DAP
// axis and returns the columns keyed by DAP degree.
func Figure3All() map[int][]Barrier {
	cfgs := make([]StepConfig, len(Figure3DAPs))
	for i, d := range Figure3DAPs {
		cfgs[i] = figure3Config(d)
	}
	res := runConfigs(0, cfgs)
	out := make(map[int][]Barrier, len(Figure3DAPs))
	for i, d := range Figure3DAPs {
		out[d] = figure3Bars(d, res[i])
	}
	return out
}

// BaselineDAPSpeedups reproduces the §3.1 observation that naively applying
// DAP to the unoptimized training yields only 1.42×/1.57×/≈1.57× at
// DAP-2/4/8. Returned values are speedups over the DAP-1 baseline.
func BaselineDAPSpeedups() map[int]float64 {
	cfgs := []StepConfig{ReferenceConfig("A100", 128)}
	for _, d := range []int{2, 4, 8} {
		cen := workload.Baseline()
		cen.DAP = d
		cfgs = append(cfgs, StepConfig{Name: "baseline+DAP", Scenario: scenario.Scenario{
			Platform: "A100", Ranks: 128 * d, DAP: d, Census: cen, Seed: 1,
		}})
	}
	res := runConfigs(0, cfgs)
	base := res[0].MedianStep.Seconds()
	out := map[int]float64{}
	for i, d := range []int{2, 4, 8} {
		out[d] = base / res[i+1].MedianStep.Seconds()
	}
	return out
}

// Table1Shares returns the runtime shares and call counts of Table 1,
// measured on the simulated baseline: CPU overhead plus the three kernel
// categories.
type Table1Row struct {
	Kind  string
	Share float64
	Calls int
}

// Table1 measures the kernel-category breakdown on the A100 baseline.
func Table1() []Table1Row {
	prog := workload.Census(model.FullConfig(), workload.Baseline())
	arch := gpu.A100()
	tot := prog.Totals()
	var times [3]time.Duration
	for i, cat := range []workload.Category{workload.CatMath, workload.CatMem, workload.CatMemOp} {
		for _, g := range prog.Groups {
			if g.Cat == cat {
				times[i] += time.Duration(g.Calls) * arch.KernelDuration(g.PerCallFlops(), g.PerCallBytes(), false)
			}
		}
	}
	// CPU overhead: exposed launch gaps plus the host-side work the
	// profiler attributes to every launch (driver call, Python dispatch),
	// which Table 1 counts as CPU time even when the GPU stays busy.
	const hostPerLaunch = 2 * time.Microsecond
	cpu := time.Duration(prog.TotalCalls()) * hostPerLaunch
	for _, g := range prog.Groups {
		per := arch.KernelDuration(g.PerCallFlops(), g.PerCallBytes(), false)
		if gap := arch.LaunchOverhead - per; gap > 0 {
			cpu += time.Duration(g.Calls) * gap
		}
	}
	total := cpu + times[0] + times[1] + times[2]
	rows := []Table1Row{
		{Kind: "CPU Overhead", Share: float64(cpu) / float64(total)},
		{Kind: "Math-bounded", Share: float64(times[0]) / float64(total), Calls: tot[workload.CatMath].Calls},
		{Kind: "Memory-bounded", Share: float64(times[1]) / float64(total), Calls: tot[workload.CatMem].Calls},
		{Kind: "Memory-operation", Share: float64(times[2]) / float64(total), Calls: tot[workload.CatMemOp].Calls},
	}
	return rows
}

// PrepTimeCurve returns the sorted Figure 4 curve (n batches, seconds).
func PrepTimeCurve(n int) []float64 {
	gen := dataset.NewGenerator(11)
	return dataset.SortedPrepTimes(gen, dataset.DefaultPrepTimeModel(), n, 7)
}

// EosTopology re-exports the cluster topology for CLI display.
func EosTopology() comm.Topology { return comm.Eos() }
