// Package scalefold is the public facade of the reproduction: it encodes the
// paper's experiment configurations — which optimizations are active in each
// Figure 7 row, each Figure 8 ladder rung, and each Figure 3 ablation column
// — and runs them on the workload census + cluster simulator. Downstream
// users compose StepConfig values; the cmd/scalefold CLI and bench_test.go
// call the experiment runners here.
package scalefold

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/workload"
)

// StepConfig describes one training configuration to cost.
type StepConfig struct {
	Name  string
	Arch  gpu.Arch
	Ranks int
	DAP   int

	Census workload.Options

	CUDAGraph   bool
	NonBlocking bool
	DisableGC   bool

	Seed  int64
	Steps int
}

func fullModelConfig() model.Config { return model.FullConfig() }

// Run simulates the configuration and returns the cluster result.
func (c StepConfig) Run() cluster.Result {
	prog := workload.Census(fullModelConfig(), c.Census)
	o := cluster.DefaultOptions(c.Seed)
	o.Arch = c.Arch
	o.CUDAGraph = c.CUDAGraph
	o.NonBlockingPipeline = c.NonBlocking
	if c.DisableGC {
		o.CPU.GCEnabled = false
	}
	if c.Steps > 0 {
		o.Steps = c.Steps
	}
	return cluster.Simulate(prog, c.Ranks, c.DAP, o)
}

// StepSeconds simulates and returns the median step time in seconds — the
// quantity a step-time microbenchmark reports (rare data stalls excluded).
func (c StepConfig) StepSeconds() float64 { return c.Run().MedianStep.Seconds() }

// ReferenceConfig is the unoptimized OpenFold baseline on `ranks` GPUs.
func ReferenceConfig(arch gpu.Arch, ranks int) StepConfig {
	return StepConfig{
		Name: "OpenFold reference (" + arch.Name + ")",
		Arch: arch, Ranks: ranks, DAP: 1,
		Census: workload.Baseline(),
		Seed:   1,
	}
}

// Figure7Config returns the ScaleFold configuration of a Figure 7 bar: the
// fused-kernel + batched-GEMM + bf16 + non-blocking-dataloader training at
// DAP-n. Per the Figure 8 ordering, torch.compile and GC-disable came later
// than the Figure 7 step-time measurements, and CUDA Graph pays off only for
// DAP >= 2 ("CudaGraph is not beneficial for DAP-1", §4.1), so those are
// excluded/conditional here.
func Figure7Config(arch gpu.Arch, ranks, dapN int) StepConfig {
	cen := workload.Options{
		FusedMHA: true, FusedLN: true, FusedAdamSWA: true,
		BatchedGEMM: true, BF16: true, BucketedClip: true,
		GradCheckpoint: dapN <= 1, // DAP frees memory; ckpt off for DAP>=2
		Recycles:       3,
		DAP:            dapN,
	}
	return StepConfig{
		Name: "ScaleFold (" + arch.Name + ")",
		Arch: arch, Ranks: ranks, DAP: dapN,
		Census:      cen,
		CUDAGraph:   dapN > 1,
		NonBlocking: true,
		Seed:        1,
	}
}

// FastFoldConfig approximates FastFold: baseline kernels plus DAP (its DAP
// contribution) with checkpointing still on and the stock dataloader.
func FastFoldConfig(arch gpu.Arch, ranks, dapN int) StepConfig {
	cen := workload.Baseline()
	cen.DAP = dapN
	cen.FusedMHA = true // FastFold ships its own fused attention kernels
	cen.FusedLN = true
	cen.GradCheckpoint = dapN <= 1
	return StepConfig{
		Name: "FastFold (" + arch.Name + ")",
		Arch: arch, Ranks: ranks, DAP: dapN,
		Census: cen,
		Seed:   1,
	}
}

// Fig7Row is one bar of Figure 7.
type Fig7Row struct {
	Label   string
	Paper   float64 // step seconds reported in the paper
	Config  StepConfig
	Seconds float64 // measured by the simulator (filled by Figure7)
}

// Figure7 reproduces the step-time comparison of Figure 7.
func Figure7() []Fig7Row {
	rows := []Fig7Row{
		{Label: "OpenFold (A100x128, NoDAP)", Paper: 6.19, Config: ReferenceConfig(gpu.A100(), 128)},
		{Label: "FastFold (A100x256, DAP2)", Paper: 2.49, Config: FastFoldConfig(gpu.A100(), 256, 2)},
		{Label: "ScaleFold (A100x256, DAP2)", Paper: 1.88, Config: Figure7Config(gpu.A100(), 256, 2)},
		{Label: "ScaleFold (H100x128, NoDAP)", Paper: 1.80, Config: Figure7Config(gpu.H100(), 128, 1)},
		{Label: "ScaleFold (H100x256, DAP2)", Paper: 1.12, Config: Figure7Config(gpu.H100(), 256, 2)},
		{Label: "ScaleFold (H100x512, DAP4)", Paper: 0.75, Config: Figure7Config(gpu.H100(), 512, 4)},
		{Label: "ScaleFold (H100x1024, DAP8)", Paper: 0.65, Config: Figure7Config(gpu.H100(), 1024, 8)},
		{Label: "ScaleFold (A100x1024, DAP8)", Paper: 1.21, Config: Figure7Config(gpu.A100(), 1024, 8)},
	}
	for i := range rows {
		rows[i].Seconds = rows[i].Config.StepSeconds()
	}
	return rows
}

// Rung is one bar of the Figure 8 optimization ladder.
type Rung struct {
	Label   string
	Paper   float64 // cumulative speedup the paper reports
	Config  StepConfig
	Seconds float64
	Speedup float64 // measured cumulative speedup vs rung 0
}

// Ladder reproduces Figure 8: optimizations applied cumulatively in the
// paper's order, measured as speedup over the A100 reference.
func Ladder() []Rung {
	mk := func(label string, paper float64, mut func(*StepConfig)) Rung {
		c := ReferenceConfig(gpu.H100(), 128)
		c.Name = label
		mut(&c)
		return Rung{Label: label, Paper: paper, Config: c}
	}
	rungs := []Rung{
		{Label: "Reference (A100)", Paper: 1.00, Config: ReferenceConfig(gpu.A100(), 128)},
		mk("H100", 1.66, func(c *StepConfig) {}),
		mk("+Batched GEMM", 1.71, func(c *StepConfig) {
			c.Census.BatchedGEMM = true
		}),
		mk("+Non-blocking dataloader", 1.78, func(c *StepConfig) {
			c.Census.BatchedGEMM = true
			c.NonBlocking = true
		}),
		mk("+BF16", 2.22, func(c *StepConfig) {
			c.Census.BatchedGEMM, c.NonBlocking = true, true
			c.Census.BF16 = true
		}),
		mk("+Triton MHA", 2.49, func(c *StepConfig) {
			c.Census.BatchedGEMM, c.NonBlocking, c.Census.BF16 = true, true, true
			c.Census.FusedMHA = true
		}),
		mk("+Triton LayerNorm", 2.92, func(c *StepConfig) {
			c.Census.BatchedGEMM, c.NonBlocking, c.Census.BF16, c.Census.FusedMHA = true, true, true, true
			c.Census.FusedLN = true
		}),
		mk("+Fused Adam+SWA", 3.29, func(c *StepConfig) {
			c.Census.BatchedGEMM, c.NonBlocking, c.Census.BF16, c.Census.FusedMHA, c.Census.FusedLN = true, true, true, true, true
			c.Census.FusedAdamSWA, c.Census.BucketedClip = true, true
		}),
		mk("+DAP-8, no grad ckpt", 5.90, func(c *StepConfig) {
			c.Census.BatchedGEMM, c.NonBlocking, c.Census.BF16, c.Census.FusedMHA, c.Census.FusedLN = true, true, true, true, true
			c.Census.FusedAdamSWA, c.Census.BucketedClip = true, true
			c.Census.DAP, c.DAP, c.Ranks = 8, 8, 1024
			c.Census.GradCheckpoint = false
		}),
		mk("+CUDA Graph", 7.84, func(c *StepConfig) {
			c.Census.BatchedGEMM, c.NonBlocking, c.Census.BF16, c.Census.FusedMHA, c.Census.FusedLN = true, true, true, true, true
			c.Census.FusedAdamSWA, c.Census.BucketedClip = true, true
			c.Census.DAP, c.DAP, c.Ranks = 8, 8, 1024
			c.Census.GradCheckpoint = false
			c.CUDAGraph = true
		}),
		mk("+Disable GC", 8.91, func(c *StepConfig) {
			c.Census.BatchedGEMM, c.NonBlocking, c.Census.BF16, c.Census.FusedMHA, c.Census.FusedLN = true, true, true, true, true
			c.Census.FusedAdamSWA, c.Census.BucketedClip = true, true
			c.Census.DAP, c.DAP, c.Ranks = 8, 8, 1024
			c.Census.GradCheckpoint = false
			c.CUDAGraph, c.DisableGC = true, true
		}),
		mk("+torch.compile", 10.39, func(c *StepConfig) {
			c.Census.BatchedGEMM, c.NonBlocking, c.Census.BF16, c.Census.FusedMHA, c.Census.FusedLN = true, true, true, true, true
			c.Census.FusedAdamSWA, c.Census.BucketedClip = true, true
			c.Census.DAP, c.DAP, c.Ranks = 8, 8, 1024
			c.Census.GradCheckpoint = false
			c.CUDAGraph, c.DisableGC = true, true
			c.Census.TorchCompile = true
		}),
	}
	base := rungs[0].Config.StepSeconds()
	rungs[0].Seconds = base
	rungs[0].Speedup = 1
	for i := 1; i < len(rungs); i++ {
		rungs[i].Seconds = rungs[i].Config.StepSeconds()
		rungs[i].Speedup = base / rungs[i].Seconds
	}
	return rungs
}

// Barrier is one Figure 3 stacked-bar component.
type Barrier struct {
	Name  string
	Share float64 // fraction of the actual-vs-optimal gap (column sums to 1)
	Gap   time.Duration
}

// Figure3 reproduces the barrier breakdown: the gap between the measured
// step and the per-factor idealized step, decomposed deterministically from
// the simulator's accounting (the paper subtracts per-factor idealized
// times; our simulator exposes the same quantities directly). The
// configuration matches §3.1: DAP applied to the otherwise-unoptimized
// training — blocking loader, no CUDA graph.
func Figure3(dapN int) []Barrier {
	cen := workload.Baseline()
	cen.DAP = dapN
	cen.GradCheckpoint = false // §3.1 measures DAP runs with ckpt freed
	ranks := 128 * dapN
	prog := workload.Census(fullModelConfig(), cen)
	o := cluster.DefaultOptions(3)
	o.Arch = gpu.A100()
	// The paper's profiled measurement runs read far ahead in the dataset;
	// the steady-state stall behaviour belongs to the TTT experiments.
	o.Prefetch = 128
	res := cluster.Simulate(prog, ranks, dapN, o)

	// Poor kernel scalability: the extra time DAP-shrunk kernels take
	// beyond perfect 1/n scaling of their DAP-1 durations, caused by
	// falling down the bandwidth-efficiency curve.
	cen1 := cen
	cen1.DAP = 1
	prog1 := workload.Census(fullModelConfig(), cen1)
	var kernelGap time.Duration
	for i, g := range prog.Groups {
		if g.Serial {
			continue
		}
		g1 := prog1.Groups[i]
		actual := time.Duration(g.Calls) * o.Arch.KernelDuration(g.PerCallFlops(), g.PerCallBytes(), false)
		ideal := time.Duration(g1.Calls) * o.Arch.KernelDuration(g1.PerCallFlops(), g1.PerCallBytes(), false) / time.Duration(dapN)
		if actual > ideal {
			kernelGap += actual - ideal
		}
	}

	serialGap := res.Break.SerialPart - res.Break.SerialPart/time.Duration(dapN)

	out := []Barrier{
		{Name: "CPU overhead", Gap: res.Break.CPUExposed},
		{Name: "Imbalance communication", Gap: res.Break.CommWaitMedian + res.Break.DataWaitMedian},
		{Name: "Serial modules", Gap: serialGap},
		{Name: "Poor kernel scalability", Gap: kernelGap},
		{Name: "Communication workload", Gap: res.Break.CommXfer},
	}
	var totalGap time.Duration
	for _, b := range out {
		totalGap += b.Gap
	}
	if totalGap > 0 {
		for i := range out {
			out[i].Share = float64(out[i].Gap) / float64(totalGap)
		}
	}
	return out
}

// BaselineDAPSpeedups reproduces the §3.1 observation that naively applying
// DAP to the unoptimized training yields only 1.42×/1.57×/≈1.57× at
// DAP-2/4/8. Returned values are speedups over the DAP-1 baseline.
func BaselineDAPSpeedups() map[int]float64 {
	base := ReferenceConfig(gpu.A100(), 128).StepSeconds()
	out := map[int]float64{}
	for _, d := range []int{2, 4, 8} {
		cen := workload.Baseline()
		cen.DAP = d
		c := StepConfig{Name: "baseline+DAP", Arch: gpu.A100(), Ranks: 128 * d, DAP: d, Census: cen, Seed: 1}
		out[d] = base / c.StepSeconds()
	}
	return out
}

// Table1Shares returns the runtime shares and call counts of Table 1,
// measured on the simulated baseline: CPU overhead plus the three kernel
// categories.
type Table1Row struct {
	Kind  string
	Share float64
	Calls int
}

// Table1 measures the kernel-category breakdown on the A100 baseline.
func Table1() []Table1Row {
	prog := workload.Census(model.FullConfig(), workload.Baseline())
	arch := gpu.A100()
	tot := prog.Totals()
	var times [3]time.Duration
	for i, cat := range []workload.Category{workload.CatMath, workload.CatMem, workload.CatMemOp} {
		for _, g := range prog.Groups {
			if g.Cat == cat {
				times[i] += time.Duration(g.Calls) * arch.KernelDuration(g.PerCallFlops(), g.PerCallBytes(), false)
			}
		}
	}
	// CPU overhead: exposed launch gaps plus the host-side work the
	// profiler attributes to every launch (driver call, Python dispatch),
	// which Table 1 counts as CPU time even when the GPU stays busy.
	const hostPerLaunch = 2 * time.Microsecond
	cpu := time.Duration(prog.TotalCalls()) * hostPerLaunch
	for _, g := range prog.Groups {
		per := arch.KernelDuration(g.PerCallFlops(), g.PerCallBytes(), false)
		if gap := arch.LaunchOverhead - per; gap > 0 {
			cpu += time.Duration(g.Calls) * gap
		}
	}
	total := cpu + times[0] + times[1] + times[2]
	rows := []Table1Row{
		{Kind: "CPU Overhead", Share: float64(cpu) / float64(total)},
		{Kind: "Math-bounded", Share: float64(times[0]) / float64(total), Calls: tot[workload.CatMath].Calls},
		{Kind: "Memory-bounded", Share: float64(times[1]) / float64(total), Calls: tot[workload.CatMem].Calls},
		{Kind: "Memory-operation", Share: float64(times[2]) / float64(total), Calls: tot[workload.CatMemOp].Calls},
	}
	return rows
}

// PrepTimeCurve returns the sorted Figure 4 curve (n batches, seconds).
func PrepTimeCurve(n int) []float64 {
	gen := dataset.NewGenerator(11)
	return dataset.SortedPrepTimes(gen, dataset.DefaultPrepTimeModel(), n, 7)
}

// EosTopology re-exports the cluster topology for CLI display.
func EosTopology() comm.Topology { return comm.Eos() }
