package scalefold

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/sweep"
)

// testSpec is a small-but-real sweep: 24 cells at tiny rank counts so the
// determinism and memoization properties are checked against the actual
// simulator, not a stub. A fresh cache per spec forces cold execution (nil
// would select the process-wide cache shared with the figure runners).
func testSpec(workers int, cache *sweep.Cache[cluster.Result]) SweepSpec {
	s := DefaultSweepSpec()
	s.Ranks = []int{32}
	s.Steps = 2
	s.Workers = workers
	s.Cache = cache
	if cache == nil {
		s.Cache = sweep.NewCache[cluster.Result]()
	}
	return s
}

func sweepCSV(t *testing.T, s SweepSpec) []byte {
	t.Helper()
	rows, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SweepTable(rows).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSweepGridIs24Cells(t *testing.T) {
	g := testSpec(1, nil).Grid()
	if g.Size() != 24 {
		t.Fatalf("default sweep grid has %d cells, want 24", g.Size())
	}
	points, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 24 {
		t.Fatalf("expanded to %d points", len(points))
	}
}

func TestSweepWorkerCountDoesNotChangeOutput(t *testing.T) {
	skipIfShort(t)
	serial := sweepCSV(t, testSpec(1, nil))
	parallel := sweepCSV(t, testSpec(8, nil))
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("-workers=1 and -workers=8 must emit byte-identical CSV:\n%s\nvs\n%s", serial, parallel)
	}
	if n := bytes.Count(serial, []byte("\n")); n != 25 { // header + 24 cells
		t.Fatalf("CSV has %d lines, want 25", n)
	}
	if !bytes.Contains(serial, []byte(",ok,")) {
		t.Fatal("no executed cells in sweep output")
	}
}

// TestSweepSimWorkersDoesNotChangeOutput pins the execution-detail contract
// end to end: sharding each cell's internal per-rank work across goroutines
// must leave the CSV byte-identical — SimWorkers is excluded from the
// fingerprint precisely because it cannot change a row. Kept small (4 cells)
// so it runs under the -race -short CI job, where the sharded march gets its
// data-race audit.
func TestSweepSimWorkersDoesNotChangeOutput(t *testing.T) {
	spec := func(simWorkers int) SweepSpec {
		s := testSpec(2, nil)
		s.Ablations = []string{"none"}
		s.SimWorkers = simWorkers
		return s
	}
	serial := sweepCSV(t, spec(0))
	for _, w := range []int{1, 4, 8} {
		if got := sweepCSV(t, spec(w)); !bytes.Equal(serial, got) {
			t.Fatalf("SimWorkers=%d changed the CSV:\n%s\nvs\n%s", w, serial, got)
		}
	}
}

func TestSweepMemoizationMatchesColdRun(t *testing.T) {
	skipIfShort(t)
	cold := sweepCSV(t, testSpec(4, nil))
	cache := sweep.NewCache[cluster.Result]()
	warm1 := sweepCSV(t, testSpec(4, cache))
	entries := cache.Len()
	warm2 := sweepCSV(t, testSpec(4, cache))
	if !bytes.Equal(cold, warm1) || !bytes.Equal(warm1, warm2) {
		t.Fatal("memoized sweep must emit byte-identical CSV to a cold run")
	}
	if entries != 24 || cache.Len() != 24 {
		t.Fatalf("cache has %d then %d entries, want 24 (every cell distinct, none recomputed)", entries, cache.Len())
	}
}

func TestSweepSkipsInfeasibleCells(t *testing.T) {
	s := testSpec(2, nil)
	s.Ranks = []int{30} // not divisible by DAP 4 or 8
	s.Ablations = []string{"none"}
	rows, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var ok, skipped int
	for _, r := range rows {
		if r.SkipReason != "" {
			skipped++
		} else {
			ok++
		}
	}
	if ok != 2 || skipped != 2 { // DAP 1,2 feasible; 4,8 not
		t.Fatalf("ok=%d skipped=%d, want 2/2", ok, skipped)
	}
	var buf bytes.Buffer
	if err := SweepTable(rows).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "skipped") {
		t.Fatal("skipped cells must appear in the table, not vanish")
	}
}

func TestSweepSeedDerivationDistinctPerReplica(t *testing.T) {
	s := testSpec(1, nil)
	s.DAPs = []int{2}
	s.Ablations = []string{"none"}
	s.Seeds = 3
	rows, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[int64]bool{}
	for _, r := range rows {
		seeds[r.Config.Seed] = true
	}
	if len(seeds) != 3 {
		t.Fatalf("3 seed replicas derived %d distinct seeds", len(seeds))
	}
}

func TestSweepRejectsBadAxes(t *testing.T) {
	// Spec-wide mistakes fail every cell identically, so they are errors —
	// not a grid of skipped rows that exits 0 in a scripted pipeline.
	for _, mut := range []func(*SweepSpec){
		func(s *SweepSpec) { s.Arches = []string{"TPU"} },
		func(s *SweepSpec) { s.Profile = "alphafold3" },
		func(s *SweepSpec) { s.Ablations = []string{"zero-lunch"} },
	} {
		s := testSpec(1, nil)
		mut(&s)
		if _, err := s.Run(nil); err == nil {
			t.Fatalf("spec-wide mistake must error, got nil (%+v)", s)
		}
	}
	// Negative seed counts degrade to the empty-axis error, not a panic.
	s := testSpec(1, nil)
	s.Seeds = -1
	if _, err := s.Run(nil); err == nil {
		t.Fatal("negative -seeds must error")
	}
}

func TestFingerprintSeparatesScenarios(t *testing.T) {
	a := Figure7Config("H100", 256, 2)
	b := a
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configs must share a fingerprint")
	}
	b.Name = "renamed"
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("Name is display-only and must not change the fingerprint")
	}
	for _, mut := range []func(*StepConfig){
		func(c *StepConfig) { c.Seed = 99 },
		func(c *StepConfig) { c.Ranks = 512 },
		func(c *StepConfig) { c.Census.BF16 = false },
		func(c *StepConfig) { c.Ablation = "zero-comm" },
		func(c *StepConfig) { c.Prefetch = 128 },
		func(c *StepConfig) { c.DisableGC = true },
	} {
		m := a
		mut(&m)
		if m.Fingerprint() == a.Fingerprint() {
			t.Fatalf("mutation must change fingerprint: %+v", m)
		}
	}
}

func TestFingerprintIsVersionedScenarioKey(t *testing.T) {
	c := Figure7Config("H100", 256, 2)
	fp := c.Fingerprint()
	if !scenario.IsCurrentKey(fp) {
		t.Fatalf("StepConfig fingerprint %q must be a current-version scenario key", fp)
	}
	// The wrapper adds nothing to identity: the embedded Scenario IS the key.
	if fp != c.Scenario.Fingerprint() {
		t.Fatal("StepConfig must fingerprint exactly as its Scenario")
	}
	// Platform aliases collapse: "H100" and "h100-eos" are one scenario.
	canon := c
	canon.Platform = "h100-eos"
	if canon.Fingerprint() != fp {
		t.Fatal("platform alias must not change the fingerprint")
	}
}

func TestSweepExplicitScenarios(t *testing.T) {
	sc := Figure7Config("H100", 32, 2).Scenario
	sc.Steps = 2
	ab := sc
	ab.Ablation = "zero-launch"
	s := SweepSpec{Scenarios: []scenario.Scenario{sc, ab}, Workers: 2, Cache: sweep.NewCache[cluster.Result]()}
	if s.Cells() != 2 {
		t.Fatalf("Cells() = %d, want 2", s.Cells())
	}
	rows, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for i, r := range rows {
		if r.SkipReason != "" {
			t.Fatalf("row %d skipped: %s", i, r.SkipReason)
		}
		if r.Res.MedianStep <= 0 {
			t.Fatalf("row %d has no result", i)
		}
	}
	if rows[0].Point.Get("arch") != "h100-eos" || rows[0].Point.Get("dap") != "2" {
		t.Fatalf("explicit scenario row carries wrong coordinates: %+v", rows[0].Point)
	}

	// The explicit cell and the equivalent grid cell share one store key:
	// a grid-warmed store serves the scenario job without simulation.
	grid := testSpec(2, nil)
	grid.Ranks = []int{32}
	grid.DAPs = []int{2}
	grid.Ablations = []string{"none"}
	grid.Steps = 2
	st := store.NewMem[cluster.Result]()
	grid.Store = st
	if _, err := grid.Run(nil); err != nil {
		t.Fatal(err)
	}
	gridSeed := sweep.SeedFor(1, "arch=H100,ranks=32,dap=2,ablate=none,seed=1")
	exp := Figure7Config("H100", 32, 2).Scenario
	exp.Steps = 2
	exp.Seed = gridSeed
	expSpec := SweepSpec{
		Scenarios: []scenario.Scenario{exp},
		Cache:     sweep.NewCache[cluster.Result](),
		Store:     st,
		Metrics:   &SweepMetrics{},
	}
	if _, err := expSpec.Run(nil); err != nil {
		t.Fatal(err)
	}
	if n := expSpec.Metrics.Simulated.Load(); n != 0 {
		t.Fatalf("explicit scenario equal to a stored grid cell re-simulated %d times", n)
	}
	if n := expSpec.Metrics.StoreHits.Load(); n != 1 {
		t.Fatalf("want 1 store hit, got %d", n)
	}
}

func TestSweepRejectsInvalidExplicitScenario(t *testing.T) {
	bad := Figure7Config("H100", 30, 4).Scenario // 30 ranks can't host DAP-4
	s := SweepSpec{Scenarios: []scenario.Scenario{bad}}
	if _, err := s.Run(nil); err == nil {
		t.Fatal("invalid explicit scenario must be an error, not a skipped row")
	}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate must reject invalid explicit scenarios")
	}
}
