package scalefold

import (
	"strings"
	"testing"

	"repro/internal/analytic"
	"repro/internal/cluster"
	"repro/internal/perturb"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/sweep"
)

// TestAnalyticWithinBoundsOnDefaultGrid is the fidelity property test of the
// analytic fast path: across the default 24-cell exploration grid and its
// perturbed variants, every closed-form estimate lands the exact simulator's
// Result inside the estimate's own stated Bounds. -short trims the grid to
// one DAP column and one perturbed variant.
func TestAnalyticWithinBoundsOnDefaultGrid(t *testing.T) {
	variants := map[string]*perturb.Spec{
		"healthy": nil,
		"failing": {FailProb: 1e-3, RestartCost: 60},
		"noisy":   {SlowdownProb: 0.02, SlowdownFactor: 1.5, StallRate: 0.05, StallMean: 2, FailProb: 1e-4, RestartCost: 90},
	}
	if testing.Short() {
		delete(variants, "noisy")
	}
	for name, p := range variants {
		p := p
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := DefaultSweepSpec()
			if testing.Short() {
				spec.DAPs = []int{2}
			}
			spec.Perturb = p
			spec.Cache = sweep.NewCache[cluster.Result]()
			rows, err := spec.Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				if r.SkipReason != "" {
					t.Fatalf("default grid must have no infeasible cells, got %q", r.SkipReason)
				}
				_, bounds, err := analytic.Estimate(r.Config.Scenario)
				if err != nil {
					t.Fatalf("%s: Estimate: %v", r.Point.Fingerprint(), err)
				}
				if err := bounds.Check(r.Res); err != nil {
					t.Errorf("%s: %v", r.Point.Fingerprint(), err)
				}
			}
		})
	}
}

// TestSweepModeAnalyticKeysAndMetrics pins the analytic execution path end to
// end: estimates persist under v5 store keys, count as Analytic (never as
// simulator runs), round-trip through the store on the next sweep, and the
// exact twin of the same grid keeps its v3 keys — the two generations never
// share a record.
func TestSweepModeAnalyticKeysAndMetrics(t *testing.T) {
	spec := DefaultSweepSpec()
	spec.Ranks = []int{32}
	spec.DAPs = []int{1, 2}
	spec.Ablations = []string{"none", "zero-comm"}
	spec.Steps = 2
	spec.Mode = scenario.ModeAnalytic

	st := store.NewMem[cluster.Result]()
	var met SweepMetrics
	spec.Cache = sweep.NewCache[cluster.Result]()
	spec.Store = st
	spec.Metrics = &met

	sims0 := Simulations()
	rows, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := Simulations() - sims0; got != 0 {
		t.Errorf("analytic sweep ran the exact simulator %d times", got)
	}
	if got := met.Analytic.Load(); got != int64(len(rows)) {
		t.Errorf("Analytic = %d, want %d", got, len(rows))
	}
	if got := met.Simulated.Load(); got != 0 {
		t.Errorf("Simulated = %d, want 0", got)
	}
	for _, k := range st.Keys() {
		if !strings.HasPrefix(k, "v5:") {
			t.Errorf("analytic cell stored under non-v5 key %s", k)
		}
	}
	for _, r := range rows {
		if r.Config.Mode != scenario.ModeAnalytic {
			t.Errorf("row %s lost its mode: %q", r.Point.Fingerprint(), r.Config.Mode)
		}
		if r.Res.Goodput <= 0 {
			t.Errorf("row %s carries no result", r.Point.Fingerprint())
		}
	}

	// Second sweep, cold memo, same store: every cell is a store hit and the
	// table is byte-identical.
	var met2 SweepMetrics
	spec.Cache = sweep.NewCache[cluster.Result]()
	spec.Metrics = &met2
	rows2, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := met2.StoreHits.Load(); got != int64(len(rows)) {
		t.Errorf("second run StoreHits = %d, want %d", got, len(rows))
	}
	if met2.Analytic.Load() != 0 {
		t.Errorf("second run re-estimated %d cells", met2.Analytic.Load())
	}
	var b1, b2 strings.Builder
	SweepTable(rows).WriteCSV(&b1)
	SweepTable(rows2).WriteCSV(&b2)
	if b1.String() != b2.String() {
		t.Error("analytic rows are not byte-identical across store round-trip")
	}

	// The exact twin of the same grid keys under v3 — no key overlap.
	exact := spec
	exact.Mode = ""
	exact.Cache = sweep.NewCache[cluster.Result]()
	exact.Store = store.NewMem[cluster.Result]()
	exact.Metrics = nil
	if _, err := exact.Run(nil); err != nil {
		t.Fatal(err)
	}
	for _, k := range exact.Store.Keys() {
		if !strings.HasPrefix(k, "v3:") {
			t.Errorf("exact cell stored under non-v3 key %s", k)
		}
	}
}

// TestSweepModeValidation pins spec-level mode validation: an unknown mode
// fails the whole spec (CLI exit 2, HTTP 400), listing the valid set.
func TestSweepModeValidation(t *testing.T) {
	spec := DefaultSweepSpec()
	spec.Mode = "psychic"
	err := spec.Validate()
	if err == nil {
		t.Fatal("Validate accepted an unknown mode")
	}
	for _, want := range scenario.Modes {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("mode error %q does not list %q", err, want)
		}
	}
}

// TestSweepModePrecedence pins the layering rule: a scenario's own mode wins
// over the spec's; the spec's mode fills scenarios without one (an explicit
// "exact" folds to the zero value at normalization, like a no-op perturb
// block, and then takes the spec default).
func TestSweepModePrecedence(t *testing.T) {
	base := Figure7Config("H100", 32, 2).Scenario
	base.Steps = 2
	withMode := func(m string) scenario.Scenario {
		s := base
		s.Mode = m
		return s
	}
	spec := SweepSpec{
		Scenarios: []scenario.Scenario{withMode(scenario.ModeAnalytic), base},
		Mode:      scenario.ModeAnalytic,
		Cache:     sweep.NewCache[cluster.Result](),
	}
	rows, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.Config.Mode != scenario.ModeAnalytic {
			t.Errorf("rows[%d] mode = %q, want analytic", i, r.Config.Mode)
		}
		if !strings.HasPrefix(r.Config.Fingerprint(), "v5:") {
			t.Errorf("rows[%d] key %s is not v5", i, r.Config.Fingerprint())
		}
	}
	// An explicitly exact scenario under an exact spec stays exact — and its
	// fingerprint is byte-identical to the unmoded spelling (v3).
	spec2 := SweepSpec{
		Scenarios: []scenario.Scenario{withMode(scenario.ModeExact)},
		Cache:     sweep.NewCache[cluster.Result](),
	}
	rows2, err := spec2.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if fp := rows2[0].Config.Fingerprint(); !strings.HasPrefix(fp, "v3:") {
		t.Errorf("explicit exact scenario keyed %s, want v3", fp)
	}
}

// TestAnalyticCellsNeverDispatch pins the fabric interaction: analytic cells
// resolve on the coordinator, the Runner only ever sees exact cells.
func TestAnalyticCellsNeverDispatch(t *testing.T) {
	spec := DefaultSweepSpec()
	spec.Ranks = []int{32}
	spec.DAPs = []int{1, 2}
	spec.Ablations = []string{"none"}
	spec.Steps = 2
	spec.Mode = scenario.ModeAnalytic
	spec.Cache = sweep.NewCache[cluster.Result]()
	var met SweepMetrics
	spec.Metrics = &met
	spec.Runner = func(c StepConfig) (cluster.Result, error) {
		t.Errorf("analytic cell %s dispatched to the fabric", c.Fingerprint())
		return c.simulate(), nil
	}
	rows, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := met.Analytic.Load(); got != int64(len(rows)) {
		t.Errorf("Analytic = %d, want %d", got, len(rows))
	}
	if met.Remote.Load() != 0 {
		t.Errorf("Remote = %d, want 0", met.Remote.Load())
	}
}

// TestAutoEscalationDeterministic pins auto mode's two halves. Resolution:
// across the resilience failure axis the escalation set is non-trivial (some
// cells stay analytic, the bound-straddling ones escalate) and identical on
// every resolution pass — it is a pure function of the scenario. Execution:
// a spec-level auto sweep lands each cell under the key generation its
// resolution picked, with the metrics split to match.
func TestAutoEscalationDeterministic(t *testing.T) {
	rs := DefaultResilienceSpec()
	rs.Ranks = []int{256}
	scs, err := rs.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	spec := SweepSpec{Mode: scenario.ModeAuto}
	resolve := func() []string {
		modes := make([]string, len(scs))
		for i, sc := range scs {
			n, err := sc.Normalize()
			if err != nil {
				t.Fatal(err)
			}
			modes[i] = spec.resolveMode(n, nil).Mode
		}
		return modes
	}
	first := resolve()
	var analyticN, exactN int
	for _, m := range first {
		switch m {
		case scenario.ModeAnalytic:
			analyticN++
		case "":
			exactN++
		default:
			t.Fatalf("auto resolved to %q", m)
		}
	}
	if analyticN == 0 || exactN == 0 {
		t.Fatalf("escalation set is trivial: %d analytic, %d exact over %v", analyticN, exactN, rs.FailProbs)
	}
	for pass := 0; pass < 3; pass++ {
		again := resolve()
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("pass %d: cell %d resolved %q, first pass said %q", pass, i, again[i], first[i])
			}
		}
	}

	// Execution: run the auto sweep and check the store splits by resolution.
	st := store.NewMem[cluster.Result]()
	var met SweepMetrics
	run := SweepSpec{
		Scenarios: scs,
		Mode:      scenario.ModeAuto,
		Cache:     sweep.NewCache[cluster.Result](),
		Store:     st,
		Metrics:   &met,
	}
	if _, err := run.Run(nil); err != nil {
		t.Fatal(err)
	}
	if got := met.Escalated.Load(); got != int64(exactN) {
		t.Errorf("Escalated = %d, want %d", got, exactN)
	}
	if got := met.Analytic.Load(); got != int64(analyticN) {
		t.Errorf("Analytic = %d, want %d", got, analyticN)
	}
	if got := met.Simulated.Load(); got != int64(exactN) {
		t.Errorf("Simulated = %d, want %d", got, exactN)
	}
	var v5 int
	for _, k := range st.Keys() {
		if strings.HasPrefix(k, "v5:") {
			v5++
		}
	}
	if v5 != analyticN {
		t.Errorf("store holds %d v5 keys, want %d", v5, analyticN)
	}
}
