package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestBuildTimelineCoversStep(t *testing.T) {
	r := Simulate(baselineProg(), 16, 1, quickOpts(41))
	tl := BuildTimeline(r, 0)
	if len(tl.Events) == 0 {
		t.Fatal("timeline must have spans")
	}
	// Total span time matches the breakdown-derived step within jitter.
	ratio := float64(tl.Total()) / float64(r.MeanStep)
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("timeline total %v vs step %v", tl.Total(), r.MeanStep)
	}
	// Spans must be non-overlapping and ordered.
	var prevEnd float64
	for _, e := range tl.Events {
		if e.TS < prevEnd-1e-9 {
			t.Fatalf("span %q overlaps previous", e.Name)
		}
		prevEnd = e.TS + e.Dur
	}
}

func TestTimelineOmitsEmptyPhases(t *testing.T) {
	r := Simulate(baselineProg(), 16, 1, quickOpts(42))
	tl := BuildTimeline(r, 3)
	for _, e := range tl.Events {
		if e.Dur <= 0 {
			t.Fatalf("zero-duration span %q emitted", e.Name)
		}
		if e.PID != 3 {
			t.Fatalf("span pid %d, want 3", e.PID)
		}
	}
}

func TestWriteChromeTraceIsValidJSON(t *testing.T) {
	r := Simulate(baselineProg(), 8, 1, quickOpts(43))
	tl := BuildTimeline(r, 0)
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(events) != len(tl.Events) {
		t.Fatal("event count mismatch")
	}
	for _, e := range events {
		if e["ph"] != "X" {
			t.Fatal("complete events expected")
		}
	}
}

func TestTimelineTotalZeroForEmpty(t *testing.T) {
	var tl Timeline
	if tl.Total() != time.Duration(0) {
		t.Fatal("empty timeline total must be zero")
	}
}
