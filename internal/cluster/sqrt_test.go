package cluster

import (
	"math"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/workload"
)

// newtonSqrt24 is the hand-rolled square root the simulator's jitter model
// shipped with before math.Sqrt replaced it on the hot path (24 Newton
// iterations per compute chunk, every simulated step).
func newtonSqrt24(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 24; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// TestMathSqrtPreservesChunkJitter pins that swapping the Newton loop for
// math.Sqrt did not change any simulated duration: the two differ by at most
// one ulp on the kernels-per-chunk domain, which vanishes in the nanosecond
// truncation of the jitter term (chunkCV · noise · chunk). The assertion is
// on the actual quantity the simulator computes from the root.
func TestMathSqrtPreservesChunkJitter(t *testing.T) {
	chunks := []time.Duration{time.Microsecond, time.Millisecond, 100 * time.Millisecond, 10 * time.Second}
	noises := []float64{-3.1, -1.0, -0.017, 0.5, 1.0, 2.9}
	for launches := 1; launches <= 200000; launches = launches*3/2 + 1 {
		for _, intervals := range []int{1, 2, 7, 33, 129, 1025} {
			k := float64(launches) / float64(intervals)
			if k < 1 {
				k = 1
			}
			newton, exact := 0.35/newtonSqrt24(k), 0.35/math.Sqrt(k)
			for _, chunk := range chunks {
				for _, n := range noises {
					a := time.Duration(newton * n * float64(chunk))
					b := time.Duration(exact * n * float64(chunk))
					if a != b {
						t.Fatalf("jitter changed at k=%v chunk=%v noise=%v: %d vs %d ns", k, chunk, n, a, b)
					}
				}
			}
		}
	}
}

// TestSimulatePinnedResults pins full Results for three representative
// configurations to the exact values the pre-refactor simulator (Newton
// sqrt, cluster-held defaults) produced — the regression net for the sqrt
// replacement and for the scenario-layer lowering that now builds Options.
func TestSimulatePinnedResults(t *testing.T) {
	type pin struct {
		mean, median, gpu, cpu, data, xfer, wait, clip, dwm, cwm, cap int64
	}
	for _, tc := range []struct {
		name  string
		cen   workload.Options
		ranks int
		dap   int
		mut   func(*Options)
		want  pin
	}{
		{
			name: "baseline-16x1", cen: workload.Baseline(), ranks: 16, dap: 1,
			want: pin{4487265107, 4562479626, 3436067146, 336629810, 0, 16526666, 587526205, 36285334, 0, 663722737, 0},
		},
		{
			name: "scalefold-64x8-graph", cen: workload.ScaleFold(8), ranks: 64, dap: 8,
			mut:  func(o *Options) { o.CUDAGraph = true; o.NonBlockingPipeline = true },
			want: pin{575868570, 578579230, 370485034, 42040000, 0, 67581562, 92517875, 0, 0, 94031337, 1355632000},
		},
		{
			name: "baseline-32x4", cen: func() workload.Options { o := workload.Baseline(); o.DAP = 4; return o }(),
			ranks: 32, dap: 4,
			want: pin{2332765820, 2332859126, 1334347274, 457161746, 0, 94889800, 338506491, 52271000, 0, 338742130, 0},
		},
	} {
		o := DefaultOptions(7)
		o.Steps = 4
		if tc.mut != nil {
			tc.mut(&o)
		}
		r := Simulate(workload.Census(model.FullConfig(), tc.cen), tc.ranks, tc.dap, o)
		got := pin{
			int64(r.MeanStep), int64(r.MedianStep), int64(r.Break.GPUCompute),
			int64(r.Break.CPUExposed), int64(r.Break.DataWait), int64(r.Break.CommXfer),
			int64(r.Break.CommWait), int64(r.Break.ClipExposed),
			int64(r.Break.DataWaitMedian), int64(r.Break.CommWaitMedian), int64(r.GraphCapture),
		}
		if got != tc.want {
			t.Errorf("%s: Result drifted from the pre-refactor pin:\n got %+v\nwant %+v", tc.name, got, tc.want)
		}
	}
}
