package cluster

import (
	"testing"
	"time"

	"repro/internal/perturb"
)

// TestSimulateZeroPerturbIsByteIdentical pins the hardest invariant of the
// perturbation layer: a zero (or no-op) spec must not move one bit of the
// simulation — no extra RNG draws, no changed accounting — so every
// pre-perturbation figure, sweep row and v3 store record stays valid.
func TestSimulateZeroPerturbIsByteIdentical(t *testing.T) {
	prog := baselineProg()
	for _, tc := range []struct {
		name string
		spec perturb.Spec
	}{
		{"zero", perturb.Spec{}},
		{"noop-slowdown", perturb.Spec{SlowdownProb: 0.9, SlowdownFactor: 1}},
		{"noop-stall", perturb.Spec{StallRate: 3}},            // zero mean
		{"noop-restart-only", perturb.Spec{RestartCost: 600}}, // zero fail prob
	} {
		t.Run(tc.name, func(t *testing.T) {
			clean := Simulate(prog, 16, 4, quickOpts(5))
			o := quickOpts(5)
			o.Perturb = tc.spec
			if got := Simulate(prog, 16, 4, o); got != clean {
				t.Fatalf("no-op perturbation changed the Result:\n got %+v\nwant %+v", got, clean)
			}
		})
	}
}

// TestSimulateHealthyMetrics pins the healthy-cluster values of the new
// Result fields: goodput exactly 1, no restarts, no stall share, and a
// P99Step consistent with the sorted step times (the max for short runs).
func TestSimulateHealthyMetrics(t *testing.T) {
	r := Simulate(baselineProg(), 16, 4, quickOpts(9))
	if r.Goodput != 1 {
		t.Errorf("healthy goodput = %v, want exactly 1", r.Goodput)
	}
	if r.Restarts != 0 || r.StallShare != 0 {
		t.Errorf("healthy run reported restarts=%d stall_share=%v", r.Restarts, r.StallShare)
	}
	if r.P99Step < r.MedianStep {
		t.Errorf("p99 %v below p50 %v", r.P99Step, r.MedianStep)
	}
}

// TestSimulateFailuresDegradeGoodput: with a certain per-step failure, every
// step restarts, the wall clock absorbs Steps restart costs plus replays,
// and goodput collapses accordingly while the useful work stays priced.
func TestSimulateFailuresDegradeGoodput(t *testing.T) {
	prog := baselineProg()
	o := quickOpts(5)
	o.Perturb = perturb.Spec{FailProb: 1, RestartCost: 60}
	r := Simulate(prog, 16, 4, o)
	if r.Restarts != o.Steps {
		t.Fatalf("certain failure must restart every step: got %d of %d", r.Restarts, o.Steps)
	}
	clean := Simulate(prog, 16, 4, quickOpts(5))
	// Each step pays the failed attempt + restart + replay: wall = 2*step +
	// 60s. MeanStep truncates the per-step division, so allow the 1ns
	// rounding slack of comparing means instead of totals.
	wantMean := 2*clean.MeanStep + 60*time.Second
	if d := r.MeanStep - wantMean; d < -2 || d > 2 {
		t.Fatalf("failed-step wall accounting drifted: mean %v, want %v", r.MeanStep, wantMean)
	}
	if r.Goodput >= 0.5 || r.Goodput <= 0 {
		t.Fatalf("goodput %v, want in (0, 0.5) with every step replayed", r.Goodput)
	}
	// Goodput is useful/wall, so it must agree with the step accounting.
	want := float64(clean.MeanStep) / float64(wantMean)
	if r.Goodput < want*0.999999 || r.Goodput > want*1.000001 {
		t.Fatalf("goodput %v, want ~%v", r.Goodput, want)
	}
}

// TestSimulateStallsInflateStepsAndShare: heavy transient stalls must both
// lengthen the mean step and show up in StallShare; the perturbed and clean
// runs share execution-jitter streams, so the difference is pure injection.
func TestSimulateStallsInflateStepsAndShare(t *testing.T) {
	prog := baselineProg()
	clean := Simulate(prog, 16, 4, quickOpts(7))
	o := quickOpts(7)
	o.Perturb = perturb.Spec{StallRate: 2, StallMean: 5}
	r := Simulate(prog, 16, 4, o)
	if r.MeanStep <= clean.MeanStep {
		t.Fatalf("stalls did not lengthen the step: %v vs clean %v", r.MeanStep, clean.MeanStep)
	}
	if r.StallShare <= 0 || r.StallShare >= 1 {
		t.Fatalf("stall share %v, want in (0, 1)", r.StallShare)
	}
	if r.Restarts != 0 {
		t.Fatalf("stall-only spec restarted %d times", r.Restarts)
	}
}

// TestSimulateStragglersSlowTheBarrier: a guaranteed 4x straggler fleet
// must stretch the synchronized step roughly toward the slowdown, and a
// straggler-only spec keeps goodput at 1 (nothing is lost, just slow).
func TestSimulateStragglersSlowTheBarrier(t *testing.T) {
	prog := baselineProg()
	clean := Simulate(prog, 16, 4, quickOpts(3))
	o := quickOpts(3)
	o.Perturb = perturb.Spec{SlowdownProb: 1, SlowdownFactor: 4}
	r := Simulate(prog, 16, 4, o)
	if r.MeanStep <= clean.MeanStep {
		t.Fatalf("stragglers did not slow the step: %v vs clean %v", r.MeanStep, clean.MeanStep)
	}
	if r.Goodput != 1 {
		t.Fatalf("straggler-only goodput = %v, want exactly 1 (slow, not lost)", r.Goodput)
	}
}
