package cluster

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/perturb"
	"repro/internal/workload"
)

// TestSimulateParallelDeterminism pins the SimWorkers contract: the worker
// count is an execution detail, so Simulate must return bit-identical
// Results for every value — on the per-kernel sync march (DAP > 1), on the
// degree-1 single-chunk path, and with the ablation that skips the RNG.
// Small rank counts keep it inside the -race -short CI job, which is where
// the sharded march's goroutines get their data-race audit.
func TestSimulateParallelDeterminism(t *testing.T) {
	cases := []struct {
		name  string
		cen   workload.Options
		ranks int
		dapN  int
		tweak func(*Options)
	}{
		{"dap4-march", workload.ScaleFold(4), 32, 4,
			func(o *Options) { o.CUDAGraph = true; o.NonBlockingPipeline = true }},
		{"dap8-march-noisy", workload.ScaleFold(8), 64, 8, nil},
		{"degree1-single-chunk", workload.Baseline(), 16, 1, nil},
		{"perfect-balance", workload.ScaleFold(4), 32, 4,
			func(o *Options) { o.PerfectBalance = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := workload.Census(model.FullConfig(), tc.cen)
			opts := quickOpts(11)
			if tc.tweak != nil {
				tc.tweak(&opts)
			}
			base := Simulate(prog, tc.ranks, tc.dapN, opts)
			for _, w := range []int{1, 4, 8} {
				po := opts
				po.SimWorkers = w
				if got := Simulate(prog, tc.ranks, tc.dapN, po); got != base {
					t.Fatalf("SimWorkers=%d diverged from serial:\n got %+v\nwant %+v", w, got, base)
				}
			}
		})
	}
}

// TestSimulatePerturbedDeterminism extends the SimWorkers contract to the
// perturbation layer: every perturbation kind draws from private per-rank
// RNG streams, so Results must stay bit-identical at every worker width —
// on the sync march, on the degree-1 single-chunk path, and under CUDA
// graphs. Small rank counts keep the matrix inside the -race -short CI
// job, which audits the sharded draws for data races.
func TestSimulatePerturbedDeterminism(t *testing.T) {
	kinds := []struct {
		name string
		spec perturb.Spec
	}{
		{"stragglers", perturb.Spec{SlowdownProb: 0.2, SlowdownFactor: 3}},
		{"stalls", perturb.Spec{StallRate: 0.5, StallMean: 2}},
		{"failures", perturb.Spec{FailProb: 0.05, RestartCost: 60}},
		{"combined", perturb.Spec{
			SlowdownProb: 0.1, SlowdownFactor: 2,
			StallRate: 0.2, StallMean: 1,
			FailProb: 0.02, RestartCost: 30,
		}},
	}
	shapes := []struct {
		name  string
		cen   workload.Options
		ranks int
		dapN  int
		tweak func(*Options)
	}{
		{"dap4-march", workload.ScaleFold(4), 32, 4, nil},
		{"dap4-march-graphed", workload.ScaleFold(4), 32, 4,
			func(o *Options) { o.CUDAGraph = true; o.NonBlockingPipeline = true }},
		{"degree1-single-chunk", workload.Baseline(), 16, 1, nil},
	}
	for _, k := range kinds {
		for _, sh := range shapes {
			t.Run(k.name+"/"+sh.name, func(t *testing.T) {
				prog := workload.Census(model.FullConfig(), sh.cen)
				opts := quickOpts(11)
				opts.Perturb = k.spec
				if sh.tweak != nil {
					sh.tweak(&opts)
				}
				base := Simulate(prog, sh.ranks, sh.dapN, opts)
				for _, w := range []int{1, 4, 8} {
					po := opts
					po.SimWorkers = w
					if got := Simulate(prog, sh.ranks, sh.dapN, po); got != base {
						t.Fatalf("SimWorkers=%d diverged from serial:\n got %+v\nwant %+v", w, got, base)
					}
				}
			})
		}
	}
}

// TestSimulateStepLoopAllocFree pins the zero-waste claim on the steady
// state: growing the step count must not grow allocations — every per-step
// buffer is hoisted and reused, so extra steps reuse the same scratch. The
// bound below is the per-step allocation budget; the hot path holds it at
// zero (the fixed costs — RNGs, data-wait precompute, result slices — are
// amortized out by the subtraction).
func TestSimulateStepLoopAllocFree(t *testing.T) {
	prog := workload.Census(model.FullConfig(), workload.ScaleFold(4))
	measure := func(steps int) float64 {
		o := quickOpts(3)
		o.Steps = steps
		return testing.AllocsPerRun(3, func() {
			_ = Simulate(prog, 16, 4, o)
		})
	}
	small, large := measure(4), measure(24)
	perStep := (large - small) / 20
	// The dominant remaining per-step cost would be the old make()s (2+
	// allocs per step); anything above 1 alloc/step means scratch leaked
	// back into the loop.
	if perStep > 1 {
		t.Fatalf("step loop allocates ~%.1f allocs/step (4 steps: %.0f, 24 steps: %.0f); want 0",
			perStep, small, large)
	}
}

// BenchmarkSimulateSimWorkers measures the rank-parallel march: one big
// DAP-8 simulation at increasing SimWorkers. Results are bit-identical by
// contract (asserted above); this records how much wall clock the sharding
// buys.
func BenchmarkSimulateSimWorkers(b *testing.B) {
	prog := workload.Census(model.FullConfig(), workload.ScaleFold(8))
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("simworkers=%d", w), func(b *testing.B) {
			o := DefaultOptions(1)
			o.CUDAGraph = true
			o.NonBlockingPipeline = true
			o.SimWorkers = w
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				o.Seed = int64(i + 1)
				_ = Simulate(prog, 256, 8, o)
			}
		})
	}
}
