// Package cluster is the discrete multi-rank step simulator: it takes the
// kernel census of package workload, the GPU/CPU models of package gpu, the
// collective models of package comm and the data-pipeline semantics of
// package pipeline, and produces per-step times with a full breakdown —
// GPU compute, exposed CPU launch overhead, data-pipeline waits, collective
// transfer time and imbalance (straggler) waits. The Figure 3 barrier
// ablation and the Figure 7/8 step-time experiments are built on it.
package cluster

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/dap"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/perturb"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options configures a simulation run.
type Options struct {
	Arch gpu.Arch
	Topo comm.Topology
	CPU  gpu.CPUModel

	// CUDAGraph captures the step into graphs (per recycling scenario),
	// removing per-kernel CPU launch costs and their noise sensitivity.
	CUDAGraph bool
	// NonBlockingPipeline selects the §3.2 loader semantics.
	NonBlockingPipeline bool
	// Workers is the per-rank dataloader worker count.
	Workers int
	// Prefetch bounds how many batches workers may run ahead of the
	// trainer (queue slots). Real OpenFold setups bind 28 CPU threads per
	// GPU and prefetch deep; stalls therefore only appear once step time
	// shrinks enough that the prefetch horizon (Prefetch × step) drops
	// below the prep-time tail — exactly the paper's observation that data
	// loading grows in importance as the step gets faster.
	Prefetch int
	// PrepModel drives per-rank batch preparation times.
	PrepModel dataset.PrepTimeModel

	Seed  int64
	Steps int // steps to average over

	// SimWorkers bounds the goroutines one Simulate call shards its
	// per-rank work across (the data-wait precompute and the per-DP-group
	// sync-interval march); <= 1 runs serially. Every rank owns a private
	// RNG stream, so the result is bit-identical for every value — this is
	// an execution knob, not part of the scenario's identity, and it is
	// deliberately excluded from the scenario fingerprint. Sweeps already
	// parallelize across cells; SimWorkers is for making one big simulation
	// fast.
	SimWorkers int

	// Perturb injects unhealthy-cluster noise: persistent per-rank
	// stragglers, Poisson-arriving transient stalls, and rank failures
	// paid for with a checkpoint-restart. The zero value injects nothing
	// and leaves the simulation bit-identical to a build without the
	// perturbation layer; when enabled, every rank draws from a private
	// perturbation RNG stream (disjoint from the execution-jitter
	// streams), so Results stay bit-identical at any SimWorkers width.
	Perturb perturb.Spec

	// Ablation switches (Figure 3): each idealizes one barrier.
	ZeroLaunchOverhead bool // CPU overhead eliminated
	PerfectBalance     bool // workers synchronized before every collective
	ZeroSerial         bool // serial modules parallelized away
	FlatEfficiency     bool // kernels keep full efficiency at any size
	ZeroCommVolume     bool // DAP collective payloads are free
}

// normalized returns the options with unset tunables replaced by their
// Simulate-time defaults, so that two Options values which simulate
// identically also fingerprint identically.
func (o Options) normalized() Options {
	if o.Steps < 1 {
		o.Steps = 4
	}
	if o.Workers < 1 {
		o.Workers = 10
	}
	if o.Prefetch < 1 {
		o.Prefetch = 32
	}
	o.Perturb = o.Perturb.Normalize()
	return o
}

// DefaultOptions returns a production-like H100 setup.
func DefaultOptions(seed int64) Options {
	return Options{
		Arch:      gpu.H100(),
		Topo:      comm.Eos(),
		CPU:       gpu.DefaultCPUModel(),
		Workers:   10,
		Prefetch:  32,
		PrepModel: dataset.DefaultPrepTimeModel(),
		Seed:      seed,
		Steps:     6,
	}
}

// Breakdown decomposes mean step time.
type Breakdown struct {
	GPUCompute  time.Duration // roofline kernel time (includes serial modules)
	SerialPart  time.Duration // portion of GPUCompute in serial groups
	CPUExposed  time.Duration // launch overhead not hidden behind kernels
	DataWait    time.Duration // trainer idle waiting for batches (mean)
	CommXfer    time.Duration // collective payload transfer time
	CommWait    time.Duration // straggler-induced wait at collectives (mean)
	ClipExposed time.Duration // gradient-clip time not hidden under comm

	// Median-over-steps variants of the stochastic components, robust to
	// the rare multi-ten-second pipeline stalls (used by the Figure 3
	// decomposition, which the paper measured on short profiled runs).
	DataWaitMedian time.Duration
	CommWaitMedian time.Duration
}

// Result is the simulation outcome.
type Result struct {
	MeanStep time.Duration
	// MedianStep is robust to the rare multi-second data-pipeline stalls;
	// step-time microbenchmarks (Figures 7 and 8) report it, while
	// time-to-train accounting uses the mean. It doubles as the p50 of
	// the per-step wall times.
	MedianStep time.Duration
	// P99Step is the ceiling-99th-percentile per-step wall time (the
	// maximum for runs under 100 steps): the tail a perturbed cluster
	// fattens with stalls and restarts.
	P99Step time.Duration
	Break   Breakdown
	Plan    dap.Plan
	// GraphCapture is the one-time CUDA-graph capture cost (all recycling
	// scenarios), paid during initialization — Figure 9's "compilation"
	// share, not steady-state step time.
	GraphCapture time.Duration

	// Perturbation accounting (see Options.Perturb; zero restarts and
	// stall share, goodput 1, on a healthy cluster):

	// Restarts counts steps lost to a rank failure — each added one
	// checkpoint-restart plus a step replay to the wall clock.
	Restarts int
	// StallShare is the mean fraction of a rank's wall time spent in
	// injected transient stalls.
	StallShare float64
	// Goodput is useful step time over wall-clock time: 1 on a healthy
	// run, degraded by restart costs and replayed steps on a failing one.
	Goodput float64
}

// runSharded splits [0, n) into contiguous shards across at most `workers`
// goroutines and blocks until every shard completes. workers <= 1 (or a
// single-item range) runs fn inline on the caller's goroutine — the serial
// path allocates nothing.
func runSharded(workers, n int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	wg.Wait()
}

// groupStep is one DAP group's contribution to one step's global barrier:
// the group's end-of-step maximum and sum (for the all-reduce straggler
// accounting), its accumulated intra-group sync waits, and — when a
// perturbation is active — its injected stall time and failed-rank count.
// Durations are integer nanoseconds and fails an integer, so summing
// contributions in any order is exact — which is what makes the
// group-sharded march bit-identical to the serial one.
type groupStep struct {
	max, sum, comm time.Duration
	stall          time.Duration
	fails          int
}

// Simulate runs the step simulation for a program on `ranks` GPUs at the
// given DAP degree.
//
// Hot-path structure (see docs/ARCHITECTURE.md "Simulator hot path"): the
// data-wait precompute asks the dataset layer for sample geometry only —
// no protein is folded, no MSA materialized — and both it and the per-group
// step march shard across Options.SimWorkers goroutines. Per-rank RNG
// streams and per-group state are disjoint, and cross-group reductions sum
// integer nanoseconds, so the Result is bit-identical for every SimWorkers
// value. All step-loop scratch is hoisted and reused: the steady-state loop
// allocates nothing.
func Simulate(prog *workload.Program, ranks, dapDegree int, o Options) Result {
	plan, err := dap.NewPlan(ranks, dapDegree)
	if err != nil {
		panic(err)
	}
	o = o.normalized()
	workers := o.SimWorkers

	// --- Per-step invariants (identical across ranks), one pass over the
	// census: roofline kernel time, serial share, launch count, and the
	// exposed-CPU baseline (launches whose issue cost exceeds the kernel's
	// own duration leave the GPU idle; approximated per group).
	exposeCPU := !o.CUDAGraph && !o.ZeroLaunchOverhead
	var gpuCompute, serialPart, cpuExposedBase time.Duration
	var launches int
	for _, g := range prog.Groups {
		if o.ZeroSerial && g.Serial {
			continue
		}
		perCall := o.Arch.KernelDuration(g.PerCallFlops(), g.PerCallBytes(), o.FlatEfficiency)
		d := time.Duration(g.Calls) * perCall
		gpuCompute += d
		if g.Serial {
			serialPart += d
		}
		launches += g.Calls
		if exposeCPU {
			if gap := o.Arch.LaunchOverhead - perCall; gap > 0 {
				cpuExposedBase += time.Duration(g.Calls) * gap
			}
		}
	}

	// Collective schedule.
	var syncEvents int
	var xferPerStep time.Duration
	for _, s := range prog.Syncs {
		syncEvents += s.Count
		bytes := s.Bytes
		if o.ZeroCommVolume {
			bytes = 0
		}
		xferPerStep += time.Duration(s.Count) * o.Topo.Cost(s.Op, plan.Degree, bytes)
	}

	// Data pipeline waits, per rank: simulate a warmup prefix so the waits
	// reflect steady state (the pipeline is warm after MLPerf's init phase),
	// then keep Steps waits.
	// A leading window lets the prefetch queue fill; a trailing pad keeps
	// the epoch end out of the measurement (the non-blocking loader defers
	// slow batches, and at the very end of an epoch it must finally wait
	// for them — steady-state training doesn't see that).
	// Prep times come from the geometry-only dataset path: the cost model
	// reads nothing but the sample's index, sequence length and MSA size,
	// so no protein is folded and no MSA allocated just to be timed. Ranks
	// are independent (the generator is stateless per index, the timer
	// reseeds per index), so the precompute shards across the worker pool.
	warmup := 16
	if o.Prefetch > warmup {
		warmup = o.Prefetch
	}
	stepEstimate := gpuCompute + cpuExposedBase + xferPerStep
	gen := dataset.NewGenerator(o.Seed + 101)
	epoch := warmup + o.Steps + 16
	// dataWaits is rank-major: rank r's wait for step s at [r*Steps+s].
	dataWaits := make([]time.Duration, ranks*o.Steps)
	runSharded(workers, ranks, func(lo, hi int) {
		gs := gen.Sampler()
		pt := o.PrepModel.Timer()
		prep := make([]time.Duration, epoch)
		for r := lo; r < hi; r++ {
			for k := range prep {
				idx := r*epoch + k
				seqLen, msaSize := gs.Geometry(idx)
				prep[k] = pt.DurationAt(idx, seqLen, msaSize, o.Seed+int64(r))
			}
			tl := pipeline.AnalyticSim{PrepTimes: prep, Workers: o.Workers, Prefetch: o.Prefetch, NonBlocking: o.NonBlockingPipeline}.Run(stepEstimate)
			copy(dataWaits[r*o.Steps:(r+1)*o.Steps], tl.Wait[warmup:warmup+o.Steps])
		}
	})

	var graphCapture time.Duration
	if o.CUDAGraph {
		// All recycling scenarios (1..4 recycles) are captured once during
		// warmup; steady-state steps replay from the cache.
		graphs := gpu.NewGraphCache(0)
		for key := 0; key < 4; key++ {
			graphCapture += graphs.Launch(o.Arch, key, launches, o.CPU, 0)
		}
	}
	intervals := syncEvents + 1

	rankRNGs := make([]*rand.Rand, ranks)
	for r := range rankRNGs {
		rankRNGs[r] = rand.New(rand.NewSource(o.Seed*31 + int64(r)))
	}

	// Perturbation streams: one private RNG stream per rank, disjoint from
	// the execution-jitter streams above, drawn in step order inside the
	// march. Disabled specs allocate nothing and draw nothing, so the
	// unperturbed simulation is bit-identical to a build without this
	// layer.
	perturbed := o.Perturb.Enabled()
	var perturbs []*perturb.Stream
	if perturbed {
		perturbs = make([]*perturb.Stream, ranks)
		for r := range perturbs {
			perturbs[r] = o.Perturb.Stream(o.Seed, r)
		}
	}

	// advance returns the duration of one compute chunk on a rank: the GPU
	// share plus the CPU-exposed share, the latter stretched when a
	// background CPU peak lands in the chunk. CUDA graphs make the CPU share
	// microscopic, which is exactly why they immunize the step against
	// peaks (§3.2).
	peaksPerStep := o.CPU.PeakProb * 2
	// Per-chunk relative jitter: a chunk of K kernels has duration CV of
	// roughly 1/sqrt(K) of the per-kernel CV. Fine-grained DAP sync points
	// mean few kernels per chunk, hence large relative jitter — the reason
	// imbalance dominates the Figure 3 gap at high DAP degrees. CUDA graphs
	// remove the launch-time component of that variance.
	kernelsPerChunk := float64(launches) / float64(intervals)
	if kernelsPerChunk < 1 {
		kernelsPerChunk = 1
	}
	perKernelCV := 0.35
	if o.CUDAGraph {
		perKernelCV = 0.12
	}
	chunkCV := perKernelCV / math.Sqrt(kernelsPerChunk)
	stragglerProb := o.CPU.StragglerProb
	if o.CUDAGraph {
		stragglerProb /= 15
	}
	advance := func(rr *rand.Rand, gpuChunk, cpuChunk time.Duration) time.Duration {
		d := gpuChunk + cpuChunk
		if o.PerfectBalance {
			return d
		}
		// Gaussian execution jitter scaled to the chunk's kernel count.
		d += time.Duration(chunkCV * rr.NormFloat64() * float64(gpuChunk))
		// Background CPU peak pinning this rank's launch thread right
		// before the sync point (§3.1 "slow workers"); exponential delay.
		if stragglerProb > 0 && rr.Float64() < stragglerProb {
			d += time.Duration(rr.ExpFloat64() * float64(o.CPU.StragglerMean))
		}
		if cpuChunk > 0 {
			p := peaksPerStep / float64(intervals)
			if p > 1 {
				p = 1
			}
			if rr.Float64() < p {
				d += time.Duration(o.CPU.PeakStretch * rr.Float64() * float64(cpuChunk))
			}
		}
		if d < 0 {
			d = 0
		}
		return d
	}

	// Per-rank CPU exposure is identical for every rank and every step —
	// it is a scalar, not a per-step buffer.
	var cpuExposedStep time.Duration
	if o.CUDAGraph {
		// Graph replay only: captures happened during init. Python GC still
		// stalls the host between replays until disabled.
		cpuExposedStep = o.Arch.GraphReplayOverhead + gcCost(o.CPU, launches)
	} else if !o.ZeroLaunchOverhead {
		cpuExposedStep = cpuExposedBase + gcCost(o.CPU, launches)
	}

	// --- The step march, sharded by DAP group. Within one step a DAP group
	// interacts only internally (its sync barriers) until the global
	// all-reduce; across steps a rank's only carried state is its private
	// RNG stream. So each group's whole step sequence is independent of
	// every other group's, and groups shard freely across workers: each
	// group marches through all steps, recording its per-step barrier
	// contributions, and a sequential reduction assembles the global
	// all-reduce afterwards. Per-kernel sync marching applies when the DAP
	// degree shards kernels (Degree > 1 with sync events); otherwise each
	// rank is its own group of one advancing in a single chunk.
	march := plan.Degree > 1 && syncEvents > 0
	nGroups, gsize := ranks, 1
	var evCost time.Duration
	if march {
		nGroups, gsize = plan.DPWays, plan.Degree
		// Cost of one sync event (mean over kinds) plus the NCCL kernel
		// launch latency, which CUDA graphs absorb into the graph.
		evCost = xferPerStep / time.Duration(syncEvents)
		if !o.CUDAGraph {
			evCost += 2 * o.Arch.LaunchOverhead
		}
	}
	perRankChunk := gpuCompute / time.Duration(intervals)
	cpuChunk := cpuExposedStep / time.Duration(intervals)
	// stats is group-major: group g's step s entry at [g*Steps+s].
	stats := make([]groupStep, nGroups*o.Steps)
	runSharded(workers, nGroups, func(glo, ghi int) {
		// Reusable per-worker scratch — the now-buffer and the per-rank
		// chunk durations: the steady-state step loop below allocates
		// nothing. Unperturbed, every rank's chunks are the shared scalars;
		// perturbed, each group's entries are rescaled by its ranks'
		// persistent straggler factors.
		now := make([]time.Duration, gsize)
		gpuChunks := make([]time.Duration, gsize)
		cpuChunks := make([]time.Duration, gsize)
		for i := 0; i < gsize; i++ {
			gpuChunks[i] = perRankChunk
			cpuChunks[i] = cpuChunk
		}
		for g := glo; g < ghi; g++ {
			base := g * gsize
			rngs := rankRNGs[base : base+gsize]
			if perturbed && march {
				for i := range gpuChunks {
					f := perturbs[base+i].Factor()
					gpuChunks[i] = scaleDur(perRankChunk, f)
					cpuChunks[i] = scaleDur(cpuChunk, f)
				}
			}
			for step := 0; step < o.Steps; step++ {
				st := &stats[g*o.Steps+step]
				if !march {
					// Single chunk: data wait, one advance, done.
					w := dataWaits[g*o.Steps+step]
					if o.PerfectBalance {
						w = 0
					}
					gpuC, cpuC := gpuCompute, cpuExposedStep
					if perturbed {
						ps := perturbs[g] // gsize == 1: group g IS rank g
						stall, failed := ps.Step()
						w += stall
						st.stall = stall
						if failed {
							st.fails = 1
						}
						if f := ps.Factor(); f != 1 {
							gpuC, cpuC = scaleDur(gpuC, f), scaleDur(cpuC, f)
						}
					}
					v := w + advance(rngs[0], gpuC, cpuC)
					st.max, st.sum = v, v
					continue
				}
				// Per-rank start offset: data pipeline wait, plus any
				// injected transient stall. Fatal failures are only
				// recorded here — the whole job restarts, so their cost is
				// assembled globally in the sequential reduction.
				for i := range now {
					w := dataWaits[(base+i)*o.Steps+step]
					if o.PerfectBalance {
						w = 0
					}
					if perturbed {
						stall, failed := perturbs[base+i].Step()
						w += stall
						st.stall += stall
						if failed {
							st.fails++
						}
					}
					now[i] = w
				}
				// March through sync intervals: advance each rank by its
				// chunk, then sync within the group.
				var comm time.Duration
				for ev := 0; ev < syncEvents; ev++ {
					var mx time.Duration
					for i := range now {
						now[i] += advance(rngs[i], gpuChunks[i], cpuChunks[i])
						if now[i] > mx {
							mx = now[i]
						}
					}
					for i := range now {
						comm += (mx - now[i]) / time.Duration(ranks)
						now[i] = mx + evCost
					}
				}
				// Remaining compute after the last sync.
				var gmx, gsum time.Duration
				for i := range now {
					now[i] += advance(rngs[i], gpuChunks[i], cpuChunks[i])
					if now[i] > gmx {
						gmx = now[i]
					}
					gsum += now[i]
				}
				st.max, st.sum, st.comm = gmx, gsum, comm
			}
		}
	})

	// --- Sequential reduction: per step, assemble the global all-reduce
	// barrier, the failure/restart accounting and the breakdown from the
	// group contributions.
	stepTimes := make([]time.Duration, 0, o.Steps)
	stepComm := make([]time.Duration, 0, o.Steps)
	stepData := make([]time.Duration, 0, o.Steps)
	var total, useful, stallTotal time.Duration
	var restarts int
	restartCost := o.Perturb.RestartCostDur()
	var bk Breakdown
	var xferAcc time.Duration
	if march {
		xferAcc = time.Duration(syncEvents) * evCost
	}
	arCost := o.Topo.AllReduce(plan.DPWays, prog.GradBytes/float64(plan.Degree))
	// Gradient clipping: bucketed clip hides under the all-reduce.
	clipTime := time.Duration(prog.ClipKernels) * o.Arch.LaunchOverhead
	visible, _ := comm.OverlapGradClip(arCost, clipTime)
	clipExposed := visible - arCost
	for step := 0; step < o.Steps; step++ {
		var stepDataWait time.Duration
		if !o.PerfectBalance {
			for r := 0; r < ranks; r++ {
				stepDataWait += dataWaits[r*o.Steps+step]
			}
		}
		bk.DataWait += stepDataWait / time.Duration(ranks)
		stepData = append(stepData, stepDataWait/time.Duration(ranks))

		// Data-parallel gradient all-reduce: global barrier over the
		// group maxima.
		var commWaitAcc, mx, sum time.Duration
		var fails int
		for g := 0; g < nGroups; g++ {
			st := &stats[g*o.Steps+step]
			commWaitAcc += st.comm
			if st.max > mx {
				mx = st.max
			}
			sum += st.sum
			fails += st.fails
			stallTotal += st.stall
		}
		drWait := mx - sum/time.Duration(ranks)
		commWaitAcc += drWait
		stepEnd := mx + visible

		// A fatal rank failure loses the step: the job pays the failed
		// attempt, one checkpoint-restart, and the replayed step. Several
		// ranks failing in one step share a single restart.
		stepWall := stepEnd
		if fails > 0 {
			restarts++
			stepWall = 2*stepEnd + restartCost
		}
		total += stepWall
		useful += stepEnd
		stepTimes = append(stepTimes, stepWall)
		stepComm = append(stepComm, commWaitAcc)
		bk.CommWait += commWaitAcc
		bk.CommXfer += xferAcc + arCost
		bk.ClipExposed += clipExposed
		bk.CPUExposed += cpuExposedStep
	}

	n := time.Duration(o.Steps)
	bk.GPUCompute = gpuCompute
	bk.SerialPart = serialPart
	bk.CPUExposed /= n
	bk.DataWait /= n
	bk.CommXfer /= n
	bk.CommWait /= n
	bk.ClipExposed /= n
	for _, sl := range [][]time.Duration{stepTimes, stepComm, stepData} {
		sort.Slice(sl, func(i, j int) bool { return sl[i] < sl[j] })
	}
	bk.CommWaitMedian = stepComm[len(stepComm)/2]
	bk.DataWaitMedian = stepData[len(stepData)/2]
	goodput := 1.0
	if total > 0 {
		// Unperturbed, useful == total exactly, so this is exactly 1.
		goodput = float64(useful) / float64(total)
	}
	var stallShare float64
	if perturbed && total > 0 {
		stallShare = float64(stallTotal) / (float64(ranks) * float64(total))
	}
	return Result{
		MeanStep:     total / n,
		MedianStep:   stepTimes[len(stepTimes)/2],
		P99Step:      stepTimes[(len(stepTimes)*99+99)/100-1],
		Break:        bk,
		Plan:         plan,
		GraphCapture: graphCapture,
		Restarts:     restarts,
		StallShare:   stallShare,
		Goodput:      goodput,
	}
}

// scaleDur stretches a duration by a straggler slowdown factor, truncating
// to integer nanoseconds. Factor 1 is exact by construction.
func scaleDur(d time.Duration, f float64) time.Duration {
	if f == 1 {
		return d
	}
	return time.Duration(float64(d) * f)
}

// gcCost is the per-step host stall from Python garbage collection: the
// interpreter still traverses its object graph proportionally to the amount
// of per-step Python work (approximated by the traced launch count), whether
// or not the kernels themselves were replayed from a CUDA graph.
func gcCost(c gpu.CPUModel, launches int) time.Duration {
	if !c.GCEnabled || c.GCInterval <= 0 {
		return 0
	}
	return time.Duration(launches/c.GCInterval) * c.GCPause
}

// StepSeconds is a convenience returning the mean step time in seconds.
func StepSeconds(prog *workload.Program, ranks, dapDegree int, o Options) float64 {
	return sim.Sec(Simulate(prog, ranks, dapDegree, o).MeanStep)
}
