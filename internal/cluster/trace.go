package cluster

import (
	"encoding/json"
	"io"
	"time"
)

// TraceEvent is one span in the exported step timeline, in the Chrome
// trace-event format ("ph":"X" complete events) so a simulated step can be
// inspected in chrome://tracing or Perfetto the way the authors inspected
// their Nsight timelines.
type TraceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"` // rank
	TID  int     `json:"tid"` // 0 = GPU stream, 1 = CPU launch thread
}

// Timeline is a renderable reconstruction of one simulated step on one
// representative rank, built from a Result's breakdown. It is a summary
// view (per-phase spans), not a kernel-by-kernel record — the census has
// ~150k kernels per step.
type Timeline struct {
	Events []TraceEvent
}

// BuildTimeline lays out the mean step of a simulation result as spans:
// data wait, CPU launch exposure, GPU compute (split/serial), collective
// transfer and straggler wait, for the given rank id.
func BuildTimeline(r Result, rank int) Timeline {
	var tl Timeline
	cursor := 0.0
	add := func(name, cat string, tid int, d time.Duration) {
		if d <= 0 {
			return
		}
		us := float64(d) / float64(time.Microsecond)
		tl.Events = append(tl.Events, TraceEvent{
			Name: name, Cat: cat, Ph: "X",
			TS: cursor, Dur: us, PID: rank, TID: tid,
		})
		cursor += us
	}
	b := r.Break
	add("data pipeline wait", "data", 0, b.DataWait)
	add("cpu launch exposure", "cpu", 1, b.CPUExposed)
	add("gpu compute (DAP-split)", "gpu", 0, b.GPUCompute-b.SerialPart)
	add("gpu compute (serial modules)", "gpu", 0, b.SerialPart)
	add("collective transfer", "comm", 0, b.CommXfer)
	add("straggler wait", "comm", 0, b.CommWait)
	add("gradient clip (exposed)", "opt", 0, b.ClipExposed)
	return tl
}

// WriteChromeTrace serializes the timeline as a Chrome trace JSON array.
func (t Timeline) WriteChromeTrace(w io.Writer) error {
	return json.NewEncoder(w).Encode(t.Events)
}

// Total returns the summed span duration (≈ the mean step time).
func (t Timeline) Total() time.Duration {
	var us float64
	for _, e := range t.Events {
		us += e.Dur
	}
	return time.Duration(us * float64(time.Microsecond))
}
