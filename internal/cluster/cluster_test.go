package cluster

import (
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/workload"
)

func quickOpts(seed int64) Options {
	o := DefaultOptions(seed)
	o.Steps = 3
	return o
}

func baselineProg() *workload.Program {
	return workload.Census(model.FullConfig(), workload.Baseline())
}

func TestSimulateDeterministic(t *testing.T) {
	p := baselineProg()
	a := Simulate(p, 16, 1, quickOpts(5))
	b := Simulate(p, 16, 1, quickOpts(5))
	if a.MeanStep != b.MeanStep || a.MedianStep != b.MedianStep {
		t.Fatal("same seed must reproduce")
	}
	c := Simulate(p, 16, 1, quickOpts(6))
	if c.MeanStep == a.MeanStep {
		t.Fatal("different seed should differ")
	}
}

func TestH100BeatsA100(t *testing.T) {
	p := baselineProg()
	oh := quickOpts(1)
	oa := quickOpts(1)
	oa.Arch = gpu.A100()
	if Simulate(p, 16, 1, oh).MedianStep >= Simulate(p, 16, 1, oa).MedianStep {
		t.Fatal("H100 step must be faster than A100")
	}
}

func TestDAPReducesStepTimeWithDiminishingReturns(t *testing.T) {
	mk := func(d int) time.Duration {
		o := workload.ScaleFold(d)
		p := workload.Census(model.FullConfig(), o)
		co := quickOpts(1)
		co.CUDAGraph = d > 1
		co.NonBlockingPipeline = true
		return Simulate(p, 16*d, d, co).MedianStep
	}
	d1, d2, d4, d8 := mk(1), mk(2), mk(4), mk(8)
	if !(d2 < d1 && d4 < d2 && d8 <= d4) {
		t.Fatalf("DAP must monotonically help: %v %v %v %v", d1, d2, d4, d8)
	}
	// Diminishing returns: DAP-8 is far from 8x.
	if float64(d1)/float64(d8) > 6 {
		t.Fatalf("DAP-8 speedup %v implausibly close to ideal", float64(d1)/float64(d8))
	}
}

func TestCUDAGraphRemovesCPUExposure(t *testing.T) {
	p := baselineProg()
	plain := quickOpts(2)
	graphed := quickOpts(2)
	graphed.CUDAGraph = true
	rp := Simulate(p, 16, 1, plain)
	rg := Simulate(p, 16, 1, graphed)
	// Launch overhead disappears; only the Python-GC host stall remains
	// until the Disable-GC optimization removes it too.
	if rg.Break.CPUExposed*2 >= rp.Break.CPUExposed {
		t.Fatalf("graphs must slash CPU exposure: %v vs %v", rg.Break.CPUExposed, rp.Break.CPUExposed)
	}
	quiet := graphed
	quiet.CPU.GCEnabled = false
	rq := Simulate(p, 16, 1, quiet)
	if rq.Break.CPUExposed*10 >= rp.Break.CPUExposed {
		t.Fatalf("graphs+no-GC must nearly eliminate CPU exposure: %v", rq.Break.CPUExposed)
	}
	if rg.GraphCapture == 0 {
		t.Fatal("graph capture cost must be accounted")
	}
	if rp.GraphCapture != 0 {
		t.Fatal("no capture without graphs")
	}
}

func TestNonBlockingPipelineReducesDataWait(t *testing.T) {
	// Use a fast step so the prefetch horizon shrinks and stalls appear.
	o := workload.ScaleFold(8)
	p := workload.Census(model.FullConfig(), o)
	blocking := quickOpts(3)
	blocking.CUDAGraph = true
	blocking.Steps = 6
	nonBlocking := blocking
	nonBlocking.NonBlockingPipeline = true
	rb := Simulate(p, 64, 8, blocking)
	rn := Simulate(p, 64, 8, nonBlocking)
	if rn.Break.DataWait > rb.Break.DataWait {
		t.Fatalf("non-blocking pipeline must not wait more: %v vs %v", rn.Break.DataWait, rb.Break.DataWait)
	}
}

func TestPerfectBalanceRemovesCommWait(t *testing.T) {
	o := workload.Baseline()
	o.DAP = 4
	p := workload.Census(model.FullConfig(), o)
	noisy := quickOpts(4)
	balanced := quickOpts(4)
	balanced.PerfectBalance = true
	rn := Simulate(p, 32, 4, noisy)
	rb := Simulate(p, 32, 4, balanced)
	if rb.Break.CommWait >= rn.Break.CommWait && rn.Break.CommWait > 0 {
		t.Fatal("perfect balance must reduce straggler waits")
	}
	if rb.Break.DataWait != 0 {
		t.Fatal("perfect balance zeroes data waits")
	}
}

func TestZeroSerialRemovesSerialTime(t *testing.T) {
	p := baselineProg()
	normal := Simulate(p, 16, 1, quickOpts(5))
	ablate := quickOpts(5)
	ablate.ZeroSerial = true
	ablated := Simulate(p, 16, 1, ablate)
	if ablated.Break.SerialPart != 0 {
		t.Fatal("ZeroSerial must remove serial groups")
	}
	if ablated.Break.GPUCompute >= normal.Break.GPUCompute {
		t.Fatal("removing serial groups must reduce compute")
	}
}

func TestFlatEfficiencySpeedsUpDAPKernels(t *testing.T) {
	o := workload.Baseline()
	o.DAP = 8
	p := workload.Census(model.FullConfig(), o)
	normal := Simulate(p, 16, 8, quickOpts(6))
	flat := quickOpts(6)
	flat.FlatEfficiency = true
	flattened := Simulate(p, 16, 8, flat)
	if flattened.Break.GPUCompute >= normal.Break.GPUCompute {
		t.Fatal("flat efficiency must speed up DAP-shrunk kernels")
	}
}

func TestZeroCommVolume(t *testing.T) {
	o := workload.Baseline()
	o.DAP = 4
	p := workload.Census(model.FullConfig(), o)
	normal := Simulate(p, 32, 4, quickOpts(7))
	free := quickOpts(7)
	free.ZeroCommVolume = true
	freed := Simulate(p, 32, 4, free)
	if freed.Break.CommXfer >= normal.Break.CommXfer {
		t.Fatal("zero comm volume must reduce transfer time")
	}
}

func TestInvalidPlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad DAP plan")
		}
	}()
	Simulate(baselineProg(), 10, 4, quickOpts(1))
}

func TestBreakdownComponentsRoughlySumToStep(t *testing.T) {
	p := baselineProg()
	r := Simulate(p, 16, 1, quickOpts(8))
	sum := r.Break.GPUCompute + r.Break.CPUExposed + r.Break.DataWait +
		r.Break.CommXfer + r.Break.CommWait + r.Break.ClipExposed
	// The mean step equals the components up to jitter (<15%).
	ratio := float64(r.MeanStep) / float64(sum)
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("breakdown does not account for the step: step=%v sum=%v", r.MeanStep, sum)
	}
}

func TestMedianRobustToStalls(t *testing.T) {
	// With many ranks and a blocking loader at a fast step, mean >= median.
	o := workload.ScaleFold(8)
	p := workload.Census(model.FullConfig(), o)
	co := quickOpts(9)
	co.CUDAGraph = true
	co.Steps = 6
	r := Simulate(p, 256, 8, co)
	if float64(r.MedianStep) > 1.15*float64(r.MeanStep) {
		t.Fatalf("median %v should not far exceed mean %v", r.MedianStep, r.MeanStep)
	}
}

func TestGCDisableHelps(t *testing.T) {
	p := baselineProg()
	on := quickOpts(10)
	off := quickOpts(10)
	off.CPU.GCEnabled = false
	ron := Simulate(p, 16, 1, on)
	roff := Simulate(p, 16, 1, off)
	if roff.Break.CPUExposed >= ron.Break.CPUExposed {
		t.Fatal("disabling GC must reduce CPU exposure")
	}
}
