// Package curve models the from-scratch pretraining trajectory of Figure 11:
// avg_lddt_ca as a function of optimizer step, with the paper's two-phase
// schedule — global batch size 128 on 1056 H100 GPUs until the 0.8 target is
// crossed within the first 5000 steps, then global batch 256 on 2080 GPUs
// (with the Triton MHA kernel disabled, per §4.2) until avg_lddt_ca reaches
// 0.9 at 50k–60k steps, in under 10 hours.
//
// The trajectory is a saturating-exponential fit to the published curve;
// the *metric pipeline itself* (lDDT-Cα on real predicted structures) is
// exercised for real by package train — see the quickstart example and
// train's tests, which train the miniature model and watch the same metric
// rise.
package curve

import (
	"math"
	"math/rand"
	"time"
)

// Schedule describes the two-phase pretraining run.
type Schedule struct {
	// SwitchStep is where global batch size changes from 128 to 256 (5000).
	SwitchStep int
	// TargetInitial is the avg_lddt_ca that must be exceeded before
	// SwitchStep (0.8); TargetFinal ends the pretraining (0.9).
	TargetInitial, TargetFinal float64
	// StepTimeGBS128 and StepTimeGBS256 are the per-step wall times in the
	// two phases (from the cluster simulator).
	StepTimeGBS128, StepTimeGBS256 time.Duration
	// Noise adds measurement jitter to the curve (0 = smooth).
	Noise float64
	Seed  int64
}

// PaperSchedule returns the published configuration with step times taken
// from the Figure 7 simulation (DAP-8 on H100).
func PaperSchedule(stepGBS128, stepGBS256 time.Duration) Schedule {
	return Schedule{
		SwitchStep:     5000,
		TargetInitial:  0.80,
		TargetFinal:    0.90,
		StepTimeGBS128: stepGBS128,
		StepTimeGBS256: stepGBS256,
		Noise:          0.004,
		Seed:           1,
	}
}

// curve parameters: lddt(s) = ceiling − (ceiling−floor)·exp(−s/τ).
// Phase 1 (GBS 128) climbs fast from the random-init floor; phase 2
// (GBS 256) continues from the phase-1 endpoint toward a slightly higher
// ceiling with a longer time constant, crossing 0.9 near 52k steps.
const (
	floorLDDT = 0.18
	ceil1     = 0.845
	tau1      = 1450.0
	ceil2     = 0.915
	tau2      = 25200.0
)

// LDDTAt returns the modeled avg_lddt_ca after `step` optimizer steps.
func (s Schedule) LDDTAt(step int) float64 {
	var v float64
	if step <= s.SwitchStep {
		v = ceil1 - (ceil1-floorLDDT)*math.Exp(-float64(step)/tau1)
	} else {
		start := ceil1 - (ceil1-floorLDDT)*math.Exp(-float64(s.SwitchStep)/tau1)
		v = ceil2 - (ceil2-start)*math.Exp(-float64(step-s.SwitchStep)/tau2)
	}
	if s.Noise > 0 {
		rng := rand.New(rand.NewSource(s.Seed*92821 + int64(step)))
		v += rng.NormFloat64() * s.Noise
	}
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v
}

// Point is one sample of the Figure 11 curve.
type Point struct {
	Step int
	GBS  int
	LDDT float64
}

// Curve samples the trajectory every `every` steps up to maxStep.
func (s Schedule) Curve(every, maxStep int) []Point {
	var out []Point
	for st := 0; st <= maxStep; st += every {
		gbs := 128
		if st > s.SwitchStep {
			gbs = 256
		}
		out = append(out, Point{Step: st, GBS: gbs, LDDT: s.LDDTAt(st)})
	}
	return out
}

// StepsToTarget returns the first step at which the smooth (noise-free)
// curve reaches target.
func (s Schedule) StepsToTarget(target float64) int {
	smooth := s
	smooth.Noise = 0
	for st := 0; st <= 200000; st += 10 {
		if smooth.LDDTAt(st) >= target {
			return st
		}
	}
	return -1
}

// Result summarizes a pretraining run.
type Result struct {
	StepsPhase1 int // steps run at GBS 128
	StepsTotal  int // total steps to TargetFinal
	WallTime    time.Duration
	MetInitial  bool // crossed TargetInitial before SwitchStep
}

// Pretrain computes the end-to-end pretraining outcome: whether the 0.8
// gate is met in phase 1, how many steps the whole run needs, and the wall
// time under the two phase step times.
func (s Schedule) Pretrain() Result {
	toInitial := s.StepsToTarget(s.TargetInitial)
	total := s.StepsToTarget(s.TargetFinal)
	r := Result{
		StepsPhase1: s.SwitchStep,
		StepsTotal:  total,
		MetInitial:  toInitial >= 0 && toInitial <= s.SwitchStep,
	}
	if total < 0 {
		return r
	}
	phase2 := total - s.SwitchStep
	if phase2 < 0 {
		phase2 = 0
		r.StepsPhase1 = total
	}
	r.WallTime = time.Duration(r.StepsPhase1)*s.StepTimeGBS128 + time.Duration(phase2)*s.StepTimeGBS256
	return r
}
