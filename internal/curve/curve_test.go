package curve

import (
	"testing"
	"time"
)

func testSchedule() Schedule {
	return PaperSchedule(450*time.Millisecond, 600*time.Millisecond)
}

func TestInitialTargetMetBeforeSwitch(t *testing.T) {
	s := testSchedule()
	// "Training metric avg_lddt_ca must exceed 0.8 before first 5000
	// training steps" (§4.2).
	st := s.StepsToTarget(0.8)
	if st < 0 || st > 5000 {
		t.Fatalf("0.8 reached at step %d, must be within the first 5000", st)
	}
}

func TestFinalTargetInPaperRange(t *testing.T) {
	s := testSchedule()
	st := s.StepsToTarget(0.9)
	if st < 50000 || st > 60000 {
		t.Fatalf("0.9 reached at step %d, paper: 50000-60000", st)
	}
}

func TestWallTimeUnderTenHours(t *testing.T) {
	res := testSchedule().Pretrain()
	if !res.MetInitial {
		t.Fatal("initial gate must be met")
	}
	if res.WallTime >= 10*time.Hour {
		t.Fatalf("pretraining wall time %v, paper: < 10 h", res.WallTime)
	}
	if res.WallTime < 4*time.Hour {
		t.Fatalf("wall time %v implausibly fast", res.WallTime)
	}
}

func TestCurveMonotoneModuloNoise(t *testing.T) {
	s := testSchedule()
	s.Noise = 0
	prev := -1.0
	for step := 0; step <= 60000; step += 500 {
		v := s.LDDTAt(step)
		if v < prev-1e-9 {
			t.Fatalf("smooth curve must be non-decreasing at step %d: %v < %v", step, v, prev)
		}
		if v < 0 || v > 1 {
			t.Fatalf("lddt out of range: %v", v)
		}
		prev = v
	}
}

func TestCurveContinuousAtSwitch(t *testing.T) {
	s := testSchedule()
	s.Noise = 0
	before := s.LDDTAt(s.SwitchStep)
	after := s.LDDTAt(s.SwitchStep + 1)
	if after < before-1e-6 || after-before > 0.01 {
		t.Fatalf("discontinuity at batch-size switch: %v -> %v", before, after)
	}
}

func TestCurvePointsCarryGBS(t *testing.T) {
	pts := testSchedule().Curve(2500, 10000)
	if len(pts) != 5 {
		t.Fatalf("points %d", len(pts))
	}
	if pts[0].GBS != 128 || pts[1].GBS != 128 || pts[4].GBS != 256 {
		t.Fatalf("GBS phases wrong: %+v", pts)
	}
}

func TestNoiseIsDeterministicPerSeed(t *testing.T) {
	a := testSchedule()
	b := testSchedule()
	if a.LDDTAt(1234) != b.LDDTAt(1234) {
		t.Fatal("same seed must give the same noisy curve")
	}
	b.Seed = 99
	diff := false
	for step := 100; step < 2000; step += 100 {
		if a.LDDTAt(step) != b.LDDTAt(step) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seed should change the noise")
	}
}

func TestUnreachableTarget(t *testing.T) {
	s := testSchedule()
	if s.StepsToTarget(0.99) != -1 {
		t.Fatal("0.99 exceeds the ceiling and must be unreachable")
	}
}
