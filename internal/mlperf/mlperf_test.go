package mlperf

import (
	"math"
	"testing"
	"time"
)

func TestReferenceRunShape(t *testing.T) {
	bd := TimeToTrain(ReferenceRun(4400 * time.Millisecond))
	total := bd.Total()
	if total < 40*time.Minute || total > 60*time.Minute {
		t.Fatalf("reference TTT %v, paper reports ~48 min", total)
	}
	s := bd.Shares()
	if s["train"] < 0.65 || s["train"] > 0.9 {
		t.Fatalf("reference train share %v, paper ~78%%", s["train"])
	}
	if s["eval"] < 0.1 || s["eval"] > 0.35 {
		t.Fatalf("reference eval share %v, paper ~22%%", s["eval"])
	}
}

func TestAsyncEvalBeatsSync(t *testing.T) {
	step := 550 * time.Millisecond
	sync := TimeToTrain(ScaleFoldRun(step, false))
	async := TimeToTrain(ScaleFoldRun(step, true))
	if async.Total() >= sync.Total() {
		t.Fatalf("async eval must be faster: %v vs %v", async.Total(), sync.Total())
	}
	if async.TrainEvalComm == 0 {
		t.Fatal("async eval must pay weight-transfer communication")
	}
	if sync.TrainEvalComm != 0 {
		t.Fatal("sync eval has no train/eval comm")
	}
}

func TestEvalShareGrowsAsStepsShrink(t *testing.T) {
	// Figure 9's observation: "as we continuously optimize step time, the
	// proportion of evaluation time continues to increase" (22% -> 43%).
	slow := TimeToTrain(ScaleFoldRun(2*time.Second, false)).Shares()
	fast := TimeToTrain(ScaleFoldRun(400*time.Millisecond, false)).Shares()
	if fast["eval"] <= slow["eval"] {
		t.Fatalf("eval share must grow as steps shrink: %v -> %v", slow["eval"], fast["eval"])
	}
}

func TestCachingPreventsEvalBottleneck(t *testing.T) {
	step := 550 * time.Millisecond
	cached := ScaleFoldRun(step, true)
	uncached := cached
	uncached.CachedEvalData = false
	bc := TimeToTrain(cached)
	bu := TimeToTrain(uncached)
	if bu.Eval <= bc.Eval {
		t.Fatal("uncached eval data must stall the async pipeline (§3.4)")
	}
}

func TestSharesSumToOne(t *testing.T) {
	for _, c := range []Config{
		ReferenceRun(4 * time.Second),
		ScaleFoldRun(500*time.Millisecond, false),
		ScaleFoldRun(500*time.Millisecond, true),
	} {
		s := TimeToTrain(c).Shares()
		var sum float64
		for _, v := range s {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("shares sum to %v", sum)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TimeToTrain(Config{StepsToTarget: 0, EvalEvery: 100})
}

func TestAsyncWithoutEvalRanksPanics(t *testing.T) {
	c := MLPerfDefaults()
	c.StepTime = time.Second
	c.AsyncEval = true
	c.EvalRanks = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TimeToTrain(c)
}

func TestTrainTimeLinearInSteps(t *testing.T) {
	c := MLPerfDefaults()
	c.StepTime = time.Second
	c.TrainRanks = 8
	a := TimeToTrain(c)
	c.StepsToTarget *= 2
	b := TimeToTrain(c)
	if b.Train != 2*a.Train {
		t.Fatalf("train time must scale with steps: %v vs %v", a.Train, b.Train)
	}
}
