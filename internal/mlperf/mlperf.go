// Package mlperf implements the MLPerf HPC v3.0 OpenFold benchmark harness
// used in §4.2: a partial-convergence run from a predefined checkpoint to
// the avg_lddt_ca ≥ 0.8 target, with the full time-to-train accounting of
// Figure 9 — initialization, compilation (CUDA-graph capture and
// torch.compile), training steps, evaluation (synchronous or asynchronous on
// dedicated nodes), and the train↔eval communication of the async scheme —
// plus the evaluation-dataset RAM cache of §3.4.
package mlperf

import (
	"time"
)

// Config parameterizes a time-to-train run.
type Config struct {
	// StepTime is the steady-state training step time (from the cluster
	// simulator or a StepConfig).
	StepTime time.Duration
	// TrainRanks and EvalRanks partition the cluster; EvalRanks > 0 only
	// matters with AsyncEval (the paper used 2080 = 2048 train + 32 eval).
	TrainRanks, EvalRanks int

	// StepsToTarget is the number of optimizer steps from the MLPerf
	// checkpoint to avg_lddt_ca ≥ 0.8 (≈ 510 at global batch 256).
	StepsToTarget int
	// EvalEvery is the step interval between evaluations.
	EvalEvery int
	// EvalProteins is the validation-set size; EvalPerProtein the inference
	// cost per protein per eval worker.
	EvalProteins   int
	EvalPerProtein time.Duration
	// CachedEvalData keeps the eval set in CPU DRAM (§3.4); without it every
	// evaluation pays DiskLoadPenalty per protein.
	CachedEvalData  bool
	DiskLoadPenalty time.Duration

	// EvalWorkers is the effective evaluation parallelism: the reference
	// harness spreads evaluation over every training rank, while ScaleFold's
	// DAP-sharded training confines evaluation to far fewer workers — the
	// very reason §3.4 moves it to dedicated nodes.
	EvalWorkers int

	// AsyncEval offloads evaluation to EvalRanks so training never blocks;
	// each eval costs WeightsXfer of train↔eval communication instead.
	AsyncEval   bool
	WeightsXfer time.Duration

	// InitTime covers process launch, dataset indexing and checkpoint load;
	// CompileTime covers torch.compile + CUDA-graph capture.
	InitTime    time.Duration
	CompileTime time.Duration
}

// MLPerfDefaults returns the benchmark constants shared by all Figure 9/10
// rows: checkpoint-to-target step count and evaluation-set geometry.
func MLPerfDefaults() Config {
	return Config{
		StepsToTarget:   510,
		EvalEvery:       100,
		EvalProteins:    180,
		EvalPerProtein:  10 * time.Second,
		EvalWorkers:     32,
		CachedEvalData:  true,
		DiskLoadPenalty: 15 * time.Second,
		WeightsXfer:     13 * time.Second,
		InitTime:        40 * time.Second,
		CompileTime:     15 * time.Second,
	}
}

// Breakdown is the Figure 9 decomposition.
type Breakdown struct {
	Train         time.Duration
	Eval          time.Duration // training time lost to synchronous eval
	TrainEvalComm time.Duration // async scheme: weight transfer to eval nodes
	Init          time.Duration
	Compile       time.Duration
}

// Total sums the breakdown.
func (b Breakdown) Total() time.Duration {
	return b.Train + b.Eval + b.TrainEvalComm + b.Init + b.Compile
}

// Shares returns each component as a fraction of the total.
func (b Breakdown) Shares() map[string]float64 {
	t := float64(b.Total())
	if t == 0 {
		return map[string]float64{}
	}
	return map[string]float64{
		"train":           float64(b.Train) / t,
		"eval":            float64(b.Eval) / t,
		"train_eval_comm": float64(b.TrainEvalComm) / t,
		"init":            float64(b.Init) / t,
		"compilation":     float64(b.Compile) / t,
	}
}

// TimeToTrain runs the accounting and returns the Figure 9 breakdown.
func TimeToTrain(c Config) Breakdown {
	if c.StepsToTarget <= 0 || c.EvalEvery <= 0 {
		panic("mlperf: StepsToTarget and EvalEvery must be positive")
	}
	bd := Breakdown{
		Train:   time.Duration(c.StepsToTarget) * c.StepTime,
		Init:    c.InitTime,
		Compile: c.CompileTime,
	}
	evals := c.StepsToTarget / c.EvalEvery
	perProtein := c.EvalPerProtein
	if !c.CachedEvalData {
		perProtein += c.DiskLoadPenalty
	}
	workers := c.EvalWorkers
	if workers <= 0 {
		workers = 1
	}
	rounds := (c.EvalProteins + workers - 1) / workers
	evalWall := time.Duration(rounds) * perProtein
	if c.AsyncEval {
		if c.EvalRanks <= 0 {
			panic("mlperf: AsyncEval requires EvalRanks > 0")
		}
		// Evaluation runs on dedicated nodes; training only pays the weight
		// transfer. Eval must keep up with the eval interval, or it becomes
		// the bottleneck ("evaluation time must be smaller than training
		// time", §3.4).
		interval := time.Duration(c.EvalEvery) * c.StepTime
		if evalWall > interval {
			// The training side stalls by the excess at every checkpoint.
			bd.Eval = time.Duration(evals) * (evalWall - interval)
		}
		bd.TrainEvalComm = time.Duration(evals) * c.WeightsXfer
	} else {
		// Synchronous: training stops, evaluates, restarts the pipelines.
		const barrier = 4 * time.Second
		bd.Eval = time.Duration(evals) * (evalWall + barrier)
	}
	return bd
}

// ReferenceRun is the Figure 9/10 "Ref" configuration: 256 H100 GPUs, no
// DAP, synchronous evaluation spread across all ranks, eval data on disk,
// unoptimized inference.
func ReferenceRun(stepTime time.Duration) Config {
	c := MLPerfDefaults()
	c.StepTime = stepTime
	c.TrainRanks = 256
	c.EvalWorkers = 256
	c.EvalPerProtein = 95 * time.Second
	c.CachedEvalData = false
	c.CompileTime = 0 // the reference neither compiles nor captures graphs
	return c
}

// ScaleFoldRun is the ScaleFold configuration at 2048 training ranks,
// with or without the asynchronous-evaluation optimization (Figure 9's two
// ScaleFold bars; Figure 10's 2080- and 2048-GPU rows).
func ScaleFoldRun(stepTime time.Duration, async bool) Config {
	c := MLPerfDefaults()
	c.StepTime = stepTime
	c.TrainRanks = 2048
	c.AsyncEval = async
	if async {
		c.EvalRanks = 32
		c.EvalWorkers = 32
		c.EvalPerProtein = 8 * time.Second
	}
	return c
}

// Fig10Row is one bar of Figure 10.
type Fig10Row struct {
	Label   string
	Paper   time.Duration
	Minutes float64
	Break   Breakdown
}
