package fabric_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/fabric/fakeworker"
	"repro/internal/scalefold"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/sweep"
)

// grid24 is the default 24-cell exploration grid at tiny rank counts and two
// steps — the repo's standard "small but real" sweep shape, fast enough for
// the -race -short CI job.
func grid24() service.JobSpec {
	return service.JobSpec{
		Profile:   "scalefold",
		Arches:    []string{"H100"},
		Ranks:     []int{32},
		DAPs:      []int{1, 2, 4, 8},
		Ablations: append([]string(nil), scalefold.Ablations...),
		Seeds:     1,
		Steps:     2,
	}
}

// grid8 shrinks the ablation axis for the chaos tests: 8 cells, enough for
// both workers to hold claimed batches when the chaos hook fires.
func grid8() service.JobSpec {
	js := grid24()
	js.Ablations = []string{"none", "zero-launch"}
	return js
}

// localCSV runs the job spec as a single-process sweep — fresh memo, fresh
// private store, no fabric — and returns the canonical result-table CSV plus
// the number of distinct fingerprints it simulated.
func localCSV(t *testing.T, js service.JobSpec) ([]byte, int) {
	t.Helper()
	s := scalefold.SweepSpec{
		Profile: js.Profile, Arches: js.Arches, Ranks: js.Ranks,
		DAPs: js.DAPs, Ablations: js.Ablations, Seeds: js.Seeds,
		Steps: js.Steps, Workers: 4,
		Cache: sweep.NewCache[cluster.Result](),
	}
	ms := store.NewMem[cluster.Result]()
	s.Store = ms
	rows, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := scalefold.SweepTable(rows).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), ms.Len()
}

// collect streams job id to completion, returning its rows by grid index.
func collect(t *testing.T, c *service.Client, id string) (map[int]service.RowEvent, service.DoneEvent) {
	t.Helper()
	rows := map[int]service.RowEvent{}
	done, err := c.Stream(id, func(ev service.RowEvent) error {
		if _, dup := rows[ev.Index]; dup {
			t.Fatalf("row %d streamed twice", ev.Index)
		}
		rows[ev.Index] = ev
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows, done
}

// streamedCSV reassembles the canonical result table from streamed row
// events — the byte-identity bridge between a fabric job and a local sweep.
func streamedCSV(t *testing.T, rows map[int]service.RowEvent, cells int) []byte {
	t.Helper()
	if len(rows) != cells {
		t.Fatalf("streamed %d rows, want %d", len(rows), cells)
	}
	tab := sweep.Table{Header: scalefold.SweepTable(nil).Header}
	for i := 0; i < cells; i++ {
		ev, ok := rows[i]
		if !ok {
			t.Fatalf("row %d missing from stream", i)
		}
		vals := make([]string, len(tab.Header))
		for k, h := range tab.Header {
			vals[k] = ev.Data[h]
		}
		tab.Append(vals...)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFabricByteIdenticalAcrossWorkerCounts is the fabric's determinism
// contract end to end: the 24-cell default sweep dispatched through a
// coordinator and {1, 2, 4} fake workers emits byte-for-byte the CSV a
// single-process `scalefold sweep` emits, every fingerprint lands in the
// shared store exactly once, and the fleet never simulates a cell twice.
func TestFabricByteIdenticalAcrossWorkerCounts(t *testing.T) {
	js := grid24()
	want, unique := localCSV(t, js)
	if unique != 24 {
		t.Fatalf("baseline simulated %d distinct fingerprints, want 24", unique)
	}
	for _, workers := range []int{1, 2, 4} {
		fl := fakeworker.Start(t, fakeworker.Options{Workers: workers})
		sims0 := scalefold.Simulations()
		st, err := fl.Client.Submit(js)
		if err != nil {
			t.Fatal(err)
		}
		rows, done := collect(t, fl.Client, st.ID)
		if done.State != service.StateDone || done.Error != "" {
			t.Fatalf("workers=%d: done event %+v", workers, done)
		}
		if done.Remote != int64(unique) {
			t.Fatalf("workers=%d: %d cells went remote, want %d", workers, done.Remote, unique)
		}
		if got := streamedCSV(t, rows, 24); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: fabric CSV differs from local sweep:\n%s\nvs\n%s", workers, got, want)
		}
		// Zero duplicate work: the fleet simulated each fingerprint exactly
		// once, and both the shared worker store and the coordinator's own
		// store hold each exactly once.
		if delta := scalefold.Simulations() - sims0; delta != int64(unique) {
			t.Fatalf("workers=%d: fleet ran %d simulations, want %d", workers, delta, unique)
		}
		if n := fl.Shared.Len(); n != unique {
			t.Fatalf("workers=%d: shared store holds %d keys, want %d", workers, n, unique)
		}
		if n := fl.Server.Store().Len(); n != unique {
			t.Fatalf("workers=%d: coordinator store holds %d keys, want %d", workers, n, unique)
		}
		fs := fl.Server.Coordinator().Fleet()
		if fs.Lost != 0 || fs.Reassigned != 0 || fs.Rejected != 0 || fs.Completed != int64(unique) {
			t.Fatalf("workers=%d: unexpected fleet counters on a healthy run: %+v", workers, fs)
		}
		fl.Close()
	}
}

// TestFabricSurvivesWorkerKill crashes one of two workers between claim and
// execute: loss detection must reassign its in-flight cells, the job must
// complete with byte-identical results, and no cell may be simulated twice
// (the kill lands before the victim simulates anything).
func TestFabricSurvivesWorkerKill(t *testing.T) {
	want, unique := localCSV(t, grid8())
	killed := make(chan struct{})
	var once sync.Once
	var fl *fakeworker.Fleet
	fl = fakeworker.Start(t, fakeworker.Options{
		Workers: 2,
		Fabric: fabric.Config{
			HeartbeatInterval: 10 * time.Millisecond,
			HeartbeatTimeout:  150 * time.Millisecond,
		},
		Configure: func(i int, w *fabric.Worker) {
			if i == 0 {
				// Crash on the first claimed cell, batch in hand.
				w.BeforeCell = func(string) {
					once.Do(func() {
						fl.Kill(0)
						close(killed)
					})
				}
			} else {
				// Hold the survivor's first cell until the crash happened, so
				// the victim always claims part of the job first.
				w.BeforeCell = func(string) { <-killed }
			}
		},
	})
	sims0 := scalefold.Simulations()
	st, err := fl.Client.Submit(grid8())
	if err != nil {
		t.Fatal(err)
	}
	rows, done := collect(t, fl.Client, st.ID)
	if done.State != service.StateDone || done.Error != "" {
		t.Fatalf("done event after worker loss: %+v", done)
	}
	if got := streamedCSV(t, rows, 8); !bytes.Equal(got, want) {
		t.Fatalf("post-reassignment CSV differs from local sweep:\n%s\nvs\n%s", got, want)
	}
	if delta := scalefold.Simulations() - sims0; delta != int64(unique) {
		t.Fatalf("fleet ran %d simulations after a crash, want %d (no duplicate work)", delta, unique)
	}
	fs := fl.Server.Coordinator().Fleet()
	if fs.Lost != 1 {
		t.Fatalf("lost workers = %d, want 1: %+v", fs.Lost, fs)
	}
	if fs.Reassigned == 0 {
		t.Fatalf("no cells were reassigned after the crash: %+v", fs)
	}
	if n := fl.Shared.Len(); n != unique {
		t.Fatalf("shared store holds %d keys, want %d", n, unique)
	}
}

// TestFabricJobCancelWithIdleFleet cancels a job whose cells are parked in
// remote dispatch with nobody to claim them: the cancel must abort the waits
// and settle the job as cancelled — not failed — with its cells withdrawn
// from the queue.
func TestFabricJobCancelWithIdleFleet(t *testing.T) {
	fl := fakeworker.Start(t, fakeworker.Options{Workers: 1})
	fl.Kill(0) // no live workers: dispatch blocks forever
	st, err := fl.Client.Submit(grid8())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, err := fl.Client.Job(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", j)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := fl.Client.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	_, done := collect(t, fl.Client, st.ID)
	if done.State != service.StateCancelled || done.Error != "" {
		t.Fatalf("done event = %+v; want a clean cancel (not failed)", done)
	}
	deadline = time.Now().Add(5 * time.Second)
	for fl.Server.Coordinator().Fleet().Pending != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cancelled job left cells queued: %+v", fl.Server.Coordinator().Fleet())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFabricStalledWorkerExpiresAndLateCompletesRejected stalls a worker
// (heartbeats paused, cell in hand) past the timeout: the fleet finishes the
// job without it, and every complete the zombie issues afterwards — directly
// against the coordinator and through its own resumed loop — is rejected
// idempotently without disturbing the settled results.
func TestFabricStalledWorkerExpiresAndLateCompletesRejected(t *testing.T) {
	want, unique := localCSV(t, grid8())
	stalled := make(chan struct{})
	release := make(chan struct{})
	fl := fakeworker.Start(t, fakeworker.Options{
		Workers: 2,
		Fabric: fabric.Config{
			HeartbeatInterval: 10 * time.Millisecond,
			HeartbeatTimeout:  150 * time.Millisecond,
		},
		Configure: func(i int, w *fabric.Worker) {
			if i == 0 {
				var once sync.Once
				w.BeforeCell = func(string) {
					once.Do(func() {
						w.SetHeartbeatsPaused(true)
						close(stalled)
						<-release
					})
				}
			} else {
				w.BeforeCell = func(string) { <-stalled }
			}
		},
	})
	sims0 := scalefold.Simulations()
	st, err := fl.Client.Submit(grid8())
	if err != nil {
		t.Fatal(err)
	}
	rows, done := collect(t, fl.Client, st.ID)
	if done.State != service.StateDone || done.Error != "" {
		t.Fatalf("done event with a stalled worker: %+v", done)
	}
	if got := streamedCSV(t, rows, 8); !bytes.Equal(got, want) {
		t.Fatalf("CSV after reassignment differs from local sweep:\n%s\nvs\n%s", got, want)
	}

	// The zombie was expired to finish the job; pin the idempotent-rejection
	// contract directly, deterministically, before letting it move.
	coord := fl.Server.Coordinator()
	deadID := fl.Worker(0).ID()
	keys := fl.Shared.Keys()
	if len(keys) != unique {
		t.Fatalf("shared store holds %d keys, want %d", len(keys), unique)
	}
	res, _ := fl.Shared.Get(keys[0])
	r1 := coord.Complete(deadID, keys[0], res, "")
	r2 := coord.Complete(deadID, keys[0], res, "")
	if r1.Accepted || r2.Accepted || r1 != r2 {
		t.Fatalf("late completes = %+v / %+v; want identical rejections", r1, r2)
	}

	// Release the zombie: its held batch resolves via shared-store hits (zero
	// new simulation) and its natural complete calls are rejected too.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for fl.Worker(0).Rejected() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("zombie's own late completes never rejected; fleet %+v", coord.Fleet())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if delta := scalefold.Simulations() - sims0; delta != int64(unique) {
		t.Fatalf("fleet ran %d simulations, want %d (zombie must not re-simulate)", delta, unique)
	}
	fs := coord.Fleet()
	if fs.Lost != 1 {
		t.Fatalf("lost workers = %d, want 1: %+v", fs.Lost, fs)
	}
	if fs.Rejected < 3 { // two direct probes + at least one from the zombie
		t.Fatalf("rejected completes = %d, want >= 3: %+v", fs.Rejected, fs)
	}
}
