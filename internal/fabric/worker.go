package fabric

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/scalefold"
	"repro/internal/store"
)

// Worker is the fleet side of the fabric: it registers with a coordinator,
// claims cell batches, executes them through the sweep engine's store-backed
// resolution path (shared-store hit, else simulate and write through), and
// reports each outcome. `scalefold worker` runs one; the fakeworker harness
// runs fleets of them in-process. Run is the only entry point; the exported
// fields configure it and must not change after Run starts.
type Worker struct {
	// Base is the coordinator root, e.g. "http://127.0.0.1:8823".
	Base string
	// Name labels the worker in fleet listings (hostname-pid style).
	Name string
	// Store, when non-nil, is the shared content-addressed result store: a
	// cell another worker already finished resolves as a hit with zero
	// simulation, and finished cells are written through for the rest of
	// the fleet. Point co-located workers at one shared directory via
	// store.OpenShared, or share a single Store value in-process.
	Store store.Store[cluster.Result]
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// Poll is the idle claim interval, and the retry backoff for transport
	// failures. <= 0 means 200ms.
	Poll time.Duration
	// OnStoreErr, when non-nil, receives shared-store write failures (the
	// worker still completes the cell from memory).
	OnStoreErr func(error)
	// Metrics, when non-nil, counts how claimed cells were satisfied
	// (Simulated vs StoreHits), exactly like a local sweep's metrics.
	Metrics *scalefold.SweepMetrics
	// BeforeCell, when non-nil, runs before each claimed cell executes —
	// the chaos hook the fakeworker harness uses to kill or stall a worker
	// between claim and complete. Production workers leave it nil.
	BeforeCell func(key string)
	// Log, when non-nil, receives structured diagnostics: claim/complete
	// failures with worker id and attempt count, re-registrations, rejected
	// results. Nil discards them (the loop's behavior is unchanged either
	// way — errors back off by Poll and retry).
	Log *slog.Logger

	mu sync.Mutex
	id string

	hbPaused  atomic.Bool
	completed atomic.Int64
	rejected  atomic.Int64
}

// ID returns the worker's current coordinator-assigned identity ("" before
// the first successful registration; it changes if the worker re-registers
// after being expired).
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// Completed returns how many cells this worker has successfully reported.
func (w *Worker) Completed() int64 { return w.completed.Load() }

// Rejected returns how many of this worker's complete calls the coordinator
// refused — late results for cells reassigned after the worker was declared
// lost.
func (w *Worker) Rejected() int64 { return w.rejected.Load() }

// SetHeartbeatsPaused stops (true) or resumes (false) the heartbeat loop's
// sends without stopping the worker — the fakeworker harness's "stalled
// worker" control. A worker paused past the coordinator's timeout is
// declared lost and must re-register (the claim loop does so automatically).
func (w *Worker) SetHeartbeatsPaused(paused bool) { w.hbPaused.Store(paused) }

func (w *Worker) http() *http.Client {
	if w.HTTP != nil {
		return w.HTTP
	}
	return http.DefaultClient
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 200 * time.Millisecond
}

func (w *Worker) logger() *slog.Logger {
	if w.Log != nil {
		return w.Log
	}
	return slog.New(slog.DiscardHandler)
}

// sleep waits d or until ctx is done, reporting whether the worker should
// keep running.
func sleep(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// register obtains a (new) worker identity, retrying transport failures
// until ctx is cancelled.
func (w *Worker) register(ctx context.Context) (RegisterResponse, error) {
	for {
		var resp RegisterResponse
		err := rpc(w.http(), w.Base, "/v1/workers/register", RegisterRequest{Name: w.Name}, &resp)
		if err == nil {
			w.mu.Lock()
			w.id = resp.WorkerID
			w.mu.Unlock()
			return resp, nil
		}
		if errors.Is(err, ErrClosed) || !sleep(ctx, w.poll()) {
			return RegisterResponse{}, ctx.Err()
		}
	}
}

// Run is the worker loop: register, heartbeat, claim, execute, complete —
// until ctx is cancelled. A coordinator that forgets the worker (missed
// heartbeats, restart) triggers transparent re-registration; transport
// failures back off by Poll and retry. Run returns nil on cancellation.
func (w *Worker) Run(ctx context.Context) error {
	reg, err := w.register(ctx)
	if err != nil {
		return err
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go w.heartbeatLoop(hbCtx, time.Duration(reg.HeartbeatMillis)*time.Millisecond)

	claimFails := 0
	for {
		if ctx.Err() != nil {
			return nil
		}
		var resp ClaimResponse
		err := rpc(w.http(), w.Base, "/v1/workers/claim", ClaimRequest{WorkerID: w.ID(), Max: reg.BatchSize}, &resp)
		switch {
		case errors.Is(err, ErrUnknownWorker):
			w.logger().Info("fabric worker re-registering: coordinator forgot us",
				"worker", w.ID(), "name", w.Name)
			if reg, err = w.register(ctx); err != nil {
				return nil
			}
			continue
		case err != nil:
			claimFails++
			w.logger().Warn("fabric claim failed, backing off",
				"worker", w.ID(), "attempt", claimFails, "backoff", w.poll(), "err", err)
			if !sleep(ctx, w.poll()) {
				return nil
			}
			continue
		}
		claimFails = 0
		if len(resp.Cells) == 0 {
			if !sleep(ctx, w.poll()) {
				return nil
			}
			continue
		}
		for _, cell := range resp.Cells {
			if w.BeforeCell != nil {
				w.BeforeCell(cell.Key)
			}
			if ctx.Err() != nil {
				// Killed mid-batch: abandon without simulating — the
				// coordinator's loss detection requeues the cells.
				return nil
			}
			w.executeCell(cell)
		}
	}
}

// executeCell runs one claimed cell and reports its outcome, including the
// measured execution time and how the cell was satisfied (shared-store hit
// vs simulation) so the coordinator's job trace carries true fleet timings.
func (w *Worker) executeCell(cell Cell) {
	cfg := scalefold.StepConfig{Name: cell.Name, Scenario: cell.Scenario}
	req := CompleteRequest{WorkerID: w.ID(), Key: cell.Key}
	if got := cfg.Fingerprint(); got != cell.Key {
		// A result stored under the wrong key would poison the shared
		// store; refuse and let the coordinator retry elsewhere.
		req.Err = "fingerprint mismatch: claimed " + cell.Key + ", scenario encodes " + got
	} else {
		// Run against a per-cell probe so the hit/miss outcome of THIS cell
		// is separable from the worker's lifetime totals, then fold it in.
		var probe scalefold.SweepMetrics
		t0 := time.Now()
		req.Result = cfg.RunVia(w.Store, w.OnStoreErr, &probe)
		req.ElapsedMillis = float64(time.Since(t0)) / float64(time.Millisecond)
		if probe.StoreHits.Load() > 0 {
			req.Source = "store-hit"
		} else {
			req.Source = "simulated"
		}
		if w.Metrics != nil {
			w.Metrics.Simulated.Add(probe.Simulated.Load())
			w.Metrics.StoreHits.Add(probe.StoreHits.Load())
			w.Metrics.MemoHits.Add(probe.MemoHits.Load())
			w.Metrics.Remote.Add(probe.Remote.Load())
		}
	}
	var resp CompleteResponse
	if err := rpc(w.http(), w.Base, "/v1/workers/complete", req, &resp); err != nil {
		// Coordinator gone or transport down; loss detection requeues.
		w.logger().Warn("fabric complete failed, abandoning cell to loss detection",
			"worker", w.ID(), "cell", cell.Key, "err", err)
		return
	}
	switch {
	case !resp.Accepted:
		w.rejected.Add(1)
		w.logger().Info("fabric complete rejected",
			"worker", w.ID(), "cell", cell.Key, "reason", resp.Reason)
	case req.Err == "":
		w.completed.Add(1)
	}
}

// heartbeatLoop beats at the coordinator-advertised interval until ctx is
// done, skipping sends while paused. An ok=false answer (coordinator forgot
// us) is left for the claim loop, which re-registers on its next call.
func (w *Worker) heartbeatLoop(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if w.hbPaused.Load() {
				continue
			}
			var resp HeartbeatResponse
			rpc(w.http(), w.Base, "/v1/workers/heartbeat", HeartbeatRequest{WorkerID: w.ID()}, &resp)
		}
	}
}
