package fabric

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/scalefold"
	"repro/internal/store"
)

// ErrClosed reports dispatch attempted on a closed coordinator.
var ErrClosed = errors.New("fabric: coordinator closed")

// ErrUnknownWorker reports a claim or heartbeat from a worker ID the
// coordinator does not know — never registered, expired for missed
// heartbeats, or from before a coordinator restart. The worker's recovery
// is to re-register.
var ErrUnknownWorker = errors.New("fabric: unknown worker")

// task is one fingerprint-identified cell moving through the coordinator:
// pending (queued), assigned (claimed by a worker), or settled (done=true,
// at which point it leaves the map — the shared store is the durable memo).
type task struct {
	key      string
	cfg      scalefold.StepConfig
	assigned string // worker ID; "" while pending
	retries  int
	waiters  int
	done     bool
	res      cluster.Result
	err      error
	doneCh   chan struct{}

	// Lifecycle instants for the cell report; written under the coordinator
	// lock before doneCh closes, read by waiters after it.
	enqueued  time.Time
	claimedAt time.Time
	settledAt time.Time
	owner     string        // worker that settled the cell
	source    string        // "store-hit" or "simulated" (worker-reported)
	elapsed   time.Duration // worker-measured execution time
}

// CellReport is the coordinator's record of one settled cell's lifecycle —
// who ran it, how it was satisfied, and when each stage happened. Jobs feed
// these into their trace so the fleet timeline shows true worker-side
// execution windows, not RPC-bracketed guesses.
type CellReport struct {
	Key      string
	Owner    string // settling worker ID; "coordinator" for a store fast-path hit
	Source   string // "store-hit" or "simulated"
	Enqueued time.Time
	Claimed  time.Time
	Settled  time.Time
	Elapsed  time.Duration // worker-measured execution time (0 if unreported)
	Retries  int
}

// fleetMetrics bundles the coordinator's observability series. Every field is
// nil when the Config carried no Registry, and every write is nil-safe, so an
// uninstrumented coordinator pays only nil checks.
type fleetMetrics struct {
	reg        *obs.Registry
	pending    *obs.Gauge
	workers    *obs.Gauge
	completed  *obs.Counter
	reassigned *obs.Counter
	rejected   *obs.Counter
	lost       *obs.Counter
	queueWait  *obs.Histogram
}

func newFleetMetrics(r *obs.Registry) fleetMetrics {
	return fleetMetrics{
		reg:        r,
		pending:    r.Gauge("scalefold_fabric_pending_cells", "Cells queued and waiting for a worker claim."),
		workers:    r.Gauge("scalefold_fabric_workers", "Live registered workers."),
		completed:  r.Counter("scalefold_fabric_completed_total", "Cells settled by the fleet."),
		reassigned: r.Counter("scalefold_fabric_reassigned_total", "Loss- or error-triggered cell requeues."),
		rejected:   r.Counter("scalefold_fabric_rejected_total", "Refused late or stale complete calls."),
		lost:       r.Counter("scalefold_fabric_lost_workers_total", "Workers expired for missed heartbeats."),
		queueWait:  r.Histogram("scalefold_fabric_queue_wait_seconds", "Time cells spend queued before a claim.", nil),
	}
}

// workerInflight mints (or fetches) the per-worker in-flight gauge.
func (m fleetMetrics) workerInflight(id string) *obs.Gauge {
	return m.reg.Gauge("scalefold_fabric_worker_inflight",
		"Cells currently assigned to the worker.", obs.Label{Key: "worker", Value: id})
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id          string
	name        string
	lastBeat    time.Time
	inflight    map[string]*task
	completed   int64
	simulated   int64
	storeHits   int64
	inflightGge *obs.Gauge // per-worker in-flight gauge; nil when uninstrumented
}

// Coordinator owns the dispatch state of the sweep fabric: the fleet
// registry, the fingerprint-deduplicated task queue, and the shared result
// store it settles completed cells into. All methods are safe for concurrent
// use. Create with NewCoordinator; Close fails outstanding dispatches.
type Coordinator struct {
	cfg Config
	st  store.Store[cluster.Result] // shared result store; may be nil

	mu      sync.Mutex
	seq     int
	workers map[string]*workerState
	tasks   map[string]*task // by fingerprint; live (unsettled) tasks only
	queue   []*task          // pending tasks, FIFO with retry priority
	closed  bool

	completed  int64
	reassigned int64
	rejected   int64
	lost       int64

	met fleetMetrics

	stopExpiry chan struct{}
}

// NewCoordinator returns a running coordinator settling results into st
// (which may be nil: results then live only in the completing job's memo).
// Unless cfg.Now is set, a background loop sweeps for lost workers every
// half heartbeat-timeout; with cfg.Now set, expiry runs only inside
// coordinator calls and explicit ExpireNow — deterministic for tests.
func NewCoordinator(cfg Config, st store.Store[cluster.Result]) *Coordinator {
	c := &Coordinator{
		cfg:        cfg.withDefaults(),
		st:         st,
		workers:    map[string]*workerState{},
		tasks:      map[string]*task{},
		stopExpiry: make(chan struct{}),
	}
	c.met = newFleetMetrics(c.cfg.Registry)
	if c.cfg.Now == nil {
		c.cfg.Now = time.Now
		go func() {
			t := time.NewTicker(c.cfg.HeartbeatTimeout / 2)
			defer t.Stop()
			for {
				select {
				case <-c.stopExpiry:
					return
				case <-t.C:
					c.ExpireNow()
				}
			}
		}()
	}
	return c
}

// Close fails every outstanding task and dispatch with ErrClosed, forgets
// the fleet and stops the expiry loop. Safe to call once; later Execute,
// Claim and Complete calls are refused.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.stopExpiry)
	for key, t := range c.tasks {
		t.done, t.err = true, ErrClosed
		close(t.doneCh)
		delete(c.tasks, key)
	}
	c.queue = nil
	c.workers = map[string]*workerState{}
	c.mu.Unlock()
}

// RegisterWorker admits a worker to the fleet and returns its identity plus
// the protocol parameters it should run with.
func (c *Coordinator) RegisterWorker(name string) (RegisterResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return RegisterResponse{}, ErrClosed
	}
	c.expireLocked(c.cfg.Now())
	c.seq++
	w := &workerState{
		id:       fmt.Sprintf("w-%06d", c.seq),
		name:     name,
		lastBeat: c.cfg.Now(),
		inflight: map[string]*task{},
	}
	w.inflightGge = c.met.workerInflight(w.id)
	c.workers[w.id] = w
	c.met.workers.Set(int64(len(c.workers)))
	c.cfg.logger().Info("fabric worker registered", "worker", w.id, "name", name)
	return RegisterResponse{
		WorkerID:               w.id,
		HeartbeatMillis:        c.cfg.HeartbeatInterval.Milliseconds(),
		HeartbeatTimeoutMillis: c.cfg.HeartbeatTimeout.Milliseconds(),
		BatchSize:              c.cfg.BatchSize,
	}, nil
}

// Heartbeat records worker liveness. ErrUnknownWorker tells the worker to
// re-register.
func (c *Coordinator) Heartbeat(workerID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.expireLocked(c.cfg.Now())
	w, ok := c.workers[workerID]
	if !ok {
		return ErrUnknownWorker
	}
	w.lastBeat = c.cfg.Now()
	return nil
}

// Claim hands the worker up to max pending cells (capped at the configured
// BatchSize; max <= 0 means BatchSize). Cells whose rendezvous-hashed home
// is the claimant are preferred — steady fleets get stable fingerprint
// partitioning — and the queue head fills the rest, so idle workers steal
// rather than starve. A claim counts as a heartbeat.
func (c *Coordinator) Claim(workerID string, max int) ([]Cell, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	c.expireLocked(c.cfg.Now())
	w, ok := c.workers[workerID]
	if !ok {
		return nil, ErrUnknownWorker
	}
	w.lastBeat = c.cfg.Now()
	if max <= 0 || max > c.cfg.BatchSize {
		max = c.cfg.BatchSize
	}
	var picked []*task
	// Pass 1: cells homed on this worker by rendezvous hash.
	if len(c.workers) > 1 {
		for _, t := range c.queue {
			if len(picked) >= max {
				break
			}
			if c.homeLocked(t.key) == workerID {
				picked = append(picked, t)
			}
		}
	}
	// Pass 2: fill from the queue head (oldest first).
	for _, t := range c.queue {
		if len(picked) >= max {
			break
		}
		already := false
		for _, p := range picked {
			if p == t {
				already = true
				break
			}
		}
		if !already {
			picked = append(picked, t)
		}
	}
	if len(picked) == 0 {
		return nil, nil
	}
	rest := c.queue[:0]
	for _, t := range c.queue {
		keep := true
		for _, p := range picked {
			if p == t {
				keep = false
				break
			}
		}
		if keep {
			rest = append(rest, t)
		}
	}
	c.queue = rest
	now := c.cfg.Now()
	cells := make([]Cell, len(picked))
	for i, t := range picked {
		t.assigned = workerID
		t.claimedAt = now
		if !t.enqueued.IsZero() {
			c.met.queueWait.Observe(now.Sub(t.enqueued).Seconds())
		}
		w.inflight[t.key] = t
		cells[i] = Cell{Key: t.key, Name: t.cfg.Name, Scenario: t.cfg.Scenario}
	}
	c.met.pending.Set(int64(len(c.queue)))
	w.inflightGge.Set(int64(len(w.inflight)))
	return cells, nil
}

// homeLocked returns the live worker that rendezvous-hashes highest for the
// key — the cell's stable home while the fleet is steady.
func (c *Coordinator) homeLocked(key string) string {
	var best string
	var bestScore uint64
	for id := range c.workers {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{0})
		h.Write([]byte(id))
		if s := h.Sum64(); best == "" || s > bestScore || (s == bestScore && id < best) {
			best, bestScore = id, s
		}
	}
	return best
}

// Complete settles one claimed cell; see CompleteCell for the semantics.
// It keeps the pre-observability signature for callers without timing data.
func (c *Coordinator) Complete(workerID, key string, res cluster.Result, workerErr string) CompleteResponse {
	return c.CompleteCell(CompleteRequest{WorkerID: workerID, Key: key, Result: res, Err: workerErr})
}

// CompleteCell settles one claimed cell from its full wire request, including
// the worker-reported execution timing and source that feed the job trace.
// Rejections are idempotent and mutate nothing: an unknown or expired worker
// (its cells were reassigned), a cell the coordinator no longer tracks
// (already settled by the reassigned run), or a cell tracked but assigned
// elsewhere all report Accepted=false. A worker-reported execution error
// (req.Err) requeues the cell against its retry budget.
func (c *Coordinator) CompleteCell(req CompleteRequest) CompleteResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return CompleteResponse{Accepted: false, Reason: "coordinator closed"}
	}
	c.expireLocked(c.cfg.Now())
	w, ok := c.workers[req.WorkerID]
	if !ok {
		c.rejected++
		c.met.rejected.Inc()
		return CompleteResponse{Accepted: false, Reason: "unknown or expired worker (cell reassigned)"}
	}
	w.lastBeat = c.cfg.Now()
	t, ok := c.tasks[req.Key]
	if !ok {
		c.rejected++
		c.met.rejected.Inc()
		return CompleteResponse{Accepted: false, Reason: "cell already settled"}
	}
	if t.assigned != req.WorkerID {
		c.rejected++
		c.met.rejected.Inc()
		return CompleteResponse{Accepted: false, Reason: "cell reassigned to another worker"}
	}
	delete(w.inflight, req.Key)
	w.inflightGge.Set(int64(len(w.inflight)))
	if req.Err != "" {
		c.requeueLocked(t, fmt.Errorf("fabric: worker %s failed cell %s: %s", req.WorkerID, req.Key, req.Err))
		return CompleteResponse{Accepted: true, Reason: "requeued after worker-reported error"}
	}
	w.completed++
	c.completed++
	c.met.completed.Inc()
	if req.Source == "store-hit" {
		w.storeHits++
	} else {
		w.simulated++
	}
	t.owner = req.WorkerID
	t.source = req.Source
	if t.source == "" {
		t.source = "simulated"
	}
	t.elapsed = time.Duration(req.ElapsedMillis * float64(time.Millisecond))
	c.settleLocked(t, req.Result)
	return CompleteResponse{Accepted: true}
}

// settleLocked finishes a task with its result: write-through to the shared
// store (skipped when the store already holds the key — workers sharing the
// store have usually written it already), wake every waiter, and drop the
// task from the live map.
func (c *Coordinator) settleLocked(t *task, res cluster.Result) {
	if c.st != nil {
		if _, ok := c.st.Get(t.key); !ok {
			c.st.Put(t.key, res) // best-effort: waiters get res regardless
		}
	}
	t.done, t.res = true, res
	t.settledAt = c.cfg.Now()
	close(t.doneCh)
	delete(c.tasks, t.key)
}

// requeueLocked returns a lost or failed task to the queue head, failing it
// (and every job waiting on it) once the retry budget is exhausted.
func (c *Coordinator) requeueLocked(t *task, cause error) {
	t.assigned = ""
	t.claimedAt = time.Time{}
	t.retries++
	if t.retries > c.cfg.MaxRetries {
		t.done = true
		t.err = fmt.Errorf("fabric: cell %s failed %d times, retry budget exhausted: %w", t.key, t.retries, cause)
		t.settledAt = c.cfg.Now()
		close(t.doneCh)
		delete(c.tasks, t.key)
		c.cfg.logger().Error("fabric cell retry budget exhausted",
			"cell", t.key, "retries", t.retries, "cause", cause)
		return
	}
	c.reassigned++
	c.met.reassigned.Inc()
	c.queue = append([]*task{t}, c.queue...)
	c.met.pending.Set(int64(len(c.queue)))
}

// ExpireNow runs loss detection immediately: workers silent past the
// heartbeat timeout are dropped and their in-flight cells requeued.
func (c *Coordinator) ExpireNow() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.expireLocked(c.cfg.Now())
	}
}

func (c *Coordinator) expireLocked(now time.Time) {
	for id, w := range c.workers {
		if now.Sub(w.lastBeat) <= c.cfg.HeartbeatTimeout {
			continue
		}
		delete(c.workers, id)
		c.lost++
		c.met.lost.Inc()
		c.met.workers.Set(int64(len(c.workers)))
		w.inflightGge.Set(0)
		c.cfg.logger().Warn("fabric worker lost",
			"worker", id, "name", w.name,
			"silent_for", now.Sub(w.lastBeat), "inflight", len(w.inflight))
		for _, t := range w.inflight {
			c.requeueLocked(t, fmt.Errorf("fabric: worker %s (%s) lost: no heartbeat for %v", id, w.name, now.Sub(w.lastBeat)))
		}
	}
}

// Execute dispatches one cell to the worker fleet and blocks until a worker
// settles it, the retry budget is exhausted, the coordinator closes, or ctx
// is cancelled. Concurrent Executes of the same fingerprint share one task
// (fabric-level singleflight), and a cell already in the shared store is
// served without dispatch.
func (c *Coordinator) Execute(ctx context.Context, cfg scalefold.StepConfig) (cluster.Result, error) {
	res, _, err := c.ExecuteReport(ctx, cfg)
	return res, err
}

// ExecuteReport is Execute plus the cell's lifecycle report: who settled it,
// how, and when each stage happened — the data a job trace renders as spans.
// The report is meaningful only when err is nil.
func (c *Coordinator) ExecuteReport(ctx context.Context, cfg scalefold.StepConfig) (cluster.Result, CellReport, error) {
	key := cfg.Fingerprint()
	if c.st != nil {
		if r, ok := c.st.Get(key); ok && r.Goodput > 0 {
			now := c.cfg.Now()
			return r, CellReport{
				Key: key, Owner: "coordinator", Source: "store-hit",
				Enqueued: now, Claimed: now, Settled: now,
			}, nil
		}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return cluster.Result{}, CellReport{}, ErrClosed
	}
	c.expireLocked(c.cfg.Now())
	t, ok := c.tasks[key]
	if !ok {
		t = &task{key: key, cfg: cfg, doneCh: make(chan struct{}), enqueued: c.cfg.Now()}
		c.tasks[key] = t
		c.queue = append(c.queue, t)
		c.met.pending.Set(int64(len(c.queue)))
	}
	t.waiters++
	c.mu.Unlock()

	select {
	case <-t.doneCh:
		c.mu.Lock()
		t.waiters--
		c.mu.Unlock()
		// Settled task fields are immutable after doneCh closes.
		return t.res, CellReport{
			Key: key, Owner: t.owner, Source: t.source,
			Enqueued: t.enqueued, Claimed: t.claimedAt, Settled: t.settledAt,
			Elapsed: t.elapsed, Retries: t.retries,
		}, t.err
	case <-ctx.Done():
		c.mu.Lock()
		t.waiters--
		// Nobody else wants the cell and no worker holds it: withdraw it so
		// the fleet doesn't burn work on a fully cancelled job. An assigned
		// cell is left to finish — its result still lands in the store.
		if t.waiters == 0 && !t.done && t.assigned == "" {
			delete(c.tasks, key)
			rest := c.queue[:0]
			for _, q := range c.queue {
				if q != t {
					rest = append(rest, q)
				}
			}
			c.queue = rest
			c.met.pending.Set(int64(len(c.queue)))
		}
		c.mu.Unlock()
		return cluster.Result{}, CellReport{}, ctx.Err()
	}
}

// Fleet snapshots the coordinator for GET /v1/workers.
func (c *Coordinator) Fleet() FleetStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.expireLocked(c.cfg.Now())
	}
	fs := FleetStatus{
		Pending:    len(c.queue),
		Completed:  c.completed,
		Reassigned: c.reassigned,
		Rejected:   c.rejected,
		Lost:       c.lost,
	}
	for _, w := range c.workers {
		fs.Inflight += len(w.inflight)
		fs.Simulated += w.simulated
		fs.StoreHits += w.storeHits
		fs.Workers = append(fs.Workers, WorkerStatus{
			ID: w.id, Name: w.name, LastBeat: w.lastBeat,
			Inflight: len(w.inflight), Completed: w.completed,
			Simulated: w.simulated, StoreHits: w.storeHits,
		})
	}
	// Stable listing order for tests and operators.
	for i := 1; i < len(fs.Workers); i++ {
		for j := i; j > 0 && fs.Workers[j-1].ID > fs.Workers[j].ID; j-- {
			fs.Workers[j-1], fs.Workers[j] = fs.Workers[j], fs.Workers[j-1]
		}
	}
	return fs
}
