// Package fabric turns the sweep service into a distributed service: a
// coordinator that partitions a job's cells by their canonical v3/v4
// scenario fingerprint and dispatches them to a fleet of registered workers
// over the existing HTTP wire format, plus the worker loop that claims cell
// batches, runs them through the sweep engine, and writes results to a
// content-addressed shared result store — so any worker's finished cell is
// every worker's (and the coordinator's) memo hit.
//
// The dataflow is pull-based: workers register (POST /v1/workers/register),
// then loop claiming batches (POST /v1/workers/claim), executing them, and
// reporting results (POST /v1/workers/complete), heartbeating in between
// (POST /v1/workers/heartbeat). The coordinator prefers handing a cell to
// its rendezvous-hashed home worker — stable fingerprint-based partitioning
// while the fleet is steady — but any idle worker can steal from the head of
// the queue, so a slow worker never wedges a job.
//
// Failure semantics are the perturbation layer's restart model applied to
// ourselves: a worker that misses heartbeats past the timeout is declared
// lost, its in-flight cells are requeued (bounded by MaxRetries per cell),
// and any late complete call it issues afterwards is rejected idempotently —
// the reassigned run's result stands, and because results are deterministic
// functions of the fingerprint, either copy is byte-identical anyway.
package fabric

import (
	"log/slog"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// Config sizes the coordinator's fleet protocol.
type Config struct {
	// HeartbeatInterval is advertised to workers at registration; they beat
	// at this period. <= 0 means 2s.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares a worker lost when its last heartbeat (or
	// claim, or complete — any authenticated call counts) is older than
	// this. <= 0 means 3 × HeartbeatInterval.
	HeartbeatTimeout time.Duration
	// MaxRetries bounds how many times one cell may be reassigned after
	// worker loss (or a worker-reported execution error) before the cell —
	// and with it the job waiting on it — fails. <= 0 means 3.
	MaxRetries int
	// BatchSize is the maximum cells handed out per claim. <= 0 means 4.
	BatchSize int
	// Now overrides the clock (tests). Setting it also disables the
	// background expiry loop: loss detection then runs only inside
	// coordinator calls and explicit ExpireNow, so tests control time
	// completely.
	Now func() time.Time
	// Registry, when non-nil, receives the coordinator's observability
	// series (queue depth, per-worker in-flight, RPC latencies, loss
	// counters). Nil leaves the fabric uninstrumented.
	Registry *obs.Registry
	// Log, when non-nil, receives structured coordinator diagnostics
	// (worker loss, retry exhaustion). Nil discards them.
	Log *slog.Logger
}

// logger returns the configured structured logger, or a discarding one.
func (c Config) logger() *slog.Logger {
	if c.Log != nil {
		return c.Log
	}
	return slog.New(slog.DiscardHandler)
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 3 * c.HeartbeatInterval
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 4
	}
	return c
}

// Cell is one dispatchable unit of work on the wire: the canonical scenario
// descriptor plus its fingerprint, which doubles as the task identity — the
// coordinator deduplicates by it, and the shared store is keyed by it.
type Cell struct {
	// Key is the cell's canonical scenario fingerprint (v3:/v4: prefixed).
	Key string `json:"key"`
	// Name is the display label the submitting job gave the cell.
	Name string `json:"name,omitempty"`
	// Scenario is the full canonical descriptor; the worker re-derives the
	// fingerprint from it and refuses a mismatch, so a corrupted dispatch
	// can never store a result under the wrong key.
	Scenario scenario.Scenario `json:"scenario"`
}

// RegisterRequest is the wire form of POST /v1/workers/register.
type RegisterRequest struct {
	// Name is a human-readable worker label (hostname-pid style); it need
	// not be unique — the coordinator mints the unique WorkerID.
	Name string `json:"name,omitempty"`
}

// RegisterResponse hands the worker its identity and the fleet protocol
// parameters, so workers need no configuration beyond the coordinator URL.
type RegisterResponse struct {
	WorkerID               string `json:"worker_id"`
	HeartbeatMillis        int64  `json:"heartbeat_ms"`
	BatchSize              int    `json:"batch_size"`
	HeartbeatTimeoutMillis int64  `json:"heartbeat_timeout_ms"`
}

// ClaimRequest is the wire form of POST /v1/workers/claim.
type ClaimRequest struct {
	WorkerID string `json:"worker_id"`
	// Max bounds the batch; the coordinator additionally caps it at its
	// configured BatchSize. <= 0 means BatchSize.
	Max int `json:"max,omitempty"`
}

// ClaimResponse carries the claimed batch; empty Cells means "nothing
// pending, poll again".
type ClaimResponse struct {
	Cells []Cell `json:"cells"`
}

// HeartbeatRequest is the wire form of POST /v1/workers/heartbeat.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
}

// HeartbeatResponse acknowledges liveness; OK false tells the worker the
// coordinator no longer knows it (expired or restarted) and it must
// re-register before claiming again.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
}

// CompleteRequest is the wire form of POST /v1/workers/complete: one cell's
// outcome. Err non-empty reports a worker-side execution failure (the cell
// is requeued against the retry budget); otherwise Result carries the
// simulated (or shared-store-served) result.
type CompleteRequest struct {
	WorkerID string         `json:"worker_id"`
	Key      string         `json:"key"`
	Result   cluster.Result `json:"result"`
	Err      string         `json:"err,omitempty"`
	// ElapsedMillis is the worker-measured execution time of the cell, so
	// the coordinator's job trace shows true fleet timings rather than
	// RPC-bracketed estimates. Zero from pre-observability workers.
	ElapsedMillis float64 `json:"elapsed_ms,omitempty"`
	// Source reports how the worker satisfied the cell: "store-hit" (shared
	// store already held it) or "simulated". Empty from older workers counts
	// as simulated.
	Source string `json:"source,omitempty"`
}

// CompleteResponse reports whether the outcome was accepted. A rejected
// complete (unknown/expired worker, or a cell already settled by its
// reassigned run) is idempotent: repeating it yields the same rejection and
// mutates nothing.
type CompleteResponse struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// WorkerStatus is one worker's row in the fleet listing (GET /v1/workers).
type WorkerStatus struct {
	ID        string    `json:"id"`
	Name      string    `json:"name,omitempty"`
	LastBeat  time.Time `json:"last_beat"`
	Inflight  int       `json:"inflight"`
	Completed int64     `json:"completed"`
	// Simulated and StoreHits split Completed by how the worker satisfied
	// each cell (worker-reported Source on complete).
	Simulated int64 `json:"simulated"`
	StoreHits int64 `json:"store_hits"`
}

// FleetStatus is the wire form of GET /v1/workers: the live fleet plus the
// coordinator's queue depths and lifetime counters.
type FleetStatus struct {
	Workers []WorkerStatus `json:"workers"`
	// Pending counts cells waiting for a claim; Inflight cells currently
	// assigned to a worker.
	Pending  int `json:"pending"`
	Inflight int `json:"inflight"`
	// Completed counts cells settled by the fleet since coordinator start;
	// Reassigned counts loss-triggered requeues; Rejected counts refused
	// late/stale complete calls.
	Completed  int64 `json:"completed"`
	Reassigned int64 `json:"reassigned"`
	Rejected   int64 `json:"rejected"`
	Lost       int64 `json:"lost_workers"`
	// Simulated and StoreHits aggregate the per-worker split fleet-wide.
	Simulated int64 `json:"simulated"`
	StoreHits int64 `json:"store_hits"`
}
