package fabric

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/scalefold"
	"repro/internal/store"
)

// clock is a hand-driven time source: with Config.Now set, the coordinator
// runs no background expiry loop, so tests control loss detection completely.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testCoordinator(t *testing.T, cfg Config, st store.Store[cluster.Result]) (*Coordinator, *clock) {
	t.Helper()
	ck := &clock{t: time.Unix(1000, 0)}
	cfg.Now = ck.now
	c := NewCoordinator(cfg, st)
	t.Cleanup(c.Close)
	return c, ck
}

// execute dispatches cfg on a goroutine and returns a channel carrying the
// outcome, plus a wait for the task to be queued.
func execute(c *Coordinator, ctx context.Context, cfg scalefold.StepConfig) <-chan struct {
	res cluster.Result
	err error
} {
	ch := make(chan struct {
		res cluster.Result
		err error
	}, 1)
	go func() {
		r, err := c.Execute(ctx, cfg)
		ch <- struct {
			res cluster.Result
			err error
		}{r, err}
	}()
	return ch
}

func waitPending(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if fs := c.Fleet(); fs.Pending == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d pending cells: %+v", n, c.Fleet())
}

func TestCoordinatorSingleflightAndStoreFastPath(t *testing.T) {
	st := store.NewMem[cluster.Result]()
	c, _ := testCoordinator(t, Config{}, st)
	cfg := scalefold.ReferenceConfig("H100", 32)
	want := cluster.Result{Goodput: 0.5, MedianStep: time.Second}

	// Two concurrent dispatches of the same fingerprint share one task.
	a := execute(c, context.Background(), cfg)
	b := execute(c, context.Background(), cfg)
	waitPending(t, c, 1)

	reg, err := c.RegisterWorker("w")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := c.Claim(reg.WorkerID, 0)
	if err != nil || len(cells) != 1 {
		t.Fatalf("Claim = %v, %v; want the one deduplicated cell", cells, err)
	}
	if cells[0].Key != cfg.Fingerprint() {
		t.Fatalf("claimed key %q, want %q", cells[0].Key, cfg.Fingerprint())
	}
	if resp := c.Complete(reg.WorkerID, cells[0].Key, want, ""); !resp.Accepted {
		t.Fatalf("Complete rejected: %+v", resp)
	}
	for _, ch := range []<-chan struct {
		res cluster.Result
		err error
	}{a, b} {
		out := <-ch
		if out.err != nil || out.res != want {
			t.Fatalf("Execute = %+v, %v; want shared result", out.res, out.err)
		}
	}
	if got, ok := st.Get(cfg.Fingerprint()); !ok || got != want {
		t.Fatalf("store after settle = %+v, %v", got, ok)
	}

	// A settled fingerprint is served from the store without dispatch.
	out := <-execute(c, context.Background(), cfg)
	if out.err != nil || out.res != want {
		t.Fatalf("store fast path = %+v, %v", out.res, out.err)
	}
	if fs := c.Fleet(); fs.Pending != 0 || fs.Completed != 1 {
		t.Fatalf("fleet after fast path: %+v (want no new dispatch)", fs)
	}
}

func TestCoordinatorRetryBudgetExhaustion(t *testing.T) {
	c, _ := testCoordinator(t, Config{MaxRetries: 1}, nil)
	cfg := scalefold.ReferenceConfig("H100", 32)
	outc := execute(c, context.Background(), cfg)
	waitPending(t, c, 1)
	reg, err := c.RegisterWorker("flaky")
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 2; attempt++ {
		cells, err := c.Claim(reg.WorkerID, 0)
		if err != nil || len(cells) != 1 {
			t.Fatalf("attempt %d: Claim = %v, %v", attempt, cells, err)
		}
		resp := c.Complete(reg.WorkerID, cells[0].Key, cluster.Result{}, "boom")
		if !resp.Accepted {
			t.Fatalf("attempt %d: worker-error complete must be accepted (as a requeue): %+v", attempt, resp)
		}
	}
	out := <-outc
	if out.err == nil || !strings.Contains(out.err.Error(), "retry budget exhausted") {
		t.Fatalf("Execute err = %v; want retry exhaustion", out.err)
	}
	if fs := c.Fleet(); fs.Reassigned != 1 || fs.Completed != 0 {
		t.Fatalf("fleet after exhaustion: %+v", fs)
	}
}

func TestCoordinatorExpiryReassignsAndRejectsLateCompletes(t *testing.T) {
	cfg := Config{HeartbeatInterval: time.Second, HeartbeatTimeout: 3 * time.Second}
	c, ck := testCoordinator(t, cfg, store.NewMem[cluster.Result]())
	step := scalefold.ReferenceConfig("H100", 32)
	want := cluster.Result{Goodput: 0.7, MedianStep: 2 * time.Second}
	outc := execute(c, context.Background(), step)
	waitPending(t, c, 1)

	w1, err := c.RegisterWorker("doomed")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := c.Claim(w1.WorkerID, 0)
	if err != nil || len(cells) != 1 {
		t.Fatalf("Claim = %v, %v", cells, err)
	}
	key := cells[0].Key

	// Silence past the timeout: the worker is lost, its cell requeued.
	ck.advance(cfg.HeartbeatTimeout + time.Second)
	c.ExpireNow()
	if fs := c.Fleet(); fs.Lost != 1 || fs.Pending != 1 || fs.Reassigned != 1 {
		t.Fatalf("fleet after expiry: %+v", fs)
	}
	if err := c.Heartbeat(w1.WorkerID); err != ErrUnknownWorker {
		t.Fatalf("heartbeat from expired worker = %v, want ErrUnknownWorker", err)
	}

	w2, err := c.RegisterWorker("successor")
	if err != nil {
		t.Fatal(err)
	}
	if cells, err = c.Claim(w2.WorkerID, 0); err != nil || len(cells) != 1 || cells[0].Key != key {
		t.Fatalf("reassigned claim = %v, %v", cells, err)
	}

	// The dead worker's late complete is rejected idempotently: twice the
	// same answer, nothing mutated.
	r1 := c.Complete(w1.WorkerID, key, cluster.Result{Goodput: 9}, "")
	r2 := c.Complete(w1.WorkerID, key, cluster.Result{Goodput: 9}, "")
	if r1.Accepted || r2.Accepted || r1 != r2 {
		t.Fatalf("late completes = %+v / %+v; want identical rejections", r1, r2)
	}

	if resp := c.Complete(w2.WorkerID, key, want, ""); !resp.Accepted {
		t.Fatalf("successor complete rejected: %+v", resp)
	}
	if out := <-outc; out.err != nil || out.res != want {
		t.Fatalf("Execute = %+v, %v; want the successor's result", out.res, out.err)
	}
	// After settlement the same stale complete flips to "already settled" —
	// still rejected, still mutating nothing.
	if resp := c.Complete(w2.WorkerID, key, want, ""); resp.Accepted {
		t.Fatalf("post-settle complete must be rejected: %+v", resp)
	}
	if fs := c.Fleet(); fs.Rejected != 3 || fs.Completed != 1 {
		t.Fatalf("fleet counters: %+v", fs)
	}
}

func TestCoordinatorExecuteCancelWithdrawsUnclaimedCell(t *testing.T) {
	c, _ := testCoordinator(t, Config{}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	outc := execute(c, ctx, scalefold.ReferenceConfig("H100", 32))
	waitPending(t, c, 1)
	cancel()
	if out := <-outc; out.err != context.Canceled {
		t.Fatalf("Execute err = %v, want context.Canceled", out.err)
	}
	if fs := c.Fleet(); fs.Pending != 0 {
		t.Fatalf("cancelled unclaimed cell must leave the queue: %+v", fs)
	}
}

func TestCoordinatorCloseFailsOutstandingDispatch(t *testing.T) {
	ck := &clock{t: time.Unix(1000, 0)}
	c := NewCoordinator(Config{Now: ck.now}, nil)
	outc := execute(c, context.Background(), scalefold.ReferenceConfig("H100", 32))
	waitPending(t, c, 1)
	c.Close()
	if out := <-outc; out.err != ErrClosed {
		t.Fatalf("Execute err after Close = %v, want ErrClosed", out.err)
	}
	if _, err := c.RegisterWorker("late"); err != ErrClosed {
		t.Fatalf("RegisterWorker after Close = %v, want ErrClosed", err)
	}
}

func TestRendezvousPartitioningIsStable(t *testing.T) {
	c, _ := testCoordinator(t, Config{BatchSize: 64}, nil)
	var ids []string
	for _, name := range []string{"a", "b", "c"} {
		reg, err := c.RegisterWorker(name)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, reg.WorkerID)
	}
	keys := []string{"v4:alpha", "v4:beta", "v4:gamma", "v4:delta", "v4:epsilon"}
	first := map[string]string{}
	for _, k := range keys {
		first[k] = c.homeLocked(k)
	}
	for round := 0; round < 3; round++ {
		for _, k := range keys {
			if got := c.homeLocked(k); got != first[k] {
				t.Fatalf("home of %q moved %q -> %q with a steady fleet", k, first[k], got)
			}
		}
	}
	homes := map[string]bool{}
	for _, k := range keys {
		homes[first[k]] = true
	}
	if len(homes) < 2 {
		t.Fatalf("5 keys all homed on one of 3 workers: %v (suspicious hash)", first)
	}
	for _, id := range ids {
		if _, err := c.Claim(id, 0); err != nil {
			t.Fatal(err)
		}
	}
}
