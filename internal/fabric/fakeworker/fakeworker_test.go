package fakeworker

import (
	"testing"
	"time"

	"repro/internal/service"
)

// TestFleetSmoke exercises the harness itself: a default fleet runs a small
// job end to end, its workers report their completions, and Close (also
// registered as a cleanup) is idempotent.
func TestFleetSmoke(t *testing.T) {
	fl := Start(t, Options{Workers: 2})
	st, err := fl.Client.Submit(service.JobSpec{
		Profile:   "scalefold",
		Arches:    []string{"H100"},
		Ranks:     []int{32},
		DAPs:      []int{1, 2},
		Ablations: []string{"none"},
		Seeds:     1,
		Steps:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	done, err := fl.Client.Stream(st.ID, func(service.RowEvent) error { rows++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if done.State != service.StateDone || rows != 2 {
		t.Fatalf("done = %+v after %d rows, want done/2", done, rows)
	}
	// The job settles when the coordinator accepts a complete; the worker
	// increments its own counter only after decoding the response, so give
	// the loops a moment to observe their acceptances.
	deadline := time.Now().Add(5 * time.Second)
	for fl.Worker(0).Completed()+fl.Worker(1).Completed() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("workers completed %d+%d cells, want 2 total",
				fl.Worker(0).Completed(), fl.Worker(1).Completed())
		}
		time.Sleep(time.Millisecond)
	}
	if fl.Shared.Len() != 2 {
		t.Fatalf("shared store holds %d keys, want 2", fl.Shared.Len())
	}
	fl.Kill(0) // killing a worker twice (Close will re-kill) must be safe
	fl.Close()
	fl.Close() // idempotent
}
