// Package fakeworker runs a complete sweep fabric — coordinator-mode service
// plus an N-worker fleet — inside one test process over httptest loopback
// HTTP. Nothing is faked about the protocol: the workers are real
// fabric.Worker loops speaking the real /v1/workers wire format to a real
// service.Server; only the transport (in-process listener) and the clock
// pressures (millisecond heartbeats and polls) are test-sized. The chaos
// controls — Kill, per-worker BeforeCell hooks, paused heartbeats — drive the
// loss-detection and reassignment paths deterministically under -race -short.
package fakeworker

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/service"
	"repro/internal/store"
)

// Options sizes a fleet. The zero value is a usable single-worker fleet with
// snappy test timings.
type Options struct {
	// Workers is the fleet size. <= 0 means 1.
	Workers int
	// Fabric is the coordinator protocol config. Zero fields get test-sized
	// defaults: 10ms heartbeats, 5s timeout (loss detection effectively off —
	// chaos tests shrink it), batch 4.
	Fabric fabric.Config
	// Service configures the coordinator-side server; its Fabric field is
	// overwritten. A zero value serves from memory.
	Service service.Config
	// Store is the fleet's shared result store (nil = one fresh in-memory
	// store shared by every worker — the in-process analogue of a shared
	// directory).
	Store store.Store[cluster.Result]
	// Poll is the workers' idle claim interval. <= 0 means 2ms.
	Poll time.Duration
	// Configure, when non-nil, runs on each worker after construction and
	// before its loop starts — the place to install BeforeCell chaos hooks.
	Configure func(i int, w *fabric.Worker)
}

// Fleet is a running coordinator + workers. Close (registered as a test
// cleanup automatically) tears everything down in dependency order.
type Fleet struct {
	// Server is the coordinator-mode service; Client targets it over the
	// loopback listener at URL.
	Server *service.Server
	Client *service.Client
	URL    string
	// Shared is the fleet's shared result store.
	Shared store.Store[cluster.Result]

	tb      testing.TB
	ts      *httptest.Server
	workers []*fabric.Worker
	cancels []context.CancelFunc
	wg      sync.WaitGroup
	once    sync.Once
}

// Start brings up the fabric: a coordinator-mode server on a loopback
// listener and opts.Workers worker loops pointed at it.
func Start(tb testing.TB, opts Options) *Fleet {
	tb.Helper()
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	fc := opts.Fabric
	if fc.HeartbeatInterval <= 0 {
		fc.HeartbeatInterval = 10 * time.Millisecond
	}
	if fc.HeartbeatTimeout <= 0 {
		// Generous default: happy-path tests must never trip loss detection
		// on a slow CI box. Chaos tests shrink it explicitly.
		fc.HeartbeatTimeout = 5 * time.Second
	}
	svcCfg := opts.Service
	svcCfg.Fabric = &fc
	srv, err := service.New(svcCfg)
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	shared := opts.Store
	if shared == nil {
		shared = store.NewMem[cluster.Result]()
	}
	poll := opts.Poll
	if poll <= 0 {
		poll = 2 * time.Millisecond
	}
	f := &Fleet{
		Server: srv,
		Client: &service.Client{Base: ts.URL},
		URL:    ts.URL,
		Shared: shared,
		tb:     tb,
		ts:     ts,
	}
	for i := 0; i < opts.Workers; i++ {
		w := &fabric.Worker{
			Base:  ts.URL,
			Name:  fmt.Sprintf("fw-%d", i),
			Store: shared,
			Poll:  poll,
		}
		if opts.Configure != nil {
			opts.Configure(i, w)
		}
		ctx, cancel := context.WithCancel(context.Background())
		f.workers = append(f.workers, w)
		f.cancels = append(f.cancels, cancel)
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			w.Run(ctx)
		}()
	}
	tb.Cleanup(f.Close)
	return f
}

// Worker returns worker i (for chaos controls and counters).
func (f *Fleet) Worker(i int) *fabric.Worker { return f.workers[i] }

// Kill stops worker i's loop immediately — mid-batch if it is executing one —
// without deregistering it: exactly a process crash, as the coordinator sees
// it. Safe to call from the worker's own BeforeCell hook, and idempotent.
func (f *Fleet) Kill(i int) { f.cancels[i]() }

// Close kills the fleet, waits for the worker loops to exit, and shuts down
// the listener and the server. Registered as a test cleanup by Start;
// explicit earlier calls are fine (it runs once).
func (f *Fleet) Close() {
	f.once.Do(func() {
		for _, cancel := range f.cancels {
			cancel()
		}
		f.wg.Wait()
		f.ts.Close()
		if err := f.Server.Close(); err != nil {
			f.tb.Errorf("fakeworker: server close: %v", err)
		}
	})
}
