package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// Mount registers the fabric endpoints on mux. The sweep service mounts them
// next to its /v1/jobs API when running in coordinator mode:
//
//	POST /v1/workers/register   admit a worker; returns ID + protocol params
//	POST /v1/workers/claim      claim a cell batch (empty = poll again)
//	POST /v1/workers/heartbeat  record liveness; ok=false → re-register
//	POST /v1/workers/complete   report one cell's outcome
//	GET  /v1/workers            fleet + queue status
func (c *Coordinator) Mount(mux *http.ServeMux) {
	// timed wraps a handler with a per-RPC latency histogram. With no
	// Registry configured hist is nil and the handler is returned untouched —
	// no clock reads on uninstrumented coordinators. Minting at mount time
	// also guarantees the series exist (at zero) before any worker calls in.
	timed := func(rpcName string, h http.HandlerFunc) http.HandlerFunc {
		hist := c.met.reg.Histogram("scalefold_fabric_rpc_seconds",
			"Coordinator RPC handling latency in seconds.", nil,
			obs.Label{Key: "rpc", Value: rpcName})
		if hist == nil {
			return h
		}
		return func(w http.ResponseWriter, r *http.Request) {
			t0 := time.Now()
			h(w, r)
			hist.ObserveSince(t0)
		}
	}
	mux.HandleFunc("POST /v1/workers/register", timed("register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !decodeBody(w, r, &req) {
			return
		}
		resp, err := c.RegisterWorker(req.Name)
		if err != nil {
			writeFabricErr(w, err)
			return
		}
		writeFabricJSON(w, http.StatusOK, resp)
	}))
	mux.HandleFunc("POST /v1/workers/claim", timed("claim", func(w http.ResponseWriter, r *http.Request) {
		var req ClaimRequest
		if !decodeBody(w, r, &req) {
			return
		}
		cells, err := c.Claim(req.WorkerID, req.Max)
		if err != nil {
			writeFabricErr(w, err)
			return
		}
		writeFabricJSON(w, http.StatusOK, ClaimResponse{Cells: cells})
	}))
	mux.HandleFunc("POST /v1/workers/heartbeat", timed("heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeBody(w, r, &req) {
			return
		}
		switch err := c.Heartbeat(req.WorkerID); {
		case err == nil:
			writeFabricJSON(w, http.StatusOK, HeartbeatResponse{OK: true})
		case errors.Is(err, ErrUnknownWorker):
			// 200 with ok=false: the protocol-level "re-register" signal,
			// distinct from transport failures the worker should retry.
			writeFabricJSON(w, http.StatusOK, HeartbeatResponse{OK: false})
		default:
			writeFabricErr(w, err)
		}
	}))
	mux.HandleFunc("POST /v1/workers/complete", timed("complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decodeBody(w, r, &req) {
			return
		}
		writeFabricJSON(w, http.StatusOK, c.CompleteCell(req))
	}))
	mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		writeFabricJSON(w, http.StatusOK, c.Fleet())
	})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeFabricJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request: " + err.Error()})
		return false
	}
	return true
}

func writeFabricErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownWorker):
		code = http.StatusGone // worker must re-register
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeFabricJSON(w, code, map[string]string{"error": err.Error()})
}

func writeFabricJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// rpc is the worker-side call helper: POST JSON, decode JSON, lift the error
// envelope. A 410 maps back to ErrUnknownWorker so the worker loop can
// re-register instead of treating it as a transport failure.
func rpc[T any](hc *http.Client, base, path string, req any, out *T) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("fabric: %w", err)
	}
	resp, err := hc.Post(strings.TrimRight(base, "/")+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fabric: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("fabric: reading response: %w", err)
	}
	if resp.StatusCode == http.StatusGone {
		return ErrUnknownWorker
	}
	if resp.StatusCode/100 != 2 {
		var envelope struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &envelope) == nil && envelope.Error != "" {
			return fmt.Errorf("fabric: %s (HTTP %d)", envelope.Error, resp.StatusCode)
		}
		return fmt.Errorf("fabric: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("fabric: decoding response: %w", err)
	}
	return nil
}
