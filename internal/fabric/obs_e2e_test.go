package fabric_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/fabric/fakeworker"
	"repro/internal/obs"
	"repro/internal/service"
)

// TestFabricTraceCoversEveryCellOnce is the trace-attribution acceptance
// test: the 24-cell grid dispatched through a coordinator and two fake
// workers yields a /v1/jobs/{id}/trace whose "cell" spans cover every cell
// exactly once, each owned by the worker that actually settled it (the
// coordinator's store fast path owns singleflight-collapsed duplicates).
// Alongside it, /v1/metrics must expose the fabric series the run produced.
func TestFabricTraceCoversEveryCellOnce(t *testing.T) {
	fl := fakeworker.Start(t, fakeworker.Options{Workers: 2})
	st, err := fl.Client.Submit(grid24())
	if err != nil {
		t.Fatal(err)
	}
	_, done := collect(t, fl.Client, st.ID)
	if done.State != service.StateDone || done.Error != "" {
		t.Fatalf("done event %+v", done)
	}
	if done.Remote != 24 {
		t.Fatalf("%d cells went remote, want 24", done.Remote)
	}

	var buf bytes.Buffer
	if err := fl.Client.Trace(st.ID, &buf); err != nil {
		t.Fatal(err)
	}
	var events []obs.TraceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a Chrome trace-event array: %v", err)
	}
	owners := map[string]bool{
		fl.Worker(0).ID(): true,
		fl.Worker(1).ID(): true,
		"coordinator":     true, // store fast path / singleflight followers
	}
	seen := map[string]int{}
	workerOwned := 0
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		if ev.Cat != "cell" {
			t.Fatalf("unexpected span category %q: %+v", ev.Cat, ev)
		}
		if !owners[ev.Args["owner"]] {
			t.Fatalf("span owned by %q, not a fleet member: %+v", ev.Args["owner"], ev)
		}
		if ev.Args["owner"] != "coordinator" {
			workerOwned++
		}
		if ev.Args["source"] != "simulated" && ev.Args["source"] != "store-hit" {
			t.Fatalf("remote span sourced from %q: %+v", ev.Args["source"], ev)
		}
		seen[ev.Args["key"]]++
	}
	if len(seen) != 24 {
		t.Fatalf("trace spans %d distinct cells, want 24", len(seen))
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("cell %s spanned %d times, want exactly once", key, n)
		}
	}
	if workerOwned == 0 {
		t.Fatal("no span attributes a cell to a worker")
	}

	resp, err := http.Get(fl.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"scalefold_fabric_pending_cells 0",
		"scalefold_fabric_workers 2",
		"scalefold_fabric_completed_total 24",
		"scalefold_fabric_reassigned_total 0",
		`scalefold_fabric_worker_inflight{worker="` + fl.Worker(0).ID() + `"} 0`,
		`scalefold_fabric_rpc_seconds_count{rpc="claim"}`,
		`scalefold_fabric_rpc_seconds_bucket{rpc="complete",le="+Inf"} 24`,
		"# TYPE scalefold_fabric_queue_wait_seconds histogram",
		`scalefold_store_hits_total{store="mem"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}
