package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func maxDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestLayerNormFusedMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const rows, c = 37, 128
	x := randSlice(rng, rows*c)
	gamma := randSlice(rng, c)
	beta := randSlice(rng, c)
	var stRef, stFused Stats
	yRef := LayerNormRef(x, gamma, beta, rows, c, 1e-5, &stRef)
	yFused, _ := LayerNormFused(x, gamma, beta, rows, c, 1e-5, &stFused)
	if d := maxDiff(yRef, yFused); d > 1e-4 {
		t.Fatalf("fused LN differs from reference by %v", d)
	}
	if stFused.Launches >= stRef.Launches {
		t.Fatalf("fused LN should launch fewer kernels: %d vs %d", stFused.Launches, stRef.Launches)
	}
	if stFused.Bytes() >= stRef.Bytes() {
		t.Fatalf("fused LN should move fewer bytes: %d vs %d", stFused.Bytes(), stRef.Bytes())
	}
}

func TestLayerNormBackwardFusedMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const rows, c = 29, 64
	x := randSlice(rng, rows*c)
	gamma := randSlice(rng, c)
	beta := randSlice(rng, c)
	dy := randSlice(rng, rows*c)
	var st Stats
	_, cache := LayerNormFused(x, gamma, beta, rows, c, 1e-5, &st)
	var stRef, stFused Stats
	dxR, dgR, dbR := LayerNormRefBackward(dy, gamma, cache, &stRef)
	dxF, dgF, dbF := LayerNormFusedBackward(dy, gamma, cache, 8, &stFused)
	if d := maxDiff(dxR, dxF); d > 1e-3 {
		t.Fatalf("dx differs by %v", d)
	}
	if d := maxDiff(dgR, dgF); d > 1e-3 {
		t.Fatalf("dgamma differs by %v", d)
	}
	if d := maxDiff(dbR, dbF); d > 1e-3 {
		t.Fatalf("dbeta differs by %v", d)
	}
	if stFused.Launches != 2 {
		t.Fatalf("fused LN backward should be 2 launches, got %d", stFused.Launches)
	}
	if stRef.Launches <= stFused.Launches {
		t.Fatalf("reference backward should launch more: %d vs %d", stRef.Launches, stFused.Launches)
	}
}

func TestLayerNormFusedBackwardBlockSizeInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const rows, c = 50, 32
	x := randSlice(rng, rows*c)
	gamma := randSlice(rng, c)
	beta := randSlice(rng, c)
	dy := randSlice(rng, rows*c)
	var st Stats
	_, cache := LayerNormFused(x, gamma, beta, rows, c, 1e-5, &st)
	dx1, dg1, db1 := LayerNormFusedBackward(dy, gamma, cache, 1, &st)
	for _, blk := range []int{3, 7, 16, 50, 1000} {
		dx2, dg2, db2 := LayerNormFusedBackward(dy, gamma, cache, blk, &st)
		if maxDiff(dx1, dx2) > 1e-4 || maxDiff(dg1, dg2) > 1e-3 || maxDiff(db1, db2) > 1e-3 {
			t.Fatalf("block size %d changes the result", blk)
		}
	}
}

func TestLayerNormNormalizesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(8)
		c := 2 + rng.Intn(62)
		x := randSlice(rng, rows*c)
		gamma := make([]float32, c)
		beta := make([]float32, c)
		for i := range gamma {
			gamma[i] = 1
		}
		var st Stats
		y, _ := LayerNormFused(x, gamma, beta, rows, c, 1e-5, &st)
		for r := 0; r < rows; r++ {
			var sum float64
			for i := 0; i < c; i++ {
				sum += float64(y[r*c+i])
			}
			if math.Abs(sum/float64(c)) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func mhaInputs(rng *rand.Rand, p MHAParams) (q, k, v, g, bias, mask []float32) {
	E := p.H * p.D
	q = randSlice(rng, p.B*p.L*E)
	k = randSlice(rng, p.B*p.L*E)
	v = randSlice(rng, p.B*p.L*E)
	g = randSlice(rng, p.B*p.L*E)
	bias = randSlice(rng, p.H*p.L*p.L)
	mask = make([]float32, p.B*p.L)
	for i := range mask {
		mask[i] = 1
	}
	return
}

func TestMHAFusedMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := MHAParams{B: 3, L: 17, H: 4, D: 8}
	q, k, v, g, bias, mask := mhaInputs(rng, p)
	mask[5] = 0 // mask one key position in batch 0
	var stRef, stFused Stats
	yRef := MHARef(p, q, k, v, g, bias, mask, &stRef)
	yFused := MHAFused(p, q, k, v, g, bias, mask, 8, &stFused)
	if d := maxDiff(yRef, yFused); d > 1e-4 {
		t.Fatalf("fused MHA differs from reference by %v", d)
	}
	if stFused.Launches != 1 {
		t.Fatalf("fused MHA must be a single launch, got %d", stFused.Launches)
	}
	if stRef.Launches < 6 {
		t.Fatalf("reference MHA should be many launches, got %d", stRef.Launches)
	}
	if stFused.Bytes() >= stRef.Bytes() {
		t.Fatalf("fused MHA should move fewer bytes: %d vs %d", stFused.Bytes(), stRef.Bytes())
	}
}

func TestMHAFusedTileSizeInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := MHAParams{B: 2, L: 23, H: 2, D: 4}
	q, k, v, g, bias, mask := mhaInputs(rng, p)
	var st Stats
	base := MHAFused(p, q, k, v, g, bias, mask, 1, &st)
	for _, tile := range []int{2, 5, 8, 23, 64} {
		y := MHAFused(p, q, k, v, g, bias, mask, tile, &st)
		if d := maxDiff(base, y); d > 1e-4 {
			t.Fatalf("tile %d changes result by %v (online softmax broken)", tile, d)
		}
	}
}

func TestMHANoMask(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := MHAParams{B: 1, L: 9, H: 2, D: 4}
	q, k, v, g, bias, _ := mhaInputs(rng, p)
	var st1, st2 Stats
	yRef := MHARef(p, q, k, v, g, bias, nil, &st1)
	yFused := MHAFused(p, q, k, v, g, bias, nil, 4, &st2)
	if d := maxDiff(yRef, yFused); d > 1e-4 {
		t.Fatalf("no-mask mismatch %v", d)
	}
}

func TestProjectBatchedMatchesSeparate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, k, m = 33, 24, 16
	w := ProjectionWeights{
		WQ: randSlice(rng, k*m), WK: randSlice(rng, k*m),
		WV: randSlice(rng, k*m), WG: randSlice(rng, k*m),
		K: k, M: m,
	}
	x := randSlice(rng, n*k)
	var stS, stB Stats
	q1, k1, v1, g1 := ProjectSeparate(x, n, w, &stS)
	q2, k2, v2, g2 := ProjectBatched(x, n, w, &stB)
	for _, pair := range [][2][]float32{{q1, q2}, {k1, k2}, {v1, v2}, {g1, g2}} {
		if d := maxDiff(pair[0], pair[1]); d > 1e-4 {
			t.Fatalf("batched projection differs by %v", d)
		}
	}
	if stB.Launches != 1 || stS.Launches != 4 {
		t.Fatalf("launches: batched %d (want 1), separate %d (want 4)", stB.Launches, stS.Launches)
	}
	if stB.BytesRead >= stS.BytesRead {
		t.Fatalf("batched should read less: %d vs %d", stB.BytesRead, stS.BytesRead)
	}
}

func makeParams(rng *rand.Rand, sizes []int) []ParamTensor {
	ps := make([]ParamTensor, len(sizes))
	for i, n := range sizes {
		ps[i] = ParamTensor{
			P: randSlice(rng, n), G: randSlice(rng, n),
			M: randSlice(rng, n), V: make([]float32, n),
			SWA: randSlice(rng, n),
		}
		for j := range ps[i].V {
			ps[i].V[j] = float32(math.Abs(rng.NormFloat64())) * 0.01
		}
	}
	return ps
}

func cloneParams(ps []ParamTensor) []ParamTensor {
	out := make([]ParamTensor, len(ps))
	for i, p := range ps {
		out[i] = ParamTensor{
			P: append([]float32(nil), p.P...), G: append([]float32(nil), p.G...),
			M: append([]float32(nil), p.M...), V: append([]float32(nil), p.V...),
			SWA: append([]float32(nil), p.SWA...),
		}
	}
	return out
}

func TestAdamSWAFusedMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sizes := []int{17, 256, 3, 1024, 64}
	a := makeParams(rng, sizes)
	b := cloneParams(a)
	cfg := DefaultAdamConfig(7)
	var stRef, stFused Stats
	AdamSWARef(a, cfg, 1.0, &stRef)
	AdamSWAFused(b, cfg, 1.0, nil, &stFused)
	for i := range a {
		if d := maxDiff(a[i].P, b[i].P); d > 1e-5 {
			t.Fatalf("param %d differs by %v", i, d)
		}
		if d := maxDiff(a[i].SWA, b[i].SWA); d > 1e-5 {
			t.Fatalf("swa %d differs by %v", i, d)
		}
		if d := maxDiff(a[i].M, b[i].M); d > 1e-5 {
			t.Fatalf("m %d differs by %v", i, d)
		}
		if d := maxDiff(a[i].V, b[i].V); d > 1e-5 {
			t.Fatalf("v %d differs by %v", i, d)
		}
	}
	if stFused.Launches >= stRef.Launches {
		t.Fatalf("fused optimizer should launch fewer kernels: %d vs %d", stFused.Launches, stRef.Launches)
	}
}

func TestAdamSWARefLaunchesScaleWithTensorCount(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := DefaultAdamConfig(1)
	var stSmall, stBig Stats
	AdamSWARef(makeParams(rng, []int{8, 8}), cfg, 1, &stSmall)
	AdamSWARef(makeParams(rng, make([]int, 40, 40)), cfg, 1, &stBig) // zero-size ok for launch count
	if stBig.Launches <= stSmall.Launches {
		t.Fatal("reference launches must grow with tensor count")
	}
	var stFusedBig Stats
	AdamSWAFused(makeParams(rng, make([]int, 40, 40)), cfg, 1, nil, &stFusedBig)
	if stFusedBig.Launches > 3 {
		t.Fatalf("fused launches must not grow with tensor count, got %d", stFusedBig.Launches)
	}
}

func TestGradNormBucketedMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ps := makeParams(rng, []int{100, 3, 777, 12})
	var st Stats
	nRef := GradNormRef(ps, &st)
	buckets := PackBuckets(ps, 1<<20, &st)
	var stB Stats
	nB := GradNormBucketed(buckets, &stB)
	if math.Abs(nRef-nB) > 1e-4*math.Max(1, nRef) {
		t.Fatalf("bucketed norm %v vs ref %v", nB, nRef)
	}
	if stB.Launches >= st.Launches {
		t.Fatalf("bucketed norm should need fewer launches")
	}
}

func TestPackBucketsPreservesAllElements(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTensors := 1 + rng.Intn(6)
		sizes := make([]int, nTensors)
		total := 0
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(50)
			total += sizes[i]
		}
		ps := makeParams(rng, sizes)
		var st Stats
		buckets := PackBuckets(ps, 32, &st)
		var got int
		var sumB, sumP float64
		for _, b := range buckets {
			got += len(b.Flat)
			for _, v := range b.Flat {
				sumB += float64(v)
			}
		}
		for _, p := range ps {
			for _, g := range p.G {
				sumP += float64(g)
			}
		}
		return got == total && math.Abs(sumB-sumP) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestClipScale(t *testing.T) {
	if ClipScale(0.5, 1) != 1 {
		t.Fatal("norm below threshold must not scale")
	}
	s := ClipScale(10, 1)
	if s <= 0 || s >= 0.2 {
		t.Fatalf("clip scale %v out of range", s)
	}
	if ClipScale(10, 0) != 1 {
		t.Fatal("maxNorm<=0 disables clipping")
	}
}

func TestClipActuallyBoundsNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ps := makeParams(rng, []int{300})
	for i := range ps[0].G {
		ps[0].G[i] *= 50 // make norm huge
	}
	var st Stats
	cfg := DefaultAdamConfig(1)
	AdamSWAFused(ps, cfg, 1.0, nil, &st)
	var s float64
	for _, g := range ps[0].G {
		s += float64(g) * float64(g)
	}
	if math.Sqrt(s) > 1.01 {
		t.Fatalf("post-clip norm %v exceeds threshold", math.Sqrt(s))
	}
}

func TestStatsAccumulate(t *testing.T) {
	var a, b Stats
	a.launch(10, 5)
	b.launch(2, 2)
	a.Add(b)
	if a.Launches != 2 || a.BytesRead != 48 || a.BytesWritten != 28 {
		t.Fatalf("stats %+v", a)
	}
}
