package kernels

import "math"

// MHAParams bundles the dimensions of the AlphaFold attention variant:
// B independent attention problems (e.g. MSA rows), sequence length L,
// H heads of size D. Inputs q, k, v, gate are [B, L, H*D]; bias is
// [H, L, L] shared across B (the pair-representation bias of Figure 6);
// mask is [B, L] (1 keep / 0 drop) or nil.
type MHAParams struct {
	B, L, H, D int
}

func (p MHAParams) e() int { return p.H * p.D }

// MHARef executes the attention the fragmented baseline way: every
// elementary step is its own kernel with a materialized intermediate —
// logits, biased logits, masked logits, softmax, context, sigmoid gate,
// gated output. This is the op chain inside the dashed green box of
// Figure 6 before fusion.
func MHARef(p MHAParams, q, k, v, gate, bias, mask []float32, st *Stats) []float32 {
	B, L, H, D, E := p.B, p.L, p.H, p.D, p.e()
	scale := float32(1 / math.Sqrt(float64(D)))
	nLogits := B * H * L * L

	// Kernel 1: logits = scale · QKᵀ, materialized [B,H,L,L].
	logits := make([]float32, nLogits)
	for b := 0; b < B; b++ {
		for h := 0; h < H; h++ {
			for i := 0; i < L; i++ {
				qRow := q[(b*L+i)*E+h*D : (b*L+i)*E+(h+1)*D]
				out := logits[((b*H+h)*L+i)*L : ((b*H+h)*L+i+1)*L]
				for j := 0; j < L; j++ {
					kRow := k[(b*L+j)*E+h*D : (b*L+j)*E+(h+1)*D]
					var s float32
					for d := 0; d < D; d++ {
						s += qRow[d] * kRow[d]
					}
					out[j] = s * scale
				}
			}
		}
	}
	st.launch(2*B*L*E, nLogits)

	// Kernel 2: add pair bias.
	for b := 0; b < B; b++ {
		for h := 0; h < H; h++ {
			for i := 0; i < L; i++ {
				out := logits[((b*H+h)*L+i)*L : ((b*H+h)*L+i+1)*L]
				brow := bias[(h*L+i)*L : (h*L+i+1)*L]
				for j := 0; j < L; j++ {
					out[j] += brow[j]
				}
			}
		}
	}
	st.launch(nLogits+H*L*L, nLogits)

	// Kernel 3: apply MSA mask.
	if mask != nil {
		for b := 0; b < B; b++ {
			for h := 0; h < H; h++ {
				for i := 0; i < L; i++ {
					out := logits[((b*H+h)*L+i)*L : ((b*H+h)*L+i+1)*L]
					for j := 0; j < L; j++ {
						if mask[b*L+j] == 0 {
							out[j] = -1e9
						}
					}
				}
			}
		}
		st.launch(nLogits+B*L, nLogits)
	}

	// Kernel 4: softmax, materialized probabilities.
	probs := make([]float32, nLogits)
	for r := 0; r < B*H*L; r++ {
		row := logits[r*L : (r+1)*L]
		out := probs[r*L : (r+1)*L]
		mx := float32(math.Inf(-1))
		for _, x := range row {
			if x > mx {
				mx = x
			}
		}
		var sum float32
		for j, x := range row {
			e := float32(math.Exp(float64(x - mx)))
			out[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range out {
			out[j] *= inv
		}
	}
	st.launch(nLogits, nLogits)

	// Kernel 5: context = P·V.
	ctx := make([]float32, B*L*E)
	for b := 0; b < B; b++ {
		for h := 0; h < H; h++ {
			for i := 0; i < L; i++ {
				pRow := probs[((b*H+h)*L+i)*L : ((b*H+h)*L+i+1)*L]
				out := ctx[(b*L+i)*E+h*D : (b*L+i)*E+(h+1)*D]
				for j := 0; j < L; j++ {
					pv := pRow[j]
					if pv == 0 {
						continue
					}
					vRow := v[(b*L+j)*E+h*D : (b*L+j)*E+(h+1)*D]
					for d := 0; d < D; d++ {
						out[d] += pv * vRow[d]
					}
				}
			}
		}
	}
	st.launch(nLogits+B*L*E, B*L*E)

	// Kernel 6: sigmoid of the gate projection, materialized.
	sg := make([]float32, B*L*E)
	for i, x := range gate {
		sg[i] = float32(1 / (1 + math.Exp(-float64(x))))
	}
	st.launch(B*L*E, B*L*E)

	// Kernel 7: gated output.
	out := make([]float32, B*L*E)
	for i := range out {
		out[i] = ctx[i] * sg[i]
	}
	st.launch(2*B*L*E, B*L*E)
	return out
}

// MHAFused mirrors the paper's FlashAttention-based Triton kernel extended
// with the pair-bias term (§3.3.1 MHA): a single launch that streams key
// tiles with an online softmax, never materializing the [L,L] logits or
// probability matrices, and applies mask, bias and sigmoid gating inline.
// tile is the key-tile size (the Triton autotuner's BLOCK_N analogue).
func MHAFused(p MHAParams, q, k, v, gate, bias, mask []float32, tile int, st *Stats) []float32 {
	B, L, H, D, E := p.B, p.L, p.H, p.D, p.e()
	scale := float32(1 / math.Sqrt(float64(D)))
	if tile <= 0 {
		tile = 32
	}
	out := make([]float32, B*L*E)
	acc := make([]float32, D)
	logit := make([]float32, tile)
	for b := 0; b < B; b++ {
		for h := 0; h < H; h++ {
			for i := 0; i < L; i++ {
				qRow := q[(b*L+i)*E+h*D : (b*L+i)*E+(h+1)*D]
				biasRow := bias[(h*L+i)*L : (h*L+i+1)*L]
				// Online softmax state: running max m, running sum l.
				m := float32(math.Inf(-1))
				var l float32
				for d := range acc {
					acc[d] = 0
				}
				for j0 := 0; j0 < L; j0 += tile {
					j1 := j0 + tile
					if j1 > L {
						j1 = L
					}
					tileMax := float32(math.Inf(-1))
					for j := j0; j < j1; j++ {
						kRow := k[(b*L+j)*E+h*D : (b*L+j)*E+(h+1)*D]
						var s float32
						for d := 0; d < D; d++ {
							s += qRow[d] * kRow[d]
						}
						s = s*scale + biasRow[j]
						if mask != nil && mask[b*L+j] == 0 {
							s = -1e9
						}
						logit[j-j0] = s
						if s > tileMax {
							tileMax = s
						}
					}
					newM := m
					if tileMax > newM {
						newM = tileMax
					}
					correction := float32(math.Exp(float64(m - newM)))
					l *= correction
					for d := 0; d < D; d++ {
						acc[d] *= correction
					}
					for j := j0; j < j1; j++ {
						e := float32(math.Exp(float64(logit[j-j0] - newM)))
						l += e
						vRow := v[(b*L+j)*E+h*D : (b*L+j)*E+(h+1)*D]
						for d := 0; d < D; d++ {
							acc[d] += e * vRow[d]
						}
					}
					m = newM
				}
				inv := 1 / l
				oRow := out[(b*L+i)*E+h*D : (b*L+i)*E+(h+1)*D]
				gRow := gate[(b*L+i)*E+h*D : (b*L+i)*E+(h+1)*D]
				for d := 0; d < D; d++ {
					s := float32(1 / (1 + math.Exp(-float64(gRow[d]))))
					oRow[d] = acc[d] * inv * s
				}
			}
		}
	}
	st.launch(4*B*L*E+H*L*L, B*L*E)
	return out
}
