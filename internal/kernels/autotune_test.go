package kernels

import (
	"math/rand"
	"testing"
)

func TestTuneMHATilePicksValidCandidate(t *testing.T) {
	p := MHAParams{B: 2, L: 32, H: 2, D: 8}
	res := TuneMHATile(p, []int{1, 8, 32}, 1)
	if res.Param != 1 && res.Param != 8 && res.Param != 32 {
		t.Fatalf("winner %d not in candidate set", res.Param)
	}
	if res.Best <= 0 || res.Worst < res.Best {
		t.Fatalf("timings inconsistent: best=%v worst=%v", res.Best, res.Worst)
	}
	if res.Gain() < 1 {
		t.Fatalf("gain %v < 1", res.Gain())
	}
}

func TestTuneMHATileSkipsOversizedTiles(t *testing.T) {
	p := MHAParams{B: 1, L: 4, H: 1, D: 4}
	res := TuneMHATile(p, []int{2, 4, 512}, 1)
	if res.Param > 4 {
		t.Fatalf("oversized tile %d selected", res.Param)
	}
}

func TestTuneLNBlockRows(t *testing.T) {
	res := TuneLNBlockRows(256, 64, []int{1, 16, 64}, 1)
	if res.Param != 1 && res.Param != 16 && res.Param != 64 {
		t.Fatalf("winner %d not in candidate set", res.Param)
	}
	if res.Trials != 3 {
		t.Fatalf("trials %d", res.Trials)
	}
}

func TestTunedMHACachesPerShape(t *testing.T) {
	tuner := NewTunedMHA()
	rng := rand.New(rand.NewSource(1))
	run := func(p MHAParams) []float32 {
		e := p.H * p.D
		q, k, v, g := randSlice(rng, p.B*p.L*e), randSlice(rng, p.B*p.L*e), randSlice(rng, p.B*p.L*e), randSlice(rng, p.B*p.L*e)
		bias := randSlice(rng, p.H*p.L*p.L)
		var st Stats
		return tuner.Run(p, q, k, v, g, bias, nil, &st)
	}
	pA := MHAParams{B: 1, L: 16, H: 2, D: 4}
	pB := MHAParams{B: 2, L: 8, H: 2, D: 4}
	run(pA)
	run(pA)
	if tuner.CachedShapes() != 1 {
		t.Fatalf("repeat shape must reuse the tuned tile, cache=%d", tuner.CachedShapes())
	}
	run(pB)
	if tuner.CachedShapes() != 2 {
		t.Fatalf("new shape must tune again, cache=%d", tuner.CachedShapes())
	}
}

func TestTunedMHAMatchesUntuned(t *testing.T) {
	// The tuned kernel must be numerically identical to any fixed tile.
	tuner := NewTunedMHA()
	rng := rand.New(rand.NewSource(2))
	p := MHAParams{B: 2, L: 12, H: 2, D: 4}
	e := p.H * p.D
	q, k, v, g := randSlice(rng, p.B*p.L*e), randSlice(rng, p.B*p.L*e), randSlice(rng, p.B*p.L*e), randSlice(rng, p.B*p.L*e)
	bias := randSlice(rng, p.H*p.L*p.L)
	var st1, st2 Stats
	got := tuner.Run(p, q, k, v, g, bias, nil, &st1)
	want := MHAFused(p, q, k, v, g, bias, nil, 7, &st2)
	if d := maxDiff(got, want); d > 1e-4 {
		t.Fatalf("tuned kernel diverges by %v", d)
	}
}
