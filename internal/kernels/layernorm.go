package kernels

import "math"

// LayerNormRef computes y = gamma*(x-mean)/sqrt(var+eps)+beta over rows of
// length c the way the unfused OpenFold baseline does: as a chain of
// elementary kernels, each making a full pass over the data and
// materializing its intermediate (mean, centered x, variance, rstd,
// normalized x), exactly the memory-bound fragmentation Table 1 blames for
// 65% of step time.
//
// x is row-major [rows, c]; the returned slice is a fresh [rows*c] buffer.
func LayerNormRef(x, gamma, beta []float32, rows, c int, eps float32, st *Stats) []float32 {
	n := rows * c
	y := make([]float32, n)

	// Kernel 1: row means.
	mean := make([]float32, rows)
	for r := 0; r < rows; r++ {
		var s float32
		for i := 0; i < c; i++ {
			s += x[r*c+i]
		}
		mean[r] = s / float32(c)
	}
	st.launch(n, rows)

	// Kernel 2: centered values, materialized.
	centered := make([]float32, n)
	for r := 0; r < rows; r++ {
		for i := 0; i < c; i++ {
			centered[r*c+i] = x[r*c+i] - mean[r]
		}
	}
	st.launch(n+rows, n)

	// Kernel 3: row variances (second full pass, the "expensive iterative
	// method" the fused kernel replaces with a single-pass computation).
	variance := make([]float32, rows)
	for r := 0; r < rows; r++ {
		var s float32
		for i := 0; i < c; i++ {
			v := centered[r*c+i]
			s += v * v
		}
		variance[r] = s / float32(c)
	}
	st.launch(n, rows)

	// Kernel 4: reciprocal std.
	rstd := make([]float32, rows)
	for r := 0; r < rows; r++ {
		rstd[r] = float32(1 / math.Sqrt(float64(variance[r]+eps)))
	}
	st.launch(rows, rows)

	// Kernel 5: normalize.
	norm := make([]float32, n)
	for r := 0; r < rows; r++ {
		for i := 0; i < c; i++ {
			norm[r*c+i] = centered[r*c+i] * rstd[r]
		}
	}
	st.launch(n+rows, n)

	// Kernel 6: scale by gamma.
	for r := 0; r < rows; r++ {
		for i := 0; i < c; i++ {
			y[r*c+i] = norm[r*c+i] * gamma[i]
		}
	}
	st.launch(n+c, n)

	// Kernel 7: shift by beta.
	for r := 0; r < rows; r++ {
		for i := 0; i < c; i++ {
			y[r*c+i] += beta[i]
		}
	}
	st.launch(n+c, n)

	return y
}

// LNCache holds the values the LayerNorm backward pass needs.
type LNCache struct {
	XHat []float32 // normalized inputs
	RStd []float32 // per-row reciprocal std
	Rows int
	C    int
}

// LayerNormFused mirrors the paper's Triton LN kernel (§3.3.1): one launch,
// one streaming pass per row computing the statistics in a single pass
// (E[x], E[x²] accumulated together) and writing the output immediately —
// each "thread block" (loop body) handles multiple rows, intermediates live
// in registers.
func LayerNormFused(x, gamma, beta []float32, rows, c int, eps float32, st *Stats) ([]float32, *LNCache) {
	n := rows * c
	y := make([]float32, n)
	cache := &LNCache{XHat: make([]float32, n), RStd: make([]float32, rows), Rows: rows, C: c}
	for r := 0; r < rows; r++ {
		row := x[r*c : (r+1)*c]
		var sum, sumSq float64
		for _, v := range row {
			sum += float64(v)
			sumSq += float64(v) * float64(v)
		}
		m := sum / float64(c)
		variance := sumSq/float64(c) - m*m
		if variance < 0 {
			variance = 0
		}
		rs := float32(1 / math.Sqrt(variance+float64(eps)))
		cache.RStd[r] = rs
		out := y[r*c : (r+1)*c]
		hat := cache.XHat[r*c : (r+1)*c]
		for i, v := range row {
			h := (v - float32(m)) * rs
			hat[i] = h
			out[i] = gamma[i]*h + beta[i]
		}
	}
	st.launch(n+2*c, n)
	return y, cache
}

// LayerNormRefBackward computes input/weight/bias gradients the baseline
// way: separate kernels for dgamma, dbeta and dx, with dgamma/dbeta reduced
// by a serial column walk (standing in for the expensive atomic-based
// reduction the paper calls out).
func LayerNormRefBackward(dy, gamma []float32, cache *LNCache, st *Stats) (dx, dgamma, dbeta []float32) {
	rows, c := cache.Rows, cache.C
	n := rows * c
	dgamma = make([]float32, c)
	dbeta = make([]float32, c)
	// Kernel 1: dgamma = Σ_r dy∘xhat (full pass).
	for r := 0; r < rows; r++ {
		for i := 0; i < c; i++ {
			dgamma[i] += dy[r*c+i] * cache.XHat[r*c+i]
		}
	}
	st.launch(2*n, c)
	// Kernel 2: dbeta = Σ_r dy (second full pass over dy).
	for r := 0; r < rows; r++ {
		for i := 0; i < c; i++ {
			dbeta[i] += dy[r*c+i]
		}
	}
	st.launch(n, c)
	// Kernels 3..5: dxhat materialized, then the two row reductions, then dx.
	dxhat := make([]float32, n)
	for i := 0; i < n; i++ {
		dxhat[i] = dy[i] * gamma[i%c]
	}
	st.launch(n+c, n)
	m1 := make([]float32, rows)
	m2 := make([]float32, rows)
	for r := 0; r < rows; r++ {
		var s1, s2 float64
		for i := 0; i < c; i++ {
			s1 += float64(dxhat[r*c+i])
			s2 += float64(dxhat[r*c+i]) * float64(cache.XHat[r*c+i])
		}
		m1[r] = float32(s1 / float64(c))
		m2[r] = float32(s2 / float64(c))
	}
	st.launch(2*n, 2*rows)
	dx = make([]float32, n)
	for r := 0; r < rows; r++ {
		for i := 0; i < c; i++ {
			dx[r*c+i] = cache.RStd[r] * (dxhat[r*c+i] - m1[r] - cache.XHat[r*c+i]*m2[r])
		}
	}
	st.launch(2*n+3*rows, n)
	return dx, dgamma, dbeta
}

// LayerNormFusedBackward mirrors the paper's two-step reduction design: step
// one, each "thread block" (a block of rows) reduces its sub-region of the
// upstream gradients into an intermediate buffer while also producing dx in
// the same pass; step two, each column of the intermediate buffer is reduced
// to the final dgamma/dbeta — no atomics, two launches total.
func LayerNormFusedBackward(dy, gamma []float32, cache *LNCache, blockRows int, st *Stats) (dx, dgamma, dbeta []float32) {
	rows, c := cache.Rows, cache.C
	n := rows * c
	if blockRows <= 0 {
		blockRows = 32
	}
	nBlocks := (rows + blockRows - 1) / blockRows
	partialG := make([]float32, nBlocks*c)
	partialB := make([]float32, nBlocks*c)
	dx = make([]float32, n)

	// Launch 1: fused dx + per-block partial reductions.
	for blk := 0; blk < nBlocks; blk++ {
		lo, hi := blk*blockRows, (blk+1)*blockRows
		if hi > rows {
			hi = rows
		}
		pg := partialG[blk*c : (blk+1)*c]
		pb := partialB[blk*c : (blk+1)*c]
		for r := lo; r < hi; r++ {
			var m1, m2 float64
			base := r * c
			for i := 0; i < c; i++ {
				g := dy[base+i]
				h := cache.XHat[base+i]
				pg[i] += g * h
				pb[i] += g
				d := float64(g * gamma[i])
				m1 += d
				m2 += d * float64(h)
			}
			m1 /= float64(c)
			m2 /= float64(c)
			for i := 0; i < c; i++ {
				d := float64(dy[base+i] * gamma[i])
				dx[base+i] = cache.RStd[r] * float32(d-m1-float64(cache.XHat[base+i])*m2)
			}
		}
	}
	st.launch(2*n+c, n+2*nBlocks*c)

	// Launch 2: column reduction of the intermediate buffers.
	dgamma = make([]float32, c)
	dbeta = make([]float32, c)
	for blk := 0; blk < nBlocks; blk++ {
		for i := 0; i < c; i++ {
			dgamma[i] += partialG[blk*c+i]
			dbeta[i] += partialB[blk*c+i]
		}
	}
	st.launch(2*nBlocks*c, 2*c)
	return dx, dgamma, dbeta
}
