// Package kernels provides executable CPU implementations of the critical
// computation patterns ScaleFold optimizes (§3.3): LayerNorm, the AlphaFold
// multi-head attention variant with pair bias and sigmoid gating, the four
// independent projection GEMMs in front of MHA, the Adam+SWA optimizer step
// and gradient clipping.
//
// Every pattern exists in two forms:
//
//   - a Reference form that mirrors the fragmented OpenFold baseline — one
//     "kernel" (one full pass over memory, one launch) per elementary op,
//     intermediates materialized in DRAM-visible buffers; and
//   - a Fused form that mirrors the paper's Triton kernels — a single pass
//     that keeps intermediates in registers (locals), streams tiles, and
//     avoids re-reading inputs.
//
// Both forms compute identical results (tests assert numeric equivalence) so
// the difference visible in `go test -bench` — fewer ns/op, fewer B/op,
// fewer recorded launches — is exactly the effect the paper attributes to
// kernel fusion.
package kernels

// Stats accounts for kernel launches and memory traffic the way the paper's
// Table 1 profiles count them. Reference implementations record one launch
// per elementary pass; fused implementations record one launch total.
type Stats struct {
	Launches     int   // number of kernel launches
	BytesRead    int64 // bytes read from "DRAM" (materialized buffers)
	BytesWritten int64 // bytes written to "DRAM"
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Launches += other.Launches
	s.BytesRead += other.BytesRead
	s.BytesWritten += other.BytesWritten
}

// Bytes returns the total traffic.
func (s Stats) Bytes() int64 { return s.BytesRead + s.BytesWritten }

// launch records one kernel launch reading r and writing w float32 elements.
func (s *Stats) launch(r, w int) {
	s.Launches++
	s.BytesRead += int64(r) * 4
	s.BytesWritten += int64(w) * 4
}
