package kernels

import (
	"time"
)

// This file implements the §3.3.2 kernel autotuning: "the OpenAI Triton
// compiler's auto tuning ability was exploited to search for the optimal
// hyper-parameters for all workload sizes that appear and target GPU
// architectures. The search space spanned a set of predefined tiling sizes
// and kernel launching dimensions." Here the tunables are the MHA key-tile
// size and the LayerNorm-backward row-block size, searched by direct timing
// on the real kernels — "particularly useful when workload sizes were
// scaled down by DAP".

// TuneResult records the winning configuration for one workload size.
type TuneResult struct {
	Param  int           // winning tile / block size
	Best   time.Duration // measured time of the winner
	Worst  time.Duration // measured time of the slowest candidate
	Trials int
}

// Gain returns worst/best — how much tuning bought over the most naive
// configuration in the search space.
func (t TuneResult) Gain() float64 {
	if t.Best <= 0 {
		return 1
	}
	return float64(t.Worst) / float64(t.Best)
}

// defaultTiles is the predefined search space (powers of two, like Triton's
// BLOCK_N candidates).
var defaultTiles = []int{1, 2, 4, 8, 16, 32, 64, 128}

// timeIt measures fn's best-of-reps wall time.
func timeIt(reps int, fn func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

// TuneMHATile searches the fused-MHA key-tile size for a given workload
// shape and returns the winner. candidates defaults to defaultTiles.
func TuneMHATile(p MHAParams, candidates []int, reps int) TuneResult {
	if len(candidates) == 0 {
		candidates = defaultTiles
	}
	if reps < 1 {
		reps = 3
	}
	e := p.H * p.D
	q := make([]float32, p.B*p.L*e)
	k := make([]float32, p.B*p.L*e)
	v := make([]float32, p.B*p.L*e)
	g := make([]float32, p.B*p.L*e)
	bias := make([]float32, p.H*p.L*p.L)
	for i := range q {
		q[i] = float32(i%7) * 0.1
		k[i] = float32(i%5) * 0.1
		v[i] = float32(i%3) * 0.1
		g[i] = 0.2
	}
	res := TuneResult{Trials: len(candidates)}
	for _, tile := range candidates {
		if tile > p.L {
			// Launch dimensions beyond the sequence are redundant; Triton
			// prunes them the same way.
			continue
		}
		var st Stats
		d := timeIt(reps, func() { MHAFused(p, q, k, v, g, bias, nil, tile, &st) })
		if res.Best == 0 || d < res.Best {
			res.Best = d
			res.Param = tile
		}
		if d > res.Worst {
			res.Worst = d
		}
	}
	return res
}

// TuneLNBlockRows searches the LayerNorm-backward row-block size.
func TuneLNBlockRows(rows, c int, candidates []int, reps int) TuneResult {
	if len(candidates) == 0 {
		candidates = defaultTiles
	}
	if reps < 1 {
		reps = 3
	}
	x := make([]float32, rows*c)
	gamma := make([]float32, c)
	beta := make([]float32, c)
	dy := make([]float32, rows*c)
	for i := range x {
		x[i] = float32(i%11) * 0.1
		dy[i] = float32(i%13) * 0.05
	}
	for i := range gamma {
		gamma[i] = 1
	}
	var st Stats
	_, cache := LayerNormFused(x, gamma, beta, rows, c, 1e-5, &st)
	res := TuneResult{Trials: len(candidates)}
	for _, blk := range candidates {
		if blk > rows {
			continue
		}
		d := timeIt(reps, func() { LayerNormFusedBackward(dy, gamma, cache, blk, &st) })
		if res.Best == 0 || d < res.Best {
			res.Best = d
			res.Param = blk
		}
		if d > res.Worst {
			res.Worst = d
		}
	}
	return res
}

// TunedMHA is a per-shape cache of tuned tile sizes, mirroring how the
// training autotunes once per (workload size, architecture) and then reuses
// the configuration for the rest of the run.
type TunedMHA struct {
	tiles map[MHAParams]int
}

// NewTunedMHA returns an empty tuner cache.
func NewTunedMHA() *TunedMHA { return &TunedMHA{tiles: map[MHAParams]int{}} }

// Run executes the fused MHA with the tuned tile for p, tuning on first use.
func (t *TunedMHA) Run(p MHAParams, q, k, v, g, bias, mask []float32, st *Stats) []float32 {
	tile, ok := t.tiles[p]
	if !ok {
		tile = TuneMHATile(p, nil, 2).Param
		if tile == 0 {
			tile = 32
		}
		t.tiles[p] = tile
	}
	return MHAFused(p, q, k, v, g, bias, mask, tile, st)
}

// CachedShapes returns how many shapes have been tuned.
func (t *TunedMHA) CachedShapes() int { return len(t.tiles) }
