package kernels

// ProjectionWeights holds the four independent linear layers that feed the
// AlphaFold MHA block (Q, K, V and the sigmoid gate — the dashed blue box of
// Figure 6). Each weight is [K, M] row-major; biases are optional [M].
type ProjectionWeights struct {
	WQ, WK, WV, WG []float32
	K, M           int
}

// ProjectSeparate computes the four projections the baseline way: four
// independent GEMM launches, each streaming the whole input x [N, K] again.
func ProjectSeparate(x []float32, n int, w ProjectionWeights, st *Stats) (q, k, v, g []float32) {
	q = gemm(x, w.WQ, n, w.K, w.M)
	st.launch(n*w.K+w.K*w.M, n*w.M)
	k = gemm(x, w.WK, n, w.K, w.M)
	st.launch(n*w.K+w.K*w.M, n*w.M)
	v = gemm(x, w.WV, n, w.K, w.M)
	st.launch(n*w.K+w.K*w.M, n*w.M)
	g = gemm(x, w.WG, n, w.K, w.M)
	st.launch(n*w.K+w.K*w.M, n*w.M)
	return q, k, v, g
}

// ProjectBatched bundles the four layers into one batched GEMM (§3.3.1 GEMM
// Batching): the weights act as a single [K, 4M] matrix, so x is streamed
// once and the degree of parallelism quadruples. One launch.
func ProjectBatched(x []float32, n int, w ProjectionWeights, st *Stats) (q, k, v, g []float32) {
	K, M := w.K, w.M
	out := make([]float32, n*4*M)
	for i := 0; i < n; i++ {
		xi := x[i*K : (i+1)*K]
		oi := out[i*4*M : (i+1)*4*M]
		for p := 0; p < K; p++ {
			xv := xi[p]
			if xv == 0 {
				continue
			}
			wq := w.WQ[p*M : (p+1)*M]
			wk := w.WK[p*M : (p+1)*M]
			wv := w.WV[p*M : (p+1)*M]
			wg := w.WG[p*M : (p+1)*M]
			for j := 0; j < M; j++ {
				oi[j] += xv * wq[j]
				oi[M+j] += xv * wk[j]
				oi[2*M+j] += xv * wv[j]
				oi[3*M+j] += xv * wg[j]
			}
		}
	}
	st.launch(n*K+4*K*M, n*4*M)
	// Unpack views into contiguous per-projection buffers.
	q = make([]float32, n*M)
	k = make([]float32, n*M)
	v = make([]float32, n*M)
	g = make([]float32, n*M)
	for i := 0; i < n; i++ {
		copy(q[i*M:(i+1)*M], out[i*4*M:i*4*M+M])
		copy(k[i*M:(i+1)*M], out[i*4*M+M:i*4*M+2*M])
		copy(v[i*M:(i+1)*M], out[i*4*M+2*M:i*4*M+3*M])
		copy(g[i*M:(i+1)*M], out[i*4*M+3*M:i*4*M+4*M])
	}
	return q, k, v, g
}

// gemm computes C = A·B for A [n,k] and B [k,m], all row-major.
func gemm(a, b []float32, n, k, m int) []float32 {
	c := make([]float32, n*m)
	for i := 0; i < n; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*m : (i+1)*m]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*m : (p+1)*m]
			for j := 0; j < m; j++ {
				ci[j] += av * bp[j]
			}
		}
	}
	return c
}
