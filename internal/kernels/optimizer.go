package kernels

import "math"

// ParamTensor is one trainable tensor with its gradient and optimizer state.
// AlphaFold has over four thousand of these per step (§3.3.1), which is why
// per-tensor kernel launches dominate the unfused optimizer's cost.
type ParamTensor struct {
	P   []float32 // parameters
	G   []float32 // gradients
	M   []float32 // Adam first moment
	V   []float32 // Adam second moment
	SWA []float32 // stochastic weight average
}

// AdamConfig holds the hyper-parameters for the fused/unfused Adam+SWA step.
type AdamConfig struct {
	LR       float32
	Beta1    float32
	Beta2    float32
	Eps      float32
	SWADecay float32 // swa = SWADecay·swa + (1-SWADecay)·p
	Step     int     // 1-based step number for bias correction
}

// DefaultAdamConfig returns the OpenFold training hyper-parameters.
func DefaultAdamConfig(step int) AdamConfig {
	return AdamConfig{LR: 1e-3, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, SWADecay: 0.999, Step: step}
}

// GradNormRef computes the global gradient L2 norm the baseline way:
// one reduction launch per gradient tensor (thousands of launches), plus a
// final combine. This is the "concatenate and norm" overhead of §3.3.1.
func GradNormRef(params []ParamTensor, st *Stats) float64 {
	var total float64
	for _, p := range params {
		var s float64
		for _, g := range p.G {
			s += float64(g) * float64(g)
		}
		total += s
		st.launch(len(p.G), 1)
	}
	st.launch(len(params), 1)
	return math.Sqrt(total)
}

// GradBucket is a flat gradient buffer covering many parameter tensors —
// the DDP communication bucket the paper reuses for gradient clipping so the
// norm needs only tens of launches instead of thousands, and the reduction
// latency hides under the all-reduce of the same buffers.
type GradBucket struct {
	Flat []float32
}

// PackBuckets copies the gradients of params into buckets of at most
// bucketElems elements each, mirroring how DDP packs gradients for
// collective communication.
func PackBuckets(params []ParamTensor, bucketElems int, st *Stats) []GradBucket {
	if bucketElems <= 0 {
		bucketElems = 1 << 20
	}
	var buckets []GradBucket
	cur := GradBucket{Flat: make([]float32, 0, bucketElems)}
	for _, p := range params {
		g := p.G
		for len(g) > 0 {
			space := bucketElems - len(cur.Flat)
			if space == 0 {
				buckets = append(buckets, cur)
				cur = GradBucket{Flat: make([]float32, 0, bucketElems)}
				space = bucketElems
			}
			take := len(g)
			if take > space {
				take = space
			}
			cur.Flat = append(cur.Flat, g[:take]...)
			g = g[take:]
		}
	}
	if len(cur.Flat) > 0 {
		buckets = append(buckets, cur)
	}
	// Packing is what DDP already does for communication; it is free for the
	// clipper, so it records no launches.
	_ = st
	return buckets
}

// GradNormBucketed computes the global norm from flat buckets: one reduction
// launch per bucket (tens, not thousands).
func GradNormBucketed(buckets []GradBucket, st *Stats) float64 {
	var total float64
	for _, b := range buckets {
		var s float64
		for _, g := range b.Flat {
			s += float64(g) * float64(g)
		}
		total += s
		st.launch(len(b.Flat), 1)
	}
	st.launch(len(buckets), 1)
	return math.Sqrt(total)
}

// ClipScale returns the factor gradients must be scaled by so the global
// norm stays within maxNorm (1 if already within).
func ClipScale(norm float64, maxNorm float32) float32 {
	if maxNorm <= 0 || norm <= float64(maxNorm) {
		return 1
	}
	return float32(float64(maxNorm) / (norm + 1e-6))
}

// AdamSWARef performs gradient clipping, the Adam update and the SWA update
// the fragmented baseline way: the norm is computed per tensor, then for
// every tensor the clip-scale, m-update, v-update, parameter update and SWA
// update each launch their own kernel with materialized intermediates —
// seven-plus launches per tensor, thousands of launches per step.
func AdamSWARef(params []ParamTensor, cfg AdamConfig, maxNorm float32, st *Stats) {
	norm := GradNormRef(params, st)
	scale := ClipScale(norm, maxNorm)
	bc1 := 1 - float32(math.Pow(float64(cfg.Beta1), float64(cfg.Step)))
	bc2 := 1 - float32(math.Pow(float64(cfg.Beta2), float64(cfg.Step)))
	for _, p := range params {
		n := len(p.P)
		// Kernel: scale gradients.
		if scale != 1 {
			for i := range p.G {
				p.G[i] *= scale
			}
		}
		st.launch(n, n)
		// Kernel: first moment.
		for i := range p.M {
			p.M[i] = cfg.Beta1*p.M[i] + (1-cfg.Beta1)*p.G[i]
		}
		st.launch(2*n, n)
		// Kernel: second moment.
		for i := range p.V {
			p.V[i] = cfg.Beta2*p.V[i] + (1-cfg.Beta2)*p.G[i]*p.G[i]
		}
		st.launch(2*n, n)
		// Kernel: bias-corrected first moment, materialized.
		mhat := make([]float32, n)
		for i := range mhat {
			mhat[i] = p.M[i] / bc1
		}
		st.launch(n, n)
		// Kernel: bias-corrected second moment, materialized.
		vhat := make([]float32, n)
		for i := range vhat {
			vhat[i] = p.V[i] / bc2
		}
		st.launch(n, n)
		// Kernel: parameter update.
		for i := range p.P {
			p.P[i] -= cfg.LR * mhat[i] / (float32(math.Sqrt(float64(vhat[i]))) + cfg.Eps)
		}
		st.launch(3*n, n)
		// Kernel: SWA update.
		for i := range p.SWA {
			p.SWA[i] = cfg.SWADecay*p.SWA[i] + (1-cfg.SWADecay)*p.P[i]
		}
		st.launch(2*n, n)
	}
}

// AdamSWAFused performs the same math as AdamSWARef in the paper's fused
// form (§3.3.1): the global norm comes from the DDP buckets (one launch per
// bucket), then a single kernel walks all parameters — the pointer-packing
// trick — keeping clip scale, m̂, v̂ and the updated parameter in registers,
// and folding the SWA update into the same pass. Two-ish launches per step
// regardless of how many thousand tensors the model has.
func AdamSWAFused(params []ParamTensor, cfg AdamConfig, maxNorm float32, buckets []GradBucket, st *Stats) {
	var norm float64
	if buckets != nil {
		norm = GradNormBucketed(buckets, st)
	} else {
		b := PackBuckets(params, 0, st)
		norm = GradNormBucketed(b, st)
	}
	scale := ClipScale(norm, maxNorm)
	bc1 := 1 - float32(math.Pow(float64(cfg.Beta1), float64(cfg.Step)))
	bc2 := 1 - float32(math.Pow(float64(cfg.Beta2), float64(cfg.Step)))

	var elems int
	for _, p := range params {
		n := len(p.P)
		elems += n
		for i := 0; i < n; i++ {
			g := p.G[i] * scale
			p.G[i] = g
			m := cfg.Beta1*p.M[i] + (1-cfg.Beta1)*g
			v := cfg.Beta2*p.V[i] + (1-cfg.Beta2)*g*g
			p.M[i] = m
			p.V[i] = v
			mhat := m / bc1
			vhat := v / bc2
			pNew := p.P[i] - cfg.LR*mhat/(float32(math.Sqrt(float64(vhat)))+cfg.Eps)
			p.P[i] = pNew
			p.SWA[i] = cfg.SWADecay*p.SWA[i] + (1-cfg.SWADecay)*pNew
		}
	}
	st.launch(4*elems, 4*elems)
}
