package model

import (
	"math"
	"testing"

	ag "repro/internal/autograd"
	"repro/internal/tensor"
)

func tinyConfig() Config {
	cfg := SmallConfig()
	cfg.MSADepth, cfg.ExtraMSA, cfg.Crop = 4, 2, 8
	cfg.CM, cfg.CME, cfg.CZ, cfg.CS = 8, 4, 4, 8
	cfg.Heads, cfg.COPM, cfg.CTri = 2, 2, 4
	cfg.EvoBlocks, cfg.ExtraBlocks, cfg.TemplateBlocks = 1, 1, 1
	cfg.StructLayers, cfg.Recycles = 1, 1
	return cfg
}

func randFeatures(cfg Config, seed int64) *Features {
	f := zeroFeatures(cfg)
	rng := newRng(seed)
	f.MSA.RandUniform(rng, 0, 1)
	f.ExtraMSA.RandUniform(rng, 0, 1)
	f.Target.RandUniform(rng, 0, 1)
	f.Template.RandUniform(rng, 0, 1)
	f.RelPos.RandUniform(rng, 0, 1)
	return f
}

func TestForwardShapes(t *testing.T) {
	cfg := tinyConfig()
	tape := ag.NewTape()
	m := New(cfg, tape, 1)
	out := m.Forward(randFeatures(cfg, 2))
	if got := out.Coords.X.Shape(); got[0] != cfg.Crop || got[1] != 3 {
		t.Fatalf("coords shape %v", got)
	}
	if got := out.MSA.X.Shape(); got[0] != cfg.MSADepth || got[1] != cfg.Crop || got[2] != cfg.CM {
		t.Fatalf("msa shape %v", got)
	}
	if got := out.Pair.X.Shape(); got[0] != cfg.Crop || got[1] != cfg.Crop || got[2] != cfg.CZ {
		t.Fatalf("pair shape %v", got)
	}
	if got := out.Single.X.Shape(); got[0] != cfg.Crop || got[1] != cfg.CS {
		t.Fatalf("single shape %v", got)
	}
}

func TestForwardFiniteOutputs(t *testing.T) {
	cfg := tinyConfig()
	m := New(cfg, ag.NewTape(), 3)
	out := m.Forward(randFeatures(cfg, 4))
	for _, v := range out.Coords.X.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("non-finite coordinate %v", v)
		}
	}
}

func TestParamCountGrowsWithDepth(t *testing.T) {
	a := tinyConfig()
	b := tinyConfig()
	b.EvoBlocks = 3
	ma := New(a, ag.NewTape(), 1)
	mb := New(b, ag.NewTape(), 1)
	if mb.Params.Count() <= ma.Params.Count() {
		t.Fatalf("deeper model must have more params: %d vs %d", mb.Params.Count(), ma.Params.Count())
	}
}

func TestFullConfigParamCountNearAlphaFold(t *testing.T) {
	// We do not instantiate FullConfig (too slow); instead check the small
	// model's parameter count is nonzero and that FullConfig declares the
	// published geometry.
	cfg := FullConfig()
	if cfg.EvoBlocks != 48 || cfg.ExtraBlocks != 4 || cfg.TemplateBlocks != 2 {
		t.Fatalf("FullConfig stack depths wrong: %+v", cfg)
	}
	if cfg.CM != 256 || cfg.CZ != 128 || cfg.Crop != 256 {
		t.Fatalf("FullConfig widths wrong: %+v", cfg)
	}
}

func TestDeterministicForward(t *testing.T) {
	cfg := tinyConfig()
	f := randFeatures(cfg, 7)
	m1 := New(cfg, ag.NewTape(), 42)
	m2 := New(cfg, ag.NewTape(), 42)
	o1 := m1.Forward(f)
	o2 := m2.Forward(f)
	if o1.Coords.X.MaxDiff(o2.Coords.X) != 0 {
		t.Fatal("same seed must give identical outputs")
	}
	m3 := New(cfg, ag.NewTape(), 43)
	if m3.Forward(f).Coords.X.MaxDiff(o1.Coords.X) == 0 {
		t.Fatal("different seed should give different outputs")
	}
}

func TestRecyclingChangesOutput(t *testing.T) {
	cfg := tinyConfig()
	f := randFeatures(cfg, 9)
	cfg1 := cfg
	cfg1.Recycles = 1
	cfg2 := cfg
	cfg2.Recycles = 3
	o1 := New(cfg1, ag.NewTape(), 5).Forward(f)
	o2 := New(cfg2, ag.NewTape(), 5).Forward(f)
	if o1.Coords.X.MaxDiff(o2.Coords.X) == 0 {
		t.Fatal("recycling must change the prediction")
	}
}

func TestBackwardProducesGradsForAllParams(t *testing.T) {
	cfg := tinyConfig()
	tape := ag.NewTape()
	m := New(cfg, tape, 11)
	tape = ag.NewTape()
	m.Params.Rebind(tape)
	out := m.Forward(randFeatures(cfg, 12))
	target := tensor.New(cfg.Crop, 3)
	target.Fill(1)
	loss := ag.MSE(out.Coords, target)
	tape.Backward(loss)
	var withGrad, total int
	for _, p := range m.Params.All() {
		total++
		if p.Grad != nil && p.Grad.Norm() > 0 {
			withGrad++
		}
	}
	// Every parameter on the final-recycle path should receive gradient.
	if withGrad < total*8/10 {
		t.Fatalf("only %d/%d params got gradient", withGrad, total)
	}
}

func TestOneSGDStepReducesLoss(t *testing.T) {
	cfg := tinyConfig()
	tape := ag.NewTape()
	m := New(cfg, tape, 13)
	f := randFeatures(cfg, 14)
	target := tensor.New(cfg.Crop, 3)
	target.RandUniform(newRng(15), -1, 1)

	lossAt := func() float64 {
		tp := ag.NewTape()
		m.Params.Rebind(tp)
		out := m.Forward(f)
		return float64(ag.MSE(out.Coords, target).X.Data[0])
	}

	before := lossAt()
	// One SGD step.
	tp := ag.NewTape()
	m.Params.Rebind(tp)
	out := m.Forward(f)
	loss := ag.MSE(out.Coords, target)
	tp.Backward(loss)
	for _, p := range m.Params.All() {
		if p.Grad != nil {
			p.X.AddScaled(p.Grad, -0.02)
		}
	}
	after := lossAt()
	if after >= before {
		t.Fatalf("SGD step did not reduce loss: %v -> %v", before, after)
	}
}

func TestParamsRebindClearsGrads(t *testing.T) {
	cfg := tinyConfig()
	tape := ag.NewTape()
	m := New(cfg, tape, 17)
	tp := ag.NewTape()
	m.Params.Rebind(tp)
	out := m.Forward(randFeatures(cfg, 18))
	tp.Backward(ag.MeanAll(out.Coords))
	tp2 := ag.NewTape()
	m.Params.Rebind(tp2)
	for _, p := range m.Params.All() {
		if p.Grad != nil {
			t.Fatal("Rebind must clear gradients")
		}
	}
}

func TestParamsRegistryNamesStable(t *testing.T) {
	cfg := tinyConfig()
	m := New(cfg, ag.NewTape(), 19)
	names := m.Params.Names()
	if len(names) == 0 {
		t.Fatal("no parameters registered")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate parameter name %q", n)
		}
		seen[n] = true
	}
	// A few structural names that must exist.
	for _, want := range []string{"embed.msa.w", "evoformer.0.rowattn.wq.w", "struct.coords.w"} {
		if !seen[want] {
			t.Fatalf("missing parameter %q", want)
		}
	}
}

func TestMismatchedFeatureShapesPanic(t *testing.T) {
	cfg := tinyConfig()
	m := New(cfg, ag.NewTape(), 21)
	f := randFeatures(cfg, 22)
	f.MSA = tensor.New(cfg.MSADepth+1, cfg.Crop, cfg.MSAFeat)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad MSA shape")
		}
	}()
	m.Forward(f)
}
