package model

import (
	"fmt"

	ag "repro/internal/autograd"
	"repro/internal/tensor"
)

// Features are the featurized inputs of one training sample (see package
// dataset for how they are produced from a synthetic protein).
type Features struct {
	MSA      *tensor.Tensor // [S, R, MSAFeat]
	ExtraMSA *tensor.Tensor // [S_e, R, MSAFeat]
	Target   *tensor.Tensor // [R, TargetFeat]
	Template *tensor.Tensor // [R, R, TemplFeat]
	RelPos   *tensor.Tensor // [R, R, RelPosBins]
}

// Output is the model's prediction plus the representations that feed the
// next recycling iteration.
type Output struct {
	Coords *ag.Value // [R, 3] predicted Cα coordinates
	MSA    *ag.Value // [S, R, CM] final MSA representation
	Pair   *ag.Value // [R, R, CZ] final pair representation
	Single *ag.Value // [R, CS] final single representation
}

// Model is the miniature AlphaFold: Figure 1's four parts (data loading
// lives in package dataset) plus recycling.
type Model struct {
	Cfg    Config
	Params *Params
}

// New constructs a model with freshly initialized parameters bound to tape.
func New(cfg Config, tape *ag.Tape, seed int64) *Model {
	m := &Model{Cfg: cfg, Params: NewParams(tape, seed)}
	// Touch every parameter once so Params.Count and the optimizer see the
	// full set before the first forward pass.
	m.buildParams()
	return m
}

// buildParams runs a forward pass on zero inputs purely to register every
// parameter. The activations are discarded.
func (m *Model) buildParams() {
	f := zeroFeatures(m.Cfg)
	m.Forward(f)
	tape := m.Params.Tape()
	tape.Reset()
	m.Params.Rebind(tape)
}

func zeroFeatures(cfg Config) *Features {
	return &Features{
		MSA:      tensor.New(cfg.MSADepth, cfg.Crop, cfg.MSAFeat),
		ExtraMSA: tensor.New(cfg.ExtraMSA, cfg.Crop, cfg.MSAFeat),
		Target:   tensor.New(cfg.Crop, cfg.TargetFeat),
		Template: tensor.New(cfg.Crop, cfg.Crop, cfg.TemplFeat),
		RelPos:   tensor.New(cfg.Crop, cfg.Crop, cfg.RelPosBins),
	}
}

// Forward runs the whole model with recycling and returns the final
// iteration's outputs. Gradients flow only through the last recycling
// iteration, as in AlphaFold: earlier iterations are detached.
func (m *Model) Forward(f *Features) *Output {
	cfg := m.Cfg
	var prevMSA1, prevPair *tensor.Tensor
	var out *Output
	iters := cfg.Recycles
	if iters < 1 {
		iters = 1
	}
	for it := 0; it < iters; it++ {
		out = m.iteration(f, prevMSA1, prevPair)
		if it < iters-1 {
			// Detach: next iteration sees values, not graph.
			prevMSA1 = out.MSA.X.Clone() // full MSA rep; iteration() slices row 0
			prevPair = out.Pair.X.Clone()
		}
	}
	return out
}

// iteration runs one recycling iteration.
func (m *Model) iteration(f *Features, prevMSA1, prevPair *tensor.Tensor) *Output {
	cfg := m.Cfg
	p := m.Params
	tp := p.Tape()

	if got, want := f.MSA.Shape(), []int{cfg.MSADepth, cfg.Crop, cfg.MSAFeat}; !shapeEq(got, want) {
		panic(fmt.Sprintf("model: MSA features %v, want %v", got, want))
	}

	// --- Input embedding (Figure 1 "Input Embedding") ---
	msaFeat := tp.Input(f.MSA)
	targetFeat := tp.Input(f.Target)
	msa := linearB(p, "embed.msa", msaFeat, cfg.MSAFeat, cfg.CM)
	tgt := linearB(p, "embed.target_m", targetFeat, cfg.TargetFeat, cfg.CM)
	msa = ag.AddRowBroadcast(msa, tgt)

	left := linearB(p, "embed.left", targetFeat, cfg.TargetFeat, cfg.CZ)
	right := linearB(p, "embed.right", targetFeat, cfg.TargetFeat, cfg.CZ)
	pair := ag.PairOuterSum(left, right)
	relpos := linearNB(p, "embed.relpos", tp.Input(f.RelPos), cfg.RelPosBins, cfg.CZ)
	pair = ag.Add(pair, relpos)

	// --- Recycling embedder ---
	if prevPair != nil {
		rp := layerNorm(p, "recycle.pair_ln", tp.Input(prevPair), cfg.CZ)
		pair = ag.Add(pair, linearB(p, "recycle.pair", rp, cfg.CZ, cfg.CZ))
	}
	if prevMSA1 != nil {
		// First row of the previous MSA representation, detached.
		row0 := tensor.FromSlice(append([]float32(nil), prevMSA1.Data[:cfg.Crop*cfg.CM]...), cfg.Crop, cfg.CM)
		rm := layerNorm(p, "recycle.msa_ln", tp.Input(row0), cfg.CM)
		msa = ag.AddRowBroadcast(msa, linearB(p, "recycle.msa", rm, cfg.CM, cfg.CM))
	}

	// --- Template pair stack (2 pair-only Evoformer blocks in AlphaFold) ---
	tmpl := linearB(p, "template.embed", tp.Input(f.Template), cfg.TemplFeat, cfg.CZ)
	for b := 0; b < cfg.TemplateBlocks; b++ {
		tmpl = templatePairBlock(p, fmt.Sprintf("template.%d", b), tmpl, cfg.CZ, cfg.CTri, cfg.Heads, cfg.Transition)
	}
	pair = ag.Add(pair, layerNorm(p, "template.ln", tmpl, cfg.CZ))

	// --- Extra MSA stack (4 Evoformer blocks at reduced width) ---
	emsa := linearB(p, "extramsa.embed", tp.Input(f.ExtraMSA), cfg.MSAFeat, cfg.CME)
	for b := 0; b < cfg.ExtraBlocks; b++ {
		name := fmt.Sprintf("extramsa.%d", b)
		// The extra-MSA stack shares the pair representation; its per-block
		// updates flow into pair exactly like the main stack's.
		emsa, pair = EvoformerBlock(p, name, emsa, pair, cfg.CME, cfg.CZ, cfg.Heads, cfg.COPM, cfg.CTri, cfg.Transition)
	}

	// --- Evoformer stack (48 blocks in AlphaFold) ---
	for b := 0; b < cfg.EvoBlocks; b++ {
		msa, pair = EvoformerBlock(p, fmt.Sprintf("evoformer.%d", b), msa, pair, cfg.CM, cfg.CZ, cfg.Heads, cfg.COPM, cfg.CTri, cfg.Transition)
	}

	// --- Structure module ---
	single := linearB(p, "struct.single_in", ag.TakeRow0(msa), cfg.CM, cfg.CS)
	zln := layerNorm(p, "struct.pair_ln", pair, cfg.CZ)
	for l := 0; l < cfg.StructLayers; l++ {
		name := fmt.Sprintf("struct.%d", l)
		s := layerNorm(p, name+".ln", single, cfg.CS)
		bias := ag.MoveLastToFront(linearNB(p, name+".pairbias", zln, cfg.CZ, cfg.Heads))
		s3 := ag.Reshape(s, 1, cfg.Crop, cfg.CS)
		q := linearNB(p, name+".wq", s3, cfg.CS, cfg.CS)
		k := linearNB(p, name+".wk", s3, cfg.CS, cfg.CS)
		v := linearNB(p, name+".wv", s3, cfg.CS, cfg.CS)
		attn := ag.Reshape(ag.MHACore(q, k, v, bias, nil, cfg.Heads), cfg.Crop, cfg.CS)
		single = ag.Add(single, linearB(p, name+".wo", attn, cfg.CS, cfg.CS))
		single = transition(p, name+".trans", single, cfg.CS, cfg.Transition)
	}
	coords := linearB(p, "struct.coords", layerNorm(p, "struct.out_ln", single, cfg.CS), cfg.CS, 3)

	return &Output{Coords: coords, MSA: msa, Pair: pair, Single: single}
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
