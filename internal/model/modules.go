package model

import (
	ag "repro/internal/autograd"
)

// Config fixes the model geometry. The zero value is not usable; call
// SmallConfig or FullConfig.
type Config struct {
	MSADepth int // S: number of MSA sequences after sampling
	ExtraMSA int // S_e: extra MSA sequences
	Crop     int // R: cropped residue count

	CM  int // MSA channel width
	CME int // extra-MSA channel width
	CZ  int // pair channel width
	CS  int // single-representation width (structure module)

	Heads      int // attention heads (MSA and triangle attention)
	COPM       int // outer-product-mean inner channel
	CTri       int // triangle multiplication hidden channel
	Transition int // transition expansion factor (AlphaFold uses 4)

	EvoBlocks      int // Evoformer stack depth (48 in AlphaFold)
	ExtraBlocks    int // extra MSA stack depth (4)
	TemplateBlocks int // template pair stack depth (2)
	StructLayers   int // structure module iterations (8 in AlphaFold)
	Recycles       int // recycling iterations (AlphaFold trains with up to 3)

	MSAFeat    int // input MSA feature width (one-hot residues + flags)
	TargetFeat int // target (sequence) feature width
	TemplFeat  int // template pair feature width
	RelPosBins int // relative-position encoding bins
}

// SmallConfig is the laptop-scale geometry used by tests, examples and the
// real convergence demonstration.
func SmallConfig() Config {
	return Config{
		MSADepth: 8, ExtraMSA: 4, Crop: 16,
		CM: 16, CME: 8, CZ: 8, CS: 16,
		Heads: 2, COPM: 4, CTri: 8, Transition: 2,
		EvoBlocks: 2, ExtraBlocks: 1, TemplateBlocks: 1,
		StructLayers: 2, Recycles: 1,
		MSAFeat: 23, TargetFeat: 21, TemplFeat: 8, RelPosBins: 13,
	}
}

// FullConfig is the published AlphaFold geometry (97M parameters). It is the
// shape the workload census uses for Table 1; it is far too slow to execute
// numerically on a CPU.
func FullConfig() Config {
	return Config{
		MSADepth: 124, ExtraMSA: 1024, Crop: 256,
		CM: 256, CME: 64, CZ: 128, CS: 384,
		Heads: 8, COPM: 32, CTri: 128, Transition: 4,
		EvoBlocks: 48, ExtraBlocks: 4, TemplateBlocks: 2,
		StructLayers: 8, Recycles: 3,
		MSAFeat: 49, TargetFeat: 22, TemplFeat: 88, RelPosBins: 65,
	}
}

const lnEps = 1e-5

// layerNorm applies a named LayerNorm over the last dim of x.
func layerNorm(p *Params, name string, x *ag.Value, c int) *ag.Value {
	return ag.LayerNorm(x, p.Gamma(name+".gamma", c), p.Bias(name+".beta", c), lnEps)
}

// linearB applies a named linear layer with bias.
func linearB(p *Params, name string, x *ag.Value, in, out int) *ag.Value {
	return ag.Linear(x, p.Linear(name+".w", in, out), p.Bias(name+".b", out))
}

// linearNB applies a named linear layer without bias.
func linearNB(p *Params, name string, x *ag.Value, in, out int) *ag.Value {
	return ag.Linear(x, p.Linear(name+".w", in, out), nil)
}

// msaRowAttentionWithPairBias is the Figure 6 module: gated multi-head
// self-attention over each MSA row, with an additive bias projected from
// the pair representation. msa is [S,R,CM]; pair is [R,R,CZ].
func msaRowAttentionWithPairBias(p *Params, name string, msa, pair *ag.Value, cm, cz, heads int) *ag.Value {
	m := layerNorm(p, name+".ln", msa, cm)
	z := layerNorm(p, name+".lnz", pair, cz)
	// Pair bias: [R,R,CZ] -> [R,R,H] -> [H,R,R].
	bias := ag.MoveLastToFront(linearNB(p, name+".pairbias", z, cz, heads))
	q := linearNB(p, name+".wq", m, cm, cm)
	k := linearNB(p, name+".wk", m, cm, cm)
	v := linearNB(p, name+".wv", m, cm, cm)
	attn := ag.MHACore(q, k, v, bias, nil, heads)
	gate := ag.Sigmoid(linearB(p, name+".wg", m, cm, cm))
	o := linearB(p, name+".wo", ag.Mul(attn, gate), cm, cm)
	return ag.Add(msa, o)
}

// msaColumnAttention attends along MSA columns (per-residue across
// sequences): transpose, gated MHA without bias, transpose back.
func msaColumnAttention(p *Params, name string, msa *ag.Value, cm, heads int) *ag.Value {
	mt := ag.Transpose01(msa) // [R,S,CM]
	m := layerNorm(p, name+".ln", mt, cm)
	q := linearNB(p, name+".wq", m, cm, cm)
	k := linearNB(p, name+".wk", m, cm, cm)
	v := linearNB(p, name+".wv", m, cm, cm)
	attn := ag.MHACore(q, k, v, nil, nil, heads)
	gate := ag.Sigmoid(linearB(p, name+".wg", m, cm, cm))
	o := linearB(p, name+".wo", ag.Mul(attn, gate), cm, cm)
	return ag.Add(msa, ag.Transpose01(o))
}

// transition is the two-layer ReLU MLP applied to MSA and pair reps.
func transition(p *Params, name string, x *ag.Value, c, factor int) *ag.Value {
	h := layerNorm(p, name+".ln", x, c)
	h = ag.ReLU(linearB(p, name+".fc1", h, c, factor*c))
	h = linearB(p, name+".fc2", h, factor*c, c)
	return ag.Add(x, h)
}

// outerProductMean communicates MSA information into the pair rep.
func outerProductMean(p *Params, name string, msa, pair *ag.Value, cm, copm, cz int) *ag.Value {
	m := layerNorm(p, name+".ln", msa, cm)
	a := linearB(p, name+".proj_a", m, cm, copm)
	b := linearB(p, name+".proj_b", m, cm, copm)
	opm := ag.OuterProductMean(a, b) // [R,R,copm*copm]
	o := linearB(p, name+".out", opm, copm*copm, cz)
	return ag.Add(pair, o)
}

// triangleMultiplication implements the "triangle multiplicative update"
// using outgoing (outgoing=true) or incoming edges.
func triangleMultiplication(p *Params, name string, pair *ag.Value, cz, ct int, outgoing bool) *ag.Value {
	z := layerNorm(p, name+".ln", pair, cz)
	a := ag.Mul(ag.Sigmoid(linearB(p, name+".ga", z, cz, ct)), linearB(p, name+".pa", z, cz, ct))
	b := ag.Mul(ag.Sigmoid(linearB(p, name+".gb", z, cz, ct)), linearB(p, name+".pb", z, cz, ct))
	var t *ag.Value
	if outgoing {
		t = ag.TriMulOutgoing(a, b)
	} else {
		t = ag.TriMulIncoming(a, b)
	}
	t = layerNorm(p, name+".lnout", t, ct)
	o := linearB(p, name+".out", t, ct, cz)
	g := ag.Sigmoid(linearB(p, name+".gout", z, cz, cz))
	return ag.Add(pair, ag.Mul(g, o))
}

// triangleAttention performs gated self-attention over the pair rep rows
// (starting node) or columns (ending node, via transposition), with a bias
// projected from the pair rep itself.
func triangleAttention(p *Params, name string, pair *ag.Value, cz, heads int, starting bool) *ag.Value {
	x := pair
	if !starting {
		x = ag.Transpose01(x)
	}
	z := layerNorm(p, name+".ln", x, cz)
	bias := ag.MoveLastToFront(linearNB(p, name+".bias", z, cz, heads)) // [H,R,R]
	q := linearNB(p, name+".wq", z, cz, cz)
	k := linearNB(p, name+".wk", z, cz, cz)
	v := linearNB(p, name+".wv", z, cz, cz)
	attn := ag.MHACore(q, k, v, bias, nil, heads)
	gate := ag.Sigmoid(linearB(p, name+".wg", z, cz, cz))
	o := linearB(p, name+".wo", ag.Mul(attn, gate), cz, cz)
	if !starting {
		o = ag.Transpose01(o)
	}
	return ag.Add(pair, o)
}

// EvoformerBlock applies the nine Figure 2 modules in order and returns the
// updated (msa, pair) pair.
func EvoformerBlock(p *Params, name string, msa, pair *ag.Value, cm, cz, heads, copm, ct, factor int) (*ag.Value, *ag.Value) {
	msa = msaRowAttentionWithPairBias(p, name+".rowattn", msa, pair, cm, cz, heads)
	msa = msaColumnAttention(p, name+".colattn", msa, cm, heads)
	msa = transition(p, name+".msatrans", msa, cm, factor)
	pair = outerProductMean(p, name+".opm", msa, pair, cm, copm, cz)
	pair = triangleMultiplication(p, name+".triout", pair, cz, ct, true)
	pair = triangleMultiplication(p, name+".triin", pair, cz, ct, false)
	pair = triangleAttention(p, name+".tristart", pair, cz, heads, true)
	pair = triangleAttention(p, name+".triend", pair, cz, heads, false)
	pair = transition(p, name+".pairtrans", pair, cz, factor)
	return msa, pair
}

// templatePairBlock is the pair-only Evoformer variant used by the template
// pair stack (triangle updates and attention, no MSA track).
func templatePairBlock(p *Params, name string, pair *ag.Value, cz, ct, heads, factor int) *ag.Value {
	pair = triangleMultiplication(p, name+".triout", pair, cz, ct, true)
	pair = triangleMultiplication(p, name+".triin", pair, cz, ct, false)
	pair = triangleAttention(p, name+".tristart", pair, cz, heads, true)
	pair = triangleAttention(p, name+".triend", pair, cz, heads, false)
	pair = transition(p, name+".trans", pair, cz, factor)
	return pair
}
