// Package model implements a complete miniature AlphaFold2 model in the
// OpenFold formulation: input embedding, a template pair stack, an extra-MSA
// stack, the 48-block Evoformer stack (Figure 1), and a structure module,
// with recycling. All nine Evoformer sub-modules of Figure 2 are present:
// row-wise gated self-attention with pair bias, column-wise gated
// self-attention, MSA transition, outer product mean, triangle
// multiplicative updates using outgoing and incoming edges, triangle
// self-attention around the starting and ending nodes, and pair transition.
//
// Channel widths and depths are configurable: tests and examples run a
// reduced geometry that trains on a laptop, while the workload census in
// package workload uses the full AlphaFold shape to reproduce Table 1.
package model

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

// Params owns every trainable tensor of the model, keyed by a hierarchical
// name such as "evoformer.3.rowattn.wq". It survives tape resets: at the
// start of each training step the trainer re-watches all parameters on a
// fresh tape.
type Params struct {
	tape   *autograd.Tape
	byName map[string]*autograd.Value
	names  []string
	rng    *rand.Rand
}

// NewParams creates an empty registry bound to tape, with a seeded
// initializer RNG.
func NewParams(tape *autograd.Tape, seed int64) *Params {
	return &Params{tape: tape, byName: map[string]*autograd.Value{}, rng: rand.New(rand.NewSource(seed))}
}

// Tape returns the registry's current tape.
func (p *Params) Tape() *autograd.Tape { return p.tape }

// Linear creates (or returns) a weight matrix [in,out] with Xavier-uniform
// init. Lecun/Xavier keeps the tiny model trainable without warmup.
func (p *Params) Linear(name string, in, out int) *autograd.Value {
	return p.get(name, func() *tensor.Tensor {
		t := tensor.New(in, out)
		bound := math.Sqrt(6.0 / float64(in+out))
		t.RandUniform(p.rng, -bound, bound)
		return t
	})
}

// Bias creates (or returns) a zero-initialized bias vector [n].
func (p *Params) Bias(name string, n int) *autograd.Value {
	return p.get(name, func() *tensor.Tensor { return tensor.New(n) })
}

// Gamma creates (or returns) a ones-initialized LayerNorm scale [n].
func (p *Params) Gamma(name string, n int) *autograd.Value {
	return p.get(name, func() *tensor.Tensor {
		t := tensor.New(n)
		t.Fill(1)
		return t
	})
}

func (p *Params) get(name string, mk func() *tensor.Tensor) *autograd.Value {
	if v, ok := p.byName[name]; ok {
		return v
	}
	v := p.tape.Param(mk())
	p.byName[name] = v
	p.names = append(p.names, name)
	return v
}

// Rebind resets the registry onto a fresh tape: parameters keep their
// tensors (and thus their learned values) but get clean gradients.
func (p *Params) Rebind(tape *autograd.Tape) {
	p.tape = tape
	for _, n := range p.names {
		tape.Watch(p.byName[n])
	}
}

// All returns the parameter Values in registration order.
func (p *Params) All() []*autograd.Value {
	out := make([]*autograd.Value, len(p.names))
	for i, n := range p.names {
		out[i] = p.byName[n]
	}
	return out
}

// Names returns the registered names sorted alphabetically (for stable
// debugging output).
func (p *Params) Names() []string {
	out := append([]string(nil), p.names...)
	sort.Strings(out)
	return out
}

// Count returns the total number of scalar parameters.
func (p *Params) Count() int {
	n := 0
	for _, name := range p.names {
		n += p.byName[name].X.Len()
	}
	return n
}

// Get returns a parameter by name, or panics if it does not exist.
func (p *Params) Get(name string) *autograd.Value {
	v, ok := p.byName[name]
	if !ok {
		panic(fmt.Sprintf("model: unknown parameter %q", name))
	}
	return v
}
