package comm

import (
	"testing"
	"time"
)

func TestAllReduceScaling(t *testing.T) {
	topo := Eos()
	// Zero for the degenerate single-rank group.
	if topo.AllReduce(1, 1e9) != 0 {
		t.Fatal("n=1 all-reduce must be free")
	}
	// More bytes cost more.
	if topo.AllReduce(8, 2e9) <= topo.AllReduce(8, 1e9) {
		t.Fatal("volume must increase cost")
	}
	// Crossing node boundaries is slower (lower bandwidth).
	intra := topo.AllReduce(8, 1e9)
	inter := topo.AllReduce(16, 1e9)
	if inter <= intra {
		t.Fatal("inter-node collective must cost more")
	}
}

func TestRingAllReduceApproachesTwiceBandwidth(t *testing.T) {
	topo := Eos()
	// For large n, time → 2·bytes/bw; check within 15% at n=512.
	bytes := 1e9
	got := topo.AllReduce(512, bytes).Seconds()
	ideal := 2 * bytes / topo.InterBW
	if got < ideal || got > ideal*1.3 {
		t.Fatalf("ring allreduce %v vs ideal %v", got, ideal)
	}
}

func TestAllGatherCheaperThanAllReduce(t *testing.T) {
	topo := Eos()
	if topo.AllGather(8, 1e9) >= topo.AllReduce(8, 1e9) {
		t.Fatal("all-gather moves half the volume of all-reduce")
	}
}

func TestCostDispatch(t *testing.T) {
	topo := Eos()
	if topo.Cost(OpAllReduce, 4, 1e8) != topo.AllReduce(4, 1e8) {
		t.Fatal("dispatch all-reduce")
	}
	if topo.Cost(OpAllGather, 4, 1e8) != topo.AllGather(4, 1e8) {
		t.Fatal("dispatch all-gather")
	}
	if topo.Cost(OpAllToAll, 4, 1e8) != topo.AllToAll(4, 1e8) {
		t.Fatal("dispatch all-to-all")
	}
}

func TestOpStrings(t *testing.T) {
	if OpAllReduce.String() != "all-reduce" || OpAllGather.String() != "all-gather" || OpAllToAll.String() != "all-to-all" {
		t.Fatal("op strings")
	}
}

func TestOverlapGradClip(t *testing.T) {
	// Clip shorter than comm: fully hidden.
	vis, hidden := OverlapGradClip(100*time.Millisecond, 20*time.Millisecond)
	if vis != 100*time.Millisecond || hidden != 20*time.Millisecond {
		t.Fatalf("vis=%v hidden=%v", vis, hidden)
	}
	// Clip longer than comm: excess is visible.
	vis, hidden = OverlapGradClip(10*time.Millisecond, 30*time.Millisecond)
	if vis != 30*time.Millisecond || hidden != 10*time.Millisecond {
		t.Fatalf("vis=%v hidden=%v", vis, hidden)
	}
}

func TestLatencyDominatesTinyMessages(t *testing.T) {
	topo := Eos()
	tiny := topo.AllToAll(8, 16)
	if tiny < 7*topo.IntraLat {
		t.Fatalf("tiny message should be latency-bound: %v", tiny)
	}
}
