// Package comm models the collective-communication layer (NCCL over
// NVLink/InfiniBand) for the cluster simulator: analytic latency+bandwidth
// cost models for the collectives ScaleFold's parallelization uses —
// ring all-reduce for data-parallel gradients, all-gather and all-to-all for
// DAP's activation redistribution — plus the gradient-bucket overlap
// accounting that hides gradient clipping under communication (§3.3.1).
package comm

import (
	"time"
)

// Topology describes link performance between ranks.
type Topology struct {
	// IntraBW is per-GPU NVLink bandwidth (bytes/s) inside a node;
	// InterBW is the per-GPU InfiniBand bandwidth across nodes.
	IntraBW, InterBW float64
	// IntraLat / InterLat are per-hop latencies.
	IntraLat, InterLat time.Duration
	// GPUsPerNode bounds the intra-node group size (8 on Eos).
	GPUsPerNode int
}

// Eos returns the topology of the NVIDIA Eos-like cluster used in the
// paper's evaluation: 8×H100 NVLink nodes on Quantum-2 InfiniBand.
func Eos() Topology {
	return Topology{
		IntraBW:     350e9,
		InterBW:     45e9,
		IntraLat:    4 * time.Microsecond,
		InterLat:    12 * time.Microsecond,
		GPUsPerNode: 8,
	}
}

// Selene returns the topology of an NVIDIA Selene-like A100 SuperPOD:
// 8×A100 NVLink3 nodes on HDR InfiniBand — the previous-generation fabric,
// with roughly half the inter-node bandwidth of Eos. The scenario registry
// exposes it as the "a100-selene" platform.
func Selene() Topology {
	return Topology{
		IntraBW:     300e9,
		InterBW:     25e9,
		IntraLat:    5 * time.Microsecond,
		InterLat:    15 * time.Microsecond,
		GPUsPerNode: 8,
	}
}

// linkFor returns the effective bandwidth and latency for a group of n
// ranks: groups within one node ride NVLink; larger groups are limited by
// the inter-node fabric.
func (t Topology) linkFor(n int) (bw float64, lat time.Duration) {
	if n <= t.GPUsPerNode {
		return t.IntraBW, t.IntraLat
	}
	return t.InterBW, t.InterLat
}

// AllReduce returns the time for a ring all-reduce of `bytes` over n ranks:
// 2(n-1)/n of the data crosses each link, with 2(n-1) latency hops.
func (t Topology) AllReduce(n int, bytes float64) time.Duration {
	if n <= 1 {
		return 0
	}
	bw, lat := t.linkFor(n)
	sec := 2 * float64(n-1) / float64(n) * bytes / bw
	return time.Duration(sec*float64(time.Second)) + time.Duration(2*(n-1))*lat
}

// AllGather returns the ring all-gather time: (n-1)/n of the output volume
// per link, n-1 hops.
func (t Topology) AllGather(n int, bytes float64) time.Duration {
	if n <= 1 {
		return 0
	}
	bw, lat := t.linkFor(n)
	sec := float64(n-1) / float64(n) * bytes / bw
	return time.Duration(sec*float64(time.Second)) + time.Duration(n-1)*lat
}

// AllToAll returns the all-to-all time: each rank exchanges (n-1)/n of its
// buffer, pairwise.
func (t Topology) AllToAll(n int, bytes float64) time.Duration {
	if n <= 1 {
		return 0
	}
	bw, lat := t.linkFor(n)
	sec := float64(n-1) / float64(n) * bytes / bw
	return time.Duration(sec*float64(time.Second)) + time.Duration(n-1)*lat
}

// Op identifies a collective kind.
type Op int

// Collective kinds used by the step program.
const (
	OpAllReduce Op = iota
	OpAllGather
	OpAllToAll
)

func (o Op) String() string {
	switch o {
	case OpAllReduce:
		return "all-reduce"
	case OpAllGather:
		return "all-gather"
	case OpAllToAll:
		return "all-to-all"
	}
	return "?"
}

// Cost dispatches to the matching collective model.
func (t Topology) Cost(op Op, n int, bytes float64) time.Duration {
	switch op {
	case OpAllReduce:
		return t.AllReduce(n, bytes)
	case OpAllGather:
		return t.AllGather(n, bytes)
	case OpAllToAll:
		return t.AllToAll(n, bytes)
	}
	return 0
}

// OverlapGradClip models §3.3.1's reordered gradient clipping: the norm is
// computed from the DDP flat buckets while the all-reduce of those same
// buckets is in flight, so the visible cost is max(comm, clip) instead of
// comm+clip. It returns the visible time and the amount hidden.
func OverlapGradClip(comm, clip time.Duration) (visible, hidden time.Duration) {
	if clip <= comm {
		return comm, clip
	}
	return clip, comm
}
