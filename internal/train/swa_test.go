package train

import (
	"testing"

	"repro/internal/dataset"
)

func TestEvaluateSWARestoresWeights(t *testing.T) {
	mdl := tinyModel(21)
	tr := New(mdl, DefaultConfig())
	gen := dataset.NewGenerator(22)
	gen.MSADepth = mdl.Cfg.MSADepth
	batch := cropBatch(t, gen, mdl.Cfg, []int{0}, 23)
	for i := 0; i < 3; i++ {
		tr.TrainStep(batch)
	}
	before := make([]float32, 8)
	p0 := mdl.Params.All()[0]
	copy(before, p0.X.Data[:8])
	_ = tr.EvaluateSWA(batch)
	for i, v := range before {
		if p0.X.Data[i] != v {
			t.Fatal("EvaluateSWA must restore the live weights")
		}
	}
}

func TestSWAEvaluationDiffersFromLive(t *testing.T) {
	mdl := tinyModel(24)
	cfg := DefaultConfig()
	cfg.SWADecay = 0.9
	tr := New(mdl, cfg)
	gen := dataset.NewGenerator(25)
	gen.MSADepth = mdl.Cfg.MSADepth
	batch := cropBatch(t, gen, mdl.Cfg, []int{0, 1}, 26)
	for i := 0; i < 6; i++ {
		tr.TrainStep(batch)
	}
	live := tr.Evaluate(batch)
	swa := tr.EvaluateSWA(batch)
	if live == swa {
		t.Fatal("SWA and live evaluations should differ early in training")
	}
}

func TestSWASnapshotIsACopy(t *testing.T) {
	mdl := tinyModel(27)
	tr := New(mdl, DefaultConfig())
	snap := tr.SWASnapshot(0)
	snap[0] += 100
	if tr.SWASnapshot(0)[0] == snap[0] {
		t.Fatal("snapshot must not alias internal state")
	}
}
