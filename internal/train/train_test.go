package train

import (
	"math"
	"math/rand"
	"testing"

	ag "repro/internal/autograd"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/tensor"
)

func tinyModel(seed int64) *model.Model {
	cfg := model.SmallConfig()
	cfg.MSADepth, cfg.ExtraMSA, cfg.Crop = 4, 2, 10
	cfg.CM, cfg.CME, cfg.CZ, cfg.CS = 8, 4, 4, 8
	cfg.Heads, cfg.COPM, cfg.CTri = 2, 2, 4
	cfg.EvoBlocks, cfg.ExtraBlocks, cfg.TemplateBlocks = 1, 1, 1
	cfg.StructLayers, cfg.Recycles = 1, 1
	return model.New(cfg, ag.NewTape(), seed)
}

func cropBatch(t *testing.T, gen *dataset.Generator, cfg model.Config, idxs []int, seed int64) []*dataset.Sample {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]*dataset.Sample, len(idxs))
	for i, idx := range idxs {
		out[i] = gen.Sample(idx).Crop(cfg.Crop, rng)
	}
	return out
}

func TestTrainStepReducesLoss(t *testing.T) {
	mdl := tinyModel(1)
	tr := New(mdl, DefaultConfig())
	gen := dataset.NewGenerator(2)
	gen.MSADepth = mdl.Cfg.MSADepth
	batch := cropBatch(t, gen, mdl.Cfg, []int{0, 1}, 3)

	first := tr.TrainStep(batch)
	var last float64
	for i := 0; i < 15; i++ {
		last = tr.TrainStep(batch)
	}
	if !(last < first) {
		t.Fatalf("loss did not decrease: first %v last %v", first, last)
	}
	if tr.Step() != 16 {
		t.Fatalf("step count %d", tr.Step())
	}
}

func TestTrainingImprovesLDDT(t *testing.T) {
	mdl := tinyModel(4)
	cfg := DefaultConfig()
	cfg.LR = 4e-3
	tr := New(mdl, cfg)
	gen := dataset.NewGenerator(5)
	gen.MSADepth = mdl.Cfg.MSADepth
	batch := cropBatch(t, gen, mdl.Cfg, []int{0}, 6)

	before := tr.Evaluate(batch)
	for i := 0; i < 30; i++ {
		tr.TrainStep(batch)
	}
	after := tr.Evaluate(batch)
	if !(after > before) {
		t.Fatalf("lDDT did not improve: %v -> %v", before, after)
	}
}

func TestBF16TrainingStaysFinite(t *testing.T) {
	mdl := tinyModel(7)
	cfg := DefaultConfig()
	cfg.BF16 = true
	tr := New(mdl, cfg)
	gen := dataset.NewGenerator(8)
	gen.MSADepth = mdl.Cfg.MSADepth
	batch := cropBatch(t, gen, mdl.Cfg, []int{0, 1}, 9)
	var loss float64
	for i := 0; i < 5; i++ {
		loss = tr.TrainStep(batch)
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("bf16 training diverged at step %d: %v", i, loss)
		}
	}
	// Parameters must be bf16 fixed points.
	for _, p := range mdl.Params.All() {
		for _, v := range p.X.Data[:min(8, p.X.Len())] {
			if tensor.RoundBF16(v) != v {
				t.Fatalf("parameter %v not on the bf16 grid", v)
			}
		}
	}
}

func TestLDDTPerfectPrediction(t *testing.T) {
	coords := dataset.FoldSequence([]int{1, 2, 3, 4, 5, 6, 7, 8})
	if got := LDDTCa(coords, coords); got != 1 {
		t.Fatalf("perfect prediction lDDT = %v, want 1", got)
	}
}

func TestLDDTDegradesWithNoise(t *testing.T) {
	truth := dataset.FoldSequence([]int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8})
	rng := rand.New(rand.NewSource(10))
	perturb := func(scale float32) [][3]float32 {
		out := make([][3]float32, len(truth))
		for i := range truth {
			for d := 0; d < 3; d++ {
				out[i][d] = truth[i][d] + float32(rng.NormFloat64())*scale
			}
		}
		return out
	}
	small := LDDTCa(perturb(0.1), truth)
	large := LDDTCa(perturb(8), truth)
	if !(small > large) {
		t.Fatalf("lDDT should degrade with noise: small %v large %v", small, large)
	}
	if small < 0.8 {
		t.Fatalf("0.1 Å noise should keep lDDT high, got %v", small)
	}
	if large > 0.6 {
		t.Fatalf("8 Å noise should wreck lDDT, got %v", large)
	}
}

func TestLDDTRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(12)
		a := make([][3]float32, n)
		b := make([][3]float32, n)
		for i := 0; i < n; i++ {
			for d := 0; d < 3; d++ {
				a[i][d] = float32(rng.NormFloat64() * 5)
				b[i][d] = float32(rng.NormFloat64() * 5)
			}
		}
		v := LDDTCa(a, b)
		if v < 0 || v > 1 {
			t.Fatalf("lDDT %v out of [0,1]", v)
		}
	}
}

func TestLDDTMismatchedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LDDTCa(make([][3]float32, 3), make([][3]float32, 4))
}

func TestEmptyBatchPanics(t *testing.T) {
	tr := New(tinyModel(12), DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.TrainStep(nil)
}

func TestOptimizerUsesFusedKernel(t *testing.T) {
	mdl := tinyModel(13)
	tr := New(mdl, DefaultConfig())
	gen := dataset.NewGenerator(14)
	gen.MSADepth = mdl.Cfg.MSADepth
	batch := cropBatch(t, gen, mdl.Cfg, []int{0}, 15)
	tr.TrainStep(batch)
	// The fused optimizer launches O(1) kernels per step (norm buckets +
	// fused update), not O(#tensors).
	nTensors := len(mdl.Params.All())
	if tr.KernelStats.Launches >= nTensors {
		t.Fatalf("optimizer launched %d kernels for %d tensors — not fused", tr.KernelStats.Launches, nTensors)
	}
}

func TestSWATracksParameters(t *testing.T) {
	mdl := tinyModel(16)
	cfg := DefaultConfig()
	cfg.SWADecay = 0.5
	tr := New(mdl, cfg)
	gen := dataset.NewGenerator(17)
	gen.MSADepth = mdl.Cfg.MSADepth
	batch := cropBatch(t, gen, mdl.Cfg, []int{0}, 18)
	for i := 0; i < 5; i++ {
		tr.TrainStep(batch)
	}
	// SWA must differ from both its init and the current weights (it lags).
	ps := mdl.Params.All()
	var lag bool
	for i, p := range ps {
		for j := range tr.swa[i] {
			if tr.swa[i][j] != p.X.Data[j] {
				lag = true
				break
			}
		}
		if lag {
			break
		}
	}
	if !lag {
		t.Fatal("SWA should lag behind current parameters")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
