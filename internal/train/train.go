// Package train implements the real training loop for the miniature
// AlphaFold model: distance-matrix loss, Adam + stochastic weight averaging
// + gradient clipping (via the fused kernels of package kernels), the
// lDDT-Cα evaluation metric the paper's convergence criterion uses
// (avg_lddt_ca ≥ 0.8 / 0.9), and optional bfloat16 parameter emulation.
package train

import (
	"math"
	"math/rand"

	ag "repro/internal/autograd"
	"repro/internal/dataset"
	"repro/internal/kernels"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Config holds training hyper-parameters.
type Config struct {
	LR        float32
	ClipNorm  float32
	SWADecay  float32
	BF16      bool // round parameters through bfloat16 after each update
	DistScale float32
	Seed      int64
}

// DefaultConfig returns hyper-parameters that train the SmallConfig model
// stably.
func DefaultConfig() Config {
	return Config{LR: 2e-3, ClipNorm: 1.0, SWADecay: 0.99, DistScale: 0.1, Seed: 1}
}

// Trainer owns a model and its optimizer state.
type Trainer struct {
	Model *model.Model
	Cfg   Config

	step int
	m    [][]float32 // Adam first moments, aligned with Params.All()
	v    [][]float32 // Adam second moments
	swa  [][]float32 // stochastic weight averages

	// KernelStats accumulates launch/traffic accounting from the fused
	// optimizer, so experiments can report optimizer-side fusion effects.
	KernelStats kernels.Stats
}

// New creates a trainer for mdl.
func New(mdl *model.Model, cfg Config) *Trainer {
	ps := mdl.Params.All()
	t := &Trainer{Model: mdl, Cfg: cfg}
	t.m = make([][]float32, len(ps))
	t.v = make([][]float32, len(ps))
	t.swa = make([][]float32, len(ps))
	for i, p := range ps {
		n := p.X.Len()
		t.m[i] = make([]float32, n)
		t.v[i] = make([]float32, n)
		t.swa[i] = append([]float32(nil), p.X.Data...)
	}
	return t
}

// Step returns the trainer's current step count.
func (t *Trainer) Step() int { return t.step }

// Loss computes the training loss for a sample on the given tape-bound
// forward output: MSE between scaled predicted and true distance matrices.
func (t *Trainer) Loss(out *model.Output, s *dataset.Sample) *ag.Value {
	pred := ag.Scale(ag.PairwiseDist(out.Coords), t.Cfg.DistScale)
	target := dataset.TrueDistances(s).Scale(t.Cfg.DistScale)
	return ag.MSE(pred, target)
}

// TrainStep runs one optimizer step over a batch of cropped samples:
// per-sample forward/backward with gradient accumulation, then the fused
// clip+Adam+SWA update. It returns the mean loss.
func (t *Trainer) TrainStep(batch []*dataset.Sample) float64 {
	if len(batch) == 0 {
		panic("train: empty batch")
	}
	tape := ag.NewTape()
	t.Model.Params.Rebind(tape)
	// The featurization RNG is a pure function of the step counter so a
	// run resumed from a checkpoint replays identically.
	rng := rand.New(rand.NewSource(t.Cfg.Seed*31 + int64(t.step)))
	var total float64
	for _, s := range batch {
		f := dataset.Featurize(s, t.Model.Cfg, rng)
		out := t.Model.Forward(f)
		loss := ag.Scale(t.Loss(out, s), 1/float32(len(batch)))
		tape.Backward(loss)
		total += float64(loss.X.Data[0]) * float64(len(batch))
	}
	t.applyUpdate()
	return total / float64(len(batch))
}

// applyUpdate runs the fused gradient-clip + Adam + SWA kernel over all
// parameters.
func (t *Trainer) applyUpdate() {
	t.step++
	ps := t.Model.Params.All()
	kp := make([]kernels.ParamTensor, 0, len(ps))
	for i, p := range ps {
		g := p.Grad
		if g == nil {
			continue
		}
		kp = append(kp, kernels.ParamTensor{
			P: p.X.Data, G: g.Data, M: t.m[i], V: t.v[i], SWA: t.swa[i],
		})
	}
	cfg := kernels.AdamConfig{
		LR: t.Cfg.LR, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		SWADecay: t.Cfg.SWADecay, Step: t.step,
	}
	kernels.AdamSWAFused(kp, cfg, t.Cfg.ClipNorm, nil, &t.KernelStats)
	if t.Cfg.BF16 {
		for _, p := range ps {
			tensor.QuantizeBF16(p.X)
		}
	}
}

// Predict runs inference (no gradient bookkeeping needed beyond the tape)
// and returns predicted coordinates.
func (t *Trainer) Predict(s *dataset.Sample) [][3]float32 {
	tape := ag.NewTape()
	t.Model.Params.Rebind(tape)
	rng := rand.New(rand.NewSource(t.Cfg.Seed + 777))
	f := dataset.Featurize(s, t.Model.Cfg, rng)
	out := t.Model.Forward(f)
	coords := make([][3]float32, t.Model.Cfg.Crop)
	for i := range coords {
		coords[i] = [3]float32{out.Coords.X.At(i, 0), out.Coords.X.At(i, 1), out.Coords.X.At(i, 2)}
	}
	return coords
}

// Evaluate returns the mean lDDT-Cα over the evaluation samples — the
// paper's avg_lddt_ca metric.
func (t *Trainer) Evaluate(eval []*dataset.Sample) float64 {
	if len(eval) == 0 {
		return 0
	}
	var sum float64
	for _, s := range eval {
		pred := t.Predict(s)
		sum += LDDTCa(pred, s.Coords)
	}
	return sum / float64(len(eval))
}

// LDDTCa computes the local distance difference test on Cα atoms: for every
// residue pair (i,j), i≠j, whose true distance is below the 15 Å inclusion
// radius, score the fraction of tolerance thresholds {0.5, 1, 2, 4} Å the
// predicted distance error stays within, and average.
func LDDTCa(pred, truth [][3]float32) float64 {
	if len(pred) != len(truth) {
		panic("train: LDDTCa length mismatch")
	}
	const cutoff = 15.0
	thresholds := [4]float64{0.5, 1, 2, 4}
	var score float64
	var count int
	n := len(pred)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dt := dist3(truth[i], truth[j])
			if dt >= cutoff {
				continue
			}
			dp := dist3(pred[i], pred[j])
			diff := math.Abs(dt - dp)
			var hits int
			for _, th := range thresholds {
				if diff < th {
					hits++
				}
			}
			score += float64(hits) / 4
			count++
		}
	}
	if count == 0 {
		return 1 // no local contacts to violate
	}
	return score / float64(count)
}

func dist3(a, b [3]float32) float64 {
	dx := float64(a[0] - b[0])
	dy := float64(a[1] - b[1])
	dz := float64(a[2] - b[2])
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}
