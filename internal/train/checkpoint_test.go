package train

import (
	"bytes"
	"testing"

	ag "repro/internal/autograd"
	"repro/internal/dataset"
	"repro/internal/model"
)

func freshModel(cfg model.Config, seed int64) *model.Model {
	return model.New(cfg, ag.NewTape(), seed)
}

func TestCheckpointRoundTrip(t *testing.T) {
	mdl := tinyModel(31)
	tr := New(mdl, DefaultConfig())
	gen := dataset.NewGenerator(32)
	gen.MSADepth = mdl.Cfg.MSADepth
	batch := cropBatch(t, gen, mdl.Cfg, []int{0, 1}, 33)
	for i := 0; i < 4; i++ {
		tr.TrainStep(batch)
	}
	lossBefore := tr.TrainStep(batch)

	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh model with different init.
	mdl2 := tinyModel(99)
	tr2, err := NewFromCheckpoint(mdl2, DefaultConfig(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Step() != tr.Step() {
		t.Fatalf("step %d, want %d", tr2.Step(), tr.Step())
	}
	// Continuing training must behave identically: compare the next loss on
	// the same batch (determinism established elsewhere).
	lossResumed := tr2.TrainStep(batch)
	lossContinued := tr.TrainStep(batch)
	if lossResumed != lossContinued {
		t.Fatalf("resumed training diverged: %v vs %v", lossResumed, lossContinued)
	}
	_ = lossBefore
}

func TestCheckpointGeometryMismatch(t *testing.T) {
	tr := New(tinyModel(34), DefaultConfig())
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A model with a different depth has a different tensor count.
	other := tinyModel(35)
	cfg := other.Cfg
	cfg.EvoBlocks = 2
	bigger := New(freshModel(cfg, 36), DefaultConfig())
	if err := bigger.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("mismatched geometry must fail to load")
	}
}

func TestCheckpointCorruptData(t *testing.T) {
	tr := New(tinyModel(37), DefaultConfig())
	if err := tr.Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage must not load")
	}
}
