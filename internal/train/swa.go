package train

import (
	"repro/internal/dataset"
)

// SWA support: AlphaFold's training evaluates the stochastic weight average
// rather than the raw weights (the averaged model converges more smoothly,
// which is why the paper folds the SWA update into the fused optimizer
// kernel rather than dropping it).

// swapInSWA exchanges the live parameters with the SWA shadow copies and
// returns a function restoring the originals.
func (t *Trainer) swapInSWA() (restore func()) {
	ps := t.Model.Params.All()
	saved := make([][]float32, len(ps))
	for i, p := range ps {
		saved[i] = append([]float32(nil), p.X.Data...)
		copy(p.X.Data, t.swa[i])
	}
	return func() {
		for i, p := range ps {
			copy(p.X.Data, saved[i])
		}
	}
}

// EvaluateSWA returns the mean lDDT-Cα of the stochastic-weight-averaged
// model — the weights the paper's avg_lddt_ca convergence gate actually
// inspects.
func (t *Trainer) EvaluateSWA(eval []*dataset.Sample) float64 {
	restore := t.swapInSWA()
	defer restore()
	return t.Evaluate(eval)
}

// SWASnapshot returns a copy of the SWA weights for the i-th parameter
// (primarily for tests and checkpoint export).
func (t *Trainer) SWASnapshot(i int) []float32 {
	return append([]float32(nil), t.swa[i]...)
}
