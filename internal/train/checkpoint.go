package train

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/model"
)

// Checkpoint is a serializable snapshot of a training run: parameters,
// optimizer moments, SWA shadow weights and the step counter. The MLPerf
// HPC OpenFold benchmark is defined as training *from* a predefined
// checkpoint to a target metric (§1 footnote), so checkpointing is part of
// the reproduced workflow, not an extra.
type Checkpoint struct {
	Step   int
	Names  []string
	Params [][]float32
	M      [][]float32
	V      [][]float32
	SWA    [][]float32
}

// Save serializes the trainer's state to w.
func (t *Trainer) Save(w io.Writer) error {
	ps := t.Model.Params.All()
	names := t.Model.Params.Names()
	if len(names) != len(ps) {
		return fmt.Errorf("train: %d names for %d params", len(names), len(ps))
	}
	ck := Checkpoint{Step: t.step, Names: names}
	// Params.All returns registration order; Names() is sorted — rebuild in
	// registration order by reading each tensor through the registry.
	ck.Names = ck.Names[:0]
	for i, p := range ps {
		_ = i
		ck.Params = append(ck.Params, append([]float32(nil), p.X.Data...))
	}
	for i := range ps {
		ck.M = append(ck.M, append([]float32(nil), t.m[i]...))
		ck.V = append(ck.V, append([]float32(nil), t.v[i]...))
		ck.SWA = append(ck.SWA, append([]float32(nil), t.swa[i]...))
	}
	return gob.NewEncoder(w).Encode(&ck)
}

// Load restores a snapshot previously written by Save into the trainer.
// The model geometry must match (same parameter count and shapes).
func (t *Trainer) Load(r io.Reader) error {
	var ck Checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("train: decoding checkpoint: %w", err)
	}
	ps := t.Model.Params.All()
	if len(ck.Params) != len(ps) {
		return fmt.Errorf("train: checkpoint has %d tensors, model has %d", len(ck.Params), len(ps))
	}
	for i, p := range ps {
		if len(ck.Params[i]) != p.X.Len() {
			return fmt.Errorf("train: tensor %d size %d, model wants %d", i, len(ck.Params[i]), p.X.Len())
		}
		copy(p.X.Data, ck.Params[i])
		copy(t.m[i], ck.M[i])
		copy(t.v[i], ck.V[i])
		copy(t.swa[i], ck.SWA[i])
	}
	t.step = ck.Step
	return nil
}

// NewFromCheckpoint builds a trainer for mdl and immediately restores state
// from r — the MLPerf "initialize from predefined checkpoint" entry point.
func NewFromCheckpoint(mdl *model.Model, cfg Config, r io.Reader) (*Trainer, error) {
	t := New(mdl, cfg)
	if err := t.Load(r); err != nil {
		return nil, err
	}
	return t, nil
}
