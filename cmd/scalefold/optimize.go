package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/scalefold"
	"repro/internal/scenario"
	"repro/internal/search"
	"repro/internal/service"
	"repro/internal/store"
)

// optimizeCmd is the adaptive-search front end: instead of enumerating a
// grid (`sweep`, `resilience`), it bisects the failure axis around the
// goodput cliff, detects the ranks-scaling knee and refines the Pareto
// frontier within a probe budget, printing the Frontier report as JSON.
// With -server it submits the search to a running `scalefold serve` as a
// POST /v1/search job and follows its stream; otherwise it runs in-process
// (optionally against a -store directory, sharing records with every sweep
// pointed there).
func optimizeCmd(args []string) {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	d := scalefold.DefaultSearchSpec()
	objective := fs.String("objective", d.Objective,
		`search objective: "maximize-goodput" or "minimize-cost-steptime"`)
	arch := fs.String("arch", d.Platform,
		"platform profile ("+strings.Join(scenario.PlatformNames(), ", ")+")")
	ranks := fs.String("ranks", joinInts(d.Ranks), "comma-separated ascending GPU-count ladder")
	daps := fs.String("dap", joinInts(d.DAPs), "comma-separated DAP widths considered per rung")
	failLo := fs.Float64("fail-lo", d.FailLo, "failure-rate axis lower bound (per-rank per-step)")
	failHi := fs.Float64("fail-hi", d.FailHi, "failure-rate axis upper bound")
	restartCost := fs.Float64("restart-cost", d.RestartCost,
		"checkpoint-restart cost in seconds per failure")
	cliffGoodput := fs.Float64("cliff-goodput", d.CliffGoodput,
		"goodput threshold whose crossing defines the cliff")
	tolerance := fs.Float64("tolerance", d.Tolerance, "bisection stop width in decades")
	budget := fs.Int("budget", d.Budget, "unique-probe budget (memoized re-probes are free)")
	steps := fs.Int("steps", d.Steps, "simulated steps per probe (0 = simulator default)")
	modeFlag := fs.String("mode", d.Mode, `probe resolution mode: auto (default; analytic
exploration, exact escalation at decision boundaries), exact or analytic`)
	simWorkers := fs.Int("sim-workers", 0, "goroutines sharding each probe's per-rank work")
	storeDir := fs.String("store", "", `persistent result-store directory ("" = off)`)
	server := fs.String("server", "", `running sweep server base URL: submit the search as a
POST /v1/search job instead of running in-process`)
	quiet := fs.Bool("quiet", false, "suppress streaming probe progress on stderr")
	fs.Parse(args)

	if *server != "" {
		remoteOptimize(*server, service.SearchJobSpec{
			Objective:    *objective,
			Arch:         *arch,
			Ranks:        parseIntList("optimize", "ranks", *ranks),
			DAPs:         parseIntList("optimize", "dap", *daps),
			FailLo:       *failLo,
			FailHi:       *failHi,
			RestartCost:  *restartCost,
			CliffGoodput: *cliffGoodput,
			Tolerance:    *tolerance,
			Budget:       *budget,
			Steps:        *steps,
			Mode:         parseMode("optimize", *modeFlag),
			SimWorkers:   *simWorkers,
		}, *quiet)
		return
	}

	spec := scalefold.SearchSpec{
		Objective:    *objective,
		Platform:     *arch,
		Ranks:        parseIntList("optimize", "ranks", *ranks),
		DAPs:         parseIntList("optimize", "dap", *daps),
		FailLo:       *failLo,
		FailHi:       *failHi,
		RestartCost:  *restartCost,
		CliffGoodput: *cliffGoodput,
		Tolerance:    *tolerance,
		Budget:       *budget,
		Steps:        *steps,
		Mode:         parseMode("optimize", *modeFlag),
		SimWorkers:   *simWorkers,
	}
	if *storeDir != "" {
		ds, err := store.OpenDisk[cluster.Result](*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "optimize: %v\n", err)
			os.Exit(2)
		}
		defer ds.Close()
		spec.Store = ds
	}
	var met scalefold.SweepMetrics
	spec.Metrics = &met
	if !*quiet {
		spec.OnProbe = func(p search.Probe, src string, dur time.Duration) {
			fmt.Fprintf(os.Stderr, "[%3d/%3d] %-6s ranks=%d dap=%d fail=%g -> goodput %.3f (%s, %v)\n",
				p.Seq, spec.Budget, p.Phase, p.Ranks, p.DAP, p.FailProb,
				p.Goodput, src, dur.Round(time.Millisecond))
		}
	}
	t0 := time.Now()
	f, err := spec.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "optimize: %v\n", err)
		os.Exit(2)
	}
	if !*quiet {
		runSummary("optimize", f.Used, &met, time.Since(t0))
	}
	printJSON(f)
}

// remoteOptimize submits the search to a running server and follows its
// NDJSON stream, printing the frontier when the job finishes.
func remoteOptimize(server string, spec service.SearchJobSpec, quiet bool) {
	client := &service.Client{Base: server}
	st, err := client.SubmitSearch(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optimize: %v\n", err)
		os.Exit(2)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "optimize: %s queued (budget %d), streaming\n", st.ID, st.Cells)
	}
	var onProbe func(service.ProbeEvent) error
	if !quiet {
		onProbe = func(ev service.ProbeEvent) error {
			fmt.Fprintf(os.Stderr, "[%3d/%3d] %-6s ranks=%d dap=%d fail=%g -> goodput %.3f (%s)\n",
				ev.Seq, st.Cells, ev.Phase, ev.Ranks, ev.DAP, ev.FailProb, ev.Goodput, ev.Source)
			return nil
		}
	}
	frontier, done, err := client.SearchStream(st.ID, onProbe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optimize: %v\n", err)
		os.Exit(2)
	}
	if done.State != service.StateDone || frontier == nil {
		fmt.Fprintf(os.Stderr, "optimize: job %s ended %s %s\n", st.ID, done.State, done.Error)
		os.Exit(1)
	}
	printJSON(frontier)
}
