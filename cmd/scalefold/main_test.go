package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/docs"
	"repro/internal/scenario"
)

func TestUnknownCommandPrintsDocumentedListAndExits2(t *testing.T) {
	var buf bytes.Buffer
	if code := unknownCommand(&buf, "figz"); code != 2 {
		t.Fatalf("exit status %d, want 2", code)
	}
	out := buf.String()
	if !strings.Contains(out, `unknown command "figz"`) {
		t.Fatalf("message must name the bad command:\n%s", out)
	}
	subs := docs.Subcommands()
	if len(subs) == 0 {
		t.Fatal("docs.Subcommands parsed nothing from cli.md")
	}
	for _, name := range subs {
		if !strings.Contains(out, "  "+name+"\n") {
			t.Fatalf("command list must include %q (from docs/cli.md):\n%s", name, out)
		}
	}
	if !strings.Contains(out, "scalefold help") {
		t.Fatalf("message must point at the full reference:\n%s", out)
	}
}

// TestCheckModeListsValidSet pins the CLI half of -mode hardening: every
// recognized spelling passes, anything else is the exit-2 error naming the
// offender and listing the valid set (parseMode prints it and exits).
func TestCheckModeListsValidSet(t *testing.T) {
	for _, ok := range append([]string{""}, scenario.Modes...) {
		if err := checkMode(ok); err != nil {
			t.Errorf("checkMode(%q) = %v, want nil", ok, err)
		}
	}
	err := checkMode("psychic")
	if err == nil {
		t.Fatal("checkMode accepted an unknown mode")
	}
	if !strings.Contains(err.Error(), `"psychic"`) {
		t.Errorf("error %q does not name the offending mode", err)
	}
	for _, want := range scenario.Modes {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list valid mode %q", err, want)
		}
	}
}

// Every dispatchable command must be documented in cli.md — the list the
// unknown-command message prints — and vice versa for the figure runners.
func TestDispatchMatchesDocumentation(t *testing.T) {
	documented := map[string]bool{}
	for _, name := range docs.Subcommands() {
		documented[name] = true
	}
	for name := range runners {
		if !documented[name] {
			t.Errorf("runner %q missing from docs/cli.md", name)
		}
	}
	for _, name := range []string{"all", "sweep", "resilience", "optimize", "serve", "worker", "submit", "jobs", "help"} {
		if !documented[name] {
			t.Errorf("subcommand %q missing from docs/cli.md", name)
		}
	}
	for _, name := range allRunners {
		if _, ok := runners[name]; !ok {
			t.Errorf("allRunners entry %q has no runner", name)
		}
	}
}
